(* Benchmark harness.

   Two parts:
   - the per-claim experiment tables (E1-E10 of DESIGN.md), regenerating
     every analytic "table" of the paper's evaluation, and
   - Bechamel microbenchmarks of the substrates (Galois-field arithmetic,
     codec encode/decode, simulator and adversary step rates).

   plus `sanitize-overhead`: the cost of running with the [Sb_sanitize]
   monitors attached (EXPERIMENTS.md row M2; exits non-zero past 2.5x),
   and `chaos-overhead`: the per-step cost of the [Sb_faults] fault
   plane on message-passing runs (row M3; same 2.5x budget).

   Usage: main.exe [tables|micro|sanitize-overhead|chaos-overhead|all]
   (default: all). *)

open Bechamel
open Toolkit

let ns_per_run results name =
  match Hashtbl.find_opt results name with
  | None -> nan
  | Some ols -> (
    match Analyze.OLS.estimates ols with
    | Some (e :: _) -> e
    | _ -> nan)

let measure ~name tests =
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] (Test.make_grouped ~name tests) in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  Analyze.all ols Instance.monotonic_clock raw

let run_group ~name tests =
  let results = measure ~name tests in
  let table =
    Sb_util.Table.create ~title:(Printf.sprintf "B  %s (ns/op)" name)
      [ ("benchmark", Sb_util.Table.Left); ("ns/op", Sb_util.Table.Right) ]
  in
  let names = Hashtbl.fold (fun k _ acc -> k :: acc) results [] in
  List.iter
    (fun n ->
      Sb_util.Table.add_row table [ n; Printf.sprintf "%.1f" (ns_per_run results n) ])
    (List.sort compare names);
  Sb_util.Table.print table

(* ------------------------------------------------------------------ *)
(* Microbenchmarks                                                     *)
(* ------------------------------------------------------------------ *)

let value_bytes = 1024
let prng = Sb_util.Prng.create 4242
let value = Sb_util.Prng.bytes prng value_bytes

let codec_tests =
  let mk name codec =
    let open Sb_codec.Codec in
    let k = codec.k in
    (* Decode from the last k of the first k+2 block indices, when the
       codec has spare blocks; otherwise from the k data blocks. *)
    let avail = match codec.n with Some n -> min n (k + 2) | None -> k + 2 in
    let blocks = List.init avail (fun i -> (i, codec.encode value i)) in
    let last_k = List.filteri (fun idx _ -> idx >= avail - k) blocks in
    [
      Test.make ~name:(name ^ "-encode1")
        (Staged.stage (fun () -> ignore (codec.encode value 0)));
      Test.make
        ~name:(name ^ "-encode-all")
        (Staged.stage (fun () ->
             let n = match codec.n with Some n -> n | None -> k + 4 in
             for i = 0 to n - 1 do
               ignore (codec.encode value i)
             done));
      Test.make ~name:(name ^ "-decode")
        (Staged.stage (fun () -> ignore (codec.decode last_k)));
    ]
  in
  List.concat
    [
      mk "replication" (Sb_codec.Codec.replication ~value_bytes ~n:12);
      mk "striping-k4" (Sb_codec.Codec.striping ~value_bytes ~k:4);
      mk "rs-vand-k4n12" (Sb_codec.Codec.rs_vandermonde ~value_bytes ~k:4 ~n:12);
      mk "rs-vand-k8n24" (Sb_codec.Codec.rs_vandermonde ~value_bytes ~k:8 ~n:24);
      mk "rs-cauchy-k4n12" (Sb_codec.Codec.rs_cauchy ~value_bytes ~k:4 ~n:12);
      mk "rs16-k4n12" (Sb_codec.Codec.rs_vandermonde16 ~value_bytes ~k:4 ~n:12);
      mk "fountain-k4" (Sb_codec.Codec.fountain ~value_bytes ~k:4 ());
    ]

let gf_tests =
  [
    Test.make ~name:"gf256-mul-table"
      (Staged.stage (fun () ->
           let acc = ref 0 in
           for i = 1 to 255 do
             acc := !acc lxor Sb_gf.Gf256.mul i 173
           done;
           ignore !acc));
    Test.make ~name:"gf256-mul-slow"
      (Staged.stage (fun () ->
           let acc = ref 0 in
           for i = 1 to 255 do
             acc := !acc lxor Sb_gf.Gf256.mul_slow i 173
           done;
           ignore !acc));
    Test.make ~name:"gf256-inv"
      (Staged.stage (fun () ->
           let acc = ref 0 in
           for i = 1 to 255 do
             acc := !acc lxor Sb_gf.Gf256.inv i
           done;
           ignore !acc));
    Test.make ~name:"gf2p16-mul-table"
      (Staged.stage (fun () ->
           let acc = ref 0 in
           for i = 1 to 255 do
             acc := !acc lxor Sb_gf.Gf2p16.mul (i * 171) 44203
           done;
           ignore !acc));
  ]

let sim_tests =
  let vb = 64 in
  let f = 2 and k = 2 in
  let n = (2 * f) + k in
  let codec = Sb_codec.Codec.rs_vandermonde ~value_bytes:vb ~k ~n in
  let cfg = { Sb_registers.Common.n; f; codec } in
  let workload =
    Sb_experiments.Workloads.writers_and_readers ~value_bytes:vb ~writers:2
      ~writes_each:2 ~readers:2 ~reads_each:2
  in
  let full_run algo policy_of () =
    let w = Sb_sim.Runtime.create ~algorithm:algo ~n ~f ~workload () in
    ignore (Sb_sim.Runtime.run w (policy_of ()))
  in
  [
    Test.make ~name:"sim-adaptive-random-run"
      (Staged.stage
         (full_run (Sb_registers.Adaptive.make cfg) (fun () ->
              Sb_sim.Runtime.random_policy ~seed:1 ())));
    Test.make ~name:"sim-adaptive-fifo-run"
      (Staged.stage
         (full_run (Sb_registers.Adaptive.make cfg) (fun () ->
              Sb_sim.Runtime.fifo_policy ())));
    Test.make ~name:"sim-abd-random-run"
      (Staged.stage
         (full_run
            (Sb_registers.Abd.make
               { cfg with codec = Sb_codec.Codec.replication ~value_bytes:vb ~n })
            (fun () -> Sb_sim.Runtime.random_policy ~seed:1 ())));
    Test.make ~name:"adversary-lower-bound-run"
      (Staged.stage (fun () ->
           ignore
             (Sb_adversary.Lower_bound.run
                ~algorithm:(Sb_registers.Adaptive.make_unbounded cfg)
                ~cfg ~c:4 ())));
    Test.make ~name:"msgnet-adaptive-random-run"
      (Staged.stage (fun () ->
           let w =
             Sb_msgnet.Mp_runtime.create ~algorithm:(Sb_registers.Adaptive.make cfg)
               ~n ~f ~workload ()
           in
           ignore
             (Sb_msgnet.Mp_runtime.run w (Sb_msgnet.Mp_runtime.random_policy ~seed:1 ()))));
    Test.make ~name:"kv-put-get"
      (Staged.stage (fun () ->
           let store = Sb_kv.Store.create ~cfg () in
           Sb_kv.Store.put store ~key:"k" (Bytes.of_string "value");
           ignore (Sb_kv.Store.get store ~key:"k")));
    Test.make ~name:"sim-versioned-random-run"
      (Staged.stage
         (full_run
            (Sb_registers.Adaptive.make_versioned ~delta:2 cfg)
            (fun () -> Sb_sim.Runtime.random_policy ~seed:1 ())));
  ]

let collision_tests =
  let vb = 256 in
  let k = 8 and n = 24 in
  let base = Sb_util.Prng.bytes (Sb_util.Prng.create 5) vb in
  [
    Test.make ~name:"rs-colliding-pair-k8"
      (Staged.stage (fun () ->
           ignore
             (Sb_codec.Codec.rs_vandermonde_colliding ~value_bytes:vb ~k ~n
                ~indices:[ 0; 3; 7; 11 ] ~base)));
  ]

(* ------------------------------------------------------------------ *)
(* Sanitizer overhead (EXPERIMENTS.md row M2)                          *)
(* ------------------------------------------------------------------ *)

(* Full simulator runs, bare vs. with every monitor attached (Collect
   mode, availability monitor on) — the cost of leaving the sanitizers
   enabled by default in tests.  Reported as ns per simulator step and
   as the monitored/bare ratio; the budget is < 2.5x. *)
let sanitize_overhead () =
  let vb = 64 in
  let f = 2 and k = 2 in
  let n = (2 * f) + k in
  let codec = Sb_codec.Codec.rs_vandermonde ~value_bytes:vb ~k ~n in
  let cfg = { Sb_registers.Common.n; f; codec } in
  let workload =
    Sb_experiments.Workloads.writers_and_readers ~value_bytes:vb ~writers:2
      ~writes_each:2 ~readers:2 ~reads_each:2
  in
  let algos =
    [
      ("adaptive", Sb_registers.Adaptive.make cfg, k);
      ( "abd",
        Sb_registers.Abd.make
          { cfg with codec = Sb_codec.Codec.replication ~value_bytes:vb ~n },
        1 );
    ]
  in
  let steps_of ~monitored algo mk =
    let w = Sb_sim.Runtime.create ~algorithm:algo ~n ~f ~workload () in
    if monitored then ignore (Sb_sanitize.Monitor.attach (mk ()) w);
    (Sb_sim.Runtime.run w (Sb_sim.Runtime.random_policy ~seed:1 ())).Sb_sim.Runtime.steps
  in
  let tests =
    List.concat_map
      (fun (name, algo, k) ->
        let mk () = Sb_sanitize.Monitor.config ~reg_avail:true ~k () in
        [
          Test.make ~name:(name ^ "-bare")
            (Staged.stage (fun () -> ignore (steps_of ~monitored:false algo mk)));
          Test.make
            ~name:(name ^ "-monitored")
            (Staged.stage (fun () -> ignore (steps_of ~monitored:true algo mk)));
        ])
      algos
  in
  let results = measure ~name:"sanitize-overhead" tests in
  let ns suffix =
    (* grouped tests are keyed "group/test" *)
    Hashtbl.fold
      (fun key ols acc ->
        if
          String.length key >= String.length suffix
          && String.sub key (String.length key - String.length suffix)
               (String.length suffix)
             = suffix
        then
          match Analyze.OLS.estimates ols with Some (e :: _) -> e | _ -> acc
        else acc)
      results nan
  in
  let table =
    Sb_util.Table.create ~title:"M2  sanitizer overhead (full run, random policy)"
      [
        ("algorithm", Sb_util.Table.Left);
        ("steps", Sb_util.Table.Right);
        ("bare ns/step", Sb_util.Table.Right);
        ("monitored ns/step", Sb_util.Table.Right);
        ("ratio", Sb_util.Table.Right);
      ]
  in
  let budget_ok = ref true in
  List.iter
    (fun (name, algo, k) ->
      let mk () = Sb_sanitize.Monitor.config ~reg_avail:true ~k () in
      let steps = steps_of ~monitored:false algo mk in
      let bare = ns (name ^ "-bare") /. float_of_int steps in
      let mon = ns (name ^ "-monitored") /. float_of_int steps in
      let ratio = mon /. bare in
      if ratio >= 2.5 then budget_ok := false;
      Sb_util.Table.add_row table
        [
          name;
          string_of_int steps;
          Printf.sprintf "%.0f" bare;
          Printf.sprintf "%.0f" mon;
          Printf.sprintf "%.2fx" ratio;
        ])
    algos;
  Sb_util.Table.print table;
  Printf.printf "budget (< 2.50x): %s\n" (if !budget_ok then "ok" else "EXCEEDED");
  !budget_ok

(* ------------------------------------------------------------------ *)
(* Chaos overhead (EXPERIMENTS.md row M3)                              *)
(* ------------------------------------------------------------------ *)

(* Message-passing runs, fault-free random schedule vs. the full fault
   plane (loss + duplication + delay + one crash/recovery, retransmission
   armed, Sb_faults injection policy).  Faulty runs take more steps by
   design; the per-step cost of the fault plane itself is what is
   budgeted (< 2.5x). *)
let chaos_overhead () =
  let module MP = Sb_msgnet.Mp_runtime in
  let vb = 64 in
  let f = 1 and k = 2 in
  let n = (2 * f) + k in
  let codec = Sb_codec.Codec.rs_vandermonde ~value_bytes:vb ~k ~n in
  let cfg = { Sb_registers.Common.n; f; codec } in
  let workload =
    Sb_experiments.Workloads.writers_and_readers ~value_bytes:vb ~writers:2
      ~writes_each:2 ~readers:1 ~reads_each:2
  in
  let plan =
    Sb_faults.Plan.crash_recovery ~server:0 ~crash_at:50 ~recover_at:150
      (Sb_faults.Plan.lossy ~duplicate:0.1 ~delay:0.05 0.2)
  in
  let bare_run () =
    let w =
      MP.create ~algorithm:(Sb_registers.Adaptive.make cfg) ~n ~f ~workload ()
    in
    (MP.run w (MP.random_policy ~seed:1 ())).MP.steps
  in
  let chaos_run () =
    let w =
      MP.create ~retransmit:{ MP.rto = 50; max_attempts = 0 }
        ~algorithm:(Sb_registers.Adaptive.make cfg) ~n ~f ~workload ()
    in
    (MP.run w (Sb_faults.Inject.policy ~seed:1 plan)).MP.steps
  in
  let tests =
    [
      Test.make ~name:"msgnet-bare" (Staged.stage (fun () -> ignore (bare_run ())));
      Test.make ~name:"msgnet-chaos"
        (Staged.stage (fun () -> ignore (chaos_run ())));
    ]
  in
  let results = measure ~name:"chaos-overhead" tests in
  let bare_steps = bare_run () and chaos_steps = chaos_run () in
  let bare = ns_per_run results "chaos-overhead/msgnet-bare" /. float_of_int bare_steps in
  let chaos =
    ns_per_run results "chaos-overhead/msgnet-chaos" /. float_of_int chaos_steps
  in
  let ratio = chaos /. bare in
  let table =
    Sb_util.Table.create
      ~title:"M3  fault-plane overhead (message-passing run, adaptive)"
      [
        ("schedule", Sb_util.Table.Left);
        ("steps", Sb_util.Table.Right);
        ("ns/step", Sb_util.Table.Right);
        ("ratio", Sb_util.Table.Right);
      ]
  in
  Sb_util.Table.add_row table
    [ "fault-free"; string_of_int bare_steps; Printf.sprintf "%.0f" bare; "1.00x" ];
  Sb_util.Table.add_row table
    [
      "chaos (drop 0.2 + dup + delay + crash/recovery)";
      string_of_int chaos_steps;
      Printf.sprintf "%.0f" chaos;
      Printf.sprintf "%.2fx" ratio;
    ];
  Sb_util.Table.print table;
  let ok = ratio < 2.5 in
  Printf.printf "budget (< 2.50x per step): %s\n" (if ok then "ok" else "EXCEEDED");
  ok

let micro () =
  run_group ~name:"galois-field" gf_tests;
  run_group ~name:"codecs-1KiB" codec_tests;
  run_group ~name:"collision-finder" collision_tests;
  run_group ~name:"simulator" sim_tests

let tables () =
  List.iter Sb_experiments.Experiments.print_outcome
    (Sb_experiments.Experiments.all ())

let () =
  let mode = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  match mode with
  | "tables" -> tables ()
  | "micro" -> micro ()
  | "sanitize-overhead" -> if not (sanitize_overhead ()) then exit 1
  | "chaos-overhead" -> if not (chaos_overhead ()) then exit 1
  | "all" ->
    tables ();
    micro ();
    ignore (sanitize_overhead ());
    ignore (chaos_overhead ())
  | _ ->
    prerr_endline "usage: main.exe [tables|micro|sanitize-overhead|all]";
    exit 2
