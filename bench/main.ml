(* Benchmark harness.

   Two parts:
   - the per-claim experiment tables (E1-E10 of DESIGN.md), regenerating
     every analytic "table" of the paper's evaluation, and
   - Bechamel microbenchmarks of the substrates (Galois-field arithmetic,
     codec encode/decode, simulator and adversary step rates).

   plus `sanitize-overhead`: the cost of running with the [Sb_sanitize]
   monitors attached (EXPERIMENTS.md row M2; exits non-zero past 2.5x),
   and `chaos-overhead`: the per-step cost of the [Sb_faults] fault
   plane on message-passing runs (row M3; same 2.5x budget).

   Usage: main.exe [tables|micro|sanitize-overhead|chaos-overhead|all]
   (default: all). *)

open Bechamel
open Toolkit

let ns_per_run results name =
  match Hashtbl.find_opt results name with
  | None -> nan
  | Some ols -> (
    match Analyze.OLS.estimates ols with
    | Some (e :: _) -> e
    | _ -> nan)

let measure ~name tests =
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] (Test.make_grouped ~name tests) in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  Analyze.all ols Instance.monotonic_clock raw

let run_group ~name tests =
  let results = measure ~name tests in
  let table =
    Sb_util.Table.create ~title:(Printf.sprintf "B  %s (ns/op)" name)
      [ ("benchmark", Sb_util.Table.Left); ("ns/op", Sb_util.Table.Right) ]
  in
  let names = Hashtbl.fold (fun k _ acc -> k :: acc) results [] in
  List.iter
    (fun n ->
      Sb_util.Table.add_row table [ n; Printf.sprintf "%.1f" (ns_per_run results n) ])
    (List.sort compare names);
  Sb_util.Table.print table

(* ------------------------------------------------------------------ *)
(* Microbenchmarks                                                     *)
(* ------------------------------------------------------------------ *)

let value_bytes = 1024
let prng = Sb_util.Prng.create 4242
let value = Sb_util.Prng.bytes prng value_bytes

let codec_tests =
  let mk name codec =
    let open Sb_codec.Codec in
    let k = codec.k in
    (* Decode from the last k of the first k+2 block indices, when the
       codec has spare blocks; otherwise from the k data blocks. *)
    let avail = match codec.n with Some n -> min n (k + 2) | None -> k + 2 in
    let blocks = List.init avail (fun i -> (i, codec.encode value i)) in
    let last_k = List.filteri (fun idx _ -> idx >= avail - k) blocks in
    [
      Test.make ~name:(name ^ "-encode1")
        (Staged.stage (fun () -> ignore (codec.encode value 0)));
      Test.make
        ~name:(name ^ "-encode-all")
        (Staged.stage (fun () ->
             let n = match codec.n with Some n -> n | None -> k + 4 in
             for i = 0 to n - 1 do
               ignore (codec.encode value i)
             done));
      Test.make ~name:(name ^ "-decode")
        (Staged.stage (fun () -> ignore (codec.decode last_k)));
    ]
  in
  List.concat
    [
      mk "replication" (Sb_codec.Codec.replication ~value_bytes ~n:12);
      mk "striping-k4" (Sb_codec.Codec.striping ~value_bytes ~k:4);
      mk "rs-vand-k4n12" (Sb_codec.Codec.rs_vandermonde ~value_bytes ~k:4 ~n:12);
      mk "rs-vand-k8n24" (Sb_codec.Codec.rs_vandermonde ~value_bytes ~k:8 ~n:24);
      mk "rs-cauchy-k4n12" (Sb_codec.Codec.rs_cauchy ~value_bytes ~k:4 ~n:12);
      mk "rs16-k4n12" (Sb_codec.Codec.rs_vandermonde16 ~value_bytes ~k:4 ~n:12);
      mk "fountain-k4" (Sb_codec.Codec.fountain ~value_bytes ~k:4 ());
    ]

let gf_tests =
  [
    Test.make ~name:"gf256-mul-table"
      (Staged.stage (fun () ->
           let acc = ref 0 in
           for i = 1 to 255 do
             acc := !acc lxor Sb_gf.Gf256.mul i 173
           done;
           ignore !acc));
    Test.make ~name:"gf256-mul-slow"
      (Staged.stage (fun () ->
           let acc = ref 0 in
           for i = 1 to 255 do
             acc := !acc lxor Sb_gf.Gf256.mul_slow i 173
           done;
           ignore !acc));
    Test.make ~name:"gf256-inv"
      (Staged.stage (fun () ->
           let acc = ref 0 in
           for i = 1 to 255 do
             acc := !acc lxor Sb_gf.Gf256.inv i
           done;
           ignore !acc));
    Test.make ~name:"gf2p16-mul-table"
      (Staged.stage (fun () ->
           let acc = ref 0 in
           for i = 1 to 255 do
             acc := !acc lxor Sb_gf.Gf2p16.mul (i * 171) 44203
           done;
           ignore !acc));
  ]

let sim_tests =
  let vb = 64 in
  let f = 2 and k = 2 in
  let n = (2 * f) + k in
  let codec = Sb_codec.Codec.rs_vandermonde ~value_bytes:vb ~k ~n in
  let cfg = { Sb_registers.Common.n; f; codec } in
  let workload =
    Sb_experiments.Workloads.writers_and_readers ~value_bytes:vb ~writers:2
      ~writes_each:2 ~readers:2 ~reads_each:2
  in
  let full_run algo policy_of () =
    let w = Sb_sim.Runtime.create ~algorithm:algo ~n ~f ~workload () in
    ignore (Sb_sim.Runtime.run w (policy_of ()))
  in
  [
    Test.make ~name:"sim-adaptive-random-run"
      (Staged.stage
         (full_run (Sb_registers.Adaptive.make cfg) (fun () ->
              Sb_sim.Runtime.random_policy ~seed:1 ())));
    Test.make ~name:"sim-adaptive-fifo-run"
      (Staged.stage
         (full_run (Sb_registers.Adaptive.make cfg) (fun () ->
              Sb_sim.Runtime.fifo_policy ())));
    Test.make ~name:"sim-abd-random-run"
      (Staged.stage
         (full_run
            (Sb_registers.Abd.make
               { cfg with codec = Sb_codec.Codec.replication ~value_bytes:vb ~n })
            (fun () -> Sb_sim.Runtime.random_policy ~seed:1 ())));
    Test.make ~name:"adversary-lower-bound-run"
      (Staged.stage (fun () ->
           ignore
             (Sb_adversary.Lower_bound.run
                ~algorithm:(Sb_registers.Adaptive.make_unbounded cfg)
                ~cfg ~c:4 ())));
    Test.make ~name:"msgnet-adaptive-random-run"
      (Staged.stage (fun () ->
           let w =
             Sb_msgnet.Mp_runtime.create ~algorithm:(Sb_registers.Adaptive.make cfg)
               ~n ~f ~workload ()
           in
           ignore
             (Sb_msgnet.Mp_runtime.run w (Sb_msgnet.Mp_runtime.random_policy ~seed:1 ()))));
    Test.make ~name:"kv-put-get"
      (Staged.stage (fun () ->
           let store = Sb_kv.Store.create ~cfg () in
           Sb_kv.Store.put store ~key:"k" (Bytes.of_string "value");
           ignore (Sb_kv.Store.get store ~key:"k")));
    Test.make ~name:"sim-versioned-random-run"
      (Staged.stage
         (full_run
            (Sb_registers.Adaptive.make_versioned ~delta:2 cfg)
            (fun () -> Sb_sim.Runtime.random_policy ~seed:1 ())));
  ]

let collision_tests =
  let vb = 256 in
  let k = 8 and n = 24 in
  let base = Sb_util.Prng.bytes (Sb_util.Prng.create 5) vb in
  [
    Test.make ~name:"rs-colliding-pair-k8"
      (Staged.stage (fun () ->
           ignore
             (Sb_codec.Codec.rs_vandermonde_colliding ~value_bytes:vb ~k ~n
                ~indices:[ 0; 3; 7; 11 ] ~base)));
  ]

(* ------------------------------------------------------------------ *)
(* Sanitizer overhead (EXPERIMENTS.md row M2)                          *)
(* ------------------------------------------------------------------ *)

(* Full simulator runs, bare vs. with every monitor attached (Collect
   mode, availability monitor on) — the cost of leaving the sanitizers
   enabled by default in tests.  Reported as ns per simulator step and
   as the monitored/bare ratio; the budget is < 2.5x. *)
let sanitize_overhead () =
  let vb = 64 in
  let f = 2 and k = 2 in
  let n = (2 * f) + k in
  let codec = Sb_codec.Codec.rs_vandermonde ~value_bytes:vb ~k ~n in
  let cfg = { Sb_registers.Common.n; f; codec } in
  let workload =
    Sb_experiments.Workloads.writers_and_readers ~value_bytes:vb ~writers:2
      ~writes_each:2 ~readers:2 ~reads_each:2
  in
  let algos =
    [
      ("adaptive", Sb_registers.Adaptive.make cfg, k);
      ( "abd",
        Sb_registers.Abd.make
          { cfg with codec = Sb_codec.Codec.replication ~value_bytes:vb ~n },
        1 );
    ]
  in
  let steps_of ~monitored algo mk =
    let w = Sb_sim.Runtime.create ~algorithm:algo ~n ~f ~workload () in
    if monitored then ignore (Sb_sanitize.Monitor.attach (mk ()) w);
    (Sb_sim.Runtime.run w (Sb_sim.Runtime.random_policy ~seed:1 ())).Sb_sim.Runtime.steps
  in
  let tests =
    List.concat_map
      (fun (name, algo, k) ->
        let mk () = Sb_sanitize.Monitor.config ~reg_avail:true ~k () in
        [
          Test.make ~name:(name ^ "-bare")
            (Staged.stage (fun () -> ignore (steps_of ~monitored:false algo mk)));
          Test.make
            ~name:(name ^ "-monitored")
            (Staged.stage (fun () -> ignore (steps_of ~monitored:true algo mk)));
        ])
      algos
  in
  let results = measure ~name:"sanitize-overhead" tests in
  let ns suffix =
    (* grouped tests are keyed "group/test" *)
    Hashtbl.fold
      (fun key ols acc ->
        if
          String.length key >= String.length suffix
          && String.sub key (String.length key - String.length suffix)
               (String.length suffix)
             = suffix
        then
          match Analyze.OLS.estimates ols with Some (e :: _) -> e | _ -> acc
        else acc)
      results nan
  in
  let table =
    Sb_util.Table.create ~title:"M2  sanitizer overhead (full run, random policy)"
      [
        ("algorithm", Sb_util.Table.Left);
        ("steps", Sb_util.Table.Right);
        ("bare ns/step", Sb_util.Table.Right);
        ("monitored ns/step", Sb_util.Table.Right);
        ("ratio", Sb_util.Table.Right);
      ]
  in
  let budget_ok = ref true in
  List.iter
    (fun (name, algo, k) ->
      let mk () = Sb_sanitize.Monitor.config ~reg_avail:true ~k () in
      let steps = steps_of ~monitored:false algo mk in
      let bare = ns (name ^ "-bare") /. float_of_int steps in
      let mon = ns (name ^ "-monitored") /. float_of_int steps in
      let ratio = mon /. bare in
      if ratio >= 2.5 then budget_ok := false;
      Sb_util.Table.add_row table
        [
          name;
          string_of_int steps;
          Printf.sprintf "%.0f" bare;
          Printf.sprintf "%.0f" mon;
          Printf.sprintf "%.2fx" ratio;
        ])
    algos;
  Sb_util.Table.print table;
  Printf.printf "budget (< 2.50x): %s\n" (if !budget_ok then "ok" else "EXCEEDED");
  !budget_ok

(* ------------------------------------------------------------------ *)
(* Chaos overhead (EXPERIMENTS.md row M3)                              *)
(* ------------------------------------------------------------------ *)

(* Message-passing runs, fault-free random schedule vs. the full fault
   plane (loss + duplication + delay + one crash/recovery, retransmission
   armed, Sb_faults injection policy).  Faulty runs take more steps by
   design; the per-step cost of the fault plane itself is what is
   budgeted (< 2.5x). *)
let chaos_overhead () =
  let module MP = Sb_msgnet.Mp_runtime in
  let vb = 64 in
  let f = 1 and k = 2 in
  let n = (2 * f) + k in
  let codec = Sb_codec.Codec.rs_vandermonde ~value_bytes:vb ~k ~n in
  let cfg = { Sb_registers.Common.n; f; codec } in
  let workload =
    Sb_experiments.Workloads.writers_and_readers ~value_bytes:vb ~writers:2
      ~writes_each:2 ~readers:1 ~reads_each:2
  in
  let plan =
    Sb_faults.Plan.crash_recovery ~server:0 ~crash_at:50 ~recover_at:150
      (Sb_faults.Plan.lossy ~duplicate:0.1 ~delay:0.05 0.2)
  in
  let bare_run () =
    let w =
      MP.create ~algorithm:(Sb_registers.Adaptive.make cfg) ~n ~f ~workload ()
    in
    (MP.run w (MP.random_policy ~seed:1 ())).MP.steps
  in
  let chaos_run () =
    let w =
      MP.create ~retransmit:{ MP.rto = 50; max_attempts = 0 }
        ~algorithm:(Sb_registers.Adaptive.make cfg) ~n ~f ~workload ()
    in
    (MP.run w (Sb_faults.Inject.policy ~seed:1 plan)).MP.steps
  in
  let tests =
    [
      Test.make ~name:"msgnet-bare" (Staged.stage (fun () -> ignore (bare_run ())));
      Test.make ~name:"msgnet-chaos"
        (Staged.stage (fun () -> ignore (chaos_run ())));
    ]
  in
  let results = measure ~name:"chaos-overhead" tests in
  let bare_steps = bare_run () and chaos_steps = chaos_run () in
  let bare = ns_per_run results "chaos-overhead/msgnet-bare" /. float_of_int bare_steps in
  let chaos =
    ns_per_run results "chaos-overhead/msgnet-chaos" /. float_of_int chaos_steps
  in
  let ratio = chaos /. bare in
  let table =
    Sb_util.Table.create
      ~title:"M3  fault-plane overhead (message-passing run, adaptive)"
      [
        ("schedule", Sb_util.Table.Left);
        ("steps", Sb_util.Table.Right);
        ("ns/step", Sb_util.Table.Right);
        ("ratio", Sb_util.Table.Right);
      ]
  in
  Sb_util.Table.add_row table
    [ "fault-free"; string_of_int bare_steps; Printf.sprintf "%.0f" bare; "1.00x" ];
  Sb_util.Table.add_row table
    [
      "chaos (drop 0.2 + dup + delay + crash/recovery)";
      string_of_int chaos_steps;
      Printf.sprintf "%.0f" chaos;
      Printf.sprintf "%.2fx" ratio;
    ];
  Sb_util.Table.print table;
  let ok = ratio < 2.5 in
  Printf.printf "budget (< 2.50x per step): %s\n" (if ok then "ok" else "EXCEEDED");
  ok

(* ------------------------------------------------------------------ *)
(* perf — machine-readable performance gates                           *)
(* ------------------------------------------------------------------ *)

(* `main.exe perf [--quick] [--check]` drives the two hot paths the
   acceptance criteria gate on — parallel exploration and the codec row
   multiplies — and writes BENCH_explore.json / BENCH_codec.json with
   flat key/value results, pass/fail gates, and a CPU calibration
   number so a committed baseline from one machine can be compared on
   another (--check: fail on >25% calibration-normalised regression).

   Quick mode (CI smoke) uses a delay-bounded exploration and enforces
   only the determinism gate plus the codec and baseline gates; the
   wall-clock speedup and cache-ratio gates need the full flagship
   space and a multi-core machine, so they are enforced in full mode
   only (and the speedup bar scales with the available cores). *)

module E = Sb_modelcheck.Explore

let wall f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* Fixed integer workload timing, best of three: normalises metric
   values across machines of different speed. *)
let calibration_ns () =
  let once () =
    let _, dt =
      wall (fun () ->
          let acc = ref 0 in
          for i = 1 to 50_000_000 do
            acc := !acc lxor (i * 0x9e3779b1)
          done;
          ignore (Sys.opaque_identity !acc))
    in
    dt *. 1e9
  in
  let a = once () and b = once () and c = once () in
  Float.min a (Float.min b c)

(* The flat-JSON writer/reader/baseline-checker is shared with the
   chaos and loadgen reports: Sb_util.Jsonx. *)
let json_out = Sb_util.Jsonx.write
let jbool = Sb_util.Jsonx.bool
let jfloat = Sb_util.Jsonx.float

let stats_str (s : E.stats) =
  Printf.sprintf
    "schedules=%d transitions=%d sleep=%d cache=%d bound=%d depth=%d violations=%d"
    s.E.schedules s.E.transitions s.E.sleep_skips s.E.cache_skips s.E.bound_skips
    s.E.max_depth s.E.violations

let perf_explore_config ~bound ~cache () =
  let value_bytes = 64 in
  let n = 3 and f = 1 in
  let cfg =
    { Sb_registers.Common.n; f; codec = Sb_codec.Codec.replication ~value_bytes ~n }
  in
  let workload =
    Sb_experiments.Workloads.writers_and_readers ~value_bytes ~writers:2
      ~writes_each:1 ~readers:1 ~reads_each:1
  in
  E.config ~bound ~cache ~algorithm:(Sb_registers.Abd.make cfg) ~n ~f ~workload
    ~initial:(Bytes.make value_bytes '\000')
    ~check:Sb_spec.Regularity.check_weak ()

(* On a single core, extra domains only add GC-rendezvous stalls
   (measured ~4x slower wall for jobs=4), so the speedup gate needs at
   least two real cores; below that the number is recorded, not
   enforced. *)
let required_speedup cores =
  if cores >= 4 then Some 2.0 else if cores >= 2 then Some 1.4 else None

let perf_explore ~quick ~calib =
  let bound = if quick then E.Delay 3 else E.Exhaustive in
  let best f =
    (* best of three in quick mode (sub-second runs), single shot on
       the flagship space; compact first so one stage's heap (notably
       the multi-domain jobs=4 run) doesn't tax the next stage's GC *)
    Gc.compact ();
    let (r, t) = wall f in
    if not quick then (r, t)
    else
      let (_, t2) = wall f and (_, t3) = wall f in
      (r, Float.min t (Float.min t2 t3))
  in
  (* The cache is live only under the exhaustive bound; quick mode
     measures it on the small 1w/1r space (informational). *)
  let cache_cfg ~cache =
    if not quick then perf_explore_config ~bound:E.Exhaustive ~cache ()
    else begin
      let value_bytes = 64 in
      let n = 3 and f = 1 in
      let cfg =
        { Sb_registers.Common.n; f; codec = Sb_codec.Codec.replication ~value_bytes ~n }
      in
      let workload =
        Sb_experiments.Workloads.writers_and_readers ~value_bytes ~writers:1
          ~writes_each:1 ~readers:1 ~reads_each:1
      in
      E.config ~cache ~algorithm:(Sb_registers.Abd.make cfg) ~n ~f ~workload
        ~initial:(Bytes.make value_bytes '\000')
        ~check:Sb_spec.Regularity.check_weak ()
    end
  in
  (* Through Pexplore, like the CLI: the partitioned driver's per-task
     cache tables are measurably kinder to the GC than one giant
     single-tree table (~52s vs ~68s on the flagship).  Measured
     BEFORE any domain is spawned: once the process has ever run
     multiple domains, the runtime's single-domain fast paths stay
     off and the cached pass reads ~15% slower than the CLI's. *)
  let ou, tu =
    best (fun () -> Sb_parallel.Pexplore.explore ~jobs:1 (cache_cfg ~cache:false))
  in
  let oc_, tc =
    best (fun () -> Sb_parallel.Pexplore.explore ~jobs:1 (cache_cfg ~cache:true))
  in
  let o1, t1 =
    best (fun () ->
        Sb_parallel.Pexplore.explore ~jobs:1 (perf_explore_config ~bound ~cache:false ()))
  in
  let o4, t4 =
    best (fun () ->
        Sb_parallel.Pexplore.explore ~jobs:4 (perf_explore_config ~bound ~cache:false ()))
  in
  let cores = Domain.recommended_domain_count () in
  let identical = stats_str o1.E.stats = stats_str o4.E.stats in
  let speedup = t1 /. t4 in
  let cache_ratio = tc /. tu in
  let speedup_req = required_speedup cores in
  (* Quick mode runs spaces too small for stable wall-clock ratios:
     its speedup/cache numbers are recorded but not enforced.  The
     cache gate is a regression guard, not a win claim: the hash key
     cut the cache's overhead from the Marshal key's ~4.1x to ~3.2x on
     the flagship (see EXPERIMENTS.md M1 for why it still ships off by
     default); 3.5x here catches a return to Marshal-class cost. *)
  let gated = not quick in
  let speedup_pass =
    (not gated)
    || (match speedup_req with None -> true | Some req -> speedup >= req)
  in
  let cache_gate = 3.5 in
  let cache_pass =
    (not gated) || (cache_ratio <= cache_gate && oc_.E.stats.E.cache_skips > 0)
  in
  let pass = identical && speedup_pass && cache_pass in
  let table =
    Sb_util.Table.create
      ~title:
        (Printf.sprintf "P1  parallel exploration (%s, %d core(s) available)"
           (if quick then "quick: 2w1r delay:3" else "flagship: 2w1r exhaustive")
           cores)
      [ ("measurement", Sb_util.Table.Left); ("value", Sb_util.Table.Right) ]
  in
  List.iter
    (fun (k, v) -> Sb_util.Table.add_row table [ k; v ])
    [
      ("schedules", string_of_int o1.E.stats.E.schedules);
      ("jobs=1 wall", Printf.sprintf "%.2fs" t1);
      ("jobs=4 wall", Printf.sprintf "%.2fs" t4);
      ("speedup",
       Printf.sprintf "%.2fx (gate: %s)" speedup
         (match speedup_req with
          | Some req when gated -> Printf.sprintf ">= %.1fx, enforced" req
          | Some req -> Printf.sprintf ">= %.1fx, advisory in quick mode" req
          | None -> "none below 2 cores"));
      ("identical totals", if identical then "yes" else "NO");
      ("uncached wall", Printf.sprintf "%.2fs" tu);
      ("hash-keyed --cache wall", Printf.sprintf "%.2fs" tc);
      ("cache ratio", Printf.sprintf "%.2fx (gate: <= %.1fx, %s)" cache_ratio
         cache_gate
         (if gated then "enforced" else "advisory in quick mode"));
      ("cache prunes", string_of_int oc_.E.stats.E.cache_skips);
    ];
  Sb_util.Table.print table;
  json_out "BENCH_explore.json"
    [
      ("suite", "\"explore\"");
      ("mode", if quick then "\"quick\"" else "\"full\"");
      ("cores", string_of_int cores);
      ("calibration_ns", jfloat calib);
      ("schedules", string_of_int o1.E.stats.E.schedules);
      ("transitions", string_of_int o1.E.stats.E.transitions);
      ("jobs1_s", jfloat t1);
      ("jobs4_s", jfloat t4);
      ("speedup", jfloat speedup);
      ("speedup_required",
       match speedup_req with None -> "null" | Some req -> jfloat req);
      ("identical_totals", jbool identical);
      ("uncached_s", jfloat tu);
      ("cached_s", jfloat tc);
      ("cache_ratio", jfloat cache_ratio);
      ("cache_prunes", string_of_int oc_.E.stats.E.cache_skips);
      ("uncached_schedules", string_of_int ou.E.stats.E.schedules);
      ("norm_jobs1", jfloat (t1 *. 1e9 /. calib));
      ("pass", jbool pass);
    ];
  pass

(* Self-describing framing overhead: the same loadgen-shaped message
   mix encoded and decoded at wire v1 (positional framing) and at the
   current version (schema-tagged handshakes, keyed frames).  The gate
   is a ratio, so it is machine-independent.  The gated shape is the
   batched one — the SDK coalesces traffic into Req_batch/Resp_batch
   frames, so that is what the hot path actually carries.  The budget
   is 25%: the per-entry key tag (the multi-object feature itself, not
   framing waste) costs ~11% over keyless positional v1, batch framing
   adds nothing on top of it (batched decode is *faster* than v1 —
   fewer frames), and the rest is headroom for single-core measurement
   noise.  The unbatched-singles ratio is reported but not gated
   (singles survive only as retransmits and v1 fallback). *)
let wire_mix =
  let module W = Sb_service.Wire in
  let module B = Sb_storage.Block in
  let module T = Sb_storage.Timestamp in
  let module C = Sb_storage.Chunk in
  let module O = Sb_storage.Objstate in
  let module D = Sb_sim.Rmwdesc in
  let blk i = B.v ~source:i ~index:(i * 3 mod 7) (Bytes.make 64 'p') in
  let ts i = T.make ~num:(100 + i) ~client:(i mod 5) in
  let chunk i = C.v ~ts:(ts i) (blk i) in
  let state = O.init ~vp:[ chunk 1; chunk 2 ] ~vf:[ chunk 3 ] () in
  let own = { W.ps_version = W.version; ps_hash = W.schema_hash } in
  let request i nature desc =
    W.Request
      {
        W.rq_key = "";
        rq_client = i mod 8;
        rq_ticket = i;
        rq_op = i;
        rq_nature = nature;
        rq_payload = [ blk i ];
        rq_desc = desc;
      }
  in
  let response i resp =
    W.Response
      {
        W.rs_key = "";
        rs_ticket = i;
        rs_op = i;
        rs_server = 1;
        rs_incarnation = 4;
        rs_dedup = false;
        rs_resp = resp;
      }
  in
  (* Loadgen-shaped: one handshake pair per connection, then a long run
     of request/response traffic with a periodic stats sample — the
     schema-tagged handshake has to amortise the way it does live. *)
  let traffic =
    List.concat_map
      (fun i ->
        let desc =
          match i mod 3 with
          | 0 -> D.Abd_store (chunk i)
          | 1 -> D.Snapshot
          | _ -> D.Adaptive_gc { piece = blk i; ts = ts i }
        in
        let nature = if i mod 3 = 1 then `Readonly else `Mutating in
        let resp = if i mod 3 = 1 then D.Snap state else D.Ack in
        [ request (10 + i) nature desc; response (10 + i) resp ])
      (List.init 16 Fun.id)
  in
  [
    W.Hello { client = 3; schema = Some own };
    W.Welcome { server = 1; incarnation = 4; schema = Some own };
  ]
  @ traffic
  @ [
      W.Stats_query;
      W.Stats
        {
          W.st_server = 1;
          st_incarnation = 4;
          st_storage_bits = 1 lsl 20;
          st_max_bits = 1 lsl 21;
          st_dedup_hits = 17;
          st_applied = 123;
          st_keys = 0;
          st_shards = [];
        };
    ]

(* The same traffic the way the SDK frames it at the current version:
   requests and responses coalesced into batch frames, handshakes and
   stats still singles. *)
let wire_mix_batched =
  let module W = Sb_service.Wire in
  let reqs = List.filter_map (function W.Request r -> Some r | _ -> None) wire_mix in
  let resps = List.filter_map (function W.Response r -> Some r | _ -> None) wire_mix in
  let singles =
    List.filter (function W.Request _ | W.Response _ -> false | _ -> true) wire_mix
  in
  singles @ [ W.Req_batch reqs; W.Resp_batch resps ]

let wire_overhead () =
  let module W = Sb_service.Wire in
  let enc v mix () = List.iter (fun m -> ignore (W.encode_msg ~version:v m)) mix in
  let bodies v mix =
    List.map
      (fun m ->
        let f = W.encode_msg ~version:v m in
        Bytes.sub f 4 (Bytes.length f - 4))
      mix
  in
  let b1 = bodies 1 wire_mix
  and bs = bodies W.version wire_mix
  and bb = bodies W.version wire_mix_batched in
  let dec bs () =
    List.iter
      (fun b ->
        match W.decode_msg b with
        | Ok _ -> ()
        | Error e -> failwith ("wire bench frame rejected: " ^ e))
      bs
  in
  let results =
    measure ~name:"perf-wire"
      [
        Test.make ~name:"v1-encode" (Staged.stage (enc 1 wire_mix));
        Test.make ~name:"vN-single-encode" (Staged.stage (enc W.version wire_mix));
        Test.make ~name:"vN-batch-encode" (Staged.stage (enc W.version wire_mix_batched));
        Test.make ~name:"v1-decode" (Staged.stage (dec b1));
        Test.make ~name:"vN-single-decode" (Staged.stage (dec bs));
        Test.make ~name:"vN-batch-decode" (Staged.stage (dec bb));
      ]
  in
  let us key = ns_per_run results ("perf-wire/" ^ key) /. 1e3 in
  let e1 = us "v1-encode" and es = us "vN-single-encode" and eb = us "vN-batch-encode" in
  let d1 = us "v1-decode" and ds = us "vN-single-decode" and db = us "vN-batch-decode" in
  let single_ratio = (es +. ds) /. (e1 +. d1) in
  let batch_ratio = (eb +. db) /. (e1 +. d1) in
  (e1, es, eb, d1, ds, db, single_ratio, batch_ratio)

(* Gates 25% below the pre-optimisation B1 numbers (~130 us encode-all,
   ~47 us decode for 1 KiB over rs-vandermonde k=4 n=12): the row
   multiplies must stay measurably faster than the element loops they
   replaced. *)
let perf_codec ~calib =
  let open Sb_codec.Codec in
  let codec = rs_vandermonde ~value_bytes ~k:4 ~n:12 in
  let codec16 = rs_vandermonde16 ~value_bytes ~k:4 ~n:12 in
  let mk name codec =
    let k = codec.k in
    let avail = match codec.n with Some n -> min n (k + 2) | None -> k + 2 in
    let blocks = List.init avail (fun i -> (i, codec.encode value i)) in
    let last_k = List.filteri (fun idx _ -> idx >= avail - k) blocks in
    [
      Test.make
        ~name:(name ^ "-encode-all")
        (Staged.stage (fun () ->
             let n = match codec.n with Some n -> n | None -> k + 4 in
             for i = 0 to n - 1 do
               ignore (codec.encode value i)
             done));
      Test.make ~name:(name ^ "-decode")
        (Staged.stage (fun () -> ignore (codec.decode last_k)));
    ]
  in
  let results = measure ~name:"perf-codec" (mk "rs8" codec @ mk "rs16" codec16) in
  let us key = ns_per_run results ("perf-codec/" ^ key) /. 1e3 in
  let enc = us "rs8-encode-all" and dec = us "rs8-decode" in
  let enc16 = us "rs16-encode-all" and dec16 = us "rs16-decode" in
  let enc_gate = 97.5 and dec_gate = 35.0 in
  let we1, wes, web, wd1, wds, wdb, wire_single, wire_ratio = wire_overhead () in
  let wire_gate = 1.25 in
  let pass = enc < enc_gate && dec < dec_gate && wire_ratio < wire_gate in
  let table =
    Sb_util.Table.create ~title:"P2  codec hot path (1 KiB, rs-vandermonde k=4 n=12)"
      [ ("measurement", Sb_util.Table.Left); ("value", Sb_util.Table.Right) ]
  in
  List.iter
    (fun (k, v) -> Sb_util.Table.add_row table [ k; v ])
    [
      ("encode-all (12 blocks)", Printf.sprintf "%.1f us (gate: < %.1f us)" enc enc_gate);
      ("decode (from 4 blocks)", Printf.sprintf "%.1f us (gate: < %.1f us)" dec dec_gate);
      ("gf2p16 encode-all", Printf.sprintf "%.1f us" enc16);
      ("gf2p16 decode", Printf.sprintf "%.1f us" dec16);
      ("wire mix v1 enc+dec", Printf.sprintf "%.1f us" (we1 +. wd1));
      ( "wire mix vN singles",
        Printf.sprintf "%.1f us (%.3fx, not gated)" (wes +. wds) wire_single );
      ("wire mix vN batched", Printf.sprintf "%.1f us" (web +. wdb));
      ( "wire framing overhead",
        Printf.sprintf "%.3fx (gate: < %.2fx, batched)" wire_ratio wire_gate );
    ];
  Sb_util.Table.print table;
  json_out "BENCH_codec.json"
    [
      ("suite", "\"codec\"");
      ("calibration_ns", jfloat calib);
      ("value_bytes", string_of_int value_bytes);
      ("encode_all_us", jfloat enc);
      ("decode_us", jfloat dec);
      ("encode_all_gate_us", jfloat enc_gate);
      ("decode_gate_us", jfloat dec_gate);
      ("rs16_encode_all_us", jfloat enc16);
      ("rs16_decode_us", jfloat dec16);
      ("norm_encode_all", jfloat (enc *. 1e3 /. calib));
      ("norm_decode", jfloat (dec *. 1e3 /. calib));
      ("wire_v1_encode_us", jfloat we1);
      ("wire_vN_single_encode_us", jfloat wes);
      ("wire_vN_batch_encode_us", jfloat web);
      ("wire_v1_decode_us", jfloat wd1);
      ("wire_vN_single_decode_us", jfloat wds);
      ("wire_vN_batch_decode_us", jfloat wdb);
      ("wire_single_overhead_ratio", jfloat wire_single);
      ("wire_overhead_ratio", jfloat wire_ratio);
      ("wire_overhead_gate", jfloat wire_gate);
      ("pass", jbool pass);
    ];
  pass

(* Compare this run's calibration-normalised metrics against the
   committed baselines; >25% slower on any is a regression. *)
let perf_check () =
  let checks =
    [
      ("BENCH_explore.json", "bench/baselines/BENCH_explore.json", [ "norm_jobs1" ]);
      ( "BENCH_codec.json",
        "bench/baselines/BENCH_codec.json",
        [ "norm_encode_all"; "norm_decode" ] );
    ]
  in
  List.fold_left
    (fun acc (current, baseline, keys) ->
      Sb_util.Jsonx.check ~current ~baseline ~keys () && acc)
    true checks

let perf ~quick ~check =
  let calib = calibration_ns () in
  Printf.printf "calibration   : %.0f ns (fixed integer workload)\n" calib;
  let explore_ok = perf_explore ~quick ~calib in
  let codec_ok = perf_codec ~calib in
  let check_ok = if check then perf_check () else true in
  let ok = explore_ok && codec_ok && check_ok in
  Printf.printf "perf gates    : %s\n" (if ok then "ok" else "FAILED");
  ok

let micro () =
  run_group ~name:"galois-field" gf_tests;
  run_group ~name:"codecs-1KiB" codec_tests;
  run_group ~name:"collision-finder" collision_tests;
  run_group ~name:"simulator" sim_tests

let tables () =
  List.iter Sb_experiments.Experiments.print_outcome
    (Sb_experiments.Experiments.all ())

let () =
  let mode = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  let has flag = Array.exists (String.equal flag) Sys.argv in
  match mode with
  | "tables" -> tables ()
  | "micro" -> micro ()
  | "perf" -> if not (perf ~quick:(has "--quick") ~check:(has "--check")) then exit 1
  | "sanitize-overhead" -> if not (sanitize_overhead ()) then exit 1
  | "chaos-overhead" -> if not (chaos_overhead ()) then exit 1
  | "all" ->
    tables ();
    micro ();
    ignore (sanitize_overhead ());
    ignore (chaos_overhead ())
  | _ ->
    prerr_endline
      "usage: main.exe [tables|micro|perf [--quick] [--check]|sanitize-overhead|chaos-overhead|all]";
    exit 2
