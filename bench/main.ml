(* Benchmark harness.

   Two parts:
   - the per-claim experiment tables (E1-E10 of DESIGN.md), regenerating
     every analytic "table" of the paper's evaluation, and
   - Bechamel microbenchmarks of the substrates (Galois-field arithmetic,
     codec encode/decode, simulator and adversary step rates).

   Usage: main.exe [tables|micro|all] (default: all). *)

open Bechamel
open Toolkit

let ns_per_run results name =
  match Hashtbl.find_opt results name with
  | None -> nan
  | Some ols -> (
    match Analyze.OLS.estimates ols with
    | Some (e :: _) -> e
    | _ -> nan)

let run_group ~name tests =
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] (Test.make_grouped ~name tests) in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let table =
    Sb_util.Table.create ~title:(Printf.sprintf "B  %s (ns/op)" name)
      [ ("benchmark", Sb_util.Table.Left); ("ns/op", Sb_util.Table.Right) ]
  in
  let names = Hashtbl.fold (fun k _ acc -> k :: acc) results [] in
  List.iter
    (fun n ->
      Sb_util.Table.add_row table [ n; Printf.sprintf "%.1f" (ns_per_run results n) ])
    (List.sort compare names);
  Sb_util.Table.print table

(* ------------------------------------------------------------------ *)
(* Microbenchmarks                                                     *)
(* ------------------------------------------------------------------ *)

let value_bytes = 1024
let prng = Sb_util.Prng.create 4242
let value = Sb_util.Prng.bytes prng value_bytes

let codec_tests =
  let mk name codec =
    let open Sb_codec.Codec in
    let k = codec.k in
    (* Decode from the last k of the first k+2 block indices, when the
       codec has spare blocks; otherwise from the k data blocks. *)
    let avail = match codec.n with Some n -> min n (k + 2) | None -> k + 2 in
    let blocks = List.init avail (fun i -> (i, codec.encode value i)) in
    let last_k = List.filteri (fun idx _ -> idx >= avail - k) blocks in
    [
      Test.make ~name:(name ^ "-encode1")
        (Staged.stage (fun () -> ignore (codec.encode value 0)));
      Test.make
        ~name:(name ^ "-encode-all")
        (Staged.stage (fun () ->
             let n = match codec.n with Some n -> n | None -> k + 4 in
             for i = 0 to n - 1 do
               ignore (codec.encode value i)
             done));
      Test.make ~name:(name ^ "-decode")
        (Staged.stage (fun () -> ignore (codec.decode last_k)));
    ]
  in
  List.concat
    [
      mk "replication" (Sb_codec.Codec.replication ~value_bytes ~n:12);
      mk "striping-k4" (Sb_codec.Codec.striping ~value_bytes ~k:4);
      mk "rs-vand-k4n12" (Sb_codec.Codec.rs_vandermonde ~value_bytes ~k:4 ~n:12);
      mk "rs-vand-k8n24" (Sb_codec.Codec.rs_vandermonde ~value_bytes ~k:8 ~n:24);
      mk "rs-cauchy-k4n12" (Sb_codec.Codec.rs_cauchy ~value_bytes ~k:4 ~n:12);
      mk "rs16-k4n12" (Sb_codec.Codec.rs_vandermonde16 ~value_bytes ~k:4 ~n:12);
      mk "fountain-k4" (Sb_codec.Codec.fountain ~value_bytes ~k:4 ());
    ]

let gf_tests =
  [
    Test.make ~name:"gf256-mul-table"
      (Staged.stage (fun () ->
           let acc = ref 0 in
           for i = 1 to 255 do
             acc := !acc lxor Sb_gf.Gf256.mul i 173
           done;
           ignore !acc));
    Test.make ~name:"gf256-mul-slow"
      (Staged.stage (fun () ->
           let acc = ref 0 in
           for i = 1 to 255 do
             acc := !acc lxor Sb_gf.Gf256.mul_slow i 173
           done;
           ignore !acc));
    Test.make ~name:"gf256-inv"
      (Staged.stage (fun () ->
           let acc = ref 0 in
           for i = 1 to 255 do
             acc := !acc lxor Sb_gf.Gf256.inv i
           done;
           ignore !acc));
    Test.make ~name:"gf2p16-mul-table"
      (Staged.stage (fun () ->
           let acc = ref 0 in
           for i = 1 to 255 do
             acc := !acc lxor Sb_gf.Gf2p16.mul (i * 171) 44203
           done;
           ignore !acc));
  ]

let sim_tests =
  let vb = 64 in
  let f = 2 and k = 2 in
  let n = (2 * f) + k in
  let codec = Sb_codec.Codec.rs_vandermonde ~value_bytes:vb ~k ~n in
  let cfg = { Sb_registers.Common.n; f; codec } in
  let workload =
    Sb_experiments.Workloads.writers_and_readers ~value_bytes:vb ~writers:2
      ~writes_each:2 ~readers:2 ~reads_each:2
  in
  let full_run algo policy_of () =
    let w = Sb_sim.Runtime.create ~algorithm:algo ~n ~f ~workload () in
    ignore (Sb_sim.Runtime.run w (policy_of ()))
  in
  [
    Test.make ~name:"sim-adaptive-random-run"
      (Staged.stage
         (full_run (Sb_registers.Adaptive.make cfg) (fun () ->
              Sb_sim.Runtime.random_policy ~seed:1 ())));
    Test.make ~name:"sim-adaptive-fifo-run"
      (Staged.stage
         (full_run (Sb_registers.Adaptive.make cfg) (fun () ->
              Sb_sim.Runtime.fifo_policy ())));
    Test.make ~name:"sim-abd-random-run"
      (Staged.stage
         (full_run
            (Sb_registers.Abd.make
               { cfg with codec = Sb_codec.Codec.replication ~value_bytes:vb ~n })
            (fun () -> Sb_sim.Runtime.random_policy ~seed:1 ())));
    Test.make ~name:"adversary-lower-bound-run"
      (Staged.stage (fun () ->
           ignore
             (Sb_adversary.Lower_bound.run
                ~algorithm:(Sb_registers.Adaptive.make_unbounded cfg)
                ~cfg ~c:4 ())));
    Test.make ~name:"msgnet-adaptive-random-run"
      (Staged.stage (fun () ->
           let w =
             Sb_msgnet.Mp_runtime.create ~algorithm:(Sb_registers.Adaptive.make cfg)
               ~n ~f ~workload ()
           in
           ignore
             (Sb_msgnet.Mp_runtime.run w (Sb_msgnet.Mp_runtime.random_policy ~seed:1 ()))));
    Test.make ~name:"kv-put-get"
      (Staged.stage (fun () ->
           let store = Sb_kv.Store.create ~cfg () in
           Sb_kv.Store.put store ~key:"k" (Bytes.of_string "value");
           ignore (Sb_kv.Store.get store ~key:"k")));
    Test.make ~name:"sim-versioned-random-run"
      (Staged.stage
         (full_run
            (Sb_registers.Adaptive.make_versioned ~delta:2 cfg)
            (fun () -> Sb_sim.Runtime.random_policy ~seed:1 ())));
  ]

let collision_tests =
  let vb = 256 in
  let k = 8 and n = 24 in
  let base = Sb_util.Prng.bytes (Sb_util.Prng.create 5) vb in
  [
    Test.make ~name:"rs-colliding-pair-k8"
      (Staged.stage (fun () ->
           ignore
             (Sb_codec.Codec.rs_vandermonde_colliding ~value_bytes:vb ~k ~n
                ~indices:[ 0; 3; 7; 11 ] ~base)));
  ]

let micro () =
  run_group ~name:"galois-field" gf_tests;
  run_group ~name:"codecs-1KiB" codec_tests;
  run_group ~name:"collision-finder" collision_tests;
  run_group ~name:"simulator" sim_tests

let tables () =
  List.iter Sb_experiments.Experiments.print_outcome
    (Sb_experiments.Experiments.all ())

let () =
  let mode = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  match mode with
  | "tables" -> tables ()
  | "micro" -> micro ()
  | "all" ->
    tables ();
    micro ()
  | _ ->
    prerr_endline "usage: main.exe [tables|micro|all]";
    exit 2
