(* The introduction's motivating trade-off, measured.

   Replication pays ~(2f+1) D bits whatever the concurrency; purely
   erasure-coded storage starts near (k+2f) D / k bits but grows linearly
   as writers overlap; the paper's adaptive algorithm tracks the better
   of the two.  This example sweeps the number of concurrent writers and
   prints all three, reproducing experiment E5's shape interactively.

   Run with: dune exec examples/crossover.exe *)

let () =
  let value_bytes = 64 in
  let f = 4 in
  let k = f in
  let n_coded = (2 * f) + k in
  let n_repl = (2 * f) + 1 in
  let d = 8 * value_bytes in

  let coded_cfg =
    { Sb_registers.Common.n = n_coded; f;
      codec = Sb_codec.Codec.rs_vandermonde ~value_bytes ~k ~n:n_coded }
  in
  let repl_cfg =
    { Sb_registers.Common.n = n_repl; f;
      codec = Sb_codec.Codec.replication ~value_bytes ~n:n_repl }
  in

  let peak algorithm cfg c =
    let workload = Sb_experiments.Workloads.writers_only ~value_bytes ~c ~writes_each:3 in
    let worst =
      Sb_experiments.Runs.worst
        (Sb_experiments.Runs.measure_many ~algorithm ~cfg ~workload ())
    in
    worst.Sb_experiments.Runs.max_obj_bits
  in

  Printf.printf
    "Peak storage (bits) vs concurrent writers; D=%d bits, f=%d, k=%d\n\n" d f k;
  let table =
    Sb_util.Table.create
      [
        ("writers", Sb_util.Table.Right);
        ("replication", Sb_util.Table.Right);
        ("pure erasure coding", Sb_util.Table.Right);
        ("adaptive (paper)", Sb_util.Table.Right);
      ]
  in
  List.iter
    (fun c ->
      let repl = peak (Sb_registers.Abd.make repl_cfg) repl_cfg c in
      let ec = peak (Sb_registers.Adaptive.make_unbounded coded_cfg) coded_cfg c in
      let ad = peak (Sb_registers.Adaptive.make coded_cfg) coded_cfg c in
      Sb_util.Table.add_int_row table [ c; repl; ec; ad ])
    [ 1; 2; 3; 4; 6; 8; 12; 16 ];
  Sb_util.Table.print table;
  Printf.printf
    "replication is flat at n*D = %d bits; pure coding keeps growing with\n\
     concurrency; the adaptive algorithm caps at 2(2f+k)D = %d bits.\n"
    (n_repl * d)
    (2 * n_coded * d)
