(* The same register protocol over an asynchronous message-passing
   network: base objects become server nodes, RMWs become requests, and
   responses carry object-state snapshots — so channels hold code blocks,
   the cost the paper explicitly charges to network-based algorithms
   (Section 3.2).

   Run with: dune exec examples/message_passing.exe *)

module MP = Sb_msgnet.Mp_runtime

let () =
  let value_bytes = 64 in
  let f = 2 and k = 2 in
  let n = (2 * f) + k in
  let codec = Sb_codec.Codec.rs_vandermonde ~value_bytes ~k ~n in
  let cfg = { Sb_registers.Common.n; f; codec } in
  let register = Sb_registers.Adaptive.make cfg in
  let d = 8 * value_bytes in

  let workload =
    Sb_experiments.Workloads.writers_and_readers ~value_bytes ~writers:2
      ~writes_each:2 ~readers:3 ~reads_each:3
  in
  let world = MP.create ~algorithm:register ~n ~f ~workload () in
  (* Crash one server mid-run for good measure (f = 2 tolerated). *)
  let policy = MP.random_policy ~crash_servers:[ (60, 1) ] ~seed:8 () in
  let outcome = MP.run world policy in

  Printf.printf
    "adaptive register over message passing: %d servers, f=%d, %d-of-%d code, \
     D=%d bits\n\n" n f k n d;
  let ops = Sb_sim.Trace.operations (MP.trace world) in
  Printf.printf "operations         : %d invoked, %d completed (quiescent: %b)\n"
    (List.length ops)
    (List.length (List.filter (fun (_, _, _, ret, _) -> ret <> None) ops))
    outcome.MP.quiescent;
  Printf.printf "server storage     : %d bits now, %d at peak\n"
    (MP.storage_bits_servers world) (MP.max_bits_servers world);
  Printf.printf "channel storage    : %d bits at peak -- blocks in flight count!\n"
    (MP.max_bits_channels world);
  Printf.printf "server 1 alive     : %b (crashed mid-run)\n" (MP.server_alive world 1);

  let history =
    Sb_spec.History.of_trace ~initial:(Bytes.make value_bytes '\000') (MP.trace world)
  in
  Format.printf "strong regularity  : %a@." Sb_spec.Regularity.pp_verdict
    (Sb_spec.Regularity.check_strong history);

  print_endline
    "\nThe same protocol code ran unchanged: the message-passing runtime\n\
     reinterprets the trigger/await effects as request/response messages,\n\
     and the channel accounting shows why the paper counts in-flight\n\
     blocks as storage.";
