(* The heart of the lower bound, hands on (Claim 1 / Lemma 1, Figure 2).

   If a write's blocks in storage cover fewer than D bits (over distinct
   block indices), then some OTHER value would have produced exactly the
   same stored bytes.  For Reed-Solomon this collision is computable:
   values colliding on index set I differ by a kernel element of the
   generator submatrix G_I.  No reader — present or future — can tell
   which of the two values was written, so the write cannot be
   considered complete.  That is why every completed write must pin D
   bits, and why c concurrent writes pin c*D/2 under the adversary.

   Run with: dune exec examples/collision_demo.exe *)

let () =
  let value_bytes = 16 in
  let k = 4 and n = 8 in
  let codec = Sb_codec.Codec.rs_vandermonde ~value_bytes ~k ~n in

  let base = Bytes.of_string "meet me at noon!" in
  Printf.printf "value u  = %S\n" (Bytes.to_string base);
  Printf.printf "codec    = %s, D = %d bits, piece = %d bits\n\n" codec.name
    (Sb_codec.Codec.value_bits codec)
    (Sb_codec.Codec.block_bits codec 0);

  (* Suppose the storage holds only blocks 0, 2 and 5 of this value —
     3 pieces x 32 bits = 96 < 128 = D bits. *)
  let stored = [ 0; 2; 5 ] in
  Printf.printf "stored blocks: indices %s (%d bits < D)\n"
    (String.concat ", " (List.map string_of_int stored))
    (List.length stored * Sb_codec.Codec.block_bits codec 0);

  match
    Sb_codec.Codec.rs_vandermonde_colliding ~value_bytes ~k ~n ~indices:stored ~base
  with
  | None -> print_endline "no collision found (should not happen below k indices)"
  | Some v' ->
    Printf.printf "colliding value v = %S\n\n" (Bytes.to_string v');
    Printf.printf "%-6s  %-34s  %-34s  %s\n" "index" "E(u, i)" "E(v, i)" "same?";
    for i = 0 to n - 1 do
      let eu = Sb_codec.Codec.(codec.encode base i) in
      let ev = Sb_codec.Codec.(codec.encode v' i) in
      Printf.printf "%-6d  %-34s  %-34s  %s\n" i (Sb_util.Bytesx.hex eu)
        (Sb_util.Bytesx.hex ev)
        (if Bytes.equal eu ev then
           if List.mem i stored then "YES (stored)" else "yes"
         else "no")
    done;
    print_newline ();
    (* And indeed, the stored blocks cannot decode either value: *)
    let blocks = List.map (fun i -> (i, Sb_codec.Codec.(codec.encode base i))) stored in
    (match Sb_codec.Codec.(codec.decode blocks) with
     | None ->
       print_endline
         "decode(stored blocks) = bottom: the 3 stored pieces determine\n\
          neither u nor v — a reader forced to answer from them cannot\n\
          distinguish the two writes.  (Lemma 1 turns this into: no write\n\
          completes until D bits are stored.)"
     | Some _ -> print_endline "unexpected: decoded below k pieces!")
