(* Storage over the lifetime of a run (Theorem 2's trajectory).

   A burst of concurrent writes drives the adaptive algorithm's storage
   up towards (c+1)(2f+k)D/k; as writes complete, the garbage-collection
   round reclaims stale pieces; after quiescence the whole system holds
   a single erasure-coded copy, (2f+k)D/k bits.  We sample the storage
   at every scheduling step with Sb_experiments.Series and print the
   trajectory.

   Run with: dune exec examples/gc_lifecycle.exe *)

module Series = Sb_experiments.Series

let () =
  let value_bytes = 64 in
  let f = 4 and k = 4 in
  let n = (2 * f) + k in
  let codec = Sb_codec.Codec.rs_vandermonde ~value_bytes ~k ~n in
  let cfg = { Sb_registers.Common.n; f; codec } in
  let register = Sb_registers.Adaptive.make cfg in
  let d = 8 * value_bytes in
  let c = 6 in

  let workload = Sb_experiments.Workloads.writers_only ~value_bytes ~c ~writes_each:2 in
  let world = Sb_sim.Runtime.create ~algorithm:register ~n ~f ~workload () in

  let policy, get_series =
    Series.record ~probe:Sb_sim.Runtime.storage_bits_objects
      (Sb_sim.Runtime.random_policy ~seed:3 ())
  in
  let outcome = Sb_sim.Runtime.run world policy in
  let series = get_series () in

  Printf.printf
    "adaptive register, n=%d f=%d k=%d, D=%d bits, %d writers x 2 writes\n\n" n f k d c;
  Printf.printf "storage (bits) over %d scheduling steps, peak %d:\n\n"
    (Series.length series) (Series.peak series);
  print_string (Series.sparkline series);
  print_newline ();

  Printf.printf
    "peak storage        : %d bits (bound (c+1)(2f+k)D/k = %d, cap 2(2f+k)D = %d)\n"
    (Series.peak series)
    ((c + 1) * n * d / k)
    (2 * n * d);
  Printf.printf "mid-run storage     : %d bits\n" (Series.at_fraction series 0.5);
  Printf.printf "final storage       : %d bits\n"
    (Sb_sim.Runtime.storage_bits_objects world);
  Printf.printf "quiescent bound     : (2f+k)D/k = %d bits\n" (n * d / k);
  Printf.printf "run quiescent       : %b in %d steps\n" outcome.quiescent outcome.steps
