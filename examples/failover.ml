(* Reliability under crashes: the reason the storage exists at all.

   We write values, crash f of the n base objects mid-run (the maximum
   the system tolerates), keep writing and reading, and verify that
   every operation still completes and every read returns a regular
   value.  Quorums of size n - f never wait for the dead objects.

   Run with: dune exec examples/failover.exe *)

let () =
  let value_bytes = 32 in
  let f = 3 and k = 3 in
  let n = (2 * f) + k in
  let codec = Sb_codec.Codec.rs_cauchy ~value_bytes ~k ~n in
  let cfg = { Sb_registers.Common.n; f; codec } in
  let register = Sb_registers.Adaptive.make cfg in

  let workload =
    Sb_experiments.Workloads.writers_and_readers ~value_bytes ~writers:3
      ~writes_each:4 ~readers:3 ~reads_each:4
  in

  (* Crash objects 0, 4 and 7 at steps 50, 120 and 200. *)
  let crashes = [ (50, 0); (120, 4); (200, 7) ] in
  let policy = Sb_sim.Runtime.random_policy ~crash_objs:crashes ~seed:11 () in
  let world = Sb_sim.Runtime.create ~algorithm:register ~n ~f ~workload () in
  let outcome = Sb_sim.Runtime.run world policy in

  Printf.printf "n=%d objects, f=%d crashed mid-run (steps 50/120/200), k=%d\n\n" n f k;
  let ops = Sb_sim.Trace.operations (Sb_sim.Runtime.trace world) in
  let completed = List.filter (fun (_, _, _, ret, _) -> ret <> None) ops in
  Printf.printf "operations      : %d invoked, %d completed\n" (List.length ops)
    (List.length completed);
  Printf.printf "run quiescent   : %b after %d steps\n" outcome.quiescent outcome.steps;
  let alive = List.length (List.filter (Sb_sim.Runtime.obj_alive world)
                             (List.init n (fun i -> i))) in
  Printf.printf "objects alive   : %d of %d\n" alive n;

  let history =
    Sb_spec.History.of_trace ~initial:(Bytes.make value_bytes '\000')
      (Sb_sim.Runtime.trace world)
  in
  Format.printf "weak regularity : %a@." Sb_spec.Regularity.pp_verdict
    (Sb_spec.Regularity.check_weak history);
  Format.printf "strong regular. : %a@." Sb_spec.Regularity.pp_verdict
    (Sb_spec.Regularity.check_strong history);

  Printf.printf "final storage   : %d bits across surviving objects\n"
    (Sb_sim.Runtime.storage_bits_objects world)
