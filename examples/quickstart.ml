(* Quickstart: emulate a fault-tolerant register over 12 simulated
   storage nodes with the paper's adaptive algorithm, write two values
   concurrently, read them back, and look at the storage cost.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1. Pick the system parameters: tolerate f = 4 storage-node crashes
     with a 4-of-12 Reed-Solomon code (n = 2f + k). *)
  let value_bytes = 32 in
  let f = 4 and k = 4 in
  let n = (2 * f) + k in
  let codec = Sb_codec.Codec.rs_vandermonde ~value_bytes ~k ~n in
  let cfg = { Sb_registers.Common.n; f; codec } in

  (* 2. Build the adaptive register emulation (Algorithms 1-3). *)
  let register = Sb_registers.Adaptive.make cfg in

  (* 3. Describe a workload: two writers and one reader, all concurrent.
     Client i runs the operations of workload.(i) in order. *)
  let v1 = Bytes.of_string "the first value, 32 bytes long!!" in
  let v2 = Bytes.of_string "the second value, also 32 bytes!" in
  let workload =
    [|
      [ Sb_sim.Trace.Write v1 ];
      [ Sb_sim.Trace.Write v2 ];
      [ Sb_sim.Trace.Read; Sb_sim.Trace.Read ];
    |]
  in

  (* 4. Run it on the asynchronous fault-prone memory under a fair
     random schedule. *)
  let world = Sb_sim.Runtime.create ~algorithm:register ~n ~f ~workload () in
  let outcome = Sb_sim.Runtime.run world (Sb_sim.Runtime.random_policy ~seed:42 ()) in

  (* 5. Inspect the results. *)
  Printf.printf "run finished in %d steps (quiescent: %b)\n" outcome.steps
    outcome.quiescent;
  List.iter
    (fun (op, kind, _, _, result) ->
      match (kind, result) with
      | Sb_sim.Trace.Read, Some v ->
        Printf.printf "read op%d returned: %s\n" op (Bytes.to_string v)
      | _ -> ())
    (Sb_sim.Trace.operations (Sb_sim.Runtime.trace world));
  let d = Sb_codec.Codec.value_bits codec in
  Printf.printf "value size D          : %d bits\n" d;
  Printf.printf "peak storage          : %d bits (replication would peak at %d)\n"
    (Sb_sim.Runtime.max_bits_objects world)
    (((2 * f) + 1) * d);
  Printf.printf "storage after GC      : %d bits = (2f+k)D/k is %d\n"
    (Sb_sim.Runtime.storage_bits_objects world)
    (n * d / k);

  (* 6. Check the history really is strongly regular. *)
  let history =
    Sb_spec.History.of_trace ~initial:(Bytes.make value_bytes '\000')
      (Sb_sim.Runtime.trace world)
  in
  Format.printf "strong regularity     : %a@."
    Sb_spec.Regularity.pp_verdict
    (Sb_spec.Regularity.check_strong history)
