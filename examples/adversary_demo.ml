(* The adversary walkthrough of the paper's Figure 3 / Appendix B.

   Adversary Ad (Definition 7) schedules a purely erasure-coded register
   with c concurrent writers.  We print every scheduling decision's
   effect on the three quantities the lower-bound proof tracks:

   - F(t)  : "frozen" objects already holding >= ell bits (Ad never
             lets another RMW take effect on them);
   - C-(t) : writes that have contributed <= D - ell bits so far (only
             their RMWs are delivered, by rule 1);
   - C+(t) : writes beyond D - ell bits, whose RMWs Ad delays forever.

   The run ends in one of Lemma 3's branches: either f+1 objects are
   frozen (storage >= (f+1) ell) or all c writes are saturated
   (storage >= c (D - ell + 1)).

   Run with: dune exec examples/adversary_demo.exe *)

let () =
  let value_bytes = 64 in
  let f = 3 and k = 6 in
  let n = (2 * f) + k in
  let codec = Sb_codec.Codec.rs_vandermonde ~value_bytes ~k ~n in
  let cfg = { Sb_registers.Common.n; f; codec } in
  let register = Sb_registers.Adaptive.make_unbounded cfg in
  let d = Sb_codec.Codec.value_bits codec in
  let ell = d / 2 in
  let c = 4 in

  Printf.printf
    "Adversary Ad vs a purely erasure-coded register\n\
     n=%d base objects, f=%d, k=%d, D=%d bits, ell=D/2=%d bits, c=%d writers\n\
     piece size D/k = %d bits; an object freezes at %d bits\n\n"
    n f k d ell c (d / k) ell;

  let workload =
    Array.init c (fun i ->
        [ Sb_sim.Trace.Write (Sb_util.Values.distinct ~value_bytes i) ])
  in
  let world = Sb_sim.Runtime.create ~algorithm:register ~n ~f ~workload () in

  let last = ref (-1, -1, -1) in
  let on_step (s : Sb_adversary.Ad.snapshot) =
    (* Only print when the classification changes, like the figure. *)
    let key = (List.length s.frozen, List.length s.c_plus, List.length s.c_minus) in
    if key <> !last then begin
      last := key;
      Printf.printf
        "t=%-5d  F={%s}  C+={%s}  C-={%s}  storage=%d bits\n" s.time
        (String.concat "," (List.map (fun o -> "bo" ^ string_of_int o) s.frozen))
        (String.concat "," (List.map (fun o -> "w" ^ string_of_int o) s.c_plus))
        (String.concat "," (List.map (fun o -> "w" ^ string_of_int o) s.c_minus))
        s.storage_obj_bits
    end
  in
  let halt_when (s : Sb_adversary.Ad.snapshot) =
    List.length s.frozen > f || List.length s.c_plus >= c
  in
  let policy = Sb_adversary.Ad.policy ~ell_bits:ell ~d_bits:d ~halt_when ~on_step () in
  let outcome = Sb_sim.Runtime.run world policy in

  let final = Sb_adversary.Ad.classify ~ell_bits:ell ~d_bits:d world in
  Printf.printf "\nafter %d steps:\n" outcome.steps;
  Printf.printf "  |F| = %d (f = %d), |C+| = %d (c = %d)\n"
    (List.length final.frozen) f (List.length final.c_plus) c;
  Printf.printf "  storage pinned: %d bits in objects (+%d in flight)\n"
    (Sb_sim.Runtime.max_bits_objects world)
    (Sb_sim.Runtime.max_bits_total world - Sb_sim.Runtime.max_bits_objects world);
  Printf.printf "  Theorem 1 bound min((f+1)ell, c(D-ell+1)) = %d bits\n"
    (min ((f + 1) * ell) (c * (d - ell + 1)));
  let completed =
    List.filter (fun (_, _, _, ret, _) -> ret <> None)
      (Sb_sim.Trace.operations (Sb_sim.Runtime.trace world))
  in
  Printf.printf "  completed writes: %d (Corollary 1 says 0)\n" (List.length completed)
