(* A tiny replicated key-value store built on the paper's adaptive
   register: each key is backed by a 3-of-9 erasure-coded register that
   tolerates f = 3 simulated storage-node crashes.

   Run with: dune exec examples/kv_store.exe *)

let () =
  let f = 3 and k = 3 in
  let n = (2 * f) + k in
  let value_bytes = 64 in
  let cfg =
    { Sb_registers.Common.n; f;
      codec = Sb_codec.Codec.rs_vandermonde ~value_bytes ~k ~n }
  in
  let store = Sb_kv.Store.create ~seed:2024 ~cfg () in

  Printf.printf "replicated KV store: n=%d nodes/key, f=%d, %d-of-%d code, \
                 %d-byte values\n\n" n f k n (Sb_kv.Store.max_value_bytes store);

  (* A small user-profile workload. *)
  Sb_kv.Store.put store ~key:"user:1:name" (Bytes.of_string "Ada Lovelace");
  Sb_kv.Store.put store ~key:"user:1:role" (Bytes.of_string "analyst");
  Sb_kv.Store.put store ~key:"user:2:name" (Bytes.of_string "Charles Babbage");
  Sb_kv.Store.put store ~key:"user:2:role" (Bytes.of_string "engineer");
  Sb_kv.Store.put store ~key:"user:1:role" (Bytes.of_string "programmer");

  let show key =
    match Sb_kv.Store.get store ~key with
    | Some v -> Printf.printf "  %-12s = %s\n" key (Bytes.to_string v)
    | None -> Printf.printf "  %-12s = <absent>\n" key
  in
  print_endline "after writes (note the overwrite of user:1:role):";
  List.iter show [ "user:1:name"; "user:1:role"; "user:2:name"; "user:2:role"; "user:3:name" ];

  Printf.printf "\nstorage: %d bits across %d keys (max over run: %d)\n"
    (Sb_kv.Store.storage_bits store)
    (List.length (Sb_kv.Store.keys store))
    (Sb_kv.Store.max_storage_bits store);

  (* Crash f of the nodes behind user:1:name — the data survives. *)
  print_endline "\ncrashing 3 of the 9 nodes behind user:1:name...";
  List.iter (fun node -> Sb_kv.Store.crash_node store ~key:"user:1:name" node) [ 0; 4; 8 ];
  show "user:1:name";
  Sb_kv.Store.put store ~key:"user:1:name" (Bytes.of_string "Countess Lovelace");
  show "user:1:name";

  (* Every key's history is machine-checked for strong regularity. *)
  print_endline "\nconsistency check over every key's recorded history:";
  List.iter
    (fun (key, verdict) ->
      Format.printf "  %-12s : %a@." key Sb_spec.Regularity.pp_verdict verdict)
    (Sb_kv.Store.check_consistency store)
