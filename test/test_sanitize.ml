(* Negative-control and soundness tests for the sanitizer layer:

   - each seeded bug (premature GC, undersized quorum, mis-declared
     Merge) is caught by the matching monitor with a structured rule and
     a shrunk, replayable schedule;
   - the independence audit is green on the litmus configurations and
     has teeth: it flags the mis-declared register and a deliberately
     weakened relation (the mutation test);
   - the monitors stay silent on the correct algorithms across random
     schedules, and run over the message-passing runtime too. *)

module R = Sb_sim.Runtime
module MP = Sb_msgnet.Mp_runtime
module E = Sb_modelcheck.Explore
module Trace = Sb_sim.Trace
module Common = Sb_registers.Common
module Codec = Sb_codec.Codec
module Monitor = Sb_sanitize.Monitor
module Audit = Sb_sanitize.Audit

let value_bytes = 2
let v i = Sb_util.Values.distinct ~value_bytes i
let v0 = Bytes.make value_bytes '\000'

let qtest ?(count = 25) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let coded_cfg ~f ~k =
  let n = (2 * f) + k in
  { Common.n; f; codec = Codec.rs_vandermonde ~value_bytes ~k ~n }

let repl_cfg ~f =
  let n = (2 * f) + 1 in
  { Common.n; f; codec = Codec.replication ~value_bytes ~n }

(* [writers] single-write clients, then [readers] single-read clients. *)
let workload ~writers ?(readers = 0) () =
  Array.init (writers + readers) (fun i ->
      if i < writers then [ Trace.Write (v (i + 1)) ] else [ Trace.Read ])

let econfig ?(bound = E.Exhaustive) ~algorithm ~(cfg : Common.config) wl =
  E.config ~bound ~algorithm ~n:cfg.n ~f:cfg.f ~workload:wl ~initial:v0
    ~check:Sb_spec.Regularity.check_weak ()

let mk_world ~algorithm ~(cfg : Common.config) wl () =
  R.create ~seed:1 ~algorithm ~n:cfg.n ~f:cfg.f ~workload:wl ()

let rule_of (r : Monitor.report) = Monitor.rule_name r.Monitor.r_violation.Monitor.rule

(* ------------------------------------------------------------------ *)
(* Negative controls: each seeded bug is caught, with a shrunk trace   *)
(* ------------------------------------------------------------------ *)

(* Premature GC: the [`Own_ts] eviction breaks frontier availability as
   soon as three writes race; the sanitized explorer finds a schedule,
   the monitor aborts it, and the shrinker minimises the prefix. *)
let test_premature_gc_caught () =
  let cfg = coded_cfg ~f:1 ~k:2 in
  let algorithm = Sb_registers.Adaptive.make_premature_gc cfg in
  let wl = workload ~writers:3 () in
  let mcfg = Monitor.config ~reg_avail:true ~k:2 () in
  match Monitor.explore_sanitized mcfg (econfig ~bound:(E.Delay 5) ~algorithm ~cfg wl) with
  | Ok _ -> Alcotest.fail "premature-gc exploration found no sanitizer violation"
  | Error r ->
    Alcotest.(check string) "rule" "premature-gc" (rule_of r);
    let orig = List.length r.Monitor.r_decisions in
    let shrunk = List.length r.Monitor.r_shrunk in
    Alcotest.(check bool) "shrunk non-empty" true (shrunk > 0);
    Alcotest.(check bool) "shrunk no longer than original" true (shrunk <= orig);
    (* The shrunk prefix must still reproduce a violation on replay. *)
    Alcotest.(check bool) "shrunk trace still violates" true
      (Monitor.violates ~mk_world:(mk_world ~algorithm ~cfg wl) mcfg r.Monitor.r_shrunk)

(* An undersized write quorum fails the pairwise k-intersection check at
   the very first await — in every schedule, so fifo suffices. *)
let test_broken_quorum_caught () =
  let cfg = repl_cfg ~f:1 in
  let algorithm = Sb_registers.Abd.make_broken cfg in
  let wl = workload ~writers:1 ~readers:1 () in
  let mcfg = Monitor.config ~k:1 () in
  match
    Monitor.run mcfg ~mk_world:(mk_world ~algorithm ~cfg wl) (R.fifo_policy ())
  with
  | Ok _ -> Alcotest.fail "abd-broken ran clean under the quorum monitor"
  | Error r ->
    Alcotest.(check string) "rule" "quorum-unsafe" (rule_of r);
    Alcotest.(check bool) "shrunk trace still violates" true
      (Monitor.violates ~mk_world:(mk_world ~algorithm ~cfg wl) mcfg r.Monitor.r_shrunk)

(* A last-writer-wins store declared [`Merge]: the vector-clock monitor
   re-applies adjacent concurrent same-class deliveries swapped and
   sees the disagreement. *)
let test_misdeclared_merge_caught () =
  let cfg = repl_cfg ~f:1 in
  let algorithm = Sb_registers.Abd.make_misdeclared_merge cfg in
  let wl = workload ~writers:2 () in
  let mcfg = Monitor.config ~k:1 () in
  match Monitor.explore_sanitized mcfg (econfig ~algorithm ~cfg wl) with
  | Ok _ -> Alcotest.fail "misdeclared merge exploration found no violation"
  | Error r ->
    Alcotest.(check string) "rule" "commutativity" (rule_of r);
    Alcotest.(check bool) "shrunk non-empty" true (r.Monitor.r_shrunk <> [])

(* ------------------------------------------------------------------ *)
(* The independence audit                                              *)
(* ------------------------------------------------------------------ *)

(* The litmus configurations exercise every declared commuting class:
   the shipped relation must survive its own audit there. *)
let test_audit_green_on_litmus_configs () =
  let audit_one name ~algorithm ~cfg wl =
    let r = Audit.audit ~max_states:300 (econfig ~algorithm ~cfg wl) in
    Alcotest.(check bool) (name ^ ": pairs audited") true (r.Audit.a_pairs > 0);
    (match r.Audit.a_divergences with
     | [] -> ()
     | d :: _ ->
       Alcotest.failf "%s: %s" name (Format.asprintf "%a" Audit.pp_divergence d))
  in
  let abd = repl_cfg ~f:1 in
  audit_one "abd"
    ~algorithm:(Sb_registers.Abd.make abd)
    ~cfg:abd
    (workload ~writers:1 ~readers:1 ());
  (* abd-atomic is the regression for the write-back fixes: its
     second-phase store must re-encode under the original write's op id
     and tie-break equal timestamps, or this audit diverges. *)
  audit_one "abd-atomic"
    ~algorithm:(Sb_registers.Abd_atomic.make abd)
    ~cfg:abd
    (workload ~writers:1 ~readers:2 ());
  let ad = coded_cfg ~f:1 ~k:1 in
  audit_one "adaptive"
    ~algorithm:(Sb_registers.Adaptive.make ad)
    ~cfg:ad
    (workload ~writers:2 ~readers:1 ())

(* The audit flags the register whose [`Merge] declaration lies: both
   orders of two same-object stores are replayed and their audit keys
   differ. *)
let test_audit_catches_misdeclared_merge () =
  let cfg = repl_cfg ~f:1 in
  let algorithm = Sb_registers.Abd.make_misdeclared_merge cfg in
  let r =
    Audit.audit ~max_states:1000 (econfig ~algorithm ~cfg (workload ~writers:2 ()))
  in
  match r.Audit.a_divergences with
  | [] -> Alcotest.fail "audit missed the mis-declared merge register"
  | d :: _ ->
    Alcotest.(check bool) "state divergence" true (d.Audit.d_kind = `State)

(* Mutation test: a relation weakened to ignore same-object delivery
   conflicts must be flagged — proof the audit has teeth. *)
let test_audit_mutation_detected () =
  let cfg = coded_cfg ~f:1 ~k:1 in
  let algorithm = Sb_registers.Adaptive.make cfg in
  let weakened (a : E.action) (b : E.action) =
    match (a.E.kind, b.E.kind) with
    | E.KDeliver, E.KDeliver -> true
    | _ -> E.independent a b
  in
  let r =
    Audit.audit ~relation:weakened ~max_states:500
      (econfig ~algorithm ~cfg (workload ~writers:2 ~readers:1 ()))
  in
  Alcotest.(check bool) "mutation detected" false (Audit.ok r)

(* ------------------------------------------------------------------ *)
(* No false positives on the correct algorithms                        *)
(* ------------------------------------------------------------------ *)

let algos_under_monitor =
  [
    ("abd", fun () -> let c = repl_cfg ~f:1 in (Sb_registers.Abd.make c, c, 1));
    ( "abd-atomic",
      fun () -> let c = repl_cfg ~f:1 in (Sb_registers.Abd_atomic.make c, c, 1) );
    ( "adaptive",
      fun () -> let c = coded_cfg ~f:1 ~k:2 in (Sb_registers.Adaptive.make c, c, 2) );
    ( "pure-ec",
      fun () ->
        let c = coded_cfg ~f:1 ~k:2 in
        (Sb_registers.Adaptive.make_unbounded c, c, 2) );
  ]

let monitors_silent =
  qtest ~count:80 "monitors silent on correct algorithms"
    QCheck2.Gen.(pair (int_range 1 500) (int_range 0 (List.length algos_under_monitor - 1)))
    (fun (seed, ai) ->
      let name, mk = List.nth algos_under_monitor ai in
      let algorithm, cfg, k = mk () in
      let wl = workload ~writers:2 ~readers:1 () in
      let mcfg = Monitor.config ~reg_avail:true ~k () in
      let mk_world () =
        R.create ~seed ~algorithm ~n:cfg.n ~f:cfg.f ~workload:wl ()
      in
      match Monitor.run mcfg ~mk_world (R.random_policy ~seed ()) with
      | Ok (_, m) -> Monitor.events_seen m > 0
      | Error r ->
        QCheck2.Test.fail_reportf "%s (seed %d): %s" name seed
          (Monitor.violation_to_string r.Monitor.r_violation))

(* ------------------------------------------------------------------ *)
(* The replication-floor monitor (read/write base-object model)        *)
(* ------------------------------------------------------------------ *)

let rw_cfg ~f =
  let n = (2 * f) + 1 in
  { Common.n; f; codec = Codec.replication ~value_bytes ~n }

let rw_world ~algorithm ~(cfg : Common.config) wl ~seed () =
  R.create ~seed ~base_model:Sb_baseobj.Model.Read_write ~algorithm ~n:cfg.n
    ~f:cfg.f ~workload:wl ()

(* The seeded premature-trim register keeps only [f] full copies: the
   floor monitor must flag it — deterministically, on the fifo schedule,
   with a shrunk replayable trace — because a crash set of size [f] can
   then erase every full copy of the latest value. *)
let test_storage_floor_caught () =
  let f = 1 in
  let cfg = rw_cfg ~f in
  let algorithm = Sb_registers.Rw_replica.make_fcopy cfg in
  let wl = workload ~writers:1 ~readers:1 () in
  let mcfg =
    Monitor.config ~floor:(f + 1, 8 * value_bytes) ~k:1 ()
  in
  let mk_world = rw_world ~algorithm ~cfg wl ~seed:1 in
  match Monitor.run mcfg ~mk_world (R.fifo_policy ()) with
  | Ok _ -> Alcotest.fail "rw-fcopy ran clean under the floor monitor"
  | Error r ->
    Alcotest.(check string) "rule" "storage-floor" (rule_of r);
    (match r.Monitor.r_violation.Monitor.rule with
     | Monitor.Storage_floor { copies; live_full; need; _ } ->
       Alcotest.(check int) "demanded copies" (f + 1) copies;
       Alcotest.(check bool) "short of the floor" true (live_full < need)
     | _ -> Alcotest.fail "wrong violation payload");
    Alcotest.(check bool) "shrunk trace still violates" true
      (Monitor.violates ~mk_world mcfg r.Monitor.r_shrunk)

(* The floor-exact register stays silent with the same monitor armed:
   trimming down to [f+1] keepers never dips below the floor, across
   random schedules. *)
let floor_monitor_silent_on_rw_regular =
  qtest ~count:40 "floor monitor silent on rw-regular"
    QCheck2.Gen.(int_range 1 500)
    (fun seed ->
      let f = 1 in
      let cfg = rw_cfg ~f in
      let algorithm = Sb_registers.Rw_replica.make cfg in
      let wl = workload ~writers:1 ~readers:1 () in
      let mcfg =
        Monitor.config ~reg_avail:true ~floor:(f + 1, 8 * value_bytes) ~k:1 ()
      in
      let mk_world = rw_world ~algorithm ~cfg wl ~seed in
      match Monitor.run mcfg ~mk_world (R.random_policy ~seed ()) with
      | Ok (_, m) -> Monitor.events_seen m > 0
      | Error r ->
        QCheck2.Test.fail_reportf "rw-regular (seed %d): %s" seed
          (Monitor.violation_to_string r.Monitor.r_violation))

(* ------------------------------------------------------------------ *)
(* Message-passing runtime                                             *)
(* ------------------------------------------------------------------ *)

let test_attach_mp () =
  let cfg = coded_cfg ~f:1 ~k:2 in
  let algorithm = Sb_registers.Adaptive.make cfg in
  let w =
    MP.create ~seed:1 ~algorithm ~n:cfg.n ~f:cfg.f
      ~workload:[| [ Trace.Write (v 1) ]; [ Trace.Read ] |]
      ()
  in
  let m = Monitor.attach_mp (Monitor.config ~reg_avail:true ~k:2 ()) w in
  let outcome = MP.run w (MP.fifo_policy ()) in
  Alcotest.(check bool) "quiescent" true outcome.MP.quiescent;
  Alcotest.(check bool) "events seen" true (Monitor.events_seen m > 0);
  match Monitor.violations m with
  | [] -> ()
  | vi :: _ ->
    Alcotest.failf "mp monitor flagged a correct run: %s"
      (Monitor.violation_to_string vi)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "sanitize"
    [
      ( "negative controls",
        [
          Alcotest.test_case "premature gc caught+shrunk" `Quick
            test_premature_gc_caught;
          Alcotest.test_case "broken quorum caught" `Quick test_broken_quorum_caught;
          Alcotest.test_case "misdeclared merge caught" `Quick
            test_misdeclared_merge_caught;
        ] );
      ( "independence audit",
        [
          Alcotest.test_case "green on litmus configs" `Quick
            test_audit_green_on_litmus_configs;
          Alcotest.test_case "catches misdeclared merge" `Quick
            test_audit_catches_misdeclared_merge;
          Alcotest.test_case "mutation detected" `Quick test_audit_mutation_detected;
        ] );
      ( "storage floor",
        [
          Alcotest.test_case "rw-fcopy caught+shrunk" `Quick
            test_storage_floor_caught;
          floor_monitor_silent_on_rw_regular;
        ] );
      ("no false positives", [ monitors_silent ]);
      ("message passing", [ Alcotest.test_case "attach_mp" `Quick test_attach_mp ]);
    ]
