(* Tests for the key-value composition layer. *)

module Store = Sb_kv.Store
module Common = Sb_registers.Common
module Codec = Sb_codec.Codec

let cfg ?(value_bytes = 32) ?(f = 2) ?(k = 2) () =
  let n = (2 * f) + k in
  { Common.n; f; codec = Codec.rs_vandermonde ~value_bytes ~k ~n }

let repl_cfg ?(value_bytes = 32) ?(f = 2) () =
  let n = (2 * f) + 1 in
  { Common.n; f; codec = Codec.replication ~value_bytes ~n }

let b = Bytes.of_string

let test_put_get () =
  let s = Store.create ~cfg:(cfg ()) () in
  Store.put s ~key:"alpha" (b "hello");
  Store.put s ~key:"beta" (b "world!");
  Alcotest.(check (option bytes)) "alpha" (Some (b "hello")) (Store.get s ~key:"alpha");
  Alcotest.(check (option bytes)) "beta" (Some (b "world!")) (Store.get s ~key:"beta")

let test_overwrite () =
  let s = Store.create ~cfg:(cfg ()) () in
  Store.put s ~key:"k" (b "one");
  Store.put s ~key:"k" (b "two");
  Alcotest.(check (option bytes)) "latest wins" (Some (b "two")) (Store.get s ~key:"k")

let test_missing_key () =
  let s = Store.create ~cfg:(cfg ()) () in
  Alcotest.(check (option bytes)) "missing" None (Store.get s ~key:"nope");
  Alcotest.(check (list string)) "get does not create" [] (Store.keys s)

let test_empty_value () =
  let s = Store.create ~cfg:(cfg ()) () in
  Store.put s ~key:"k" Bytes.empty;
  Alcotest.(check (option bytes)) "empty round trip" (Some Bytes.empty)
    (Store.get s ~key:"k")

let test_binary_values () =
  let s = Store.create ~cfg:(cfg ()) () in
  let payload = Bytes.of_string "\x00\xff\x00binary\x01" in
  Store.put s ~key:"bin" payload;
  Alcotest.(check (option bytes)) "binary round trip" (Some payload)
    (Store.get s ~key:"bin")

let test_capacity () =
  let s = Store.create ~cfg:(cfg ~value_bytes:16 ()) () in
  Alcotest.(check int) "capacity = value - prefix" 12 (Store.max_value_bytes s);
  Store.put s ~key:"full" (Bytes.make 12 'x');
  Alcotest.(check (option bytes)) "max-size value" (Some (Bytes.make 12 'x'))
    (Store.get s ~key:"full");
  Alcotest.(check bool) "oversize rejected" true
    (try Store.put s ~key:"big" (Bytes.make 13 'x'); false
     with Invalid_argument _ -> true)

let test_delete () =
  let s = Store.create ~cfg:(cfg ()) () in
  Store.put s ~key:"k" (b "v");
  let before = Store.storage_bits s in
  Store.delete s ~key:"k";
  Alcotest.(check (option bytes)) "gone" None (Store.get s ~key:"k");
  Alcotest.(check bool) "storage released" true (Store.storage_bits s < before);
  Alcotest.(check (list string)) "keys updated" [] (Store.keys s)

let test_keys_sorted () =
  let s = Store.create ~cfg:(cfg ()) () in
  List.iter (fun k -> Store.put s ~key:k (b k)) [ "zeta"; "alpha"; "mid" ];
  Alcotest.(check (list string)) "sorted" [ "alpha"; "mid"; "zeta" ] (Store.keys s)

let test_storage_accounting () =
  let c = cfg ~value_bytes:32 ~f:2 ~k:2 () in
  let s = Store.create ~cfg:c () in
  Alcotest.(check int) "empty store stores nothing" 0 (Store.storage_bits s);
  Store.put s ~key:"a" (b "x");
  let one = Store.storage_bits s in
  (* Quiescent register: (2f+k) pieces of D/k bits. *)
  Alcotest.(check bool) "per-key quiescent bound" true
    (one <= c.Common.n * Codec.block_bits c.codec 0);
  Store.put s ~key:"b" (b "y");
  Alcotest.(check bool) "storage grows with keys" true (Store.storage_bits s > one);
  Alcotest.(check bool) "max tracked" true (Store.max_storage_bits s >= Store.storage_bits s)

let test_crash_tolerance () =
  let s = Store.create ~cfg:(cfg ~f:2 ~k:2 ()) () in
  Store.put s ~key:"k" (b "before");
  Store.crash_node s ~key:"k" 0;
  Store.crash_node s ~key:"k" 3;
  (* f = 2 crashes: reads and writes still work. *)
  Alcotest.(check (option bytes)) "read after crashes" (Some (b "before"))
    (Store.get s ~key:"k");
  Store.put s ~key:"k" (b "after");
  Alcotest.(check (option bytes)) "write after crashes" (Some (b "after"))
    (Store.get s ~key:"k");
  Alcotest.(check bool) "crash beyond f rejected" true
    (try Store.crash_node s ~key:"k" 1; false with Invalid_argument _ -> true);
  Store.crash_node s ~key:"absent" 0 (* no-op *)

let test_delete_under_crashes () =
  (* Deletion is a write of the tombstone encoding: it must survive up
     to f crashed base objects, release the storage, and leave a
     regular history. *)
  let s = Store.create ~cfg:(cfg ~f:2 ~k:2 ()) () in
  Store.put s ~key:"k" (b "doomed");
  let before = Store.storage_bits s in
  Store.crash_node s ~key:"k" 1;
  Store.crash_node s ~key:"k" 4;
  Store.delete s ~key:"k";
  Alcotest.(check (option bytes)) "deleted despite f crashes" None
    (Store.get s ~key:"k");
  Alcotest.(check bool) "storage released" true (Store.storage_bits s < before);
  Alcotest.(check (list string)) "keys updated" [] (Store.keys s);
  List.iter
    (fun (key, verdict) ->
      match verdict with
      | Sb_spec.Regularity.Ok -> ()
      | Sb_spec.Regularity.Violation cx ->
        Alcotest.failf "%s: %s" key (Sb_spec.Regularity.to_string cx))
    (Store.check_consistency s)

(* Smoke test for the service transport: the same register protocol the
   store runs in-process, driven over Unix-domain sockets against a
   forked daemon cluster. *)
let test_socket_put_get () =
  let module R = Sb_sim.Runtime in
  let module Trace = Sb_sim.Trace in
  let module Daemon = Sb_service.Daemon in
  let module Sdk = Sb_service.Sdk in
  let value_bytes = 32 in
  let f, k = (1, 1) in
  let n = (2 * f) + k in
  let c = { Common.n; f; codec = Codec.rs_vandermonde ~value_bytes ~k ~n } in
  let algorithm = Sb_registers.Adaptive.make c in
  let sockdir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "sb-kv-sock-%d" (Unix.getpid ()))
  in
  (try Unix.mkdir sockdir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let pid = Unix.fork () in
  if pid = 0 then begin
    (try
       Daemon.run ~sockdir ~servers:(List.init n Fun.id)
         ~init_obj:algorithm.R.init_obj ()
     with _ -> ());
    Unix._exit 0
  end
  else
    Fun.protect
      ~finally:(fun () ->
        (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
        try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
      (fun () ->
        let deadline = Unix.gettimeofday () +. 10.0 in
        let rec wait_up () =
          if
            List.for_all
              (fun i -> Sys.file_exists (Daemon.sockpath ~sockdir i))
              (List.init n Fun.id)
          then ()
          else if Unix.gettimeofday () > deadline then
            failwith "cluster did not come up"
          else begin
            Unix.sleepf 0.02;
            wait_up ()
          end
        in
        wait_up ();
        let value = Sb_experiments.Workloads.distinct_value ~value_bytes 1 in
        let r =
          Sdk.run_workload ~algorithm ~seed:7
            ~workload:[| [ Trace.Write value; Trace.Read ] |]
            (Sdk.default_config ~n ~f ~sockdir)
        in
        Alcotest.(check int) "both ops completed" 2 r.Sdk.ops_completed;
        let reads =
          List.filter_map
            (fun (_, kind, _, ret, res) ->
              match (kind, ret) with Trace.Read, Some _ -> Some res | _ -> None)
            (Trace.operations r.Sdk.trace)
        in
        Alcotest.(check (list (option bytes))) "read returns the written value"
          [ Some value ] reads;
        let history =
          Sb_spec.History.of_trace ~initial:(Common.initial_value c) r.Sdk.trace
        in
        match Sb_spec.Regularity.check_strong history with
        | Sb_spec.Regularity.Ok -> ()
        | Sb_spec.Regularity.Violation cx ->
          Alcotest.failf "socket history not regular: %s"
            (Sb_spec.Regularity.to_string cx))

(* The sharded fleet end to end: one forked daemon process per server,
   each hosting 4 shards; three concurrent SDK clients put/get/delete
   disjoint slices of 120 keys over batched v3 frames while a killer
   process SIGKILLs server n-1 mid-run (the one tolerated crash at
   f = 1); then a single-client read sweep verifies every key against
   the last value its writer left, and the quiescent stats of the
   surviving servers are checked against Theorem 2 — per-key ceiling
   during the run, exact (keys + shards) x D/k GC floor per server
   after it. *)
let test_sharded_socket_kv () =
  let module R = Sb_sim.Runtime in
  let module Trace = Sb_sim.Trace in
  let module Daemon = Sb_service.Daemon in
  let module Sdk = Sb_service.Sdk in
  let module Wire = Sb_service.Wire in
  let value_bytes = 32 in
  let f, k = (1, 1) in
  let n = (2 * f) + k in
  let shards = 4 in
  let keys = 120 in
  let c = { Common.n; f; codec = Codec.rs_vandermonde ~value_bytes ~k ~n } in
  let algorithm = Sb_registers.Adaptive.make c in
  let sockdir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "sb-kv-shard-%d" (Unix.getpid ()))
  in
  (try Unix.mkdir sockdir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let start_server i =
    let pid = Unix.fork () in
    if pid = 0 then begin
      (try
         Daemon.run ~shards ~sockdir ~servers:[ i ]
           ~init_obj:algorithm.R.init_obj ()
       with _ -> ());
      Unix._exit 0
    end
    else pid
  in
  let pids = Array.init n start_server in
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun pid ->
          (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
          try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
        pids)
    (fun () ->
      let deadline = Unix.gettimeofday () +. 10.0 in
      let rec wait_up () =
        if
          List.for_all
            (fun i -> Sys.file_exists (Daemon.sockpath ~sockdir i))
            (List.init n Fun.id)
        then ()
        else if Unix.gettimeofday () > deadline then
          failwith "sharded cluster did not come up"
        else begin
          Unix.sleepf 0.02;
          wait_up ()
        end
      in
      wait_up ();
      let key i = Sdk.key_name i in
      let value i = Sb_experiments.Workloads.distinct_value ~value_bytes i in
      let tombstone = Bytes.make value_bytes '\000' in
      (* Client j owns keys with i mod 3 = j: writes each, reads each
         back, then deletes (tombstone-writes) every third of its own. *)
      let clients = 3 in
      let slice j = List.filter (fun i -> i mod clients = j)
          (List.init keys Fun.id) in
      let expected = Array.init keys value in
      let workload =
        Array.init clients (fun j ->
            let mine = slice j in
            List.map (fun i -> (key i, Trace.Write (value i))) mine
            @ List.map (fun i -> (key i, Trace.Read)) mine
            @ List.filter_map
                (fun i ->
                  if i mod 3 = 0 then begin
                    expected.(i) <- tombstone;
                    Some (key i, Trace.Write tombstone)
                  end
                  else None)
                mine)
      in
      let cfg_sdk =
        {
          (Sdk.default_config ~n ~f ~sockdir) with
          Sdk.batch_max = 8;
          flush_ms = 1;
          think_ms = 2;
        }
      in
      (* The killer lands while the clients are mid-workload: the
         crash is a real SIGKILL of a separate daemon process. *)
      let killer = Unix.fork () in
      if killer = 0 then begin
        Unix.sleepf 0.25;
        (try Unix.kill pids.(n - 1) Sys.sigkill with Unix.Unix_error _ -> ());
        Unix._exit 0
      end;
      let r = Sdk.run_keyed ~algorithm ~seed:13 ~workload cfg_sdk in
      (try ignore (Unix.waitpid [] killer) with Unix.Unix_error _ -> ());
      Alcotest.(check bool) "phase A did not time out" false r.Sdk.timed_out;
      Alcotest.(check int) "phase A all ops completed" r.Sdk.ops_invoked
        r.Sdk.ops_completed;
      (* Read sweep from one fresh client: invocation order is workload
         order, so the i-th read's result is key i's final value. *)
      let sweep =
        Sdk.run_keyed ~algorithm ~seed:17
          ~workload:[| List.init keys (fun i -> (key i, Trace.Read)) |]
          { cfg_sdk with Sdk.think_ms = 0 }
      in
      Alcotest.(check int) "sweep all ops completed" keys
        sweep.Sdk.ops_completed;
      let got =
        List.filter_map
          (fun (_, kind, _, ret, res) ->
            match (kind, ret) with
            | Trace.Read, Some _ -> Some res
            | _ -> None)
          (Trace.operations sweep.Sdk.trace)
      in
      Alcotest.(check (list (option bytes)))
        "every key reads back its writer's last value"
        (Array.to_list (Array.map Option.some expected))
        got;
      (* Theorem 2 against the survivors' quiescent stats. *)
      let live = List.init (n - 1) Fun.id in
      let stats = Sdk.fetch_stats ~sockdir ~servers:live () in
      Alcotest.(check int) "both surviving servers answered stats"
        (n - 1) (List.length stats);
      let d_bits = 8 * value_bytes in
      let m = (2 * f) + k in
      (* One client per key: concurrency c = 1, so the per-key ceiling
         is min((c+1)m, m^2) D/k.  Summing each survivor's largest
         per-key high-water mark over-approximates any one key's
         fleet-wide peak. *)
      let ceiling_bits = min ((1 + 1) * m) (m * m) * d_bits / k in
      let per_key_peak =
        List.fold_left
          (fun acc (st : Wire.stats) ->
            Alcotest.(check int)
              "per-shard stats cover every shard" shards
              (List.length st.Wire.st_shards);
            acc
            + List.fold_left
                (fun a (ss : Wire.shard_stat) -> max a ss.Wire.ss_max_key_bits)
                0 st.Wire.st_shards)
          0 stats
      in
      Alcotest.(check bool)
        (Printf.sprintf "per-key peak %d within Theorem 2 ceiling %d"
           per_key_peak ceiling_bits)
        true
        (per_key_peak <= ceiling_bits);
      (* Exact GC floor: the survivors were in every quorum, so each
         holds exactly one D/k-bit block per live object — the 120 keys
         plus each shard's legacy "" register.  Tombstoned keys still
         cost the floor: a register cannot store less and stay live. *)
      let floor_per_server = (keys + shards) * d_bits / k in
      List.iter
        (fun (st : Wire.stats) ->
          Alcotest.(check int)
            (Printf.sprintf "server %d quiescent storage at the exact floor"
               st.Wire.st_server)
            floor_per_server st.Wire.st_storage_bits)
        stats)

let test_consistency_check () =
  let s = Store.create ~cfg:(cfg ()) () in
  List.iter (fun i -> Store.put s ~key:"k" (b (string_of_int i))) [ 1; 2; 3 ];
  ignore (Store.get s ~key:"k");
  List.iter
    (fun (key, verdict) ->
      match verdict with
      | Sb_spec.Regularity.Ok -> ()
      | Sb_spec.Regularity.Violation cx ->
        Alcotest.failf "%s: %s" key (Sb_spec.Regularity.to_string cx))
    (Store.check_consistency s)

let test_atomic_store () =
  let s = Store.create ~consistency:Store.Atomic ~cfg:(repl_cfg ()) () in
  Store.put s ~key:"k" (b "atomic");
  Alcotest.(check (option bytes)) "round trip" (Some (b "atomic")) (Store.get s ~key:"k");
  List.iter
    (fun (key, verdict) ->
      match verdict with
      | Sb_spec.Regularity.Ok -> ()
      | Sb_spec.Regularity.Violation cx ->
        Alcotest.failf "%s: %s" key (Sb_spec.Regularity.to_string cx))
    (Store.check_consistency s)

let test_safe_store () =
  let s = Store.create ~consistency:Store.Safe_only ~cfg:(cfg ()) () in
  Store.put s ~key:"k" (b "safe");
  (* Single-client per key: no concurrency, so even the safe register
     returns real values. *)
  Alcotest.(check (option bytes)) "round trip" (Some (b "safe")) (Store.get s ~key:"k")

let test_deterministic () =
  let run () =
    let s = Store.create ~seed:9 ~cfg:(cfg ()) () in
    List.iter (fun i -> Store.put s ~key:(string_of_int (i mod 3)) (b (string_of_int i)))
      [ 1; 2; 3; 4; 5; 6 ];
    (Store.storage_bits s, Store.max_storage_bits s, Store.get s ~key:"1")
  in
  Alcotest.(check bool) "same seed, same behaviour" true (run () = run ())

let test_many_keys () =
  let c = cfg ~value_bytes:32 ~f:1 ~k:1 () in
  let s = Store.create ~cfg:c () in
  for i = 1 to 50 do
    Store.put s ~key:(Printf.sprintf "key-%02d" i) (b (string_of_int i))
  done;
  Alcotest.(check int) "50 keys" 50 (List.length (Store.keys s));
  for i = 1 to 50 do
    Alcotest.(check (option bytes))
      (Printf.sprintf "key-%02d" i)
      (Some (b (string_of_int i)))
      (Store.get s ~key:(Printf.sprintf "key-%02d" i))
  done

let test_value_too_small () =
  Alcotest.(check bool) "tiny register rejected" true
    (try
       ignore
         (Store.create
            ~cfg:{ Common.n = 3; f = 1; codec = Codec.replication ~value_bytes:4 ~n:3 }
            ());
       false
     with Invalid_argument _ -> true)

(* Model-based test: a random sequence of put/get/delete against the
   replicated store must behave exactly like a Hashtbl, for every
   backend. *)
let test_model_based =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:60 ~name:"store behaves like a map (model-based)"
       QCheck2.Gen.(int_bound 10_000_000)
       (fun seed ->
         let prng = Sb_util.Prng.create seed in
         let consistency =
           Sb_util.Prng.pick prng
             [| Store.Regular; Store.Atomic; Store.Safe_only |]
         in
         let c =
           match consistency with
           | Store.Atomic -> repl_cfg ()
           | _ -> cfg ()
         in
         let store = Store.create ~seed ~consistency ~cfg:c () in
         let model : (string, bytes) Hashtbl.t = Hashtbl.create 8 in
         let keys = [| "a"; "b"; "c" |] in
         let ok = ref true in
         for step = 0 to 19 do
           let key = Sb_util.Prng.pick prng keys in
           match Sb_util.Prng.int prng 3 with
           | 0 ->
             let value = Bytes.of_string (Printf.sprintf "v%d-%d" seed step) in
             Store.put store ~key value;
             Hashtbl.replace model key value
           | 1 ->
             Store.delete store ~key;
             Hashtbl.remove model key
           | _ ->
             let expected = Hashtbl.find_opt model key in
             if Store.get store ~key <> expected then ok := false
         done;
         (* Final sweep: every key agrees with the model. *)
         Array.iter
           (fun key ->
             if Store.get store ~key <> Hashtbl.find_opt model key then ok := false)
           keys;
         !ok
         && List.sort compare (Store.keys store)
            = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) model [])))

let () =
  Alcotest.run "kv"
    [
      ( "basics",
        [
          Alcotest.test_case "put/get" `Quick test_put_get;
          Alcotest.test_case "overwrite" `Quick test_overwrite;
          Alcotest.test_case "missing key" `Quick test_missing_key;
          Alcotest.test_case "empty value" `Quick test_empty_value;
          Alcotest.test_case "binary values" `Quick test_binary_values;
          Alcotest.test_case "capacity" `Quick test_capacity;
          Alcotest.test_case "delete" `Quick test_delete;
          Alcotest.test_case "keys sorted" `Quick test_keys_sorted;
        ] );
      ( "behaviour",
        [
          Alcotest.test_case "storage accounting" `Quick test_storage_accounting;
          Alcotest.test_case "crash tolerance" `Quick test_crash_tolerance;
          Alcotest.test_case "delete under crashes" `Quick test_delete_under_crashes;
          Alcotest.test_case "socket put/get" `Quick test_socket_put_get;
          Alcotest.test_case "sharded socket kv" `Quick test_sharded_socket_kv;
          Alcotest.test_case "consistency check" `Quick test_consistency_check;
          Alcotest.test_case "atomic backend" `Quick test_atomic_store;
          Alcotest.test_case "safe backend" `Quick test_safe_store;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "many keys" `Quick test_many_keys;
          Alcotest.test_case "value too small" `Quick test_value_too_small;
          test_model_based;
        ] );
    ]
