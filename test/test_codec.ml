(* Tests for the coding schemes: MDS roundtrips, symmetry (Definition 3),
   degenerate inputs, and the rateless fountain code. *)

module Codec = Sb_codec.Codec
module Prng = Sb_util.Prng

let qtest ?(count = 150) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let random_value prng value_bytes = Prng.bytes prng value_bytes

(* Pick [k] distinct block indices out of [0, n). *)
let random_subset prng ~n ~k =
  let idx = Array.init n Fun.id in
  Prng.shuffle prng idx;
  Array.to_list (Array.sub idx 0 k)

(* All k-subsets of [0, n) — used exhaustively for small n. *)
let rec subsets k lo n =
  if k = 0 then [ [] ]
  else if lo >= n then []
  else
    List.map (fun s -> lo :: s) (subsets (k - 1) (lo + 1) n) @ subsets k (lo + 1) n

(* ------------------------------------------------------------------ *)
(* Generic MDS codec checks                                            *)
(* ------------------------------------------------------------------ *)

let mds_suite ~label mk =
  let roundtrip_random =
    qtest (label ^ ": decodes from any random k-subset")
      QCheck2.Gen.(int_bound 100_000)
      (fun seed ->
        let prng = Prng.create seed in
        let value_bytes = 1 + Prng.int prng 64 in
        let k = 1 + Prng.int prng 5 in
        let n = k + Prng.int prng 8 in
        let codec = mk ~value_bytes ~k ~n in
        let v = random_value prng value_bytes in
        let idxs = random_subset prng ~n ~k in
        let blocks = List.map (fun i -> (i, codec.Codec.encode v i)) idxs in
        match codec.Codec.decode blocks with
        | Some v' -> Bytes.equal v v'
        | None -> false)
  in
  let roundtrip_exhaustive () =
    let value_bytes = 13 in
    let k = 3 and n = 6 in
    let codec = mk ~value_bytes ~k ~n in
    let prng = Prng.create 99 in
    let v = random_value prng value_bytes in
    List.iter
      (fun idxs ->
        let blocks = List.map (fun i -> (i, codec.Codec.encode v i)) idxs in
        match codec.Codec.decode blocks with
        | Some v' -> Alcotest.(check bytes) "decoded" v v'
        | None -> Alcotest.fail "subset failed to decode")
      (subsets k 0 n)
  in
  let insufficient () =
    let codec = mk ~value_bytes:16 ~k:3 ~n:6 in
    let v = Bytes.make 16 'x' in
    let blocks = [ (0, codec.Codec.encode v 0); (1, codec.Codec.encode v 1) ] in
    Alcotest.(check bool) "k-1 blocks do not decode" true
      (codec.Codec.decode blocks = None);
    Alcotest.(check bool) "empty set does not decode" true (codec.Codec.decode [] = None)
  in
  let duplicates () =
    let codec = mk ~value_bytes:16 ~k:2 ~n:5 in
    let v = Bytes.make 16 'y' in
    let b0 = codec.Codec.encode v 0 in
    let b1 = codec.Codec.encode v 1 in
    (* Duplicate indices must not be counted twice. *)
    Alcotest.(check bool) "dup index insufficient" true
      (codec.Codec.decode [ (0, b0); (0, b0) ] = None);
    match codec.Codec.decode [ (0, b0); (0, b0); (1, b1) ] with
    | Some v' -> Alcotest.(check bytes) "dups tolerated" v v'
    | None -> Alcotest.fail "should decode"
  in
  let symmetry () =
    let codec = mk ~value_bytes:24 ~k:3 ~n:8 in
    Alcotest.(check bool) "symmetric encoding (Definition 3)" true
      (Codec.is_symmetric codec)
  in
  let sizes () =
    let codec = mk ~value_bytes:20 ~k:4 ~n:7 in
    let v = Bytes.make 20 'z' in
    for i = 0 to 6 do
      Alcotest.(check int)
        (Printf.sprintf "block %d size matches declaration" i)
        (codec.Codec.block_bytes i)
        (Bytes.length (codec.Codec.encode v i))
    done
  in
  let bad_inputs () =
    let codec = mk ~value_bytes:8 ~k:2 ~n:4 in
    let v = Bytes.make 8 'a' in
    Alcotest.(check bool) "wrong-size value raises" true
      (try ignore (codec.Codec.encode (Bytes.make 7 'a') 0); false
       with Invalid_argument _ -> true);
    Alcotest.(check bool) "out-of-range index raises" true
      (try ignore (codec.Codec.encode v 4); false with Invalid_argument _ -> true);
    Alcotest.(check bool) "negative index raises" true
      (try ignore (codec.Codec.encode v (-1)); false with Invalid_argument _ -> true)
  in
  let distinct_values () =
    (* k matching blocks of two different values decode differently. *)
    let codec = mk ~value_bytes:16 ~k:2 ~n:4 in
    let v1 = Sb_util.Values.distinct ~value_bytes:16 0 in
    let v2 = Sb_util.Values.distinct ~value_bytes:16 1 in
    let d1 = codec.Codec.decode [ (1, codec.Codec.encode v1 1); (3, codec.Codec.encode v1 3) ] in
    let d2 = codec.Codec.decode [ (1, codec.Codec.encode v2 1); (3, codec.Codec.encode v2 3) ] in
    Alcotest.(check bool) "values distinguished" true (d1 <> d2)
  in
  [
    roundtrip_random;
    Alcotest.test_case (label ^ ": all 3-subsets of 6 decode") `Quick roundtrip_exhaustive;
    Alcotest.test_case (label ^ ": insufficient blocks") `Quick insufficient;
    Alcotest.test_case (label ^ ": duplicate indices") `Quick duplicates;
    Alcotest.test_case (label ^ ": symmetry") `Quick symmetry;
    Alcotest.test_case (label ^ ": declared sizes") `Quick sizes;
    Alcotest.test_case (label ^ ": bad inputs") `Quick bad_inputs;
    Alcotest.test_case (label ^ ": distinct values") `Quick distinct_values;
  ]

(* ------------------------------------------------------------------ *)
(* Replication                                                         *)
(* ------------------------------------------------------------------ *)

let test_replication_roundtrip =
  qtest "replication: any single block decodes" QCheck2.Gen.(int_bound 100_000)
    (fun seed ->
      let prng = Prng.create seed in
      let value_bytes = 1 + Prng.int prng 64 in
      let n = 1 + Prng.int prng 8 in
      let codec = Codec.replication ~value_bytes ~n in
      let v = random_value prng value_bytes in
      let i = Prng.int prng n in
      codec.Codec.decode [ (i, codec.Codec.encode v i) ] = Some v)

let test_replication_k () =
  let codec = Codec.replication ~value_bytes:8 ~n:5 in
  Alcotest.(check int) "k = 1" 1 codec.Codec.k;
  Alcotest.(check (option int)) "n" (Some 5) codec.Codec.n;
  Alcotest.(check int) "block size = value size" 8 (codec.Codec.block_bytes 0)

(* ------------------------------------------------------------------ *)
(* Striping                                                            *)
(* ------------------------------------------------------------------ *)

let test_striping_roundtrip =
  qtest "striping: all k fragments decode" QCheck2.Gen.(int_bound 100_000) (fun seed ->
      let prng = Prng.create seed in
      let value_bytes = 1 + Prng.int prng 64 in
      let k = 1 + Prng.int prng 6 in
      let codec = Codec.striping ~value_bytes ~k in
      let v = random_value prng value_bytes in
      let blocks = List.init k (fun i -> (i, codec.Codec.encode v i)) in
      codec.Codec.decode blocks = Some v)

let test_striping_missing () =
  let codec = Codec.striping ~value_bytes:12 ~k:3 in
  let v = Bytes.make 12 'q' in
  let blocks = [ (0, codec.Codec.encode v 0); (2, codec.Codec.encode v 2) ] in
  Alcotest.(check bool) "missing fragment fails" true (codec.Codec.decode blocks = None)

let test_striping_rate () =
  (* Striping is rate 1: total block bytes ~ value bytes (up to padding). *)
  let codec = Codec.striping ~value_bytes:12 ~k:4 in
  let total = List.fold_left (fun a i -> a + codec.Codec.block_bytes i) 0 [ 0; 1; 2; 3 ] in
  Alcotest.(check int) "rate 1" 12 total

(* ------------------------------------------------------------------ *)
(* Parity (RAID-5 style)                                               *)
(* ------------------------------------------------------------------ *)

let test_parity_all_erasures () =
  (* Exhaustive: losing any single one of the k+1 blocks still decodes. *)
  List.iter
    (fun k ->
      let value_bytes = (3 * k) + 1 in
      let codec = Codec.parity ~value_bytes ~k in
      let prng = Prng.create (k * 7) in
      let v = random_value prng value_bytes in
      let all = List.init (k + 1) (fun i -> (i, codec.Codec.encode v i)) in
      for missing = 0 to k do
        let blocks = List.filter (fun (i, _) -> i <> missing) all in
        match codec.Codec.decode blocks with
        | Some v' -> Alcotest.(check bytes) (Printf.sprintf "k=%d missing %d" k missing) v v'
        | None -> Alcotest.failf "k=%d: failed with block %d missing" k missing
      done)
    [ 1; 2; 3; 5; 8 ]

let test_parity_two_missing () =
  let codec = Codec.parity ~value_bytes:12 ~k:3 in
  let v = Bytes.make 12 'p' in
  let blocks = [ (0, codec.Codec.encode v 0); (3, codec.Codec.encode v 3) ] in
  Alcotest.(check bool) "two data blocks missing fails" true
    (codec.Codec.decode blocks = None)

let test_parity_block_is_xor () =
  let codec = Codec.parity ~value_bytes:8 ~k:2 in
  let v = Bytes.of_string "abcdwxyz" in
  let p = codec.Codec.encode v 2 in
  Alcotest.(check bytes) "parity = xor of fragments"
    (Sb_util.Bytesx.xor (codec.Codec.encode v 0) (codec.Codec.encode v 1))
    p

let test_parity_symmetry () =
  Alcotest.(check bool) "symmetric" true
    (Codec.is_symmetric (Codec.parity ~value_bytes:24 ~k:4))

let test_parity_params () =
  let codec = Codec.parity ~value_bytes:8 ~k:3 in
  Alcotest.(check (option int)) "n = k+1" (Some 4) codec.Codec.n;
  Alcotest.(check bool) "k = 0 rejected" true
    (try ignore (Codec.parity ~value_bytes:8 ~k:0); false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Fountain                                                            *)
(* ------------------------------------------------------------------ *)

let test_fountain_rateless () =
  let codec = Codec.fountain ~value_bytes:32 ~k:4 () in
  Alcotest.(check (option int)) "rateless" None codec.Codec.n;
  let v = Bytes.make 32 'f' in
  (* Large block numbers are fine. *)
  ignore (codec.Codec.encode v 1_000_000)

let test_fountain_decodes_with_overhead =
  qtest ~count:60 "fountain: decodes from enough random blocks"
    QCheck2.Gen.(int_bound 100_000) (fun seed ->
      let prng = Prng.create seed in
      let k = 1 + Prng.int prng 6 in
      let value_bytes = k + Prng.int prng 40 in
      let codec = Codec.fountain ~seed:(seed land 0xff) ~value_bytes ~k () in
      let v = random_value prng value_bytes in
      (* 4k + 12 blocks have full rank except with negligible
         probability (rank deficiency decays exponentially in the
         overhead). *)
      let count = (4 * k) + 12 in
      let start = Prng.int prng 100 in
      let blocks =
        List.init count (fun i -> (start + i, codec.Codec.encode v (start + i)))
      in
      match codec.Codec.decode blocks with
      | Some v' -> Bytes.equal v v'
      | None -> false)

let test_fountain_deterministic () =
  let codec = Codec.fountain ~value_bytes:16 ~k:3 () in
  let v = Bytes.make 16 'd' in
  Alcotest.(check bytes) "same block for same index" (codec.Codec.encode v 5)
    (codec.Codec.encode v 5)

let test_fountain_seed_changes_code () =
  let c1 = Codec.fountain ~seed:1 ~value_bytes:64 ~k:8 () in
  let c2 = Codec.fountain ~seed:2 ~value_bytes:64 ~k:8 () in
  let v = Sb_util.Values.distinct ~value_bytes:64 3 in
  let differs =
    List.exists
      (fun i -> not (Bytes.equal (c1.Codec.encode v i) (c2.Codec.encode v i)))
      (List.init 16 Fun.id)
  in
  Alcotest.(check bool) "different seeds give different codes" true differs

let test_fountain_symmetry () =
  let codec = Codec.fountain ~value_bytes:24 ~k:4 () in
  Alcotest.(check bool) "symmetric" true (Codec.is_symmetric codec)

let test_fountain_insufficient () =
  let codec = Codec.fountain ~value_bytes:16 ~k:4 () in
  let v = Bytes.make 16 'g' in
  Alcotest.(check bool) "k-1 blocks never decode" true
    (codec.Codec.decode (List.init 3 (fun i -> (i, codec.Codec.encode v i))) = None)

(* ------------------------------------------------------------------ *)
(* Colliding values (Claim 1, constructive)                            *)
(* ------------------------------------------------------------------ *)

let collision_suite ~label make_codec find_collision =
  let finds_collisions =
    qtest ~count:100 (label ^ ": sub-k index sets admit real collisions")
      QCheck2.Gen.(int_bound 100_000)
      (fun seed ->
        let prng = Prng.create seed in
        let k = 2 + Prng.int prng 4 in
        let n = k + 1 + Prng.int prng 5 in
        (* Unpadded values keep every kernel vector expressible. *)
        let value_bytes = k * (1 + Prng.int prng 8) in
        let codec = make_codec ~value_bytes ~k ~n in
        let base = random_value prng value_bytes in
        let count = 1 + Prng.int prng (k - 1) in
        let indices = random_subset prng ~n ~k:count in
        match find_collision ~value_bytes ~k ~n ~indices ~base with
        | None -> false
        | Some v' ->
          (not (Bytes.equal v' base))
          && List.for_all
               (fun i ->
                 Bytes.equal (codec.Codec.encode base i) (codec.Codec.encode v' i))
               indices)
  in
  let no_collision_at_k =
    qtest ~count:50 (label ^ ": k indices determine the value")
      QCheck2.Gen.(int_bound 100_000)
      (fun seed ->
        let prng = Prng.create seed in
        let k = 1 + Prng.int prng 4 in
        let n = k + 1 + Prng.int prng 5 in
        let value_bytes = k * 4 in
        let base = random_value prng value_bytes in
        let indices = random_subset prng ~n ~k in
        find_collision ~value_bytes ~k ~n ~indices ~base = None)
  in
  let differs_outside =
    qtest ~count:50 (label ^ ": collisions differ at some uncovered index")
      QCheck2.Gen.(int_bound 100_000)
      (fun seed ->
        let prng = Prng.create seed in
        let k = 2 + Prng.int prng 3 in
        let n = k + 2 in
        let value_bytes = k * 4 in
        let codec = make_codec ~value_bytes ~k ~n in
        let base = random_value prng value_bytes in
        let indices = random_subset prng ~n ~k:(k - 1) in
        match find_collision ~value_bytes ~k ~n ~indices ~base with
        | None -> false
        | Some v' ->
          (* The two values differ, so by MDS their encodings must
             differ at some index outside the colliding set. *)
          List.exists
            (fun i ->
              (not (List.mem i indices))
              && not (Bytes.equal (codec.Codec.encode base i) (codec.Codec.encode v' i)))
            (List.init n Fun.id))
  in
  [ finds_collisions; no_collision_at_k; differs_outside ]

let test_collision_empty_indices () =
  (* With no blocks stored at all, any other value collides trivially. *)
  let base = Bytes.make 8 'b' in
  match
    Codec.rs_vandermonde_colliding ~value_bytes:8 ~k:2 ~n:4 ~indices:[] ~base
  with
  | None -> Alcotest.fail "expected a collision for the empty index set"
  | Some v' -> Alcotest.(check bool) "differs" false (Bytes.equal v' base)

(* ------------------------------------------------------------------ *)
(* Helpers                                                             *)
(* ------------------------------------------------------------------ *)

let test_dedup_blocks () =
  let blocks = [ (1, Bytes.of_string "a"); (2, Bytes.of_string "b"); (1, Bytes.of_string "c") ] in
  Alcotest.(check int) "dedup keeps first" 2 (List.length (Codec.dedup_blocks blocks));
  match Codec.dedup_blocks blocks with
  | (1, first) :: _ -> Alcotest.(check string) "first kept" "a" (Bytes.to_string first)
  | _ -> Alcotest.fail "unexpected order"

let test_value_bits () =
  let codec = Codec.rs_vandermonde ~value_bytes:64 ~k:4 ~n:12 in
  Alcotest.(check int) "D bits" 512 (Codec.value_bits codec);
  Alcotest.(check int) "piece bits = D/k" 128 (Codec.block_bits codec 0)

let test_rs_params () =
  Alcotest.(check bool) "k > n rejected" true
    (try ignore (Codec.rs_vandermonde ~value_bytes:8 ~k:5 ~n:4); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "n > 256 rejected over GF(256)" true
    (try ignore (Codec.rs_vandermonde ~value_bytes:8 ~k:2 ~n:300); false
     with Invalid_argument _ -> true);
  (* ... but fine over GF(2^16). *)
  let c = Codec.rs_vandermonde16 ~value_bytes:8 ~k:2 ~n:300 in
  let v = Bytes.make 8 'v' in
  Alcotest.(check (option bytes)) "wide code decodes"
    (Some v)
    (c.Codec.decode [ (299, c.Codec.encode v 299); (123, c.Codec.encode v 123) ])

let () =
  Alcotest.run "codec"
    [
      ("rs-vandermonde", mds_suite ~label:"rs-vand" (fun ~value_bytes ~k ~n ->
           Codec.rs_vandermonde ~value_bytes ~k ~n));
      ("rs-vandermonde16", mds_suite ~label:"rs-vand16" (fun ~value_bytes ~k ~n ->
           Codec.rs_vandermonde16 ~value_bytes ~k ~n));
      ("rs-cauchy", mds_suite ~label:"rs-cauchy" (fun ~value_bytes ~k ~n ->
           Codec.rs_cauchy ~value_bytes ~k ~n));
      ( "replication",
        [
          test_replication_roundtrip;
          Alcotest.test_case "parameters" `Quick test_replication_k;
        ] );
      ( "striping",
        [
          test_striping_roundtrip;
          Alcotest.test_case "missing fragment" `Quick test_striping_missing;
          Alcotest.test_case "rate 1" `Quick test_striping_rate;
        ] );
      ( "parity",
        [
          Alcotest.test_case "all single erasures" `Quick test_parity_all_erasures;
          Alcotest.test_case "two missing" `Quick test_parity_two_missing;
          Alcotest.test_case "parity is xor" `Quick test_parity_block_is_xor;
          Alcotest.test_case "symmetry" `Quick test_parity_symmetry;
          Alcotest.test_case "parameters" `Quick test_parity_params;
        ] );
      ( "fountain",
        [
          Alcotest.test_case "rateless" `Quick test_fountain_rateless;
          test_fountain_decodes_with_overhead;
          Alcotest.test_case "deterministic" `Quick test_fountain_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_fountain_seed_changes_code;
          Alcotest.test_case "symmetry" `Quick test_fountain_symmetry;
          Alcotest.test_case "insufficient" `Quick test_fountain_insufficient;
        ] );
      ( "collisions-vandermonde",
        collision_suite ~label:"rs-vand"
          (fun ~value_bytes ~k ~n -> Codec.rs_vandermonde ~value_bytes ~k ~n)
          Codec.rs_vandermonde_colliding
        @ [ Alcotest.test_case "empty index set" `Quick test_collision_empty_indices ]
      );
      ( "collisions-cauchy",
        collision_suite ~label:"rs-cauchy"
          (fun ~value_bytes ~k ~n -> Codec.rs_cauchy ~value_bytes ~k ~n)
          Codec.rs_cauchy_colliding );
      ( "helpers",
        [
          Alcotest.test_case "dedup_blocks" `Quick test_dedup_blocks;
          Alcotest.test_case "value_bits" `Quick test_value_bits;
          Alcotest.test_case "rs params" `Quick test_rs_params;
        ] );
    ]
