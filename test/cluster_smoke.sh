#!/usr/bin/env bash
# CI smoke test for the register service: a 5-server f=2 cluster of
# separate daemons with persistent state, a seeded paced load under it,
# two servers SIGKILLed mid-run and restarted over their state files.
# The loadgen run must complete every operation, observe the
# recoveries, keep a regular history, and respect the Theorem 2
# storage ceiling during the run and the (2f+k)D/k GC floor after
# quiescence — loadgen exits non-zero if any of that fails.
#
# Usage: test/cluster_smoke.sh [path-to-spacebounds-exe]
# (Defaults to the built binary: concurrent `dune exec` daemons would
# serialize on dune's build lock.  Run `dune build` first.)
set -ue

SPACEBOUNDS=${1:-_build/default/bin/spacebounds.exe}
SOCKDIR=$(mktemp -d)
STATEDIR=$(mktemp -d)
JSON=${JSON:-BENCH_service_closed.json}

F=2
K=1
N=$((2 * F + K))
ALGO_ARGS=(-a adaptive -f "$F" -k "$K" --value-bytes 64)

declare -a PIDS
cleanup() {
  for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
  wait 2>/dev/null || true
  rm -rf "$SOCKDIR" "$STATEDIR"
}
trap cleanup EXIT

start_server() {
  $SPACEBOUNDS serve "${ALGO_ARGS[@]}" --server "$1" \
    --sockdir "$SOCKDIR" --statedir "$STATEDIR" &
  PIDS[$1]=$!
}

echo "== starting $N daemons (f=$F, k=$K) under $SOCKDIR"
for i in $(seq 0 $((N - 1))); do start_server "$i"; done

for _ in $(seq 1 100); do
  up=$(ls "$SOCKDIR" 2>/dev/null | grep -c '\.sock$' || true)
  [ "$up" -eq "$N" ] && break
  sleep 0.1
done
[ "$(ls "$SOCKDIR" | grep -c '\.sock$')" -eq "$N" ] || {
  echo "cluster did not come up"; exit 1;
}

echo "== loadgen: seeded paced run (kills arrive mid-run)"
$SPACEBOUNDS loadgen "${ALGO_ARGS[@]}" \
  --writers 2 --writes-each 60 --readers 2 --reads-each 60 \
  --seed 11 --think-ms 25 --sockdir "$SOCKDIR" --json "$JSON" &
LOADGEN=$!

# SIGKILL f = 2 servers mid-run, then restart them over their state
# files: each recovers into a fresh incarnation and is re-admitted.
sleep 0.9
echo "== SIGKILL servers 3 and 4"
kill -9 "${PIDS[3]}" "${PIDS[4]}"
sleep 0.7
echo "== restarting servers 3 and 4 over $STATEDIR"
start_server 3
start_server 4

wait "$LOADGEN"
echo "== loadgen verdict: green"

# The kills really happened during the run: the report must show the
# restarted servers' incarnation bumps.
grep -q '"recoveries": 2' "$JSON" || {
  echo "expected 2 observed recoveries in $JSON:"; cat "$JSON"; exit 1;
}
grep -q '"ok": true' "$JSON" || { echo "report not ok"; cat "$JSON"; exit 1; }
echo "== smoke test passed"

# ---------------------------------------------------------------------
# Mixed-version phase: the same cluster shape pinned to wire v1 (an
# old build), the current-version loadgen negotiating down to every
# daemon, and a rolling upgrade of f servers to the current wire
# version under live load.  Theorem 2 ceiling/floor and regularity are
# still enforced by loadgen itself; on top of that the report must show
# the downgrades happening and zero schema rejects.
# ---------------------------------------------------------------------
echo "== mixed-version phase: restarting the cluster pinned to wire v1"
for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
wait 2>/dev/null || true
rm -rf "$SOCKDIR" "$STATEDIR"
mkdir -p "$SOCKDIR" "$STATEDIR"
MIXED_JSON=${MIXED_JSON:-BENCH_service_mixed.json}

start_server_v1() {
  $SPACEBOUNDS serve "${ALGO_ARGS[@]}" --server "$1" --wire-version 1 \
    --sockdir "$SOCKDIR" --statedir "$STATEDIR" &
  PIDS[$1]=$!
}

for i in $(seq 0 $((N - 1))); do start_server_v1 "$i"; done
for _ in $(seq 1 100); do
  up=$(ls "$SOCKDIR" 2>/dev/null | grep -c '\.sock$' || true)
  [ "$up" -eq "$N" ] && break
  sleep 0.1
done
[ "$(ls "$SOCKDIR" | grep -c '\.sock$')" -eq "$N" ] || {
  echo "v1 cluster did not come up"; exit 1;
}

echo "== loadgen (current version) against the v1 cluster"
$SPACEBOUNDS loadgen "${ALGO_ARGS[@]}" \
  --writers 2 --writes-each 60 --readers 2 --reads-each 60 \
  --seed 23 --think-ms 25 --sockdir "$SOCKDIR" --json "$MIXED_JSON" &
LOADGEN=$!

# Roll f = 2 daemons forward to the current wire version mid-run: the
# upgraded servers come back self-describing, the still-v1 majority
# keeps serving, and the client keeps both generations in one quorum.
sleep 0.9
echo "== rolling servers 3 and 4 forward to the current wire version"
kill -9 "${PIDS[3]}" "${PIDS[4]}"
sleep 0.7
start_server 3
start_server 4

wait "$LOADGEN"
echo "== mixed-version loadgen verdict: green"

# Every daemon started at v1, so the client must have negotiated down
# once per server — and a downgrade is not a reject.
grep -q "\"downgrades\": $N" "$MIXED_JSON" || {
  echo "expected $N wire downgrades in $MIXED_JSON:"; cat "$MIXED_JSON"; exit 1;
}
grep -q '"schema_rejects": 0' "$MIXED_JSON" || {
  echo "expected no schema rejects in $MIXED_JSON:"; cat "$MIXED_JSON"; exit 1;
}
grep -q '"recoveries": 2' "$MIXED_JSON" || {
  echo "expected 2 observed recoveries in $MIXED_JSON:"; cat "$MIXED_JSON"; exit 1;
}
grep -q '"ok": true' "$MIXED_JSON" || {
  echo "mixed-version report not ok"; cat "$MIXED_JSON"; exit 1;
}
echo "== mixed-version smoke test passed"

# ---------------------------------------------------------------------
# Crash-point phase: server 0 armed to abort inside the torn-write
# window (after the temp-file fsync, before the rename) on its 3rd
# persist.  The abort is _exit 70 — indistinguishable from SIGKILL.
# The restart must load the OLD state (the rename never happened),
# recover into a fresh incarnation, and the loadgen run stays green
# with exactly that one recovery observed.
# ---------------------------------------------------------------------
echo "== crash-point phase: server 0 armed with --crash-at persist:3"
for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
wait 2>/dev/null || true
rm -rf "$SOCKDIR" "$STATEDIR"
mkdir -p "$SOCKDIR" "$STATEDIR"
CRASH_JSON=${CRASH_JSON:-BENCH_service_crash.json}

$SPACEBOUNDS serve "${ALGO_ARGS[@]}" --server 0 --crash-at persist:3 \
  --sockdir "$SOCKDIR" --statedir "$STATEDIR" &
PIDS[0]=$!
for i in $(seq 1 $((N - 1))); do start_server "$i"; done
for _ in $(seq 1 100); do
  up=$(ls "$SOCKDIR" 2>/dev/null | grep -c '\.sock$' || true)
  [ "$up" -eq "$N" ] && break
  sleep 0.1
done
[ "$(ls "$SOCKDIR" | grep -c '\.sock$')" -eq "$N" ] || {
  echo "armed cluster did not come up"; exit 1;
}

$SPACEBOUNDS loadgen "${ALGO_ARGS[@]}" \
  --writers 2 --writes-each 60 --readers 2 --reads-each 60 \
  --seed 31 --think-ms 25 --sockdir "$SOCKDIR" --json "$CRASH_JSON" &
LOADGEN=$!

set +e
wait "${PIDS[0]}"; code=$?
set -e
[ "$code" -eq 70 ] || { echo "expected crash exit 70, got $code"; exit 1; }
echo "== server 0 hit its crash point (exit 70); restarting over its state"
start_server 0

wait "$LOADGEN"
echo "== crash-point loadgen verdict: green"
grep -q '"recoveries": 1' "$CRASH_JSON" || {
  echo "expected 1 observed recovery in $CRASH_JSON:"; cat "$CRASH_JSON"; exit 1;
}
grep -q '"ok": true' "$CRASH_JSON" || {
  echo "crash-point report not ok"; cat "$CRASH_JSON"; exit 1;
}
echo "== crash-point smoke test passed"

# ---------------------------------------------------------------------
# Sharded open-loop bench phase: every daemon hosts 8 shards, the
# loadgen drives Poisson arrivals over 1000 keys through batched v3
# frames, and the run is gated against the committed baseline in
# bench/baselines/BENCH_service.json (ms_per_op and p99 within budget,
# plus the hard gates the baseline carries: >= 900 ops/s at p99 under
# 50 ms).  No state files here: this phase measures the service stack
# itself, not the disk — the durable sharded run is the next phase.
# ---------------------------------------------------------------------
echo "== sharded bench phase: 8 shards/server, open loop over 1000 keys"
for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
wait 2>/dev/null || true
rm -rf "$SOCKDIR" "$STATEDIR"
mkdir -p "$SOCKDIR" "$STATEDIR"
OPEN_JSON=${OPEN_JSON:-BENCH_service.json}

start_server_sharded() {
  $SPACEBOUNDS serve "${ALGO_ARGS[@]}" --server "$1" --shards 8 \
    --sockdir "$SOCKDIR" &
  PIDS[$1]=$!
}

for i in $(seq 0 $((N - 1))); do start_server_sharded "$i"; done
for _ in $(seq 1 100); do
  up=$(ls "$SOCKDIR" 2>/dev/null | grep -c '\.sock$' || true)
  [ "$up" -eq "$N" ] && break
  sleep 0.1
done
[ "$(ls "$SOCKDIR" | grep -c '\.sock$')" -eq "$N" ] || {
  echo "sharded cluster did not come up"; exit 1;
}

$SPACEBOUNDS loadgen "${ALGO_ARGS[@]}" \
  --open-loop --rate 1000 --duration-ms 8000 --keys 1000 \
  --settle-ms 1000 --sockdir "$SOCKDIR" --json "$OPEN_JSON" --check
grep -q '"ok": true' "$OPEN_JSON" || {
  echo "sharded bench report not ok"; cat "$OPEN_JSON"; exit 1;
}
grep -q '"schema_rejects": 0' "$OPEN_JSON" || {
  echo "expected no schema rejects in $OPEN_JSON"; cat "$OPEN_JSON"; exit 1;
}
echo "== sharded bench phase passed"

# ---------------------------------------------------------------------
# Sharded chaos phase: the same 8-shard fleet with durable per-shard
# state, open-loop load over 1000 keys, and f = 2 daemons SIGKILLed
# mid-run then restarted over their state files.  The run must drain
# green — every arrival completes, both recoveries are observed, and
# the Theorem 2 ceiling (per key and fleet-wide) plus the quiescent GC
# budget hold across the crash-recovery.
# ---------------------------------------------------------------------
echo "== sharded chaos phase: kill f=2 daemons mid open-loop run"
for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
wait 2>/dev/null || true
rm -rf "$SOCKDIR" "$STATEDIR"
mkdir -p "$SOCKDIR" "$STATEDIR"
SHARD_JSON=${SHARD_JSON:-BENCH_service_sharded.json}

start_server_sharded_durable() {
  $SPACEBOUNDS serve "${ALGO_ARGS[@]}" --server "$1" --shards 8 \
    --sockdir "$SOCKDIR" --statedir "$STATEDIR" &
  PIDS[$1]=$!
}

for i in $(seq 0 $((N - 1))); do start_server_sharded_durable "$i"; done
for _ in $(seq 1 100); do
  up=$(ls "$SOCKDIR" 2>/dev/null | grep -c '\.sock$' || true)
  [ "$up" -eq "$N" ] && break
  sleep 0.1
done
[ "$(ls "$SOCKDIR" | grep -c '\.sock$')" -eq "$N" ] || {
  echo "durable sharded cluster did not come up"; exit 1;
}

$SPACEBOUNDS loadgen "${ALGO_ARGS[@]}" \
  --open-loop --rate 500 --duration-ms 8000 --keys 1000 \
  --settle-ms 1000 --sockdir "$SOCKDIR" --json "$SHARD_JSON" &
LOADGEN=$!

sleep 2
echo "== SIGKILL sharded servers 3 and 4"
kill -9 "${PIDS[3]}" "${PIDS[4]}"
sleep 0.7
echo "== restarting sharded servers 3 and 4 over $STATEDIR"
start_server_sharded_durable 3
start_server_sharded_durable 4

wait "$LOADGEN"
echo "== sharded chaos loadgen verdict: green"
grep -q '"recoveries": 2' "$SHARD_JSON" || {
  echo "expected 2 observed recoveries in $SHARD_JSON:"; cat "$SHARD_JSON"; exit 1;
}
grep -q '"ok": true' "$SHARD_JSON" || {
  echo "sharded chaos report not ok"; cat "$SHARD_JSON"; exit 1;
}
echo "== sharded chaos phase passed"

# ---------------------------------------------------------------------
# Multicore phase: the whole fleet in ONE process, first on a single
# event-loop domain, then with one domain per core (shard-affine
# partitioning, no cross-domain locking).  The speedup gate follows
# the lib/parallel precedent — armed only where there are real cores
# to win: >= 4 cores must show 1.25x, 2-3 cores 1.05x (the SDK client
# process competes for the same cores), a single core only records.
# ---------------------------------------------------------------------
CORES=$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)
echo "== multicore phase: single-process fleet, $CORES core(s)"
for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
wait 2>/dev/null || true
rm -rf "$SOCKDIR" "$STATEDIR"
mkdir -p "$SOCKDIR" "$STATEDIR"

throughput_of() {
  grep -o '"throughput_ops_s": [0-9.]*' "$1" | awk '{print $2}'
}

run_domains() {  # $1 = domains, $2 = json
  rm -f "$SOCKDIR"/*.sock
  $SPACEBOUNDS serve "${ALGO_ARGS[@]}" --shards 8 --domains "$1" \
    --sockdir "$SOCKDIR" &
  CLUSTER=$!
  for _ in $(seq 1 100); do
    up=$(ls "$SOCKDIR" 2>/dev/null | grep -c '\.sock$' || true)
    [ "$up" -eq "$N" ] && break
    sleep 0.1
  done
  $SPACEBOUNDS loadgen "${ALGO_ARGS[@]}" \
    --open-loop --rate 3000 --duration-ms 6000 --keys 1000 \
    --rto 20000 --settle-ms 500 --sockdir "$SOCKDIR" --json "$2"
  kill "$CLUSTER" 2>/dev/null || true
  wait "$CLUSTER" 2>/dev/null || true
}

run_domains 1 BENCH_service_domains1.json
T1=$(throughput_of BENCH_service_domains1.json)
if [ "$CORES" -ge 2 ]; then
  run_domains "$CORES" BENCH_service_domainsN.json
  TN=$(throughput_of BENCH_service_domainsN.json)
  if [ "$CORES" -ge 4 ]; then REQ=1.25; else REQ=1.05; fi
  echo "== domains speedup: $TN vs $T1 ops/s (gate ${REQ}x at $CORES cores)"
  awk -v tn="$TN" -v t1="$T1" -v req="$REQ" \
    'BEGIN { exit !(tn >= req * t1) }' || {
    echo "multicore speedup gate failed: $TN < $REQ x $T1"; exit 1;
  }
else
  echo "== domains speedup gate skipped (recorded $T1 ops/s; single core)"
fi
echo "== multicore phase passed"

# ---------------------------------------------------------------------
# Live chaos phase: seeded socket/disk fault campaigns over forked
# clusters — frame loss/duplication/fragmentation, a held-then-healed
# partition, torn-write crash points, and corrupted state files that
# must quarantine and recover fresh.  Green cells re-assert regularity
# and the Theorem 2 ceiling/floor under faults; the report lands in
# CHAOS_live_report.json for the CI artifact.
# ---------------------------------------------------------------------
echo "== live chaos campaign (quick)"
CHAOS_JSON=${CHAOS_JSON:-CHAOS_live_report.json}
$SPACEBOUNDS chaos --live --quick -a adaptive -f 2 -k 1 --seed 7 \
  --value-bytes 64 --live-report "$CHAOS_JSON"
grep -q '"ok": true' "$CHAOS_JSON" || {
  echo "live chaos report not ok"; cat "$CHAOS_JSON"; exit 1;
}
echo "== live chaos passed"
