(* Tests for Sb_storage: blocks, timestamps, chunks, object states,
   oracles (Definition 1) and the storage-cost accounting
   (Definitions 2 and 6). *)

module B = Sb_storage.Block
module Ts = Sb_storage.Timestamp
module Chunk = Sb_storage.Chunk
module Objstate = Sb_storage.Objstate
module Oracle = Sb_storage.Oracle
module Acc = Sb_storage.Accounting
module Codec = Sb_codec.Codec

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ------------------------------------------------------------------ *)
(* Block                                                               *)
(* ------------------------------------------------------------------ *)

let test_block_basics () =
  let b = B.v ~source:3 ~index:7 (Bytes.make 5 'x') in
  Alcotest.(check int) "bits" 40 (B.bits b);
  Alcotest.(check int) "source" 3 b.B.source;
  Alcotest.(check int) "index" 7 b.B.index;
  let b0 = B.initial ~index:2 (Bytes.make 1 'i') in
  Alcotest.(check int) "initial source is 0" 0 b0.B.source;
  Alcotest.(check bool) "same_source" true (B.same_source b0 (B.initial ~index:9 Bytes.empty));
  Alcotest.(check bool) "different source" false (B.same_source b b0)

let test_block_invalid () =
  Alcotest.check_raises "negative source" (Invalid_argument "Block.v: negative source")
    (fun () -> ignore (B.v ~source:(-1) ~index:0 Bytes.empty));
  Alcotest.check_raises "negative index" (Invalid_argument "Block.v: negative index")
    (fun () -> ignore (B.v ~source:1 ~index:(-2) Bytes.empty))

(* ------------------------------------------------------------------ *)
(* Timestamp                                                           *)
(* ------------------------------------------------------------------ *)

let ts_gen =
  QCheck2.Gen.(map (fun (n, c) -> Ts.make ~num:n ~client:c) (pair (int_bound 50) (int_bound 5)))

let test_ts_order_total =
  qtest "timestamp order is total and antisymmetric" QCheck2.Gen.(pair ts_gen ts_gen)
    (fun (a, b) ->
      let c1 = Ts.compare a b and c2 = Ts.compare b a in
      (c1 = 0 && c2 = 0 && Ts.equal a b) || c1 * c2 < 0)

let test_ts_order_transitive =
  qtest "timestamp order is transitive" QCheck2.Gen.(triple ts_gen ts_gen ts_gen)
    (fun (a, b, c) ->
      let open Ts in
      (not (a <= b && b <= c)) || a <= c)

let test_ts_lexicographic () =
  let a = Ts.make ~num:1 ~client:9 and b = Ts.make ~num:2 ~client:0 in
  Alcotest.(check bool) "num dominates" true Ts.(a < b);
  let c = Ts.make ~num:1 ~client:2 in
  Alcotest.(check bool) "client breaks ties" true Ts.(a >= c && not (Ts.equal a c))

let test_ts_succ =
  qtest "succ is strictly greater" ts_gen (fun ts ->
      let s = Ts.succ ts ~client:3 in
      Ts.(ts < s) && s.Ts.num = ts.Ts.num + 1)

let test_ts_max =
  qtest "max is an upper bound" QCheck2.Gen.(pair ts_gen ts_gen) (fun (a, b) ->
      let m = Ts.max a b in
      Ts.(a <= m) && Ts.(b <= m) && (Ts.equal m a || Ts.equal m b))

let test_ts_zero () =
  Alcotest.(check bool) "zero is minimal" true Ts.(zero <= Ts.make ~num:0 ~client:0);
  Alcotest.(check string) "printing" "(3,c1)" (Ts.to_string (Ts.make ~num:3 ~client:1))

(* ------------------------------------------------------------------ *)
(* Objstate                                                            *)
(* ------------------------------------------------------------------ *)

let chunk ~source ~index ~num bytes =
  Chunk.v ~ts:(Ts.make ~num ~client:0) (B.v ~source ~index (Bytes.make bytes 'c'))

let test_objstate_bits () =
  let st = Objstate.init ~vp:[ chunk ~source:1 ~index:0 ~num:1 4 ]
      ~vf:[ chunk ~source:2 ~index:1 ~num:2 6 ] () in
  Alcotest.(check int) "bits = vp + vf" 80 (Objstate.bits st);
  Alcotest.(check int) "chunk count" 2 (Objstate.chunk_count st);
  Alcotest.(check int) "blocks" 2 (List.length (Objstate.blocks st))

let test_objstate_empty () =
  let st = Objstate.init () in
  Alcotest.(check int) "no bits" 0 (Objstate.bits st);
  Alcotest.(check bool) "stored_ts is zero" true (Ts.equal st.Objstate.stored_ts Ts.zero)

let test_objstate_stored_ts_monotone () =
  let st = Objstate.init () in
  let st = Objstate.with_stored_ts st (Ts.make ~num:5 ~client:1) in
  let st = Objstate.with_stored_ts st (Ts.make ~num:3 ~client:9) in
  (* Lower timestamps never decrease stored_ts (Observation 3). *)
  Alcotest.(check int) "monotone" 5 st.Objstate.stored_ts.Ts.num

(* ------------------------------------------------------------------ *)
(* Oracles (Definition 1)                                              *)
(* ------------------------------------------------------------------ *)

let codec = Codec.rs_vandermonde ~value_bytes:16 ~k:2 ~n:4

let test_encoder_tags () =
  let v = Sb_util.Values.distinct ~value_bytes:16 1 in
  let enc = Oracle.Encoder.create codec ~op:42 ~value:v in
  let b = Oracle.Encoder.get enc 3 in
  Alcotest.(check int) "source tag" 42 b.B.source;
  Alcotest.(check int) "index tag" 3 b.B.index;
  Alcotest.(check bytes) "contents are E(v,i)" (codec.Codec.encode v 3) b.B.data;
  Alcotest.(check int) "calls counted" 1 (Oracle.Encoder.calls enc);
  ignore (Oracle.Encoder.get_all enc);
  Alcotest.(check int) "get_all counts" 5 (Oracle.Encoder.calls enc)

let test_encoder_value_mismatch () =
  Alcotest.check_raises "size mismatch"
    (Invalid_argument "Oracle.Encoder.create: value size mismatch") (fun () ->
      ignore (Oracle.Encoder.create codec ~op:1 ~value:(Bytes.make 3 'x')))

let test_encoder_rateless_get_all () =
  let f = Codec.fountain ~value_bytes:16 ~k:2 () in
  let enc = Oracle.Encoder.create f ~op:1 ~value:(Bytes.make 16 'v') in
  Alcotest.check_raises "rateless get_all"
    (Invalid_argument "Oracle.Encoder.get_all: rateless codec") (fun () ->
      ignore (Oracle.Encoder.get_all enc))

let test_decoder_groups () =
  let v1 = Sb_util.Values.distinct ~value_bytes:16 1 in
  let v2 = Sb_util.Values.distinct ~value_bytes:16 2 in
  let dec = Oracle.Decoder.create codec in
  Oracle.Decoder.push dec ~group:1 ~index:0 (codec.Codec.encode v1 0);
  Oracle.Decoder.push dec ~group:2 ~index:0 (codec.Codec.encode v2 0);
  Oracle.Decoder.push dec ~group:1 ~index:2 (codec.Codec.encode v1 2);
  Oracle.Decoder.push dec ~group:2 ~index:3 (codec.Codec.encode v2 3);
  Alcotest.(check int) "group 1 size" 2 (Oracle.Decoder.group_size dec ~group:1);
  Alcotest.(check (option bytes)) "group 1 decodes v1" (Some v1)
    (Oracle.Decoder.finish dec ~group:1);
  Alcotest.(check (option bytes)) "group 2 decodes v2" (Some v2)
    (Oracle.Decoder.finish dec ~group:2);
  Alcotest.(check (option bytes)) "empty group fails" None
    (Oracle.Decoder.finish dec ~group:3)

let test_decoder_dup_pushes () =
  let v = Sb_util.Values.distinct ~value_bytes:16 4 in
  let dec = Oracle.Decoder.create codec in
  Oracle.Decoder.push dec ~group:0 ~index:1 (codec.Codec.encode v 1);
  Oracle.Decoder.push dec ~group:0 ~index:1 (codec.Codec.encode v 1);
  Alcotest.(check int) "dups counted once" 1 (Oracle.Decoder.group_size dec ~group:0);
  Alcotest.(check (option bytes)) "one distinct index insufficient" None
    (Oracle.Decoder.finish dec ~group:0)

(* ------------------------------------------------------------------ *)
(* Accounting (Definitions 2 and 6)                                    *)
(* ------------------------------------------------------------------ *)

let test_bits_of_blocks () =
  let blocks = [ B.v ~source:1 ~index:0 (Bytes.make 2 'a');
                 B.v ~source:1 ~index:0 (Bytes.make 2 'a') ] in
  (* Instances count every time (Definition 2). *)
  Alcotest.(check int) "instances both counted" 32 (Acc.bits_of_blocks blocks);
  Alcotest.(check int) "empty" 0 (Acc.bits_of_blocks [])

let test_contribution_distinct_indices () =
  let blocks =
    [
      B.v ~source:5 ~index:0 (Bytes.make 4 'a');
      B.v ~source:5 ~index:0 (Bytes.make 4 'b'); (* same index: counted once *)
      B.v ~source:5 ~index:1 (Bytes.make 4 'c');
      B.v ~source:6 ~index:2 (Bytes.make 4 'd'); (* other op: not counted *)
    ]
  in
  (* ||S(t,w)|| counts distinct indices only (Definition 6). *)
  Alcotest.(check int) "distinct indices" 64 (Acc.contribution ~source:5 blocks);
  Alcotest.(check (list int)) "index set" [ 0; 1 ] (Acc.indices_of ~source:5 blocks);
  Alcotest.(check int) "absent op" 0 (Acc.contribution ~source:99 blocks)

let test_contribution_vs_total =
  qtest "contribution never exceeds total bits" QCheck2.Gen.(int_bound 100_000)
    (fun seed ->
      let prng = Sb_util.Prng.create seed in
      let blocks =
        List.init (Sb_util.Prng.int prng 20) (fun _ ->
            B.v ~source:(Sb_util.Prng.int prng 3)
              ~index:(Sb_util.Prng.int prng 5)
              (Sb_util.Prng.bytes prng (Sb_util.Prng.int prng 8)))
      in
      List.for_all
        (fun src -> Acc.contribution ~source:src blocks <= Acc.bits_of_blocks blocks)
        [ 0; 1; 2 ])

let () =
  Alcotest.run "storage"
    [
      ( "block",
        [
          Alcotest.test_case "basics" `Quick test_block_basics;
          Alcotest.test_case "invalid" `Quick test_block_invalid;
        ] );
      ( "timestamp",
        [
          test_ts_order_total;
          test_ts_order_transitive;
          Alcotest.test_case "lexicographic" `Quick test_ts_lexicographic;
          test_ts_succ;
          test_ts_max;
          Alcotest.test_case "zero and printing" `Quick test_ts_zero;
        ] );
      ( "objstate",
        [
          Alcotest.test_case "bits" `Quick test_objstate_bits;
          Alcotest.test_case "empty" `Quick test_objstate_empty;
          Alcotest.test_case "stored_ts monotone" `Quick test_objstate_stored_ts_monotone;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "encoder tags" `Quick test_encoder_tags;
          Alcotest.test_case "encoder value mismatch" `Quick test_encoder_value_mismatch;
          Alcotest.test_case "rateless get_all" `Quick test_encoder_rateless_get_all;
          Alcotest.test_case "decoder groups" `Quick test_decoder_groups;
          Alcotest.test_case "decoder duplicate pushes" `Quick test_decoder_dup_pushes;
        ] );
      ( "accounting",
        [
          Alcotest.test_case "bits_of_blocks" `Quick test_bits_of_blocks;
          Alcotest.test_case "contribution distinct" `Quick test_contribution_distinct_indices;
          test_contribution_vs_total;
        ] );
    ]
