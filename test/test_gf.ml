(* Tests for the Galois fields and the matrix algebra over them. *)

module M8 = Sb_gf.Matrix.Make (Sb_gf.Gf256)

let qtest ?(count = 300) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* Field axiom tests shared by both fields. *)
module Axioms (F : Sb_gf.Field.S) (N : sig
  val name : string
  val mul_slow : F.t -> F.t -> F.t
end) =
struct
  let elem = QCheck2.Gen.int_bound (F.order - 1)
  let nonzero = QCheck2.Gen.int_range 1 (F.order - 1)
  let q name gen prop = qtest (N.name ^ ": " ^ name) gen prop

  let tests =
    [
      q "add is xor" QCheck2.Gen.(pair elem elem) (fun (a, b) -> F.add a b = a lxor b);
      q "mul commutative" QCheck2.Gen.(pair elem elem) (fun (a, b) ->
          F.mul a b = F.mul b a);
      q "mul associative" QCheck2.Gen.(triple elem elem elem) (fun (a, b, c) ->
          F.mul a (F.mul b c) = F.mul (F.mul a b) c);
      q "mul distributes" QCheck2.Gen.(triple elem elem elem) (fun (a, b, c) ->
          F.mul a (F.add b c) = F.add (F.mul a b) (F.mul a c));
      q "one is identity" elem (fun a -> F.mul F.one a = a);
      q "zero annihilates" elem (fun a -> F.mul F.zero a = F.zero);
      q "inverse" nonzero (fun a -> F.mul a (F.inv a) = F.one);
      q "div inverts mul" QCheck2.Gen.(pair elem nonzero) (fun (a, b) ->
          F.div (F.mul a b) b = a);
      q "table mul = slow mul" QCheck2.Gen.(pair elem elem) (fun (a, b) ->
          F.mul a b = N.mul_slow a b);
      q "exp/log roundtrip" nonzero (fun a -> F.exp (F.log a) = a);
      q "pow matches iterated mul"
        QCheck2.Gen.(pair elem (int_bound 16))
        (fun (a, e) ->
          let rec go acc i = if i = 0 then acc else go (F.mul acc a) (i - 1) in
          F.pow a e = if e = 0 then F.one else go F.one e);
      q "generator powers are distinct"
        QCheck2.Gen.(pair (int_bound 1000) (int_bound 1000))
        (fun (i, j) ->
          i mod (F.order - 1) = j mod (F.order - 1) || F.exp i <> F.exp j);
    ]

  let unit_tests =
    [
      Alcotest.test_case (N.name ^ ": inv 0 raises") `Quick (fun () ->
          Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
              ignore (F.inv F.zero)));
      Alcotest.test_case (N.name ^ ": div by 0 raises") `Quick (fun () ->
          Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
              ignore (F.div F.one F.zero)));
      Alcotest.test_case (N.name ^ ": log 0 raises") `Quick (fun () ->
          Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
              ignore (F.log F.zero)));
      Alcotest.test_case (N.name ^ ": constants") `Quick (fun () ->
          Alcotest.(check int) "zero" 0 F.zero;
          Alcotest.(check int) "one" 1 F.one;
          Alcotest.(check int) "bits" (F.order) (1 lsl F.bits));
    ]
end

module A8 =
  Axioms (Sb_gf.Gf256) (struct let name = "gf256" let mul_slow = Sb_gf.Gf256.mul_slow end)

module A16 =
  Axioms
    (Sb_gf.Gf2p16)
    (struct let name = "gf2p16" let mul_slow = Sb_gf.Gf2p16.mul_slow end)

(* Known-answer tests for GF(256) with the 0x11d polynomial. *)
let test_gf256_known () =
  Alcotest.(check int) "2*2" 4 (Sb_gf.Gf256.mul 2 2);
  Alcotest.(check int) "0x80*2 reduces" 0x1d (Sb_gf.Gf256.mul 0x80 2);
  Alcotest.(check int) "exp 0" 1 (Sb_gf.Gf256.exp 0);
  Alcotest.(check int) "exp 1 = generator" 2 (Sb_gf.Gf256.exp 1);
  Alcotest.(check int) "exp 8" 0x1d (Sb_gf.Gf256.exp 8)

let test_mul_bytes_into () =
  let src = Bytes.of_string "\x01\x02\x80\x00" in
  let dst = Bytes.make 4 '\000' in
  Sb_gf.Gf256.mul_bytes_into ~coeff:2 ~src ~dst;
  Alcotest.(check string) "coeff 2" "\x02\x04\x1d\x00" (Bytes.to_string dst);
  let dst2 = Bytes.copy src in
  Sb_gf.Gf256.mul_bytes_into ~coeff:1 ~src ~dst:dst2;
  Alcotest.(check string) "coeff 1 xors" "\x00\x00\x00\x00" (Bytes.to_string dst2);
  let dst3 = Bytes.copy src in
  Sb_gf.Gf256.mul_bytes_into ~coeff:0 ~src ~dst:dst3;
  Alcotest.(check string) "coeff 0 no-op" (Bytes.to_string src) (Bytes.to_string dst3)

(* ------------------------------------------------------------------ *)
(* Matrices                                                            *)
(* ------------------------------------------------------------------ *)

let random_matrix prng n m =
  M8.init n m (fun _ _ -> Sb_util.Prng.int prng 256)

let test_matrix_identity () =
  let i3 = M8.identity 3 in
  let prng = Sb_util.Prng.create 1 in
  let a = random_matrix prng 3 3 in
  Alcotest.(check bool) "I*A = A" true (M8.equal (M8.mul i3 a) a);
  Alcotest.(check bool) "A*I = A" true (M8.equal (M8.mul a i3) a)

let test_matrix_mul_assoc =
  qtest ~count:50 "matrix mul associative" (QCheck2.Gen.int_bound 10_000) (fun seed ->
      let prng = Sb_util.Prng.create seed in
      let a = random_matrix prng 3 4 in
      let b = random_matrix prng 4 2 in
      let c = random_matrix prng 2 5 in
      M8.equal (M8.mul (M8.mul a b) c) (M8.mul a (M8.mul b c)))

let test_matrix_invert =
  qtest ~count:100 "inverse times original is identity"
    (QCheck2.Gen.int_bound 100_000) (fun seed ->
      let prng = Sb_util.Prng.create seed in
      let a = random_matrix prng 4 4 in
      match M8.invert a with
      | exception M8.Singular -> true (* singular matrices are skipped *)
      | inv -> M8.equal (M8.mul inv a) (M8.identity 4) && M8.equal (M8.mul a inv) (M8.identity 4))

let test_matrix_singular () =
  let z = M8.create 3 3 in
  Alcotest.check_raises "zero matrix is singular" M8.Singular (fun () ->
      ignore (M8.invert z));
  (* Two equal rows. *)
  let a = M8.init 2 2 (fun _ j -> j + 1) in
  Alcotest.check_raises "repeated rows" M8.Singular (fun () -> ignore (M8.invert a))

let test_matrix_solve =
  qtest ~count:100 "solve finds x with A x = b" (QCheck2.Gen.int_bound 100_000)
    (fun seed ->
      let prng = Sb_util.Prng.create seed in
      let a = random_matrix prng 4 4 in
      let x = Array.init 4 (fun _ -> Sb_util.Prng.int prng 256) in
      let b = M8.apply a x in
      match M8.solve a b with
      | exception M8.Singular -> true
      | x' -> x' = x || M8.apply a x' = b)

let test_vandermonde_rows_invertible =
  (* The MDS property behind Reed-Solomon: any k rows of an n x k
     Vandermonde matrix with distinct points are invertible. *)
  qtest ~count:200 "any k rows of Vandermonde are invertible"
    (QCheck2.Gen.int_bound 100_000) (fun seed ->
      let prng = Sb_util.Prng.create seed in
      let k = 1 + Sb_util.Prng.int prng 6 in
      let n = k + Sb_util.Prng.int prng 10 in
      let v = M8.vandermonde n k in
      let rows = Array.init n Fun.id in
      Sb_util.Prng.shuffle prng rows;
      let chosen = Array.sub rows 0 k in
      match M8.invert (M8.sub_rows v chosen) with
      | exception M8.Singular -> false
      | _ -> true)

let test_cauchy_rows_invertible =
  qtest ~count:200 "any k rows of [I;Cauchy] are invertible"
    (QCheck2.Gen.int_bound 100_000) (fun seed ->
      let prng = Sb_util.Prng.create seed in
      let k = 1 + Sb_util.Prng.int prng 6 in
      let n = k + Sb_util.Prng.int prng 10 in
      let parity = if n > k then M8.cauchy (n - k) k else M8.create 0 k in
      let gen =
        M8.init n k (fun i j ->
            if i < k then (if i = j then 1 else 0) else M8.get parity (i - k) j)
      in
      let rows = Array.init n Fun.id in
      Sb_util.Prng.shuffle prng rows;
      let chosen = Array.sub rows 0 k in
      match M8.invert (M8.sub_rows gen chosen) with
      | exception M8.Singular -> false
      | _ -> true)

let test_nullspace_property =
  qtest ~count:200 "nullspace vectors are killed by the matrix"
    (QCheck2.Gen.int_bound 100_000) (fun seed ->
      let prng = Sb_util.Prng.create seed in
      let rows = 1 + Sb_util.Prng.int prng 5 in
      let cols = 1 + Sb_util.Prng.int prng 6 in
      let m = random_matrix prng rows cols in
      let basis = M8.nullspace m in
      List.for_all
        (fun v ->
          Array.for_all (fun y -> y = 0) (M8.apply m v)
          && Array.exists (fun x -> x <> 0) v)
        basis)

let test_nullspace_dimension () =
  (* Invertible square matrix: trivial kernel. *)
  Alcotest.(check int) "identity kernel" 0 (List.length (M8.nullspace (M8.identity 4)));
  (* Zero matrix: full kernel. *)
  Alcotest.(check int) "zero matrix kernel" 3 (List.length (M8.nullspace (M8.create 2 3)));
  (* A 2x4 Vandermonde has rank 2: kernel dimension 2. *)
  let v = M8.vandermonde 2 4 in
  Alcotest.(check int) "rank-2 of 4 columns" 2 (List.length (M8.nullspace v))

let test_nullspace_spans_collisions =
  (* For |I| < k rows of an n x k Vandermonde, the kernel is non-trivial
     — the pigeonhole fact behind Claim 1. *)
  qtest ~count:100 "sub-k index sets always admit collisions"
    (QCheck2.Gen.int_bound 100_000) (fun seed ->
      let prng = Sb_util.Prng.create seed in
      let k = 2 + Sb_util.Prng.int prng 5 in
      let n = k + 1 + Sb_util.Prng.int prng 6 in
      let rows_count = Sb_util.Prng.int prng k in
      let gen = M8.vandermonde n k in
      let rows = Array.init n Fun.id in
      Sb_util.Prng.shuffle prng rows;
      let sub = M8.sub_rows gen (Array.sub rows 0 rows_count) in
      List.length (M8.nullspace sub) = k - rows_count)

let test_matrix_bounds () =
  let a = M8.create 2 3 in
  Alcotest.check_raises "get out of bounds" (Invalid_argument "Matrix.get: out of bounds")
    (fun () -> ignore (M8.get a 2 0));
  Alcotest.check_raises "set non-element"
    (Invalid_argument "Matrix.set: not a field element") (fun () -> M8.set a 0 0 256);
  Alcotest.check_raises "mul mismatch" (Invalid_argument "Matrix.mul: dimension mismatch")
    (fun () -> ignore (M8.mul a a))

let test_vandermonde_shape () =
  let v = M8.vandermonde 4 3 in
  Alcotest.(check int) "rows" 4 (M8.rows v);
  Alcotest.(check int) "cols" 3 (M8.cols v);
  (* Row 0 is the point 0: [1; 0; 0]. *)
  Alcotest.(check int) "v(0,0)" 1 (M8.get v 0 0);
  Alcotest.(check int) "v(0,1)" 0 (M8.get v 0 1);
  (* Row 1 is the point g^0 = 1: all ones. *)
  Alcotest.(check int) "v(1,2)" 1 (M8.get v 1 2)

(* ------------------------------------------------------------------ *)
(* Polynomials                                                         *)
(* ------------------------------------------------------------------ *)

module P8 = Sb_gf.Poly.Make (Sb_gf.Gf256)

let test_poly_eval () =
  (* p(x) = 3 + 2x over GF(256): p(0) = 3; p(1) = 1 (3 xor 2). *)
  let p = [| 3; 2 |] in
  Alcotest.(check int) "p(0)" 3 (P8.eval p 0);
  Alcotest.(check int) "p(1)" 1 (P8.eval p 1);
  Alcotest.(check int) "empty poly" 0 (P8.eval [||] 17)

let test_poly_mul_known () =
  (* (x + 1)(x + 1) = x^2 + 1 in characteristic 2. *)
  let p = P8.mul [| 1; 1 |] [| 1; 1 |] in
  Alcotest.(check (array int)) "square" [| 1; 0; 1 |] p

let test_poly_interpolate_roundtrip =
  qtest ~count:200 "interpolation recovers the polynomial"
    (QCheck2.Gen.int_bound 1_000_000) (fun seed ->
      let prng = Sb_util.Prng.create seed in
      let deg = Sb_util.Prng.int prng 6 in
      let p =
        P8.(normalise (Array.init (deg + 1) (fun _ -> Sb_util.Prng.int prng 256)))
      in
      (* deg+1 distinct evaluation points. *)
      let xs = Array.init 256 Fun.id in
      Sb_util.Prng.shuffle prng xs;
      let points =
        List.init (Array.length p) (fun i -> (xs.(i), P8.eval p xs.(i)))
      in
      let q = P8.interpolate points in
      q = p || (p = [||] && q = [||]))

let test_poly_interpolate_duplicates () =
  Alcotest.(check bool) "duplicate x rejected" true
    (try ignore (P8.interpolate [ (1, 2); (1, 3) ]); false
     with Invalid_argument _ -> true)

(* Cross-check the two Reed-Solomon decode paths: matrix inversion in
   the codec vs Lagrange interpolation here.  Vandermonde point i is 0
   for i = 0 and generator^(i-1) otherwise (see Matrix.vandermonde). *)
let test_poly_cross_checks_rs =
  qtest ~count:100 "Lagrange interpolation agrees with the RS codec"
    (QCheck2.Gen.int_bound 1_000_000) (fun seed ->
      let prng = Sb_util.Prng.create seed in
      let k = 1 + Sb_util.Prng.int prng 4 in
      let n = k + 2 + Sb_util.Prng.int prng 4 in
      let value_bytes = k (* one byte per shard: shard j = coefficient j *) in
      let codec = Sb_codec.Codec.rs_vandermonde ~value_bytes ~k ~n in
      let v = Sb_util.Prng.bytes prng value_bytes in
      let point i = if i = 0 then 0 else Sb_gf.Gf256.exp (i - 1) in
      let idx = Array.init n Fun.id in
      Sb_util.Prng.shuffle prng idx;
      let chosen = Array.to_list (Array.sub idx 0 k) in
      let points =
        List.map
          (fun i -> (point i, Char.code (Bytes.get (codec.Sb_codec.Codec.encode v i) 0)))
          chosen
      in
      let p = P8.interpolate points in
      let coeffs = Array.init k (fun j -> if j < Array.length p then p.(j) else 0) in
      let expected = Array.init k (fun j -> Char.code (Bytes.get v j)) in
      coeffs = expected)

let () =
  Alcotest.run "gf"
    [
      ("gf256-axioms", A8.tests);
      ("gf256-edges", A8.unit_tests @ [
        Alcotest.test_case "known values" `Quick test_gf256_known;
        Alcotest.test_case "mul_bytes_into" `Quick test_mul_bytes_into;
      ]);
      ("gf2p16-axioms", A16.tests);
      ("gf2p16-edges", A16.unit_tests);
      ( "matrix",
        [
          Alcotest.test_case "identity" `Quick test_matrix_identity;
          test_matrix_mul_assoc;
          test_matrix_invert;
          Alcotest.test_case "singular" `Quick test_matrix_singular;
          test_matrix_solve;
          test_vandermonde_rows_invertible;
          test_cauchy_rows_invertible;
          test_nullspace_property;
          Alcotest.test_case "nullspace dimension" `Quick test_nullspace_dimension;
          test_nullspace_spans_collisions;
          Alcotest.test_case "bounds checks" `Quick test_matrix_bounds;
          Alcotest.test_case "vandermonde shape" `Quick test_vandermonde_shape;
        ] );
      ( "poly",
        [
          Alcotest.test_case "eval" `Quick test_poly_eval;
          Alcotest.test_case "mul" `Quick test_poly_mul_known;
          test_poly_interpolate_roundtrip;
          Alcotest.test_case "duplicates" `Quick test_poly_interpolate_duplicates;
          test_poly_cross_checks_rs;
        ] );
    ]
