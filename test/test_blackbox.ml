(* Black-box coding (Definition 5, the paper's Figure 2).

   If a run r writes value u in operation w, then for any other value v
   there must be a run r_v with the same trace shape and the same
   client/object states at all times, except that blocks sourced from
   <w, i> hold E(v, i) instead of E(u, i).

   Our schedules are value-oblivious (the policy sees only structure),
   so we realise r_v by re-running the same seed with the substituted
   value, and check that everything except substituted block contents
   is identical. *)

module R = Sb_sim.Runtime
module Trace = Sb_sim.Trace
module Objstate = Sb_storage.Objstate
module Block = Sb_storage.Block
module Common = Sb_registers.Common
module Codec = Sb_codec.Codec

let value_bytes = 32
let v i = Sb_util.Values.distinct ~value_bytes i

let coded_cfg ~f ~k =
  let n = (2 * f) + k in
  { Common.n; f; codec = Codec.rs_vandermonde ~value_bytes ~k ~n }

(* Structure of an event, with block contents erased. *)
let event_shape = function
  | Trace.Invoke { time; op; client; kind } ->
    Printf.sprintf "inv t%d op%d c%d %s" time op client
      (match kind with Trace.Write _ -> "W" | Trace.Read -> "R")
  | Trace.Return { time; op; client; _ } -> Printf.sprintf "ret t%d op%d c%d" time op client
  | Trace.Rmw_trigger { time; ticket; op; client; obj; payload_bits } ->
    Printf.sprintf "trig t%d #%d op%d c%d bo%d %db" time ticket op client obj payload_bits
  | Trace.Rmw_deliver { time; ticket; obj } -> Printf.sprintf "dlv t%d #%d bo%d" time ticket obj
  | Trace.Crash_object { time; obj } -> Printf.sprintf "cobj t%d bo%d" time obj
  | Trace.Recover_object { time; obj } -> Printf.sprintf "robj t%d bo%d" time obj
  | Trace.Crash_client { time; client } -> Printf.sprintf "ccl t%d c%d" time client

(* Structure of an object state: chunk skeleta without block data. *)
let state_shape st =
  List.map
    (fun (c : Sb_storage.Chunk.t) ->
      ( c.ts.Sb_storage.Timestamp.num,
        c.ts.Sb_storage.Timestamp.client,
        c.block.Block.source,
        c.block.Block.index,
        Bytes.length c.block.Block.data ))
    (st.Objstate.vp @ st.Objstate.vf)

(* Blocks in the final states, keyed by (object, source, index). *)
let final_blocks w n =
  List.concat_map
    (fun i ->
      List.map
        (fun (b : Block.t) -> ((i, b.source, b.index), b.data))
        (Objstate.blocks (R.obj_state w i)))
    (List.init n Fun.id)

(* Drive the substituted write to the middle of its update round, the
   point where its blocks are in the storage but not yet garbage
   collected: invoke it, deliver its read round, resume (triggering the
   update RMWs), and deliver the update on half the objects. *)
let run_to_mid_write ~algorithm ~(cfg : Common.config) ~substituted =
  let workload = [| [ Trace.Write substituted ]; [ Trace.Write (v 10) ] |] in
  let w = R.create ~algorithm ~n:cfg.n ~f:cfg.f ~workload () in
  ignore (R.step w (R.Step 0));
  List.iter
    (fun (p : R.pending_info) -> ignore (R.step w (R.Deliver p.ticket)))
    (R.deliverable w);
  ignore (R.step w (R.Step 0));
  let count = ref 0 in
  List.iter
    (fun (p : R.pending_info) ->
      if !count < cfg.n / 2 then begin
        incr count;
        ignore (R.step w (R.Deliver p.ticket))
      end)
    (R.deliverable w);
  w

let substitution_check ~label algorithm_of =
  let cfg = coded_cfg ~f:2 ~k:2 in
  let algorithm = algorithm_of cfg in
  let wa = run_to_mid_write ~algorithm ~cfg ~substituted:(v 1) in
  let wb = run_to_mid_write ~algorithm ~cfg ~substituted:(v 2) in
  (* 1. Identical traces modulo block contents. *)
  Alcotest.(check (list string))
    (label ^ ": trace shapes equal")
    (List.map event_shape (Trace.events (R.trace wa)))
    (List.map event_shape (Trace.events (R.trace wb)));
  (* 2. Identical object-state structure at the end. *)
  for i = 0 to cfg.n - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "%s: object %d structure equal" label i)
      true
      (state_shape (R.obj_state wa i) = state_shape (R.obj_state wb i))
  done;
  (* 3. Blocks from the substituted write (op 1) differ; all others are
     byte-identical. *)
  let ba = final_blocks wa cfg.n and bb = final_blocks wb cfg.n in
  Alcotest.(check int) (label ^ ": same block count") (List.length ba) (List.length bb);
  let substituted_seen = ref 0 in
  List.iter2
    (fun ((key_a, data_a) : _ * bytes) ((key_b, data_b) : _ * bytes) ->
      Alcotest.(check bool) (label ^ ": same block keys") true (key_a = key_b);
      let _, source, _ = key_a in
      if source = 1 then begin
        incr substituted_seen;
        Alcotest.(check bool) (label ^ ": substituted block differs") true
          (not (Bytes.equal data_a data_b))
      end
      else
        Alcotest.(check bool) (label ^ ": other blocks identical") true
          (Bytes.equal data_a data_b))
    ba bb;
  (* The substituted write must actually have blocks in storage for the
     test to be meaningful. *)
  Alcotest.(check bool) (label ^ ": substituted blocks present") true
    (!substituted_seen > 0)

let test_adaptive_blackbox () =
  substitution_check ~label:"adaptive" Sb_registers.Adaptive.make

let test_pure_ec_blackbox () =
  substitution_check ~label:"pure-ec" Sb_registers.Adaptive.make_unbounded

let test_safe_blackbox () =
  substitution_check ~label:"safe" Sb_registers.Safe_register.make

let test_abd_blackbox () =
  let n = 5 and f = 2 in
  let cfg = { Common.n; f; codec = Codec.replication ~value_bytes ~n } in
  let algorithm = Sb_registers.Abd.make cfg in
  let wa = run_to_mid_write ~algorithm ~cfg ~substituted:(v 1) in
  let wb = run_to_mid_write ~algorithm ~cfg ~substituted:(v 2) in
  Alcotest.(check (list string)) "abd: trace shapes equal"
    (List.map event_shape (Trace.events (R.trace wa)))
    (List.map event_shape (Trace.events (R.trace wb)))

(* Under a fair random policy (whose decisions are value-oblivious),
   whole-run trace shapes also coincide across substitutions. *)
let test_random_schedule_shape () =
  let cfg = coded_cfg ~f:2 ~k:2 in
  let algorithm = Sb_registers.Adaptive.make cfg in
  let run substituted =
    let workload =
      [| [ Trace.Write substituted ]; [ Trace.Write (v 10) ]; [ Trace.Read ] |]
    in
    let w = R.create ~algorithm ~n:cfg.n ~f:cfg.f ~workload () in
    ignore (R.run w (R.random_policy ~seed:77 ()));
    List.map event_shape (Trace.events (R.trace w))
  in
  Alcotest.(check (list string)) "full-run shapes equal" (run (v 1)) (run (v 2))

(* Under full substitution, read return values track the substitution:
   the reader decodes whatever value the blocks encode, demonstrating
   that storage decisions do not depend on contents. *)
let test_reads_track_substitution () =
  let cfg = coded_cfg ~f:2 ~k:2 in
  let algorithm = Sb_registers.Adaptive.make cfg in
  let run substituted =
    let workload = [| [ Trace.Write substituted ]; [ Trace.Read ] |] in
    let w = R.create ~seed:5 ~algorithm ~n:cfg.n ~f:cfg.f ~workload () in
    ignore (R.run w (R.fifo_policy ()));
    List.filter_map
      (fun (_, kind, _, _, res) -> match kind with Trace.Read -> Some res | _ -> None)
      (Trace.operations (R.trace w))
  in
  (match (run (v 1), run (v 2)) with
   | [ Some r1 ], [ Some r2 ] ->
     Alcotest.(check bytes) "first run reads v1" (v 1) r1;
     Alcotest.(check bytes) "second run reads v2" (v 2) r2
   | _ -> Alcotest.fail "reads did not complete")

let () =
  Alcotest.run "blackbox"
    [
      ( "definition-5",
        [
          Alcotest.test_case "adaptive" `Quick test_adaptive_blackbox;
          Alcotest.test_case "pure-ec" `Quick test_pure_ec_blackbox;
          Alcotest.test_case "safe" `Quick test_safe_blackbox;
          Alcotest.test_case "abd" `Quick test_abd_blackbox;
          Alcotest.test_case "random schedule shape" `Quick test_random_schedule_shape;
          Alcotest.test_case "reads track substitution" `Quick
            test_reads_track_substitution;
        ] );
    ]
