(* The same sites as hashtbl_order_bad.ml, each silenced by a pragma. *)

(* sb-lint: allow hashtbl-order — fixture: collected then sorted by the caller *)
let keys t = Hashtbl.fold (fun k _ acc -> k :: acc) t []

(* sb-lint: allow hashtbl-order — fixture: debug dump, order irrelevant *)
let dump t = Hashtbl.iter (fun k v -> Printf.printf "%s=%d\n" k v) t
