(* Negative control for the poly-compare rule: bare polymorphic compare,
   polymorphic hashing, and (=) on a value annotated with a watched
   protocol type.  Never compiled — only parsed by the lint. *)

let sorted xs = List.sort compare xs
let bucket x = Hashtbl.hash x
let same (a : Timestamp.t) (b : Timestamp.t) = a = b
let changed (d : Rmwdesc.t) (d' : Rmwdesc.t) = d <> d'
