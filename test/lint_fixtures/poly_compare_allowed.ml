(* The same sites as poly_compare_bad.ml, each silenced by a pragma. *)

(* sb-lint: allow poly-compare — fixture: ints only at every call site *)
let sorted xs = List.sort compare xs

(* sb-lint: allow poly-compare — fixture: scratch table, never persisted *)
let bucket x = Hashtbl.hash x

(* sb-lint: allow poly-compare — fixture: structural equality is the definition *)
let same (a : Timestamp.t) (b : Timestamp.t) = a = b

(* sb-lint: allow poly-compare — fixture: structural equality is the definition *)
let changed (d : Rmwdesc.t) (d' : Rmwdesc.t) = d <> d'
