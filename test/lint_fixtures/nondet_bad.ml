(* Negative control for the nondet rule: process-global randomness and
   wall-clock reads in what pretends to be protocol code.  Never
   compiled — only parsed by the lint. *)

let seed () = Random.self_init ()
let pick n = Random.int n
let now () = Unix.gettimeofday ()
let cpu () = Sys.time ()
