(* Negative control for the wire-catchall rule: catch-all [_] arms in
   matches on wire discriminants.  Never compiled — only parsed by the
   lint. *)

let decode_body tag buf =
  match tag with
  | 1 -> `Hello buf
  | 2 -> `Welcome buf
  | _ -> `Hello buf (* silently absorbs unknown tags: next bump misdecodes *)

let check_version version =
  match version with 1 -> `V1 | 2 -> `V2 | _ -> `V2
