(* Negative control for the hashtbl-order rule: iteration-order-sensitive
   accumulation.  Never compiled — only parsed by the lint. *)

let keys t = Hashtbl.fold (fun k _ acc -> k :: acc) t []
let dump t = Hashtbl.iter (fun k v -> Printf.printf "%s=%d\n" k v) t
