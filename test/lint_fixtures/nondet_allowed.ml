(* The same sites as nondet_bad.ml, each silenced by a pragma: the lint
   must report them as allowed, not active. *)

(* sb-lint: allow nondet — fixture: pretend this is an I/O engine *)
let seed () = Random.self_init ()

(* sb-lint: allow nondet — fixture: pretend this is an I/O engine *)
let pick n = Random.int n

let now () =
  (* sb-lint: allow nondet — fixture: wall clock feeds a log line only *)
  Unix.gettimeofday ()

let cpu () =
  (* sb-lint: allow nondet — fixture: wall clock feeds a log line only *)
  Sys.time ()
