(* The same sites as wire_catchall_bad.ml, each silenced by a pragma. *)

let decode_body tag buf =
  match tag with
  | 1 -> `Hello buf
  | 2 -> `Welcome buf
  (* sb-lint: allow wire-catchall — fixture: caller re-checks the tag range *)
  | _ -> `Hello buf

let check_version version =
  (* sb-lint: allow wire-catchall — fixture: version pre-validated by the reader *)
  match version with 1 -> `V1 | 2 -> `V2 | _ -> `V2
