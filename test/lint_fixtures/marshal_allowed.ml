(* The same sites as marshal_bad.ml, each silenced by a pragma. *)

(* sb-lint: allow marshal — fixture: pretend this is the paranoid cross-check *)
let digest v = Digest.string (Marshal.to_string v [])

(* sb-lint: allow marshal — fixture: pretend this is the paranoid cross-check *)
let save oc v = Marshal.to_channel oc v []
