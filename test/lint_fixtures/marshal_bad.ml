(* Negative control for the marshal rule: a representation-dependent
   digest outside the paranoid-key path.  Never compiled — only parsed
   by the lint. *)

let digest v = Digest.string (Marshal.to_string v [])
let save oc v = Marshal.to_channel oc v []
