(* Tests for the register service: wire codec round-trips, shared
   server core semantics, live daemon clusters (forked), and the
   simulator-vs-socket protocol parity the Rmwdesc layer guarantees. *)

module R = Sb_sim.Runtime
module D = Sb_sim.Rmwdesc
module Trace = Sb_sim.Trace
module Wire = Sb_service.Wire
module Daemon = Sb_service.Daemon
module Sdk = Sb_service.Sdk
module Score = Sb_service.Server_core
module Block = Sb_storage.Block
module Chunk = Sb_storage.Chunk
module Timestamp = Sb_storage.Timestamp
module Objstate = Sb_storage.Objstate
module Common = Sb_registers.Common
module Codec = Sb_codec.Codec
module Gen = QCheck2.Gen

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)
(* ------------------------------------------------------------------ *)

let gen_payload = Gen.(string_size (int_bound 24) >|= Bytes.of_string)

let gen_block =
  Gen.map3
    (fun source index data -> Block.v ~source ~index data)
    Gen.(int_bound 1000)
    Gen.(int_bound 40)
    gen_payload

let gen_ts =
  Gen.map2
    (fun num client -> Timestamp.make ~num ~client)
    Gen.(int_bound 10_000)
    Gen.(int_bound 64)

let gen_chunk = Gen.map2 (fun ts b -> Chunk.v ~ts b) gen_ts gen_block

let gen_objstate =
  Gen.map2
    (fun vp vf -> Objstate.init ~vp ~vf ())
    Gen.(list_size (int_bound 4) gen_chunk)
    Gen.(list_size (int_bound 4) gen_chunk)

let gen_eviction = Gen.oneofl [ D.Barrier; D.Own_ts ]

let gen_trim =
  Gen.oneof
    [ Gen.return D.Keep_all; Gen.map (fun d -> D.Keep_newest d) (Gen.int_bound 5) ]

let gen_desc =
  Gen.oneof
    [
      Gen.return D.Snapshot;
      Gen.map (fun c -> D.Abd_store c) gen_chunk;
      Gen.map (fun c -> D.Lww_store c) gen_chunk;
      Gen.map (fun c -> D.Safe_update c) gen_chunk;
      Gen.map2
        (fun (replicate, eviction, trim, k) (piece, replica_pieces, ts, stored_ts) ->
          D.Adaptive_update
            { replicate; eviction; trim; k; piece; replica_pieces; ts; stored_ts })
        (Gen.quad Gen.bool gen_eviction gen_trim Gen.(1 -- 6))
        (Gen.quad gen_block Gen.(list_size (int_bound 3) gen_block) gen_ts gen_ts);
      Gen.map2 (fun piece ts -> D.Adaptive_gc { piece; ts }) gen_block gen_ts;
      Gen.map3
        (fun pieces ts stored_ts -> D.Rateless_update { pieces; ts; stored_ts })
        Gen.(list_size (int_bound 4) gen_block)
        gen_ts gen_ts;
      Gen.map2
        (fun pieces ts -> D.Rateless_gc { pieces; ts })
        Gen.(list_size (int_bound 4) gen_block)
        gen_ts;
    ]

let gen_nature : Wire.nature Gen.t =
  Gen.oneofl [ `Mutating; `Readonly; `Merge ]

let gen_resp =
  Gen.oneof
    [ Gen.return D.Ack; Gen.map (fun st -> D.Snap st) gen_objstate ]

let gen_peer_schema =
  Gen.map2
    (fun ps_version hash -> { Wire.ps_version; ps_hash = hash })
    Gen.(1 -- 5)
    Gen.(string_size (return 16))

(* Keys skew towards "" (the pre-sharding register) and the loadgen's
   dense k-names, with a tail of arbitrary bytes. *)
let gen_key =
  Gen.oneof
    [
      Gen.return "";
      Gen.map (Printf.sprintf "k%05d") Gen.(int_bound 999);
      Gen.(string_size (1 -- 8));
    ]

let gen_request =
  Gen.map3
    (fun (rq_client, rq_ticket, rq_op) (rq_nature, rq_key) (rq_payload, rq_desc) ->
      { Wire.rq_key; rq_client; rq_ticket; rq_op; rq_nature; rq_payload;
        rq_desc })
    (Gen.triple Gen.(int_bound 100) Gen.(int_bound 100_000) Gen.(int_bound 10_000))
    (Gen.pair gen_nature gen_key)
    (Gen.pair Gen.(list_size (int_bound 3) gen_block) gen_desc)

let gen_response =
  Gen.map3
    (fun (rs_ticket, rs_op, rs_server) (rs_incarnation, rs_dedup, rs_key) rs_resp ->
      { Wire.rs_key; rs_ticket; rs_op; rs_server; rs_incarnation; rs_dedup;
        rs_resp })
    (Gen.triple Gen.(int_bound 100_000) Gen.(int_bound 10_000) Gen.(int_bound 20))
    (Gen.triple Gen.(1 -- 50) Gen.bool gen_key)
    gen_resp

let gen_shard_stat =
  Gen.map3
    (fun (ss_shard, ss_incarnation) (ss_keys, ss_storage_bits)
         (ss_max_bits, ss_max_key_bits) ->
      { Wire.ss_shard; ss_incarnation; ss_keys; ss_storage_bits; ss_max_bits;
        ss_max_key_bits })
    (Gen.pair Gen.(int_bound 16) Gen.(1 -- 50))
    (Gen.pair Gen.(int_bound 1000) Gen.(int_bound 1_000_000))
    (Gen.pair Gen.(int_bound 1_000_000) Gen.(int_bound 1_000_000))

let gen_msg =
  Gen.oneof
    [
      Gen.map2
        (fun client schema -> Wire.Hello { client; schema })
        Gen.(int_bound 100)
        (Gen.option gen_peer_schema);
      Gen.map3
        (fun server incarnation schema ->
          Wire.Welcome { server; incarnation; schema })
        Gen.(int_bound 20)
        Gen.(1 -- 50)
        (Gen.option gen_peer_schema);
      Gen.map2
        (fun rj_code rj_detail -> Wire.Reject { rj_code; rj_detail })
        (Gen.oneofl [ Wire.Unsupported_version; Wire.Incompatible_schema ])
        Gen.(string_size (int_bound 40));
      Gen.map (fun rq -> Wire.Request rq) gen_request;
      Gen.map (fun rs -> Wire.Response rs) gen_response;
      Gen.map (fun rqs -> Wire.Req_batch rqs)
        Gen.(list_size (int_bound 5) gen_request);
      Gen.map (fun rss -> Wire.Resp_batch rss)
        Gen.(list_size (int_bound 5) gen_response);
      Gen.return Wire.Stats_query;
      Gen.map3
        (fun (st_server, st_incarnation) (st_storage_bits, st_max_bits)
             ((st_dedup_hits, st_applied), (st_keys, st_shards)) ->
          Wire.Stats
            { st_server; st_incarnation; st_storage_bits; st_max_bits;
              st_dedup_hits; st_applied; st_keys; st_shards })
        (Gen.pair Gen.(int_bound 20) Gen.(1 -- 50))
        (Gen.pair Gen.(int_bound 1_000_000) Gen.(int_bound 1_000_000))
        (Gen.pair
           (Gen.pair Gen.(int_bound 1000) Gen.(int_bound 100_000))
           (Gen.pair Gen.(int_bound 5000)
              Gen.(list_size (int_bound 4) gen_shard_stat)));
    ]

(* ------------------------------------------------------------------ *)
(* Wire codec                                                          *)
(* ------------------------------------------------------------------ *)

let body_of_frame frame = Bytes.sub frame 4 (Bytes.length frame - 4)

let test_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:300 ~name:"encode/decode round-trips" gen_msg
       (fun msg ->
         match Wire.decode_msg (body_of_frame (Wire.encode_msg msg)) with
         | Ok msg' -> Wire.equal_msg msg msg'
         | Error e -> QCheck2.Test.fail_reportf "decode failed: %s" e))

let test_reader_chunking =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:100
       ~name:"incremental reader reassembles arbitrarily chunked streams"
       Gen.(pair (list_size (1 -- 5) gen_msg) (int_range 1 13))
       (fun (msgs, chunk) ->
         let stream =
           Bytes.concat Bytes.empty (List.map (fun m -> Wire.encode_msg m) msgs)
         in
         let reader = Wire.Reader.create () in
         let got = ref [] in
         let n = Bytes.length stream in
         let rec drain () =
           match Wire.Reader.next reader with
           | Ok (Some m) ->
             got := m :: !got;
             drain ()
           | Ok None -> ()
           | Error e -> QCheck2.Test.fail_reportf "reader error: %s" e
         in
         let off = ref 0 in
         while !off < n do
           let len = min chunk (n - !off) in
           Wire.Reader.feed reader stream !off len;
           drain ();
           off := !off + len
         done;
         List.length !got = List.length msgs
         && List.for_all2 Wire.equal_msg msgs (List.rev !got)))

(* Whether [encode_msg ~version:v] accepts the message at all:
   [Reject] is v2+; batch containers and keyed request/response
   traffic are v3+ (the writer raises rather than silently dropping a
   key). *)
let encodable_at ~v = function
  | Wire.Reject _ -> v >= 2
  | Wire.Req_batch _ | Wire.Resp_batch _ -> v >= 3
  | Wire.Request { rq_key; _ } -> v >= 3 || rq_key = ""
  | Wire.Response { rs_key; _ } -> v >= 3 || rs_key = ""
  | _ -> true

(* What a v1 frame can carry: the handshake schema fields are dropped
   (a v1 peer could not read them), as is the v3 per-shard stats
   aggregation tail. *)
let project_v1 = function
  | Wire.Hello { client; _ } -> Wire.Hello { client; schema = None }
  | Wire.Welcome { server; incarnation; _ } ->
    Wire.Welcome { server; incarnation; schema = None }
  | Wire.Stats st -> Wire.Stats { st with st_keys = 0; st_shards = [] }
  | m -> m

let test_roundtrip_v1 =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:300
       ~name:"v1 encoding round-trips to the v1 projection" gen_msg
       (fun msg ->
         if not (encodable_at ~v:1 msg) then true
         else
           match
             Wire.decode_msg (body_of_frame (Wire.encode_msg ~version:1 msg))
           with
           | Ok msg' -> Wire.equal_msg (project_v1 msg) msg'
           | Error e -> QCheck2.Test.fail_reportf "v1 decode failed: %s" e))

(* The partial-delivery fuzz: arbitrary chunkings of a valid stream
   with an optional adversarial twist (truncated tail or one corrupted
   byte) must always produce decode / need-more / clean error — never
   an exception.  This is the test that caught [Block.v] raising
   [Invalid_argument] on negative coordinates from hostile frames. *)
let test_reader_adversarial =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:300
       ~name:"reader survives truncation/corruption under any chunking"
       Gen.(
         quad
           (list_size (1 -- 4) gen_msg)
           (list_size (1 -- 30) (1 -- 7))
           (oneofl [ `Intact; `Truncate; `Corrupt ])
           (pair (int_bound 10_000) (int_bound 255)))
       (fun (msgs, chunks, twist, (pos_seed, byte)) ->
         let stream =
           Bytes.concat Bytes.empty (List.map (fun m -> Wire.encode_msg m) msgs)
         in
         let stream =
           match twist with
           | `Intact -> stream
           | `Truncate ->
             Bytes.sub stream 0 (pos_seed mod max 1 (Bytes.length stream))
           | `Corrupt ->
             let b = Bytes.copy stream in
             if Bytes.length b > 0 then
               Bytes.set b (pos_seed mod Bytes.length b) (Char.chr byte);
             b
         in
         let reader = Wire.Reader.create () in
         let decoded = ref 0 in
         let failed = ref false in
         let rec drain () =
           if not !failed then
             match Wire.Reader.next reader with
             | Ok (Some _) ->
               incr decoded;
               drain ()
             | Ok None -> ()
             | Error _ -> failed := true
         in
         (try
            let n = Bytes.length stream in
            let off = ref 0 in
            let cs = ref chunks in
            while !off < n && not !failed do
              let c = match !cs with c :: rest -> cs := rest; c | [] -> 1 in
              let len = min c (n - !off) in
              Wire.Reader.feed reader stream !off len;
              drain ();
              off := !off + len
            done
          with e ->
            QCheck2.Test.fail_reportf "reader raised: %s"
              (Printexc.to_string e));
         match twist with
         | `Intact -> (not !failed) && !decoded = List.length msgs
         | `Truncate | `Corrupt -> true))

let test_desc_semantic_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:300
       ~name:"a decoded description applies identically to the original"
       Gen.(pair gen_desc gen_objstate)
       (fun (desc, st) ->
         let frame =
           Wire.encode_msg
             (Wire.Request
                {
                  rq_key = ""; rq_client = 1; rq_ticket = 1; rq_op = 1;
                  rq_nature = D.default_nature desc;
                  rq_payload = []; rq_desc = desc;
                })
         in
         match Wire.decode_msg (body_of_frame frame) with
         | Ok (Wire.Request { rq_desc; _ }) ->
           D.equal desc rq_desc && D.apply desc st = D.apply rq_desc st
         | Ok _ -> false
         | Error e -> QCheck2.Test.fail_reportf "decode failed: %s" e))

(* The batch container preserves each keyed description exactly, in
   list order: applying every decoded desc to a state must equal
   applying the originals — the property the daemon's apply-in-order
   batch loop rests on. *)
let test_batch_apply_equivalence =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:200
       ~name:"a decoded batch applies identically, per keyed desc, in order"
       Gen.(pair (list_size (1 -- 6) gen_request) gen_objstate)
       (fun (reqs, st) ->
         let frame = Wire.encode_msg (Wire.Req_batch reqs) in
         match Wire.decode_msg (body_of_frame frame) with
         | Ok (Wire.Req_batch reqs') ->
           List.length reqs = List.length reqs'
           && List.for_all2
                (fun a b ->
                  String.equal a.Wire.rq_key b.Wire.rq_key
                  && a.Wire.rq_ticket = b.Wire.rq_ticket
                  && a.Wire.rq_client = b.Wire.rq_client
                  && D.equal a.Wire.rq_desc b.Wire.rq_desc
                  && D.apply a.Wire.rq_desc st = D.apply b.Wire.rq_desc st)
                reqs reqs'
         | Ok _ -> false
         | Error e -> QCheck2.Test.fail_reportf "decode failed: %s" e))

let test_malformed () =
  (* A truncated body and a bad version must both fail cleanly. *)
  let frame = Wire.encode_msg Wire.Stats_query in
  let body = body_of_frame frame in
  (match Wire.decode_msg (Bytes.sub body 0 (Bytes.length body - 1)) with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "truncated body decoded");
  let bad = Bytes.copy body in
  Bytes.set bad 0 '\xee';
  (match Wire.decode_msg bad with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "wrong version decoded");
  (* An oversized frame length must be rejected by the reader. *)
  let huge = Bytes.create 4 in
  Bytes.set_int32_be huge 0 0x7fff_ffffl;
  let reader = Wire.Reader.create () in
  Wire.Reader.feed reader huge 0 4;
  match Wire.Reader.next reader with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "oversized frame accepted"

let test_persisted_roundtrip () =
  let st =
    Objstate.init
      ~vp:[ Chunk.v ~ts:(Timestamp.make ~num:3 ~client:1) (Block.v ~source:3 ~index:2 (Bytes.of_string "pq")) ]
      ~vf:[ Chunk.v ~ts:(Timestamp.make ~num:2 ~client:0) (Block.v ~source:2 ~index:0 (Bytes.of_string "ab")) ]
      ()
  in
  let p = { Wire.p_incarnation = 7; p_state = st; p_keyed = [] } in
  (match Wire.decode_persisted (body_of_frame (Wire.encode_persisted p)) with
   | Ok p' ->
     Alcotest.(check int) "incarnation" 7 p'.Wire.p_incarnation;
     Alcotest.(check bool) "state" true (p'.Wire.p_state = st)
   | Error e -> Alcotest.failf "decode_persisted: %s" e);
  (* A sharded state file carries its keyed registers too. *)
  let keyed = [ ("k00001", st); ("k00007", Objstate.init ()) ] in
  let pk = { Wire.p_incarnation = 3; p_state = st; p_keyed = keyed } in
  match Wire.decode_persisted (body_of_frame (Wire.encode_persisted pk)) with
  | Ok p' ->
    Alcotest.(check bool) "keyed entries survive" true (p'.Wire.p_keyed = keyed)
  | Error e -> Alcotest.failf "decode_persisted keyed: %s" e

(* ------------------------------------------------------------------ *)
(* Server core                                                         *)
(* ------------------------------------------------------------------ *)

let chunk ~num ~client s =
  Chunk.v ~ts:(Timestamp.make ~num ~client) (Block.v ~source:num ~index:0 (Bytes.of_string s))

let test_server_core_dedup () =
  let t = Score.create (Objstate.init ()) in
  let d = D.Abd_store (chunk ~num:1 ~client:0 "x") in
  let o1 = Score.handle t ~client:3 ~ticket:9 ~nature:`Merge (D.apply d) in
  Alcotest.(check bool) "first applies" false o1.Score.dedup_hit;
  let o2 = Score.handle t ~client:3 ~ticket:9 ~nature:`Merge (D.apply d) in
  Alcotest.(check bool) "duplicate replayed" true o2.Score.dedup_hit;
  Alcotest.(check bool) "same response" true (o1.Score.resp = o2.Score.resp);
  Alcotest.(check int) "applied once" 1 (Score.applied_count t);
  (* Read-only RMWs are never recorded. *)
  let r1 = Score.handle t ~client:3 ~ticket:10 ~nature:`Readonly (D.apply D.Snapshot) in
  let r2 = Score.handle t ~client:3 ~ticket:10 ~nature:`Readonly (D.apply D.Snapshot) in
  Alcotest.(check bool) "readonly not deduped" false (r1.Score.dedup_hit || r2.Score.dedup_hit);
  (* A crash loses the table; recovery bumps the incarnation. *)
  Score.crash t;
  Score.recover t;
  Alcotest.(check int) "incarnation bumped" 2 (Score.incarnation t);
  let o3 = Score.handle t ~client:3 ~ticket:9 ~nature:`Merge (D.apply d) in
  Alcotest.(check bool) "table volatile across crash" false o3.Score.dedup_hit

(* ------------------------------------------------------------------ *)
(* Live clusters (forked daemon process)                               *)
(* ------------------------------------------------------------------ *)

let dir_counter = ref 0

let fresh_dir prefix =
  incr dir_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "%s-%d-%d" prefix (Unix.getpid ()) !dir_counter)
  in
  (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  d

let with_cluster ?statedir ?wire_version ~algorithm ~n fn =
  let sockdir = fresh_dir "sb-sock" in
  let pid = Unix.fork () in
  if pid = 0 then begin
    (try
       Daemon.run ?statedir ?wire_version ~sockdir ~servers:(List.init n Fun.id)
         ~init_obj:algorithm.R.init_obj ()
     with _ -> ());
    Unix._exit 0
  end
  else
    Fun.protect
      ~finally:(fun () ->
        (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
        try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
      (fun () ->
        let deadline = Unix.gettimeofday () +. 10.0 in
        let rec wait_up () =
          if
            List.for_all
              (fun i -> Sys.file_exists (Daemon.sockpath ~sockdir i))
              (List.init n Fun.id)
          then ()
          else if Unix.gettimeofday () > deadline then
            failwith "cluster did not come up"
          else begin
            Unix.sleepf 0.02;
            wait_up ()
          end
        in
        wait_up ();
        fn sockdir)

let adaptive_setup ~value_bytes ~f ~k =
  let n = (2 * f) + k in
  let cfg = { Common.n; f; codec = Codec.rs_vandermonde ~value_bytes ~k ~n } in
  (Sb_registers.Adaptive.make cfg, cfg)

let is_ok = function Sb_spec.Regularity.Ok -> true | _ -> false

let test_cluster_workload () =
  let value_bytes = 32 in
  let algorithm, cfg = adaptive_setup ~value_bytes ~f:1 ~k:1 in
  with_cluster ~algorithm ~n:cfg.Common.n (fun sockdir ->
      let workload =
        Sb_experiments.Workloads.writers_and_readers ~value_bytes ~writers:2
          ~writes_each:3 ~readers:1 ~reads_each:3
      in
      let r =
        Sdk.run_workload ~algorithm ~seed:5 ~workload
          (Sdk.default_config ~n:cfg.Common.n ~f:cfg.Common.f ~sockdir)
      in
      Alcotest.(check bool) "not timed out" false r.Sdk.timed_out;
      Alcotest.(check int) "all ops completed" r.Sdk.ops_invoked r.Sdk.ops_completed;
      let history =
        Sb_spec.History.of_trace ~initial:(Common.initial_value cfg) r.Sdk.trace
      in
      Alcotest.(check bool) "weakly regular" true
        (is_ok (Sb_spec.Regularity.check_weak history));
      Alcotest.(check bool) "strongly regular" true
        (is_ok (Sb_spec.Regularity.check_strong history));
      (* The live stats endpoint answers for every server, and at
         quiescence the cluster stores (2f+k) pieces of D/k bits. *)
      let stats = Sdk.fetch_stats ~sockdir ~servers:(List.init cfg.Common.n Fun.id) () in
      Alcotest.(check int) "all servers report stats" cfg.Common.n (List.length stats);
      let total =
        List.fold_left (fun acc st -> acc + st.Wire.st_storage_bits) 0 stats
      in
      (* k = 1: each of the 2f+k servers keeps one D-bit piece. *)
      let floor_bits = cfg.Common.n * 8 * value_bytes in
      Alcotest.(check bool)
        (Printf.sprintf "quiescent storage %d <= floor %d" total floor_bits)
        true (total <= floor_bits))

(* The tentpole property: the very same seeded workload, run through
   the message-passing simulator and through the socket transport,
   triggers the identical sequence of RMW descriptions — the protocol
   decisions cannot diverge between the simulated and the real
   service. *)
let test_sim_socket_parity () =
  let value_bytes = 32 in
  let algorithm, cfg = adaptive_setup ~value_bytes ~f:1 ~k:1 in
  let mk_workload () =
    [|
      [
        Trace.Write (Sb_experiments.Workloads.distinct_value ~value_bytes 1);
        Trace.Read;
        Trace.Write (Sb_experiments.Workloads.distinct_value ~value_bytes 2);
        Trace.Read;
        Trace.Write (Sb_experiments.Workloads.distinct_value ~value_bytes 3);
      ];
    |]
  in
  let seed = 42 in
  (* Simulator side: collect the descriptions as the fifo world emits
     them. *)
  let sim_descs = ref [] in
  let w =
    Sb_msgnet.Mp_runtime.create ~seed ~fifo:true ~algorithm ~n:cfg.Common.n
      ~f:cfg.Common.f ~workload:(mk_workload ()) ()
  in
  Sb_msgnet.Mp_runtime.add_observer w (fun ev ->
      match ev with
      | R.E_trigger { desc = Some d; _ } -> sim_descs := d :: !sim_descs
      | _ -> ());
  let oc = Sb_msgnet.Mp_runtime.run w (Sb_msgnet.Mp_runtime.fifo_policy ()) in
  Alcotest.(check bool) "simulator run finished" true
    oc.Sb_msgnet.Mp_runtime.quiescent;
  let sim_descs = List.rev !sim_descs in
  (* Socket side: the same seed against a live cluster. *)
  with_cluster ~algorithm ~n:cfg.Common.n (fun sockdir ->
      let r =
        Sdk.run_workload ~algorithm ~seed ~workload:(mk_workload ())
          (Sdk.default_config ~n:cfg.Common.n ~f:cfg.Common.f ~sockdir)
      in
      Alcotest.(check int) "all ops completed" r.Sdk.ops_invoked r.Sdk.ops_completed;
      Alcotest.(check int) "same number of protocol decisions"
        (List.length sim_descs)
        (List.length r.Sdk.desc_log);
      List.iteri
        (fun i (a, b) ->
          if not (D.equal a b) then
            Alcotest.failf "decision %d diverges: sim %a vs socket %a" i D.pp a
              D.pp b)
        (List.combine sim_descs r.Sdk.desc_log))

let test_restart_recovers_incarnation () =
  let value_bytes = 32 in
  let algorithm, cfg = adaptive_setup ~value_bytes ~f:1 ~k:1 in
  let statedir = fresh_dir "sb-state" in
  let value = Sb_experiments.Workloads.distinct_value ~value_bytes 1 in
  with_cluster ~statedir ~algorithm ~n:cfg.Common.n (fun sockdir ->
      let r =
        Sdk.run_workload ~algorithm ~seed:3 ~workload:[| [ Trace.Write value ] |]
          (Sdk.default_config ~n:cfg.Common.n ~f:cfg.Common.f ~sockdir)
      in
      Alcotest.(check int) "write completed" 1 r.Sdk.ops_completed);
  (* Second boot over the persisted state: a fresh incarnation, and the
     stored value survives the restart. *)
  with_cluster ~statedir ~algorithm ~n:cfg.Common.n (fun sockdir ->
      let stats = Sdk.fetch_stats ~sockdir ~servers:(List.init cfg.Common.n Fun.id) () in
      Alcotest.(check int) "all servers back" cfg.Common.n (List.length stats);
      List.iter
        (fun st ->
          Alcotest.(check int)
            (Printf.sprintf "server %d incarnation" st.Wire.st_server)
            2 st.Wire.st_incarnation)
        stats;
      let r =
        Sdk.run_workload ~algorithm ~seed:4 ~workload:[| [ Trace.Read ] |]
          (Sdk.default_config ~n:cfg.Common.n ~f:cfg.Common.f ~sockdir)
      in
      Alcotest.(check int) "read completed" 1 r.Sdk.ops_completed;
      let results =
        List.filter_map
          (fun (_, kind, _, ret, res) ->
            match (kind, ret) with Trace.Read, Some _ -> Some res | _ -> None)
          (Trace.operations r.Sdk.trace)
      in
      Alcotest.(check (list (option bytes))) "value survived the restart"
        [ Some value ] results)

let test_wire_dedup_replay () =
  let algorithm, cfg = adaptive_setup ~value_bytes:32 ~f:1 ~k:1 in
  with_cluster ~algorithm ~n:cfg.Common.n (fun sockdir ->
      (* Raw frame exchange on server 0: a duplicated mutating request
         is answered from the at-most-once table, not re-applied. *)
      let fd = Unix.(socket PF_UNIX SOCK_STREAM 0) in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          Unix.connect fd (Unix.ADDR_UNIX (Daemon.sockpath ~sockdir 0));
          let reader = Wire.Reader.create () in
          let buf = Bytes.create 4096 in
          let rpc msg =
            let frame = Wire.encode_msg msg in
            ignore (Unix.write fd frame 0 (Bytes.length frame));
            let rec loop () =
              match Wire.Reader.next reader with
              | Ok (Some m) -> m
              | Ok None ->
                let k = Unix.read fd buf 0 (Bytes.length buf) in
                if k = 0 then failwith "eof from server";
                Wire.Reader.feed reader buf 0 k;
                loop ()
              | Error e -> failwith e
            in
            loop ()
          in
          let own =
            { Wire.ps_version = Wire.version; ps_hash = Wire.schema_hash }
          in
          (match rpc (Wire.Hello { client = 9; schema = Some own }) with
           | Wire.Welcome { server = 0; incarnation = 1; schema = Some got }
             when got.Wire.ps_hash = Wire.schema_hash -> ()
           | m -> Alcotest.failf "unexpected hello reply: %a" Wire.pp_msg m);
          let req =
            Wire.Request
              {
                rq_key = ""; rq_client = 9; rq_ticket = 77; rq_op = 1;
                rq_nature = `Merge;
                rq_payload = [];
                rq_desc = D.Abd_store (chunk ~num:1 ~client:9 "dup");
              }
          in
          (match rpc req with
           | Wire.Response { rs_dedup = false; _ } -> ()
           | m -> Alcotest.failf "first send: %a" Wire.pp_msg m);
          (match rpc req with
           | Wire.Response { rs_dedup = true; _ } -> ()
           | m -> Alcotest.failf "duplicate: %a" Wire.pp_msg m);
          match rpc Wire.Stats_query with
          | Wire.Stats { st_dedup_hits = 1; st_applied = 1; _ } -> ()
          | m -> Alcotest.failf "stats: %a" Wire.pp_msg m))

(* A new client against an old (v1-pinned) cluster: every server closes
   the v2 Hello, the SDK falls back to v1 framing (one counted
   downgrade per server), and the workload then completes normally with
   no typed rejects. *)
let test_mixed_version_cluster () =
  let value_bytes = 32 in
  let algorithm, cfg = adaptive_setup ~value_bytes ~f:1 ~k:1 in
  with_cluster ~wire_version:1 ~algorithm ~n:cfg.Common.n (fun sockdir ->
      let workload =
        Sb_experiments.Workloads.writers_and_readers ~value_bytes ~writers:2
          ~writes_each:2 ~readers:1 ~reads_each:2
      in
      let r =
        Sdk.run_workload ~algorithm ~seed:11 ~workload
          (Sdk.default_config ~n:cfg.Common.n ~f:cfg.Common.f ~sockdir)
      in
      Alcotest.(check bool) "not timed out" false r.Sdk.timed_out;
      Alcotest.(check int) "all ops completed" r.Sdk.ops_invoked
        r.Sdk.ops_completed;
      Alcotest.(check int) "one downgrade per v1 server" cfg.Common.n
        r.Sdk.downgrades;
      Alcotest.(check int) "no typed rejects" 0
        (List.length r.Sdk.schema_rejects);
      let history =
        Sb_spec.History.of_trace ~initial:(Common.initial_value cfg) r.Sdk.trace
      in
      Alcotest.(check bool) "weakly regular across versions" true
        (is_ok (Sb_spec.Regularity.check_weak history)))

(* A peer claiming our schema version with a different layout hash is
   drifted: the daemon answers with a typed [Reject] instead of
   misdecoding its frames later. *)
let test_schema_hash_reject () =
  let algorithm, cfg = adaptive_setup ~value_bytes:32 ~f:1 ~k:1 in
  with_cluster ~algorithm ~n:cfg.Common.n (fun sockdir ->
      let fd = Unix.(socket PF_UNIX SOCK_STREAM 0) in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          Unix.connect fd (Unix.ADDR_UNIX (Daemon.sockpath ~sockdir 0));
          let bogus =
            { Wire.ps_version = Wire.version; ps_hash = String.make 16 'x' }
          in
          let frame =
            Wire.encode_msg (Wire.Hello { client = 1; schema = Some bogus })
          in
          ignore (Unix.write fd frame 0 (Bytes.length frame));
          let reader = Wire.Reader.create () in
          let buf = Bytes.create 4096 in
          let rec next () =
            match Wire.Reader.next reader with
            | Ok (Some m) -> m
            | Ok None ->
              let k = Unix.read fd buf 0 (Bytes.length buf) in
              if k = 0 then failwith "eof before reject";
              Wire.Reader.feed reader buf 0 k;
              next ()
            | Error e -> failwith e
          in
          (match next () with
           | Wire.Reject { rj_code = Wire.Incompatible_schema; rj_detail } ->
             Alcotest.(check bool) "detail names the mismatch" true
               (String.length rj_detail > 0)
           | m -> Alcotest.failf "expected a reject, got %a" Wire.pp_msg m);
          (* ... and the daemon closes after flushing the reject. *)
          let k = Unix.read fd buf 0 (Bytes.length buf) in
          Alcotest.(check int) "connection closed" 0 k))

(* ------------------------------------------------------------------ *)
(* Durable state under disk faults                                     *)
(* ------------------------------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc s)

(* Fuzz the recovery path: any truncation, bit-flip, emptying or
   garbage overwrite of a saved state file is reported as [Corrupt] —
   deterministically, and never by raising — while the pristine file
   still loads back equal. *)
let test_load_state_fuzz =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:150
       ~name:"load_state refuses any mutation, never raises"
       Gen.(quad gen_objstate (int_range 1 9) (int_bound 3) (int_bound 100_000))
       (fun (st, inc, kind, mseed) ->
         let dir = fresh_dir "sb-fuzz" in
         let file = Filename.concat dir "server-0.state" in
         Fun.protect
           ~finally:(fun () ->
             (try Sys.remove file with Sys_error _ -> ());
             try Unix.rmdir dir with Unix.Unix_error _ -> ())
           (fun () ->
             let p = { Wire.p_incarnation = inc; p_state = st; p_keyed = [] } in
             Daemon.save_state ~version:Wire.version file p;
             (match Daemon.load_state ~max_version:Wire.version file with
              | Daemon.Loaded p' when p' = p -> ()
              | _ -> QCheck2.Test.fail_report "pristine file did not load back");
             let body = read_file file in
             let len = String.length body in
             let mutated =
               match kind with
               | 0 -> String.sub body 0 (mseed mod len)
               | 1 ->
                 let b = Bytes.of_string body in
                 let bit = mseed mod (len * 8) in
                 Bytes.set b (bit / 8)
                   (Char.chr
                      (Char.code (Bytes.get b (bit / 8))
                      lxor (1 lsl (bit mod 8))));
                 Bytes.to_string b
               | 2 -> ""
               | _ ->
                 String.init
                   (1 + (mseed mod 64))
                   (fun i -> Char.chr ((mseed + (i * 37)) land 0xff))
             in
             if String.equal mutated body then true
             else begin
               write_file file mutated;
               let r1 = Daemon.load_state ~max_version:Wire.version file in
               let r2 = Daemon.load_state ~max_version:Wire.version file in
               match (r1, r2) with
               | Daemon.Corrupt a, Daemon.Corrupt b when String.equal a b ->
                 true
               | Daemon.Corrupt _, Daemon.Corrupt _ ->
                 QCheck2.Test.fail_report "corruption verdict not deterministic"
               | Daemon.Loaded _, _ ->
                 QCheck2.Test.fail_report "mutated state file loaded"
               | Daemon.Absent, _ ->
                 QCheck2.Test.fail_report "file exists but reported Absent"
               | _, (Daemon.Loaded _ | Daemon.Absent) ->
                 QCheck2.Test.fail_report "second load diverged from the first"
             end)))

(* A corrupt state file is quarantined at boot: the server rejoins
   fresh (incarnation 1 — not a recovery bump), the damaged bytes are
   preserved next to the state file, and the cluster keeps serving on
   the surviving quorum. *)
let test_corrupt_state_quarantined () =
  let value_bytes = 32 in
  let algorithm, cfg = adaptive_setup ~value_bytes ~f:1 ~k:1 in
  let statedir = fresh_dir "sb-state" in
  let value = Sb_experiments.Workloads.distinct_value ~value_bytes 1 in
  with_cluster ~statedir ~algorithm ~n:cfg.Common.n (fun sockdir ->
      let r =
        Sdk.run_workload ~algorithm ~seed:3 ~workload:[| [ Trace.Write value ] |]
          (Sdk.default_config ~n:cfg.Common.n ~f:cfg.Common.f ~sockdir)
      in
      Alcotest.(check int) "write completed" 1 r.Sdk.ops_completed);
  let file = Daemon.statefile ~statedir 0 in
  let body = Bytes.of_string (read_file file) in
  Bytes.set body 9 (Char.chr (Char.code (Bytes.get body 9) lxor 0x10));
  write_file file (Bytes.to_string body);
  with_cluster ~statedir ~algorithm ~n:cfg.Common.n (fun sockdir ->
      let stats =
        Sdk.fetch_stats ~sockdir ~servers:(List.init cfg.Common.n Fun.id) ()
      in
      Alcotest.(check int) "all servers up" cfg.Common.n (List.length stats);
      List.iter
        (fun st ->
          let expect = if st.Wire.st_server = 0 then 1 else 2 in
          Alcotest.(check int)
            (Printf.sprintf "server %d incarnation" st.Wire.st_server)
            expect st.Wire.st_incarnation)
        stats;
      Alcotest.(check bool) "damaged bytes quarantined" true
        (Sys.file_exists (Daemon.quarantine_path file));
      let r =
        Sdk.run_workload ~algorithm ~seed:4 ~workload:[| [ Trace.Read ] |]
          (Sdk.default_config ~n:cfg.Common.n ~f:cfg.Common.f ~sockdir)
      in
      Alcotest.(check int) "read completed over surviving quorum" 1
        r.Sdk.ops_completed)

(* ------------------------------------------------------------------ *)
(* Graceful degradation: typed failures instead of hangs               *)
(* ------------------------------------------------------------------ *)

(* Nothing is listening anywhere: with a bounded retransmission budget
   the operation is abandoned with a typed exhaustion failure — well
   before the run deadline — and every dial failure lands on the
   per-server health ledger. *)
let test_attempts_exhausted () =
  let algorithm, cfg = adaptive_setup ~value_bytes:32 ~f:1 ~k:1 in
  let sockdir = fresh_dir "sb-empty" in
  let base = Sdk.default_config ~n:cfg.Common.n ~f:cfg.Common.f ~sockdir in
  let sdk_cfg =
    { base with Sdk.rto_ms = 10; max_attempts = 2; deadline_ms = 10_000 }
  in
  let value = Sb_experiments.Workloads.distinct_value ~value_bytes:32 1 in
  let r =
    Sdk.run_workload ~algorithm ~seed:1 ~workload:[| [ Trace.Write value ] |]
      sdk_cfg
  in
  Alcotest.(check bool) "deadline did not strike" false r.Sdk.timed_out;
  Alcotest.(check int) "nothing completed" 0 r.Sdk.ops_completed;
  (match r.Sdk.failures with
   | [ { Sdk.fl_reason = Sdk.Attempts_exhausted n;
         fl_client = 0;
         fl_kind = Trace.Write _;
         _
       } ] ->
     Alcotest.(check bool)
       (Printf.sprintf "attempt count %d positive" n)
       true (n > 0)
   | fs -> Alcotest.failf "expected one exhaustion failure, got %d" (List.length fs));
  List.iter
    (fun h ->
      Alcotest.(check bool)
        (Printf.sprintf "server %d dial failures on the ledger" h.Sdk.sh_server)
        true
        (h.Sdk.sh_dial_failures > 0 && h.Sdk.sh_fail_streak > 0))
    r.Sdk.health

(* Same dead cluster but an unbounded retry budget: the run deadline
   converts the in-flight operation into a typed [Deadline_expired]
   failure rather than a silent hang. *)
let test_deadline_expired () =
  let algorithm, cfg = adaptive_setup ~value_bytes:32 ~f:1 ~k:1 in
  let sockdir = fresh_dir "sb-empty" in
  let base = Sdk.default_config ~n:cfg.Common.n ~f:cfg.Common.f ~sockdir in
  let sdk_cfg =
    { base with Sdk.rto_ms = 20; max_attempts = 0; deadline_ms = 400 }
  in
  let r =
    Sdk.run_workload ~algorithm ~seed:1 ~workload:[| [ Trace.Read ] |] sdk_cfg
  in
  Alcotest.(check bool) "run timed out" true r.Sdk.timed_out;
  Alcotest.(check int) "nothing completed" 0 r.Sdk.ops_completed;
  match r.Sdk.failures with
  | [ { Sdk.fl_reason = Sdk.Deadline_expired; fl_kind = Trace.Read; _ } ] -> ()
  | fs -> Alcotest.failf "expected one deadline failure, got %d" (List.length fs)

(* A SIGKILLed cluster restarted over the same state directory mid-run:
   the workload rides out the outage through reconnection, and each
   server's incarnation bump is observed exactly once, no matter how
   many reconnect attempts it took. *)
let test_restart_bump_counted_once () =
  let value_bytes = 32 in
  let algorithm, cfg = adaptive_setup ~value_bytes ~f:1 ~k:1 in
  let n = cfg.Common.n in
  let statedir = fresh_dir "sb-state" in
  let sockdir = fresh_dir "sb-sock" in
  let boot_daemons () =
    Daemon.run ~statedir ~sockdir ~servers:(List.init n Fun.id)
      ~init_obj:algorithm.R.init_obj ()
  in
  let pid1 = Unix.fork () in
  if pid1 = 0 then begin
    (try boot_daemons () with _ -> ());
    Unix._exit 0
  end;
  let deadline = Unix.gettimeofday () +. 10.0 in
  let rec wait_up () =
    if
      List.for_all
        (fun i -> Sys.file_exists (Daemon.sockpath ~sockdir i))
        (List.init n Fun.id)
    then ()
    else if Unix.gettimeofday () > deadline then failwith "cluster did not come up"
    else begin
      Unix.sleepf 0.02;
      wait_up ()
    end
  in
  wait_up ();
  (* A helper process kills the cluster mid-run and becomes the
     replacement over the same state directory. *)
  let killer = Unix.fork () in
  if killer = 0 then begin
    Unix.sleepf 0.3;
    (try Unix.kill pid1 Sys.sigkill with Unix.Unix_error _ -> ());
    Unix.sleepf 0.1;
    (try boot_daemons () with _ -> ());
    Unix._exit 0
  end;
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun pid ->
          (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
          try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
        [ pid1; killer ])
    (fun () ->
      let workload =
        Sb_experiments.Workloads.writers_and_readers ~value_bytes ~writers:2
          ~writes_each:10 ~readers:1 ~reads_each:10
      in
      let base = Sdk.default_config ~n ~f:cfg.Common.f ~sockdir in
      let sdk_cfg =
        { base with Sdk.rto_ms = 30; reconnect_ms = 20; think_ms = 50 }
      in
      let r = Sdk.run_workload ~algorithm ~seed:9 ~workload sdk_cfg in
      Alcotest.(check bool) "not timed out" false r.Sdk.timed_out;
      Alcotest.(check int) "all ops completed" r.Sdk.ops_invoked
        r.Sdk.ops_completed;
      Alcotest.(check bool)
        (Printf.sprintf "reconnected after the kill (%d)" r.Sdk.reconnects)
        true (r.Sdk.reconnects > 0);
      Alcotest.(check int) "each server's bump observed exactly once" n
        r.Sdk.recoveries_observed)

let () =
  Alcotest.run "service"
    [
      ( "wire",
        [
          test_roundtrip;
          test_roundtrip_v1;
          test_reader_chunking;
          test_reader_adversarial;
          test_desc_semantic_roundtrip;
          test_batch_apply_equivalence;
          Alcotest.test_case "malformed frames rejected" `Quick test_malformed;
          Alcotest.test_case "persisted state round-trips" `Quick
            test_persisted_roundtrip;
        ] );
      ( "durability",
        [
          test_load_state_fuzz;
          Alcotest.test_case "corrupt state quarantined at boot" `Quick
            test_corrupt_state_quarantined;
        ] );
      ( "degradation",
        [
          Alcotest.test_case "retry budget exhaustion is typed" `Quick
            test_attempts_exhausted;
          Alcotest.test_case "deadline expiry is typed" `Quick
            test_deadline_expired;
          Alcotest.test_case "restart bump observed exactly once" `Quick
            test_restart_bump_counted_once;
        ] );
      ( "server-core",
        [ Alcotest.test_case "at-most-once semantics" `Quick test_server_core_dedup ] );
      ( "cluster",
        [
          Alcotest.test_case "workload over sockets" `Quick test_cluster_workload;
          Alcotest.test_case "sim/socket protocol parity" `Quick
            test_sim_socket_parity;
          Alcotest.test_case "restart recovers into a fresh incarnation" `Quick
            test_restart_recovers_incarnation;
          Alcotest.test_case "wire-level duplicate is replayed" `Quick
            test_wire_dedup_replay;
          Alcotest.test_case "mixed-version cluster downgrades cleanly" `Quick
            test_mixed_version_cluster;
          Alcotest.test_case "drifted schema hash gets a typed reject" `Quick
            test_schema_hash_reject;
        ] );
    ]
