(* Tests for the fault plane: lossy/duplicating/partitioned networks,
   server crash-recovery with incarnation fencing, retransmission,
   at-most-once deduplication, the liveness watchdog, and the chaos
   campaign runner. *)

module MP = Sb_msgnet.Mp_runtime
module Trace = Sb_sim.Trace
module Common = Sb_registers.Common
module Codec = Sb_codec.Codec
module Plan = Sb_faults.Plan
module Inject = Sb_faults.Inject
module Chaos = Sb_faults.Chaos
module Monitor = Sb_sanitize.Monitor

let value_bytes = 32
let v i = Sb_util.Values.distinct ~value_bytes i
let v0 = Bytes.make value_bytes '\000'

let coded_cfg ~f ~k =
  let n = (2 * f) + k in
  { Common.n; f; codec = Codec.rs_vandermonde ~value_bytes ~k ~n }

let history w = Sb_spec.History.of_trace ~initial:v0 (MP.trace w)
let is_ok = function Sb_spec.Regularity.Ok -> true | _ -> false

let all_returned w =
  let ops = Trace.operations (MP.trace w) in
  ops <> []
  && List.for_all (fun (_, _, _, ret, _) -> ret <> None) ops

let retransmit = { MP.rto = 10; max_attempts = 0 }

(* ------------------------------------------------------------------ *)
(* Plan validation                                                     *)
(* ------------------------------------------------------------------ *)

let invalid f =
  try ignore (f ()); false with Invalid_argument _ -> true

let test_plan_validate () =
  Plan.validate ~n:4 ~f:1 (Plan.lossy ~duplicate:0.1 0.3);
  Alcotest.(check bool) "rate out of range" true
    (invalid (fun () -> Plan.validate ~n:4 ~f:1 (Plan.lossy 1.5)));
  Alcotest.(check bool) "rates must sum below 1" true
    (invalid (fun () ->
         Plan.validate ~n:4 ~f:1 (Plan.lossy ~duplicate:0.6 0.6)));
  Alcotest.(check bool) "unknown server in crash schedule" true
    (invalid (fun () ->
         Plan.validate ~n:4 ~f:1
           (Plan.crash_recovery ~server:9 ~crash_at:1 ~recover_at:2 Plan.none)));
  (* Two overlapping crashes under f = 1 exceed the concurrent budget;
     sequential crash/recovery pairs do not. *)
  let overlapping =
    Plan.none
    |> Plan.crash_recovery ~server:0 ~crash_at:10 ~recover_at:50
    |> Plan.crash_recovery ~server:1 ~crash_at:20 ~recover_at:60
  in
  Alcotest.(check bool) "overlapping crashes exceed f" true
    (invalid (fun () -> Plan.validate ~n:4 ~f:1 overlapping));
  Plan.validate ~n:4 ~f:2 overlapping;
  let sequential =
    Plan.none
    |> Plan.crash_recovery ~server:0 ~crash_at:10 ~recover_at:20
    |> Plan.crash_recovery ~server:1 ~crash_at:30 ~recover_at:40
  in
  Plan.validate ~n:4 ~f:1 sequential

let test_plan_isolation () =
  let p =
    Plan.partition ~name:"minority" ~servers:[ 0; 1 ] ~start:10 ~heal:20
      ~mode:Plan.Isolate_hold Plan.none
  in
  Alcotest.(check bool) "inactive before start" true
    (Plan.isolation p ~now:9 0 = None);
  Alcotest.(check bool) "active in window" true
    (Plan.isolation p ~now:10 1 = Some Plan.Isolate_hold);
  Alcotest.(check bool) "other servers unaffected" true
    (Plan.isolation p ~now:15 2 = None);
  Alcotest.(check bool) "healed" true (Plan.isolation p ~now:20 0 = None);
  Alcotest.(check int) "last heal" 20 (Plan.last_heal p)

(* ------------------------------------------------------------------ *)
(* Retransmission                                                      *)
(* ------------------------------------------------------------------ *)

let test_retransmission_liveness () =
  let cfg = coded_cfg ~f:1 ~k:2 in
  let algorithm = Sb_registers.Adaptive.make cfg in
  let w = MP.create ~retransmit ~algorithm ~n:cfg.n ~f:cfg.f
      ~workload:[| [ Trace.Write (v 1); Trace.Read ] |] () in
  ignore (MP.step w (MP.Step 0));
  (* The network loses the entire first broadcast. *)
  List.iter (fun (m : MP.message_info) -> ignore (MP.step w (MP.Drop_msg m.msg_id)))
    (MP.in_flight w);
  Alcotest.(check int) "channel empty" 0 (List.length (MP.in_flight w));
  Alcotest.(check int) "one pending timer per server" cfg.n
    (List.length (MP.pending_retransmits w));
  Alcotest.(check bool) "not quiescent while timers pend" false (MP.quiescent w);
  (* The random policy ticks to the deadlines, retransmits, and the run
     completes. *)
  let outcome = MP.run w (MP.random_policy ~seed:3 ()) in
  Alcotest.(check bool) "quiescent" true outcome.MP.quiescent;
  Alcotest.(check bool) "all ops returned" true (all_returned w);
  Alcotest.(check bool) "retransmissions happened" true
    ((MP.net_stats w).MP.retransmissions >= cfg.n);
  Alcotest.(check (list (option bytes))) "read sees the write" [ Some (v 1) ]
    (List.filter_map
       (fun (_, kind, _, ret, res) ->
         match (kind, ret) with Trace.Read, Some _ -> Some res | _ -> None)
       (Trace.operations (MP.trace w)))

let test_retransmit_needs_expiry () =
  let cfg = coded_cfg ~f:1 ~k:2 in
  let algorithm = Sb_registers.Adaptive.make cfg in
  let w = MP.create ~retransmit ~algorithm ~n:cfg.n ~f:cfg.f
      ~workload:[| [ Trace.Write (v 1) ] |] () in
  ignore (MP.step w (MP.Step 0));
  let ticket = List.hd (MP.pending_retransmits w) in
  Alcotest.(check bool) "deadline not reached yet" true
    (MP.due_retransmits w = []);
  Alcotest.(check bool) "early retransmit refused" true
    (invalid (fun () -> MP.step w (MP.Retransmit ticket)))

(* ------------------------------------------------------------------ *)
(* Incarnation fencing                                                 *)
(* ------------------------------------------------------------------ *)

let test_stale_response_fenced () =
  let cfg = coded_cfg ~f:1 ~k:2 in
  let algorithm = Sb_registers.Adaptive.make cfg in
  let w = MP.create ~retransmit ~algorithm ~n:cfg.n ~f:cfg.f
      ~workload:[| [ Trace.Write (v 1); Trace.Read ] |] () in
  ignore (MP.step w (MP.Step 0));
  (* Server 0 answers, then crashes and recovers while its response is
     still in flight: the response belongs to the old incarnation. *)
  let req0 =
    List.find (fun (m : MP.message_info) -> m.m_server = 0) (MP.deliverable w)
  in
  ignore (MP.step w (MP.Deliver_msg req0.MP.msg_id));
  let resp0 =
    List.find
      (fun (m : MP.message_info) -> m.kind = MP.Response && m.m_server = 0)
      (MP.in_flight w)
  in
  ignore (MP.step w (MP.Crash_server 0));
  ignore (MP.step w (MP.Recover_server 0));
  Alcotest.(check int) "incarnation bumped" 2 (MP.server_incarnation w 0);
  let before = (MP.net_stats w).MP.fenced in
  ignore (MP.step w (MP.Deliver_msg resp0.MP.msg_id));
  Alcotest.(check int) "stale response fenced" (before + 1)
    (MP.net_stats w).MP.fenced;
  (* Fencing costs liveness, not safety: retransmission reaches the new
     incarnation and the run still completes correctly. *)
  let outcome = MP.run w (MP.random_policy ~seed:7 ()) in
  Alcotest.(check bool) "quiescent" true outcome.MP.quiescent;
  Alcotest.(check bool) "all ops returned" true (all_returned w);
  Alcotest.(check bool) "strongly regular" true
    (is_ok (Sb_spec.Regularity.check_strong (history w)))

(* ------------------------------------------------------------------ *)
(* At-most-once deduplication                                          *)
(* ------------------------------------------------------------------ *)

(* Drive one writer to its round-2 update broadcast (the first
   non-readonly requests), returning the world. *)
let world_at_update_round ~dedup () =
  let cfg = coded_cfg ~f:1 ~k:2 in
  let algorithm = Sb_registers.Adaptive.make cfg in
  let w = MP.create ~dedup ~algorithm ~n:cfg.n ~f:cfg.f
      ~workload:[| [ Trace.Write (v 1) ] |] () in
  ignore (MP.step w (MP.Step 0));
  List.iter (fun (m : MP.message_info) -> ignore (MP.step w (MP.Deliver_msg m.msg_id)))
    (MP.deliverable w);
  List.iter (fun (m : MP.message_info) -> ignore (MP.step w (MP.Deliver_msg m.msg_id)))
    (MP.deliverable w);
  ignore (MP.step w (MP.Step 0));
  (cfg, w)

let test_duplicate_request_deduplicated () =
  let _, w = world_at_update_round ~dedup:true () in
  let m =
    List.find (fun (m : MP.message_info) -> m.kind = MP.Request) (MP.deliverable w)
  in
  let channel_bits = MP.storage_bits_channels w in
  ignore (MP.step w (MP.Duplicate_msg m.MP.msg_id));
  (* The clone carries the same payload: channel accounting inflates. *)
  Alcotest.(check int) "duplicate inflates channel bits"
    (channel_bits + m.MP.m_bits) (MP.storage_bits_channels w);
  Alcotest.(check int) "duplicated counted" 1 (MP.net_stats w).MP.duplicated;
  let copies =
    List.filter
      (fun (m' : MP.message_info) ->
        m'.kind = MP.Request && m'.m_ticket = m.MP.m_ticket)
      (MP.in_flight w)
  in
  Alcotest.(check int) "two copies in flight" 2 (List.length copies);
  (match copies with
  | [ first; second ] ->
    ignore (MP.step w (MP.Deliver_msg first.MP.msg_id));
    let after_first = MP.server_state w m.MP.m_server in
    ignore (MP.step w (MP.Deliver_msg second.MP.msg_id));
    Alcotest.(check bool) "object state applied exactly once" true
      (after_first = MP.server_state w m.MP.m_server)
  | _ -> Alcotest.fail "expected exactly two copies");
  Alcotest.(check int) "second application suppressed" 1
    (MP.net_stats w).MP.dedup_hits;
  (* Both deliveries answered: two responses for the ticket. *)
  Alcotest.(check int) "both copies answered" 2
    (List.length
       (List.filter
          (fun (m' : MP.message_info) ->
            m'.kind = MP.Response && m'.m_ticket = m.MP.m_ticket)
          (MP.in_flight w)))

(* Negative control: with the at-most-once table disabled, a duplicated
   update re-applies — the sanitizer's dedup monitor must object. *)
let test_dedup_monitor_fires_without_table () =
  let cfg = coded_cfg ~f:1 ~k:2 in
  let algorithm = Sb_registers.Adaptive.make cfg in
  let w = MP.create ~dedup:false ~algorithm ~n:cfg.n ~f:cfg.f
      ~workload:[| [ Trace.Write (v 1) ] |] () in
  let monitor =
    Monitor.attach_mp (Monitor.config ~mode:Monitor.Collect ~k:2 ()) w
  in
  ignore (MP.step w (MP.Step 0));
  List.iter (fun (m : MP.message_info) -> ignore (MP.step w (MP.Deliver_msg m.msg_id)))
    (MP.deliverable w);
  List.iter (fun (m : MP.message_info) -> ignore (MP.step w (MP.Deliver_msg m.msg_id)))
    (MP.deliverable w);
  ignore (MP.step w (MP.Step 0));
  let m =
    List.find (fun (m : MP.message_info) -> m.kind = MP.Request) (MP.deliverable w)
  in
  ignore (MP.step w (MP.Duplicate_msg m.MP.msg_id));
  List.iter
    (fun (c : MP.message_info) -> ignore (MP.step w (MP.Deliver_msg c.msg_id)))
    (List.filter
       (fun (m' : MP.message_info) ->
         m'.kind = MP.Request && m'.m_ticket = m.MP.m_ticket)
       (MP.in_flight w));
  Alcotest.(check int) "no dedup hit recorded" 0 (MP.net_stats w).MP.dedup_hits;
  Alcotest.(check bool) "dedup monitor fired" true
    (List.exists
       (fun (viol : Monitor.violation) ->
         match viol.Monitor.rule with Monitor.Dedup _ -> true | _ -> false)
       (Monitor.violations monitor))

(* Re-application across incarnations is legal (the table is volatile):
   the registers' idempotent RMWs absorb it, so a monitored lossy run
   with crash-recovery stays clean. *)
let test_cross_incarnation_reapply_is_harmless () =
  let cfg = coded_cfg ~f:1 ~k:2 in
  let algorithm = Sb_registers.Adaptive.make cfg in
  let w = MP.create ~retransmit ~algorithm ~n:cfg.n ~f:cfg.f
      ~workload:[| [ Trace.Write (v 1) ]; [ Trace.Read ] |] () in
  let monitor =
    Monitor.attach_mp
      (Monitor.config ~mode:Monitor.Collect ~reg_avail:true ~k:2 ()) w
  in
  let plan =
    Plan.crash_recovery ~server:0 ~crash_at:10 ~recover_at:40
      (Plan.lossy ~duplicate:0.2 0.2)
  in
  let outcome = MP.run w (Inject.policy ~seed:5 plan) in
  Alcotest.(check bool) "quiescent" true outcome.MP.quiescent;
  Alcotest.(check bool) "all ops returned" true (all_returned w);
  Alcotest.(check int) "recovered once" 1 (MP.net_stats w).MP.recoveries;
  Alcotest.(check (list string)) "sanitizers clean" []
    (List.map Monitor.violation_to_string (Monitor.violations monitor));
  Alcotest.(check bool) "strongly regular" true
    (is_ok (Sb_spec.Regularity.check_strong (history w)))

(* ------------------------------------------------------------------ *)
(* Injection policy                                                    *)
(* ------------------------------------------------------------------ *)

let test_inject_deterministic () =
  let cfg = coded_cfg ~f:1 ~k:2 in
  let plan =
    Plan.crash_recovery ~server:1 ~crash_at:20 ~recover_at:60
      (Plan.lossy ~duplicate:0.1 ~delay:0.1 0.2)
  in
  let run_once () =
    let algorithm = Sb_registers.Adaptive.make cfg in
    let w = MP.create ~retransmit ~algorithm ~n:cfg.n ~f:cfg.f
        ~workload:[| [ Trace.Write (v 1); Trace.Read ]; [ Trace.Read ] |] () in
    let outcome = MP.run w (Inject.policy ~seed:11 plan) in
    let stats = MP.net_stats w in
    (outcome.MP.steps, stats, MP.max_bits_combined w,
     Trace.operations (MP.trace w))
  in
  Alcotest.(check bool) "identical replays" true (run_once () = run_once ())

let test_partition_holds_then_heals () =
  let cfg = coded_cfg ~f:1 ~k:2 in
  let algorithm = Sb_registers.Adaptive.make cfg in
  let w = MP.create ~retransmit ~algorithm ~n:cfg.n ~f:cfg.f
      ~workload:[| [ Trace.Write (v 1); Trace.Read ] |] () in
  let plan =
    Plan.partition ~name:"s0-cut" ~servers:[ 0 ] ~start:0 ~heal:50
      ~mode:Plan.Isolate_hold Plan.none
  in
  let outcome = MP.run w (Inject.policy ~seed:2 plan) in
  Alcotest.(check bool) "quiescent" true outcome.MP.quiescent;
  Alcotest.(check bool) "all ops returned" true (all_returned w);
  Alcotest.(check int) "held messages were never lost" 0
    (MP.net_stats w).MP.dropped

let test_drop_partition_loses_messages () =
  let cfg = coded_cfg ~f:1 ~k:2 in
  let algorithm = Sb_registers.Adaptive.make cfg in
  let w = MP.create ~retransmit ~algorithm ~n:cfg.n ~f:cfg.f
      ~workload:[| [ Trace.Write (v 1) ] |] () in
  let plan =
    Plan.partition ~name:"s0-drop" ~servers:[ 0 ] ~start:0 ~heal:80
      ~mode:Plan.Isolate_drop Plan.none
  in
  let outcome = MP.run w (Inject.policy ~seed:2 plan) in
  Alcotest.(check bool) "quiescent" true outcome.MP.quiescent;
  Alcotest.(check bool) "all ops returned" true (all_returned w);
  Alcotest.(check bool) "crossing messages dropped" true
    ((MP.net_stats w).MP.dropped > 0)

(* ------------------------------------------------------------------ *)
(* Liveness watchdog                                                   *)
(* ------------------------------------------------------------------ *)

let test_watchdog_flags_stuck_op () =
  let cfg = coded_cfg ~f:1 ~k:2 in
  let algorithm = Sb_registers.Adaptive.make cfg in
  (* No retransmission: losing the whole broadcast wedges the op. *)
  let w = MP.create ~algorithm ~n:cfg.n ~f:cfg.f
      ~workload:[| [ Trace.Write (v 1) ] |] () in
  ignore (MP.step w (MP.Step 0));
  List.iter (fun (m : MP.message_info) -> ignore (MP.step w (MP.Drop_msg m.msg_id)))
    (MP.in_flight w);
  Alcotest.(check int) "nothing flagged before the deadline" 0
    (List.length (Inject.watchdog ~budget:1000 w));
  for _ = 1 to 30 do ignore (MP.step w MP.Tick) done;
  let stuck = Inject.watchdog ~budget:20 w in
  Alcotest.(check int) "one stuck op" 1 (List.length stuck);
  let s = List.hd stuck in
  Alcotest.(check int) "the writer's op" 1 s.Inject.wd_op;
  Alcotest.(check bool) "aged past the budget" true (s.Inject.wd_age > 20);
  Alcotest.(check bool) "budget must be positive" true
    (invalid (fun () -> Inject.watchdog ~budget:0 w))

(* ------------------------------------------------------------------ *)
(* FIFO vs unordered equivalence (satellite)                           *)
(* ------------------------------------------------------------------ *)

(* Every register keeps its promised consistency level under loss and
   duplication, with the same verdict whether channels are FIFO or
   unordered.  This is the test_msgnet algorithm matrix pushed through
   the fault plane. *)
let test_fifo_unordered_equivalence () =
  let cfg = coded_cfg ~f:1 ~k:2 in
  let cfg_abd =
    { Common.n = 3; f = 1; codec = Codec.replication ~value_bytes ~n:3 }
  in
  let algorithms =
    [
      ("abd", (fun () -> Sb_registers.Abd.make cfg_abd), cfg_abd,
       Sb_spec.Regularity.check_strong);
      ("abd-atomic", (fun () -> Sb_registers.Abd_atomic.make cfg_abd), cfg_abd,
       fun h -> Sb_spec.Regularity.check_atomic h);
      ("adaptive", (fun () -> Sb_registers.Adaptive.make cfg), cfg,
       Sb_spec.Regularity.check_strong);
      ("pure-ec", (fun () -> Sb_registers.Adaptive.make_unbounded cfg), cfg,
       Sb_spec.Regularity.check_strong);
      ("versioned", (fun () -> Sb_registers.Adaptive.make_versioned ~delta:1 cfg),
       cfg, Sb_spec.Regularity.check_strong);
      ("safe", (fun () -> Sb_registers.Safe_register.make cfg), cfg,
       Sb_spec.Regularity.check_safe);
      ("rateless", (fun () -> Sb_registers.Rateless.make ~codec_seed:7 cfg), cfg,
       Sb_spec.Regularity.check_strong);
    ]
  in
  let workload = [| [ Trace.Write (v 5); Trace.Read ]; [ Trace.Read ] |] in
  List.iter
    (fun (name, make, cfg, check) ->
      List.iter
        (fun drop ->
          List.iter
            (fun seed ->
              let verdict_of ~fifo =
                let w = MP.create ~fifo ~retransmit ~algorithm:(make ())
                    ~n:cfg.Common.n ~f:cfg.Common.f ~workload () in
                let plan = Plan.lossy ~duplicate:0.1 drop in
                let outcome = MP.run w (Inject.policy ~seed plan) in
                Alcotest.(check bool)
                  (Printf.sprintf "%s drop=%.1f seed=%d fifo=%b quiescent" name
                     drop seed fifo)
                  true
                  (outcome.MP.quiescent && all_returned w);
                is_ok (check (history w))
              in
              let unordered = verdict_of ~fifo:false in
              let fifo = verdict_of ~fifo:true in
              Alcotest.(check bool)
                (Printf.sprintf "%s drop=%.1f seed=%d verdicts agree" name drop
                   seed)
                true
                (unordered = fifo && unordered))
            [ 1; 2; 3; 4; 5 ])
        [ 0.0; 0.1; 0.3 ])
    algorithms

(* ------------------------------------------------------------------ *)
(* Byzantine plan entries: the policy gate                              *)
(* ------------------------------------------------------------------ *)

module Model = Sb_baseobj.Model
module Byz = Sb_adversary.Byz

(* A declarative byz entry is validated like any other plan field, but
   with the TYPED error: budgets over [f] raise [Model.Error
   Budget_exceeds_f], not a stringly [Invalid_argument] — callers gate
   campaigns on it while negative-control harnesses construct the
   over-budget world directly. *)
let test_plan_byz_validate () =
  let with_budget b =
    Plan.byzantine ~behaviour:Byz.Stale_echo ~budget:b Plan.none
  in
  Plan.validate ~n:5 ~f:1 (with_budget 0);
  Plan.validate ~n:5 ~f:1 (with_budget 1);
  (match Plan.validate ~n:5 ~f:1 (with_budget 2) with
  | () -> Alcotest.fail "budget 2 > f = 1 accepted"
  | exception Model.Error (Model.Budget_exceeds_f { budget; f }) ->
    Alcotest.(check int) "budget reported" 2 budget;
    Alcotest.(check int) "f reported" 1 f);
  match Plan.validate ~n:5 ~f:1 (with_budget (-1)) with
  | () -> Alcotest.fail "negative budget accepted"
  | exception Model.Error (Model.Negative_budget _) -> ()

(* ------------------------------------------------------------------ *)
(* Byzantine chaos campaign + the over-budget negative control          *)
(* ------------------------------------------------------------------ *)

let byz_cfg ~f ~b =
  let n = (2 * f) + (2 * b) + 1 in
  { Common.n; f; codec = Codec.replication ~value_bytes ~n }

let byz_spec ~f ~b behaviour =
  let cfg = byz_cfg ~f ~b in
  {
    Chaos.sp_name = Printf.sprintf "byz-regular:%d" b;
    sp_make = (fun () -> Sb_registers.Byz_regular.make ~budget:b cfg);
    sp_n = cfg.Common.n;
    sp_f = cfg.Common.f;
    sp_k = 1;
    sp_value_bytes = value_bytes;
    sp_reg_avail = true;
    sp_check = Sb_spec.Regularity.check_strong;
    sp_base_model = Model.Byzantine { budget = b };
    sp_byz = (if b > 0 then Some behaviour else None);
    sp_floor = Some (f + 1, 8 * value_bytes);
    sp_workload = Some Chaos.swmr_workload;
  }

(* Within budget ([b <= f]) every lying behaviour must ride out the full
   chaos plan — message loss, duplication, crash/recovery — with a clean
   strong-regularity verdict and the floor monitor armed. *)
let test_chaos_byz_within_budget () =
  let config =
    { Chaos.quick_config with Chaos.seeds = 2; drops = [ 0.0; 0.2 ] }
  in
  List.iter
    (fun behaviour ->
      let cells = Chaos.campaign config [ byz_spec ~f:1 ~b:1 behaviour ] in
      if not (Chaos.all_ok cells) then (
        Chaos.explain_failures Format.str_formatter cells;
        Alcotest.failf "byz campaign (%s) failed:@ %s"
          (Byz.behaviour_to_string behaviour)
          (Format.flush_str_formatter ())))
    Byz.all_behaviours

(* The designed refutation: [b+1] split-brain liars against a budget-[b]
   masking register.  The explorer finds a strong-regularity violation,
   the shrinker minimises it, and the shrunk schedule still replays to a
   violation on a fresh world — the counterexample is a portable
   artifact, not a flaky observation. *)
let test_chaos_byz_over_budget_refuted () =
  let f = 1 and b = 1 in
  let cfg = byz_cfg ~f ~b in
  let over = b + 1 in
  let module E = Sb_modelcheck.Explore in
  let byz = Byz.policy ~seed:7 ~n:cfg.Common.n ~budget:over Byz.Split_brain in
  let econfig =
    E.config
      ~base_model:(Model.Byzantine { budget = over })
      ~byz
      ~algorithm:(Sb_registers.Byz_regular.make ~budget:b cfg)
      ~n:cfg.Common.n ~f:cfg.Common.f
      ~workload:[| [ Trace.Write (v 1) ]; [ Trace.Read ] |]
      ~initial:v0 ~check:Sb_spec.Regularity.check_strong ()
  in
  let out = E.explore econfig in
  match out.E.first_violation with
  | None ->
    Alcotest.fail
      "b+1 corroborating liars did not defeat the budget-b masking quorum"
  | Some viol ->
    let shrunk = Sb_modelcheck.Shrink.shrink econfig viol.E.v_decisions in
    Alcotest.(check bool) "shrunk non-empty" true (shrunk <> []);
    Alcotest.(check bool) "shrunk no longer than original" true
      (List.length shrunk <= List.length viol.E.v_decisions);
    (match Sb_modelcheck.Shrink.check_decisions econfig shrunk with
    | Some _ -> ()
    | None -> Alcotest.fail "shrunk schedule no longer violates on replay")

(* ------------------------------------------------------------------ *)
(* Chaos campaign                                                      *)
(* ------------------------------------------------------------------ *)

let test_chaos_smoke () =
  let cfg = coded_cfg ~f:1 ~k:2 in
  let spec =
    { Chaos.sp_name = "adaptive";
      sp_make = (fun () -> Sb_registers.Adaptive.make cfg);
      sp_n = cfg.Common.n;
      sp_f = cfg.Common.f;
      sp_k = 2;
      sp_value_bytes = value_bytes;
      sp_reg_avail = true;
      sp_check = Sb_spec.Regularity.check_strong;
      sp_base_model = Sb_baseobj.Model.Rmw;
      sp_byz = None;
      sp_floor = None;
      sp_workload = None;
    }
  in
  let config =
    { Chaos.quick_config with Chaos.seeds = 2; drops = [ 0.0; 0.25 ] }
  in
  let cells = Chaos.campaign config [ spec ] in
  Alcotest.(check int) "one cell per drop rate" 2 (List.length cells);
  Alcotest.(check bool) "all cells pass" true (Chaos.all_ok cells);
  List.iter
    (fun (c : Chaos.cell) ->
      List.iter
        (fun (r : Chaos.run_result) ->
          Alcotest.(check bool) "accounting holds" true r.Chaos.r_accounting_ok;
          Alcotest.(check int) "all ops ran" r.Chaos.r_ops r.Chaos.r_completed)
        c.Chaos.cl_runs)
    cells;
  (* The report renders and carries one row per cell. *)
  let csv = Sb_util.Table.to_csv (Chaos.report cells) in
  Alcotest.(check int) "report has a header plus one row per cell" 3
    (List.length
       (List.filter (fun l -> String.trim l <> "")
          (String.split_on_char '\n' csv)))

(* ------------------------------------------------------------------ *)
(* Live fault plane (socket-layer hooks + disk faults)                 *)
(* ------------------------------------------------------------------ *)

module Live = Sb_faults.Live
module Netfault = Sb_service.Netfault
module SWire = Sb_service.Wire

let data_frame i =
  SWire.encode_msg
    (SWire.Request
       {
         rq_key = "";
         rq_client = 1;
         rq_ticket = i;
         rq_op = 1;
         rq_nature = `Readonly;
         rq_payload = [];
         rq_desc = Sb_sim.Rmwdesc.Snapshot;
       })

(* Fragmentation preserves the byte stream: the scheduled segments
   reassemble the exact frame (a slow-close may truncate the tail to a
   strict prefix — the peer's incremental reader treats that as a
   partial write followed by EOF, never as garbage). *)
let test_live_hooks_fragmentation () =
  let hooks = Live.hooks ~seed:5 (Plan.lossy ~fragment:1.0 0.0) in
  for i = 1 to 50 do
    let frame = data_frame i in
    match hooks.Netfault.nf_frame ~server:0 frame with
    | Netfault.Pass -> Alcotest.fail "fragment=1.0 left a frame whole"
    | Netfault.Drop -> Alcotest.fail "drop=0.0 dropped a frame"
    | Netfault.Emit segs ->
      Alcotest.(check bool) "split into several segments" true
        (List.length segs >= 2);
      List.iter
        (fun (d, _) ->
          Alcotest.(check bool) "segment delay non-negative" true (d >= 0))
        segs;
      Alcotest.(check bytes) "segments reassemble the frame" frame
        (Bytes.concat Bytes.empty (List.map snd segs))
    | Netfault.Emit_close segs ->
      let got = Bytes.concat Bytes.empty (List.map snd segs) in
      let len = Bytes.length got in
      Alcotest.(check bool) "slow-close emits a strict prefix" true
        (len < Bytes.length frame && Bytes.equal got (Bytes.sub frame 0 len))
  done

(* Handshake frames ride above the fault plane: campaigns exercise the
   data path, not the (idempotent, retried-on-reconnect) handshake. *)
let test_live_hooks_handshake_immune () =
  let hooks =
    Live.hooks ~seed:9 (Plan.lossy ~duplicate:0.2 ~fragment:0.5 0.3)
  in
  let hello = SWire.encode_msg (SWire.Hello { client = 1; schema = None }) in
  for _ = 1 to 100 do
    match hooks.Netfault.nf_frame ~server:0 hello with
    | Netfault.Pass -> ()
    | _ -> Alcotest.fail "handshake frame was faulted"
  done

(* The live hooks are a pure function of (seed, plan, call sequence):
   two instances built alike fault identically, frame for frame. *)
let test_live_hooks_deterministic () =
  let plan = Plan.lossy ~duplicate:0.2 ~delay:0.3 ~delay_steps:5 ~fragment:0.3 0.2 in
  let a = Live.hooks ~seed:7 plan in
  let b = Live.hooks ~seed:7 plan in
  for i = 1 to 200 do
    let frame = data_frame i in
    let ra = a.Netfault.nf_frame ~server:(i mod 3) frame in
    let rb = b.Netfault.nf_frame ~server:(i mod 3) frame in
    if ra <> rb then Alcotest.failf "frame %d diverged between equal seeds" i
  done

(* Each disk-fault mode damages a freshly saved state file in a way the
   checksummed loader detects; [Df_none] touches nothing. *)
let test_disk_fault_modes () =
  let file =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "sb-diskfault-%d.state" (Unix.getpid ()))
  in
  let p =
    { Sb_service.Wire.p_incarnation = 3; p_state = Sb_storage.Objstate.init ();
      p_keyed = [] }
  in
  Fun.protect
    ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ())
    (fun () ->
      List.iter
        (fun fault ->
          Sb_service.Daemon.save_state ~version:SWire.version file p;
          Alcotest.(check bool)
            (Live.disk_fault_name fault ^ " applied")
            true
            (Live.corrupt_file ~seed:11 fault file);
          match Sb_service.Daemon.load_state ~max_version:SWire.version file with
          | Sb_service.Daemon.Corrupt _ -> ()
          | _ -> Alcotest.failf "%s not detected" (Live.disk_fault_name fault))
        [ Live.Df_truncate; Live.Df_bitflip ];
      Sb_service.Daemon.save_state ~version:SWire.version file p;
      Alcotest.(check bool) "Df_none is a no-op" false
        (Live.corrupt_file ~seed:11 Live.Df_none file);
      match Sb_service.Daemon.load_state ~max_version:SWire.version file with
      | Sb_service.Daemon.Loaded _ -> ()
      | _ -> Alcotest.fail "untouched file should still load")

let () =
  Alcotest.run "faults"
    [
      ( "plan",
        [
          Alcotest.test_case "validation" `Quick test_plan_validate;
          Alcotest.test_case "partition isolation" `Quick test_plan_isolation;
        ] );
      ( "retransmission",
        [
          Alcotest.test_case "liveness under total loss" `Quick
            test_retransmission_liveness;
          Alcotest.test_case "needs an expired deadline" `Quick
            test_retransmit_needs_expiry;
        ] );
      ( "crash-recovery",
        [
          Alcotest.test_case "stale responses fenced" `Quick
            test_stale_response_fenced;
          Alcotest.test_case "cross-incarnation reapply harmless" `Quick
            test_cross_incarnation_reapply_is_harmless;
        ] );
      ( "dedup",
        [
          Alcotest.test_case "duplicates answered once" `Quick
            test_duplicate_request_deduplicated;
          Alcotest.test_case "monitor fires without the table" `Quick
            test_dedup_monitor_fires_without_table;
        ] );
      ( "injection",
        [
          Alcotest.test_case "deterministic" `Quick test_inject_deterministic;
          Alcotest.test_case "hold partition heals" `Quick
            test_partition_holds_then_heals;
          Alcotest.test_case "drop partition loses" `Quick
            test_drop_partition_loses_messages;
        ] );
      ( "watchdog",
        [
          Alcotest.test_case "flags stuck ops" `Quick test_watchdog_flags_stuck_op;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "fifo vs unordered verdicts" `Quick
            test_fifo_unordered_equivalence;
        ] );
      ( "chaos",
        [ Alcotest.test_case "campaign smoke" `Quick test_chaos_smoke ] );
      ( "byzantine",
        [
          Alcotest.test_case "plan budget gate" `Quick test_plan_byz_validate;
          Alcotest.test_case "within-budget campaign green" `Quick
            test_chaos_byz_within_budget;
          Alcotest.test_case "over-budget refuted+shrunk" `Quick
            test_chaos_byz_over_budget_refuted;
        ] );
      ( "live",
        [
          Alcotest.test_case "fragments reassemble the frame" `Quick
            test_live_hooks_fragmentation;
          Alcotest.test_case "handshakes ride above the faults" `Quick
            test_live_hooks_handshake_immune;
          Alcotest.test_case "hooks deterministic per seed" `Quick
            test_live_hooks_deterministic;
          Alcotest.test_case "disk faults detected by the loader" `Quick
            test_disk_fault_modes;
        ] );
    ]
