(* Tests for Sb_util: PRNG, byte helpers, tables, distinct values. *)

module Prng = Sb_util.Prng
module Bytesx = Sb_util.Bytesx
module Table = Sb_util.Table
module Values = Sb_util.Values

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ------------------------------------------------------------------ *)
(* PRNG                                                                *)
(* ------------------------------------------------------------------ *)

let test_prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Prng.bits64 a = Prng.bits64 b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let test_prng_copy_independent () =
  let a = Prng.create 7 in
  let b = Prng.copy a in
  let xa = Prng.bits64 a in
  let xb = Prng.bits64 b in
  Alcotest.(check int64) "copy continues identically" xa xb;
  ignore (Prng.bits64 a);
  let xa2 = Prng.bits64 a and xb2 = Prng.bits64 b in
  Alcotest.(check bool) "desynchronised after extra draw" true (xa2 <> xb2)

let test_prng_split_diverges () =
  let a = Prng.create 9 in
  let child = Prng.split a in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Prng.bits64 a = Prng.bits64 child then incr same
  done;
  Alcotest.(check bool) "parent and child streams differ" true (!same < 4)

let test_prng_int_range () =
  let t = Prng.create 5 in
  for _ = 1 to 1000 do
    let v = Prng.int t 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_prng_int_invalid () =
  let t = Prng.create 5 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int t 0))

let test_prng_int_covers () =
  let t = Prng.create 6 in
  let seen = Array.make 8 false in
  for _ = 1 to 1000 do
    seen.(Prng.int t 8) <- true
  done;
  Alcotest.(check bool) "all residues hit" true (Array.for_all Fun.id seen)

let test_prng_float_range () =
  let t = Prng.create 8 in
  for _ = 1 to 1000 do
    let v = Prng.float t 3.5 in
    Alcotest.(check bool) "in range" true (v >= 0.0 && v < 3.5)
  done

let test_prng_bool_mixes () =
  let t = Prng.create 10 in
  let trues = ref 0 in
  for _ = 1 to 1000 do
    if Prng.bool t then incr trues
  done;
  Alcotest.(check bool) "roughly balanced" true (!trues > 400 && !trues < 600)

let test_prng_shuffle_permutes () =
  let t = Prng.create 3 in
  let arr = Array.init 50 Fun.id in
  Prng.shuffle t arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 Fun.id) sorted

let test_prng_pick () =
  let t = Prng.create 4 in
  let arr = [| 10; 20; 30 |] in
  for _ = 1 to 100 do
    let v = Prng.pick t arr in
    Alcotest.(check bool) "member" true (Array.mem v arr)
  done;
  Alcotest.check_raises "empty array" (Invalid_argument "Prng.pick: empty array")
    (fun () -> ignore (Prng.pick t [||]))

let test_prng_bytes_len () =
  let t = Prng.create 12 in
  Alcotest.(check int) "length" 33 (Bytes.length (Prng.bytes t 33))

(* ------------------------------------------------------------------ *)
(* Bytesx                                                              *)
(* ------------------------------------------------------------------ *)

let bytes_gen n = QCheck2.Gen.(map Bytes.of_string (string_size ~gen:char (return n)))

let test_xor_involution =
  qtest "xor is an involution"
    QCheck2.Gen.(pair (bytes_gen 16) (bytes_gen 16))
    (fun (a, b) -> Bytes.equal (Bytesx.xor (Bytesx.xor a b) b) a)

let test_xor_self_zero =
  qtest "xor with self is zero" (bytes_gen 16) (fun a ->
      Bytes.equal (Bytesx.xor a a) (Bytes.make 16 '\000'))

let test_xor_commutes =
  qtest "xor commutes"
    QCheck2.Gen.(pair (bytes_gen 16) (bytes_gen 16))
    (fun (a, b) -> Bytes.equal (Bytesx.xor a b) (Bytesx.xor b a))

let test_xor_into_mismatch () =
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Bytesx.xor_into: length mismatch") (fun () ->
      Bytesx.xor_into ~src:(Bytes.create 3) ~dst:(Bytes.create 4))

let test_int_le_roundtrip =
  qtest "of_int_le/to_int_le roundtrip"
    QCheck2.Gen.(int_bound 1_000_000)
    (fun v -> Bytesx.to_int_le (Bytesx.of_int_le v ~width:4) = v)

let test_int_le_overflow () =
  Alcotest.check_raises "overflow" (Invalid_argument "Bytesx.of_int_le: overflow")
    (fun () -> ignore (Bytesx.of_int_le 256 ~width:1))

let test_pad_to () =
  let b = Bytes.of_string "ab" in
  let p = Bytesx.pad_to b 5 in
  Alcotest.(check int) "padded length" 5 (Bytes.length p);
  Alcotest.(check string) "prefix preserved" "ab" (Bytes.to_string (Bytes.sub p 0 2));
  Alcotest.(check bool) "no-op when long enough" true (Bytesx.pad_to b 1 == b)

let test_chunks_roundtrip =
  qtest "chunks/concat roundtrip"
    QCheck2.Gen.(pair (int_range 1 40) (int_range 1 8))
    (fun (len, k) ->
      let t = Prng.create (len + (k * 1000)) in
      let b = Prng.bytes t len in
      let size = (len + k - 1) / k in
      let cs = Bytesx.chunks b ~size ~count:k in
      Array.length cs = k
      && Array.for_all (fun c -> Bytes.length c = size) cs
      && Bytes.equal (Bytesx.concat_chunks cs ~len) b)

let test_hex () =
  Alcotest.(check string) "hex" "00ff10" (Bytesx.hex (Bytes.of_string "\x00\xff\x10"))

let test_hex_roundtrip =
  qtest "hex/of_hex roundtrip" (bytes_gen 24) (fun b ->
      Bytes.equal (Bytesx.of_hex (Bytesx.hex b)) b)

let test_of_hex_errors () =
  Alcotest.check_raises "odd length" (Invalid_argument "Bytesx.of_hex: odd length")
    (fun () -> ignore (Bytesx.of_hex "abc"));
  Alcotest.check_raises "bad digit" (Invalid_argument "Bytesx.of_hex: not a hex digit")
    (fun () -> ignore (Bytesx.of_hex "zz"));
  Alcotest.(check bytes) "uppercase accepted" (Bytes.of_string "\xab") (Bytesx.of_hex "AB")

let test_hamming () =
  let a = Bytes.of_string "\x00\x0f" and b = Bytes.of_string "\x01\x0e" in
  Alcotest.(check int) "distance" 2 (Bytesx.hamming_distance a b);
  Alcotest.(check int) "zero for equal" 0 (Bytesx.hamming_distance a a)

(* ------------------------------------------------------------------ *)
(* Table                                                               *)
(* ------------------------------------------------------------------ *)

let test_table_render () =
  let t = Table.create ~title:"T" [ ("a", Table.Left); ("bbb", Table.Right) ] in
  Table.add_row t [ "xx"; "1" ];
  Table.add_int_row t [ 7; 12345 ];
  let s = Table.render t in
  Alcotest.(check bool) "title present" true (String.length s > 0 && s.[0] = 'T');
  Alcotest.(check bool) "contains rule" true
    (String.exists (fun c -> c = '-') s);
  Alcotest.(check bool) "right-aligned numbers" true
    (let lines = String.split_on_char '\n' s in
     List.exists (fun l -> String.length l > 0 && l.[String.length l - 1] = '1') lines)

let test_table_wrong_arity () =
  let t = Table.create [ ("a", Table.Left) ] in
  Alcotest.check_raises "wrong cells"
    (Invalid_argument "Table.add_row: wrong number of cells") (fun () ->
      Table.add_row t [ "x"; "y" ])

(* ------------------------------------------------------------------ *)
(* Values                                                              *)
(* ------------------------------------------------------------------ *)

let test_values_distinct =
  qtest "distinct values never collide"
    QCheck2.Gen.(pair (int_bound 500) (int_bound 500))
    (fun (i, j) ->
      let a = Values.distinct ~value_bytes:16 i in
      let b = Values.distinct ~value_bytes:16 j in
      (i = j) = Bytes.equal a b)

let test_values_nonzero =
  qtest "distinct values are never v0" (QCheck2.Gen.int_bound 1000) (fun i ->
      not (Bytes.equal (Values.distinct ~value_bytes:8 i) (Bytes.make 8 '\000')))

let test_values_deterministic () =
  Alcotest.(check bytes) "deterministic"
    (Values.distinct ~value_bytes:32 7)
    (Values.distinct ~value_bytes:32 7)

let test_values_invalid () =
  Alcotest.check_raises "negative" (Invalid_argument "Values.distinct: negative index")
    (fun () -> ignore (Values.distinct ~value_bytes:8 (-1)))

let () =
  Alcotest.run "util"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
          Alcotest.test_case "copy independent" `Quick test_prng_copy_independent;
          Alcotest.test_case "split diverges" `Quick test_prng_split_diverges;
          Alcotest.test_case "int range" `Quick test_prng_int_range;
          Alcotest.test_case "int invalid" `Quick test_prng_int_invalid;
          Alcotest.test_case "int covers residues" `Quick test_prng_int_covers;
          Alcotest.test_case "float range" `Quick test_prng_float_range;
          Alcotest.test_case "bool mixes" `Quick test_prng_bool_mixes;
          Alcotest.test_case "shuffle permutes" `Quick test_prng_shuffle_permutes;
          Alcotest.test_case "pick" `Quick test_prng_pick;
          Alcotest.test_case "bytes length" `Quick test_prng_bytes_len;
        ] );
      ( "bytesx",
        [
          test_xor_involution;
          test_xor_self_zero;
          test_xor_commutes;
          Alcotest.test_case "xor_into mismatch" `Quick test_xor_into_mismatch;
          test_int_le_roundtrip;
          Alcotest.test_case "int overflow" `Quick test_int_le_overflow;
          Alcotest.test_case "pad_to" `Quick test_pad_to;
          test_chunks_roundtrip;
          Alcotest.test_case "hex" `Quick test_hex;
          test_hex_roundtrip;
          Alcotest.test_case "of_hex errors" `Quick test_of_hex_errors;
          Alcotest.test_case "hamming" `Quick test_hamming;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "wrong arity" `Quick test_table_wrong_arity;
        ] );
      ( "values",
        [
          test_values_distinct;
          test_values_nonzero;
          Alcotest.test_case "deterministic" `Quick test_values_deterministic;
          Alcotest.test_case "invalid" `Quick test_values_invalid;
        ] );
    ]
