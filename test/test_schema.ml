(* Tests for Sb_schema and its integration with the service codec: the
   golden-schema drift gate (committed schemas/v<N>.json must equal what
   the codec programmatically describes), the schema-driven interpreter
   agreeing byte-for-byte with the hand-written writers/readers, the
   static compatibility certifier (v1 <-> v2 proved compatible, the
   seeded incompatible edits refuted with concrete counterexamples), and
   the decode-or-reject property for old-schema payloads. *)

module Sch = Sb_schema.Schema
module Compat = Sb_schema.Compat
module W = Sb_service.Wire

let qtest ?(count = 300) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let versions =
  List.init (W.version - W.min_version + 1) (fun i -> W.min_version + i)

let root name (s : Sch.t) =
  match List.assoc_opt name s.Sch.s_roots with
  | Some ty -> ty
  | None -> Alcotest.failf "schema v%d has no root %S" s.Sch.s_version name

(* ------------------------------------------------------------------ *)
(* Golden drift gate                                                    *)
(* ------------------------------------------------------------------ *)

(* dune runtest runs with cwd = the staged test directory; dune exec
   from the project root. *)
let golden_dir =
  List.find_opt Sys.file_exists [ "schemas"; "../schemas"; "../../schemas" ]

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* The committed golden description of every supported wire version
   must equal the one the codec produces: a layout edit without a
   version bump (or a forgotten regeneration) fails here, with the
   field-level diff in the failure message. *)
let test_golden_matches_code () =
  let dir =
    match golden_dir with
    | Some d -> d
    | None -> Alcotest.fail "schemas/ directory not found from the test cwd"
  in
  List.iter
    (fun v ->
      let path = Filename.concat dir (Printf.sprintf "v%d.json" v) in
      if not (Sys.file_exists path) then
        Alcotest.failf
          "%s missing — regenerate: spacebounds schema dump --schema-version \
           %d -o %s"
          path v path;
      match Sch.of_json (read_file path) with
      | Error e -> Alcotest.failf "%s unreadable: %s" path e
      | Ok golden ->
        let code = W.schema_v ~version:v in
        if not (Sch.equal golden code) then
          Alcotest.failf "%s drifted from the code:\n  %s" path
            (String.concat "\n  " (Sch.diff golden code)))
    versions

let test_json_roundtrip () =
  List.iter
    (fun v ->
      let s = W.schema_v ~version:v in
      (match Sch.validate s with
      | Ok () -> ()
      | Error e -> Alcotest.failf "schema v%d invalid: %s" v e);
      match Sch.of_json (Sch.to_json s) with
      | Error e -> Alcotest.failf "v%d round-trip parse: %s" v e
      | Ok s' ->
        Alcotest.(check bool)
          (Printf.sprintf "v%d of_json (to_json s) = s" v)
          true (Sch.equal s s');
        Alcotest.(check string)
          (Printf.sprintf "v%d hash stable" v)
          (Sch.hash_hex s) (Sch.hash_hex s'))
    versions

let test_hashes_distinct () =
  Alcotest.(check bool) "v1 and v2 hashes differ" false
    (Sch.hash (W.schema_v ~version:1) = Sch.hash (W.schema_v ~version:2));
  Alcotest.(check string) "Wire.schema_hash is the newest version's hash"
    (Sch.hash_hex W.schema) W.schema_hash_hex;
  Alcotest.(check int) "handshake hash is 16 bytes" 16
    (String.length W.schema_hash)

(* ------------------------------------------------------------------ *)
(* Schema interpreter vs the hand-written codec                         *)
(* ------------------------------------------------------------------ *)

(* [decode_msg]/[decode_persisted] take the de-framed body: a version
   byte followed by the root's bytes.  [encode_msg] returns the framed
   form (u32 length + body); [unframe] strips the length prefix so the
   two sides compare byte-for-byte. *)
let body_of ~v bytes =
  let f = Bytes.create (1 + Bytes.length bytes) in
  Bytes.set_uint8 f 0 v;
  Bytes.blit bytes 0 f 1 (Bytes.length bytes);
  f

let unframe frame = Bytes.sub frame 4 (Bytes.length frame - 4)

(* Every deterministic witness sample of the msg schema, encoded by the
   schema interpreter, must be accepted by the hand-written reader and
   re-encoded by the hand-written writer to the exact same frame: the
   description and the codec cannot disagree on a single byte. *)
let test_msg_codec_agreement () =
  List.iter
    (fun v ->
      let ty = root "msg" (W.schema_v ~version:v) in
      let n_ok = ref 0 in
      List.iter
        (fun sample ->
          let body = body_of ~v (Sch.encode ty sample) in
          match W.decode_msg ~max_version:W.version body with
          | Error e ->
            Alcotest.failf "v%d sample %s rejected by the codec: %s" v
              (Format.asprintf "%a" Sch.pp_value sample)
              e
          | Ok m ->
            incr n_ok;
            let re = unframe (W.encode_msg ~version:v m) in
            if re <> body then
              Alcotest.failf "v%d sample %s re-encoded differently" v
                (Format.asprintf "%a" Sch.pp_value sample))
        (Sch.samples ty);
      Alcotest.(check bool)
        (Printf.sprintf "v%d corpus nonempty" v)
        true (!n_ok > 10))
    versions

let test_persisted_codec_agreement () =
  let ty = root "persisted" W.schema in
  List.iter
    (fun sample ->
      let body = body_of ~v:W.version (Sch.encode ty sample) in
      match W.decode_persisted ~max_version:W.version body with
      | Error e ->
        Alcotest.failf "persisted sample rejected: %s (%s)" e
          (Format.asprintf "%a" Sch.pp_value sample)
      | Ok p ->
        let re = unframe (W.encode_persisted ~version:W.version p) in
        Alcotest.(check bool) "persisted re-encode byte-identical" true
          (re = body))
    (Sch.samples ty)

(* ------------------------------------------------------------------ *)
(* Compatibility certifier                                              *)
(* ------------------------------------------------------------------ *)

let test_v1_v2_compatible () =
  let r =
    Compat.check ~old_:(W.schema_v ~version:1) ~new_:(W.schema_v ~version:2)
  in
  if not r.Compat.r_compatible then
    Alcotest.failf "v1 <-> v2 flagged incompatible:\n%s" (Compat.render r);
  Alcotest.(check bool) "no misinterpret cell" true
    (List.for_all
       (fun c -> c.Compat.c_verdict <> Compat.Misinterpret)
       r.Compat.r_cells)

(* The certifier's teeth: both seeded incompatible edits must be
   refuted, and the field transposition must come with a concrete
   counterexample payload that the two schemas decode differently. *)
let test_seeded_edits_refuted () =
  let edits = Compat.seeded_edits W.schema in
  Alcotest.(check bool) "both seeded edits present" true
    (List.length edits >= 2);
  List.iter
    (fun (name, _desc, edited) ->
      let r = Compat.check ~old_:W.schema ~new_:edited in
      if r.Compat.r_compatible then
        Alcotest.failf "seeded edit %S accepted: the certifier lost its teeth"
          name;
      if name = "reordered-welcome-fields" then begin
        let witnesses =
          List.filter_map
            (fun c ->
              if c.Compat.c_verdict = Compat.Misinterpret then
                c.Compat.c_witness
              else None)
            r.Compat.r_cells
        in
        Alcotest.(check bool) "reorder has a MISINTERPRET witness" true
          (witnesses <> []);
        List.iter
          (fun w ->
            Alcotest.(check bool) "witness names the diverging field" true
              (w.Compat.w_diverges <> "");
            Alcotest.(check bool) "witness carries the payload" true
              (w.Compat.w_payload <> "");
            Alcotest.(check bool) "witness shows two decodings" true
              (w.Compat.w_writer <> w.Compat.w_reader))
          witnesses
      end)
    edits

(* ------------------------------------------------------------------ *)
(* Decode-or-reject, never misinterpret, never raise                    *)
(* ------------------------------------------------------------------ *)

(* An old-schema (v1) payload hitting the newest reader either decodes
   to a message that re-encodes at v1 to the exact original frame, or
   is rejected cleanly — there is no third outcome where it decodes to
   a different meaning. *)
let test_v1_payloads_never_misinterpreted () =
  let ty = root "msg" (W.schema_v ~version:1) in
  List.iter
    (fun sample ->
      let body = body_of ~v:1 (Sch.encode ty sample) in
      match W.decode_msg ~max_version:W.version body with
      | Error _ -> () (* clean reject *)
      | Ok m ->
        Alcotest.(check bool) "v1 meaning preserved under the v2 reader" true
          (unframe (W.encode_msg ~version:1 m) = body))
    (Sch.samples ty)

let gen_raw_body =
  QCheck2.Gen.(string_size ~gen:char (0 -- 160))

(* The generic interpreter is total on adversarial bytes: Ok or Error,
   never an exception — and when it accepts, its encoding is canonical
   (re-encode reproduces the input exactly). *)
let test_decode_total_and_canonical =
  qtest "schema decode: total on random bytes, canonical on accept"
    gen_raw_body (fun s ->
      let ty = root "msg" W.schema in
      let buf = Bytes.of_string s in
      match Sch.decode ty buf with
      | Error _ -> true
      | Ok v -> Sch.encode ty v = buf
      | exception e ->
        QCheck2.Test.fail_reportf "schema decode raised %s"
          (Printexc.to_string e))

let () =
  Alcotest.run "schema"
    [
      ( "golden",
        [
          Alcotest.test_case "committed schemas match the code" `Quick
            test_golden_matches_code;
          Alcotest.test_case "JSON round-trip and validate" `Quick
            test_json_roundtrip;
          Alcotest.test_case "version hashes distinct" `Quick
            test_hashes_distinct;
        ] );
      ( "codec-agreement",
        [
          Alcotest.test_case "msg: schema bytes = codec bytes" `Quick
            test_msg_codec_agreement;
          Alcotest.test_case "persisted: schema bytes = codec bytes" `Quick
            test_persisted_codec_agreement;
        ] );
      ( "compat",
        [
          Alcotest.test_case "v1 <-> v2 certified compatible" `Quick
            test_v1_v2_compatible;
          Alcotest.test_case "seeded edits refuted with witnesses" `Quick
            test_seeded_edits_refuted;
        ] );
      ( "decode-or-reject",
        [
          Alcotest.test_case "v1 payloads never misinterpreted" `Quick
            test_v1_payloads_never_misinterpreted;
          test_decode_total_and_canonical;
        ] );
    ]
