(* Exhaustive litmus tests, dejafu-style: tiny fixed workloads explored
   over EVERY schedule, asserting the exact set of values a racing read
   can return at each consistency level.

   Each scenario is writers racing a single reader on a fresh register
   (initial value v0).  The explorer enumerates all schedules (sleep-set
   DPOR, exhaustive bound), every history is machine-checked against the
   consistency level its algorithm promises, and the on_history hook
   collects two sets of read outcomes:

   - [all]: values the read returned in any schedule;
   - [after_write]: values returned in schedules where some write had
     already completed before the read was invoked.

   The second set is where the hierarchy becomes visible: a regular
   register must not return v0 once any write has completed, while the
   safe register (k >= 2) may — a concurrent write can scatter the
   timestamps a read samples so that no value has k matching pieces
   (Algorithm 5, line 18 falls back to v0).

   Every test also re-runs the scenario without DPOR, capped at twice
   the DPOR schedule count, and asserts the cap is hit: sleep sets prune
   at least half the naive schedule space (in practice, orders of
   magnitude more). *)

module R = Sb_sim.Runtime
module E = Sb_modelcheck.Explore
module H = Sb_spec.History
module Reg = Sb_spec.Regularity
module Common = Sb_registers.Common
module Codec = Sb_codec.Codec
module Trace = Sb_sim.Trace

let value_bytes = 2
let v0 = Bytes.make value_bytes '\000'
let v1 = Sb_util.Values.distinct ~value_bytes 1
let v2 = Sb_util.Values.distinct ~value_bytes 2

let tag = function
  | None -> "none"
  | Some b ->
    if Bytes.equal b v0 then "v0"
    else if Bytes.equal b v1 then "v1"
    else if Bytes.equal b v2 then "v2"
    else "other"

module SS = Set.Make (String)

let set_to_string s = "{" ^ String.concat "," (SS.elements s) ^ "}"

let check_set name expected actual =
  if not (SS.equal expected actual) then
    Alcotest.failf "%s: expected %s, got %s" name (set_to_string expected)
      (set_to_string actual)

(* ------------------------------------------------------------------ *)
(* Algorithms under test                                               *)
(* ------------------------------------------------------------------ *)

type algo = {
  a_name : string;
  a_alg : R.algorithm;
  a_n : int;
  a_f : int;
  a_level : string;
  a_check : H.t -> Reg.verdict;
}

let abd () =
  let n = 3 and f = 1 in
  let cfg = { Common.n; f; codec = Codec.replication ~value_bytes ~n } in
  {
    a_name = "abd";
    a_alg = Sb_registers.Abd.make cfg;
    a_n = n;
    a_f = f;
    a_level = "strong regularity";
    a_check = Reg.check_strong;
  }

let abd_atomic () =
  let n = 3 and f = 1 in
  let cfg = { Common.n; f; codec = Codec.replication ~value_bytes ~n } in
  {
    a_name = "abd-atomic";
    a_alg = Sb_registers.Abd_atomic.make cfg;
    a_n = n;
    a_f = f;
    a_level = "atomicity";
    a_check = (fun h -> Reg.check_atomic h);
  }

let adaptive () =
  let n = 3 and f = 1 in
  let cfg = { Common.n; f; codec = Codec.rs_vandermonde ~value_bytes ~k:1 ~n } in
  {
    a_name = "adaptive";
    a_alg = Sb_registers.Adaptive.make cfg;
    a_n = n;
    a_f = f;
    a_level = "strong regularity";
    a_check = Reg.check_strong;
  }

let safe_register () =
  (* k = 2 so that pieces must be assembled: that is what lets a read
     concurrent with one write miss a quorum of matching pieces and fall
     back to v0 even though an earlier write completed. *)
  let n = 4 and f = 1 in
  let cfg = { Common.n; f; codec = Codec.rs_vandermonde ~value_bytes ~k:2 ~n } in
  {
    a_name = "safe";
    a_alg = Sb_registers.Safe_register.make cfg;
    a_n = n;
    a_f = f;
    a_level = "strong safety";
    a_check = Reg.check_safe;
  }

(* ------------------------------------------------------------------ *)
(* The litmus harness                                                  *)
(* ------------------------------------------------------------------ *)

type outcome = {
  o_all : SS.t;  (** Read results over every explored schedule. *)
  o_after_write : SS.t;
      (** Read results in schedules where some write completed before
          the read was invoked. *)
}

let explore_litmus ?(crash_objs = 0) ?(crash_clients = 0) ?(lint = false)
    ?(assert_dpor = true) ?(base_model = Sb_baseobj.Model.Rmw) ?byz (a : algo)
    workload =
  let all = ref SS.empty and after_write = ref SS.empty in
  let on_history _decisions (h : H.t) =
    List.iter
      (fun (rd : H.read) ->
        let t = tag rd.H.result in
        all := SS.add t !all;
        let some_write_completed =
          List.exists (fun (wr : H.write) -> H.precedes wr.H.w_ret rd.H.r_inv)
            h.H.writes
        in
        if some_write_completed then after_write := SS.add t !after_write)
      (H.completed_reads h)
  in
  let cfg =
    E.config ~crash_objs ~crash_clients ~lint ~on_history ~base_model ?byz
      ~algorithm:a.a_alg ~n:a.a_n ~f:a.a_f ~workload ~initial:v0
      ~check:a.a_check ()
  in
  let out = E.explore cfg in
  Alcotest.(check bool)
    (a.a_name ^ ": exploration ran to completion")
    true out.E.complete;
  Alcotest.(check int)
    (Printf.sprintf "%s: no %s violations" a.a_name a.a_level)
    0 out.E.stats.E.violations;
  Alcotest.(check int)
    (a.a_name ^ ": no lint failures")
    0 out.E.stats.E.lint_failures;
  (* DPOR must prune at least half the schedule space: the naive search,
     capped at twice the DPOR schedule count, has to hit the cap.
     (Asserted on the small configurations only — re-running the naive
     search on the large ones would dominate the suite's runtime; their
     reduction ratios are measured in EXPERIMENTS.md instead.) *)
  let dpor_n = out.E.stats.E.schedules in
  if assert_dpor then begin
    let naive_cfg =
      {
        cfg with
        E.dpor = false;
        lint = false;
        on_history = None;
        max_schedules = (2 * dpor_n) + 1;
      }
    in
    let naive = E.explore naive_cfg in
    if naive.E.complete || naive.E.stats.E.schedules < (2 * dpor_n) + 1 then
      Alcotest.failf "%s: naive exploration finished %d schedules; expected > %d"
        a.a_name naive.E.stats.E.schedules (2 * dpor_n)
  end;
  ignore dpor_n;
  { o_all = !all; o_after_write = !after_write }

let one_writer = [| [ Trace.Write v1 ]; [ Trace.Read ] |]
let two_writers = [| [ Trace.Write v1 ]; [ Trace.Write v2 ]; [ Trace.Read ] |]

let ss = SS.of_list

(* ------------------------------------------------------------------ *)
(* One writer racing one reader                                        *)
(* ------------------------------------------------------------------ *)

(* The read either catches the write or it does not: {v0, v1} overall,
   exactly {v1} once the write has completed (any weaker behaviour at
   one of the regular levels is a bug the explorer would also flag). *)
let test_one_writer (mk : unit -> algo) () =
  let a = mk () in
  let o = explore_litmus ~lint:true a one_writer in
  check_set (a.a_name ^ ": all results") (ss [ "v0"; "v1" ]) o.o_all;
  check_set
    (a.a_name ^ ": after the write completed")
    (ss [ "v1" ]) o.o_after_write

(* ------------------------------------------------------------------ *)
(* Two writers racing one reader                                       *)
(* ------------------------------------------------------------------ *)

(* Regular and atomic registers: any of the three values while nothing
   completed, never v0 afterwards.  Exhaustive two-writer exploration is
   only tractable for abd (431k trace classes, ~20 s; the other
   algorithms run to millions — see EXPERIMENTS.md), so abd carries the
   two-writer litmus and the others are pinned at one writer above. *)
let test_two_writers_regular (mk : unit -> algo) () =
  let a = mk () in
  let o = explore_litmus ~assert_dpor:false a two_writers in
  check_set (a.a_name ^ ": all results") (ss [ "v0"; "v1"; "v2" ]) o.o_all;
  check_set
    (a.a_name ^ ": after a write completed")
    (ss [ "v1"; "v2" ]) o.o_after_write

(* The safe register is genuinely weaker than regular, and one schedule
   proves it.  Drive the simulator through an explicit witness run:
   writer 1 completes (pieces of v1 on objects 0-2), writer 2's update
   round partially lands (timestamp-2 pieces on objects 0-1), and the
   reader then samples objects 1, 2 and 3 — three pieces with three
   different timestamps, no k = 2 of any value.  Algorithm 5 line 18
   falls back to v0 even though writer 1's write is long complete:
   strong safety accepts the history (the read is concurrent with
   writer 2), strong regularity rejects it with a structured
   Stale_initial counterexample. *)
let test_safe_weaker_than_regular () =
  let a = safe_register () in
  let w = R.create ~algorithm:a.a_alg ~n:a.a_n ~f:a.a_f ~workload:two_writers () in
  let stp c = ignore (R.step w (R.Step c)) in
  let dlv ~client ~obj =
    match
      List.find_opt
        (fun (p : R.pending_info) -> p.R.p_client = client && p.R.p_obj = obj)
        (R.deliverable w)
    with
    | Some p -> ignore (R.step w (R.Deliver p.R.ticket))
    | None -> Alcotest.failf "no deliverable RMW of client %d on object %d" client obj
  in
  (* Writer 1 (client 0): both rounds reach objects 0-2; write returns. *)
  stp 0;
  List.iter (fun o -> dlv ~client:0 ~obj:o) [ 0; 1; 2 ];
  stp 0;
  List.iter (fun o -> dlv ~client:0 ~obj:o) [ 0; 1; 2 ];
  stp 0;
  (* Writer 2 (client 1): timestamp round completes; the update round
     reaches only objects 0 and 1 (the write stays outstanding). *)
  stp 1;
  List.iter (fun o -> dlv ~client:1 ~obj:o) [ 0; 1; 2 ];
  stp 1;
  List.iter (fun o -> dlv ~client:1 ~obj:o) [ 0; 1 ];
  (* Reader (client 2), invoked after writer 1 completed, samples
     objects 1 (ts 2), 2 (ts 1) and 3 (ts 0): nothing is decodable. *)
  stp 2;
  List.iter (fun o -> dlv ~client:2 ~obj:o) [ 1; 2; 3 ];
  stp 2;
  let h = Sb_spec.History.of_trace ~initial:v0 (R.trace w) in
  (match H.completed_reads h with
   | [ rd ] ->
     Alcotest.(check string) "the read returned v0" "v0" (tag rd.H.result)
   | rds -> Alcotest.failf "expected one completed read, got %d" (List.length rds));
  (match a.a_check h with
   | Reg.Ok -> ()
   | Reg.Violation cx ->
     Alcotest.failf "strong safety rejected the witness: %s" (Reg.to_string cx));
  (match Reg.check_weak h with
   | Reg.Ok -> Alcotest.fail "weak regularity accepted a stale-v0 read"
   | Reg.Violation cx ->
     (match cx.Reg.cx_reason with
      | Reg.Stale_initial _ -> ()
      | _ ->
        Alcotest.failf "expected a Stale_initial counterexample, got %s"
          (Reg.to_string cx)));
  match Reg.check_strong h with
  | Reg.Ok -> Alcotest.fail "strong regularity accepted a stale-v0 read"
  | Reg.Violation _ -> ()

(* ------------------------------------------------------------------ *)
(* Crashes                                                             *)
(* ------------------------------------------------------------------ *)

(* One base object may crash (f = 1): operations still terminate via
   the surviving quorum and the permitted sets are unchanged. *)
let test_crash_object (mk : unit -> algo) () =
  let a = mk () in
  let o = explore_litmus ~crash_objs:1 a one_writer in
  check_set (a.a_name ^ ": all results") (ss [ "v0"; "v1" ]) o.o_all;
  check_set
    (a.a_name ^ ": after the write completed")
    (ss [ "v1" ]) o.o_after_write

(* The writer itself may crash mid-write: the write then stays
   incomplete (concurrent with everything after it), so v0 remains
   permitted at every level and the after-write set is unchanged for
   schedules where the write did complete. *)
let test_crash_client (mk : unit -> algo) () =
  let a = mk () in
  let o = explore_litmus ~crash_clients:1 a one_writer in
  check_set (a.a_name ^ ": all results") (ss [ "v0"; "v1" ]) o.o_all;
  check_set
    (a.a_name ^ ": after the write completed")
    (ss [ "v1" ]) o.o_after_write

(* Two writers, one reader, one object crash — the flagship bounded
   configuration: every schedule of the full litmus with a failure is
   enumerated and checked. *)
let test_two_writers_crash_abd () =
  let a = abd () in
  let o = explore_litmus ~assert_dpor:false ~crash_objs:1 a two_writers in
  check_set (a.a_name ^ ": all results") (ss [ "v0"; "v1"; "v2" ]) o.o_all;
  check_set
    (a.a_name ^ ": after a write completed")
    (ss [ "v1"; "v2" ]) o.o_after_write

(* ------------------------------------------------------------------ *)
(* Read/write and Byzantine base objects                               *)
(* ------------------------------------------------------------------ *)

let rw_regular () =
  let n = 3 and f = 1 in
  let cfg = { Common.n; f; codec = Codec.replication ~value_bytes ~n } in
  {
    a_name = "rw-regular";
    a_alg = Sb_registers.Rw_replica.make cfg;
    a_n = n;
    a_f = f;
    a_level = "strong regularity";
    a_check = Reg.check_strong;
  }

let rw_safe () =
  let n = 4 and f = 1 in
  let cfg = { Common.n; f; codec = Codec.rs_vandermonde ~value_bytes ~k:2 ~n } in
  {
    a_name = "rw-safe";
    a_alg = Sb_registers.Rw_replica.make_safe cfg;
    a_n = n;
    a_f = f;
    a_level = "strong safety";
    a_check = Reg.check_safe;
  }

let byz_regular ~budget () =
  let n = 3 + (2 * budget) and f = 1 in
  let cfg = { Common.n; f; codec = Codec.replication ~value_bytes ~n } in
  {
    a_name = Printf.sprintf "byz-regular:%d" budget;
    a_alg = Sb_registers.Byz_regular.make ~budget cfg;
    a_n = n;
    a_f = f;
    a_level = "strong regularity";
    a_check = Reg.check_strong;
  }

(* Blind overwrites over FIFO cells keep the full regular read-value
   sets: {v0, v1} overall, exactly {v1} once the write completed —
   exhaustively, over every schedule the Read_write model admits. *)
let test_rw_regular_one_writer () =
  let a = rw_regular () in
  let o = explore_litmus ~lint:true ~base_model:Sb_baseobj.Model.Read_write a
      one_writer
  in
  check_set (a.a_name ^ ": all results") (ss [ "v0"; "v1" ]) o.o_all;
  check_set
    (a.a_name ^ ": after the write completed")
    (ss [ "v1" ]) o.o_after_write

let test_rw_regular_crash_object () =
  let a = rw_regular () in
  let o =
    explore_litmus ~crash_objs:1 ~base_model:Sb_baseobj.Model.Read_write a
      one_writer
  in
  check_set (a.a_name ^ ": all results") (ss [ "v0"; "v1" ]) o.o_all;
  check_set
    (a.a_name ^ ": after the write completed")
    (ss [ "v1" ]) o.o_after_write

(* The safe escape hatch, as a read-value set: with two sequential
   writes by one writer, a read racing the second write may fall back
   to v0 even though the first write completed — exactly what
   distinguishes safe from regular in the litmus. *)
let swmr_two_writes = [| [ Trace.Write v1; Trace.Write v2 ]; [ Trace.Read ] |]

let test_rw_safe_v0_after_write () =
  let a = rw_safe () in
  let o =
    explore_litmus ~assert_dpor:false ~base_model:Sb_baseobj.Model.Read_write a
      swmr_two_writes
  in
  check_set (a.a_name ^ ": all results") (ss [ "v0"; "v1"; "v2" ]) o.o_all;
  if not (SS.mem "v0" o.o_after_write) then
    Alcotest.fail
      "rw-safe never fell back to v0 after a completed write: the safe/regular \
       gap is not being exercised";
  check_set
    (a.a_name ^ ": after a write completed")
    (ss [ "v0"; "v1"; "v2" ]) o.o_after_write

(* The regular emulation over the same scenario must never show v0 once
   a write completed — the two sets side by side are the bound's
   dividing line as data. *)
let test_rw_regular_no_v0_after_write () =
  let a = rw_regular () in
  let o =
    explore_litmus ~assert_dpor:false ~base_model:Sb_baseobj.Model.Read_write a
      swmr_two_writes
  in
  check_set
    (a.a_name ^ ": after a write completed")
    (ss [ "v1"; "v2" ]) o.o_after_write

(* Byzantine litmus: one stale-echoing liar against a budget-1 masking
   register — every schedule, every liar position (the policy is pure in
   the object id, so fixing the seed fixes the liar; sweep seeds to move
   it). *)
let test_byz_regular_masked () =
  let a = byz_regular ~budget:1 () in
  List.iter
    (fun seed ->
      let byz =
        Sb_adversary.Byz.policy ~seed ~n:a.a_n ~budget:1
          Sb_adversary.Byz.Stale_echo
      in
      let o =
        explore_litmus ~assert_dpor:false
          ~base_model:(Sb_baseobj.Model.Byzantine { budget = 1 })
          ~byz a one_writer
      in
      check_set
        (Printf.sprintf "%s seed=%d: all results" a.a_name seed)
        (ss [ "v0"; "v1" ]) o.o_all;
      check_set
        (Printf.sprintf "%s seed=%d: after the write completed" a.a_name seed)
        (ss [ "v1" ]) o.o_after_write)
    [ 1; 2; 3 ]

let () =
  Alcotest.run "litmus"
    [
      ( "one-writer",
        [
          Alcotest.test_case "abd" `Quick (test_one_writer abd);
          Alcotest.test_case "abd-atomic" `Quick (test_one_writer abd_atomic);
          Alcotest.test_case "adaptive" `Quick (test_one_writer adaptive);
          Alcotest.test_case "safe k=2" `Quick (test_one_writer safe_register);
        ] );
      ( "two-writers",
        [
          Alcotest.test_case "abd" `Slow (test_two_writers_regular abd);
          Alcotest.test_case "safe weaker than regular" `Quick
            test_safe_weaker_than_regular;
        ] );
      ( "crashes",
        [
          Alcotest.test_case "abd, object crash" `Quick (test_crash_object abd);
          Alcotest.test_case "abd, writer crash" `Quick (test_crash_client abd);
          Alcotest.test_case "adaptive, object crash" `Quick
            (test_crash_object adaptive);
          Alcotest.test_case "abd 2w+crash" `Slow test_two_writers_crash_abd;
        ] );
      ( "base-models",
        [
          Alcotest.test_case "rw-regular, one writer" `Quick
            test_rw_regular_one_writer;
          Alcotest.test_case "rw-regular, object crash" `Quick
            test_rw_regular_crash_object;
          Alcotest.test_case "rw-safe shows v0 after write" `Quick
            test_rw_safe_v0_after_write;
          Alcotest.test_case "rw-regular hides v0 after write" `Quick
            test_rw_regular_no_v0_after_write;
          Alcotest.test_case "byz-regular:1 masks a stale echo" `Quick
            test_byz_regular_masked;
        ] );
    ]
