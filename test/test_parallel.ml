(* Parallel exploration must be a pure reimplementation of the
   sequential search: same schedules, same verdicts, same (shrunk)
   counterexamples, at every jobs level.  These tests pin that down on
   configurations small enough to run exhaustively, including the
   seeded-bug register and a crash-budget workload, and exercise the
   domain pool itself (every task runs exactly once; exceptions
   propagate). *)

module E = Sb_modelcheck.Explore
module P = Sb_parallel.Pexplore
module Pool = Sb_parallel.Pool
module Shrink = Sb_modelcheck.Shrink
module Trace = Sb_sim.Trace
module Common = Sb_registers.Common
module Codec = Sb_codec.Codec
module Reg = Sb_spec.Regularity

let explore_config ?(mk = Sb_registers.Abd.make) ?(check = Reg.check_strong)
    ?cache ?paranoid_key ?bound ?crash_objs ?crash_clients ?stop_on_violation
    workload =
  let value_bytes = 8 in
  let n = 3 and f = 1 in
  let cfg = { Common.n; f; codec = Codec.replication ~value_bytes ~n } in
  E.config ?cache ?paranoid_key ?bound ?crash_objs ?crash_clients
    ?stop_on_violation ~algorithm:(mk cfg) ~n ~f ~workload
    ~initial:(Bytes.make value_bytes '\000') ~check ()

let v i = Sb_util.Values.distinct ~value_bytes:8 i

let workload_2w1r =
  [| [ Trace.Write (v 1) ]; [ Trace.Write (v 2) ]; [ Trace.Read ] |]

(* Small enough for the paranoid cross-check, which Marshals (and
   retains a key for) every distinct state it visits. *)
let workload_1w1r = [| [ Trace.Write (v 1) ]; [ Trace.Read ] |]

let pp_stats (s : E.stats) =
  Printf.sprintf
    "schedules=%d transitions=%d replayed=%d sleep=%d cache=%d bound=%d \
     depth=%d violations=%d lint=%d"
    s.E.schedules s.E.transitions s.E.replayed_transitions s.E.sleep_skips
    s.E.cache_skips s.E.bound_skips s.E.max_depth s.E.violations
    s.E.lint_failures

(* --- jobs=1 vs jobs=4: byte-identical totals ----------------------- *)

(* Exhaustive 2w1r is the flagship benchmark (~400k schedules, covered
   by `bench perf`); unit tests run the same shape under a delay bound
   — still thousands of schedules across dozens of subtrees, with
   bound prunes charged partly to the frontier expansion. *)
let bounded_cfg () = explore_config ~bound:(E.Delay 3) workload_2w1r

let test_jobs_identical_clean () =
  let out1 = P.explore ~jobs:1 (bounded_cfg ()) in
  let out4 = P.explore ~jobs:4 (bounded_cfg ()) in
  Alcotest.(check string) "identical stats" (pp_stats out1.E.stats)
    (pp_stats out4.E.stats);
  Alcotest.(check bool) "no violation at jobs=1" true
    (out1.E.first_violation = None);
  Alcotest.(check bool) "no violation at jobs=4" true
    (out4.E.first_violation = None);
  Alcotest.(check bool) "both complete" true
    (out1.E.complete && out4.E.complete);
  (* Verdict-level agreement with the plain single-tree search.  The
     partitioned run replays each subtree's prefix, so only
     [replayed_transitions] may differ (cache is off here). *)
  let seq = E.explore (bounded_cfg ()) in
  Alcotest.(check int) "schedules match sequential" seq.E.stats.E.schedules
    out1.E.stats.E.schedules;
  Alcotest.(check int) "transitions match sequential" seq.E.stats.E.transitions
    out1.E.stats.E.transitions;
  Alcotest.(check int) "sleep prunes match sequential"
    seq.E.stats.E.sleep_skips out1.E.stats.E.sleep_skips;
  Alcotest.(check int) "bound prunes match sequential"
    seq.E.stats.E.bound_skips out1.E.stats.E.bound_skips;
  Alcotest.(check int) "max depth matches sequential" seq.E.stats.E.max_depth
    out1.E.stats.E.max_depth

(* On the seeded bug, every jobs level must find the same first
   violation — decision-for-decision — and shrink it to the same
   counterexample the sequential search reports. *)
let test_jobs_identical_violation () =
  let cfg () =
    explore_config ~mk:(Sb_registers.Abd.make_broken ~quorum_slack:1)
      workload_2w1r
  in
  let seq = E.explore (cfg ()) in
  let out1 = P.explore ~jobs:1 (cfg ()) in
  let out4 = P.explore ~jobs:4 (cfg ()) in
  let decisions out name =
    match out.E.first_violation with
    | None -> Alcotest.failf "%s missed the seeded violation" name
    | Some viol -> viol.E.v_decisions
  in
  let d_seq = decisions seq "sequential"
  and d1 = decisions out1 "jobs=1"
  and d4 = decisions out4 "jobs=4" in
  Alcotest.(check bool) "jobs=1 finds the sequential violation" true
    (d1 = d_seq);
  Alcotest.(check bool) "jobs=4 finds the sequential violation" true
    (d4 = d_seq);
  Alcotest.(check bool) "violation counts agree" true
    (out1.E.stats.E.violations = out4.E.stats.E.violations);
  let shrunk1 = Shrink.shrink (cfg ()) d1 in
  let shrunk4 = Shrink.shrink (cfg ()) d4 in
  Alcotest.(check bool) "byte-identical shrunk counterexamples" true
    (shrunk1 = shrunk4);
  match Shrink.check_decisions (cfg ()) shrunk4 with
  | None -> Alcotest.fail "shrunk trace no longer violates on replay"
  | Some _ -> ()

(* Crash budgets multiply the branching at every level; the partition
   must still cover the space exactly once. *)
let test_jobs_identical_crashes () =
  let cfg () =
    explore_config ~crash_objs:1 ~crash_clients:1
      [| [ Trace.Write (v 1) ]; [ Trace.Read ] |]
  in
  let seq = E.explore (cfg ()) in
  let out1 = P.explore ~jobs:1 (cfg ()) in
  let out4 = P.explore ~jobs:4 (cfg ()) in
  Alcotest.(check string) "identical stats across jobs" (pp_stats out1.E.stats)
    (pp_stats out4.E.stats);
  Alcotest.(check int) "schedules match sequential" seq.E.stats.E.schedules
    out1.E.stats.E.schedules;
  Alcotest.(check int) "violations match sequential" seq.E.stats.E.violations
    out1.E.stats.E.violations

(* With the state cache on, per-subtree caches may prune less than the
   single-tree search — but the verdict and the jobs-level agreement
   must hold, and the paranoid Marshal cross-check must stay silent. *)
let test_jobs_identical_cached () =
  let cfg () = explore_config ~cache:true ~paranoid_key:true workload_1w1r in
  let out1 = P.explore ~jobs:1 (cfg ()) in
  let out4 = P.explore ~jobs:4 (cfg ()) in
  Alcotest.(check string) "identical stats across jobs" (pp_stats out1.E.stats)
    (pp_stats out4.E.stats);
  Alcotest.(check bool) "no violation" true (out1.E.first_violation = None);
  let seq = E.explore (cfg ()) in
  Alcotest.(check int) "violations match sequential" seq.E.stats.E.violations
    out1.E.stats.E.violations

(* jobs=0 resolves to the machine's domain count; still deterministic. *)
let test_jobs_auto () =
  let out0 = P.explore ~jobs:0 (explore_config workload_1w1r) in
  let out1 = P.explore ~jobs:1 (explore_config workload_1w1r) in
  Alcotest.(check string) "auto jobs matches jobs=1" (pp_stats out1.E.stats)
    (pp_stats out0.E.stats)

(* Configs the partition cannot honour fall back to the sequential
   search: a schedule cap must yield the sequential (capped) counts. *)
let test_capped_falls_back () =
  let cfg () =
    explore_config ~stop_on_violation:false workload_1w1r
  in
  let capped () = { (cfg ()) with E.max_schedules = 10 } in
  let seq = E.explore (capped ()) in
  let par = P.explore ~jobs:4 (capped ()) in
  Alcotest.(check string) "capped run is the sequential run"
    (pp_stats seq.E.stats) (pp_stats par.E.stats);
  Alcotest.(check bool) "capped run is incomplete" false par.E.complete

(* --- the pool itself ----------------------------------------------- *)

let test_pool_runs_each_once () =
  let n = 100 in
  let hits = Array.init n (fun _ -> Atomic.make 0) in
  Pool.run ~jobs:4 n (fun i -> Atomic.incr hits.(i));
  Array.iteri
    (fun i c ->
      Alcotest.(check int) (Printf.sprintf "task %d ran exactly once" i) 1
        (Atomic.get c))
    hits

let test_pool_propagates_exception () =
  match Pool.run ~jobs:4 8 (fun i -> if i = 5 then failwith "boom") with
  | () -> Alcotest.fail "pool swallowed a task exception"
  | exception Failure msg -> Alcotest.(check string) "original message" "boom" msg

let () =
  Alcotest.run "parallel"
    [
      ( "pexplore",
        [
          Alcotest.test_case "clean config: jobs=1 == jobs=4 == sequential"
            `Quick test_jobs_identical_clean;
          Alcotest.test_case "seeded bug: identical violation and shrink"
            `Quick test_jobs_identical_violation;
          Alcotest.test_case "crash budgets: identical totals" `Quick
            test_jobs_identical_crashes;
          Alcotest.test_case "state cache on: identical totals, paranoid key"
            `Quick test_jobs_identical_cached;
          Alcotest.test_case "jobs=0 resolves to machine default" `Quick
            test_jobs_auto;
          Alcotest.test_case "max_schedules falls back to sequential" `Quick
            test_capped_falls_back;
        ] );
      ( "pool",
        [
          Alcotest.test_case "every task runs exactly once" `Quick
            test_pool_runs_each_once;
          Alcotest.test_case "exceptions propagate" `Quick
            test_pool_propagates_exception;
        ] );
    ]
