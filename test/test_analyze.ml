(* Tests for Sb_analyze: the RMW-algebra certifier (nature table,
   independence matrix, counterexample replay), the gate checks shared
   with the CLI, and the source-level determinism lint with its fixture
   negative controls. *)

module U = Sb_analyze.Universe
module C = Sb_analyze.Certify
module L = Sb_analyze.Lint
module Rep = Sb_analyze.Report
module D = Sb_sim.Rmwdesc

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* One certification, shared: deterministic, and well under a second. *)
let cert = lazy (C.run ())

let universe = lazy (U.default ())

(* ------------------------------------------------------------------ *)
(* The certified nature table                                          *)
(* ------------------------------------------------------------------ *)

let test_covers_vocabulary () =
  let c = Lazy.force cert in
  Alcotest.(check int) "one entry per constructor" (List.length U.all_ctors)
    (List.length c.C.entries);
  List.iter
    (fun ct ->
      Alcotest.(check bool)
        (U.ctor_name ct ^ " present") true
        (List.exists (fun e -> U.equal_ctor e.C.en_ctor ct) c.C.entries))
    U.all_ctors

(* Satellite: the hand-maintained defaults must match the certified
   table exactly — a new constructor declared stronger than provable
   (or weaker than proved) fails here before any exploration trusts
   it. *)
let test_defaults_match_certified () =
  let c = Lazy.force cert in
  (match C.check_defaults c with
  | [] -> ()
  | (ctor, _, _) :: _ as ms ->
    Alcotest.failf "%d declared/certified mismatches, first: %s" (List.length ms)
      (U.ctor_name ctor));
  List.iter
    (fun e ->
      Alcotest.(check bool)
        (U.ctor_name e.C.en_ctor ^ " declared = certified")
        true
        (e.C.en_declared = e.C.en_certified))
    c.C.entries

let test_snapshot_readonly () =
  let c = Lazy.force cert in
  Alcotest.(check bool) "snapshot readonly" true
    (C.certified_nature c U.Snapshot = `Readonly)

(* The read/write base-object vocabulary: the blind overwrite is
   [`Mutating], and provably NOT merge-class — two concurrent overwrites
   do not commute (last delivery wins), which is exactly why nothing
   server-side can arbitrate between writers in the [Read_write] model
   and the emulations need disjoint cell groups.  The certifier must
   refute any merge claim with a concrete state counterexample. *)
let test_rw_write_not_a_merge () =
  let c = Lazy.force cert in
  Alcotest.(check bool) "rw-write mutating" true
    (C.certified_nature c U.Rw_write = `Mutating);
  match C.check_declaration c U.Rw_write ~claimed:`Merge with
  | Ok () -> Alcotest.fail "blind overwrite accepted as merge-class"
  | Error cx ->
    Alcotest.(check bool) "commutation counterexample" true
      (cx.C.cx_d2 <> None)

(* The negative control of the whole exercise: the seeded bug from PR 2
   declared [Lww_store] merge-class; the certifier must refute that
   claim statically, with a concrete counterexample. *)
let test_lww_merge_refuted () =
  let c = Lazy.force cert in
  match C.check_declaration c U.Lww_store ~claimed:`Merge with
  | Ok () -> Alcotest.fail "lww-store accepted as merge-class"
  | Error cx ->
    Alcotest.(check bool) "binary counterexample" true (cx.C.cx_d2 <> None)

let test_abd_merge_accepted () =
  let c = Lazy.force cert in
  match C.check_declaration c U.Abd_store ~claimed:`Merge with
  | Ok () -> ()
  | Error cx ->
    Alcotest.failf "abd-store rejected as merge-class: %s" cx.C.cx_detail

let test_explore_independence_derived () =
  let c = Lazy.force cert in
  match C.audit_explore_independence c with
  | [] -> ()
  | v :: _ as vs ->
    Alcotest.failf "%d DPOR independence violations, first: %s" (List.length vs) v

(* Documented analysis finding (docs/MODEL.md): adaptive-update is not
   unconditionally idempotent — a duplicated delivery can flip the
   distinct-writes saturation branch.  Only [`Merge] declarations
   require idempotence, so this is a pinned fact, not a failure; if the
   algorithm changes and this starts proving, the doc needs updating. *)
let test_adaptive_update_idempotence_refuted () =
  let c = Lazy.force cert in
  let e =
    List.find (fun e -> U.equal_ctor e.C.en_ctor U.Adaptive_update) c.C.entries
  in
  Alcotest.(check bool) "refuted" true (e.C.en_idempotent <> C.Proved)

(* ------------------------------------------------------------------ *)
(* Counterexample replay                                               *)
(* ------------------------------------------------------------------ *)

(* Literal structural equality, matching the certifier's notion (and the
   state cache's: fingerprints hash chunk lists as-is). *)
let equal_state (a : Sb_storage.Objstate.t) b = a = b
let equal_resp (a : D.resp) b = a = b

(* Every refutation in the matrix must replay outside the certifier:
   apply both orders at the counterexample state and observe the
   divergence directly through [Rmwdesc.apply]. *)
let test_refuted_pairs_replay () =
  let c = Lazy.force cert in
  let replayed = ref 0 in
  List.iter
    (fun ((a, b), v) ->
      match v with
      | C.Proved -> ()
      | C.Refuted cx ->
        let d1 = cx.C.cx_d1 in
        let d2 =
          match cx.C.cx_d2 with
          | Some d -> d
          | None -> Alcotest.failf "unary counterexample in the pair matrix"
        in
        let s = cx.C.cx_state in
        let s1, r1 = D.apply d1 s in
        let s12, r2 = D.apply d2 s1 in
        let s2, r2' = D.apply d2 s in
        let s21, r1' = D.apply d1 s2 in
        let diverges =
          (not (equal_state s12 s21))
          || (not (equal_resp r1 r1'))
          || not (equal_resp r2 r2')
        in
        incr replayed;
        if not diverges then
          Alcotest.failf "counterexample for %s x %s does not replay"
            (U.ctor_name a) (U.ctor_name b))
    c.C.pairs;
  Alcotest.(check bool) "matrix has refuted cells" true (!replayed > 0)

let test_refuted_idempotence_replays () =
  let c = Lazy.force cert in
  List.iter
    (fun e ->
      match e.C.en_idempotent with
      | C.Proved -> ()
      | C.Refuted cx ->
        let d = cx.C.cx_d1 in
        let s = cx.C.cx_state in
        let s1, _ = D.apply d s in
        let s2, _ = D.apply d s1 in
        if equal_state s1 s2 then
          Alcotest.failf "idempotence counterexample for %s does not replay"
            (U.ctor_name e.C.en_ctor))
    c.C.entries

(* ------------------------------------------------------------------ *)
(* QCheck cross-validation                                             *)
(* ------------------------------------------------------------------ *)

(* Enumerative verdicts vs independent random sampling over the same
   scope: a [Proved] commutation cell must commute at a randomly drawn
   state for randomly drawn members of the two families.  An
   enumeration bug (a state or description the nested loops skip) shows
   up here as a sampled divergence. *)
let test_proved_pairs_sampled =
  let prop (pair_idx, state_idx, i1, i2) =
    let c = Lazy.force cert in
    let u = Lazy.force universe in
    let proved = List.filter (fun (_, v) -> v = C.Proved) c.C.pairs in
    let (a, b), _ = List.nth proved (pair_idx mod List.length proved) in
    let fa = U.family u a and fb = U.family u b in
    let d1 = fa.(i1 mod Array.length fa) in
    let d2 = fb.(i2 mod Array.length fb) in
    let s = u.U.states.(state_idx mod Array.length u.U.states) in
    let s1, r1 = D.apply d1 s in
    let s12, r2 = D.apply d2 s1 in
    let s2, r2' = D.apply d2 s in
    let s21, r1' = D.apply d1 s2 in
    equal_state s12 s21 && equal_resp r1 r1' && equal_resp r2 r2'
  in
  qtest ~count:500 "proved cells commute at sampled states"
    QCheck2.Gen.(quad (int_bound 1000) (int_bound 10_000) (int_bound 1000) (int_bound 1000))
    prop

(* ------------------------------------------------------------------ *)
(* Gates (shared with the CLI)                                         *)
(* ------------------------------------------------------------------ *)

(* Satellite: the wire-codec exhaustiveness gate — every constructor of
   the closed vocabulary round-trips through Sb_service.Wire — runs in
   runtest through the same code the CI lint step executes. *)
let test_gates_ok () =
  let c = Lazy.force cert in
  List.iter
    (fun (g : Rep.gate) ->
      Alcotest.(check bool) (g.Rep.g_name ^ ": " ^ g.g_detail) true g.g_ok)
    (Rep.gates c)

let test_json_smoke () =
  let c = Lazy.force cert in
  let rp =
    L.lint_tree
      ~root:
        (if Sys.file_exists "lint_fixtures" then "lint_fixtures"
         else "test/lint_fixtures")
  in
  let s = Rep.json ~algebra:c ~lint:rp () in
  Alcotest.(check bool) "mentions algebra" true
    (String.length s > 100 && String.sub s 0 12 = {|{"algebra": |})

(* ------------------------------------------------------------------ *)
(* Lint: unit tests on inline sources                                  *)
(* ------------------------------------------------------------------ *)

let active_rules src =
  L.lint_source ~filename:"inline.ml" src
  |> List.filter L.active
  |> List.map (fun f -> L.rule_name f.L.f_rule)

let test_lint_flags_each_rule () =
  Alcotest.(check (list string)) "random" [ "nondet" ]
    (active_rules "let x = Random.bool ()");
  Alcotest.(check (list string)) "wall clock" [ "nondet" ]
    (active_rules "let x = Unix.gettimeofday ()");
  Alcotest.(check (list string)) "compare" [ "poly-compare" ]
    (active_rules "let f xs = List.sort compare xs");
  Alcotest.(check (list string)) "stdlib compare" [ "poly-compare" ]
    (active_rules "let f xs = List.sort Stdlib.compare xs");
  Alcotest.(check (list string)) "hash" [ "poly-compare" ]
    (active_rules "let f x = Hashtbl.hash x");
  Alcotest.(check (list string)) "marshal" [ "marshal" ]
    (active_rules "let f v = Marshal.to_string v []");
  Alcotest.(check (list string)) "fold" [ "hashtbl-order" ]
    (active_rules "let f t = Hashtbl.fold (fun k _ acc -> k :: acc) t []");
  Alcotest.(check (list string)) "catch-all on a tag" [ "wire-catchall" ]
    (active_rules "let f tag = match tag with 0 -> 1 | _ -> 2");
  Alcotest.(check (list string)) "catch-all on a version" [ "wire-catchall" ]
    (active_rules "let f v = match wire_version with 1 -> v | _ -> 0");
  Alcotest.(check (list string)) "binding arm not flagged" []
    (active_rules "let f tag = match tag with 0 -> 1 | n -> n + 1");
  Alcotest.(check (list string)) "catch-all on a plain ident not flagged" []
    (active_rules "let f xs = match xs with [] -> 0 | _ -> 1")

let test_lint_watched_equality () =
  Alcotest.(check (list string)) "= on watched annotation" [ "poly-compare" ]
    (active_rules "let f (a : Timestamp.t) (b : Timestamp.t) = a = b");
  Alcotest.(check (list string)) "= on plain ints not flagged" []
    (active_rules "let f (a : int) (b : int) = a = b");
  Alcotest.(check (list string)) "<> on desc" [ "poly-compare" ]
    (active_rules "let f (d : Rmwdesc.t) (d' : Rmwdesc.t) = d <> d'")

let test_lint_shadowed_compare () =
  Alcotest.(check (list string)) "local compare not flagged" []
    (active_rules "let compare a b = Int.compare a b\nlet f x y = compare x y")

let test_lint_pragma () =
  let src =
    "(* sb-lint: allow nondet — test reason *)\nlet x = Random.bool ()"
  in
  let fs = L.lint_source ~filename:"inline.ml" src in
  Alcotest.(check int) "one finding" 1 (List.length fs);
  let f = List.hd fs in
  Alcotest.(check bool) "suppressed" false (L.active f);
  Alcotest.(check (option string)) "reason recorded" (Some "test reason")
    f.L.f_allowed

let test_lint_pragma_wrong_rule () =
  let src =
    "(* sb-lint: allow marshal — wrong rule *)\nlet x = Random.bool ()"
  in
  Alcotest.(check (list string)) "still active" [ "nondet" ] (active_rules src)

let test_lint_rules_scoped () =
  Alcotest.(check bool) "protocol core gets nondet" true
    (List.mem L.Nondet (L.rules_for "lib/sim/runtime.ml"));
  Alcotest.(check bool) "service core gets nondet" true
    (List.mem L.Nondet (L.rules_for "lib/service/client_core.ml"));
  Alcotest.(check bool) "io engine exempt from nondet" false
    (List.mem L.Nondet (L.rules_for "lib/service/sdk.ml"));
  Alcotest.(check bool) "marshal applies everywhere" true
    (List.mem L.Marshal (L.rules_for "lib/experiments/figures.ml"));
  Alcotest.(check bool) "sanitizers get hashtbl-order" true
    (List.mem L.Hashtbl_order (L.rules_for "lib/sanitize/monitor.ml"));
  Alcotest.(check bool) "service gets wire-catchall" true
    (List.mem L.Wire_catchall (L.rules_for "lib/service/wire.ml"));
  Alcotest.(check bool) "protocol cores exempt from wire-catchall" false
    (List.mem L.Wire_catchall (L.rules_for "lib/sim/runtime.ml"))

(* ------------------------------------------------------------------ *)
(* Lint: fixture negative controls                                     *)
(* ------------------------------------------------------------------ *)

(* dune runtest runs with cwd = the staged test directory; dune exec
   from the project root. *)
let fixture_dir =
  if Sys.file_exists "lint_fixtures" then "lint_fixtures" else "test/lint_fixtures"

let fixture name = Filename.concat fixture_dir name

let test_fixture rule_name file ~want_active () =
  let rule = Option.get (L.rule_of_name rule_name) in
  match L.lint_file ~rules:[ rule ] (fixture file) with
  | Error e -> Alcotest.failf "%s: %s" file e
  | Ok fs ->
    let act = List.filter L.active fs in
    Alcotest.(check bool) (file ^ " has findings") true (fs <> []);
    if want_active then
      Alcotest.(check bool) (file ^ " has active findings") true (act <> [])
    else begin
      Alcotest.(check (list string)) (file ^ " all suppressed") []
        (List.map (fun f -> Printf.sprintf "%d" f.L.f_line) act);
      List.iter
        (fun f ->
          Alcotest.(check bool) "reason recorded" true (f.L.f_allowed <> None))
        fs
    end

let fixture_cases =
  List.concat_map
    (fun rule ->
      let rn = L.rule_name rule in
      let base = String.map (function '-' -> '_' | c -> c) rn in
      [
        Alcotest.test_case (rn ^ " bad fixture flagged") `Quick
          (test_fixture rn (base ^ "_bad.ml") ~want_active:true);
        Alcotest.test_case (rn ^ " pragma silences") `Quick
          (test_fixture rn (base ^ "_allowed.ml") ~want_active:false);
      ])
    L.all_rules

let () =
  Alcotest.run "analyze"
    [
      ( "certifier",
        [
          Alcotest.test_case "covers the vocabulary" `Quick test_covers_vocabulary;
          Alcotest.test_case "defaults match certified" `Quick
            test_defaults_match_certified;
          Alcotest.test_case "snapshot readonly" `Quick test_snapshot_readonly;
          Alcotest.test_case "rw-write not a merge" `Quick
            test_rw_write_not_a_merge;
          Alcotest.test_case "lww-as-merge refuted" `Quick test_lww_merge_refuted;
          Alcotest.test_case "abd-as-merge accepted" `Quick test_abd_merge_accepted;
          Alcotest.test_case "DPOR independence derived" `Quick
            test_explore_independence_derived;
          Alcotest.test_case "adaptive-update idempotence finding" `Quick
            test_adaptive_update_idempotence_refuted;
        ] );
      ( "counterexamples",
        [
          Alcotest.test_case "refuted pairs replay" `Quick test_refuted_pairs_replay;
          Alcotest.test_case "refuted idempotence replays" `Quick
            test_refuted_idempotence_replays;
          test_proved_pairs_sampled;
        ] );
      ( "gates",
        [
          Alcotest.test_case "all gates pass" `Quick test_gates_ok;
          Alcotest.test_case "json smoke" `Quick test_json_smoke;
        ] );
      ( "lint",
        [
          Alcotest.test_case "each rule fires" `Quick test_lint_flags_each_rule;
          Alcotest.test_case "watched equality" `Quick test_lint_watched_equality;
          Alcotest.test_case "shadowed compare" `Quick test_lint_shadowed_compare;
          Alcotest.test_case "pragma suppresses" `Quick test_lint_pragma;
          Alcotest.test_case "pragma rule must match" `Quick
            test_lint_pragma_wrong_rule;
          Alcotest.test_case "rule scoping" `Quick test_lint_rules_scoped;
        ] );
      ("fixtures", fixture_cases);
    ]
