(* Tests for the register emulations: sequential correctness, consistency
   under adversarial-free concurrency, storage invariants from the
   paper's lemmas, and crash tolerance. *)

module R = Sb_sim.Runtime
module Trace = Sb_sim.Trace
module Ts = Sb_storage.Timestamp
module Objstate = Sb_storage.Objstate
module Codec = Sb_codec.Codec
module Common = Sb_registers.Common

let value_bytes = 32
let d = 8 * value_bytes
let v i = Sb_util.Values.distinct ~value_bytes i
let v0 = Bytes.make value_bytes '\000'

let coded_cfg ~f ~k =
  let n = (2 * f) + k in
  { Common.n; f; codec = Codec.rs_vandermonde ~value_bytes ~k ~n }

let abd_cfg ~f =
  let n = (2 * f) + 1 in
  { Common.n; f; codec = Codec.replication ~value_bytes ~n }

let qtest ?(count = 40) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let run ?(seed = 1) ?policy ~algorithm ~(cfg : Common.config) workload =
  let policy = match policy with Some p -> p | None -> R.random_policy ~seed () in
  let w = R.create ~seed ~algorithm ~n:cfg.n ~f:cfg.f ~workload () in
  let outcome = R.run w policy in
  (w, outcome)

let history w = Sb_spec.History.of_trace ~initial:v0 (R.trace w)

let read_results w =
  List.filter_map
    (fun (_, kind, _, ret, res) ->
      match (kind, ret) with Trace.Read, Some _ -> Some res | _ -> None)
    (Trace.operations (R.trace w))

let is_ok = function Sb_spec.Regularity.Ok -> true | _ -> false

(* The four algorithms with their default configurations and the
   consistency level each promises. *)
let algorithms =
  [
    ("abd", Sb_registers.Abd.make (abd_cfg ~f:2), abd_cfg ~f:2, `Strong);
    ("abd-atomic", Sb_registers.Abd_atomic.make (abd_cfg ~f:2), abd_cfg ~f:2, `Strong);
    ("adaptive", Sb_registers.Adaptive.make (coded_cfg ~f:2 ~k:2), coded_cfg ~f:2 ~k:2, `Strong);
    ( "pure-ec",
      Sb_registers.Adaptive.make_unbounded (coded_cfg ~f:2 ~k:2),
      coded_cfg ~f:2 ~k:2, `Strong );
    ("safe", Sb_registers.Safe_register.make (coded_cfg ~f:2 ~k:2), coded_cfg ~f:2 ~k:2, `Safe);
  ]

(* ------------------------------------------------------------------ *)
(* Sequential behaviour (all algorithms)                               *)
(* ------------------------------------------------------------------ *)

let sequential_suite (name, algorithm, cfg, _) =
  let read_fresh () =
    let w, outcome = run ~algorithm ~cfg [| [ Trace.Read ] |] in
    Alcotest.(check bool) "quiescent" true outcome.R.quiescent;
    Alcotest.(check (list (option bytes))) "reads v0" [ Some v0 ] (read_results w)
  in
  let write_then_read () =
    (* The fifo policy serialises rounds, so the write strictly precedes
       the read. *)
    let w, _ =
      run ~policy:(R.fifo_policy ()) ~algorithm ~cfg
        [| [ Trace.Write (v 1); Trace.Read ] |]
    in
    Alcotest.(check (list (option bytes))) "reads the written value" [ Some (v 1) ]
      (read_results w)
  in
  let last_write_wins () =
    let w, _ =
      run ~policy:(R.fifo_policy ()) ~algorithm ~cfg
        [| [ Trace.Write (v 1); Trace.Write (v 2); Trace.Write (v 3); Trace.Read ] |]
    in
    Alcotest.(check (list (option bytes))) "last write wins" [ Some (v 3) ]
      (read_results w)
  in
  let all_ops_complete () =
    let workload =
      Sb_experiments.Workloads.writers_and_readers ~value_bytes ~writers:3
        ~writes_each:2 ~readers:2 ~reads_each:2
    in
    let w, outcome = run ~seed:5 ~algorithm ~cfg workload in
    Alcotest.(check bool) "quiescent" true outcome.R.quiescent;
    let ops = Trace.operations (R.trace w) in
    Alcotest.(check int) "all returned" (List.length ops)
      (List.length (List.filter (fun (_, _, _, ret, _) -> ret <> None) ops))
  in
  [
    Alcotest.test_case (name ^ ": fresh read is v0") `Quick read_fresh;
    Alcotest.test_case (name ^ ": write then read") `Quick write_then_read;
    Alcotest.test_case (name ^ ": last write wins") `Quick last_write_wins;
    Alcotest.test_case (name ^ ": all ops complete") `Quick all_ops_complete;
  ]

(* ------------------------------------------------------------------ *)
(* Consistency under concurrency                                       *)
(* ------------------------------------------------------------------ *)

let consistency_suite (name, algorithm, cfg, level) =
  let checker =
    match level with
    | `Strong -> Sb_spec.Regularity.check_strong
    | `Safe -> Sb_spec.Regularity.check_safe
  in
  let level_name = match level with `Strong -> "strongly regular" | `Safe -> "safe" in
  [
    qtest ~count:30
      (Printf.sprintf "%s: %s under random schedules" name level_name)
      QCheck2.Gen.(int_bound 100_000)
      (fun seed ->
        let workload =
          Sb_experiments.Workloads.writers_and_readers ~value_bytes ~writers:3
            ~writes_each:2 ~readers:3 ~reads_each:2
        in
        let w, outcome = run ~seed ~algorithm ~cfg workload in
        outcome.R.quiescent && is_ok (checker (history w)));
  ]

(* The safe register really is weaker than regular: under heavy write
   concurrency some schedule makes a read return v0 after a write
   completed. *)
let test_safe_weaker_than_regular () =
  let cfg = coded_cfg ~f:2 ~k:2 in
  let algorithm = Sb_registers.Safe_register.make cfg in
  let found = ref false in
  let seed = ref 0 in
  while (not !found) && !seed < 200 do
    incr seed;
    let workload =
      Sb_experiments.Workloads.writers_and_readers ~value_bytes ~writers:4
        ~writes_each:2 ~readers:2 ~reads_each:2
    in
    let w, _ = run ~seed:!seed ~algorithm ~cfg workload in
    if not (is_ok (Sb_spec.Regularity.check_weak (history w))) then begin
      found := true;
      (* Even then, safety must hold. *)
      Alcotest.(check bool) "still safe" true
        (is_ok (Sb_spec.Regularity.check_safe (history w)))
    end
  done;
  Alcotest.(check bool) "found a non-regular safe execution" true !found

(* ABD without read write-back is regular but not atomic.  Build the
   classic new/old inversion deterministically: a slow write lands its
   replica on one object only; reader 1's quorum includes that object
   (new value), then reader 2's quorum misses it (old value). *)
let test_abd_not_atomic_witness () =
  let cfg = abd_cfg ~f:2 in
  (* n = 5, quorum = 3 *)
  let algorithm = Sb_registers.Abd.make cfg in
  let workload =
    [| [ Trace.Write (v 1) ]; [ Trace.Read ]; [ Trace.Read ] |]
  in
  let w = R.create ~algorithm ~n:cfg.n ~f:cfg.f ~workload () in
  (* Deliver the pending RMWs of [client] on the given objects, then
     resume the client. *)
  let deliver_for ~client ~objs =
    List.iter
      (fun (p : R.pending_info) ->
        if p.p_client = client && List.mem p.p_obj objs then
          ignore (R.step w (R.Deliver p.ticket)))
      (R.deliverable w);
    ignore (R.step w (R.Step client))
  in
  ignore (R.step w (R.Step 0)); (* writer: round 1 triggered *)
  deliver_for ~client:0 ~objs:[ 0; 1; 2 ]; (* round 1 done; update triggered *)
  (* The update lands on object 0 only; the writer stays parked. *)
  List.iter
    (fun (p : R.pending_info) ->
      if p.p_client = 0 && p.p_obj = 0 then ignore (R.step w (R.Deliver p.ticket)))
    (R.deliverable w);
  (* Reader 1: quorum {0,1,2} includes the new replica. *)
  ignore (R.step w (R.Step 1));
  deliver_for ~client:1 ~objs:[ 0; 1; 2 ];
  (* Reader 2 starts after reader 1 returned; quorum {2,3,4} is stale. *)
  ignore (R.step w (R.Step 2));
  deliver_for ~client:2 ~objs:[ 2; 3; 4 ];
  let h = history w in
  Alcotest.(check (list (option bytes))) "new then old"
    [ Some (v 1); Some v0 ]
    (read_results w);
  Alcotest.(check bool) "not atomic" false (is_ok (Sb_spec.Regularity.check_atomic h));
  Alcotest.(check bool) "still strongly regular" true
    (is_ok (Sb_spec.Regularity.check_strong h))

(* The write-back variant defeats the same inversion schedule: reader
   2's quorum intersects reader 1's write-back quorum in object 2, so it
   must see the new value. *)
let test_abd_atomic_defeats_inversion () =
  let cfg = abd_cfg ~f:2 in
  let algorithm = Sb_registers.Abd_atomic.make cfg in
  let workload = [| [ Trace.Write (v 1) ]; [ Trace.Read ]; [ Trace.Read ] |] in
  let w = R.create ~algorithm ~n:cfg.n ~f:cfg.f ~workload () in
  let deliver_for ~client ~objs =
    List.iter
      (fun (p : R.pending_info) ->
        if p.p_client = client && List.mem p.p_obj objs then
          ignore (R.step w (R.Deliver p.ticket)))
      (R.deliverable w);
    ignore (R.step w (R.Step client))
  in
  ignore (R.step w (R.Step 0));
  deliver_for ~client:0 ~objs:[ 0; 1; 2 ];
  List.iter
    (fun (p : R.pending_info) ->
      if p.p_client = 0 && p.p_obj = 0 then ignore (R.step w (R.Deliver p.ticket)))
    (R.deliverable w);
  (* Reader 1: read round on {0,1,2}, then its write-back round on the
     same quorum. *)
  ignore (R.step w (R.Step 1));
  deliver_for ~client:1 ~objs:[ 0; 1; 2 ];
  deliver_for ~client:1 ~objs:[ 0; 1; 2 ];
  (* Reader 2 samples the "stale" quorum {2,3,4} — but object 2 now
     holds reader 1's write-back. *)
  ignore (R.step w (R.Step 2));
  deliver_for ~client:2 ~objs:[ 2; 3; 4 ];
  deliver_for ~client:2 ~objs:[ 2; 3; 4 ];
  Alcotest.(check (list (option bytes))) "both reads see the new value"
    [ Some (v 1); Some (v 1) ]
    (read_results w);
  Alcotest.(check bool) "atomic" true
    (is_ok (Sb_spec.Regularity.check_atomic (history w)))

let test_abd_atomic_random =
  qtest ~count:30 "abd-atomic: linearizable under random schedules"
    QCheck2.Gen.(int_bound 100_000)
    (fun seed ->
      let cfg = abd_cfg ~f:2 in
      let algorithm = Sb_registers.Abd_atomic.make cfg in
      (* Small workloads keep the linearizability search tractable. *)
      let workload =
        Sb_experiments.Workloads.writers_and_readers ~value_bytes ~writers:2
          ~writes_each:2 ~readers:2 ~reads_each:2
      in
      let w, outcome = run ~seed ~algorithm ~cfg workload in
      outcome.R.quiescent && is_ok (Sb_spec.Regularity.check_atomic (history w)))

(* ------------------------------------------------------------------ *)
(* Storage invariants (paper lemmas)                                   *)
(* ------------------------------------------------------------------ *)

(* Sample object states at every scheduling step. *)
let run_sampling ~algorithm ~(cfg : Common.config) ~seed workload check_world =
  let base = R.random_policy ~seed () in
  let policy w =
    check_world w;
    base w
  in
  let w, outcome = run ~seed ~policy ~algorithm ~cfg workload in
  check_world w;
  (w, outcome)

let test_adaptive_vp_bounded () =
  (* Lemma 5 + the update rule: Vp holds at most one piece per write and
     at most k distinct writes; Vf at most k pieces. *)
  let f = 2 and k = 3 in
  let cfg = coded_cfg ~f ~k in
  let algorithm = Sb_registers.Adaptive.make cfg in
  let piece_bits = Codec.block_bits cfg.codec 0 in
  let workload = Sb_experiments.Workloads.writers_only ~value_bytes ~c:6 ~writes_each:2 in
  let check w =
    for i = 0 to cfg.n - 1 do
      let st = R.obj_state w i in
      let vp_ts = List.map (fun (c : Sb_storage.Chunk.t) -> c.ts) st.Objstate.vp in
      Alcotest.(check bool) "one piece per write in Vp" true
        (List.length vp_ts = List.length (List.sort_uniq Ts.compare vp_ts));
      Alcotest.(check bool) "Vp bounded by k writes" true (List.length vp_ts <= k);
      Alcotest.(check bool) "Vf bounded by k pieces" true
        (List.length st.Objstate.vf <= k);
      Alcotest.(check bool) "object holds <= 2k pieces" true
        (Objstate.bits st <= 2 * k * piece_bits)
    done
  in
  List.iter
    (fun seed -> ignore (run_sampling ~algorithm ~cfg ~seed workload check))
    [ 1; 2; 3 ]

let test_adaptive_stored_ts_monotone () =
  (* Observation 3. *)
  let cfg = coded_cfg ~f:2 ~k:2 in
  let algorithm = Sb_registers.Adaptive.make cfg in
  let workload = Sb_experiments.Workloads.writers_only ~value_bytes ~c:4 ~writes_each:2 in
  let last = Array.make cfg.n Ts.zero in
  let check w =
    for i = 0 to cfg.n - 1 do
      let ts = (R.obj_state w i).Objstate.stored_ts in
      Alcotest.(check bool) "storedTS monotone" true Ts.(last.(i) <= ts);
      last.(i) <- ts
    done
  in
  ignore (run_sampling ~algorithm ~cfg ~seed:7 workload check)

let test_adaptive_gc_bound =
  qtest ~count:20 "adaptive: quiescent storage <= (2f+k)D/k"
    QCheck2.Gen.(int_bound 100_000)
    (fun seed ->
      let cfg = coded_cfg ~f:2 ~k:2 in
      let algorithm = Sb_registers.Adaptive.make cfg in
      let workload =
        Sb_experiments.Workloads.writers_only ~value_bytes ~c:3 ~writes_each:2
      in
      let w, outcome = run ~seed ~algorithm ~cfg workload in
      outcome.R.quiescent && R.storage_bits_objects w <= cfg.n * d / 2)

let test_abd_storage_constant () =
  let cfg = abd_cfg ~f:2 in
  let algorithm = Sb_registers.Abd.make cfg in
  let workload = Sb_experiments.Workloads.writers_only ~value_bytes ~c:5 ~writes_each:2 in
  let check w =
    Alcotest.(check int) "always n replicas" (cfg.n * d) (R.storage_bits_objects w)
  in
  ignore (run_sampling ~algorithm ~cfg ~seed:3 workload check)

let test_safe_storage_constant () =
  let f = 2 and k = 2 in
  let cfg = coded_cfg ~f ~k in
  let algorithm = Sb_registers.Safe_register.make cfg in
  let workload = Sb_experiments.Workloads.writers_only ~value_bytes ~c:5 ~writes_each:2 in
  let check w =
    Alcotest.(check int) "always nD/k" (cfg.n * d / k) (R.storage_bits_objects w)
  in
  ignore (run_sampling ~algorithm ~cfg ~seed:3 workload check)

let test_versioned_storage_bound =
  qtest ~count:25 "versioned: storage <= (delta+1) n pieces"
    QCheck2.Gen.(pair (int_bound 3) (int_bound 100_000))
    (fun (delta, seed) ->
      let cfg = coded_cfg ~f:2 ~k:2 in
      let algorithm = Sb_registers.Adaptive.make_versioned ~delta cfg in
      let workload = Sb_experiments.Workloads.writers_only ~value_bytes ~c:5 ~writes_each:2 in
      let w, outcome = run ~seed ~algorithm ~cfg workload in
      let piece = Codec.block_bits cfg.codec 0 in
      outcome.R.quiescent
      && R.max_bits_objects w <= (delta + 1) * cfg.n * piece)

let test_versioned_regular =
  qtest ~count:25 "versioned: strongly regular even with tight delta"
    QCheck2.Gen.(int_bound 100_000)
    (fun seed ->
      let cfg = coded_cfg ~f:2 ~k:2 in
      let algorithm = Sb_registers.Adaptive.make_versioned ~delta:0 cfg in
      let workload =
        Sb_experiments.Workloads.writers_and_readers ~value_bytes ~writers:4
          ~writes_each:2 ~readers:2 ~reads_each:2
      in
      let w, outcome = run ~seed ~algorithm ~cfg workload in
      outcome.R.quiescent && is_ok (Sb_spec.Regularity.check_strong (history w)))

let test_versioned_sequential () =
  let cfg = coded_cfg ~f:2 ~k:2 in
  let algorithm = Sb_registers.Adaptive.make_versioned ~delta:1 cfg in
  let w, _ =
    run ~policy:(R.fifo_policy ()) ~algorithm ~cfg
      [| [ Trace.Write (v 1); Trace.Write (v 2); Trace.Read ] |]
  in
  Alcotest.(check (list (option bytes))) "last write wins" [ Some (v 2) ]
    (read_results w);
  Alcotest.(check bool) "negative delta rejected" true
    (try ignore (Sb_registers.Adaptive.make_versioned ~delta:(-1) cfg); false
     with Invalid_argument _ -> true)

let test_pure_ec_exceeds_adaptive_cap () =
  (* The unbounded baseline must be able to exceed the adaptive cap of
     2k pieces per object — that is the whole point of the ablation. *)
  let f = 1 and k = 2 in
  let cfg = coded_cfg ~f ~k in
  let algorithm = Sb_registers.Adaptive.make_unbounded cfg in
  let c = 8 in
  let workload = Sb_experiments.Workloads.writers_only ~value_bytes ~c ~writes_each:2 in
  let best = ref 0 in
  List.iter
    (fun seed ->
      let w, _ = run ~seed ~algorithm ~cfg workload in
      best := max !best (R.max_bits_objects w))
    [ 1; 2; 3; 4; 5; 6 ];
  Alcotest.(check bool) "storage beyond replication level" true (!best > cfg.n * d)

(* The adaptive rule itself, step by step (Algorithm 3): an object whose
   Vp already holds pieces of k distinct writes stores the next write as
   a full replica in Vf, and only newer timestamps may overwrite it. *)
let test_adaptive_replica_switchover () =
  let f = 1 and k = 2 in
  let cfg = coded_cfg ~f ~k in
  (* n = 4 *)
  let algorithm = Sb_registers.Adaptive.make cfg in
  let workload =
    [| [ Trace.Write (v 1) ]; [ Trace.Write (v 2) ]; [ Trace.Write (v 3) ] |]
  in
  let w = R.create ~algorithm ~n:cfg.n ~f:cfg.f ~workload () in
  (* Let each writer read its timestamp round, then deliver only its
     update RMW on object 0 — accumulating state there. *)
  let advance_to_update client =
    ignore (R.step w (R.Step client));
    List.iter
      (fun (p : R.pending_info) ->
        if p.p_client = client then ignore (R.step w (R.Deliver p.ticket)))
      (R.deliverable w);
    ignore (R.step w (R.Step client));
    List.iter
      (fun (p : R.pending_info) ->
        if p.p_client = client && p.p_obj = 0 then ignore (R.step w (R.Deliver p.ticket)))
      (R.deliverable w)
  in
  (* Initially Vp holds v0's piece: 1 write. *)
  advance_to_update 0;
  let st = R.obj_state w 0 in
  Alcotest.(check int) "w1's piece joins v0 in Vp" 2 (List.length st.Objstate.vp);
  Alcotest.(check int) "Vf still empty" 0 (List.length st.Objstate.vf);
  (* Vp now holds k = 2 distinct writes: w2 must go to Vf as a replica. *)
  advance_to_update 1;
  let st = R.obj_state w 0 in
  Alcotest.(check int) "Vp saturated at k writes" 2 (List.length st.Objstate.vp);
  Alcotest.(check int) "w2 stored as a k-piece replica" k (List.length st.Objstate.vf);
  let vf_ts =
    match st.Objstate.vf with c :: _ -> c.Sb_storage.Chunk.ts | [] -> Ts.zero
  in
  (* w3 (higher timestamp) overwrites the replica. *)
  advance_to_update 2;
  let st = R.obj_state w 0 in
  Alcotest.(check int) "replica overwritten, still k pieces" k
    (List.length st.Objstate.vf);
  let vf_ts' =
    match st.Objstate.vf with c :: _ -> c.Sb_storage.Chunk.ts | [] -> Ts.zero
  in
  Alcotest.(check bool) "by a strictly newer timestamp" true Ts.(vf_ts < vf_ts')

(* Algorithm 3, line 33: updates at or below the object's storedTS are
   ignored — the commit barrier blocks stale writes. *)
let test_adaptive_stale_update_ignored () =
  let cfg = coded_cfg ~f:1 ~k:2 in
  let algorithm = Sb_registers.Adaptive.make cfg in
  let workload = [| [ Trace.Write (v 1) ]; [ Trace.Write (v 2) ] |] in
  let w = R.create ~algorithm ~n:cfg.n ~f:cfg.f ~workload () in
  (* w1 runs completely (all rounds delivered everywhere). *)
  ignore (R.step w (R.Step 0));
  List.iter (fun (p : R.pending_info) ->
      if p.p_client = 0 then ignore (R.step w (R.Deliver p.ticket)))
    (R.deliverable w);
  ignore (R.step w (R.Step 0));
  List.iter (fun (p : R.pending_info) ->
      if p.p_client = 0 then ignore (R.step w (R.Deliver p.ticket)))
    (R.deliverable w);
  ignore (R.step w (R.Step 0));
  (* w2 reads its timestamp BEFORE w1's GC lands anywhere... too late
     here; instead simulate the barrier directly: after w1's GC, every
     object's storedTS equals w1's timestamp, so replaying w1's own
     update (same ts) must be a no-op.  Trigger w2's rounds but deliver
     w1's GC first. *)
  List.iter (fun (p : R.pending_info) ->
      if p.p_client = 0 then ignore (R.step w (R.Deliver p.ticket)))
    (R.deliverable w);
  ignore (R.step w (R.Step 0));
  let before = Objstate.bits (R.obj_state w 0) in
  let ts_before = (R.obj_state w 0).Objstate.stored_ts in
  Alcotest.(check bool) "barrier raised past zero" true Ts.(Ts.zero < ts_before);
  (* w2 chose its timestamp in a fresh round-1 *after* w1's GC, so its
     update succeeds; but the state before it arrives is the GC'd
     single-piece state. *)
  Alcotest.(check int) "single piece after GC"
    (Codec.block_bits cfg.codec 0) before

(* ------------------------------------------------------------------ *)
(* Crash tolerance                                                     *)
(* ------------------------------------------------------------------ *)

let crash_suite (name, algorithm, cfg, level) =
  let checker =
    match level with
    | `Strong -> Sb_spec.Regularity.check_strong
    | `Safe -> Sb_spec.Regularity.check_safe
  in
  let crash_f_objects () =
    let workload =
      Sb_experiments.Workloads.writers_and_readers ~value_bytes ~writers:2
        ~writes_each:2 ~readers:2 ~reads_each:2
    in
    (* Crash f objects early in the run. *)
    let crashes = List.init cfg.Common.f (fun i -> (10 + (5 * i), i)) in
    let policy = R.random_policy ~crash_objs:crashes ~seed:13 () in
    let w, outcome = run ~policy ~algorithm ~cfg workload in
    Alcotest.(check bool) "quiescent despite f crashes" true outcome.R.quiescent;
    let ops = Trace.operations (R.trace w) in
    Alcotest.(check int) "all ops complete" (List.length ops)
      (List.length (List.filter (fun (_, _, _, ret, _) -> ret <> None) ops));
    Alcotest.(check bool) "consistency preserved" true (is_ok (checker (history w)))
  in
  [ Alcotest.test_case (name ^ ": tolerates f crashes") `Quick crash_f_objects ]

(* ------------------------------------------------------------------ *)
(* Configuration validation                                            *)
(* ------------------------------------------------------------------ *)

let test_config_validation () =
  let mk n f k = { Common.n; f; codec = Codec.rs_vandermonde ~value_bytes ~k ~n:(max n k) } in
  Alcotest.(check bool) "n < 2f+k rejected" true
    (try ignore (Sb_registers.Adaptive.make (mk 5 2 2)); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "rateless codec rejected" true
    (try
       ignore
         (Sb_registers.Adaptive.make
            { Common.n = 6; f = 2; codec = Codec.fountain ~value_bytes ~k:2 () });
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "ABD requires k=1" true
    (try ignore (Sb_registers.Abd.make (coded_cfg ~f:2 ~k:2)); false
     with Invalid_argument _ -> true)

let test_adaptive_k1_degenerates () =
  (* k = 1 makes every piece a full replica; the algorithm still works. *)
  let cfg = coded_cfg ~f:2 ~k:1 in
  let algorithm = Sb_registers.Adaptive.make cfg in
  let w, outcome =
    run ~policy:(R.fifo_policy ()) ~algorithm ~cfg
      [| [ Trace.Write (v 1); Trace.Read ] |]
  in
  Alcotest.(check bool) "quiescent" true outcome.R.quiescent;
  Alcotest.(check (list (option bytes))) "round trip" [ Some (v 1) ] (read_results w)

(* ------------------------------------------------------------------ *)
(* The rateless (fountain) register                                    *)
(* ------------------------------------------------------------------ *)

let rateless_cfg = coded_cfg ~f:2 ~k:3

let test_rateless_round_trip () =
  let algorithm = Sb_registers.Rateless.make ~codec_seed:7 rateless_cfg in
  let w, outcome =
    run ~policy:(R.fifo_policy ()) ~algorithm ~cfg:rateless_cfg
      [| [ Trace.Write (v 1); Trace.Read ] |]
  in
  Alcotest.(check bool) "quiescent" true outcome.R.quiescent;
  Alcotest.(check (list (option bytes))) "round trip" [ Some (v 1) ] (read_results w)

let test_rateless_fresh_reads_v0 () =
  let algorithm = Sb_registers.Rateless.make ~codec_seed:7 rateless_cfg in
  let w, _ = run ~algorithm ~cfg:rateless_cfg [| [ Trace.Read ] |] in
  Alcotest.(check (list (option bytes))) "v0" [ Some v0 ] (read_results w)

let test_rateless_regular =
  qtest ~count:20 "rateless: strongly regular under random schedules"
    QCheck2.Gen.(int_bound 100_000)
    (fun seed ->
      let algorithm = Sb_registers.Rateless.make ~codec_seed:7 rateless_cfg in
      let workload =
        Sb_experiments.Workloads.writers_and_readers ~value_bytes ~writers:3
          ~writes_each:2 ~readers:2 ~reads_each:2
      in
      let w, outcome = run ~seed ~algorithm ~cfg:rateless_cfg workload in
      outcome.R.quiescent && is_ok (Sb_spec.Regularity.check_strong (history w)))

let test_rateless_distinct_indices () =
  (* Every stored block carries a globally distinct block number, per
     the paper's rateless model (block domain = N). *)
  let algorithm = Sb_registers.Rateless.make ~codec_seed:7 rateless_cfg in
  let w, _ =
    run ~policy:(R.fifo_policy ()) ~algorithm ~cfg:rateless_cfg
      [| [ Trace.Write (v 1) ] |]
  in
  let all_blocks =
    List.concat_map
      (fun i -> Sb_storage.Objstate.blocks (R.obj_state w i))
      (List.init rateless_cfg.Common.n Fun.id)
  in
  let keyed =
    List.map (fun (b : Sb_storage.Block.t) -> (b.source, b.index)) all_blocks
  in
  Alcotest.(check int) "no duplicate (source, index) pairs"
    (List.length keyed)
    (List.length (List.sort_uniq compare keyed))

let test_rateless_crash_tolerant () =
  let algorithm = Sb_registers.Rateless.make ~codec_seed:7 rateless_cfg in
  let workload =
    Sb_experiments.Workloads.writers_and_readers ~value_bytes ~writers:2
      ~writes_each:2 ~readers:2 ~reads_each:2
  in
  let policy = R.random_policy ~crash_objs:[ (15, 0); (30, 4) ] ~seed:3 () in
  let w, outcome = run ~policy ~algorithm ~cfg:rateless_cfg workload in
  Alcotest.(check bool) "quiescent with f crashes" true outcome.R.quiescent;
  let ops = Trace.operations (R.trace w) in
  Alcotest.(check int) "all complete" (List.length ops)
    (List.length (List.filter (fun (_, _, _, ret, _) -> ret <> None) ops))

let test_adaptive_cauchy_codec () =
  (* The algorithms are codec-agnostic across MDS codes. *)
  let n = 6 and f = 2 and k = 2 in
  let cfg = { Common.n; f; codec = Codec.rs_cauchy ~value_bytes ~k ~n } in
  let algorithm = Sb_registers.Adaptive.make cfg in
  let w, _ =
    run ~policy:(R.fifo_policy ()) ~algorithm ~cfg
      [| [ Trace.Write (v 4); Trace.Read ] |]
  in
  Alcotest.(check (list (option bytes))) "cauchy round trip" [ Some (v 4) ] (read_results w)

(* ------------------------------------------------------------------ *)
(* Scale: wide configurations and large values                         *)
(* ------------------------------------------------------------------ *)

let test_wide_config_gf16 () =
  (* 300 simulated storage nodes force the GF(2^16) Reed-Solomon code
     (n > 256). *)
  let f = 142 and k = 16 in
  let n = (2 * f) + k in
  let vb = 64 in
  let cfg = { Common.n; f; codec = Codec.rs_vandermonde16 ~value_bytes:vb ~k ~n } in
  let algorithm = Sb_registers.Adaptive.make cfg in
  let value = Sb_util.Values.distinct ~value_bytes:vb 3 in
  let w, outcome =
    run ~policy:(R.fifo_policy ()) ~algorithm ~cfg
      [| [ Trace.Write value; Trace.Read ] |]
  in
  Alcotest.(check bool) "quiescent at n=300" true outcome.R.quiescent;
  Alcotest.(check (list (option bytes))) "round trip" [ Some value ] (read_results w);
  (* Quiescent storage: one piece per object. *)
  Alcotest.(check bool) "storage = n pieces" true
    (R.storage_bits_objects w <= n * Codec.block_bits cfg.codec 0)

let test_large_values () =
  let vb = 4096 in
  let f = 2 and k = 4 in
  let n = (2 * f) + k in
  let cfg = { Common.n; f; codec = Codec.rs_cauchy ~value_bytes:vb ~k ~n } in
  let algorithm = Sb_registers.Adaptive.make cfg in
  let value = Sb_util.Values.distinct ~value_bytes:vb 1 in
  let w, _ =
    run ~policy:(R.fifo_policy ()) ~algorithm ~cfg [| [ Trace.Write value; Trace.Read ] |]
  in
  Alcotest.(check (list (option bytes))) "4 KiB round trip" [ Some value ]
    (read_results w)

(* ------------------------------------------------------------------ *)
(* Base-object models: rw and Byzantine emulations                     *)
(* ------------------------------------------------------------------ *)

module Model = Sb_baseobj.Model

let rw_cfg ~writers ~f =
  let n = writers * ((2 * f) + 1) in
  { Common.n; f; codec = Codec.replication ~value_bytes ~n }

let byz_cfg ~f ~b =
  let n = (2 * f) + (2 * b) + 1 in
  { Common.n; f; codec = Codec.replication ~value_bytes ~n }

let run_model ?(seed = 1) ?policy ~base_model ?byz ~algorithm
    ~(cfg : Common.config) workload =
  let policy = match policy with Some p -> p | None -> R.random_policy ~seed () in
  let w =
    R.create ~seed ~base_model ?byz ~algorithm ~n:cfg.n ~f:cfg.f ~workload ()
  in
  let outcome = R.run w policy in
  (w, outcome)

let test_rw_regular_sequential () =
  let cfg = rw_cfg ~writers:1 ~f:1 in
  let algorithm = Sb_registers.Rw_replica.make cfg in
  let w, outcome =
    run_model ~policy:(R.fifo_policy ()) ~base_model:Model.Read_write
      ~algorithm ~cfg
      [| [ Trace.Write (v 1); Trace.Write (v 2); Trace.Read ] |]
  in
  Alcotest.(check bool) "quiescent" true outcome.R.quiescent;
  Alcotest.(check (list (option bytes))) "last write wins" [ Some (v 2) ]
    (read_results w)

let test_rw_regular_floor_exact () =
  (* The Chockler-Spiegelman floor, to the bit: at quiescence each
     writer group holds exactly f+1 full copies; everything else is a
     metadata stub. *)
  List.iter
    (fun (writers, f) ->
      let cfg = rw_cfg ~writers ~f in
      let algorithm = Sb_registers.Rw_replica.make ~writers cfg in
      let workload =
        Array.init (writers + 1) (fun i ->
            if i < writers then [ Trace.Write (v (i + 1)); Trace.Write (v (i + 7)) ]
            else [ Trace.Read; Trace.Read ])
      in
      List.iter
        (fun seed ->
          let w, outcome =
            run_model ~seed ~base_model:Model.Read_write ~algorithm ~cfg
              workload
          in
          Alcotest.(check bool) "quiescent" true outcome.R.quiescent;
          Alcotest.(check int)
            (Printf.sprintf "writers=%d f=%d seed=%d: exactly writers*(f+1)*D live bits"
               writers f seed)
            (writers * (f + 1) * d)
            (R.storage_bits_objects w))
        [ 1; 2; 3 ])
    [ (1, 1); (1, 2); (2, 1); (3, 1) ]

let test_rw_regular_strong =
  qtest ~count:30 "rw-regular: strongly regular under random schedules"
    QCheck2.Gen.(int_bound 100_000)
    (fun seed ->
      let writers = 2 and f = 1 in
      let cfg = rw_cfg ~writers ~f in
      let algorithm = Sb_registers.Rw_replica.make ~writers cfg in
      let workload =
        Sb_experiments.Workloads.writers_and_readers ~value_bytes ~writers
          ~writes_each:2 ~readers:2 ~reads_each:2
      in
      let w, outcome =
        run_model ~seed ~base_model:Model.Read_write ~algorithm ~cfg workload
      in
      outcome.R.quiescent
      && is_ok (Sb_spec.Regularity.check_strong (history w)))

let test_rw_regular_crash_tolerant () =
  let writers = 2 and f = 1 in
  let cfg = rw_cfg ~writers ~f in
  let algorithm = Sb_registers.Rw_replica.make ~writers cfg in
  let workload =
    Sb_experiments.Workloads.writers_and_readers ~value_bytes ~writers
      ~writes_each:2 ~readers:2 ~reads_each:2
  in
  (* One crash per writer group would exceed f; crash f = 1 object. *)
  let policy = R.random_policy ~crash_objs:[ (12, 0) ] ~seed:4 () in
  let w, outcome =
    run_model ~policy ~base_model:Model.Read_write ~algorithm ~cfg workload
  in
  Alcotest.(check bool) "quiescent with f crashes" true outcome.R.quiescent;
  Alcotest.(check bool) "strongly regular" true
    (is_ok (Sb_spec.Regularity.check_strong (history w)))

let test_rw_safe_storage () =
  (* The coded escape hatch: (2f+k) * D/k quiescent bits, strictly below
     the (f+1) * D regular floor for k > 2. *)
  let f = 1 and k = 4 in
  let cfg = coded_cfg ~f ~k in
  let algorithm = Sb_registers.Rw_replica.make_safe cfg in
  let w, outcome =
    run_model ~policy:(R.fifo_policy ()) ~base_model:Model.Read_write
      ~algorithm ~cfg
      [| [ Trace.Write (v 1); Trace.Write (v 2) ]; [ Trace.Read ] |]
  in
  Alcotest.(check bool) "quiescent" true outcome.R.quiescent;
  Alcotest.(check int) "(2f+k)D/k quiescent bits"
    (((2 * f) + k) * d / k)
    (R.storage_bits_objects w);
  Alcotest.(check bool) "below the regular floor" true
    (R.storage_bits_objects w < (f + 1) * d);
  Alcotest.(check bool) "safe" true
    (is_ok (Sb_spec.Regularity.check_safe (history w)))

let test_rw_rejects_general_rmw () =
  (* A merge-class register over rw base objects must die with the
     typed model error, not an assert: the Read_write model gates every
     trigger on the op class. *)
  let cfg = abd_cfg ~f:1 in
  let algorithm = Sb_registers.Abd.make cfg in
  match
    run_model ~base_model:Model.Read_write ~algorithm ~cfg
      [| [ Trace.Write (v 1) ] |]
  with
  | exception Model.Error (Model.Op_not_supported { cls = Model.General; _ }) ->
    ()
  | exception e ->
    Alcotest.failf "expected Op_not_supported, got %s" (Printexc.to_string e)
  | _ -> Alcotest.fail "abd over rw base objects was not rejected"

let byz_swmr_workload =
  [| [ Trace.Write (v 1); Trace.Write (v 2) ];
     [ Trace.Read; Trace.Read ];
     [ Trace.Read ];
  |]

let test_byz_masks_liars =
  qtest ~count:30 "byz-regular: b <= f liars masked (all behaviours)"
    QCheck2.Gen.(pair (int_bound 100_000) (int_bound 2))
    (fun (seed, which) ->
      let behaviour = List.nth Sb_adversary.Byz.all_behaviours which in
      let f = 1 and b = 1 in
      let cfg = byz_cfg ~f ~b in
      let algorithm = Sb_registers.Byz_regular.make ~budget:b cfg in
      let byz = Sb_adversary.Byz.policy ~seed ~n:cfg.Common.n ~budget:b behaviour in
      let w, outcome =
        run_model ~seed ~base_model:(Model.Byzantine { budget = b }) ~byz
          ~algorithm ~cfg byz_swmr_workload
      in
      outcome.R.quiescent
      && is_ok (Sb_spec.Regularity.check_strong (history w)))

let test_byz_budget_zero_is_abd_like () =
  let f = 1 in
  let cfg = byz_cfg ~f ~b:0 in
  let algorithm = Sb_registers.Byz_regular.make ~budget:0 cfg in
  let w, outcome =
    run_model ~policy:(R.fifo_policy ())
      ~base_model:(Model.Byzantine { budget = 0 }) ~algorithm ~cfg
      [| [ Trace.Write (v 1); Trace.Read ] |]
  in
  Alcotest.(check bool) "quiescent" true outcome.R.quiescent;
  Alcotest.(check (list (option bytes))) "round trip" [ Some (v 1) ]
    (read_results w)

let test_byz_over_budget_refuted () =
  (* The mechanism/policy split: the runtime happily runs an over-budget
     adversary (f+1 liars against a budget-f register), and equivocating
     liars then defeat the b+1 masking quorum on some schedule — the
     negative control behind the Integrated-Bounds collapse. *)
  let f = 1 and b = 1 in
  let cfg = byz_cfg ~f ~b in
  let algorithm = Sb_registers.Byz_regular.make ~budget:b cfg in
  let broken =
    List.exists
      (fun seed ->
        let byz =
          Sb_adversary.Byz.policy ~seed ~n:cfg.Common.n ~budget:(b + 1)
            Sb_adversary.Byz.Split_brain
        in
        let w, _ =
          run_model ~seed ~base_model:(Model.Byzantine { budget = b + 1 })
            ~byz ~algorithm ~cfg byz_swmr_workload
        in
        not (is_ok (Sb_spec.Regularity.check_strong (history w))))
      (List.init 30 succ)
  in
  Alcotest.(check bool) "b+1 equivocating liars break regularity" true broken

let base_model_suite =
  [
    Alcotest.test_case "rw-regular sequential" `Quick test_rw_regular_sequential;
    Alcotest.test_case "rw-regular (f+1)D floor exact" `Quick
      test_rw_regular_floor_exact;
    test_rw_regular_strong;
    Alcotest.test_case "rw-regular crash tolerant" `Quick
      test_rw_regular_crash_tolerant;
    Alcotest.test_case "rw-safe coded storage" `Quick test_rw_safe_storage;
    Alcotest.test_case "rw rejects general RMW" `Quick test_rw_rejects_general_rmw;
    test_byz_masks_liars;
    Alcotest.test_case "byz budget 0 round trip" `Quick
      test_byz_budget_zero_is_abd_like;
    Alcotest.test_case "byz over-budget refuted" `Quick
      test_byz_over_budget_refuted;
  ]

let () =
  Alcotest.run "registers"
    [
      ("sequential", List.concat_map sequential_suite algorithms);
      ( "consistency",
        List.concat_map consistency_suite algorithms
        @ [
            Alcotest.test_case "safe register weaker than regular" `Slow
              test_safe_weaker_than_regular;
            Alcotest.test_case "abd not atomic (witness)" `Slow test_abd_not_atomic_witness;
            Alcotest.test_case "abd-atomic defeats inversion" `Quick
              test_abd_atomic_defeats_inversion;
            test_abd_atomic_random;
          ] );
      ( "storage",
        [
          Alcotest.test_case "adaptive Vp/Vf bounded" `Quick test_adaptive_vp_bounded;
          Alcotest.test_case "adaptive storedTS monotone" `Quick
            test_adaptive_stored_ts_monotone;
          Alcotest.test_case "replica switchover" `Quick test_adaptive_replica_switchover;
          Alcotest.test_case "stale update ignored" `Quick
            test_adaptive_stale_update_ignored;
          test_adaptive_gc_bound;
          test_versioned_storage_bound;
          test_versioned_regular;
          Alcotest.test_case "versioned sequential" `Quick test_versioned_sequential;
          Alcotest.test_case "abd constant" `Quick test_abd_storage_constant;
          Alcotest.test_case "safe constant" `Quick test_safe_storage_constant;
          Alcotest.test_case "pure-ec exceeds cap" `Quick test_pure_ec_exceeds_adaptive_cap;
        ] );
      ("crashes", List.concat_map crash_suite algorithms);
      ("base-models", base_model_suite);
      ( "config",
        [
          Alcotest.test_case "validation" `Quick test_config_validation;
          Alcotest.test_case "k=1 degenerates to replication" `Quick
            test_adaptive_k1_degenerates;
          Alcotest.test_case "cauchy codec" `Quick test_adaptive_cauchy_codec;
        ] );
      ( "scale",
        [
          Alcotest.test_case "300 nodes over GF(2^16)" `Slow test_wide_config_gf16;
          Alcotest.test_case "4 KiB values" `Quick test_large_values;
        ] );
      ( "rateless",
        [
          Alcotest.test_case "round trip" `Quick test_rateless_round_trip;
          Alcotest.test_case "fresh read v0" `Quick test_rateless_fresh_reads_v0;
          test_rateless_regular;
          Alcotest.test_case "distinct block numbers" `Quick test_rateless_distinct_indices;
          Alcotest.test_case "crash tolerant" `Quick test_rateless_crash_tolerant;
        ] );
    ]
