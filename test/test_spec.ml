(* Tests for the consistency checkers, on hand-built histories.

   The scenarios walk the semantic hierarchy the paper relies on:
   atomicity > strong regularity (MWRegWO) > weak regularity (MWRegWeak)
   > strong safety, with counterexamples separating each level. *)

module H = Sb_spec.History
module Reg = Sb_spec.Regularity

let value_bytes = 8
let v0 = Bytes.make value_bytes '\000'
let va i = Sb_util.Values.distinct ~value_bytes i

let w op ~inv ~ret value = { H.w_op = op; value; w_inv = inv; w_ret = ret }
let r op ~inv ~ret result = { H.r_op = op; result; r_inv = inv; r_ret = ret }
let history ~writes ~reads = H.make ~initial:v0 ~writes ~reads

let check name verdict expected_ok =
  match (verdict, expected_ok) with
  | Reg.Ok, true | Reg.Violation _, false -> ()
  | Reg.Ok, false -> Alcotest.failf "%s: expected a violation, got ok" name
  | Reg.Violation cx, true ->
    Alcotest.failf "%s: unexpected violation: %s" name (Reg.to_string cx)

(* ------------------------------------------------------------------ *)
(* Weak regularity                                                     *)
(* ------------------------------------------------------------------ *)

let test_weak_sequential () =
  let h =
    history
      ~writes:[ w 1 ~inv:0 ~ret:(Some 10) (va 1) ]
      ~reads:[ r 2 ~inv:20 ~ret:(Some 30) (Some (va 1)) ]
  in
  check "sequential read" (Reg.check_weak h) true

let test_weak_initial_ok () =
  let h =
    history ~writes:[] ~reads:[ r 1 ~inv:0 ~ret:(Some 5) (Some v0) ]
  in
  check "v0 with no writes" (Reg.check_weak h) true

let test_weak_initial_stale () =
  let h =
    history
      ~writes:[ w 1 ~inv:0 ~ret:(Some 10) (va 1) ]
      ~reads:[ r 2 ~inv:20 ~ret:(Some 30) (Some v0) ]
  in
  check "v0 after a completed write" (Reg.check_weak h) false

let test_weak_initial_concurrent () =
  let h =
    history
      ~writes:[ w 1 ~inv:0 ~ret:(Some 30) (va 1) ]
      ~reads:[ r 2 ~inv:10 ~ret:(Some 20) (Some v0) ]
  in
  check "v0 during a concurrent write" (Reg.check_weak h) true

let test_weak_overwritten () =
  let h =
    history
      ~writes:[ w 1 ~inv:0 ~ret:(Some 10) (va 1); w 2 ~inv:20 ~ret:(Some 30) (va 2) ]
      ~reads:[ r 3 ~inv:40 ~ret:(Some 50) (Some (va 1)) ]
  in
  check "overwritten value returned" (Reg.check_weak h) false

let test_weak_concurrent_write_returned () =
  let h =
    history
      ~writes:[ w 1 ~inv:0 ~ret:(Some 10) (va 1); w 2 ~inv:15 ~ret:(Some 50) (va 2) ]
      ~reads:[ r 3 ~inv:20 ~ret:(Some 30) (Some (va 2)) ]
  in
  check "concurrent write's value" (Reg.check_weak h) true

let test_weak_future_write () =
  let h =
    history
      ~writes:[ w 1 ~inv:40 ~ret:(Some 50) (va 1) ]
      ~reads:[ r 2 ~inv:0 ~ret:(Some 10) (Some (va 1)) ]
  in
  check "value from the future" (Reg.check_weak h) false

let test_weak_unwritten_value () =
  let h =
    history ~writes:[] ~reads:[ r 1 ~inv:0 ~ret:(Some 10) (Some (va 9)) ]
  in
  check "never-written value" (Reg.check_weak h) false

let test_weak_bottom () =
  let h = history ~writes:[] ~reads:[ r 1 ~inv:0 ~ret:(Some 10) None ] in
  check "bottom result" (Reg.check_weak h) false

let test_weak_outstanding_write_returned () =
  let h =
    history
      ~writes:[ w 1 ~inv:0 ~ret:None (va 1) ]
      ~reads:[ r 2 ~inv:10 ~ret:(Some 20) (Some (va 1)) ]
  in
  check "outstanding write's value" (Reg.check_weak h) true

let test_weak_outstanding_read_ignored () =
  (* Reads that never returned are not constrained. *)
  let h =
    history
      ~writes:[ w 1 ~inv:0 ~ret:(Some 10) (va 1) ]
      ~reads:[ r 2 ~inv:20 ~ret:None None ]
  in
  check "outstanding read" (Reg.check_weak h) true

(* Weak regularity is per-read: conflicting reads are fine. *)
let inversion_history () =
  history
    ~writes:[ w 1 ~inv:0 ~ret:(Some 10) (va 1); w 2 ~inv:5 ~ret:(Some 15) (va 2) ]
    ~reads:
      [
        r 3 ~inv:20 ~ret:(Some 30) (Some (va 1));
        r 4 ~inv:35 ~ret:(Some 45) (Some (va 2));
      ]

let test_weak_allows_inversion () =
  check "write-order disagreement is weakly fine" (Reg.check_weak (inversion_history ())) true

(* ------------------------------------------------------------------ *)
(* Strong regularity                                                   *)
(* ------------------------------------------------------------------ *)

let test_strong_rejects_inversion () =
  (* R3 forces W2 <= W1 in the common order, R4 forces W1 <= W2; with
     both writes completed before both reads this is cyclic. *)
  let h =
    history
      ~writes:[ w 1 ~inv:0 ~ret:(Some 10) (va 1); w 2 ~inv:5 ~ret:(Some 15) (va 2) ]
      ~reads:
        [
          r 3 ~inv:20 ~ret:(Some 30) (Some (va 1));
          r 4 ~inv:35 ~ret:(Some 45) (Some (va 2));
        ]
  in
  check "strong rejects order disagreement" (Reg.check_strong h) false;
  check "weak accepts it" (Reg.check_weak h) true

let test_strong_sequential () =
  let h =
    history
      ~writes:[ w 1 ~inv:0 ~ret:(Some 10) (va 1); w 2 ~inv:20 ~ret:(Some 30) (va 2) ]
      ~reads:
        [
          r 3 ~inv:12 ~ret:(Some 15) (Some (va 1));
          r 4 ~inv:40 ~ret:(Some 50) (Some (va 2));
        ]
  in
  check "sequential strongly regular" (Reg.check_strong h) true

let test_strong_concurrent_agreeing () =
  (* Two concurrent writes; both reads agree the order is W1 then W2. *)
  let h =
    history
      ~writes:[ w 1 ~inv:0 ~ret:(Some 20) (va 1); w 2 ~inv:5 ~ret:(Some 25) (va 2) ]
      ~reads:
        [
          r 3 ~inv:30 ~ret:(Some 35) (Some (va 2));
          r 4 ~inv:40 ~ret:(Some 45) (Some (va 2));
        ]
  in
  check "agreeing reads" (Reg.check_strong h) true

let test_strong_real_time_write_order () =
  (* The common write order must extend real-time precedence: a read
     returning a write overwritten by a later (non-concurrent) write is
     rejected even if it is the only read. *)
  let h =
    history
      ~writes:[ w 1 ~inv:0 ~ret:(Some 10) (va 1); w 2 ~inv:20 ~ret:(Some 30) (va 2) ]
      ~reads:[ r 3 ~inv:40 ~ret:(Some 50) (Some (va 1)) ]
  in
  check "real-time write order enforced" (Reg.check_strong h) false

let test_strong_new_old_inversion_allowed () =
  (* Regularity (unlike atomicity) permits new/old inversion against an
     outstanding write. *)
  let h =
    history
      ~writes:[ w 1 ~inv:0 ~ret:None (va 1) ]
      ~reads:
        [
          r 2 ~inv:10 ~ret:(Some 20) (Some (va 1));
          r 3 ~inv:30 ~ret:(Some 40) (Some v0);
        ]
  in
  check "new/old inversion strongly regular" (Reg.check_strong h) true;
  check "but not atomic" (Reg.check_atomic h) false

(* ------------------------------------------------------------------ *)
(* Strong safety                                                       *)
(* ------------------------------------------------------------------ *)

let test_safe_concurrent_anything () =
  (* A read concurrent with a write may return any (attributable or not)
     non-bottom value under strong safety — here an unwritten one. *)
  let h =
    history
      ~writes:[ w 1 ~inv:0 ~ret:(Some 30) (va 1) ]
      ~reads:[ r 2 ~inv:10 ~ret:(Some 20) (Some (va 7)) ]
  in
  check "concurrent read unconstrained" (Reg.check_safe h) true;
  check "weak still rejects it" (Reg.check_weak h) false

let test_safe_quiescent_constrained () =
  let h =
    history
      ~writes:[ w 1 ~inv:0 ~ret:(Some 10) (va 1); w 2 ~inv:20 ~ret:(Some 30) (va 2) ]
      ~reads:[ r 3 ~inv:40 ~ret:(Some 50) (Some (va 1)) ]
  in
  check "quiescent read must see last write" (Reg.check_safe h) false

let test_safe_quiescent_ok () =
  let h =
    history
      ~writes:[ w 1 ~inv:0 ~ret:(Some 10) (va 1) ]
      ~reads:[ r 2 ~inv:20 ~ret:(Some 30) (Some (va 1)) ]
  in
  check "quiescent read of last write" (Reg.check_safe h) true

let test_safe_v0_of_safe_register () =
  (* The Appendix-E register returns v0 under concurrency: safe, not
     regular, when a write completed before the read. *)
  let h =
    history
      ~writes:
        [ w 1 ~inv:0 ~ret:(Some 10) (va 1); w 2 ~inv:15 ~ret:(Some 40) (va 2) ]
      ~reads:[ r 3 ~inv:20 ~ret:(Some 30) (Some v0) ]
  in
  check "safe allows v0 under concurrency" (Reg.check_safe h) true;
  check "weak regularity does not" (Reg.check_weak h) false

let test_safe_bottom_rejected () =
  let h =
    history
      ~writes:[ w 1 ~inv:0 ~ret:(Some 30) (va 1) ]
      ~reads:[ r 2 ~inv:10 ~ret:(Some 20) None ]
  in
  check "bottom rejected even under concurrency" (Reg.check_safe h) false

(* ------------------------------------------------------------------ *)
(* Atomicity                                                           *)
(* ------------------------------------------------------------------ *)

let test_atomic_sequential () =
  let h =
    history
      ~writes:[ w 1 ~inv:0 ~ret:(Some 10) (va 1); w 2 ~inv:20 ~ret:(Some 30) (va 2) ]
      ~reads:
        [
          r 3 ~inv:12 ~ret:(Some 15) (Some (va 1));
          r 4 ~inv:40 ~ret:(Some 50) (Some (va 2));
        ]
  in
  check "sequential atomic" (Reg.check_atomic h) true

let test_atomic_initial () =
  let h = history ~writes:[] ~reads:[ r 1 ~inv:0 ~ret:(Some 5) (Some v0) ] in
  check "v0 atomic" (Reg.check_atomic h) true

let test_atomic_concurrent_flexible () =
  (* A read overlapping a write may see old or new value. *)
  let old_h =
    history
      ~writes:[ w 1 ~inv:0 ~ret:(Some 30) (va 1) ]
      ~reads:[ r 2 ~inv:10 ~ret:(Some 20) (Some v0) ]
  in
  let new_h =
    history
      ~writes:[ w 1 ~inv:0 ~ret:(Some 30) (va 1) ]
      ~reads:[ r 2 ~inv:10 ~ret:(Some 20) (Some (va 1)) ]
  in
  check "sees old value" (Reg.check_atomic old_h) true;
  check "sees new value" (Reg.check_atomic new_h) true

let test_atomic_inversion_rejected () =
  (* R3 then R4 read v2 then v1 with both writes completed: the classic
     non-linearizable inversion. *)
  let h =
    history
      ~writes:[ w 1 ~inv:0 ~ret:(Some 10) (va 1); w 2 ~inv:5 ~ret:(Some 15) (va 2) ]
      ~reads:
        [
          r 3 ~inv:20 ~ret:(Some 25) (Some (va 2));
          r 4 ~inv:30 ~ret:(Some 35) (Some (va 1));
        ]
  in
  check "inversion not atomic" (Reg.check_atomic h) false;
  (* ...but it is weakly regular: each read alone is fine. *)
  check "inversion weakly regular" (Reg.check_weak h) true

let test_atomic_outstanding_drop () =
  (* An outstanding write may be linearised or dropped; reading v0 after
     it is fine only if it is dropped, and then no read may see it. *)
  let h =
    history
      ~writes:[ w 1 ~inv:0 ~ret:None (va 1) ]
      ~reads:[ r 2 ~inv:10 ~ret:(Some 20) (Some v0) ]
  in
  check "outstanding write dropped" (Reg.check_atomic h) true

let test_atomic_too_large () =
  let writes = List.init 63 (fun i -> w (i + 1) ~inv:(i * 10) ~ret:(Some ((i * 10) + 5)) (va i)) in
  let h = history ~writes ~reads:[] in
  Alcotest.(check bool) "history too large rejected" true
    (try ignore (Reg.check_atomic h); false with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* History utilities                                                   *)
(* ------------------------------------------------------------------ *)

let test_history_of_trace () =
  let tr = Sb_sim.Trace.create () in
  Sb_sim.Trace.add tr (Sb_sim.Trace.Invoke { time = 1; op = 1; client = 0; kind = Sb_sim.Trace.Write (va 1) });
  Sb_sim.Trace.add tr (Sb_sim.Trace.Invoke { time = 2; op = 2; client = 1; kind = Sb_sim.Trace.Read });
  Sb_sim.Trace.add tr (Sb_sim.Trace.Return { time = 3; op = 1; client = 0; result = None });
  Sb_sim.Trace.add tr (Sb_sim.Trace.Return { time = 4; op = 2; client = 1; result = Some (va 1) });
  let h = H.of_trace ~initial:v0 tr in
  Alcotest.(check int) "one write" 1 (List.length h.H.writes);
  Alcotest.(check int) "one read" 1 (List.length h.H.reads);
  let wr = List.hd h.H.writes in
  Alcotest.(check int) "write interval" 1 wr.H.w_inv;
  Alcotest.(check (option int)) "write return" (Some 3) wr.H.w_ret;
  check "trace-derived history checks" (Reg.check_strong h) true

let test_writer_of () =
  let h =
    history
      ~writes:[ w 1 ~inv:0 ~ret:(Some 1) (va 1); w 2 ~inv:2 ~ret:(Some 3) (va 1) ]
      ~reads:[]
  in
  Alcotest.(check bool) "duplicate values ambiguous" true (H.writer_of h (va 1) = None);
  Alcotest.(check bool) "missing value" true (H.writer_of h (va 5) = None)

let test_precedes () =
  Alcotest.(check bool) "ret before inv" true (H.precedes (Some 5) 6);
  Alcotest.(check bool) "equal times not preceding" false (H.precedes (Some 6) 6);
  Alcotest.(check bool) "outstanding never precedes" false (H.precedes None 100)

(* ------------------------------------------------------------------ *)
(* Counterexample structure                                            *)
(* ------------------------------------------------------------------ *)

(* The checkers return machine-readable counterexamples (the shrinker
   and the litmus tests dispatch on them); pin down the exact payloads,
   not just ok/violation, for one known-violating history per checker
   and per reason constructor. *)

let violation name verdict =
  match verdict with
  | Reg.Violation cx -> cx
  | Reg.Ok -> Alcotest.failf "%s: expected a violation, got ok" name

let test_cx_weak_stale_initial () =
  let cx =
    violation "stale v0"
      (Reg.check_weak
         (history
            ~writes:[ w 1 ~inv:0 ~ret:(Some 10) (va 1) ]
            ~reads:[ r 2 ~inv:20 ~ret:(Some 30) (Some v0) ]))
  in
  Alcotest.(check (option int)) "offending read" (Some 2) cx.Reg.cx_read;
  (match cx.Reg.cx_reason with
   | Reg.Stale_initial { completed_write } ->
     Alcotest.(check int) "completed write blamed" 1 completed_write
   | _ -> Alcotest.failf "wrong reason: %s" (Reg.to_string cx));
  (* The violated edge orders the real write after the virtual initial
     write 0 — impossible, since 0 is first in every candidate order. *)
  Alcotest.(check (option (pair int int))) "violated edge" (Some (1, 0))
    cx.Reg.cx_edge

let test_cx_weak_future_write () =
  let cx =
    violation "future write"
      (Reg.check_weak
         (history
            ~writes:[ w 1 ~inv:40 ~ret:(Some 50) (va 1) ]
            ~reads:[ r 2 ~inv:0 ~ret:(Some 10) (Some (va 1)) ]))
  in
  Alcotest.(check (option int)) "offending read" (Some 2) cx.Reg.cx_read;
  match cx.Reg.cx_reason with
  | Reg.Future_write { write } -> Alcotest.(check int) "future write" 1 write
  | _ -> Alcotest.failf "wrong reason: %s" (Reg.to_string cx)

let test_cx_weak_intervening () =
  let cx =
    violation "overwritten value"
      (Reg.check_weak
         (history
            ~writes:
              [ w 1 ~inv:0 ~ret:(Some 10) (va 1); w 2 ~inv:20 ~ret:(Some 30) (va 2) ]
            ~reads:[ r 3 ~inv:40 ~ret:(Some 50) (Some (va 1)) ]))
  in
  Alcotest.(check (option int)) "offending read" (Some 3) cx.Reg.cx_read;
  match cx.Reg.cx_reason with
  | Reg.Intervening_write { returned; between } ->
    Alcotest.(check int) "returned write" 1 returned;
    Alcotest.(check int) "intervening write" 2 between
  | _ -> Alcotest.failf "wrong reason: %s" (Reg.to_string cx)

let test_cx_weak_value_attribution () =
  let bottom =
    violation "bottom"
      (Reg.check_weak (history ~writes:[] ~reads:[ r 1 ~inv:0 ~ret:(Some 10) None ]))
  in
  Alcotest.(check bool) "bottom reason" true (bottom.Reg.cx_reason = Reg.Bottom_read);
  Alcotest.(check (option int)) "bottom read" (Some 1) bottom.Reg.cx_read;
  let unwritten =
    violation "unwritten"
      (Reg.check_weak
         (history ~writes:[] ~reads:[ r 1 ~inv:0 ~ret:(Some 10) (Some (va 9)) ]))
  in
  Alcotest.(check bool) "unwritten reason" true
    (unwritten.Reg.cx_reason = Reg.Unwritten_value);
  let ambiguous =
    violation "ambiguous"
      (Reg.check_weak
         (history
            ~writes:[ w 1 ~inv:0 ~ret:(Some 1) (va 1); w 2 ~inv:2 ~ret:(Some 3) (va 1) ]
            ~reads:[ r 3 ~inv:10 ~ret:(Some 20) (Some (va 1)) ]))
  in
  Alcotest.(check bool) "ambiguous reason" true
    (ambiguous.Reg.cx_reason = Reg.Ambiguous_value);
  Alcotest.(check (option int)) "ambiguous read" (Some 3) ambiguous.Reg.cx_read

let test_cx_strong_order_cycle () =
  let cx =
    violation "inversion"
      (Reg.check_strong (inversion_history ()))
  in
  (match cx.Reg.cx_reason with
   | Reg.Order_cycle cycle ->
     (match (cycle, List.rev cycle) with
      | u :: _, last :: _ -> Alcotest.(check int) "cycle closes" u last
      | _ -> Alcotest.fail "empty cycle");
     Alcotest.(check bool) "cycle names both real writes" true
       (List.mem 1 cycle && List.mem 2 cycle)
   | _ -> Alcotest.failf "wrong reason: %s" (Reg.to_string cx));
  (* Not attributable to a single read: two reads disagree. *)
  Alcotest.(check (option int)) "no single offending read" None cx.Reg.cx_read;
  Alcotest.(check bool) "a violated constraint edge is reported" true
    (cx.Reg.cx_edge <> None)

let test_cx_safe_quiescent () =
  (* check_safe reuses the write-order machinery for quiescent reads:
     a stale read with no concurrent write yields the same order cycle. *)
  let cx =
    violation "safe quiescent"
      (Reg.check_safe
         (history
            ~writes:
              [ w 1 ~inv:0 ~ret:(Some 10) (va 1); w 2 ~inv:20 ~ret:(Some 30) (va 2) ]
            ~reads:[ r 3 ~inv:40 ~ret:(Some 50) (Some (va 1)) ]))
  in
  (match cx.Reg.cx_reason with
   | Reg.Order_cycle _ -> ()
   | _ -> Alcotest.failf "wrong reason: %s" (Reg.to_string cx));
  let bottom =
    violation "safe bottom"
      (Reg.check_safe
         (history
            ~writes:[ w 1 ~inv:0 ~ret:(Some 30) (va 1) ]
            ~reads:[ r 2 ~inv:10 ~ret:(Some 20) None ]))
  in
  Alcotest.(check bool) "bottom rejected with Bottom_read" true
    (bottom.Reg.cx_reason = Reg.Bottom_read)

let test_cx_atomic_not_linearizable () =
  let cx =
    violation "atomic inversion"
      (Reg.check_atomic
         (history
            ~writes:
              [ w 1 ~inv:0 ~ret:(Some 10) (va 1); w 2 ~inv:5 ~ret:(Some 15) (va 2) ]
            ~reads:
              [
                r 3 ~inv:20 ~ret:(Some 25) (Some (va 2));
                r 4 ~inv:30 ~ret:(Some 35) (Some (va 1));
              ]))
  in
  Alcotest.(check bool) "search exhausted" true
    (cx.Reg.cx_reason = Reg.Not_linearizable);
  (* cx_order carries the candidate write order that was tried. *)
  Alcotest.(check (list int)) "candidate order attempted" [ 0; 1; 2 ]
    cx.Reg.cx_order

let test_cx_messages_render () =
  (* Every reported counterexample renders to a non-empty, single-line
     message (the CLI prints them verbatim). *)
  List.iter
    (fun (name, v) ->
      let cx = violation name v in
      let s = Reg.to_string cx in
      Alcotest.(check bool) (name ^ " renders") true (String.length s > 0);
      Alcotest.(check bool) (name ^ " single line") true
        (not (String.contains s '\n')))
    [
      ( "stale",
        Reg.check_weak
          (history
             ~writes:[ w 1 ~inv:0 ~ret:(Some 10) (va 1) ]
             ~reads:[ r 2 ~inv:20 ~ret:(Some 30) (Some v0) ]) );
      ("cycle", Reg.check_strong (inversion_history ()));
      ( "atomic",
        Reg.check_atomic
          (history
             ~writes:
               [ w 1 ~inv:0 ~ret:(Some 10) (va 1); w 2 ~inv:5 ~ret:(Some 15) (va 2) ]
             ~reads:
               [
                 r 3 ~inv:20 ~ret:(Some 25) (Some (va 2));
                 r 4 ~inv:30 ~ret:(Some 35) (Some (va 1));
               ]) );
    ]

(* ------------------------------------------------------------------ *)
(* Metamorphic: the consistency hierarchy on random histories          *)
(* ------------------------------------------------------------------ *)

(* Random histories — some legal, many garbage — over a handful of
   values and small time ranges.  Whatever the checkers decide, the
   hierarchy must hold: atomic ⇒ strong ⇒ weak, and strong ⇒ safe. *)
let random_history seed =
  let prng = Sb_util.Prng.create seed in
  let n_writes = 1 + Sb_util.Prng.int prng 4 in
  let n_reads = 1 + Sb_util.Prng.int prng 4 in
  let interval () =
    let inv = Sb_util.Prng.int prng 40 in
    let ret =
      if Sb_util.Prng.int prng 10 = 0 then None
      else Some (inv + 1 + Sb_util.Prng.int prng 20)
    in
    (inv, ret)
  in
  let writes =
    List.init n_writes (fun i ->
        let inv, ret = interval () in
        w (i + 1) ~inv ~ret (va i))
  in
  let reads =
    List.init n_reads (fun i ->
        let inv, ret = interval () in
        let result =
          match Sb_util.Prng.int prng 6 with
          | 0 -> Some v0
          | 1 -> Some (va 9) (* never written *)
          | _ -> Some (va (Sb_util.Prng.int prng n_writes))
        in
        r (100 + i) ~inv ~ret result)
  in
  history ~writes ~reads

let implies a b = (not a) || b
let ok_of v = match v with Reg.Ok -> true | Reg.Violation _ -> false

(* Brute-force MWRegWO decision for small histories: enumerate every
   permutation of the writes that extends real-time precedence and test
   each returned read's legality against it.  Used to validate the
   graph-based checker. *)
let brute_force_strong (h : H.t) =
  let writes = Array.of_list h.H.writes in
  let nw = Array.length writes in
  let rec permutations chosen remaining =
    match remaining with
    | [] -> [ List.rev chosen ]
    | _ ->
      List.concat_map
        (fun w ->
          let rest = List.filter (fun w' -> w' != w) remaining in
          (* extends real-time order: no remaining write must precede w *)
          if List.exists (fun w' -> H.precedes w'.H.w_ret w.H.w_inv) rest then []
          else permutations (w :: chosen) rest)
        remaining
  in
  let sigma_ok sigma =
    let position w =
      let rec go i = function
        | [] -> -1
        | w' :: rest -> if w' == w then i else go (i + 1) rest
      in
      go 0 sigma
    in
    List.for_all
      (fun (rd : H.read) ->
        match rd.H.result with
        | None -> false
        | Some v ->
          let candidates =
            List.filter (fun w -> Bytes.equal w.H.value v) h.H.writes
          in
          let legal_for w =
            (not (H.precedes rd.H.r_ret w.H.w_inv))
            && List.for_all
                 (fun w' ->
                   (not (H.precedes w'.H.w_ret rd.H.r_inv))
                   || position w' <= position w)
                 h.H.writes
          in
          (match candidates with
           | [ w ] -> legal_for w
           | [] ->
             Bytes.equal v h.H.initial
             && List.for_all
                  (fun w' -> not (H.precedes w'.H.w_ret rd.H.r_inv))
                  h.H.writes
           | _ -> false))
      (H.completed_reads h)
  in
  if nw > 5 then invalid_arg "brute_force_strong: too many writes";
  List.exists sigma_ok (permutations [] (Array.to_list writes))

let test_strong_checker_vs_brute_force =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:400
       ~name:"graph-based strong checker agrees with brute force"
       QCheck2.Gen.(int_bound 10_000_000)
       (fun seed ->
         let h = random_history seed in
         (* Skip histories the brute force can't attribute uniquely
            (duplicate values never occur in random_history; bottoms and
            unwritten values are handled identically by both). *)
         ok_of (Reg.check_strong h) = brute_force_strong h))

let test_hierarchy =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:400 ~name:"atomic ⇒ strong ⇒ weak; strong ⇒ safe"
       QCheck2.Gen.(int_bound 10_000_000)
       (fun seed ->
         let h = random_history seed in
         let atomic = ok_of (Reg.check_atomic h) in
         let strong = ok_of (Reg.check_strong h) in
         let weak = ok_of (Reg.check_weak h) in
         let safe = ok_of (Reg.check_safe h) in
         implies atomic strong && implies strong weak && implies strong safe))

let test_hierarchy_strict () =
  (* The inclusions are strict: witnesses for each gap exist (from the
     scenarios above). *)
  let weak_not_strong = inversion_history () in
  Alcotest.(check bool) "weak ⊋ strong witness" true
    (ok_of (Reg.check_weak weak_not_strong)
     && not (ok_of (Reg.check_strong weak_not_strong)));
  let safe_not_weak =
    history
      ~writes:
        [ w 1 ~inv:0 ~ret:(Some 10) (va 1); w 2 ~inv:15 ~ret:(Some 40) (va 2) ]
      ~reads:[ r 3 ~inv:20 ~ret:(Some 30) (Some v0) ]
  in
  Alcotest.(check bool) "safe ⊋ weak witness" true
    (ok_of (Reg.check_safe safe_not_weak)
     && not (ok_of (Reg.check_weak safe_not_weak)));
  let strong_not_atomic =
    history
      ~writes:[ w 1 ~inv:0 ~ret:None (va 1) ]
      ~reads:
        [
          r 2 ~inv:10 ~ret:(Some 20) (Some (va 1));
          r 3 ~inv:30 ~ret:(Some 40) (Some v0);
        ]
  in
  Alcotest.(check bool) "strong ⊋ atomic witness" true
    (ok_of (Reg.check_strong strong_not_atomic)
     && not (ok_of (Reg.check_atomic strong_not_atomic)))

let () =
  Alcotest.run "spec"
    [
      ( "weak",
        [
          Alcotest.test_case "sequential" `Quick test_weak_sequential;
          Alcotest.test_case "v0 fresh" `Quick test_weak_initial_ok;
          Alcotest.test_case "v0 stale" `Quick test_weak_initial_stale;
          Alcotest.test_case "v0 concurrent" `Quick test_weak_initial_concurrent;
          Alcotest.test_case "overwritten" `Quick test_weak_overwritten;
          Alcotest.test_case "concurrent write" `Quick test_weak_concurrent_write_returned;
          Alcotest.test_case "future write" `Quick test_weak_future_write;
          Alcotest.test_case "unwritten value" `Quick test_weak_unwritten_value;
          Alcotest.test_case "bottom" `Quick test_weak_bottom;
          Alcotest.test_case "outstanding write" `Quick test_weak_outstanding_write_returned;
          Alcotest.test_case "outstanding read" `Quick test_weak_outstanding_read_ignored;
          Alcotest.test_case "allows inversion" `Quick test_weak_allows_inversion;
        ] );
      ( "strong",
        [
          Alcotest.test_case "rejects inversion" `Quick test_strong_rejects_inversion;
          Alcotest.test_case "sequential" `Quick test_strong_sequential;
          Alcotest.test_case "agreeing reads" `Quick test_strong_concurrent_agreeing;
          Alcotest.test_case "real-time order" `Quick test_strong_real_time_write_order;
          Alcotest.test_case "new/old inversion" `Quick test_strong_new_old_inversion_allowed;
        ] );
      ( "safe",
        [
          Alcotest.test_case "concurrent anything" `Quick test_safe_concurrent_anything;
          Alcotest.test_case "quiescent constrained" `Quick test_safe_quiescent_constrained;
          Alcotest.test_case "quiescent ok" `Quick test_safe_quiescent_ok;
          Alcotest.test_case "v0 under concurrency" `Quick test_safe_v0_of_safe_register;
          Alcotest.test_case "bottom rejected" `Quick test_safe_bottom_rejected;
        ] );
      ( "atomic",
        [
          Alcotest.test_case "sequential" `Quick test_atomic_sequential;
          Alcotest.test_case "initial" `Quick test_atomic_initial;
          Alcotest.test_case "concurrent flexible" `Quick test_atomic_concurrent_flexible;
          Alcotest.test_case "inversion rejected" `Quick test_atomic_inversion_rejected;
          Alcotest.test_case "outstanding dropped" `Quick test_atomic_outstanding_drop;
          Alcotest.test_case "size limit" `Quick test_atomic_too_large;
        ] );
      ( "history",
        [
          Alcotest.test_case "of_trace" `Quick test_history_of_trace;
          Alcotest.test_case "writer_of" `Quick test_writer_of;
          Alcotest.test_case "precedes" `Quick test_precedes;
        ] );
      ( "counterexamples",
        [
          Alcotest.test_case "weak: stale initial" `Quick test_cx_weak_stale_initial;
          Alcotest.test_case "weak: future write" `Quick test_cx_weak_future_write;
          Alcotest.test_case "weak: intervening write" `Quick test_cx_weak_intervening;
          Alcotest.test_case "weak: value attribution" `Quick
            test_cx_weak_value_attribution;
          Alcotest.test_case "strong: order cycle" `Quick test_cx_strong_order_cycle;
          Alcotest.test_case "safe: quiescent + bottom" `Quick test_cx_safe_quiescent;
          Alcotest.test_case "atomic: not linearizable" `Quick
            test_cx_atomic_not_linearizable;
          Alcotest.test_case "messages render" `Quick test_cx_messages_render;
        ] );
      ( "hierarchy",
        [
          test_hierarchy;
          Alcotest.test_case "strict inclusions" `Quick test_hierarchy_strict;
          test_strong_checker_vs_brute_force;
        ] );
    ]
