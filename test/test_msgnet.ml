(* Tests for the message-passing emulation: the same register protocols
   running over request/response messages instead of shared memory, with
   channel contents counted as storage (paper Section 3.2). *)

module MP = Sb_msgnet.Mp_runtime
module R = Sb_sim.Runtime
module Trace = Sb_sim.Trace
module Common = Sb_registers.Common
module Codec = Sb_codec.Codec

let value_bytes = 32
let v i = Sb_util.Values.distinct ~value_bytes i
let v0 = Bytes.make value_bytes '\000'

let coded_cfg ~f ~k =
  let n = (2 * f) + k in
  { Common.n; f; codec = Codec.rs_vandermonde ~value_bytes ~k ~n }

let qtest ?(count = 30) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let run ?(seed = 1) ?policy ~algorithm ~(cfg : Common.config) workload =
  let policy = match policy with Some p -> p | None -> MP.random_policy ~seed () in
  let w = MP.create ~seed ~algorithm ~n:cfg.n ~f:cfg.f ~workload () in
  let outcome = MP.run w policy in
  (w, outcome)

let read_results w =
  List.filter_map
    (fun (_, kind, _, ret, res) ->
      match (kind, ret) with Trace.Read, Some _ -> Some res | _ -> None)
    (Trace.operations (MP.trace w))

let history w = Sb_spec.History.of_trace ~initial:v0 (MP.trace w)
let is_ok = function Sb_spec.Regularity.Ok -> true | _ -> false

(* ------------------------------------------------------------------ *)
(* The same protocols work over messages                               *)
(* ------------------------------------------------------------------ *)

let test_adaptive_round_trip () =
  let cfg = coded_cfg ~f:2 ~k:2 in
  let algorithm = Sb_registers.Adaptive.make cfg in
  let w, outcome =
    run ~policy:(MP.fifo_policy ()) ~algorithm ~cfg
      [| [ Trace.Write (v 1); Trace.Read ] |]
  in
  Alcotest.(check bool) "quiescent" true outcome.MP.quiescent;
  Alcotest.(check (list (option bytes))) "round trip" [ Some (v 1) ] (read_results w)

let test_abd_round_trip () =
  let n = 5 and f = 2 in
  let cfg = { Common.n; f; codec = Codec.replication ~value_bytes ~n } in
  let algorithm = Sb_registers.Abd.make cfg in
  let w, _ =
    run ~policy:(MP.fifo_policy ()) ~algorithm ~cfg
      [| [ Trace.Write (v 2); Trace.Read ] |]
  in
  Alcotest.(check (list (option bytes))) "round trip" [ Some (v 2) ] (read_results w)

let test_adaptive_regular_over_messages =
  qtest "adaptive: strongly regular over random message delivery"
    QCheck2.Gen.(int_bound 100_000)
    (fun seed ->
      let cfg = coded_cfg ~f:2 ~k:2 in
      let algorithm = Sb_registers.Adaptive.make cfg in
      let workload =
        Sb_experiments.Workloads.writers_and_readers ~value_bytes ~writers:3
          ~writes_each:2 ~readers:2 ~reads_each:2
      in
      let w, outcome = run ~seed ~algorithm ~cfg workload in
      outcome.MP.quiescent && is_ok (Sb_spec.Regularity.check_strong (history w)))

let test_safe_over_messages =
  qtest "safe register: safe over random message delivery"
    QCheck2.Gen.(int_bound 100_000)
    (fun seed ->
      let cfg = coded_cfg ~f:2 ~k:2 in
      let algorithm = Sb_registers.Safe_register.make cfg in
      let workload =
        Sb_experiments.Workloads.writers_and_readers ~value_bytes ~writers:3
          ~writes_each:2 ~readers:2 ~reads_each:2
      in
      let w, outcome = run ~seed ~algorithm ~cfg workload in
      outcome.MP.quiescent && is_ok (Sb_spec.Regularity.check_safe (history w)))

(* ------------------------------------------------------------------ *)
(* Crashes                                                             *)
(* ------------------------------------------------------------------ *)

let test_server_crashes_tolerated () =
  let cfg = coded_cfg ~f:2 ~k:2 in
  let algorithm = Sb_registers.Adaptive.make cfg in
  let workload =
    Sb_experiments.Workloads.writers_and_readers ~value_bytes ~writers:2
      ~writes_each:2 ~readers:2 ~reads_each:2
  in
  let policy = MP.random_policy ~crash_servers:[ (10, 0); (40, 3) ] ~seed:9 () in
  let w, outcome = run ~policy ~algorithm ~cfg workload in
  Alcotest.(check bool) "quiescent with f crashed servers" true outcome.MP.quiescent;
  Alcotest.(check bool) "server 0 dead" false (MP.server_alive w 0);
  let ops = Trace.operations (MP.trace w) in
  Alcotest.(check int) "all ops complete" (List.length ops)
    (List.length (List.filter (fun (_, _, _, ret, _) -> ret <> None) ops));
  Alcotest.(check bool) "still strongly regular" true
    (is_ok (Sb_spec.Regularity.check_strong (history w)))

let test_crash_budget () =
  let cfg = coded_cfg ~f:1 ~k:2 in
  let algorithm = Sb_registers.Adaptive.make cfg in
  let w = MP.create ~algorithm ~n:cfg.n ~f:cfg.f ~workload:[||] () in
  ignore (MP.step w (MP.Crash_server 0));
  Alcotest.(check bool) "second crash exceeds f" true
    (try ignore (MP.step w (MP.Crash_server 1)); false
     with Invalid_argument _ -> true)

let test_crash_budget_with_recovery () =
  let cfg = coded_cfg ~f:1 ~k:2 in
  let algorithm = Sb_registers.Adaptive.make cfg in
  let w = MP.create ~algorithm ~n:cfg.n ~f:cfg.f ~workload:[||] () in
  ignore (MP.step w (MP.Crash_server 0));
  (* The f budget is over concurrent crashes: a recovery frees it. *)
  ignore (MP.step w (MP.Recover_server 0));
  Alcotest.(check bool) "server 0 back" true (MP.server_alive w 0);
  Alcotest.(check int) "fresh incarnation" 2 (MP.server_incarnation w 0);
  ignore (MP.step w (MP.Crash_server 1));
  Alcotest.(check bool) "budget full again" true
    (try ignore (MP.step w (MP.Crash_server 2)); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "recovering a live server is invalid" true
    (try ignore (MP.step w (MP.Recover_server 0)); false
     with Invalid_argument _ -> true)

(* Regression: a crash must shed the crashed server's in-channel
   requests from the channel accounting — exactly those bits, nothing
   else. *)
let test_crash_drops_channel_bits () =
  let cfg = coded_cfg ~f:2 ~k:2 in
  let algorithm = Sb_registers.Adaptive.make cfg in
  let w = MP.create ~algorithm ~n:cfg.n ~f:cfg.f
      ~workload:[| [ Trace.Write (v 1) ] |] () in
  (* Round 1 (readValue), then resume into round 2: update requests
     carrying write payloads are now in flight. *)
  ignore (MP.step w (MP.Step 0));
  List.iter (fun (m : MP.message_info) -> ignore (MP.step w (MP.Deliver_msg m.msg_id)))
    (MP.deliverable w);
  List.iter (fun (m : MP.message_info) -> ignore (MP.step w (MP.Deliver_msg m.msg_id)))
    (MP.deliverable w);
  ignore (MP.step w (MP.Step 0));
  let before = MP.storage_bits_channels w in
  let to_crashed =
    List.filter
      (fun (m : MP.message_info) -> m.kind = MP.Request && m.m_server = 0)
      (MP.in_flight w)
  in
  let crashed_bits =
    List.fold_left (fun acc (m : MP.message_info) -> acc + m.m_bits) 0 to_crashed
  in
  Alcotest.(check bool) "a payload-carrying request addressed to server 0" true
    (crashed_bits > 0);
  ignore (MP.step w (MP.Crash_server 0));
  Alcotest.(check int) "channel bits shed exactly the crashed server's requests"
    (before - crashed_bits) (MP.storage_bits_channels w);
  Alcotest.(check int) "dropped_at_crash counts them"
    (List.length to_crashed) (MP.net_stats w).MP.dropped_at_crash;
  Alcotest.(check bool) "no request to server 0 remains" true
    (List.for_all
       (fun (m : MP.message_info) -> m.kind <> MP.Request || m.m_server <> 0)
       (MP.in_flight w));
  (* The write still completes against the surviving quorum. *)
  let outcome = MP.run w (MP.random_policy ~seed:2 ()) in
  Alcotest.(check bool) "quiescent" true outcome.MP.quiescent;
  let ops = Trace.operations (MP.trace w) in
  Alcotest.(check int) "write returned" (List.length ops)
    (List.length (List.filter (fun (_, _, _, ret, _) -> ret <> None) ops))

(* ------------------------------------------------------------------ *)
(* Channel accounting                                                  *)
(* ------------------------------------------------------------------ *)

let test_request_payload_in_channel () =
  let cfg = coded_cfg ~f:2 ~k:2 in
  let algorithm = Sb_registers.Adaptive.make cfg in
  let w = MP.create ~algorithm ~n:cfg.n ~f:cfg.f
      ~workload:[| [ Trace.Write (v 1) ] |] () in
  (* Step the writer: round 1 (readValue) requests have no payload. *)
  ignore (MP.step w (MP.Step 0));
  Alcotest.(check int) "read requests carry no blocks" 0 (MP.storage_bits_channels w);
  Alcotest.(check int) "n requests in flight" cfg.n (List.length (MP.in_flight w));
  (* Deliver all requests: the responses are snapshots carrying the
     initial pieces — channel bits appear. *)
  List.iter (fun (m : MP.message_info) -> ignore (MP.step w (MP.Deliver_msg m.msg_id)))
    (MP.deliverable w);
  let piece_bits = Codec.block_bits cfg.codec 0 in
  Alcotest.(check int) "snapshot responses carry the stored pieces"
    (cfg.n * piece_bits)
    (MP.storage_bits_channels w);
  (* Deliver responses; resume: update requests now carry write payloads. *)
  List.iter (fun (m : MP.message_info) -> ignore (MP.step w (MP.Deliver_msg m.msg_id)))
    (MP.deliverable w);
  ignore (MP.step w (MP.Step 0));
  Alcotest.(check bool) "update requests carry blocks" true
    (MP.storage_bits_channels w > 0);
  Alcotest.(check bool) "channel maxima track" true
    (MP.max_bits_channels w >= cfg.n * piece_bits)

let test_channel_cost_of_reads () =
  (* The paper's Section 3.2 point: response traffic carries object
     state, so read-heavy workloads move storage into channels. *)
  let cfg = coded_cfg ~f:2 ~k:2 in
  let algorithm = Sb_registers.Adaptive.make cfg in
  let workload =
    Sb_experiments.Workloads.writers_and_readers ~value_bytes ~writers:1
      ~writes_each:1 ~readers:4 ~reads_each:3
  in
  let w, _ = run ~seed:3 ~algorithm ~cfg workload in
  Alcotest.(check bool) "channels carried more bits than servers stored" true
    (MP.max_bits_channels w >= MP.max_bits_servers w)

(* ------------------------------------------------------------------ *)
(* Runtime mechanics                                                   *)
(* ------------------------------------------------------------------ *)

let test_determinism () =
  let cfg = coded_cfg ~f:2 ~k:2 in
  let algorithm = Sb_registers.Adaptive.make cfg in
  let workload =
    Sb_experiments.Workloads.writers_and_readers ~value_bytes ~writers:2
      ~writes_each:2 ~readers:1 ~reads_each:2
  in
  let run_once () =
    let w, outcome = run ~seed:11 ~algorithm ~cfg workload in
    (outcome.MP.steps, MP.max_bits_servers w, MP.max_bits_channels w, read_results w)
  in
  Alcotest.(check bool) "identical replays" true (run_once () = run_once ())

let test_message_ordering_not_fifo () =
  (* The channel is unordered: under random delivery, messages can
     overtake each other.  Witness: some run delivers a later-sent
     message first. *)
  let cfg = coded_cfg ~f:2 ~k:2 in
  let algorithm = Sb_registers.Adaptive.make cfg in
  let w = MP.create ~algorithm ~n:cfg.n ~f:cfg.f
      ~workload:[| [ Trace.Write (v 1) ] |] () in
  ignore (MP.step w (MP.Step 0));
  let msgs = MP.deliverable w in
  Alcotest.(check bool) "several in flight" true (List.length msgs > 1);
  (* Deliver the newest first — allowed; it turns into a response to the
     same ticket. *)
  let newest = List.nth msgs (List.length msgs - 1) in
  ignore (MP.step w (MP.Deliver_msg newest.MP.msg_id));
  Alcotest.(check bool) "request consumed" true
    (List.for_all (fun (m : MP.message_info) -> m.msg_id <> newest.MP.msg_id)
       (MP.deliverable w));
  Alcotest.(check bool) "response to the same ticket in flight" true
    (List.exists
       (fun (m : MP.message_info) ->
         m.kind = MP.Response && m.m_ticket = newest.MP.m_ticket)
       (MP.deliverable w))

let test_fifo_channels () =
  let cfg = coded_cfg ~f:2 ~k:2 in
  let algorithm = Sb_registers.Adaptive.make cfg in
  let w = MP.create ~fifo:true ~algorithm ~n:cfg.n ~f:cfg.f
      ~workload:[| [ Trace.Write (v 1); Trace.Write (v 2) ] |] () in
  ignore (MP.step w (MP.Step 0));
  (* Two requests on the same channel exist only after two rounds; at
     this point each channel has one message, so FIFO filters nothing. *)
  Alcotest.(check int) "all heads deliverable" cfg.n (List.length (MP.deliverable w));
  (* Run to completion under random FIFO delivery: correctness holds. *)
  let outcome = MP.run w (MP.random_policy ~seed:5 ()) in
  Alcotest.(check bool) "quiescent" true outcome.MP.quiescent;
  let h = history w in
  Alcotest.(check bool) "still strongly regular" true
    (is_ok (Sb_spec.Regularity.check_strong h))

let test_fifo_ordering_enforced () =
  let cfg = coded_cfg ~f:2 ~k:2 in
  let algorithm = Sb_registers.Adaptive.make cfg in
  (* Two clients to the same servers: their channels are independent,
     but within a channel order is enforced.  Get two messages onto one
     channel by letting the client advance two rounds without the first
     round's response... not possible (rounds await); instead check the
     runtime-level guard directly by delivering out of order. *)
  let w = MP.create ~fifo:true ~algorithm ~n:cfg.n ~f:cfg.f
      ~workload:[| [ Trace.Write (v 1) ] |] () in
  ignore (MP.step w (MP.Step 0));
  (* Deliver all requests, then the resulting responses. *)
  List.iter (fun (m : MP.message_info) -> ignore (MP.step w (MP.Deliver_msg m.msg_id)))
    (MP.deliverable w);
  List.iter (fun (m : MP.message_info) -> ignore (MP.step w (MP.Deliver_msg m.msg_id)))
    (MP.deliverable w);
  ignore (MP.step w (MP.Step 0));
  (* Now round-2 requests are in flight; every channel again has exactly
     one message plus possibly a stale response.  All deliverable
     messages must be channel heads. *)
  List.iter
    (fun (m : MP.message_info) ->
      Alcotest.(check bool) "deliverable implies channel head" true
        (List.for_all
           (fun (m' : MP.message_info) ->
             m'.kind <> m.kind || m'.m_client <> m.m_client
             || m'.m_server <> m.m_server || m'.msg_id >= m.msg_id)
           (MP.in_flight w)))
    (MP.deliverable w)

let test_invalid_decisions () =
  let cfg = coded_cfg ~f:2 ~k:2 in
  let algorithm = Sb_registers.Adaptive.make cfg in
  let w = MP.create ~algorithm ~n:cfg.n ~f:cfg.f ~workload:[| [] |] () in
  Alcotest.(check bool) "unknown message" true
    (try ignore (MP.step w (MP.Deliver_msg 42)); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "idle client" true
    (try ignore (MP.step w (MP.Step 0)); false with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad f" true
    (try ignore (MP.create ~algorithm ~n:2 ~f:1 ~workload:[||] ()); false
     with Invalid_argument _ -> true)

(* Shared-memory and message-passing emulations agree on the final
   state of a synchronous (fifo) failure-free run. *)
let test_agrees_with_shared_memory () =
  let cfg = coded_cfg ~f:2 ~k:2 in
  let algorithm = Sb_registers.Adaptive.make cfg in
  let workload = [| [ Trace.Write (v 1); Trace.Write (v 2); Trace.Read ] |] in
  let wm = MP.create ~algorithm ~n:cfg.n ~f:cfg.f ~workload () in
  ignore (MP.run wm (MP.fifo_policy ()));
  let ws = R.create ~algorithm ~n:cfg.n ~f:cfg.f ~workload () in
  ignore (R.run ws (R.fifo_policy ()));
  Alcotest.(check int) "same final storage"
    (R.storage_bits_objects ws) (MP.storage_bits_servers wm);
  let reads_sm =
    List.filter_map
      (fun (_, kind, _, _, res) ->
        match kind with Trace.Read -> Some res | _ -> None)
      (Trace.operations (R.trace ws))
  in
  Alcotest.(check (list (option bytes))) "same read results" reads_sm (read_results wm)

(* Every register algorithm runs correctly over both channel semantics. *)
let test_algorithm_matrix () =
  let cfg = coded_cfg ~f:2 ~k:2 in
  let cfg_abd =
    { Common.n = 5; f = 2; codec = Codec.replication ~value_bytes ~n:5 }
  in
  let algorithms =
    [
      ("abd", Sb_registers.Abd.make cfg_abd, cfg_abd);
      ("abd-atomic", Sb_registers.Abd_atomic.make cfg_abd, cfg_abd);
      ("adaptive", Sb_registers.Adaptive.make cfg, cfg);
      ("pure-ec", Sb_registers.Adaptive.make_unbounded cfg, cfg);
      ("versioned", Sb_registers.Adaptive.make_versioned ~delta:1 cfg, cfg);
      ("safe", Sb_registers.Safe_register.make cfg, cfg);
      ("rateless", Sb_registers.Rateless.make ~codec_seed:7 cfg, cfg);
    ]
  in
  List.iter
    (fun (name, algorithm, cfg) ->
      List.iter
        (fun fifo ->
          let workload = [| [ Trace.Write (v 5); Trace.Read ] |] in
          let w = MP.create ~fifo ~algorithm ~n:cfg.Common.n ~f:cfg.Common.f ~workload () in
          let outcome = MP.run w (MP.random_policy ~seed:9 ()) in
          Alcotest.(check bool)
            (Printf.sprintf "%s fifo=%b quiescent" name fifo)
            true outcome.MP.quiescent;
          Alcotest.(check (list (option bytes)))
            (Printf.sprintf "%s fifo=%b round trip" name fifo)
            [ Some (v 5) ] (read_results w))
        [ false; true ])
    algorithms

let () =
  Alcotest.run "msgnet"
    [
      ( "protocols",
        [
          Alcotest.test_case "adaptive round trip" `Quick test_adaptive_round_trip;
          Alcotest.test_case "abd round trip" `Quick test_abd_round_trip;
          test_adaptive_regular_over_messages;
          test_safe_over_messages;
        ] );
      ( "crashes",
        [
          Alcotest.test_case "f server crashes tolerated" `Quick
            test_server_crashes_tolerated;
          Alcotest.test_case "crash budget" `Quick test_crash_budget;
          Alcotest.test_case "crash budget with recovery" `Quick
            test_crash_budget_with_recovery;
          Alcotest.test_case "crash drops channel bits" `Quick
            test_crash_drops_channel_bits;
        ] );
      ( "channels",
        [
          Alcotest.test_case "request payloads counted" `Quick
            test_request_payload_in_channel;
          Alcotest.test_case "read traffic dominates" `Quick test_channel_cost_of_reads;
        ] );
      ( "mechanics",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "non-fifo delivery" `Quick test_message_ordering_not_fifo;
          Alcotest.test_case "fifo channels" `Quick test_fifo_channels;
          Alcotest.test_case "fifo ordering enforced" `Quick test_fifo_ordering_enforced;
          Alcotest.test_case "invalid decisions" `Quick test_invalid_decisions;
          Alcotest.test_case "agrees with shared memory" `Quick
            test_agrees_with_shared_memory;
          Alcotest.test_case "algorithm x channel matrix" `Quick test_algorithm_matrix;
        ] );
    ]
