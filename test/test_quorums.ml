(* Tests for the quorum-system library: the structures behind the
   paper's "await n - f responses" rule. *)

module Q = Sb_quorums.Quorum

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ------------------------------------------------------------------ *)
(* Constructors and membership                                         *)
(* ------------------------------------------------------------------ *)

let test_majority () =
  let q = Q.majority ~n:5 in
  Alcotest.(check bool) "3 of 5" true (Q.is_quorum q [ 0; 2; 4 ]);
  Alcotest.(check bool) "2 of 5" false (Q.is_quorum q [ 1; 3 ]);
  Alcotest.(check bool) "duplicates collapse" false (Q.is_quorum q [ 1; 1; 1; 3; 3 ])

let test_counting () =
  let q = Q.counting ~n:6 ~size:4 in
  Alcotest.(check bool) "4 of 6" true (Q.is_quorum q [ 0; 1; 2; 3 ]);
  Alcotest.(check bool) "3 of 6" false (Q.is_quorum q [ 0; 1; 2 ]);
  Alcotest.(check bool) "member out of range" true
    (try ignore (Q.is_quorum q [ 6 ]); false with Invalid_argument _ -> true)

let test_grid () =
  let q = Q.grid ~rows:2 ~cols:3 in
  (* Universe: 0 1 2 / 3 4 5.  A quorum = one full row + one element of
     every row. *)
  Alcotest.(check bool) "row 0 + element of row 1" true (Q.is_quorum q [ 0; 1; 2; 4 ]);
  Alcotest.(check bool) "full row 0 alone misses row 1" false
    (Q.is_quorum q [ 0; 1; 2 ]);
  Alcotest.(check bool) "transversal without a full row" false
    (Q.is_quorum q [ 0; 4 ]);
  Alcotest.(check bool) "row 1 + element of row 0" true (Q.is_quorum q [ 3; 4; 5; 1 ])

let test_weighted () =
  let q = Q.weighted ~weights:[| 3; 1; 1; 1 |] ~threshold:4 in
  Alcotest.(check bool) "heavy node + one" true (Q.is_quorum q [ 0; 1 ]);
  Alcotest.(check bool) "three light nodes" false (Q.is_quorum q [ 1; 2; 3 ]);
  Alcotest.(check bool) "all nodes" true (Q.is_quorum q [ 0; 1; 2; 3 ])

(* ------------------------------------------------------------------ *)
(* Exhaustive analyses                                                 *)
(* ------------------------------------------------------------------ *)

let test_minimal_quorums () =
  let q = Q.majority ~n:4 in
  let minimal = Q.minimal_quorums q in
  (* Majorities of 4 have minimal size 3: C(4,3) = 4 of them. *)
  Alcotest.(check int) "count" 4 (List.length minimal);
  List.iter (fun m -> Alcotest.(check int) "size 3" 3 (List.length m)) minimal

let test_min_intersection_majority () =
  (* Two majorities of n intersect in >= 1; of 5 in >= 1. *)
  Alcotest.(check int) "n=5" 1 (Q.min_intersection (Q.majority ~n:5));
  Alcotest.(check int) "n=4" 2 (Q.min_intersection (Q.majority ~n:4))

let test_min_intersection_counting () =
  (* counting(n, n-f): two quorums intersect in n - 2f objects. *)
  List.iter
    (fun (n, f) ->
      Alcotest.(check int)
        (Printf.sprintf "n=%d f=%d" n f)
        (n - (2 * f))
        (Q.min_intersection (Q.counting ~n ~size:(n - f))))
    [ (5, 2); (6, 2); (9, 3); (7, 1) ]

let test_availability () =
  let q = Q.counting ~n:5 ~size:3 in
  Alcotest.(check bool) "live after 2 crashes" true (Q.available_after q ~failures:2);
  Alcotest.(check bool) "dead after 3 crashes" false (Q.available_after q ~failures:3);
  (* Grid systems are fragile: killing one full row blocks them. *)
  let g = Q.grid ~rows:2 ~cols:2 in
  Alcotest.(check bool) "grid not 2-available" false (Q.available_after g ~failures:2)

let test_register_requirements () =
  (* The paper's resilience condition n >= 2f + k, verified
     structurally. *)
  List.iter
    (fun (n, f, k, expected) ->
      let _, verdict = Q.register_requirements ~n ~f ~k in
      Alcotest.(check bool) (Printf.sprintf "n=%d f=%d k=%d" n f k) expected verdict)
    [
      (6, 2, 2, true);   (* n = 2f + k *)
      (7, 2, 2, true);   (* slack *)
      (5, 2, 2, false);  (* n < 2f + k: intersection too small *)
      (9, 4, 1, true);   (* replication: majority intersection *)
      (3, 1, 1, true);
      (3, 1, 2, false);
    ]

let test_register_requirements_match_formula =
  qtest "structural verdict equals n >= 2f + k"
    QCheck2.Gen.(triple (int_range 1 10) (int_range 0 4) (int_range 1 4))
    (fun (n, f, k) ->
      if 2 * f >= n then true (* configuration rejected elsewhere *)
      else
        let _, verdict = Q.register_requirements ~n ~f ~k in
        verdict = (n >= (2 * f) + k))

let test_counting_monotone =
  qtest "counting quorums are monotone"
    QCheck2.Gen.(pair (int_range 1 10) (int_bound 1000))
    (fun (n, seed) ->
      let prng = Sb_util.Prng.create seed in
      let size = 1 + Sb_util.Prng.int prng n in
      let q = Q.counting ~n ~size in
      let members =
        List.filter (fun _ -> Sb_util.Prng.bool prng) (List.init n Fun.id)
      in
      (* Adding members never destroys quorumhood. *)
      (not (Q.is_quorum q members))
      || Q.is_quorum q (List.sort_uniq compare (0 :: members)))

let test_enumeration_guard () =
  Alcotest.(check bool) "large universes rejected" true
    (try ignore (Q.min_intersection (Q.majority ~n:25)); false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "quorums"
    [
      ( "constructors",
        [
          Alcotest.test_case "majority" `Quick test_majority;
          Alcotest.test_case "counting" `Quick test_counting;
          Alcotest.test_case "grid" `Quick test_grid;
          Alcotest.test_case "weighted" `Quick test_weighted;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "minimal quorums" `Quick test_minimal_quorums;
          Alcotest.test_case "majority intersection" `Quick test_min_intersection_majority;
          Alcotest.test_case "counting intersection" `Quick test_min_intersection_counting;
          Alcotest.test_case "availability" `Quick test_availability;
          Alcotest.test_case "register requirements" `Quick test_register_requirements;
          test_register_requirements_match_formula;
          test_counting_monotone;
          Alcotest.test_case "enumeration guard" `Quick test_enumeration_guard;
        ] );
    ]
