(* Tests for the experiment harness: every per-claim experiment must
   reproduce the paper's shape (ok = true), and the measurement plumbing
   must be internally consistent. *)

module E = Sb_experiments.Experiments
module Runs = Sb_experiments.Runs
module Workloads = Sb_experiments.Workloads
module Common = Sb_registers.Common
module Codec = Sb_codec.Codec

let value_bytes = 32

let check_outcome (o : E.outcome) =
  if not o.ok then
    Alcotest.failf "%s (%s) did not match the paper's shape:\n%s" o.id o.title
      (Sb_util.Table.render o.table)

(* Small parameterisations keep the suite fast; the full-size versions
   run in bench/main.exe. *)
let test_e1 () = check_outcome (E.e1_concurrency_blowup ~value_bytes ~f:6 ~cs:[ 1; 2; 4 ] ())
let test_e2 () = check_outcome (E.e2_freeze_branch ~value_bytes ~f:3 ())
let test_e3 () = check_outcome (E.e3_adaptive_bound ~value_bytes ~f:3 ~k:3 ~cs:[ 1; 2; 4 ] ())
let test_e4 () = check_outcome (E.e4_eventual_gc ~value_bytes ~f:3 ~k:3 ~seeds:[ 1; 2; 3 ] ())
let test_e5 () = check_outcome (E.e5_crossover ~value_bytes ~f:3 ~cs:[ 1; 4; 8 ] ())
let test_e6 () = check_outcome (E.e6_f_sweep ~value_bytes ~c:2 ~fs:[ 1; 2; 4 ] ())
let test_e7 () = check_outcome (E.e7_k_ablation ~value_bytes ~f:3 ~c:3 ~ks:[ 1; 3; 6 ] ())
let test_e8 () = check_outcome (E.e8_safe_constant ~value_bytes ~f:3 ~k:3 ~cs:[ 1; 4; 8 ] ())
let test_e9 () = check_outcome (E.e9_read_rounds ~value_bytes ~f:3 ~k:3 ~writers:[ 1; 4 ] ())
let test_e10 () = check_outcome (E.e10_liveness_under_ad ~value_bytes ~f:3 ~k:3 ~c:3 ())
let test_e11 () = check_outcome (E.e11_channel_storage ~value_bytes ~f:2 ~k:2 ~readers:[ 0; 4 ] ())
let test_e12 () = check_outcome (E.e12_adversary_ablation ~value_bytes ~f:4 ~c:4 ())
let test_e13 () = check_outcome (E.e13_premature_gc ~value_bytes ())
let test_e14 () = check_outcome (E.e14_indistinguishability ~value_bytes ~f:6 ~c:2 ())
let test_e15 () =
  check_outcome (E.e15_version_bound ~value_bytes ~f:2 ~k:8 ~c:10 ~deltas:[ 0; 10 ] ())
let test_e16 () = check_outcome (E.e16_lower_bound_mp ~value_bytes ~f:4 ~cs:[ 1; 3 ] ())
let test_e17 () = check_outcome (E.e17_ell_sweep ~value_bytes ~f:4 ~c:4 ())

(* ------------------------------------------------------------------ *)
(* Workloads                                                           *)
(* ------------------------------------------------------------------ *)

let test_writers_only () =
  let w = Workloads.writers_only ~value_bytes ~c:3 ~writes_each:2 in
  Alcotest.(check int) "3 clients" 3 (Array.length w);
  Array.iter (fun ops -> Alcotest.(check int) "2 ops each" 2 (List.length ops)) w;
  (* All written values distinct. *)
  let values =
    Array.to_list w
    |> List.concat_map
         (List.filter_map (function Sb_sim.Trace.Write v -> Some v | _ -> None))
  in
  Alcotest.(check int) "all distinct" (List.length values)
    (List.length (List.sort_uniq Bytes.compare values))

let test_writers_and_readers () =
  let w =
    Workloads.writers_and_readers ~value_bytes ~writers:2 ~writes_each:1 ~readers:3
      ~reads_each:2
  in
  Alcotest.(check int) "5 clients" 5 (Array.length w);
  Alcotest.(check bool) "readers only read" true
    (List.for_all (function Sb_sim.Trace.Read -> true | _ -> false) w.(4))

let test_value_index () =
  let v = Workloads.distinct_value ~value_bytes 17 in
  Alcotest.(check (option int)) "inverse" (Some 17) (Workloads.value_index ~value_bytes v);
  Alcotest.(check (option int)) "unknown value" None
    (Workloads.value_index ~value_bytes (Bytes.make value_bytes '\255'))

(* ------------------------------------------------------------------ *)
(* Measurements                                                        *)
(* ------------------------------------------------------------------ *)

let measurement () =
  let f = 2 and k = 2 in
  let n = (2 * f) + k in
  let cfg = { Common.n; f; codec = Codec.rs_vandermonde ~value_bytes ~k ~n } in
  let algorithm = Sb_registers.Adaptive.make cfg in
  let workload =
    Workloads.writers_and_readers ~value_bytes ~writers:2 ~writes_each:2 ~readers:1
      ~reads_each:2
  in
  Runs.measure ~algorithm ~cfg ~workload ()

let test_measure_consistent () =
  let m = measurement () in
  Alcotest.(check string) "algorithm name" "adaptive" m.Runs.algorithm;
  Alcotest.(check bool) "quiescent" true m.Runs.quiescent;
  Alcotest.(check int) "writes invoked" 4 m.Runs.invoked_writes;
  Alcotest.(check int) "reads invoked" 2 m.Runs.invoked_reads;
  Alcotest.(check int) "all writes done" m.Runs.invoked_writes m.Runs.completed_writes;
  Alcotest.(check int) "all reads done" m.Runs.invoked_reads m.Runs.completed_reads;
  Alcotest.(check bool) "max >= final" true (m.Runs.max_obj_bits >= m.Runs.final_obj_bits);
  Alcotest.(check bool) "total >= objects" true
    (m.Runs.max_total_bits >= m.Runs.max_obj_bits);
  Alcotest.(check bool) "read rounds positive" true (m.Runs.max_read_rounds >= 1)

let test_measure_deterministic () =
  let a = measurement () and b = measurement () in
  Alcotest.(check int) "same steps" a.Runs.steps b.Runs.steps;
  Alcotest.(check int) "same storage" a.Runs.max_obj_bits b.Runs.max_obj_bits

let test_worst () =
  let f = 2 and k = 2 in
  let n = (2 * f) + k in
  let cfg = { Common.n; f; codec = Codec.rs_vandermonde ~value_bytes ~k ~n } in
  let algorithm = Sb_registers.Adaptive.make cfg in
  let workload = Workloads.writers_only ~value_bytes ~c:2 ~writes_each:2 in
  let ms = Runs.measure_many ~seeds:[ 1; 2; 3 ] ~algorithm ~cfg ~workload () in
  Alcotest.(check int) "three runs" 3 (List.length ms);
  let w = Runs.worst ms in
  Alcotest.(check bool) "worst is the max" true
    (List.for_all (fun m -> m.Runs.max_obj_bits <= w.Runs.max_obj_bits) ms);
  Alcotest.check_raises "worst of nothing" (Invalid_argument "Runs.worst: no measurements")
    (fun () -> ignore (Runs.worst []))

(* ------------------------------------------------------------------ *)
(* Statistics                                                          *)
(* ------------------------------------------------------------------ *)

module Stats = Sb_experiments.Stats

let test_stats_basic () =
  let s = Stats.summarize [ 4; 1; 3; 2 ] in
  Alcotest.(check int) "count" 4 s.Stats.count;
  Alcotest.(check int) "min" 1 s.Stats.min;
  Alcotest.(check int) "max" 4 s.Stats.max;
  Alcotest.(check (float 1e-9)) "mean" 2.5 s.Stats.mean;
  Alcotest.(check (float 1e-9)) "median" 2.5 s.Stats.median;
  Alcotest.(check (float 1e-6)) "stddev" (sqrt 1.25) s.Stats.stddev

let test_stats_single () =
  let s = Stats.summarize [ 7 ] in
  Alcotest.(check (float 1e-9)) "mean" 7.0 s.Stats.mean;
  Alcotest.(check (float 1e-9)) "stddev" 0.0 s.Stats.stddev;
  Alcotest.(check (float 1e-9)) "median" 7.0 s.Stats.median

let test_stats_percentile () =
  let samples = [ 10; 20; 30; 40; 50 ] in
  Alcotest.(check (float 1e-9)) "p0" 10.0 (Stats.percentile samples ~p:0.0);
  Alcotest.(check (float 1e-9)) "p100" 50.0 (Stats.percentile samples ~p:100.0);
  Alcotest.(check (float 1e-9)) "p50" 30.0 (Stats.percentile samples ~p:50.0);
  Alcotest.(check (float 1e-9)) "p25" 20.0 (Stats.percentile samples ~p:25.0)

let test_stats_errors () =
  Alcotest.(check bool) "empty rejected" true
    (try ignore (Stats.summarize []); false with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad percentile" true
    (try ignore (Stats.percentile [ 1 ] ~p:150.0); false
     with Invalid_argument _ -> true)

let test_stats_mean_bounds =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:100 ~name:"mean lies within min..max"
       QCheck2.Gen.(list_size (int_range 1 30) (int_range (-1000) 1000))
       (fun samples ->
         samples = []
         ||
         let s = Stats.summarize samples in
         float_of_int s.Stats.min <= s.Stats.mean
         && s.Stats.mean <= float_of_int s.Stats.max))

let test_table_csv () =
  let t = Sb_util.Table.create [ ("a", Sb_util.Table.Left); ("b", Sb_util.Table.Right) ] in
  Sb_util.Table.add_row t [ "plain"; "1,2" ];
  Sb_util.Table.add_row t [ "with \"quote\""; "3" ];
  let csv = Sb_util.Table.to_csv t in
  Alcotest.(check string) "csv escaping"
    "a,b\nplain,\"1,2\"\n\"with \"\"quote\"\"\",3\n" csv

(* MP communication accounting: a fifo failure-free run sends exactly
   n requests and n responses per protocol round. *)
let test_message_counts () =
  let module MP = Sb_msgnet.Mp_runtime in
  let f = 2 and k = 2 in
  let n = (2 * f) + k in
  let cfg = { Common.n; f; codec = Codec.rs_vandermonde ~value_bytes ~k ~n } in
  let algorithm = Sb_registers.Adaptive.make cfg in
  (* One write = 3 rounds; one read = 1 round under fifo. *)
  let workload = [| [ Sb_sim.Trace.Write (Bytes.make value_bytes 'w'); Sb_sim.Trace.Read ] |] in
  let w = MP.create ~algorithm ~n ~f ~workload () in
  ignore (MP.run w (MP.fifo_policy ()));
  Alcotest.(check int) "requests = 4 rounds x n" (4 * n) (MP.requests_sent w);
  Alcotest.(check int) "responses = requests (no crashes)" (4 * n) (MP.responses_sent w)

(* ------------------------------------------------------------------ *)
(* Series                                                              *)
(* ------------------------------------------------------------------ *)

module Series = Sb_experiments.Series

let recorded_series () =
  let f = 2 and k = 2 in
  let n = (2 * f) + k in
  let cfg = { Common.n; f; codec = Codec.rs_vandermonde ~value_bytes ~k ~n } in
  let algorithm = Sb_registers.Adaptive.make cfg in
  let workload = Workloads.writers_only ~value_bytes ~c:3 ~writes_each:2 in
  let w = Sb_sim.Runtime.create ~algorithm ~n ~f ~workload () in
  let policy, get =
    Series.record ~probe:Sb_sim.Runtime.storage_bits_objects
      (Sb_sim.Runtime.random_policy ~seed:4 ())
  in
  let outcome = Sb_sim.Runtime.run w policy in
  (get (), w, outcome)

let test_series_record () =
  let series, w, outcome = recorded_series () in
  Alcotest.(check bool) "quiescent" true outcome.Sb_sim.Runtime.quiescent;
  Alcotest.(check int) "one sample per decision" outcome.Sb_sim.Runtime.steps
    (Series.length series);
  Alcotest.(check bool) "peak matches world maximum" true
    (Series.peak series <= Sb_sim.Runtime.max_bits_objects w);
  Alcotest.(check bool) "samples are time-ordered" true
    (let times = List.map fst (Series.samples series) in
     List.sort compare times = times)

let test_series_queries () =
  let series, w, _ = recorded_series () in
  Alcotest.(check int) "final is the last probe" (Series.final series)
    (snd (List.nth (Series.samples series) (Series.length series - 1)));
  ignore w;
  Alcotest.(check int) "fraction 1.0 = final" (Series.final series)
    (Series.at_fraction series 1.0);
  Alcotest.(check bool) "fraction out of range" true
    (try ignore (Series.at_fraction series 1.5); false
     with Invalid_argument _ -> true)

let test_series_sparkline () =
  let series, _, _ = recorded_series () in
  let chart = Series.sparkline ~width:30 ~height:6 series in
  let lines = String.split_on_char '\n' chart in
  Alcotest.(check int) "height rows + axis + trailing" 8 (List.length lines);
  Alcotest.(check bool) "contains marks" true (String.contains chart '#')

let () =
  Alcotest.run "experiments"
    [
      ( "per-claim",
        [
          Alcotest.test_case "E1 concurrency blowup" `Slow test_e1;
          Alcotest.test_case "E2 freeze branch" `Slow test_e2;
          Alcotest.test_case "E3 adaptive bound" `Slow test_e3;
          Alcotest.test_case "E4 eventual GC" `Slow test_e4;
          Alcotest.test_case "E5 crossover" `Slow test_e5;
          Alcotest.test_case "E6 f sweep" `Slow test_e6;
          Alcotest.test_case "E7 k ablation" `Slow test_e7;
          Alcotest.test_case "E8 safe constant" `Slow test_e8;
          Alcotest.test_case "E9 read rounds" `Slow test_e9;
          Alcotest.test_case "E10 liveness under Ad" `Slow test_e10;
          Alcotest.test_case "E11 channel storage" `Slow test_e11;
          Alcotest.test_case "E12 adversary ablation" `Slow test_e12;
          Alcotest.test_case "E13 premature GC" `Quick test_e13;
          Alcotest.test_case "E14 indistinguishability" `Slow test_e14;
          Alcotest.test_case "E15 version bound" `Slow test_e15;
          Alcotest.test_case "E16 lower bound over messages" `Slow test_e16;
          Alcotest.test_case "E17 ell sweep" `Slow test_e17;
        ] );
      ( "workloads",
        [
          Alcotest.test_case "writers_only" `Quick test_writers_only;
          Alcotest.test_case "writers_and_readers" `Quick test_writers_and_readers;
          Alcotest.test_case "value_index" `Quick test_value_index;
        ] );
      ( "measurements",
        [
          Alcotest.test_case "consistent" `Quick test_measure_consistent;
          Alcotest.test_case "deterministic" `Quick test_measure_deterministic;
          Alcotest.test_case "worst" `Quick test_worst;
        ] );
      ( "stats",
        [
          Alcotest.test_case "basic" `Quick test_stats_basic;
          Alcotest.test_case "single sample" `Quick test_stats_single;
          Alcotest.test_case "percentiles" `Quick test_stats_percentile;
          Alcotest.test_case "errors" `Quick test_stats_errors;
          test_stats_mean_bounds;
          Alcotest.test_case "table csv" `Quick test_table_csv;
          Alcotest.test_case "message counts" `Quick test_message_counts;
        ] );
      ( "series",
        [
          Alcotest.test_case "record" `Quick test_series_record;
          Alcotest.test_case "queries" `Quick test_series_queries;
          Alcotest.test_case "sparkline" `Quick test_series_sparkline;
        ] );
    ]
