(* Tests for the discrete-event simulator: scheduling semantics,
   trigger/await, crashes, storage accounting hooks, policies. *)

module R = Sb_sim.Runtime
module Trace = Sb_sim.Trace
module Objstate = Sb_storage.Objstate
module Block = Sb_storage.Block
module Chunk = Sb_storage.Chunk
module Ts = Sb_storage.Timestamp

let value_bytes = 16
let v i = Sb_util.Values.distinct ~value_bytes i

(* A tiny test protocol: a write appends one 1-byte block to every
   object and awaits [quorum]; a read snapshots every object and returns
   the chunk count of the first response as a byte. *)
let append_algorithm ~n ~quorum : R.algorithm =
  let append_rmw ~op st =
    let block = Block.v ~source:op ~index:(Objstate.chunk_count st) (Bytes.make 1 'x') in
    ( { st with Objstate.vp = Chunk.v ~ts:Ts.zero block :: st.Objstate.vp },
      R.Ack )
  in
  {
    name = "append";
    init_obj = (fun _ -> Objstate.init ());
    write =
      (fun ctx _v ->
        let tickets =
          R.broadcast_rmw ~n ~payload:(fun _ -> []) (fun _ ->
              append_rmw ~op:ctx.op.id)
        in
        ignore (R.await ~tickets ~quorum));
    read =
      (fun _ctx ->
        let tickets =
          R.broadcast_rmw ~n ~payload:(fun _ -> []) (fun _ st -> (st, R.Snap st))
        in
        match R.await ~tickets ~quorum with
        | (_, R.Snap st) :: _ -> Some (Bytes.make 1 (Char.chr (Objstate.chunk_count st)))
        | _ -> None);
  }

let run_with ?(n = 3) ?(f = 1) ?(quorum = 2) ?(seed = 1) ?max_steps ~workload policy_of
    () =
  let algo = append_algorithm ~n ~quorum in
  let w = R.create ~seed ~algorithm:algo ~n ~f ~workload () in
  let outcome = R.run ?max_steps w (policy_of w) in
  (w, outcome)

let writes count = List.init count (fun i -> Trace.Write (v i))

(* ------------------------------------------------------------------ *)
(* Basic lifecycle                                                     *)
(* ------------------------------------------------------------------ *)

let test_quiescent_run () =
  let w, outcome =
    run_with ~workload:[| writes 2; [ Trace.Read ] |]
      (fun _ -> R.random_policy ~seed:7 ())
      ()
  in
  Alcotest.(check bool) "quiescent" true outcome.R.quiescent;
  Alcotest.(check bool) "not halted" false outcome.R.halted;
  let ops = Trace.operations (R.trace w) in
  Alcotest.(check int) "3 operations" 3 (List.length ops);
  List.iter
    (fun (_, _, inv, ret, _) ->
      match ret with
      | Some rt -> Alcotest.(check bool) "return after invoke" true (rt >= inv)
      | None -> Alcotest.fail "operation did not return")
    ops

let test_validation () =
  let algo = append_algorithm ~n:2 ~quorum:1 in
  Alcotest.(check bool) "f >= n/2 rejected" true
    (try ignore (R.create ~algorithm:algo ~n:2 ~f:1 ~workload:[||] ()); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "negative f rejected" true
    (try ignore (R.create ~algorithm:algo ~n:2 ~f:(-1) ~workload:[||] ()); false
     with Invalid_argument _ -> true)

let test_empty_workload () =
  let _, outcome = run_with ~workload:[||] (fun _ -> R.fifo_policy ()) () in
  Alcotest.(check bool) "immediately quiescent" true outcome.R.quiescent;
  Alcotest.(check int) "no steps" 0 outcome.R.steps

let test_max_steps_cutoff () =
  let _, outcome =
    run_with ~max_steps:3 ~workload:[| writes 5 |] (fun _ -> R.fifo_policy ()) ()
  in
  Alcotest.(check int) "stopped at budget" 3 outcome.R.steps;
  Alcotest.(check bool) "not quiescent" false outcome.R.quiescent

let test_determinism () =
  let trace_of seed =
    let w, _ =
      run_with ~seed ~workload:[| writes 3; writes 2; [ Trace.Read; Trace.Read ] |]
        (fun _ -> R.random_policy ~seed:99 ())
        ()
    in
    List.map (Format.asprintf "%a" Trace.pp_event) (Trace.events (R.trace w))
  in
  Alcotest.(check (list string)) "same seed, same trace" (trace_of 5) (trace_of 5)

let test_fifo_deterministic () =
  let run () =
    let w, _ = run_with ~workload:[| writes 2; [ Trace.Read ] |] (fun _ -> R.fifo_policy ()) () in
    List.map (Format.asprintf "%a" Trace.pp_event) (Trace.events (R.trace w))
  in
  Alcotest.(check (list string)) "fifo deterministic" (run ()) (run ())

(* ------------------------------------------------------------------ *)
(* Atomicity of RMWs: no lost updates                                  *)
(* ------------------------------------------------------------------ *)

let test_no_lost_updates () =
  let clients = 4 and per_client = 3 in
  let workload = Array.make clients (writes per_client) in
  let w, outcome = run_with ~workload (fun _ -> R.random_policy ~seed:3 ()) () in
  Alcotest.(check bool) "quiescent" true outcome.R.quiescent;
  (* Every write appended one block to every live object atomically. *)
  for i = 0 to 2 do
    Alcotest.(check int)
      (Printf.sprintf "object %d has all appends" i)
      (clients * per_client)
      (Objstate.chunk_count (R.obj_state w i))
  done

(* ------------------------------------------------------------------ *)
(* Await semantics                                                     *)
(* ------------------------------------------------------------------ *)

let test_quorum_gating () =
  (* With a fifo policy, a write on 3 objects with quorum 2 returns
     after 2 deliveries; the 3rd response arrives later harmlessly. *)
  let w = R.create ~algorithm:(append_algorithm ~n:3 ~quorum:2) ~n:3 ~f:1
      ~workload:[| [ Trace.Write (v 0) ] |] () in
  (* Step client: invokes, triggers 3 RMWs, parks. *)
  Alcotest.(check bool) "step ok" true (R.step w (R.Step 0));
  Alcotest.(check int) "3 pending" 3 (List.length (R.pending_rmws w));
  Alcotest.(check (list int)) "not yet steppable" [] (R.steppable w);
  (match R.deliverable w with
   | p1 :: _ -> R.step w (R.Deliver p1.R.ticket) |> ignore
   | [] -> Alcotest.fail "nothing deliverable");
  Alcotest.(check (list int)) "one response: still parked" [] (R.steppable w);
  (match R.deliverable w with
   | p2 :: _ -> R.step w (R.Deliver p2.R.ticket) |> ignore
   | [] -> Alcotest.fail "nothing deliverable");
  Alcotest.(check (list int)) "quorum reached: runnable" [ 0 ] (R.steppable w);
  Alcotest.(check bool) "client runnable" true (R.client_status w 0 = R.Runnable);
  (* Resume; the write returns. *)
  ignore (R.step w (R.Step 0));
  Alcotest.(check bool) "write returned" true
    (List.exists
       (function Trace.Return _ -> true | _ -> false)
       (Trace.events (R.trace w)));
  (* The straggler is still deliverable and harmless. *)
  (match R.deliverable w with
   | [ p3 ] -> ignore (R.step w (R.Deliver p3.R.ticket))
   | l -> Alcotest.failf "expected 1 straggler, got %d" (List.length l));
  Alcotest.(check int) "all applied" 1 (Objstate.chunk_count (R.obj_state w 2))

let test_zero_quorum () =
  (* quorum 0 never blocks. *)
  let algo = append_algorithm ~n:3 ~quorum:0 in
  let w = R.create ~algorithm:algo ~n:3 ~f:1 ~workload:[| [ Trace.Write (v 1) ] |] () in
  ignore (R.step w (R.Step 0));
  Alcotest.(check bool) "write returned without any delivery" true
    (List.exists
       (function Trace.Return _ -> true | _ -> false)
       (Trace.events (R.trace w)))

(* ------------------------------------------------------------------ *)
(* Crashes                                                             *)
(* ------------------------------------------------------------------ *)

let test_crash_object () =
  let w = R.create ~algorithm:(append_algorithm ~n:3 ~quorum:2) ~n:3 ~f:1
      ~workload:[| [ Trace.Write (v 0) ] |] () in
  ignore (R.step w (R.Step 0));
  ignore (R.step w (R.Crash_obj 1));
  Alcotest.(check bool) "marked dead" false (R.obj_alive w 1);
  (* RMWs on the dead object are no longer deliverable... *)
  Alcotest.(check int) "2 deliverable" 2 (List.length (R.deliverable w));
  (* ...but still pending (they occupy channel state). *)
  Alcotest.(check int) "3 pending" 3 (List.length (R.pending_rmws w));
  Alcotest.(check bool) "delivering to dead object rejected" true
    (let dead_ticket =
       List.find (fun p -> p.R.p_obj = 1) (R.pending_rmws w)
     in
     try ignore (R.step w (R.Deliver dead_ticket.R.ticket)); false
     with Invalid_argument _ -> true);
  (* Crashing more than f objects is rejected. *)
  Alcotest.(check bool) "second crash rejected (f=1)" true
    (try ignore (R.step w (R.Crash_obj 0)); false with Invalid_argument _ -> true);
  (* The write can still finish from the other two objects. *)
  List.iter (fun p -> ignore (R.step w (R.Deliver p.R.ticket))) (R.deliverable w);
  ignore (R.step w (R.Step 0));
  Alcotest.(check bool) "write completed despite crash" true
    (List.exists (function Trace.Return _ -> true | _ -> false)
       (Trace.events (R.trace w)))

let test_crash_client () =
  let w = R.create ~algorithm:(append_algorithm ~n:3 ~quorum:2) ~n:3 ~f:1
      ~workload:[| [ Trace.Write (v 0) ]; [ Trace.Write (v 1) ] |] () in
  ignore (R.step w (R.Step 0));
  ignore (R.step w (R.Crash_client 0));
  Alcotest.(check bool) "status crashed" true (R.client_status w 0 = R.Crashed);
  (* Its triggered RMWs can still take effect. *)
  Alcotest.(check int) "pending survive crash" 3 (List.length (R.deliverable w));
  (match R.deliverable w with
   | p :: _ -> ignore (R.step w (R.Deliver p.R.ticket))
   | [] -> Alcotest.fail "nothing deliverable");
  Alcotest.(check int) "took effect" 1 (Objstate.chunk_count (R.obj_state w 0));
  (* Stepping a crashed client is invalid. *)
  Alcotest.(check bool) "step crashed rejected" true
    (try ignore (R.step w (R.Step 0)); false with Invalid_argument _ -> true);
  (* Its outstanding op never returns but the other client proceeds. *)
  let outcome = R.run w (R.random_policy ~seed:1 ()) in
  Alcotest.(check bool) "rest of system quiescent" true outcome.R.quiescent;
  let ops = Trace.operations (R.trace w) in
  let returned = List.filter (fun (_, _, _, ret, _) -> ret <> None) ops in
  Alcotest.(check int) "only the live client's op returned" 1 (List.length returned)

(* ------------------------------------------------------------------ *)
(* Invalid decisions                                                   *)
(* ------------------------------------------------------------------ *)

let test_invalid_decisions () =
  let w = R.create ~algorithm:(append_algorithm ~n:3 ~quorum:2) ~n:3 ~f:1
      ~workload:[| [ Trace.Write (v 0) ] |] () in
  Alcotest.(check bool) "unknown ticket" true
    (try ignore (R.step w (R.Deliver 999)); false with Invalid_argument _ -> true);
  Alcotest.(check bool) "step client without work" true
    (try ignore (R.step w (R.Step 0)); ignore (R.step w (R.Step 0)); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "crash unknown object" true
    (try ignore (R.step w (R.Crash_obj 5)); false with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Storage accounting hooks                                            *)
(* ------------------------------------------------------------------ *)

(* A protocol variant whose RMW carries a payload block, to exercise the
   in-flight accounting. *)
let payload_algorithm ~n ~quorum ~payload_bytes : R.algorithm =
  {
    name = "payload";
    init_obj = (fun _ -> Objstate.init ());
    write =
      (fun ctx _v ->
        let block i = Block.v ~source:ctx.op.id ~index:i (Bytes.make payload_bytes 'p') in
        let tickets =
          R.broadcast_rmw ~n
            ~payload:(fun i -> [ block i ])
            (fun i st ->
              ( { st with Objstate.vp = Chunk.v ~ts:Ts.zero (block i) :: st.Objstate.vp },
                R.Ack ))
        in
        ignore (R.await ~tickets ~quorum));
    read = (fun _ -> None);
  }

let test_inflight_accounting () =
  let payload_bytes = 4 in
  let n = 3 in
  let algo = payload_algorithm ~n ~quorum:2 ~payload_bytes in
  let w = R.create ~algorithm:algo ~n ~f:1 ~workload:[| [ Trace.Write (v 0) ] |] () in
  ignore (R.step w (R.Step 0));
  (* Three pending RMWs, each carrying 32 payload bits; nothing stored yet. *)
  Alcotest.(check int) "objects empty" 0 (R.storage_bits_objects w);
  Alcotest.(check int) "in-flight total" (3 * 8 * payload_bytes) (R.storage_bits_total w);
  let op = List.hd (R.outstanding_ops w) in
  Alcotest.(check int) "own pending excluded from contribution" 0
    (R.op_contribution w op);
  (* After one delivery the block is at the object and counts. *)
  (match R.deliverable w with
   | p :: _ -> ignore (R.step w (R.Deliver p.R.ticket))
   | [] -> Alcotest.fail "nothing deliverable");
  Alcotest.(check int) "stored bits" (8 * payload_bytes) (R.storage_bits_objects w);
  Alcotest.(check int) "contribution counts stored block" (8 * payload_bytes)
    (R.op_contribution w op);
  Alcotest.(check bool) "maxima track" true (R.max_bits_total w >= 3 * 8 * payload_bytes)

let test_crashed_object_not_counted () =
  let algo = payload_algorithm ~n:3 ~quorum:1 ~payload_bytes:2 in
  let w = R.create ~algorithm:algo ~n:3 ~f:1 ~workload:[| [ Trace.Write (v 0) ] |] () in
  ignore (R.step w (R.Step 0));
  (match R.deliverable w with
   | p :: _ -> ignore (R.step w (R.Deliver p.R.ticket))
   | [] -> Alcotest.fail "nothing deliverable");
  let before = R.storage_bits_objects w in
  Alcotest.(check bool) "stored something" true (before > 0);
  ignore (R.step w (R.Crash_obj 0));
  Alcotest.(check int) "dead object's bits gone" 0 (R.storage_bits_objects w)

(* ------------------------------------------------------------------ *)
(* Rounds bookkeeping                                                  *)
(* ------------------------------------------------------------------ *)

let test_read_rounds_counted () =
  let value_bytes = 16 in
  let f = 1 and k = 1 in
  let n = 3 in
  let codec = Sb_codec.Codec.rs_vandermonde ~value_bytes ~k ~n in
  let cfg = { Sb_registers.Common.n; f; codec } in
  let algo = Sb_registers.Adaptive.make cfg in
  let w = R.create ~algorithm:algo ~n ~f ~workload:[| [ Trace.Read ] |] () in
  let outcome = R.run w (R.fifo_policy ()) in
  Alcotest.(check bool) "quiescent" true outcome.R.quiescent;
  Alcotest.(check int) "one readValue round" 1 (R.max_read_rounds w)

(* ------------------------------------------------------------------ *)
(* Dynamic workloads                                                   *)
(* ------------------------------------------------------------------ *)

let test_enqueue_op () =
  let algo = append_algorithm ~n:3 ~quorum:2 in
  let w = R.create ~algorithm:algo ~n:3 ~f:1 ~workload:[| [] |] () in
  Alcotest.(check bool) "initially quiescent" true
    (R.deliverable w = [] && R.steppable w = []);
  R.enqueue_op w ~client:0 (Trace.Write (v 0));
  Alcotest.(check (list int)) "client now steppable" [ 0 ] (R.steppable w);
  let outcome = R.run w (R.random_policy ~seed:2 ()) in
  Alcotest.(check bool) "enqueued op completes" true outcome.R.quiescent;
  R.enqueue_op w ~client:0 Trace.Read;
  let outcome = R.run w (R.random_policy ~seed:3 ()) in
  Alcotest.(check bool) "second enqueue works on a used world" true outcome.R.quiescent;
  Alcotest.(check int) "both ops returned" 2
    (List.length
       (List.filter (fun (_, _, _, ret, _) -> ret <> None)
          (Trace.operations (R.trace w))));
  Alcotest.(check bool) "unknown client rejected" true
    (try R.enqueue_op w ~client:7 Trace.Read; false with Invalid_argument _ -> true);
  ignore (R.step w (R.Crash_client 0));
  Alcotest.(check bool) "crashed client rejected" true
    (try R.enqueue_op w ~client:0 Trace.Read; false with Invalid_argument _ -> true)

let test_response_to_crashed_client_dropped () =
  let algo = append_algorithm ~n:3 ~quorum:2 in
  let w = R.create ~algorithm:algo ~n:3 ~f:1 ~workload:[| [ Trace.Write (v 0) ] |] () in
  ignore (R.step w (R.Step 0));
  ignore (R.step w (R.Crash_client 0));
  (* Deliveries still mutate objects but produce no client progress. *)
  List.iter (fun (p : R.pending_info) -> ignore (R.step w (R.Deliver p.ticket)))
    (R.deliverable w);
  Alcotest.(check int) "writes took effect" 1
    (Objstate.chunk_count (R.obj_state w 0));
  Alcotest.(check (list int)) "nobody steppable" [] (R.steppable w);
  Alcotest.(check bool) "world quiesces" true (R.run w (R.fifo_policy ())).R.quiescent

(* ------------------------------------------------------------------ *)
(* Trace serialisation                                                 *)
(* ------------------------------------------------------------------ *)

let test_trace_roundtrip () =
  (* Serialise a real run's trace and parse it back. *)
  let w, _ =
    run_with ~workload:[| writes 2; [ Trace.Read ] |]
      (fun _ -> R.random_policy ~seed:21 ())
      ()
  in
  ignore (R.step w (R.Crash_obj 0));
  let tr = R.trace w in
  let lines = Trace.to_lines tr in
  Alcotest.(check int) "one line per event" (Trace.length tr) (List.length lines);
  match Trace.of_lines lines with
  | Error msg -> Alcotest.failf "parse failed: %s" msg
  | Ok tr' ->
    Alcotest.(check bool) "events preserved" true (Trace.events tr = Trace.events tr');
    Alcotest.(check bool) "operations preserved" true
      (Trace.operations tr = Trace.operations tr')

let test_trace_parse_errors () =
  List.iter
    (fun input ->
      match Trace.of_lines [ input ] with
      | Ok _ -> Alcotest.failf "expected parse error for %S" input
      | Error _ -> ())
    [ "Z 1 2"; "I x 2 3 R"; "I 1 2 3 W zz"; "T 1 2 3"; "nonsense" ]

let test_trace_blank_lines () =
  match Trace.of_lines [ ""; "X 3 1"; "" ] with
  | Ok tr -> Alcotest.(check int) "blank lines skipped" 1 (Trace.length tr)
  | Error msg -> Alcotest.fail msg

let () =
  Alcotest.run "sim"
    [
      ( "lifecycle",
        [
          Alcotest.test_case "quiescent run" `Quick test_quiescent_run;
          Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "empty workload" `Quick test_empty_workload;
          Alcotest.test_case "max_steps cutoff" `Quick test_max_steps_cutoff;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "fifo deterministic" `Quick test_fifo_deterministic;
        ] );
      ( "rmw",
        [
          Alcotest.test_case "no lost updates" `Quick test_no_lost_updates;
          Alcotest.test_case "quorum gating" `Quick test_quorum_gating;
          Alcotest.test_case "zero quorum" `Quick test_zero_quorum;
        ] );
      ( "crashes",
        [
          Alcotest.test_case "crash object" `Quick test_crash_object;
          Alcotest.test_case "crash client" `Quick test_crash_client;
        ] );
      ( "decisions",
        [ Alcotest.test_case "invalid decisions" `Quick test_invalid_decisions ] );
      ( "accounting",
        [
          Alcotest.test_case "in-flight payloads" `Quick test_inflight_accounting;
          Alcotest.test_case "crashed object not counted" `Quick
            test_crashed_object_not_counted;
        ] );
      ( "rounds",
        [ Alcotest.test_case "read rounds counted" `Quick test_read_rounds_counted ] );
      ( "dynamic",
        [
          Alcotest.test_case "enqueue_op" `Quick test_enqueue_op;
          Alcotest.test_case "crashed client responses dropped" `Quick
            test_response_to_crashed_client_dropped;
        ] );
      ( "serialisation",
        [
          Alcotest.test_case "roundtrip" `Quick test_trace_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_trace_parse_errors;
          Alcotest.test_case "blank lines" `Quick test_trace_blank_lines;
        ] );
    ]
