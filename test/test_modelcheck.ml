(* Randomised model checking: sweep system parameters, workload shapes,
   crash schedules, and both runtimes, machine-checking every resulting
   history against the consistency level its algorithm promises.

   This is the broad net behind the targeted unit tests: any scheduling
   bug in a runtime, any lost update in an RMW, any quorum-size mistake
   in a register, or any unsound checker tends to surface here. *)

module R = Sb_sim.Runtime
module MP = Sb_msgnet.Mp_runtime
module Trace = Sb_sim.Trace
module Common = Sb_registers.Common
module Codec = Sb_codec.Codec
module Prng = Sb_util.Prng

let qtest ?(count = 50) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let is_ok = function Sb_spec.Regularity.Ok -> true | _ -> false

type scenario = {
  sc_seed : int;
  value_bytes : int;
  f : int;
  k : int;
  algo : [ `Adaptive | `Pure_ec | `Abd | `Abd_atomic | `Safe | `Versioned of int ];
  workload : Trace.op_kind list array;
  crashes : (int * int) list; (* (time, object) *)
}

let build_algo sc =
  match sc.algo with
  | `Abd | `Abd_atomic ->
    let n = (2 * sc.f) + 1 in
    let cfg =
      { Common.n; f = sc.f; codec = Codec.replication ~value_bytes:sc.value_bytes ~n }
    in
    let make =
      if sc.algo = `Abd then Sb_registers.Abd.make else Sb_registers.Abd_atomic.make
    in
    (make cfg, cfg)
  | _ ->
    let n = (2 * sc.f) + sc.k in
    let cfg =
      {
        Common.n;
        f = sc.f;
        codec = Codec.rs_vandermonde ~value_bytes:sc.value_bytes ~k:sc.k ~n;
      }
    in
    let make =
      match sc.algo with
      | `Adaptive -> Sb_registers.Adaptive.make
      | `Pure_ec -> Sb_registers.Adaptive.make_unbounded
      | `Safe -> Sb_registers.Safe_register.make
      | `Versioned delta -> Sb_registers.Adaptive.make_versioned ~delta
      | `Abd | `Abd_atomic -> assert false
    in
    (make cfg, cfg)

let gen_scenario =
  QCheck2.Gen.map
    (fun seed ->
      let prng = Prng.create seed in
      let value_bytes = 8 + Prng.int prng 56 in
      let f = 1 + Prng.int prng 3 in
      let k = 1 + Prng.int prng 4 in
      let algo =
        Prng.pick prng
          [|
            `Adaptive; `Pure_ec; `Abd; `Abd_atomic; `Safe;
            `Versioned (Prng.int prng 4);
          |]
      in
      let clients = 1 + Prng.int prng 4 in
      let value_counter = ref 0 in
      let workload =
        Array.init clients (fun _ ->
            List.init
              (1 + Prng.int prng 3)
              (fun _ ->
                if Prng.bool prng then Trace.Read
                else begin
                  incr value_counter;
                  Trace.Write (Sb_util.Values.distinct ~value_bytes !value_counter)
                end))
      in
      let crash_count = Prng.int prng (f + 1) in
      let n =
        match algo with
        | `Abd | `Abd_atomic -> (2 * f) + 1
        | _ -> (2 * f) + k
      in
      let crashes =
        List.init crash_count (fun i -> (Prng.int prng 200, (i * 2) mod n))
        |> List.sort_uniq compare
      in
      (* Distinct objects only: crashing the same object twice is an
         error the policy would skip anyway. *)
      let seen = Hashtbl.create 4 in
      let crashes =
        List.filter
          (fun (_, o) ->
            if Hashtbl.mem seen o then false
            else begin
              Hashtbl.add seen o ();
              true
            end)
          crashes
      in
      { sc_seed = seed; value_bytes; f; k; algo; workload; crashes })
    QCheck2.Gen.(int_bound 10_000_000)

let expected_checker sc history =
  match sc.algo with
  | `Safe -> is_ok (Sb_spec.Regularity.check_safe history)
  | `Abd_atomic ->
    (* Atomicity where the search is tractable, strong regularity always. *)
    let ops = List.length history.Sb_spec.History.writes
              + List.length history.Sb_spec.History.reads in
    is_ok (Sb_spec.Regularity.check_strong history)
    && (ops > 20 || is_ok (Sb_spec.Regularity.check_atomic history))
  | `Adaptive | `Pure_ec | `Abd | `Versioned _ ->
    is_ok (Sb_spec.Regularity.check_strong history)

let test_shared_memory =
  qtest ~count:120 "shared memory: random scenarios stay consistent" gen_scenario
    (fun sc ->
      let algorithm, cfg = build_algo sc in
      let w =
        R.create ~seed:sc.sc_seed ~algorithm ~n:cfg.n ~f:cfg.f ~workload:sc.workload ()
      in
      let policy = R.random_policy ~crash_objs:sc.crashes ~seed:(sc.sc_seed + 1) () in
      let outcome = R.run ~max_steps:200_000 w policy in
      let ops = Trace.operations (R.trace w) in
      let all_returned =
        List.for_all (fun (_, _, _, ret, _) -> ret <> None) ops
      in
      let history =
        Sb_spec.History.of_trace
          ~initial:(Bytes.make sc.value_bytes '\000')
          (R.trace w)
      in
      outcome.R.quiescent && all_returned && expected_checker sc history)

let test_message_passing =
  qtest ~count:80 "message passing: random scenarios stay consistent" gen_scenario
    (fun sc ->
      let algorithm, cfg = build_algo sc in
      let w =
        MP.create ~seed:sc.sc_seed ~algorithm ~n:cfg.n ~f:cfg.f ~workload:sc.workload ()
      in
      let policy =
        MP.random_policy ~crash_servers:sc.crashes ~seed:(sc.sc_seed + 1) ()
      in
      let outcome = MP.run ~max_steps:200_000 w policy in
      let ops = Trace.operations (MP.trace w) in
      let all_returned = List.for_all (fun (_, _, _, ret, _) -> ret <> None) ops in
      let history =
        Sb_spec.History.of_trace
          ~initial:(Bytes.make sc.value_bytes '\000')
          (MP.trace w)
      in
      outcome.MP.quiescent && all_returned && expected_checker sc history)

(* Storage never exceeds the coarse universal envelope: every object
   stores at most max(2k, c+1) pieces plus a replica's worth, regardless
   of schedule.  A much looser invariant than E3's, checked over far
   wilder scenarios. *)
let test_storage_envelope =
  qtest ~count:80 "adaptive storage envelope over random scenarios"
    QCheck2.Gen.(int_bound 10_000_000)
    (fun seed ->
      let prng = Prng.create seed in
      let value_bytes = 16 + Prng.int prng 48 in
      let f = 1 + Prng.int prng 3 in
      let k = 1 + Prng.int prng 4 in
      let n = (2 * f) + k in
      let cfg =
        { Common.n; f; codec = Codec.rs_vandermonde ~value_bytes ~k ~n }
      in
      let algorithm = Sb_registers.Adaptive.make cfg in
      let c = 1 + Prng.int prng 5 in
      let workload =
        Sb_experiments.Workloads.writers_only ~value_bytes ~c ~writes_each:2
      in
      let w = R.create ~seed ~algorithm ~n ~f ~workload () in
      ignore (R.run w (R.random_policy ~seed:(seed + 7) ()));
      let piece = Codec.block_bits cfg.codec 0 in
      R.max_bits_objects w <= n * 2 * k * piece)

(* --- Systematic exploration (Sb_modelcheck) ------------------------ *)

module E = Sb_modelcheck.Explore
module Shrink = Sb_modelcheck.Shrink
module Reg = Sb_spec.Regularity

let explore_config ?(mk = Sb_registers.Abd.make) ?(check = Reg.check_strong)
    ?dpor ?cache ?paranoid_key ?lint ?on_history ?stop_on_violation
    ?max_schedules workload =
  let value_bytes = 8 in
  let n = 3 and f = 1 in
  let cfg = { Common.n; f; codec = Codec.replication ~value_bytes ~n } in
  E.config ?dpor ?cache ?paranoid_key ?lint ?on_history ?stop_on_violation
    ?max_schedules ~algorithm:(mk cfg) ~n ~f ~workload
    ~initial:(Bytes.make value_bytes '\000') ~check ()

let small_workload =
  let v i = Sb_util.Values.distinct ~value_bytes:8 i in
  [| [ Trace.Write (v 1) ]; [ Trace.Write (v 2) ]; [ Trace.Read ] |]

(* The seeded bug: a write quorum one short of intersecting the read
   quorum.  Exploration must find a strong-regularity violation, the
   shrinker must cut it down to a short trace, and the shrunk trace must
   still violate when replayed from scratch. *)
let test_broken_abd_shrinks () =
  let cfg =
    explore_config ~mk:(Sb_registers.Abd.make_broken ~quorum_slack:1)
      small_workload
  in
  let out = E.explore cfg in
  match out.E.first_violation with
  | None -> Alcotest.fail "broken ABD survived exhaustive exploration"
  | Some v ->
    Alcotest.(check bool) "outcome counted the violation" true
      (out.E.stats.E.violations >= 1);
    let shrunk = Shrink.shrink cfg v.E.v_decisions in
    Alcotest.(check bool) "shrunk trace is no longer than the original" true
      (List.length shrunk <= List.length v.E.v_decisions);
    Alcotest.(check bool)
      (Printf.sprintf "shrunk to at most 15 decisions (got %d)"
         (List.length shrunk))
      true
      (List.length shrunk <= 15);
    (match Shrink.check_decisions cfg shrunk with
     | None -> Alcotest.fail "shrunk trace no longer violates on replay"
     | Some (cx, h) ->
       Alcotest.(check bool) "counterexample carries a reason" true
         (String.length (Reg.to_string cx) > 0);
       Alcotest.(check bool) "replayed history has a completed read" true
         (Sb_spec.History.completed_reads h <> []));
    (* Local minimality: deleting any single decision loses the bug. *)
    List.iteri
      (fun i _ ->
        let without =
          List.filteri (fun j _ -> j <> i) shrunk
        in
        match Shrink.check_decisions cfg without with
        | None -> ()
        | Some _ ->
          Alcotest.failf "deleting decision %d still violates: not minimal" i)
      shrunk

(* DPOR is a pruning, not an approximation.  The reduced search is run
   to completion (cheap); the naive search is capped at ten times the
   reduced count and must hit the cap — a witnessed >=10x reduction —
   while every read value it observed is one the reduced search also
   reaches.  (Running naive enumeration to completion here would mean
   ~10M schedules; the exhaustive value-set agreement is covered per
   algorithm in test_litmus.ml.) *)
let test_dpor_beats_naive () =
  let workload =
    let v i = Sb_util.Values.distinct ~value_bytes:8 i in
    [| [ Trace.Write (v 1) ]; [ Trace.Read ] |]
  in
  let run ~dpor ~max_schedules =
    let values = ref [] in
    let on_history _ h =
      List.iter
        (fun rd ->
          match rd.Sb_spec.History.result with
          | Some v when not (List.mem v !values) -> values := v :: !values
          | _ -> ())
        (Sb_spec.History.completed_reads h)
    in
    let out = E.explore (explore_config ~dpor ~on_history ~max_schedules workload) in
    Alcotest.(check int) "no violations" 0 out.E.stats.E.violations;
    (out, List.sort compare !values)
  in
  let reduced, vals_dpor = run ~dpor:true ~max_schedules:0 in
  Alcotest.(check bool) "reduced search completed" true reduced.E.complete;
  let cap = 10 * reduced.E.stats.E.schedules in
  let naive, vals_naive = run ~dpor:false ~max_schedules:cap in
  Alcotest.(check bool)
    (Printf.sprintf "naive enumeration exceeds 10x the reduced count (%d)"
       reduced.E.stats.E.schedules)
    true
    ((not naive.E.complete) && naive.E.stats.E.schedules >= cap);
  List.iter
    (fun v ->
      Alcotest.(check bool) "naive-observed value also seen by DPOR" true
        (List.mem v vals_dpor))
    vals_naive

(* State caching must not change any verdict, only the amount of work. *)
let test_cache_agrees () =
  let workload =
    let v i = Sb_util.Values.distinct ~value_bytes:8 i in
    [| [ Trace.Write (v 1) ]; [ Trace.Read ] |]
  in
  let run ~cache =
    let out = E.explore (explore_config ~cache workload) in
    Alcotest.(check bool) "exploration completed" true out.E.complete;
    (out.E.stats.E.schedules, out.E.stats.E.violations)
  in
  let with_cache, viol_cache = run ~cache:true in
  let without, viol_plain = run ~cache:false in
  Alcotest.(check int) "no violations either way" viol_plain viol_cache;
  Alcotest.(check bool)
    (Printf.sprintf "cache never increases schedules (%d vs %d)" with_cache
       without)
    true
    (with_cache <= without)

(* --- State-hash fidelity ------------------------------------------- *)

(* The state cache is keyed by [Runtime.state_hash], a 128-bit hash
   maintained incrementally across steps; [Runtime.exploration_key] is
   the Marshal-based ground truth it replaced.  Cache soundness needs
   the hash to refine the key: Marshal-equal states must hash equal.
   The converse (hash-equal implies Marshal-equal) is a collision check
   — in spaces this small a counterexample is a maintenance bug, not
   bad luck with 2^-64 odds. *)

let world_of_config cfg =
  Sb_sim.Runtime.create ~seed:cfg.E.seed ~algorithm:cfg.E.algorithm ~n:cfg.E.n
    ~f:cfg.E.f ~workload:cfg.E.workload ()

(* Shared across prefixes and across tests: states reached by different
   routes must agree on key -> hash, exactly as the cache assumes. *)
let key_to_hash : (string, string) Hashtbl.t = Hashtbl.create 4096
let hash_to_key : (string, string) Hashtbl.t = Hashtbl.create 4096

let record_state w =
  let key = R.exploration_key w and h = R.state_hash w in
  (match Hashtbl.find_opt key_to_hash key with
   | None -> Hashtbl.add key_to_hash key h
   | Some h' ->
     if not (String.equal h h') then
       Alcotest.fail "equal Marshal keys mapped to distinct state hashes");
  match Hashtbl.find_opt hash_to_key h with
  | None -> Hashtbl.add hash_to_key h key
  | Some key' ->
    if not (String.equal key key') then
      Alcotest.fail "state-hash collision across distinct Marshal keys"

(* Every decision prefix of the small workload, breadth-exhaustively to
   a fixed depth, each replayed on a fresh world: incremental hashing
   must agree with Marshal whatever the route to a state. *)
let test_hash_refines_marshal_key () =
  let cfg = explore_config small_workload in
  let states = ref 0 in
  let rec walk prefix depth =
    let w = world_of_config cfg in
    ignore (R.replay w (List.rev prefix));
    incr states;
    record_state w;
    if depth > 0 then
      List.iter
        (fun a -> walk (a.E.dec :: prefix) (depth - 1))
        (E.enabled_actions cfg w ~obj_left:0 ~cli_left:0)
  in
  walk [] 5;
  Alcotest.(check bool)
    (Printf.sprintf "visited a non-trivial prefix tree (%d states)" !states)
    true (!states > 100)

(* Random walks, hashing after every step: unlike the fresh-replay test
   above, this exercises long chains of incremental hash updates on a
   single mutated world. *)
let test_hash_random_walks =
  qtest ~count:100 "state hash matches Marshal key along random walks"
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let cfg = explore_config small_workload in
      let prng = Prng.create seed in
      let w = world_of_config cfg in
      record_state w;
      (try
         for _ = 1 to 4 + Prng.int prng 16 do
           match E.enabled_actions cfg w ~obj_left:0 ~cli_left:0 with
           | [] -> raise Exit
           | actions ->
             let a = List.nth actions (Prng.int prng (List.length actions)) in
             ignore (R.step w a.E.dec);
             record_state w
         done
       with Exit -> ());
      true)

(* The cross-check the cache itself runs under --paranoid-key: an
   exhaustive cached search must complete with the check enabled and
   prune exactly what the unchecked cache prunes.  (Paranoid mode keeps
   a Marshal key per cached state, so the space here stays small.) *)
let test_paranoid_cache_agrees () =
  let workload =
    let v i = Sb_util.Values.distinct ~value_bytes:8 i in
    [| [ Trace.Write (v 1) ]; [ Trace.Read ] |]
  in
  let run ~paranoid_key =
    E.explore (explore_config ~cache:true ~paranoid_key workload)
  in
  let plain = run ~paranoid_key:false in
  let paranoid = run ~paranoid_key:true in
  Alcotest.(check bool) "paranoid run completed" true paranoid.E.complete;
  Alcotest.(check int) "no violations" 0 paranoid.E.stats.E.violations;
  Alcotest.(check int) "same schedules as unchecked cache"
    plain.E.stats.E.schedules paranoid.E.stats.E.schedules;
  Alcotest.(check int) "same cache prunes as unchecked cache"
    plain.E.stats.E.cache_skips paranoid.E.stats.E.cache_skips

(* The determinism lint re-executes every schedule from its decision
   trace; a deterministic protocol must never diverge. *)
let test_lint_clean () =
  let out =
    E.explore (explore_config ~lint:true ~stop_on_violation:false
                 [| [ Trace.Write (Sb_util.Values.distinct ~value_bytes:8 1) ];
                    [ Trace.Read ] |])
  in
  Alcotest.(check bool) "exploration completed" true out.E.complete;
  Alcotest.(check int) "no lint failures" 0 out.E.stats.E.lint_failures;
  Alcotest.(check int) "no violations" 0 out.E.stats.E.violations

let () =
  Alcotest.run "modelcheck"
    [
      ( "random-scenarios",
        [ test_shared_memory; test_message_passing; test_storage_envelope ] );
      ( "systematic",
        [
          Alcotest.test_case "broken ABD: violation found and shrunk" `Quick
            test_broken_abd_shrinks;
          Alcotest.test_case "DPOR beats naive enumeration tenfold" `Quick
            test_dpor_beats_naive;
          Alcotest.test_case "state cache agrees with plain search" `Quick
            test_cache_agrees;
          Alcotest.test_case "determinism lint is clean" `Quick test_lint_clean;
        ] );
      ( "state-hash",
        [
          Alcotest.test_case "hash refines the Marshal key over all prefixes"
            `Quick test_hash_refines_marshal_key;
          test_hash_random_walks;
          Alcotest.test_case "paranoid cache cross-check agrees" `Quick
            test_paranoid_cache_agrees;
        ] );
    ]
