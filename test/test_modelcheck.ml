(* Randomised model checking: sweep system parameters, workload shapes,
   crash schedules, and both runtimes, machine-checking every resulting
   history against the consistency level its algorithm promises.

   This is the broad net behind the targeted unit tests: any scheduling
   bug in a runtime, any lost update in an RMW, any quorum-size mistake
   in a register, or any unsound checker tends to surface here. *)

module R = Sb_sim.Runtime
module MP = Sb_msgnet.Mp_runtime
module Trace = Sb_sim.Trace
module Common = Sb_registers.Common
module Codec = Sb_codec.Codec
module Prng = Sb_util.Prng

let qtest ?(count = 50) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let is_ok = function Sb_spec.Regularity.Ok -> true | _ -> false

type scenario = {
  sc_seed : int;
  value_bytes : int;
  f : int;
  k : int;
  algo : [ `Adaptive | `Pure_ec | `Abd | `Abd_atomic | `Safe | `Versioned of int ];
  workload : Trace.op_kind list array;
  crashes : (int * int) list; (* (time, object) *)
}

let build_algo sc =
  match sc.algo with
  | `Abd | `Abd_atomic ->
    let n = (2 * sc.f) + 1 in
    let cfg =
      { Common.n; f = sc.f; codec = Codec.replication ~value_bytes:sc.value_bytes ~n }
    in
    let make =
      if sc.algo = `Abd then Sb_registers.Abd.make else Sb_registers.Abd_atomic.make
    in
    (make cfg, cfg)
  | _ ->
    let n = (2 * sc.f) + sc.k in
    let cfg =
      {
        Common.n;
        f = sc.f;
        codec = Codec.rs_vandermonde ~value_bytes:sc.value_bytes ~k:sc.k ~n;
      }
    in
    let make =
      match sc.algo with
      | `Adaptive -> Sb_registers.Adaptive.make
      | `Pure_ec -> Sb_registers.Adaptive.make_unbounded
      | `Safe -> Sb_registers.Safe_register.make
      | `Versioned delta -> Sb_registers.Adaptive.make_versioned ~delta
      | `Abd | `Abd_atomic -> assert false
    in
    (make cfg, cfg)

let gen_scenario =
  QCheck2.Gen.map
    (fun seed ->
      let prng = Prng.create seed in
      let value_bytes = 8 + Prng.int prng 56 in
      let f = 1 + Prng.int prng 3 in
      let k = 1 + Prng.int prng 4 in
      let algo =
        Prng.pick prng
          [|
            `Adaptive; `Pure_ec; `Abd; `Abd_atomic; `Safe;
            `Versioned (Prng.int prng 4);
          |]
      in
      let clients = 1 + Prng.int prng 4 in
      let value_counter = ref 0 in
      let workload =
        Array.init clients (fun _ ->
            List.init
              (1 + Prng.int prng 3)
              (fun _ ->
                if Prng.bool prng then Trace.Read
                else begin
                  incr value_counter;
                  Trace.Write (Sb_util.Values.distinct ~value_bytes !value_counter)
                end))
      in
      let crash_count = Prng.int prng (f + 1) in
      let n =
        match algo with
        | `Abd | `Abd_atomic -> (2 * f) + 1
        | _ -> (2 * f) + k
      in
      let crashes =
        List.init crash_count (fun i -> (Prng.int prng 200, (i * 2) mod n))
        |> List.sort_uniq compare
      in
      (* Distinct objects only: crashing the same object twice is an
         error the policy would skip anyway. *)
      let seen = Hashtbl.create 4 in
      let crashes =
        List.filter
          (fun (_, o) ->
            if Hashtbl.mem seen o then false
            else begin
              Hashtbl.add seen o ();
              true
            end)
          crashes
      in
      { sc_seed = seed; value_bytes; f; k; algo; workload; crashes })
    QCheck2.Gen.(int_bound 10_000_000)

let expected_checker sc history =
  match sc.algo with
  | `Safe -> is_ok (Sb_spec.Regularity.check_safe history)
  | `Abd_atomic ->
    (* Atomicity where the search is tractable, strong regularity always. *)
    let ops = List.length history.Sb_spec.History.writes
              + List.length history.Sb_spec.History.reads in
    is_ok (Sb_spec.Regularity.check_strong history)
    && (ops > 20 || is_ok (Sb_spec.Regularity.check_atomic history))
  | `Adaptive | `Pure_ec | `Abd | `Versioned _ ->
    is_ok (Sb_spec.Regularity.check_strong history)

let test_shared_memory =
  qtest ~count:120 "shared memory: random scenarios stay consistent" gen_scenario
    (fun sc ->
      let algorithm, cfg = build_algo sc in
      let w =
        R.create ~seed:sc.sc_seed ~algorithm ~n:cfg.n ~f:cfg.f ~workload:sc.workload ()
      in
      let policy = R.random_policy ~crash_objs:sc.crashes ~seed:(sc.sc_seed + 1) () in
      let outcome = R.run ~max_steps:200_000 w policy in
      let ops = Trace.operations (R.trace w) in
      let all_returned =
        List.for_all (fun (_, _, _, ret, _) -> ret <> None) ops
      in
      let history =
        Sb_spec.History.of_trace
          ~initial:(Bytes.make sc.value_bytes '\000')
          (R.trace w)
      in
      outcome.R.quiescent && all_returned && expected_checker sc history)

let test_message_passing =
  qtest ~count:80 "message passing: random scenarios stay consistent" gen_scenario
    (fun sc ->
      let algorithm, cfg = build_algo sc in
      let w =
        MP.create ~seed:sc.sc_seed ~algorithm ~n:cfg.n ~f:cfg.f ~workload:sc.workload ()
      in
      let policy =
        MP.random_policy ~crash_servers:sc.crashes ~seed:(sc.sc_seed + 1) ()
      in
      let outcome = MP.run ~max_steps:200_000 w policy in
      let ops = Trace.operations (MP.trace w) in
      let all_returned = List.for_all (fun (_, _, _, ret, _) -> ret <> None) ops in
      let history =
        Sb_spec.History.of_trace
          ~initial:(Bytes.make sc.value_bytes '\000')
          (MP.trace w)
      in
      outcome.MP.quiescent && all_returned && expected_checker sc history)

(* Storage never exceeds the coarse universal envelope: every object
   stores at most max(2k, c+1) pieces plus a replica's worth, regardless
   of schedule.  A much looser invariant than E3's, checked over far
   wilder scenarios. *)
let test_storage_envelope =
  qtest ~count:80 "adaptive storage envelope over random scenarios"
    QCheck2.Gen.(int_bound 10_000_000)
    (fun seed ->
      let prng = Prng.create seed in
      let value_bytes = 16 + Prng.int prng 48 in
      let f = 1 + Prng.int prng 3 in
      let k = 1 + Prng.int prng 4 in
      let n = (2 * f) + k in
      let cfg =
        { Common.n; f; codec = Codec.rs_vandermonde ~value_bytes ~k ~n }
      in
      let algorithm = Sb_registers.Adaptive.make cfg in
      let c = 1 + Prng.int prng 5 in
      let workload =
        Sb_experiments.Workloads.writers_only ~value_bytes ~c ~writes_each:2
      in
      let w = R.create ~seed ~algorithm ~n ~f ~workload () in
      ignore (R.run w (R.random_policy ~seed:(seed + 7) ()));
      let piece = Codec.block_bits cfg.codec 0 in
      R.max_bits_objects w <= n * 2 * k * piece)

let () =
  Alcotest.run "modelcheck"
    [
      ( "random-scenarios",
        [ test_shared_memory; test_message_passing; test_storage_envelope ] );
    ]
