(* Tests for the lower-bound adversary Ad (Definition 7) and the
   experiment driver: classification, freeze monotonicity
   (Observation 2), progress denial (Corollary 1) and the storage bound
   (Theorem 1). *)

module R = Sb_sim.Runtime
module Trace = Sb_sim.Trace
module Ad = Sb_adversary.Ad
module LB = Sb_adversary.Lower_bound
module Common = Sb_registers.Common
module Codec = Sb_codec.Codec

let value_bytes = 64
let d = 8 * value_bytes

let coded_cfg ~f ~k =
  let n = (2 * f) + k in
  { Common.n; f; codec = Codec.rs_vandermonde ~value_bytes ~k ~n }

let abd_cfg ~f =
  let n = (2 * f) + 1 in
  { Common.n; f; codec = Codec.replication ~value_bytes ~n }

(* ------------------------------------------------------------------ *)
(* Classification                                                      *)
(* ------------------------------------------------------------------ *)

let test_classify_initial () =
  (* The adaptive register starts with one piece per object; with a low
     threshold everything is frozen, with a high one nothing is. *)
  let cfg = coded_cfg ~f:2 ~k:2 in
  let algorithm = Sb_registers.Adaptive.make cfg in
  let w = R.create ~algorithm ~n:cfg.n ~f:cfg.f ~workload:[||] () in
  let piece_bits = Codec.block_bits cfg.codec 0 in
  let low = Ad.classify ~ell_bits:piece_bits ~d_bits:d w in
  Alcotest.(check int) "all frozen at ell = piece size" cfg.n (List.length low.frozen);
  let high = Ad.classify ~ell_bits:(piece_bits + 1) ~d_bits:d w in
  Alcotest.(check int) "none frozen just above" 0 (List.length high.frozen);
  Alcotest.(check int) "no outstanding writes" 0
    (List.length high.c_plus + List.length high.c_minus)

let test_classify_sticky () =
  let cfg = coded_cfg ~f:2 ~k:2 in
  let algorithm = Sb_registers.Adaptive.make cfg in
  let w = R.create ~algorithm ~n:cfg.n ~f:cfg.f ~workload:[||] () in
  (* Objects currently below the threshold stay frozen if passed as
     sticky. *)
  let s = Ad.classify ~ell_bits:(d * 2) ~d_bits:d ~sticky_frozen:[ 3 ] w in
  Alcotest.(check (list int)) "sticky object stays frozen" [ 3 ] s.frozen

let test_classify_c_partition () =
  (* Drive one write so that one piece lands; with ell = D the write is
     immediately in C+, with small ell it stays in C-. *)
  let cfg = coded_cfg ~f:2 ~k:2 in
  let algorithm = Sb_registers.Adaptive.make_unbounded cfg in
  let workload = [| [ Trace.Write (Sb_util.Values.distinct ~value_bytes 0) ] |] in
  let w = R.create ~algorithm ~n:cfg.n ~f:cfg.f ~workload () in
  ignore (R.step w (R.Step 0));
  (* round 1: read RMWs — no blocks stored yet. *)
  let s = Ad.classify ~ell_bits:(d / 2) ~d_bits:d w in
  Alcotest.(check int) "one outstanding write in C-" 1 (List.length s.c_minus);
  Alcotest.(check int) "C+ empty before any block lands" 0 (List.length s.c_plus);
  (* deliver round 1, resume: update RMWs trigger; deliver one. *)
  List.iter (fun (p : R.pending_info) -> ignore (R.step w (R.Deliver p.ticket)))
    (R.deliverable w);
  ignore (R.step w (R.Step 0));
  (match R.deliverable w with
   | p :: _ -> ignore (R.step w (R.Deliver p.ticket))
   | [] -> Alcotest.fail "no update pending");
  let piece_bits = Codec.block_bits cfg.codec 0 in
  let tight = Ad.classify ~ell_bits:(d - piece_bits + 1) ~d_bits:d w in
  Alcotest.(check int) "one piece saturates at tight ell" 1 (List.length tight.c_plus);
  let loose = Ad.classify ~ell_bits:1 ~d_bits:d w in
  Alcotest.(check int) "loose ell keeps it in C-" 1 (List.length loose.c_minus)

(* ------------------------------------------------------------------ *)
(* Adversary schedule properties                                       *)
(* ------------------------------------------------------------------ *)

let test_freeze_monotone () =
  (* Observation 2: under Ad, F(t) only grows. *)
  let cfg = coded_cfg ~f:3 ~k:3 in
  let algorithm = Sb_registers.Adaptive.make_unbounded cfg in
  let c = 5 in
  let workload =
    Array.init c (fun i -> [ Trace.Write (Sb_util.Values.distinct ~value_bytes i) ])
  in
  let w = R.create ~algorithm ~n:cfg.n ~f:cfg.f ~workload () in
  let prev = ref [] in
  let on_step (s : Ad.snapshot) =
    Alcotest.(check bool) "F monotone" true
      (List.for_all (fun o -> List.mem o s.frozen) !prev);
    prev := s.frozen
  in
  let halt_when (s : Ad.snapshot) =
    List.length s.frozen > cfg.f || List.length s.c_plus >= c
  in
  let policy = Ad.policy ~ell_bits:(d / 2) ~d_bits:d ~halt_when ~on_step () in
  ignore (R.run ~max_steps:100_000 w policy)

let test_frozen_objects_never_delivered () =
  (* Once an object freezes, its stored bits never change again. *)
  let cfg = coded_cfg ~f:3 ~k:3 in
  let algorithm = Sb_registers.Adaptive.make_unbounded cfg in
  let c = 5 in
  let workload =
    Array.init c (fun i -> [ Trace.Write (Sb_util.Values.distinct ~value_bytes i) ])
  in
  let w = R.create ~algorithm ~n:cfg.n ~f:cfg.f ~workload () in
  let frozen_bits : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let on_step (s : Ad.snapshot) =
    List.iter
      (fun o ->
        let bits = R.obj_bits w o in
        match Hashtbl.find_opt frozen_bits o with
        | None -> Hashtbl.add frozen_bits o bits
        | Some b -> Alcotest.(check int) "frozen object untouched" b bits)
      s.frozen
  in
  let halt_when (s : Ad.snapshot) = List.length s.frozen > cfg.f in
  let policy = Ad.policy ~ell_bits:(d / 2) ~d_bits:d ~halt_when ~on_step () in
  ignore (R.run ~max_steps:100_000 w policy)

(* ------------------------------------------------------------------ *)
(* Corollary 1 / Theorem 1 via the driver                              *)
(* ------------------------------------------------------------------ *)

let regular_algorithms =
  [
    ("abd", Sb_registers.Abd.make (abd_cfg ~f:3), abd_cfg ~f:3);
    ("adaptive", Sb_registers.Adaptive.make (coded_cfg ~f:3 ~k:3), coded_cfg ~f:3 ~k:3);
    ( "pure-ec",
      Sb_registers.Adaptive.make_unbounded (coded_cfg ~f:3 ~k:3),
      coded_cfg ~f:3 ~k:3 );
  ]

let test_no_write_completes () =
  List.iter
    (fun (name, algorithm, cfg) ->
      List.iter
        (fun c ->
          let r = LB.run ~algorithm ~cfg ~c () in
          Alcotest.(check int) (name ^ ": no write returns under Ad") 0
            r.completed_writes)
        [ 1; 3; 6 ])
    regular_algorithms

let test_bound_holds () =
  List.iter
    (fun (name, algorithm, cfg) ->
      List.iter
        (fun c ->
          let r = LB.run ~algorithm ~cfg ~c () in
          Alcotest.(check bool)
            (Printf.sprintf "%s c=%d: storage >= Theorem 1 bound" name c)
            true
            (r.max_total_bits >= r.lower_bound_bits))
        [ 1; 2; 4 ])
    regular_algorithms

let test_branch_reached () =
  List.iter
    (fun (name, algorithm, cfg) ->
      let r = LB.run ~algorithm ~cfg ~c:4 () in
      Alcotest.(check bool) (name ^ ": a Lemma 3 branch is reached") true
        (r.branch <> LB.Exhausted);
      Alcotest.(check bool) (name ^ ": time recorded") true (r.time_reached <> None))
    regular_algorithms

let test_abd_freezes_immediately () =
  let cfg = abd_cfg ~f:3 in
  let r = LB.run ~algorithm:(Sb_registers.Abd.make cfg) ~cfg ~c:2 () in
  Alcotest.(check bool) "freeze branch" true (r.branch = LB.Frozen_objects);
  (* Replication stores D >= ell bits in every object from time zero
     (Corollary 2's exemption), so the branch is hit instantly. *)
  Alcotest.(check (option int)) "at the first classification" (Some 0) r.time_reached;
  Alcotest.(check int) "all n objects frozen" cfg.n r.final_frozen

let test_safe_escapes () =
  let cfg = coded_cfg ~f:3 ~k:3 in
  let r =
    LB.run ~halt_on_branch:false ~max_steps:100_000
      ~algorithm:(Sb_registers.Safe_register.make cfg) ~cfg ~c:4 ()
  in
  Alcotest.(check bool) "safe register completes writes under Ad" true
    (r.completed_writes > 0)

let test_ell_full_d () =
  (* ell = D: Corollary 2's parameterisation; the freeze condition needs
     a full value per object, the saturation condition fires on any
     block.  The coded register saturates. *)
  let cfg = coded_cfg ~f:3 ~k:3 in
  let r =
    LB.run ~ell_bits:d ~algorithm:(Sb_registers.Adaptive.make_unbounded cfg) ~cfg ~c:3 ()
  in
  Alcotest.(check bool) "saturation branch at ell = D" true
    (r.branch = LB.Saturated_writes);
  Alcotest.(check int) "bound is c bits" 3 r.lower_bound_bits

let test_ell_validation () =
  let cfg = coded_cfg ~f:2 ~k:2 in
  let algorithm = Sb_registers.Adaptive.make cfg in
  Alcotest.(check bool) "ell = 0 rejected" true
    (try ignore (LB.run ~ell_bits:0 ~algorithm ~cfg ~c:1 ()); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "ell > D rejected" true
    (try ignore (LB.run ~ell_bits:(d + 1) ~algorithm ~cfg ~c:1 ()); false
     with Invalid_argument _ -> true)

(* Ad's progress denial is purely schedule-induced (cf. the fairness
   argument in Lemma 3): resuming the same world under a fair policy
   lets every write complete and the GC shrink storage back down. *)
let test_fair_continuation_completes () =
  let cfg = coded_cfg ~f:3 ~k:3 in
  let algorithm = Sb_registers.Adaptive.make cfg in
  let c = 4 in
  let workload =
    Array.init c (fun i -> [ Trace.Write (Sb_util.Values.distinct ~value_bytes i) ])
  in
  let w = R.create ~algorithm ~n:cfg.n ~f:cfg.f ~workload () in
  let halt_when (s : Ad.snapshot) =
    List.length s.frozen > cfg.f || List.length s.c_plus >= c
  in
  let adversary = Ad.policy ~ell_bits:(d / 2) ~d_bits:d ~halt_when () in
  let stalled = R.run ~max_steps:100_000 w adversary in
  Alcotest.(check bool) "adversary reached a branch" true stalled.R.halted;
  let stalled_writes =
    List.filter (fun (_, _, _, ret, _) -> ret <> None)
      (Trace.operations (R.trace w))
  in
  Alcotest.(check int) "no write completed under Ad" 0 (List.length stalled_writes);
  (* Fair continuation on the very same world. *)
  let fair = R.random_policy ~seed:5 () in
  let resumed = R.run ~max_steps:100_000 w fair in
  Alcotest.(check bool) "fair continuation quiesces" true resumed.R.quiescent;
  let done_writes =
    List.filter (fun (_, _, _, ret, _) -> ret <> None)
      (Trace.operations (R.trace w))
  in
  Alcotest.(check int) "every write completes under fairness" c
    (List.length done_writes);
  Alcotest.(check bool) "GC shrinks storage back down" true
    (R.storage_bits_objects w <= cfg.n * Codec.block_bits cfg.codec 0)

let test_lower_bound_formula () =
  let cfg = coded_cfg ~f:3 ~k:3 in
  let r = LB.run ~ell_bits:(d / 2)
      ~algorithm:(Sb_registers.Adaptive.make_unbounded cfg) ~cfg ~c:5 () in
  Alcotest.(check int) "min((f+1)ell, c(D-ell+1))"
    (min (4 * (d / 2)) (5 * ((d / 2) + 1)))
    r.lower_bound_bits

(* ------------------------------------------------------------------ *)
(* Naive starvation policies (the E12 ablation, unit level)            *)
(* ------------------------------------------------------------------ *)

let ablation_world () =
  let cfg = coded_cfg ~f:2 ~k:2 in
  let c = 3 in
  let workload =
    Array.init c (fun i -> [ Trace.Write (Sb_util.Values.distinct ~value_bytes i) ])
  in
  let w =
    R.create ~algorithm:(Sb_registers.Adaptive.make_unbounded cfg) ~n:cfg.n
      ~f:cfg.f ~workload ()
  in
  (w, cfg, c)

let completed w =
  List.length
    (List.filter (fun (_, _, _, ret, _) -> ret <> None)
       (Trace.operations (R.trace w)))

let test_starve_all () =
  let w, _, _ = ablation_world () in
  let outcome = R.run ~max_steps:10_000 w (Sb_adversary.Policies.starve_all ()) in
  Alcotest.(check bool) "halts once all clients block" true outcome.R.halted;
  Alcotest.(check int) "nothing completes" 0 (completed w);
  (* No delivery ever happened: objects still hold only the initial
     pieces. *)
  let w2, cfg, _ = ablation_world () in
  ignore cfg;
  Alcotest.(check int) "storage untouched"
    (R.storage_bits_objects w2)
    (R.storage_bits_objects w)

let test_deliver_budget () =
  let w, _, _ = ablation_world () in
  let policy = Sb_adversary.Policies.deliver_budget ~budget:4 () in
  ignore (R.run ~max_steps:10_000 w policy);
  let delivered =
    List.length
      (List.filter
         (function Trace.Rmw_deliver _ -> true | _ -> false)
         (Trace.events (R.trace w)))
  in
  Alcotest.(check int) "budget respected" 4 delivered;
  Alcotest.(check int) "nothing completes" 0 (completed w)

let test_starve_object_harmless () =
  let w, _, c = ablation_world () in
  let outcome = R.run ~max_steps:100_000 w (Sb_adversary.Policies.starve_object ~obj:0 ()) in
  Alcotest.(check bool) "system quiesces modulo the starved object" true
    (outcome.R.halted || outcome.R.quiescent);
  Alcotest.(check int) "every write completes (quorums avoid object 0)" c (completed w)

(* ------------------------------------------------------------------ *)
(* Seeded Byzantine policies: replayability                            *)
(* ------------------------------------------------------------------ *)

module Byz = Sb_adversary.Byz
module Model = Sb_baseobj.Model

let qtest ?(count = 40) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* A few well-formed object states to probe [bp_act] with: the initial
   state and a written-to state at a non-zero timestamp. *)
let sample_state ~num =
  let ts = Sb_storage.Timestamp.make ~num ~client:0 in
  let block = Sb_storage.Block.initial ~index:0 (Bytes.make 8 '\042') in
  Sb_storage.Objstate.init ~vf:[ Sb_storage.Chunk.v ~ts block ] ()

let byz_act_samples n =
  let init = sample_state ~num:0 and written = sample_state ~num:3 in
  List.concat_map
    (fun obj ->
      List.concat_map
        (fun client ->
          List.concat_map
            (fun cls ->
              [ (obj, client, cls, init, init); (obj, client, cls, written, init) ])
            [ Model.Read; Model.Overwrite; Model.General ])
        [ 0; 1; 2 ])
    (List.init n Fun.id)

(* The whole point of seeded behaviours: (seed, n, budget, behaviour)
   fully determines the policy.  Two independently built policies must
   agree on the compromised set and on every acting decision — this is
   what makes Byzantine campaigns replayable from their plan entry. *)
let test_byz_policy_deterministic =
  qtest ~count:60 "seeded byz policies are pure in (seed, n, budget, behaviour)"
    QCheck2.Gen.(
      quad (int_range 0 1000) (int_range 1 9) (int_range 0 4) (int_range 0 2))
    (fun (seed, n, budget, bi) ->
      let budget = min budget n in
      let behaviour = List.nth Byz.all_behaviours bi in
      let p1 = Byz.policy ~seed ~n ~budget behaviour in
      let p2 = Byz.policy ~seed ~n ~budget behaviour in
      let compromised p = List.filter p.Model.bp_compromised (List.init n Fun.id) in
      let liars = compromised p1 in
      if liars <> compromised p2 then
        QCheck2.Test.fail_report "compromised sets differ across rebuilds";
      if List.length liars <> budget then
        QCheck2.Test.fail_reportf "liar count %d <> budget %d"
          (List.length liars) budget;
      List.iter
        (fun (obj, client, cls, before, init) ->
          let a1 = p1.Model.bp_act ~obj ~client ~cls ~before ~init
          and a2 = p2.Model.bp_act ~obj ~client ~cls ~before ~init in
          (* sb-lint: allow poly-compare — byz_action is first-order data *)
          if a1 <> a2 then
            QCheck2.Test.fail_reportf
              "bp_act diverges at obj=%d client=%d" obj client)
        (byz_act_samples n);
      true)

(* Different seeds must be able to move the liar set — otherwise the
   litmus sweeps over seeds would silently test one liar position. *)
let test_byz_policy_seed_sensitive () =
  let n = 5 and budget = 2 in
  let sets =
    List.map
      (fun seed ->
        let p = Byz.policy ~seed ~n ~budget Byz.Stale_echo in
        List.filter p.Sb_baseobj.Model.bp_compromised (List.init n Fun.id))
      [ 1; 2; 3; 4; 5; 6; 7; 8 ]
  in
  let distinct = List.sort_uniq compare sets in
  Alcotest.(check bool)
    "at least two distinct liar sets across eight seeds" true
    (List.length distinct > 1)

let () =
  Alcotest.run "adversary"
    [
      ( "classify",
        [
          Alcotest.test_case "initial state" `Quick test_classify_initial;
          Alcotest.test_case "sticky frozen" `Quick test_classify_sticky;
          Alcotest.test_case "C+/C- partition" `Quick test_classify_c_partition;
        ] );
      ( "schedule",
        [
          Alcotest.test_case "freeze monotone" `Quick test_freeze_monotone;
          Alcotest.test_case "frozen never delivered" `Quick
            test_frozen_objects_never_delivered;
        ] );
      ( "lower-bound",
        [
          Alcotest.test_case "no write completes" `Slow test_no_write_completes;
          Alcotest.test_case "bound holds" `Slow test_bound_holds;
          Alcotest.test_case "branch reached" `Quick test_branch_reached;
          Alcotest.test_case "abd freezes immediately" `Quick test_abd_freezes_immediately;
          Alcotest.test_case "safe escapes" `Quick test_safe_escapes;
          Alcotest.test_case "ell = D" `Quick test_ell_full_d;
          Alcotest.test_case "ell validation" `Quick test_ell_validation;
          Alcotest.test_case "fair continuation" `Quick test_fair_continuation_completes;
          Alcotest.test_case "bound formula" `Quick test_lower_bound_formula;
        ] );
      ( "naive-policies",
        [
          Alcotest.test_case "starve all" `Quick test_starve_all;
          Alcotest.test_case "deliver budget" `Quick test_deliver_budget;
          Alcotest.test_case "starve one object" `Quick test_starve_object_harmless;
        ] );
      ( "message-passing",
        [
          Alcotest.test_case "no write completes over messages" `Quick
            (fun () ->
              let cfg = coded_cfg ~f:3 ~k:3 in
              List.iter
                (fun c ->
                  let r =
                    LB.run_mp
                      ~algorithm:(Sb_registers.Adaptive.make_unbounded cfg)
                      ~cfg ~c ()
                  in
                  Alcotest.(check int) "no completion" 0 r.completed_writes;
                  Alcotest.(check bool) "bound holds with channels counted" true
                    (r.max_total_bits >= r.lower_bound_bits))
                [ 1; 2; 4 ]);
          Alcotest.test_case "mp classify matches world" `Quick
            (fun () ->
              let cfg = coded_cfg ~f:2 ~k:2 in
              let module MP = Sb_msgnet.Mp_runtime in
              let w =
                MP.create
                  ~algorithm:(Sb_registers.Adaptive.make cfg)
                  ~n:cfg.n ~f:cfg.f ~workload:[||] ()
              in
              let piece = Codec.block_bits cfg.codec 0 in
              let snap = Sb_adversary.Ad_mp.classify ~ell_bits:piece ~d_bits:d w in
              Alcotest.(check int) "all frozen at piece threshold" cfg.n
                (List.length snap.frozen);
              Alcotest.(check int) "no channel bits initially" 0
                snap.storage_channel_bits);
        ] );
      ( "byz-policies",
        [
          test_byz_policy_deterministic;
          Alcotest.test_case "liar set moves with the seed" `Quick
            test_byz_policy_seed_sensitive;
        ] );
    ]
