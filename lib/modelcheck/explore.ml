module R = Sb_sim.Runtime

(* ------------------------------------------------------------------ *)
(* Configuration                                                       *)
(* ------------------------------------------------------------------ *)

type bound = Exhaustive | Delay of int | Preempt of int

type config = {
  algorithm : R.algorithm;
  n : int;
  f : int;
  workload : Sb_sim.Trace.op_kind list array;
  base_model : Sb_baseobj.Model.t;
  byz : Sb_baseobj.Model.byz_policy option;
  seed : int;
  initial : bytes;
  check : Sb_spec.History.t -> Sb_spec.Regularity.verdict;
  dpor : bool;
  cache : bool;
  paranoid_key : bool;
  bound : bound;
  crash_objs : int;
  crash_clients : int;
  max_schedules : int;
  stop_on_violation : bool;
  lint : bool;
  on_history : (R.decision list -> Sb_spec.History.t -> unit) option;
  instrument : (R.world -> unit) option;
}

exception Instrumented_failure of exn * R.decision list

let config ?(seed = 1) ?(dpor = true) ?(cache = false) ?(paranoid_key = false)
    ?(bound = Exhaustive) ?(crash_objs = 0) ?(crash_clients = 0)
    ?(max_schedules = 0) ?(stop_on_violation = true) ?(lint = false)
    ?(base_model = Sb_baseobj.Model.Rmw) ?byz ?on_history ?instrument
    ~algorithm ~n ~f ~workload ~initial ~check () =
  {
    algorithm;
    n;
    f;
    workload;
    base_model;
    byz;
    seed;
    initial;
    check;
    dpor;
    cache;
    paranoid_key;
    bound;
    crash_objs;
    crash_clients;
    max_schedules;
    stop_on_violation;
    lint;
    on_history;
    instrument;
  }

(* ------------------------------------------------------------------ *)
(* Statistics and results                                              *)
(* ------------------------------------------------------------------ *)

type stats = {
  schedules : int;
  transitions : int;
  replayed_transitions : int;
  sleep_skips : int;
  cache_skips : int;
  bound_skips : int;
  max_depth : int;
  violations : int;
  lint_failures : int;
}

type violation = {
  v_decisions : R.decision list;
  v_history : Sb_spec.History.t;
  v_counterexample : Sb_spec.Regularity.counterexample;
}

type outcome = {
  stats : stats;
  first_violation : violation option;
  complete : bool;
}

let pp_stats ppf s =
  Format.fprintf ppf
    "@[<v>schedules explored : %d@ transitions        : %d (+%d replayed)@ \
     sleep-set prunes   : %d@ state-cache prunes : %d@ bound prunes       : \
     %d@ max depth          : %d@ violations         : %d@ lint failures    \
     \  : %d@]"
    s.schedules s.transitions s.replayed_transitions s.sleep_skips s.cache_skips
    s.bound_skips s.max_depth s.violations s.lint_failures

(* ------------------------------------------------------------------ *)
(* Decision points and the independence relation                       *)
(* ------------------------------------------------------------------ *)

type kind = KDeliver | KStep | KCrashObj | KCrashClient

type action = {
  dec : R.decision;
  kind : kind;
  a_obj : int;
  a_client : int;
  a_nature : R.rmw_nature;  (* for Deliver: the pending RMW's nature *)
  mutable a_inv : bool;  (* the Step emitted an Invoke event *)
  mutable a_ret : bool;
      (* ... or a Return event.  Observed when the action is executed;
         every action entering a sleep set has been executed, and a
         step's behaviour depends only on client-local state, which
         surviving the independence filter leaves untouched, so the
         observation stays valid down the tree. *)
  mutable a_awaited : int list;
      (* For a Step: the tickets whose responses it read or started
         awaiting, observed at execution like [a_inv]/[a_ret].  A Deliver
         of any other ticket cannot change the step's behaviour. *)
}

(* Two enabled actions are independent when they commute (executing them
   in either order reaches the same state, and neither disables the
   other) AND swapping adjacent occurrences leaves the operation
   history's precedence relation unchanged, so every consistency verdict
   is preserved.  The relation is deliberately conservative:

   - RMW deliveries on distinct base objects commute: they touch
     different object states and different response slots; quorum
     satisfaction of the owner is order-insensitive.  Same-object
     deliveries are dependent (RMWs need not commute) — except when both
     are read-only (neither changes the object, so each computes the
     same response in either order) or both are declared merge-class
     (the algorithm promises state and responses are order-insensitive,
     e.g. ABD's keep-the-higher-timestamp store).
   - A delivery and a client step are independent unless the step reads
     or awaits that very ticket's response: a step only consults the
     responses of the awaits it consumes or enters, and only one of the
     two emits operation events, so no invocation/return pair changes
     sides.  Deliveries for other clients trivially qualify; so do
     same-client deliveries of stale stragglers relative to the owner's
     later steps.
   - Two client steps of distinct clients touch disjoint client state,
     so they commute as transitions (up to renaming of the tickets each
     allocates, which histories never mention and which the dynamic
     enumeration re-derives per branch).  What can distinguish the two
     orders is the operation history — but the consistency checkers
     consume it only through the precedence relation "return(x) before
     invoke(y)", so the steps are dependent exactly when one emits a
     return and the other an invocation (swapping those flips a
     precedence edge).  Invocation/invocation and return/return swaps,
     like swaps involving an invisible round transition, preserve every
     verdict and every read's returned value.
   - An object crash commutes with every step and with deliveries on
     other objects (it only flips one liveness bit); crashes are
     mutually dependent because they share the [f] / budget limits.
   - A client crash is dependent on everything touching that client. *)
(* The nature-level core of the delivery/delivery case, exported so
   [Sb_analyze.Certify] can check every commutation this predicate
   claims against the enumerated RMW algebra instead of trusting the
   declarations. *)
let natures_commute (a : R.rmw_nature) (b : R.rmw_nature) =
  (a = `Readonly && b = `Readonly) || (a = `Merge && b = `Merge)

let independent a b =
  match (a.kind, b.kind) with
  | KDeliver, KDeliver -> a.a_obj <> b.a_obj || natures_commute a.a_nature b.a_nature
  | KDeliver, KStep | KStep, KDeliver ->
    let d, s = if a.kind = KDeliver then (a, b) else (b, a) in
    d.a_client <> s.a_client
    ||
    (match d.dec with
     | R.Deliver t -> not (List.mem t s.a_awaited)
     | _ -> false)
  | KStep, KStep ->
    a.a_client <> b.a_client
    && not ((a.a_inv && b.a_ret) || (a.a_ret && b.a_inv))
  | KCrashObj, KCrashObj | KCrashClient, KCrashClient -> false
  | KCrashObj, KDeliver | KDeliver, KCrashObj -> a.a_obj <> b.a_obj
  | KCrashObj, KStep | KStep, KCrashObj -> true
  | KCrashObj, KCrashClient | KCrashClient, KCrashObj -> true
  | KCrashClient, (KDeliver | KStep) | (KDeliver | KStep), KCrashClient ->
    a.a_client <> b.a_client

(* Enabled actions in the deterministic baseline order (the order the
   delay bound is counted against): oldest deliverable RMW first, then
   steppable clients by id — the fifo policy — then crash choices. *)
let actions cfg w ~obj_left ~cli_left =
  (* Once every client is permanently done — crashed, or idle with an
     empty operation queue — no further invocation or return can occur:
     the operation history is fixed.  Crashes injected after this point
     cannot change any verdict (the crash-free drain of the same prefix
     has the identical history and is always explored), so the crash
     budget is withdrawn here.  Without this, the budget gets spliced
     between every ordering of end-of-run straggler deliveries,
     multiplying the schedule count for nothing.  The stragglers
     themselves still drain — they are mutually independent, so sleep
     sets collapse their orderings to one — keeping exactly one leaf
     per operation-history class. *)
  let all_done =
    let rec go c =
      c >= Array.length cfg.workload
      ||
      match R.client_status w c with
      | R.Crashed -> go (c + 1)
      | R.Idle -> (not (R.client_has_work w c)) && go (c + 1)
      | R.Parked | R.Runnable -> false
    in
    go 0
  in
  let delivers =
    List.map
      (fun (p : R.pending_info) ->
        {
          dec = R.Deliver p.ticket;
          kind = KDeliver;
          a_obj = p.p_obj;
          a_client = p.p_client;
          a_nature = p.p_nature;
          a_inv = false;
          a_ret = false;
          a_awaited = [];
        })
      (R.deliverable w)
  in
  let steps =
    List.map
      (fun c ->
        {
          dec = R.Step c;
          kind = KStep;
          a_obj = -1;
          a_client = c;
          a_nature = `Mutating;
          a_inv = false;
          a_ret = false;
          a_awaited = [];
        })
      (R.steppable w)
  in
  let crash_objs =
    if obj_left <= 0 || all_done then []
    else
      List.init cfg.n (fun i -> i)
      |> List.filter (fun i -> R.decision_enabled w (R.Crash_obj i))
      |> List.map (fun i ->
             {
               dec = R.Crash_obj i;
               kind = KCrashObj;
               a_obj = i;
               a_client = -1;
               a_nature = `Mutating;
               a_inv = false;
               a_ret = false;
               a_awaited = [];
             })
  in
  let crash_clients =
    if cli_left <= 0 then []
    else
      List.init (Array.length cfg.workload) (fun c -> c)
      |> List.filter (fun c ->
             R.decision_enabled w (R.Crash_client c)
             (* Crashing a client that is idle with nothing queued cannot
                change any future history: skip the branch. *)
             && (R.client_status w c <> R.Idle || R.client_has_work w c))
      |> List.map (fun c ->
             {
               dec = R.Crash_client c;
               kind = KCrashClient;
               a_obj = -1;
               a_client = c;
               a_nature = `Mutating;
               a_inv = false;
               a_ret = false;
               a_awaited = [];
             })
  in
  delivers @ steps @ crash_objs @ crash_clients

let enabled_actions = actions

(* Execute the action's decision on [w], observing the attributes the
   independence relation consults for steps (operation-event visibility
   and the awaited-ticket set): exactly what the DPOR search records when
   it first explores an action at a node. *)
let execute_observing w (a : action) =
  let inv_before = R.invoke_events w in
  let ret_before = R.return_events w in
  ignore (R.step w a.dec);
  match a.kind with
  | KStep ->
    a.a_inv <- R.invoke_events w > inv_before;
    a.a_ret <- R.return_events w > ret_before;
    a.a_awaited <- R.last_step_awaits w
  | KDeliver | KCrashObj | KCrashClient -> ()

(* ------------------------------------------------------------------ *)
(* The depth-first search with sleep sets                              *)
(* ------------------------------------------------------------------ *)

type mstats = {
  mutable m_schedules : int;
  mutable m_transitions : int;
  mutable m_replayed : int;
  mutable m_sleep_skips : int;
  mutable m_cache_skips : int;
  mutable m_bound_skips : int;
  mutable m_max_depth : int;
  mutable m_violations : int;
  mutable m_lint_failures : int;
}

let mk_mstats () =
  {
    m_schedules = 0;
    m_transitions = 0;
    m_replayed = 0;
    m_sleep_skips = 0;
    m_cache_skips = 0;
    m_bound_skips = 0;
    m_max_depth = 0;
    m_violations = 0;
    m_lint_failures = 0;
  }

exception Stop

(* One node on the current root-to-leaf path: its enabled actions in
   baseline order, a cursor over them, the actions already explored here
   (for sleep-set propagation), and the node's scheduling context. *)
type frame = {
  f_acts : action array;
  mutable f_idx : int;
  mutable f_cur : action option; (* action taken into the child below *)
  mutable f_done : action list;
  f_sleep : action list;
  f_budget : int;
  f_last : int; (* last stepped client, for preemption counting *)
  f_obj_left : int;
  f_cli_left : int;
}

let budget0 cfg =
  match cfg.bound with Exhaustive -> max_int | Delay d -> d | Preempt p -> p

let fresh_world cfg =
  let w =
    (* The hash chains only feed the state cache; without it their
       per-step upkeep is a pure tax (~20% on the flagship space). *)
    R.create ~seed:cfg.seed ~metrics:false ~fingerprints:cfg.cache
      ~base_model:cfg.base_model ?byz:cfg.byz ~algorithm:cfg.algorithm ~n:cfg.n
      ~f:cfg.f ~workload:cfg.workload ()
  in
  (match cfg.instrument with Some f -> f w | None -> ());
  w

let mk_frame cfg w ~sleep ~budget ~last ~obj_left ~cli_left =
  {
    f_acts = Array.of_list (actions cfg w ~obj_left ~cli_left);
    f_idx = 0;
    f_cur = None;
    f_done = [];
    f_sleep = sleep;
    f_budget = budget;
    f_last = last;
    f_obj_left = obj_left;
    f_cli_left = cli_left;
  }

(* A crash only ever disables behaviour — deliveries on the crashed
   object, the crashed client's steps and read-only stragglers, crash
   choices beyond the decremented budget — and never enables anything,
   so the child's action set is computable from the parent's without
   executing the crash.  When every surviving action would land in the
   child's sleep set, the whole subtree is sterile: it can reach no
   leaf, because crashes sort last in the baseline order and thus
   every surviving sibling has already been explored here (the crash
   commutes backward past all of them).  Detecting this *before*
   descending skips the child outright — otherwise each such child
   costs a full prefix replay just to discover there is nothing
   underneath (measured: ~10x the useful transition count on
   crash-budget configurations).  An empty surviving set is a leaf,
   not sterile, and is never skipped. *)
let crash_child_sterile fr a =
  let sleep' = List.filter (independent a) (fr.f_sleep @ fr.f_done) in
  let survives b =
    b.dec <> a.dec
    &&
    match (b.kind, a.kind) with
    | KDeliver, KCrashObj -> b.a_obj <> a.a_obj
    | KDeliver, KCrashClient ->
      not (b.a_client = a.a_client && b.a_nature = `Readonly)
    | KStep, KCrashObj -> true
    | KStep, KCrashClient -> b.a_client <> a.a_client
    | KCrashObj, KCrashObj -> fr.f_obj_left > 1
    | KCrashObj, KCrashClient -> fr.f_obj_left > 0
    | KCrashClient, KCrashObj -> fr.f_cli_left > 0
    | KCrashClient, KCrashClient -> fr.f_cli_left > 1
    | _, (KDeliver | KStep) -> assert false
  in
  let enabled' = List.filter survives (Array.to_list fr.f_acts) in
  enabled' <> []
  && List.for_all
       (fun b -> List.exists (fun s -> s.dec = b.dec) sleep')
       enabled'

(* Advance the frame's cursor to its next explorable action, counting
   the sleep-set and bound prunes passed over (each action is
   considered exactly once per node). *)
let rec next_action cfg st fr =
  if fr.f_idx >= Array.length fr.f_acts then None
  else begin
    let a = fr.f_acts.(fr.f_idx) in
    if
      cfg.dpor
      && (List.exists (fun b -> b.dec = a.dec) fr.f_sleep
         ||
         match a.kind with
         | KCrashObj | KCrashClient -> crash_child_sterile fr a
         | KDeliver | KStep -> false)
    then begin
      st.m_sleep_skips <- st.m_sleep_skips + 1;
      fr.f_idx <- fr.f_idx + 1;
      next_action cfg st fr
    end
    else begin
      let cost =
        match cfg.bound with
        | Exhaustive -> 0
        | Delay _ -> fr.f_idx
        | Preempt _ -> (
          (* A preemption: stepping a different client while the
             previously scheduled one could still run. *)
          match a.kind with
          | KStep
            when fr.f_last >= 0
                 && a.a_client <> fr.f_last
                 && Array.exists
                      (fun b -> b.kind = KStep && b.a_client = fr.f_last)
                      fr.f_acts -> 1
          | _ -> 0)
      in
      if cost > fr.f_budget then begin
        st.m_bound_skips <- st.m_bound_skips + 1;
        fr.f_idx <- fr.f_idx + 1;
        next_action cfg st fr
      end
      else Some (a, cost)
    end
  end

(* ------------------------------------------------------------------ *)
(* Search tasks (subtree partitioning)                                 *)
(* ------------------------------------------------------------------ *)

(* A task is a node of the schedule tree packaged for independent
   exploration: the decision prefix reaching it, the sleep set it
   inherits (observed actions the parent already explored and found
   independent), and its scheduling context.  [explore] runs the root
   task; the parallel driver in [Sb_parallel] expands the root into a
   frontier of disjoint tasks and farms them out — sleep sets make the
   subtrees non-overlapping exactly as in the sequential search, since
   each task's sleep set is computed by the same propagation rule. *)
type task = {
  t_prefix : R.decision list; (* oldest first *)
  t_sleep : action list;
  t_budget : int;
  t_last : int;
  t_obj_left : int;
  t_cli_left : int;
}

let root_task cfg =
  {
    t_prefix = [];
    t_sleep = [];
    t_budget = budget0 cfg;
    t_last = -1;
    t_obj_left = cfg.crash_objs;
    t_cli_left = cfg.crash_clients;
  }

let task_depth t = List.length t.t_prefix

let explore_task ?(abort = fun () -> false) cfg (task : task) =
  let st = mk_mstats () in
  let first = ref None in
  let fresh () = fresh_world cfg in
  let prefix = task.t_prefix in
  let prefix_rev = List.rev prefix in
  (* Replay a decision list against [w].  When the search is
     instrumented, an exception raised by a monitor mid-replay is
     re-raised as [Instrumented_failure] carrying the decision prefix up
     to and including the offending decision, so the caller can shrink
     it. *)
  let replay_checked w ds =
    let applied = ref [] in
    List.iter
      (fun d ->
        st.m_replayed <- st.m_replayed + 1;
        (try ignore (R.step w d)
         with e when cfg.instrument <> None ->
           raise (Instrumented_failure (e, List.rev (d :: !applied))));
        applied := d :: !applied)
      ds
  in
  (* The search is stateless: backtracking re-executes the decision
     prefix against a fresh world (worlds hold continuations and cannot
     be copied).  [path_rev] is the prefix, newest decision first. *)
  let replay_path path_rev =
    let w = fresh () in
    replay_checked w (List.rev path_rev);
    w
  in
  let finish w path_rev =
    st.m_schedules <- st.m_schedules + 1;
    let h = Sb_spec.History.of_trace ~initial:cfg.initial (R.trace w) in
    (match cfg.on_history with
     | Some f -> f (List.rev path_rev) h
     | None -> ());
    if cfg.lint then begin
      let w2 = replay_path path_rev in
      if
        Sb_sim.Trace.to_lines (R.trace w2) <> Sb_sim.Trace.to_lines (R.trace w)
        || R.fingerprint w2 <> R.fingerprint w
      then st.m_lint_failures <- st.m_lint_failures + 1
    end;
    (match cfg.check h with
     | Sb_spec.Regularity.Ok -> ()
     | Sb_spec.Regularity.Violation cx ->
       st.m_violations <- st.m_violations + 1;
       if !first = None then
         first :=
           Some
             {
               v_decisions = List.rev path_rev;
               v_history = h;
               v_counterexample = cx;
             };
       if cfg.stop_on_violation then raise Stop);
    if cfg.max_schedules > 0 && st.m_schedules >= cfg.max_schedules then raise Stop
  in
  (* State cache: interleavings of commuting actions converge to the
     same logical world, and a node's entire future — both the runs it
     admits and their verdicts — is determined by the behavioural state
     up to ticket renaming, plus the un-timed operation events so far.
     Keys are [Runtime.state_hash] — the incremental 128-bit fingerprint
     of exactly that information; [cfg.paranoid_key] additionally
     computes the Marshal-based [Runtime.exploration_key] per state and
     fails loudly if the two ever disagree (equal Marshal keys mapping
     to distinct hashes would make the fast key unsound; equal hashes
     over distinct Marshal keys would be a 128-bit collision).  The
     search is acyclic (every decision strictly advances a monotone
     counter: invocations, deliveries, consumed awaits, or crashes), so
     any revisited key outside the current DFS stack has been fully
     explored and the revisit can be pruned, turning the schedule tree
     into a DAG.

     Combining this with sleep sets needs one refinement (Godefroid):
     exploring a node with sleep set [S] only covers continuations that
     do not begin with an action in [S].  A revisit with sleep [S'] is
     covered iff some earlier visit used [S ⊆ S'];  otherwise we
     re-explore and record [S'] too.  Sleep sets are compared under
     canonical ticket names, since the revisiting world may number the
     same live RMWs differently.  Only exact (unbounded) exploration is
     cached: under delay/preemption bounding the remaining budget would
     have to join the key. *)
  let use_cache = cfg.cache && cfg.bound = Exhaustive in
  let visited : (string, string list list) Hashtbl.t =
    Hashtbl.create (if use_cache then 4096 else 16)
  in
  let hash_of_mkey : (string, string) Hashtbl.t = Hashtbl.create 16 in
  let mkey_of_hash : (string, string) Hashtbl.t = Hashtbl.create 16 in
  let state_key w =
    let h = R.state_hash w in
    if cfg.paranoid_key then begin
      let mk = R.exploration_key w in
      (match Hashtbl.find_opt hash_of_mkey mk with
       | Some h' when not (String.equal h' h) ->
         failwith
           "Explore: paranoid key check failed — equal Marshal keys with \
            distinct state hashes (incremental fingerprint is missing state)"
       | Some _ -> ()
       | None -> Hashtbl.replace hash_of_mkey mk h);
      match Hashtbl.find_opt mkey_of_hash h with
      | Some mk' when not (String.equal mk' mk) ->
        failwith
          "Explore: paranoid key check failed — state-hash collision between \
           distinct Marshal keys"
      | Some _ -> ()
      | None -> Hashtbl.replace mkey_of_hash h mk
    end;
    h
  in
  let rec sorted_subset xs ys =
    match (xs, ys) with
    | [], _ -> true
    | _ :: _, [] -> false
    | x :: xs', y :: ys' ->
      if String.equal x y then sorted_subset xs' ys'
      else if String.compare x y > 0 then sorted_subset xs ys'
      else false
  in
  let cache_covers w sleep =
    let key = state_key w in
    let sleep_c =
      List.sort String.compare
        (R.canonical_decisions w (List.map (fun b -> b.dec) sleep))
    in
    match Hashtbl.find_opt visited key with
    | Some stored when List.exists (fun s -> sorted_subset s sleep_c) stored ->
      st.m_cache_skips <- st.m_cache_skips + 1;
      true
    | stored ->
      Hashtbl.replace visited key (sleep_c :: Option.value stored ~default:[]);
      false
  in
  (* The search is an explicit-stack DFS over {e frames} — one per node
     on the current root-to-leaf path, each holding the node's enabled
     actions, a cursor, and its sleep-set bookkeeping.  Backtracking re-
     executes the committed prefix against a fresh world (worlds hold
     continuations and cannot be copied), but crucially only {e once per
     schedule}, not once per branch point: an iteration replays the
     prefix of the deepest frame with an unexplored alternative and then
     runs straight down to a leaf, so the total work is about (schedules
     x depth) transitions instead of (branch points x depth).  Frames
     persist the deterministic per-node data (action lists, observed
     step visibility, sleep sets) across iterations, so nothing is
     recomputed during descent. *)
  let stack = ref [] in
  let nframes = ref 0 in
  let path_of_stack () =
    List.filter_map
      (fun fr -> match fr.f_cur with Some a -> Some a.dec | None -> None)
      !stack
    @ prefix_rev
  in
  let complete_child parent =
    match parent.f_cur with
    | Some a ->
      parent.f_done <- a :: parent.f_done;
      parent.f_cur <- None
    | None -> assert false
  in
  (* Mutually tail-recursive driver: [backtrack] pops exhausted frames
     without touching any world; [run] replays the committed prefix once
     and hands the live world to [descend], which executes new
     transitions down to a leaf. *)
  let rec backtrack () =
    match !stack with
    | [] -> ()
    | fr :: rest -> (
      match next_action cfg st fr with
      | Some _ -> run ()
      | None ->
        stack := rest;
        decr nframes;
        (match rest with
         | parent :: _ -> complete_child parent
         | [] -> ());
        backtrack ())
  and run () =
    if abort () then raise Stop;
    let w = fresh () in
    (match !stack with
     | _ :: below ->
       replay_checked w
         (prefix
         @ List.rev_map
             (fun fr ->
               match fr.f_cur with Some a -> a.dec | None -> assert false)
             below)
     | [] -> assert false);
    descend w
  and descend w =
    match !stack with
    | [] -> assert false
    | fr :: _ -> (
      match next_action cfg st fr with
      | None -> backtrack ()
      | Some (a, cost) ->
        fr.f_idx <- fr.f_idx + 1;
        fr.f_cur <- Some a;
        st.m_transitions <- st.m_transitions + 1;
        (try execute_observing w a
         with e when cfg.instrument <> None ->
           raise (Instrumented_failure (e, List.rev (path_of_stack ()))));
        let sleep' =
          if cfg.dpor then
            List.filter (fun b -> independent a b) (fr.f_sleep @ fr.f_done)
          else []
        in
        if use_cache && cache_covers w sleep' then begin
          (* Covered subtree: the action still counts as explored, but
             the world is already dirty — resume from a fresh replay. *)
          complete_child fr;
          backtrack ()
        end
        else begin
          let child =
            mk_frame cfg w ~sleep:sleep'
              ~budget:(fr.f_budget - cost)
              ~last:(match a.kind with KStep -> a.a_client | _ -> fr.f_last)
              ~obj_left:
                (match a.kind with
                | KCrashObj -> fr.f_obj_left - 1
                | _ -> fr.f_obj_left)
              ~cli_left:
                (match a.kind with
                | KCrashClient -> fr.f_cli_left - 1
                | _ -> fr.f_cli_left)
          in
          stack := child :: !stack;
          incr nframes;
          if !nframes - 1 > st.m_max_depth then st.m_max_depth <- !nframes - 1;
          if Array.length child.f_acts = 0 then begin
            finish w (path_of_stack ());
            stack := List.tl !stack;
            decr nframes;
            complete_child fr;
            backtrack ()
          end
          else descend w
        end)
  in
  let complete =
    try
      let w0 = fresh () in
      replay_checked w0 prefix;
      let root =
        mk_frame cfg w0 ~sleep:task.t_sleep ~budget:task.t_budget
          ~last:task.t_last ~obj_left:task.t_obj_left ~cli_left:task.t_cli_left
      in
      stack := [ root ];
      nframes := 1;
      if Array.length root.f_acts = 0 then finish w0 prefix_rev
      else descend w0;
      true
    with Stop -> false
  in
  {
    stats =
      {
        schedules = st.m_schedules;
        transitions = st.m_transitions;
        replayed_transitions = st.m_replayed;
        sleep_skips = st.m_sleep_skips;
        cache_skips = st.m_cache_skips;
        bound_skips = st.m_bound_skips;
        max_depth = st.m_max_depth;
        violations = st.m_violations;
        lint_failures = st.m_lint_failures;
      };
    first_violation = !first;
    complete;
  }

let explore cfg = explore_task cfg (root_task cfg)

(* ------------------------------------------------------------------ *)
(* Task expansion (for the parallel driver)                            *)
(* ------------------------------------------------------------------ *)

type expansion = {
  x_tasks : task list; (* children in exploration order *)
  x_leaf : bool; (* the task's node has no enabled actions *)
  x_transitions : int;
  x_replayed : int;
  x_sleep_skips : int;
  x_bound_skips : int;
  x_depth_seen : int;
      (* Deepest node materialised while expanding (children sit one
         level below the task's own node); the merged [max_depth] must
         cover nodes whose subtrees turn out empty. *)
}

(* Expands a task one level: enumerates its node's explorable actions
   exactly as [explore_task] would — same baseline order, same sleep /
   sterile-crash / bound skips — executing each on its own fresh replay
   to observe the step attributes the child sleep sets depend on.  The
   children partition the task's schedules: child [i]'s sleep set
   contains every earlier-explored independent sibling, so no schedule
   is explored twice and none is lost (the same propagation the
   sequential search performs at this node).  Skip and transition
   counts are reported so a driver can merge them with the children's
   outcomes into totals that match a jobs-independent accounting. *)
let expand cfg (t : task) =
  let st = mk_mstats () in
  let replay_raw w =
    List.iter
      (fun d ->
        st.m_replayed <- st.m_replayed + 1;
        ignore (R.step w d))
      t.t_prefix
  in
  let w0 = fresh_world cfg in
  replay_raw w0;
  let fr =
    mk_frame cfg w0 ~sleep:t.t_sleep ~budget:t.t_budget ~last:t.t_last
      ~obj_left:t.t_obj_left ~cli_left:t.t_cli_left
  in
  let leaf = Array.length fr.f_acts = 0 in
  let children = ref [] in
  let depth_seen = ref 0 in
  let rec loop () =
    match next_action cfg st fr with
    | None -> ()
    | Some (a, cost) ->
      fr.f_idx <- fr.f_idx + 1;
      st.m_transitions <- st.m_transitions + 1;
      let w = fresh_world cfg in
      replay_raw w;
      execute_observing w a;
      depth_seen := List.length t.t_prefix + 1;
      let sleep' =
        if cfg.dpor then List.filter (independent a) (fr.f_sleep @ fr.f_done)
        else []
      in
      children :=
        {
          t_prefix = t.t_prefix @ [ a.dec ];
          t_sleep = sleep';
          t_budget = fr.f_budget - cost;
          t_last = (match a.kind with KStep -> a.a_client | _ -> fr.f_last);
          t_obj_left =
            (match a.kind with
            | KCrashObj -> fr.f_obj_left - 1
            | _ -> fr.f_obj_left);
          t_cli_left =
            (match a.kind with
            | KCrashClient -> fr.f_cli_left - 1
            | _ -> fr.f_cli_left);
        }
        :: !children;
      fr.f_done <- a :: fr.f_done;
      loop ()
  in
  loop ();
  {
    x_tasks = List.rev !children;
    x_leaf = leaf;
    x_transitions = st.m_transitions;
    x_replayed = st.m_replayed;
    x_sleep_skips = st.m_sleep_skips;
    x_bound_skips = st.m_bound_skips;
    x_depth_seen = !depth_seen;
  }

let pp_decisions ppf ds =
  Format.fprintf ppf "@[<v>";
  List.iteri
    (fun i d -> Format.fprintf ppf "%3d. %s@ " (i + 1) (R.decision_to_string d))
    ds;
  Format.fprintf ppf "@]"
