(** Counterexample shrinking for failing decision traces.

    A violation found by {!Explore.explore} often carries dozens of
    irrelevant decisions.  {!shrink} greedily minimises the trace while
    the configured checker keeps failing, producing a locally-minimal
    failing schedule: first the shortest violating prefix, then repeated
    single-decision deletion until no deletion preserves the failure.
    Crash decisions are deleted like any other, so the crash set is
    minimised along the way.

    Shrinking relies on [Runtime.replay]'s skip-disabled semantics:
    deleting a decision may orphan later ones, which then simply fall
    away, so every candidate trace is a well-formed schedule of the same
    world. *)

val check_decisions :
  Explore.config ->
  Sb_sim.Runtime.decision list ->
  (Sb_spec.Regularity.counterexample * Sb_spec.History.t) option
(** Replays the trace (skipping disabled decisions) against a fresh world
    of the config and runs the config's checker on the resulting history.
    [None] when the history satisfies the property. *)

val shrink_pred :
  violates:(Sb_sim.Runtime.decision list -> bool) ->
  Sb_sim.Runtime.decision list ->
  Sb_sim.Runtime.decision list
(** The same two-phase algorithm over an abstract failure predicate —
    the caller decides what "still fails" means (e.g. [Sb_sanitize]
    replays the candidate against a fresh monitored world).  The
    predicate must be deterministic.  Raises [Invalid_argument] if the
    input trace does not satisfy it. *)

val shrink :
  Explore.config -> Sb_sim.Runtime.decision list -> Sb_sim.Runtime.decision list
(** [shrink cfg trace] is a locally-minimal sub-trace of [trace] that
    still violates [cfg.check]: removing any single decision from the
    result makes the violation disappear.  Raises [Invalid_argument] if
    [trace] itself does not violate. *)
