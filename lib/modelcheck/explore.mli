(** Systematic schedule exploration for [Sb_sim.Runtime] worlds.

    The paper's correctness claims are statements over {e every}
    asynchronous schedule.  This module enumerates all of them, for a
    bounded configuration, instead of sampling: a depth-first search over
    {e decision traces} (which pending RMW takes effect, which client
    steps, which component crashes), re-executing each prefix against a
    fresh deterministic world, and machine-checking every complete
    history with a [Sb_spec.Regularity] checker.

    {b Partial-order reduction.}  Most interleavings differ only in the
    order of commuting actions — above all, RMW deliveries on distinct
    base objects.  The search carries {e sleep sets} (Godefroid): after a
    subtree for action [a] is done, sibling subtrees do not re-explore
    schedules that merely reorder [a] past independent actions.  With the
    independence relation of {!section-independence} below, every
    Mazurkiewicz equivalence class of schedules is still explored at
    least once, and the class representative has the same history
    precedence relation — so no consistency verdict is lost.

    {b State caching.}  Orthogonally, interleavings of commuting actions
    converge to the same logical world; since a node's future behaviour
    and every verdict depend only on [Runtime.exploration_key] (the
    behavioural state up to ticket renaming, plus the un-timed operation
    events so far), revisits of a key are pruned, turning the schedule
    tree into a DAG.  Sound together with sleep sets via Godefroid's
    refinement: a revisit is only skipped when some earlier visit of the
    key used a subset of the current sleep set.  Active only under
    [Exhaustive] (a bounded search would need the remaining budget in
    the key).

    {b Bounding.}  For configurations too large to exhaust, {!bound}
    offers delay bounding (explore schedules reachable from the
    deterministic fifo baseline with at most [d] deviations) and
    preemption bounding (at most [p] switches away from a still-runnable
    client), in the spirit of CHESS.  Bounded modes are heuristic
    coverage — only [Exhaustive] is a proof up to the configuration
    bound. *)

(** {2:independence Independence}

    Actions are independent iff they commute and their swap leaves the
    operation history's precedence relation intact:

    - deliveries on distinct objects always; on the same object when
      both RMWs are read-only, or both are declared merge-class
      ([Runtime.rmw_nature]);
    - a delivery and a client step, unless the step consumes or enters
      an await covering that very ticket ([Runtime.last_step_awaits]);
    - two steps of distinct clients, unless one emits a return and the
      other an invocation: the checkers consume histories only through
      the precedence relation "return before invocation", so only that
      pair of events must keep its relative order (invisible round
      transitions, invocation/invocation and return/return swaps all
      preserve every verdict);
    - an object crash against every step and other-object deliveries.

    A step that emits a return is dependent on a distinct client's step
    emitting an invocation (their order is a precedence edge), crashes
    are mutually dependent (shared crash budgets), and anything
    client-local is dependent on that client's crash. *)

type bound =
  | Exhaustive
  | Delay of int  (** ≤ d deviations from the fifo baseline schedule. *)
  | Preempt of int  (** ≤ p preemptions of a still-steppable client. *)

type config = {
  algorithm : Sb_sim.Runtime.algorithm;
  n : int;
  f : int;
  workload : Sb_sim.Trace.op_kind list array;
  base_model : Sb_baseobj.Model.t;
      (** Base-object model every explored world enforces.  Under
          [Read_write] the per-(client, object) FIFO discipline shapes
          enabledness, which the search sees through
          [Runtime.decision_enabled] like any other constraint; same-
          object deliveries are already dependent, so the independence
          relation needs no change. *)
  byz : Sb_baseobj.Model.byz_policy option;
      (** Byzantine behaviour for compromised objects.  Policies must be
          pure functions of stable inputs (see
          [Sb_baseobj.Model.byz_policy]) — the state cache assumes two
          worlds with equal keys behave identically. *)
  seed : int;  (** World seed; replays always reuse it. *)
  initial : bytes;  (** The register's initial value [v0]. *)
  check : Sb_spec.History.t -> Sb_spec.Regularity.verdict;
      (** The property every explored history must satisfy. *)
  dpor : bool;  (** Sleep-set pruning on/off (off = naive enumeration). *)
  cache : bool;
      (** State caching: prune revisits of behaviourally equal worlds,
          keyed by the incremental [Runtime.state_hash].  Only effective
          under [Exhaustive]. *)
  paranoid_key : bool;
      (** Cross-check every cache key against the Marshal-based
          [Runtime.exploration_key]: fail loudly if equal Marshal keys
          ever map to distinct state hashes (the fast fingerprint missed
          state) or equal hashes to distinct Marshal keys (a 128-bit
          collision).  Costs the old Marshal key per cached state — for
          tests, not production sweeps. *)
  bound : bound;
  crash_objs : int;  (** Max object crashes the explorer may inject. *)
  crash_clients : int;  (** Max client crashes the explorer may inject. *)
  max_schedules : int;  (** Stop after this many schedules; 0 = no cap. *)
  stop_on_violation : bool;
  lint : bool;
      (** Re-execute every complete schedule from its decision trace and
          count divergences (trace bytes or state fingerprint) — catches
          hidden nondeterminism in protocol code. *)
  on_history : (Sb_sim.Runtime.decision list -> Sb_spec.History.t -> unit) option;
      (** Called on every complete schedule, e.g. to collect the set of
          values reads can return. *)
  instrument : (Sb_sim.Runtime.world -> unit) option;
      (** Called on every fresh world the search creates (the root, each
          backtracking replay, lint re-executions) — the hook point for
          attaching [Sb_sanitize] monitors via [Runtime.add_observer].
          When set, any exception a monitor raises while a decision
          executes is re-raised as {!Instrumented_failure} carrying the
          decision prefix that produced it. *)
}

exception Instrumented_failure of exn * Sb_sim.Runtime.decision list
(** A monitor attached through [instrument] raised during the search.
    Carries the monitor's exception and the decision trace up to and
    including the offending decision — replayable against a fresh
    instrumented world, and shrinkable like any failing trace. *)

val config :
  ?seed:int ->
  ?dpor:bool ->
  ?cache:bool ->
  ?paranoid_key:bool ->
  ?bound:bound ->
  ?crash_objs:int ->
  ?crash_clients:int ->
  ?max_schedules:int ->
  ?stop_on_violation:bool ->
  ?lint:bool ->
  ?base_model:Sb_baseobj.Model.t ->
  ?byz:Sb_baseobj.Model.byz_policy ->
  ?on_history:(Sb_sim.Runtime.decision list -> Sb_spec.History.t -> unit) ->
  ?instrument:(Sb_sim.Runtime.world -> unit) ->
  algorithm:Sb_sim.Runtime.algorithm ->
  n:int ->
  f:int ->
  workload:Sb_sim.Trace.op_kind list array ->
  initial:bytes ->
  check:(Sb_spec.History.t -> Sb_spec.Regularity.verdict) ->
  unit ->
  config
(** Defaults: [seed 1], [dpor true], [cache false], [paranoid_key
    false], [Exhaustive], no crashes, no schedule cap, stop on the first
    violation, no lint, [Rmw] base model, nobody Byzantine, no
    instrumentation. *)

(** {2 The independence relation, exposed}

    The soundness of the sleep-set reduction rests entirely on
    {!independent}.  It is exported — together with the action vocabulary
    it is stated over — so that [Sb_sanitize.Audit] can machine-check it:
    replay both orders of every pair the relation declares independent
    and flag state or enabledness divergence.  Treat these as read-only
    inspection hooks; the search itself constructs its own actions. *)

type kind = KDeliver | KStep | KCrashObj | KCrashClient

type action = {
  dec : Sb_sim.Runtime.decision;
  kind : kind;
  a_obj : int;  (** Object/server involved; [-1] for client-only actions. *)
  a_client : int;  (** Client involved; [-1] for object crashes. *)
  a_nature : Sb_sim.Runtime.rmw_nature;
      (** For a [KDeliver]: the pending RMW's declared nature. *)
  mutable a_inv : bool;  (** The step emitted an [Invoke] (observed). *)
  mutable a_ret : bool;  (** The step emitted a [Return] (observed). *)
  mutable a_awaited : int list;
      (** For a [KStep]: tickets the step read or started awaiting. *)
}

val independent : action -> action -> bool
(** The relation documented at {!section-independence}.  Step attributes
    ([a_inv]/[a_ret]/[a_awaited]) must have been observed by executing
    the action ({!execute_observing}) for the verdict to be meaningful. *)

val natures_commute :
  Sb_sim.Runtime.rmw_nature -> Sb_sim.Runtime.rmw_nature -> bool
(** The nature-level core of {!independent}'s same-object
    delivery/delivery case: two deliveries on the same object are
    treated as commuting exactly when this holds of their declared
    natures.  Exported so the static analyzer ([Sb_analyze.Certify])
    can discharge every commutation it claims against the enumerated
    RMW algebra — the declarations stop being trusted axioms. *)

val enabled_actions :
  config -> Sb_sim.Runtime.world -> obj_left:int -> cli_left:int -> action list
(** The enabled actions of [w] in deterministic baseline order, as the
    search would construct them ([obj_left]/[cli_left] are the remaining
    crash budgets; pass [0] to exclude crash actions). *)

val execute_observing : Sb_sim.Runtime.world -> action -> unit
(** Executes the action's decision on [w] and records the step-visibility
    attributes the independence relation consults, exactly as the search
    does when it first explores the action. *)

type stats = {
  schedules : int;  (** Complete schedules whose history was checked. *)
  transitions : int;  (** Decisions executed by the search itself. *)
  replayed_transitions : int;  (** Decisions re-executed for backtracking/lint. *)
  sleep_skips : int;  (** Branches pruned by sleep sets (DPOR). *)
  cache_skips : int;  (** Subtrees pruned by the state cache. *)
  bound_skips : int;  (** Branches pruned by the delay/preemption bound. *)
  max_depth : int;
  violations : int;
  lint_failures : int;
}

type violation = {
  v_decisions : Sb_sim.Runtime.decision list;
      (** The failing schedule, replayable via [Runtime.replay] (and
          shrinkable via {!Shrink.shrink}). *)
  v_history : Sb_spec.History.t;
  v_counterexample : Sb_spec.Regularity.counterexample;
}

type outcome = {
  stats : stats;
  first_violation : violation option;
  complete : bool;
      (** The whole (bounded) schedule space was explored — [false] when
          stopped by a violation or by [max_schedules]. *)
}

val explore : config -> outcome
(** Runs the search.  Deterministic: same config, same outcome. *)

(** {2 Subtree tasks}

    The hooks the parallel driver ([Sb_parallel.Pexplore]) is built on.
    A {!task} is a node of the schedule tree packaged for independent
    exploration: the decision prefix reaching it, the sleep set it
    inherits from the actions its ancestors explored before it, and its
    scheduling context (remaining bound budget, crash budgets, last
    stepped client).  {!expand} splits a task into child tasks — one per
    explorable action of its node, each child's sleep set extended by
    the same propagation rule the sequential search uses — so the
    children's schedule sets partition the parent's.  Tasks can then be
    explored in any order, on any domain, and their outcomes merged in
    expansion order reproduce the sequential totals. *)

type task

val root_task : config -> task
(** The whole search as a single task: [explore cfg] is
    [explore_task cfg (root_task cfg)]. *)

val task_depth : task -> int
(** Length of the task's decision prefix (its node's depth). *)

type expansion = {
  x_tasks : task list;
      (** Children in the sequential exploration order.  Empty when the
          node is a leaf ([x_leaf]) or every action was pruned. *)
  x_leaf : bool;
      (** The node has no enabled actions at all: the task is a complete
          schedule and must still be explored (checked), not dropped. *)
  x_transitions : int;  (** Actions executed while expanding. *)
  x_replayed : int;  (** Prefix decisions re-executed while expanding. *)
  x_sleep_skips : int;
  x_bound_skips : int;
  x_depth_seen : int;
      (** Deepest node materialised; covers children whose own subtrees
          are empty when merging [max_depth]. *)
}

val expand : config -> task -> expansion
(** Expands the task's node one level, executing each explorable action
    on a fresh prefix replay to observe the attributes child sleep sets
    depend on.  Deterministic, and independent of how the resulting
    tasks are later scheduled. *)

val explore_task : ?abort:(unit -> bool) -> config -> task -> outcome
(** Runs the search over one task's subtree.  [stats] are the subtree's
    own (depths relative to the task's node, prefix replays included in
    [replayed_transitions]); violation decision lists are full paths
    including the task prefix.  [abort] is polled between schedules —
    when it returns [true] the search stops as if by [Stop] (used to
    cancel subtrees whose results a violation already supersedes; an
    aborted outcome must be discarded, not merged).  With a fresh
    per-task state cache, [cache_skips] can differ from the single-tree
    sequential run, but verdicts never do. *)

val pp_stats : Format.formatter -> stats -> unit

val pp_decisions : Format.formatter -> Sb_sim.Runtime.decision list -> unit
(** One numbered decision per line, in [Runtime.decision_to_string]
    syntax — paste-able into [spacebounds explore --replay]. *)
