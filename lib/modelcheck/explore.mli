(** Systematic schedule exploration for [Sb_sim.Runtime] worlds.

    The paper's correctness claims are statements over {e every}
    asynchronous schedule.  This module enumerates all of them, for a
    bounded configuration, instead of sampling: a depth-first search over
    {e decision traces} (which pending RMW takes effect, which client
    steps, which component crashes), re-executing each prefix against a
    fresh deterministic world, and machine-checking every complete
    history with a [Sb_spec.Regularity] checker.

    {b Partial-order reduction.}  Most interleavings differ only in the
    order of commuting actions — above all, RMW deliveries on distinct
    base objects.  The search carries {e sleep sets} (Godefroid): after a
    subtree for action [a] is done, sibling subtrees do not re-explore
    schedules that merely reorder [a] past independent actions.  With the
    independence relation of {!section-independence} below, every
    Mazurkiewicz equivalence class of schedules is still explored at
    least once, and the class representative has the same history
    precedence relation — so no consistency verdict is lost.

    {b State caching.}  Orthogonally, interleavings of commuting actions
    converge to the same logical world; since a node's future behaviour
    and every verdict depend only on [Runtime.exploration_key] (the
    behavioural state up to ticket renaming, plus the un-timed operation
    events so far), revisits of a key are pruned, turning the schedule
    tree into a DAG.  Sound together with sleep sets via Godefroid's
    refinement: a revisit is only skipped when some earlier visit of the
    key used a subset of the current sleep set.  Active only under
    [Exhaustive] (a bounded search would need the remaining budget in
    the key).

    {b Bounding.}  For configurations too large to exhaust, {!bound}
    offers delay bounding (explore schedules reachable from the
    deterministic fifo baseline with at most [d] deviations) and
    preemption bounding (at most [p] switches away from a still-runnable
    client), in the spirit of CHESS.  Bounded modes are heuristic
    coverage — only [Exhaustive] is a proof up to the configuration
    bound. *)

(** {2:independence Independence}

    Actions are independent iff they commute and their swap leaves the
    operation history's precedence relation intact:

    - deliveries on distinct objects always; on the same object when
      both RMWs are read-only, or both are declared merge-class
      ([Runtime.rmw_nature]);
    - a delivery and a client step, unless the step consumes or enters
      an await covering that very ticket ([Runtime.last_step_awaits]);
    - two steps of distinct clients, unless one emits a return and the
      other an invocation: the checkers consume histories only through
      the precedence relation "return before invocation", so only that
      pair of events must keep its relative order (invisible round
      transitions, invocation/invocation and return/return swaps all
      preserve every verdict);
    - an object crash against every step and other-object deliveries.

    A step that emits a return is dependent on a distinct client's step
    emitting an invocation (their order is a precedence edge), crashes
    are mutually dependent (shared crash budgets), and anything
    client-local is dependent on that client's crash. *)

type bound =
  | Exhaustive
  | Delay of int  (** ≤ d deviations from the fifo baseline schedule. *)
  | Preempt of int  (** ≤ p preemptions of a still-steppable client. *)

type config = {
  algorithm : Sb_sim.Runtime.algorithm;
  n : int;
  f : int;
  workload : Sb_sim.Trace.op_kind list array;
  seed : int;  (** World seed; replays always reuse it. *)
  initial : bytes;  (** The register's initial value [v0]. *)
  check : Sb_spec.History.t -> Sb_spec.Regularity.verdict;
      (** The property every explored history must satisfy. *)
  dpor : bool;  (** Sleep-set pruning on/off (off = naive enumeration). *)
  cache : bool;
      (** State caching: prune revisits of behaviourally equal worlds
          ([Runtime.exploration_key]).  Only effective under
          [Exhaustive]. *)
  bound : bound;
  crash_objs : int;  (** Max object crashes the explorer may inject. *)
  crash_clients : int;  (** Max client crashes the explorer may inject. *)
  max_schedules : int;  (** Stop after this many schedules; 0 = no cap. *)
  stop_on_violation : bool;
  lint : bool;
      (** Re-execute every complete schedule from its decision trace and
          count divergences (trace bytes or state fingerprint) — catches
          hidden nondeterminism in protocol code. *)
  on_history : (Sb_sim.Runtime.decision list -> Sb_spec.History.t -> unit) option;
      (** Called on every complete schedule, e.g. to collect the set of
          values reads can return. *)
}

val config :
  ?seed:int ->
  ?dpor:bool ->
  ?cache:bool ->
  ?bound:bound ->
  ?crash_objs:int ->
  ?crash_clients:int ->
  ?max_schedules:int ->
  ?stop_on_violation:bool ->
  ?lint:bool ->
  ?on_history:(Sb_sim.Runtime.decision list -> Sb_spec.History.t -> unit) ->
  algorithm:Sb_sim.Runtime.algorithm ->
  n:int ->
  f:int ->
  workload:Sb_sim.Trace.op_kind list array ->
  initial:bytes ->
  check:(Sb_spec.History.t -> Sb_spec.Regularity.verdict) ->
  unit ->
  config
(** Defaults: [seed 1], [dpor true], [cache false], [Exhaustive], no
    crashes, no schedule cap, stop on the first violation, no lint. *)

type stats = {
  schedules : int;  (** Complete schedules whose history was checked. *)
  transitions : int;  (** Decisions executed by the search itself. *)
  replayed_transitions : int;  (** Decisions re-executed for backtracking/lint. *)
  sleep_skips : int;  (** Branches pruned by sleep sets (DPOR). *)
  cache_skips : int;  (** Subtrees pruned by the state cache. *)
  bound_skips : int;  (** Branches pruned by the delay/preemption bound. *)
  max_depth : int;
  violations : int;
  lint_failures : int;
}

type violation = {
  v_decisions : Sb_sim.Runtime.decision list;
      (** The failing schedule, replayable via [Runtime.replay] (and
          shrinkable via {!Shrink.shrink}). *)
  v_history : Sb_spec.History.t;
  v_counterexample : Sb_spec.Regularity.counterexample;
}

type outcome = {
  stats : stats;
  first_violation : violation option;
  complete : bool;
      (** The whole (bounded) schedule space was explored — [false] when
          stopped by a violation or by [max_schedules]. *)
}

val explore : config -> outcome
(** Runs the search.  Deterministic: same config, same outcome. *)

val pp_stats : Format.formatter -> stats -> unit

val pp_decisions : Format.formatter -> Sb_sim.Runtime.decision list -> unit
(** One numbered decision per line, in [Runtime.decision_to_string]
    syntax — paste-able into [spacebounds explore --replay]. *)
