module R = Sb_sim.Runtime

let replay_world (cfg : Explore.config) decisions =
  let w =
    R.create ~seed:cfg.seed ~base_model:cfg.Explore.base_model
      ?byz:cfg.Explore.byz ~algorithm:cfg.algorithm ~n:cfg.n ~f:cfg.f
      ~workload:cfg.workload ()
  in
  ignore (R.replay w decisions);
  w

let check_decisions (cfg : Explore.config) decisions =
  let w = replay_world cfg decisions in
  let h = Sb_spec.History.of_trace ~initial:cfg.initial (R.trace w) in
  match cfg.check h with
  | Sb_spec.Regularity.Ok -> None
  | Sb_spec.Regularity.Violation cx -> Some (cx, h)

let still_violating cfg decisions = check_decisions cfg decisions <> None

let shortest_violating_prefix violates arr =
  let n = Array.length arr in
  let result = ref n in
  (try
     for l = 0 to n do
       if violates (Array.to_list (Array.sub arr 0 l)) then begin
         result := l;
         raise Exit
       end
     done
   with Exit -> ());
  Array.to_list (Array.sub arr 0 !result)

(* The shrinking algorithm over an abstract failure predicate: the
   regularity-violation shrinker below and the sanitizer-violation
   shrinker in [Sb_sanitize] are both instances. *)
let shrink_pred ~violates decisions =
  if not (violates decisions) then
    invalid_arg "Shrink.shrink: the given decision trace does not violate";
  (* Phase 1: cut the tail — the shortest violating prefix (the
     violation typically manifests the moment the offending read
     returns; everything after is noise). *)
  let cur = ref (shortest_violating_prefix violates (Array.of_list decisions)) in
  (* Phase 2: greedy deletion to a local minimum.  Deleting a decision
     may orphan later ones (a Deliver whose trigger never happened);
     Runtime.replay skips those, so every candidate is a valid schedule.
     Crash decisions are candidates like any other, so the crash set is
     minimised too. *)
  let changed = ref true in
  while !changed do
    changed := false;
    let len = List.length !cur in
    (try
       for i = 0 to len - 1 do
         let candidate = List.filteri (fun j _ -> j <> i) !cur in
         if violates candidate then begin
           cur := candidate;
           changed := true;
           raise Exit
         end
       done
     with Exit -> ())
  done;
  !cur

let shrink cfg decisions = shrink_pred ~violates:(still_violating cfg) decisions
