type t =
  | Rmw
  | Read_write
  | Byzantine of { budget : int }

type op_class = Read | Overwrite | General

type error =
  | Negative_budget of { budget : int }
  | Budget_exceeds_f of { budget : int; f : int }
  | Op_not_supported of { model : t; cls : op_class }
  | Opaque_rmw of { model : t }
  | Policy_mismatch of { model : t; reason : string }

exception Error of error

let class_name = function
  | Read -> "read"
  | Overwrite -> "overwrite"
  | General -> "general-rmw"

let to_string = function
  | Rmw -> "rmw"
  | Read_write -> "rw"
  | Byzantine { budget } -> Printf.sprintf "byz:%d" budget

let error_to_string = function
  | Negative_budget { budget } ->
    Printf.sprintf "byzantine budget %d is negative" budget
  | Budget_exceeds_f { budget; f } ->
    Printf.sprintf
      "byzantine budget %d exceeds the failure budget f = %d: the masking \
       emulations are only claimed for b <= f (run the over-budget case as an \
       explicit negative control, not as a plan)"
      budget f
  | Op_not_supported { model; cls } ->
    Printf.sprintf
      "base-object model '%s' does not support %s operations: read/write base \
       objects offer read and blind overwrite only (Chockler-Spiegelman, \
       arXiv:1705.07212)"
      (to_string model) (class_name cls)
  | Opaque_rmw { model } ->
    Printf.sprintf
      "base-object model '%s' requires a serializable operation description; \
       an opaque RMW closure cannot be classified"
      (to_string model)
  | Policy_mismatch { model; reason } ->
    Printf.sprintf "byzantine policy rejected under model '%s': %s"
      (to_string model) reason

let () =
  Printexc.register_printer (function
    | Error e -> Some ("Sb_baseobj.Model.Error: " ^ error_to_string e)
    | _ -> None)

let allows t cls =
  match (t, cls) with
  | (Rmw | Byzantine _), _ -> true
  | Read_write, (Read | Overwrite) -> true
  | Read_write, General -> false

let check_op t cls =
  match t with
  | Rmw | Byzantine _ -> ()
  | Read_write -> (
    match cls with
    | None -> raise (Error (Opaque_rmw { model = t }))
    | Some cls ->
      if not (allows t cls) then
        raise (Error (Op_not_supported { model = t; cls })))

let fifo_writes = function Read_write -> true | Rmw | Byzantine _ -> false
let budget = function Byzantine { budget } -> budget | Rmw | Read_write -> 0

let validate ~f = function
  | Rmw | Read_write -> ()
  | Byzantine { budget } ->
    if budget < 0 then raise (Error (Negative_budget { budget }));
    if budget > f then raise (Error (Budget_exceeds_f { budget; f }))

let equal a b =
  match (a, b) with
  | Rmw, Rmw | Read_write, Read_write -> true
  | Byzantine { budget = a }, Byzantine { budget = b } -> a = b
  | (Rmw | Read_write | Byzantine _), _ -> false

let pp ppf t = Format.pp_print_string ppf (to_string t)

let of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "rmw" -> Ok Rmw
  | "rw" | "read-write" | "read_write" -> Ok Read_write
  | "byz" -> Ok (Byzantine { budget = 0 })
  | s when String.length s > 4 && String.sub s 0 4 = "byz:" -> (
    match int_of_string_opt (String.sub s 4 (String.length s - 4)) with
    | Some b when b >= 0 -> Ok (Byzantine { budget = b })
    | Some b -> Error (Printf.sprintf "byzantine budget %d is negative" b)
    | None -> Error (Printf.sprintf "cannot parse byzantine budget in %S" s))
  | other ->
    Error
      (Printf.sprintf "unknown base-object model %S (expected rmw|rw|byz:<b>)"
         other)

type byz_action =
  | Honest
  | Drop_write
  | Fabricate of Sb_storage.Objstate.t

type byz_policy = {
  bp_name : string;
  bp_budget : int;
  bp_compromised : int -> bool;
  bp_act :
    obj:int ->
    client:int ->
    cls:op_class ->
    before:Sb_storage.Objstate.t ->
    init:Sb_storage.Objstate.t ->
    byz_action;
}

let honest_policy =
  {
    bp_name = "honest";
    bp_budget = 0;
    bp_compromised = (fun _ -> false);
    bp_act = (fun ~obj:_ ~client:_ ~cls:_ ~before:_ ~init:_ -> Honest);
  }

let check_policy t ~n policy =
  match t with
  | Rmw | Read_write ->
    raise
      (Error
         (Policy_mismatch
            {
              model = t;
              reason =
                Printf.sprintf "policy %S supplied, but nobody may lie"
                  policy.bp_name;
            }))
  | Byzantine { budget } ->
    let compromised =
      List.length
        (List.filter policy.bp_compromised (List.init n (fun i -> i)))
    in
    if compromised > budget then
      raise
        (Error
           (Policy_mismatch
              {
                model = t;
                reason =
                  Printf.sprintf
                    "policy %S compromises %d of %d objects, budget is %d"
                    policy.bp_name compromised n budget;
              }))
