(** Base-object models — the interface the emulation rents from below.

    The source paper's bounds (Theorems 2–4) are proved over base objects
    supporting arbitrary atomic read-modify-write.  The sibling papers
    change that one assumption and the storage landscape changes
    qualitatively:

    - {e Space Complexity of Fault Tolerant Register Emulations}
      (Chockler–Spiegelman, arXiv:1705.07212): over plain {b read/write}
      base objects a regular register emulation must keep [f+1] full
      replicas alive — coding buys nothing, and adaptivity buys nothing.
    - {e Integrated Bounds for Disintegrated Storage}
      (Berger–Keidar–Spiegelman, arXiv:1805.06265): over
      {b non-authenticated Byzantine} objects, coded ("disintegrated")
      storage collapses to the same replication floor.

    This module makes the base-object model a scenario parameter shared
    by both runtimes ([Sb_sim.Runtime] and [Sb_msgnet.Mp_runtime]): which
    operation classes the base objects accept, what delivery discipline
    they provide, and how many of them may lie. *)

type t =
  | Rmw  (** Arbitrary atomic read-modify-write — the source paper's
             model and the historical default of this repository. *)
  | Read_write
      (** Base objects support only [read] and blind [overwrite] — no
          conditional or merge application.  Each (client, object) pair
          behaves like an atomic register accessed over a sequential
          channel, so operations by one client on one object take effect
          in issue order ({!fifo_writes}). *)
  | Byzantine of { budget : int }
      (** RMW base objects of which up to [budget] may return
          wrong-but-well-formed responses and equivocate between
          readers.  Faulty objects are non-authenticated: they cannot
          forge the provenance tags of code blocks (Definition 4's
          source function), but may replay stale states, drop writes,
          or fabricate states wholesale. *)

(** Operation classes the models discriminate on.  [Rmwdesc.op_class]
    maps every serializable RMW description to one of these. *)
type op_class =
  | Read       (** State snapshot; changes nothing. *)
  | Overwrite  (** Blind wholesale overwrite ([Rmwdesc.Rw_write]). *)
  | General    (** Anything conditional or merging — RMW-only. *)

type error =
  | Negative_budget of { budget : int }
  | Budget_exceeds_f of { budget : int; f : int }
      (** A Byzantine plan asked for more liars than the failure budget
          covers; rejected at validation, not mid-run. *)
  | Op_not_supported of { model : t; cls : op_class }
      (** A register triggered an operation class the base objects do
          not implement (e.g. a merge-class store over [Read_write]). *)
  | Opaque_rmw of { model : t }
      (** A raw closure without a serializable description reached a
          model that must inspect the operation class. *)
  | Policy_mismatch of { model : t; reason : string }
      (** A Byzantine policy was supplied for a non-Byzantine model, or
          compromises more objects than the model's budget. *)

exception Error of error

val error_to_string : error -> string

val allows : t -> op_class -> bool
(** [Rmw] and [Byzantine _] allow everything; [Read_write] allows only
    [Read] and [Overwrite]. *)

val check_op : t -> op_class option -> unit
(** Gate applied by the runtimes at trigger time: raises {!Error}
    ([Op_not_supported] or [Opaque_rmw]) when the model rejects the
    class.  [None] means the RMW came as an opaque closure — fine under
    [Rmw], rejected by the restricted models. *)

val fifo_writes : t -> bool
(** Whether the model imposes per-(client, object) FIFO delivery —
    [true] exactly for [Read_write], where a base object is an atomic
    register reached over a sequential channel and a client's operations
    on it take effect in issue order.  Without this discipline a
    straggling blind overwrite could roll a cell backwards, which the
    sibling papers' model rules out by assumption. *)

val budget : t -> int
(** The lying-object budget: [b] for [Byzantine { budget = b }], [0]
    otherwise. *)

val validate : f:int -> t -> unit
(** Policy-level validation (CLI, fault plans): raises {!Error} when a
    Byzantine budget is negative or exceeds [f].  The runtimes
    deliberately do {e not} call this — negative controls need to run
    over-budget adversaries mechanically. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val to_string : t -> string
(** ["rmw"], ["rw"], or ["byz:<b>"]. *)

val of_string : string -> (t, string) result
(** Parses the {!to_string} forms (also accepts ["read-write"] and
    ["byz"] as [byz:0]). *)

val class_name : op_class -> string

(** {1 Byzantine behaviour interface}

    A Byzantine policy decides, per delivery at a compromised object,
    what the object does instead of executing the operation honestly.
    Policies are pure functions of stable, canonically-named inputs —
    the object id, the issuing client, the operation class, the current
    and initial object states — and never of raw ticket or operation
    ids, so they compose soundly with the model checker's state caching
    (two worlds with equal exploration keys behave identically under
    the same policy). *)

type byz_action =
  | Honest  (** Execute the operation faithfully. *)
  | Drop_write
      (** Acknowledge without applying — the classic omission-style lie
          that lets a stale state survive behind a positive ack. *)
  | Fabricate of Sb_storage.Objstate.t
      (** Respond with a fabricated, well-formed state (and leave the
          real state untouched).  Equivocation falls out of fabricating
          differently for different clients. *)

type byz_policy = {
  bp_name : string;
  bp_budget : int;  (** Number of objects [bp_compromised] admits. *)
  bp_compromised : int -> bool;
      (** Which object ids are faulty; must hold for at most
          [bp_budget] ids in [0, n). *)
  bp_act :
    obj:int ->
    client:int ->
    cls:op_class ->
    before:Sb_storage.Objstate.t ->
    init:Sb_storage.Objstate.t ->
    byz_action;
      (** Decision at a delivery on a compromised object. *)
}

val honest_policy : byz_policy
(** The budget-0 policy: nobody lies. *)

val check_policy : t -> n:int -> byz_policy -> unit
(** Raises {!Error} ([Policy_mismatch]) unless the model is Byzantine
    and the policy compromises at most [budget] objects in [0, n). *)
