(** A minimal fixed-size domain pool for indexed task sets. *)

val run : jobs:int -> int -> (int -> unit) -> unit
(** [run ~jobs n f] evaluates [f i] for every [i] in [0..n-1], on up to
    [jobs] domains (the calling domain included).  Tasks are claimed in
    index order via one atomic counter.  With [jobs <= 1] everything
    runs inline on the caller, in order — the degenerate pool the
    deterministic-merge tests compare against.  [f] must confine its
    effects to task-private state (e.g. its own slot of a results
    array); if any task raises, one of the exceptions is re-raised
    after all domains have joined, so callers that need deterministic
    error reporting should capture per-task results themselves. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the [--jobs 0] meaning. *)
