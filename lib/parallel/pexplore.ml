module E = Sb_modelcheck.Explore

(* ------------------------------------------------------------------ *)
(* Deterministic task frontier                                         *)
(* ------------------------------------------------------------------ *)

(* Expand the root into a frontier of disjoint subtree tasks.  The
   expansion policy is a function of the configuration only — never of
   [jobs] — so every jobs level explores the identical task list and
   merges the identical per-task outcomes: byte-identical totals.

   The root of a typical configuration has only a handful of enabled
   actions (one per client), far too coarse to balance a pool, so the
   frontier is deepened until it holds at least [target] tasks or
   [max_depth] levels were expanded.  Leaf tasks (complete schedules)
   are kept: they still need their history checked. *)
let frontier ?(target = 32) ?(max_depth = 3) cfg =
  let acc = ref [] (* expansions, for root-contribution accounting *) in
  let expand_all tasks =
    List.concat_map
      (fun (t, is_leaf) ->
        if is_leaf then [ (t, true) ]
        else begin
          let x = E.expand cfg t in
          acc := x :: !acc;
          if x.E.x_leaf then [ (t, true) ]
          else List.map (fun c -> (c, false)) x.E.x_tasks
        end)
      tasks
  in
  let rec grow depth tasks =
    if depth >= max_depth || List.length tasks >= target then tasks
    else begin
      let tasks' = expand_all tasks in
      if List.for_all snd tasks' then tasks' else grow (depth + 1) tasks'
    end
  in
  let tasks = grow 0 [ (E.root_task cfg, false) ] in
  (List.map fst tasks, List.rev !acc)

(* ------------------------------------------------------------------ *)
(* Merging                                                             *)
(* ------------------------------------------------------------------ *)

let zero_stats =
  {
    E.schedules = 0;
    transitions = 0;
    replayed_transitions = 0;
    sleep_skips = 0;
    cache_skips = 0;
    bound_skips = 0;
    max_depth = 0;
    violations = 0;
    lint_failures = 0;
  }

let add_stats a (b : E.stats) ~depth =
  {
    E.schedules = a.E.schedules + b.E.schedules;
    transitions = a.E.transitions + b.E.transitions;
    replayed_transitions = a.E.replayed_transitions + b.E.replayed_transitions;
    sleep_skips = a.E.sleep_skips + b.E.sleep_skips;
    cache_skips = a.E.cache_skips + b.E.cache_skips;
    bound_skips = a.E.bound_skips + b.E.bound_skips;
    max_depth = max a.E.max_depth (depth + b.E.max_depth);
    violations = a.E.violations + b.E.violations;
    lint_failures = a.E.lint_failures + b.E.lint_failures;
  }

let add_expansion a (x : E.expansion) =
  {
    a with
    E.transitions = a.E.transitions + x.E.x_transitions;
    replayed_transitions = a.E.replayed_transitions + x.E.x_replayed;
    sleep_skips = a.E.sleep_skips + x.E.x_sleep_skips;
    bound_skips = a.E.bound_skips + x.E.x_bound_skips;
    max_depth = max a.E.max_depth x.E.x_depth_seen;
  }

(* ------------------------------------------------------------------ *)
(* The parallel driver                                                 *)
(* ------------------------------------------------------------------ *)

(* Features that entangle subtrees or share user state across domains
   force the plain sequential search (identical at every jobs level):
   - [max_schedules] is a global budget a partitioned run cannot cut
     deterministically;
   - [on_history] / [instrument] run user callbacks that would fire
     concurrently from several domains. *)
let must_run_sequentially (cfg : E.config) =
  cfg.E.max_schedules > 0 || cfg.E.on_history <> None
  || cfg.E.instrument <> None

let explore ?(jobs = 1) cfg =
  let jobs = if jobs <= 0 then Pool.default_jobs () else jobs in
  if must_run_sequentially cfg then E.explore cfg
  else begin
    let tasks, expansions = frontier cfg in
    match tasks with
    | [] | [ _ ] -> E.explore cfg
    | _ ->
      let tasks = Array.of_list tasks in
      let n = Array.length tasks in
      let results : (E.outcome, exn) result option array = Array.make n None in
      (* Index of the first subtree known to hold a violation.  Tasks
         with a higher index may be aborted — their outcomes are
         discarded by the merge — while tasks at or below it always run
         to completion, keeping the merge jobs-independent. *)
      let min_violation = Atomic.make max_int in
      let run_task i =
        let abort () = i > Atomic.get min_violation in
        let r =
          match E.explore_task ~abort cfg tasks.(i) with
          | out -> Ok out
          | exception e -> Error e
        in
        (match r with
         | Ok out when cfg.E.stop_on_violation && out.E.first_violation <> None
           ->
           let rec lower () =
             let cur = Atomic.get min_violation in
             if i < cur && not (Atomic.compare_and_set min_violation cur i) then
               lower ()
           in
           lower ()
         | _ -> ());
        results.(i) <- Some r
      in
      if jobs = 1 then begin
        (* In-order with early stop: identical to what the merge below
           reconstructs from a full parallel run. *)
        let i = ref 0 in
        let stop = ref false in
        while (not !stop) && !i < n do
          run_task !i;
          (match results.(!i) with
           | Some (Ok out)
             when cfg.E.stop_on_violation && out.E.first_violation <> None ->
             stop := true
           | _ -> ());
          incr i
        done
      end
      else Pool.run ~jobs n run_task;
      (* Deterministic merge, in task (= sequential exploration) order:
         everything up to and including the first violating subtree
         counts; later subtrees (possibly aborted) are discarded,
         exactly what the jobs=1 early stop produced. *)
      let viol_idx = ref None in
      (try
         for i = 0 to n - 1 do
           match results.(i) with
           | Some (Ok out) when out.E.first_violation <> None ->
             viol_idx := Some i;
             raise Exit
           | _ -> ()
         done
       with Exit -> ());
      let upto =
        match !viol_idx with
        | Some v when cfg.E.stop_on_violation -> v
        | _ -> n - 1
      in
      (* A task below the cut that failed (or is missing) breaks the
         merge: re-raise the earliest failure deterministically. *)
      let stats = ref (List.fold_left add_expansion zero_stats expansions) in
      let first = ref None in
      for i = 0 to upto do
        match results.(i) with
        | Some (Ok out) ->
          stats := add_stats !stats out.E.stats ~depth:(E.task_depth tasks.(i));
          if !first = None then first := out.E.first_violation
        | Some (Error e) -> raise e
        | None ->
          invalid_arg "Pexplore.explore: missing subtree outcome in merge"
      done;
      let complete =
        match !viol_idx with
        | Some _ when cfg.E.stop_on_violation -> false
        | _ -> true
      in
      { E.stats = !stats; first_violation = !first; complete }
  end
