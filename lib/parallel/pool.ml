(* A minimal fixed-size domain pool: run [n] indexed tasks on up to
   [jobs] domains.  Work stealing is a single atomic counter — tasks
   are claimed in index order, so earlier (typically larger, because
   the expansion enumerates the baseline order) subtrees start first.
   No dependency on domainslib: the repo's toolchain ships only the
   stdlib, and this is all the structure the explorer needs. *)

let run ~jobs n f =
  if n <= 0 then ()
  else if jobs <= 1 || n = 1 then
    for i = 0 to n - 1 do
      f i
    done
  else begin
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          f i;
          loop ()
        end
      in
      loop ()
    in
    let spawned = min jobs n - 1 in
    let domains = Array.init spawned (fun _ -> Domain.spawn worker) in
    (* The calling domain is the pool's first worker; join re-raises a
       worker's exception, so wrap [f] if per-task isolation matters. *)
    let caller_exn =
      match worker () with () -> None | exception e -> Some e
    in
    let worker_exn = ref None in
    Array.iter
      (fun d ->
        match Domain.join d with
        | () -> ()
        | exception e -> if !worker_exn = None then worker_exn := Some e)
      domains;
    match (caller_exn, !worker_exn) with
    | Some e, _ | None, Some e -> raise e
    | None, None -> ()
  end

let default_jobs () = Domain.recommended_domain_count ()
