(** Parallel schedule exploration over OCaml 5 domains.

    The DPOR search tree decomposes at any node into disjoint subtrees:
    child [i]'s sleep set contains every earlier-explored independent
    sibling, so the subtrees cover disjoint sets of schedules whose
    union is exactly what the sequential search explores (the same
    propagation rule, applied at the same node — see docs/MODEL.md,
    "Parallel exploration").  This module expands the root into a
    deterministic frontier of such subtree tasks
    ([Explore.root_task] / [Explore.expand]), runs them on a domain
    pool, and merges the outcomes in expansion order.

    {b Determinism.}  The frontier is a function of the configuration
    only — never of [jobs] — and per-task outcomes do not depend on
    which domain ran them, so every jobs level reports byte-identical
    totals, verdicts, and counterexamples.  When a violation stops the
    search, outcomes are merged only up to the first violating subtree
    in exploration order; later subtrees are cancelled (or, under
    [jobs = 1], never started) and their partial results discarded.

    {b Caveats.}  State caches are per-subtree, so with [cache] on a
    partitioned run can miss prunes the single-tree search found in an
    earlier subtree: [cache_skips] — and hence schedule counts — can
    differ from the single-tree sequential numbers (verdicts never
    do), though they are still identical at every jobs level.  With
    [cache] off, only [replayed_transitions] differs from the
    single-tree search (it includes the per-subtree prefix replays).  Configurations the partition
    cannot honour — a [max_schedules] cap, or [on_history] /
    [instrument] callbacks, which would run concurrently from several
    domains — fall back to the sequential search at every jobs
    level. *)

val explore : ?jobs:int -> Sb_modelcheck.Explore.config -> Sb_modelcheck.Explore.outcome
(** [explore ~jobs cfg] explores like [Explore.explore cfg], splitting
    the work over [jobs] domains.  [jobs <= 0] means
    [Pool.default_jobs ()] (the machine's recommended domain count);
    [jobs = 1] runs the identical partitioned search inline.
    Deterministic: same [cfg], same outcome, at every [jobs]. *)
