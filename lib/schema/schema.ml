module H = Sb_util.Hash128

type ty =
  | Bool
  | U8
  | U32
  | I64
  | Bytes
  | Option of ty
  | List of ty
  | Record of field list
  | Enum of arm list

and field = { f_name : string; f_ty : ty }
and arm = { a_tag : int; a_name : string; a_body : ty }

type t = { s_version : int; s_roots : (string * ty) list }

let max_depth = 64

let kind_code = function
  | Bool -> 0x01
  | I64 -> 0x05
  | U8 -> 0x07
  | U32 -> 0x09
  | Bytes -> 0x0c
  | List _ -> 0x20
  | Record _ -> 0x21
  | Enum _ -> 0x22
  | Option _ -> 0x23

let scalar_width = function
  | Bool | U8 -> Some 1
  | U32 -> Some 4
  | I64 -> Some 8
  | Bytes | Option _ | List _ | Record _ | Enum _ -> None

let rec byte_width ty =
  match ty with
  | Bool | U8 | U32 | I64 -> scalar_width ty
  | Bytes | Option _ | List _ -> None
  | Record fs ->
    List.fold_left
      (fun acc f ->
        match (acc, byte_width f.f_ty) with
        | Some a, Some b -> Some (a + b)
        | _ -> None)
      (Some 0) fs
  | Enum [] -> None
  | Enum (a0 :: rest) -> (
    match byte_width a0.a_body with
    | None -> None
    | Some w ->
      if List.for_all (fun a -> byte_width a.a_body = Some w) rest then
        Some (1 + w)
      else None)

(* The type contains only ints, strings and lists, so structural
   polymorphic equality is exactly structural schema equality. *)
let equal_ty (a : ty) (b : ty) = a = b
let equal (a : t) (b : t) = a = b

let rec pp_ty ppf = function
  | Bool -> Format.pp_print_string ppf "bool"
  | U8 -> Format.pp_print_string ppf "u8"
  | U32 -> Format.pp_print_string ppf "u32"
  | I64 -> Format.pp_print_string ppf "i64"
  | Bytes -> Format.pp_print_string ppf "bytes"
  | Option t -> Format.fprintf ppf "option<%a>" pp_ty t
  | List t -> Format.fprintf ppf "list<%a>" pp_ty t
  | Record fs ->
    Format.fprintf ppf "record{%a}"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
         (fun ppf f -> Format.fprintf ppf "%s: %a" f.f_name pp_ty f.f_ty))
      fs
  | Enum arms ->
    Format.fprintf ppf "enum{%a}"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " | ")
         (fun ppf a ->
           match a.a_body with
           | Record [] -> Format.fprintf ppf "%d:%s" a.a_tag a.a_name
           | b -> Format.fprintf ppf "%d:%s %a" a.a_tag a.a_name pp_ty b))
      arms

let str_ty ty = Format.asprintf "%a" pp_ty ty

(* ------------------------------------------------------------------ *)
(* Validation                                                          *)
(* ------------------------------------------------------------------ *)

let validate t =
  let fail fmt = Printf.ksprintf (fun m -> raise (Failure m)) fmt in
  let rec go path depth ty =
    if depth > max_depth then fail "%s: nesting deeper than %d" path max_depth;
    match ty with
    | Bool | U8 | U32 | I64 | Bytes -> ()
    | Option t -> go (path ^ "?") (depth + 1) t
    | List t -> go (path ^ "[]") (depth + 1) t
    | Record fs ->
      let seen = Hashtbl.create 8 in
      List.iter
        (fun f ->
          if Hashtbl.mem seen f.f_name then
            fail "%s: duplicate field %S" path f.f_name;
          Hashtbl.replace seen f.f_name ();
          go (path ^ "." ^ f.f_name) (depth + 1) f.f_ty)
        fs
    | Enum arms ->
      if arms = [] then fail "%s: empty enum" path;
      let seen = Hashtbl.create 8 in
      List.iter
        (fun a ->
          if a.a_tag < 0 || a.a_tag > 0xff then
            fail "%s.%s: tag %d outside u8" path a.a_name a.a_tag;
          if Hashtbl.mem seen a.a_tag then
            fail "%s: duplicate tag %d" path a.a_tag;
          Hashtbl.replace seen a.a_tag ();
          go (path ^ "." ^ a.a_name) (depth + 1) a.a_body)
        arms
  in
  match List.iter (fun (name, ty) -> go name 0 ty) t.s_roots with
  | () -> Ok ()
  | exception Failure m -> Error m

(* ------------------------------------------------------------------ *)
(* Field-level diff                                                    *)
(* ------------------------------------------------------------------ *)

let diff a b =
  let acc = ref [] in
  let line fmt = Printf.ksprintf (fun m -> acc := m :: !acc) fmt in
  let rec go path x y =
    if not (equal_ty x y) then
      match (x, y) with
      | Option x', Option y' -> go (path ^ "?") x' y'
      | List x', List y' -> go (path ^ "[]") x' y'
      | Record fx, Record fy ->
        let rec fields i fx fy =
          match (fx, fy) with
          | [], [] -> ()
          | f :: fx', [] ->
            line "%s.%s: only in old" path f.f_name;
            fields (i + 1) fx' []
          | [], f :: fy' ->
            line "%s.%s: only in new" path f.f_name;
            fields (i + 1) [] fy'
          | f1 :: fx', f2 :: fy' ->
            if f1.f_name <> f2.f_name then
              line "%s: field %d named %S vs %S" path i f1.f_name f2.f_name;
            go (path ^ "." ^ f1.f_name) f1.f_ty f2.f_ty;
            fields (i + 1) fx' fy'
        in
        fields 0 fx fy
      | Enum ax, Enum ay ->
        let tags =
          List.sort_uniq compare
            (List.map (fun a -> a.a_tag) ax @ List.map (fun a -> a.a_tag) ay)
        in
        List.iter
          (fun tag ->
            let fx = List.find_opt (fun a -> a.a_tag = tag) ax in
            let fy = List.find_opt (fun a -> a.a_tag = tag) ay in
            match (fx, fy) with
            | Some a1, Some a2 ->
              if a1.a_name <> a2.a_name then
                line "%s: tag %d named %S vs %S" path tag a1.a_name a2.a_name;
              go (path ^ "." ^ a1.a_name) a1.a_body a2.a_body
            | Some a1, None -> line "%s.%s: tag %d only in old" path a1.a_name tag
            | None, Some a2 -> line "%s.%s: tag %d only in new" path a2.a_name tag
            | None, None -> ())
          tags
      | _ -> line "%s: %s vs %s" path (str_ty x) (str_ty y)
  in
  if a.s_version <> b.s_version then
    line "schema_version: %d vs %d" a.s_version b.s_version;
  let roots =
    List.sort_uniq compare (List.map fst a.s_roots @ List.map fst b.s_roots)
  in
  List.iter
    (fun name ->
      match (List.assoc_opt name a.s_roots, List.assoc_opt name b.s_roots) with
      | Some x, Some y -> go name x y
      | Some _, None -> line "%s: root only in old" name
      | None, Some _ -> line "%s: root only in new" name
      | None, None -> ())
    roots;
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

type json =
  | Jnull
  | Jbool of bool
  | Jint of int
  | Jstr of string
  | Jarr of json list
  | Jobj of (string * json) list

let jstr_escape s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let rec emit_compact b = function
  | Jnull -> Buffer.add_string b "null"
  | Jbool x -> Buffer.add_string b (if x then "true" else "false")
  | Jint n -> Buffer.add_string b (string_of_int n)
  | Jstr s -> Buffer.add_string b (jstr_escape s)
  | Jarr xs ->
    Buffer.add_char b '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char b ',';
        emit_compact b x)
      xs;
    Buffer.add_char b ']'
  | Jobj kvs ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b (jstr_escape k);
        Buffer.add_char b ':';
        emit_compact b v)
      kvs;
    Buffer.add_char b '}'

let compact j =
  let b = Buffer.create 1024 in
  emit_compact b j;
  Buffer.contents b

let is_scalar = function
  | Jnull | Jbool _ | Jint _ | Jstr _ -> true
  | Jarr _ | Jobj _ -> false

let rec emit_pretty b indent j =
  let pad n = String.make n ' ' in
  match j with
  | Jnull | Jbool _ | Jint _ | Jstr _ -> emit_compact b j
  | Jarr xs when List.for_all is_scalar xs -> emit_compact b j
  | Jarr xs ->
    Buffer.add_string b "[\n";
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_string b ",\n";
        Buffer.add_string b (pad (indent + 2));
        emit_pretty b (indent + 2) x)
      xs;
    Buffer.add_char b '\n';
    Buffer.add_string b (pad indent);
    Buffer.add_char b ']'
  | Jobj kvs ->
    Buffer.add_string b "{\n";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string b ",\n";
        Buffer.add_string b (pad (indent + 2));
        Buffer.add_string b (jstr_escape k);
        Buffer.add_string b ": ";
        emit_pretty b (indent + 2) v)
      kvs;
    Buffer.add_char b '\n';
    Buffer.add_string b (pad indent);
    Buffer.add_char b '}'

let pretty j =
  let b = Buffer.create 4096 in
  emit_pretty b 0 j;
  Buffer.add_char b '\n';
  Buffer.contents b

exception Bad of string

let parse_json s =
  let n = String.length s in
  let i = ref 0 in
  let fail msg = raise (Bad (Printf.sprintf "json: %s at offset %d" msg !i)) in
  let skip_ws () =
    while
      !i < n && (match s.[!i] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr i
    done
  in
  let expect ch =
    skip_ws ();
    if !i < n && s.[!i] = ch then incr i
    else fail (Printf.sprintf "expected '%c'" ch)
  in
  let lit word v =
    if !i + String.length word <= n && String.sub s !i (String.length word) = word
    then begin
      i := !i + String.length word;
      v
    end
    else fail "bad literal"
  in
  let pstring () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !i >= n then fail "unterminated string";
      match s.[!i] with
      | '"' -> incr i
      | '\\' ->
        incr i;
        if !i >= n then fail "unterminated escape";
        (match s.[!i] with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'n' -> Buffer.add_char b '\n'
        | 't' -> Buffer.add_char b '\t'
        | 'r' -> Buffer.add_char b '\r'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'u' ->
          if !i + 4 >= n then fail "bad \\u escape";
          let code =
            try int_of_string ("0x" ^ String.sub s (!i + 1) 4)
            with _ -> fail "bad \\u escape"
          in
          if code > 0xff then fail "non-latin \\u escape unsupported";
          Buffer.add_char b (Char.chr code);
          i := !i + 4
        | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
        incr i;
        go ()
      | c ->
        Buffer.add_char b c;
        incr i;
        go ()
    in
    go ();
    Buffer.contents b
  in
  let rec value () =
    skip_ws ();
    if !i >= n then fail "unexpected end of input";
    match s.[!i] with
    | '{' ->
      incr i;
      skip_ws ();
      if !i < n && s.[!i] = '}' then begin
        incr i;
        Jobj []
      end
      else begin
        let rec members acc =
          let k = (skip_ws (); pstring ()) in
          expect ':';
          let v = value () in
          skip_ws ();
          if !i < n && s.[!i] = ',' then begin
            incr i;
            members ((k, v) :: acc)
          end
          else begin
            expect '}';
            List.rev ((k, v) :: acc)
          end
        in
        Jobj (members [])
      end
    | '[' ->
      incr i;
      skip_ws ();
      if !i < n && s.[!i] = ']' then begin
        incr i;
        Jarr []
      end
      else begin
        let rec elems acc =
          let v = value () in
          skip_ws ();
          if !i < n && s.[!i] = ',' then begin
            incr i;
            elems (v :: acc)
          end
          else begin
            expect ']';
            List.rev (v :: acc)
          end
        in
        Jarr (elems [])
      end
    | '"' -> Jstr (pstring ())
    | 't' -> lit "true" (Jbool true)
    | 'f' -> lit "false" (Jbool false)
    | 'n' -> lit "null" Jnull
    | '-' | '0' .. '9' ->
      let start = !i in
      if s.[!i] = '-' then incr i;
      while
        !i < n && (match s.[!i] with '0' .. '9' -> true | _ -> false)
      do
        incr i
      done;
      if !i < n && (s.[!i] = '.' || s.[!i] = 'e' || s.[!i] = 'E') then
        fail "non-integer number";
      Jint (int_of_string (String.sub s start (!i - start)))
    | c -> fail (Printf.sprintf "unexpected '%c'" c)
  in
  match
    let v = value () in
    skip_ws ();
    if !i <> n then fail "trailing input";
    v
  with
  | v -> Ok v
  | exception Bad m -> Error m

let rec json_of_ty ty =
  let code = ("code", Jint (kind_code ty)) in
  match ty with
  | Bool -> Jobj [ ("kind", Jstr "bool"); code; ("width", Jint 1) ]
  | U8 -> Jobj [ ("kind", Jstr "u8"); code; ("width", Jint 1) ]
  | U32 -> Jobj [ ("kind", Jstr "u32"); code; ("width", Jint 4) ]
  | I64 -> Jobj [ ("kind", Jstr "i64"); code; ("width", Jint 8) ]
  | Bytes -> Jobj [ ("kind", Jstr "bytes"); code ]
  | Option t -> Jobj [ ("kind", Jstr "option"); code; ("some", json_of_ty t) ]
  | List t -> Jobj [ ("kind", Jstr "list"); code; ("elem", json_of_ty t) ]
  | Record fs ->
    Jobj
      [
        ("kind", Jstr "record");
        code;
        ( "fields",
          Jarr
            (List.map
               (fun f ->
                 Jobj [ ("name", Jstr f.f_name); ("type", json_of_ty f.f_ty) ])
               fs) );
      ]
  | Enum arms ->
    Jobj
      [
        ("kind", Jstr "enum");
        code;
        ("tags", Jarr (List.map (fun a -> Jint a.a_tag) arms));
        ( "arms",
          Jarr
            (List.map
               (fun a ->
                 Jobj
                   [
                     ("tag", Jint a.a_tag);
                     ("name", Jstr a.a_name);
                     ("body", json_of_ty a.a_body);
                   ])
               arms) );
      ]

let doc_sans_hash t =
  Jobj
    [
      ("schema_version", Jint t.s_version);
      ("roots", Jobj (List.map (fun (name, ty) -> (name, json_of_ty ty)) t.s_roots));
    ]

let hash t =
  let h = H.create () in
  H.add_string h (compact (doc_sans_hash t));
  H.digest h

let hash_hex t =
  let h = H.create () in
  H.add_string h (compact (doc_sans_hash t));
  H.to_hex h

let to_json t =
  pretty
    (Jobj
       [
         ("schema_version", Jint t.s_version);
         ("hash", Jstr (hash_hex t));
         ("roots", Jobj (List.map (fun (name, ty) -> (name, json_of_ty ty)) t.s_roots));
       ])

let jfield name = function
  | Jobj kvs -> (
    match List.assoc_opt name kvs with
    | Some v -> v
    | None -> raise (Bad (Printf.sprintf "missing field %S" name)))
  | _ -> raise (Bad (Printf.sprintf "expected an object around %S" name))

let jint = function Jint n -> n | _ -> raise (Bad "expected an integer")
let jstring = function Jstr s -> s | _ -> raise (Bad "expected a string")
let jlist = function Jarr xs -> xs | _ -> raise (Bad "expected an array")

let rec ty_of_json j =
  let kind = jstring (jfield "kind" j) in
  let t =
    match kind with
    | "bool" -> Bool
    | "u8" -> U8
    | "u32" -> U32
    | "i64" -> I64
    | "bytes" -> Bytes
    | "option" -> Option (ty_of_json (jfield "some" j))
    | "list" -> List (ty_of_json (jfield "elem" j))
    | "record" ->
      Record
        (List.map
           (fun f ->
             {
               f_name = jstring (jfield "name" f);
               f_ty = ty_of_json (jfield "type" f);
             })
           (jlist (jfield "fields" j)))
    | "enum" ->
      Enum
        (List.map
           (fun a ->
             {
               a_tag = jint (jfield "tag" a);
               a_name = jstring (jfield "name" a);
               a_body = ty_of_json (jfield "body" a);
             })
           (jlist (jfield "arms" j)))
    | k -> raise (Bad (Printf.sprintf "unknown kind %S" k))
  in
  (match jfield "code" j with
  | code when jint code <> kind_code t ->
    raise
      (Bad
         (Printf.sprintf "kind %S carries code %d, expected %d" kind (jint code)
            (kind_code t)))
  | _ -> ());
  (match (scalar_width t, j) with
  | Some w, Jobj kvs when List.mem_assoc "width" kvs ->
    if jint (jfield "width" j) <> w then
      raise (Bad (Printf.sprintf "kind %S carries a wrong width" kind))
  | _ -> ());
  t

let of_json s =
  match parse_json s with
  | Error e -> Error e
  | Ok j -> (
    match
      let version = jint (jfield "schema_version" j) in
      let roots =
        match jfield "roots" j with
        | Jobj kvs -> List.map (fun (name, tj) -> (name, ty_of_json tj)) kvs
        | _ -> raise (Bad "roots must be an object")
      in
      let t = { s_version = version; s_roots = roots } in
      (match validate t with Ok () -> () | Error m -> raise (Bad m));
      (match j with
      | Jobj kvs when List.mem_assoc "hash" kvs ->
        let declared = jstring (jfield "hash" j) in
        let actual = hash_hex t in
        if declared <> actual then
          raise
            (Bad
               (Printf.sprintf
                  "embedded hash %s does not match the layout's canonical hash %s"
                  declared actual))
      | _ -> ());
      t
    with
    | t -> Ok t
    | exception Bad m -> Error m)

(* ------------------------------------------------------------------ *)
(* Generic values and the schema-driven codec                          *)
(* ------------------------------------------------------------------ *)

type value =
  | Vbool of bool
  | Vu8 of int
  | Vu32 of int
  | Vi64 of int64
  | Vbytes of string
  | Voption of value option
  | Vlist of value list
  | Vrecord of (string * value) list
  | Venum of int * string * value

let rec pp_value ppf = function
  | Vbool x -> Format.fprintf ppf "%b" x
  | Vu8 n -> Format.fprintf ppf "%d" n
  | Vu32 n -> Format.fprintf ppf "%d" n
  | Vi64 n -> Format.fprintf ppf "%Ld" n
  | Vbytes s ->
    Format.pp_print_string ppf "0x";
    String.iter (fun c -> Format.fprintf ppf "%02x" (Char.code c)) s
  | Voption None -> Format.pp_print_string ppf "none"
  | Voption (Some v) -> Format.fprintf ppf "some %a" pp_value v
  | Vlist xs ->
    Format.fprintf ppf "[%a]"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
         pp_value)
      xs
  | Vrecord fs ->
    Format.fprintf ppf "{%a}"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
         (fun ppf (n, v) -> Format.fprintf ppf "%s=%a" n pp_value v))
      fs
  | Venum (_, name, Vrecord []) -> Format.pp_print_string ppf name
  | Venum (_, name, body) -> Format.fprintf ppf "%s(%a)" name pp_value body

let encode ty v =
  let b = Buffer.create 256 in
  let mismatch ty v =
    invalid_arg
      (Format.asprintf "Sb_schema.encode: value %a does not inhabit %a" pp_value
         v pp_ty ty)
  in
  let rec go depth ty v =
    if depth > max_depth then invalid_arg "Sb_schema.encode: nesting too deep";
    match (ty, v) with
    | Bool, Vbool x -> Buffer.add_uint8 b (if x then 1 else 0)
    | U8, Vu8 n ->
      if n < 0 || n > 0xff then mismatch ty v;
      Buffer.add_uint8 b n
    | U32, Vu32 n ->
      if n < 0 || n > 0x7fffffff then mismatch ty v;
      Buffer.add_int32_be b (Int32.of_int n)
    | I64, Vi64 n -> Buffer.add_int64_be b n
    | Bytes, Vbytes s ->
      Buffer.add_int32_be b (Int32.of_int (String.length s));
      Buffer.add_string b s
    | Option _, Voption None -> Buffer.add_uint8 b 0
    | Option t, Voption (Some x) ->
      Buffer.add_uint8 b 1;
      go (depth + 1) t x
    | List t, Vlist xs ->
      Buffer.add_int32_be b (Int32.of_int (List.length xs));
      List.iter (go (depth + 1) t) xs
    | Record fs, Vrecord vs ->
      if List.length fs <> List.length vs then mismatch ty v;
      List.iter2
        (fun f (n, x) ->
          if f.f_name <> n then mismatch ty v;
          go (depth + 1) f.f_ty x)
        fs vs
    | Enum arms, Venum (tag, _, body) -> (
      match List.find_opt (fun a -> a.a_tag = tag) arms with
      | None -> mismatch ty v
      | Some a ->
        Buffer.add_uint8 b tag;
        go (depth + 1) a.a_body body)
    | _ -> mismatch ty v
  in
  go 0 ty v;
  Buffer.to_bytes b

let decode ty buf =
  let stop = Bytes.length buf in
  let pos = ref 0 in
  let fail fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt in
  let need n = if !pos + n > stop then fail "truncated value" in
  let u8 () =
    need 1;
    let v = Bytes.get_uint8 buf !pos in
    incr pos;
    v
  in
  let u32 () =
    need 4;
    let v = Int32.to_int (Bytes.get_int32_be buf !pos) in
    pos := !pos + 4;
    if v < 0 then fail "negative length";
    v
  in
  let rec go depth ty =
    if depth > max_depth then fail "nesting deeper than %d" max_depth;
    match ty with
    | Bool -> (
      match u8 () with
      | 0 -> Vbool false
      | 1 -> Vbool true
      | n -> fail "bad bool byte %d" n)
    | U8 -> Vu8 (u8 ())
    | U32 -> Vu32 (u32 ())
    | I64 ->
      need 8;
      let v = Bytes.get_int64_be buf !pos in
      pos := !pos + 8;
      Vi64 v
    | Bytes ->
      let n = u32 () in
      need n;
      let s = Bytes.sub_string buf !pos n in
      pos := !pos + n;
      Vbytes s
    | Option t -> (
      match u8 () with
      | 0 -> Voption None
      | 1 -> Voption (Some (go (depth + 1) t))
      | n -> fail "bad presence byte %d" n)
    | List t ->
      let n = u32 () in
      if n > stop - !pos then fail "list longer than frame";
      Vlist (List.init n (fun _ -> go (depth + 1) t))
    | Record fs ->
      Vrecord (List.map (fun f -> (f.f_name, go (depth + 1) f.f_ty)) fs)
    | Enum arms -> (
      let tag = u8 () in
      match List.find_opt (fun a -> a.a_tag = tag) arms with
      | Some a -> Venum (tag, a.a_name, go (depth + 1) a.a_body)
      | None ->
        fail "unknown tag %d (valid: %s)" tag
          (String.concat ","
             (List.map (fun a -> string_of_int a.a_tag) arms)))
  in
  match
    let v = go 0 ty in
    if !pos <> stop then fail "trailing bytes";
    v
  with
  | v -> Ok v
  | exception Bad m -> Error m

(* ------------------------------------------------------------------ *)
(* Deterministic witness corpus                                        *)
(* ------------------------------------------------------------------ *)

let rec take n = function
  | [] -> []
  | x :: tl -> if n <= 0 then [] else x :: take (n - 1) tl

let samples ty =
  let ctr = ref 0 in
  let fresh () =
    incr ctr;
    !ctr
  in
  (* Every scalar leaf draws a distinct site-dependent value with high
     bits set, so that two transposed fields of the same type decode to
     visibly different values.  I64 stays under bit 62 so the witnesses
     survive codecs that carry the value in an OCaml 63-bit int. *)
  let rec base depth ty =
    match ty with
    | Bool -> Vbool true
    | U8 -> Vu8 (0x90 + (fresh () * 7 mod 0x60))
    | U32 -> Vu32 (0x00a0_0000 lor (fresh () * 0x0101 land 0xffff))
    | I64 -> Vi64 Int64.(add 0x1142_0000_0000_0000L (of_int (fresh () * 0x01010101)))
    | Bytes ->
      let c = fresh () in
      Vbytes
        (String.init 3 (fun k -> Char.chr (0x80 + ((c * 11) + (k * 17)) mod 0x7f)))
    | Option t -> Voption (Some (base (depth + 1) t))
    | List t -> Vlist [ base (depth + 1) t; base (depth + 1) t ]
    | Record fs -> Vrecord (List.map (fun f -> (f.f_name, base (depth + 1) f.f_ty)) fs)
    | Enum [] -> invalid_arg "Sb_schema.samples: empty enum"
    | Enum (a :: _) -> Venum (a.a_tag, a.a_name, base (depth + 1) a.a_body)
  in
  let rec vars depth ty =
    if depth > max_depth then [ base depth ty ]
    else
      match ty with
      | Bool -> [ Vbool true; Vbool false ]
      (* The small second sample doubles as a plausible count/length so
         that shifted parses can realign over variable-width fields. *)
      | U8 -> [ base depth ty; Vu8 2 ]
      | U32 -> [ base depth ty; Vu32 3 ]
      | I64 -> [ base depth ty; Vi64 5L ]
      | Bytes -> [ base depth ty; Vbytes "" ]
      | Option t ->
        List.map (fun v -> Voption (Some v)) (take 2 (vars (depth + 1) t))
        @ [ Voption None ]
      | List t -> (
        let vs = vars (depth + 1) t in
        [ Vlist (take 2 vs); Vlist [] ]
        @ match vs with v :: _ -> [ Vlist [ v ] ] | [] -> [])
      | Record fs ->
        let b = List.map (fun f -> (f.f_name, base (depth + 1) f.f_ty)) fs in
        let head = Vrecord b in
        let alts =
          List.concat_map
            (fun f ->
              match vars (depth + 1) f.f_ty with
              | [] | [ _ ] -> []
              | _ :: rest ->
                List.map
                  (fun v ->
                    Vrecord
                      (List.map
                         (fun (n, bv) -> if n = f.f_name then (n, v) else (n, bv))
                         b))
                  (take 4 rest))
            fs
        in
        take 128 (head :: alts)
      | Enum arms ->
        take 160
          (List.concat_map
             (fun a ->
               List.map
                 (fun v -> Venum (a.a_tag, a.a_name, v))
                 (take 32 (vars (depth + 1) a.a_body)))
             arms)
  in
  vars 0 ty
