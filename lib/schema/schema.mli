(** First-class descriptions of the service's wire layouts.

    A {!ty} is an SBOR-style value-kind descriptor: every node carries a
    kind tag and (for scalars) a fixed byte width; records list their
    fields in wire order; enums list the closed tag vocabulary with one
    body per tag; [Option] is a presence byte.  [Sb_service.Wire]
    produces its own schema programmatically ([Wire.schema_v]), so the
    description cannot drift from the codec — the test suite decodes
    codec output with the schema-driven interpreter below and re-encodes
    it byte-for-byte, and the golden [schemas/v<N>.json] files are
    diffed against the programmatic schema on every [dune runtest].

    The generic interpreter ({!decode}/{!encode} over {!value}) is the
    foundation of the {!Compat} certifier: it lets us run one schema's
    bytes through another schema's reader and compare the decodings. *)

type ty =
  | Bool  (** kind 0x01, width 1; strict 0/1 *)
  | U8  (** kind 0x07, width 1 *)
  | U32  (** kind 0x09, width 4, big-endian, sign bit rejected *)
  | I64  (** kind 0x05, width 8, big-endian two's complement *)
  | Bytes  (** kind 0x0c: u32 count + raw bytes *)
  | Option of ty  (** kind 0x23: u8 presence (0|1) + body if present *)
  | List of ty  (** kind 0x20: u32 count + elements *)
  | Record of field list  (** kind 0x21: fields in wire order *)
  | Enum of arm list  (** kind 0x22: u8 tag + matching body *)

and field = { f_name : string; f_ty : ty }
and arm = { a_tag : int; a_name : string; a_body : ty }

type t = {
  s_version : int;  (** The wire version this schema describes. *)
  s_roots : (string * ty) list;  (** Independently-framed layouts, by name. *)
}

val max_depth : int
(** Nesting bound (64) enforced by {!validate}, {!decode} and
    {!encode} — adversarial frames cannot recurse deeper. *)

val kind_code : ty -> int
(** The SBOR-style value-kind byte for a node. *)

val scalar_width : ty -> int option
(** Fixed encoded width of a scalar kind ([Bool]/[U8]/[U32]/[I64]). *)

val byte_width : ty -> int option
(** Total encoded width when every value of [ty] occupies the same
    number of bytes (scalars, and records/enums of such); [None] as soon
    as a [Bytes]/[List]/[Option] (or width-divergent enum) appears.
    This is the width lattice the compatibility certifier reasons
    over. *)

val validate : t -> (unit, string) result
(** Structural sanity: depth bound, distinct field names per record,
    distinct tags per enum, u8 tag range, non-empty enums. *)

val equal_ty : ty -> ty -> bool
val equal : t -> t -> bool

val pp_ty : Format.formatter -> ty -> unit
(** Compact one-line rendering, e.g. [record{num: i64; client: i64}]. *)

val str_ty : ty -> string
(** {!pp_ty} to a string. *)

val diff : t -> t -> string list
(** Field-level differences, one line per divergence, each prefixed with
    the path (e.g. [msg.Welcome.incarnation: i64 vs u32]).  Empty iff
    {!equal}. *)

(** {1 Serialization} *)

val to_json : t -> string
(** Pretty-printed golden-file form, deterministic.  Includes the
    canonical hash as an informational field. *)

val of_json : string -> (t, string) result
(** Parses {!to_json} output (a small strict JSON subset).  Verifies the
    embedded hash when present. *)

val hash : t -> string
(** 16-byte binary digest over the canonical rendering — what the
    connect-time handshake exchanges. *)

val hash_hex : t -> string
(** 32-char hex of {!hash}, for reports and diagnostics. *)

(** {1 Generic values} *)

type value =
  | Vbool of bool
  | Vu8 of int
  | Vu32 of int
  | Vi64 of int64
  | Vbytes of string
  | Voption of value option
  | Vlist of value list
  | Vrecord of (string * value) list
  | Venum of int * string * value  (** tag, arm name, body *)

val pp_value : Format.formatter -> value -> unit

val encode : ty -> value -> bytes
(** Schema-driven encoding, byte-compatible with [Sb_service.Wire]'s
    hand-written writers.  Raises [Invalid_argument] if the value does
    not inhabit the type (a caller bug, not wire data). *)

val decode : ty -> bytes -> (value, string) result
(** Schema-driven decoding with exact consumption: trailing bytes,
    unknown tags, out-of-range scalars, over-long counts and over-deep
    nesting all return [Error].  Never raises on any input. *)

val samples : ty -> value list
(** Deterministic witness corpus: covers every enum arm (the tag
    lattice), list lengths 0/1/2, both option states and both booleans,
    and gives every scalar leaf a distinct, high-bit-bearing value so
    that transposed fields decode visibly differently.  Bounded size per
    node; the head sample is the all-base value. *)
