(** Static decode-compatibility certifier over two wire schemas.

    For each direction (old-writer → new-reader and new-writer →
    old-reader) and each message of the writer's vocabulary, the
    certifier classifies the (writer, reader) pair — and, for record
    bodies, every positional field pair — into the lattice

    - [Identical]: byte-identical layout, same meaning;
    - [Widened]: every writer payload decodes and every shared-name
      field keeps its value (e.g. appended arms, renamed fields);
    - [Reject_cleanly]: some or all writer payloads fail the reader's
      strict decoder (unknown tag, truncation, trailing bytes) — safe,
      because a clean reject surfaces as a typed handshake/decode error
      and triggers renegotiation, never a wrong value;
    - [Misinterpret]: a writer payload decodes successfully under the
      reader but means something else — the storage-side analogue of
      the wrong-but-well-formed failure mode, and the only verdict that
      makes two versions incompatible.

    Verdicts are decided by exhaustive analysis over the tag/width
    lattice: the deterministic {!Schema.samples} corpus covers every
    enum arm, both option states and degenerate/short list lengths, and
    every experiment is a concrete encode-under-writer /
    decode-under-reader run, so a [Misinterpret] always carries a
    replayable counterexample payload with both decodings — the same
    discipline as the RMW-algebra certifier's refutations.

    Two schemas carrying the {e same} version number must be identical
    (that is the golden-file drift gate); an edit without a version bump
    is incompatible regardless of the lattice. *)

type verdict = Identical | Widened | Reject_cleanly | Misinterpret

val verdict_name : verdict -> string

type witness = {
  w_payload : string;  (** Hex of the synthesized message payload. *)
  w_writer : string;  (** The writer's own decoding, pretty-printed. *)
  w_reader : string;  (** The reader's divergent decoding. *)
  w_diverges : string;  (** First diverging field path. *)
}

type cell = {
  c_direction : string;  (** ["old->new"] or ["new->old"]. *)
  c_path : string;  (** e.g. [msg.Welcome] or [msg.Welcome.server]. *)
  c_writer_ty : string;
  c_reader_ty : string;
  c_verdict : verdict;
  c_detail : string;
  c_witness : witness option;  (** Present on every [Misinterpret]. *)
}

type result = {
  r_old_version : int;
  r_new_version : int;
  r_old_hash : string;  (** Hex. *)
  r_new_hash : string;
  r_cells : cell list;
  r_reasons : string list;
      (** Non-lattice incompatibility reasons (same-version drift). *)
  r_compatible : bool;
}

val check : old_:Schema.t -> new_:Schema.t -> result

val render : result -> string
(** Human-readable report: one line per cell, counterexamples inset. *)

val result_json : result -> string
(** The [SCHEMA_report.json] form of one comparison. *)

val seeded_edits : Schema.t -> (string * string * Schema.t) list
(** [(name, description, edited)] negative controls derived from a live
    schema: a transposed field pair ([reordered-welcome-fields]) and a
    narrowed scalar ([narrowed-request-ticket]).  {!check} against the
    original must refute both — the reorder with a [Misinterpret]
    counterexample — or the certifier has lost its teeth.  Raises
    [Invalid_argument] if the schema no longer has the expected shape
    (update the seeds alongside the layout). *)
