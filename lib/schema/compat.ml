module S = Schema
module J = Sb_util.Jsonx

type verdict = Identical | Widened | Reject_cleanly | Misinterpret

let verdict_name = function
  | Identical -> "identical"
  | Widened -> "widened"
  | Reject_cleanly -> "reject-cleanly"
  | Misinterpret -> "MISINTERPRET"

type witness = {
  w_payload : string;
  w_writer : string;
  w_reader : string;
  w_diverges : string;
}

type cell = {
  c_direction : string;
  c_path : string;
  c_writer_ty : string;
  c_reader_ty : string;
  c_verdict : verdict;
  c_detail : string;
  c_witness : witness option;
}

type result = {
  r_old_version : int;
  r_new_version : int;
  r_old_hash : string;
  r_new_hash : string;
  r_cells : cell list;
  r_reasons : string list;
  r_compatible : bool;
}

let hex_of_bytes b =
  String.concat ""
    (List.init (Bytes.length b) (fun i ->
         Printf.sprintf "%02x" (Bytes.get_uint8 b i)))

let show_value v = Format.asprintf "%a" S.pp_value v

(* ------------------------------------------------------------------ *)
(* Semantic comparison of a writer's value with the reader's decoding  *)
(* ------------------------------------------------------------------ *)

(* Scalars compare numerically across kinds: a value that survives a
   width change unchanged (e.g. i64 5 read as u32 5) is widening, not
   misinterpretation.  Records pair by field name — a transposed pair
   shows up as two shared names with exchanged values; a pure rename is
   ignored here (widening) and only noted in the cell detail.  An enum
   tag that maps to a different arm name means the same byte means a
   different operation: always a divergence. *)
let rec sem_diff path (w : S.value) (r : S.value) =
  let diverge path = Some (path, show_value w, show_value r) in
  let num = function
    | S.Vbool false -> Some 0L
    | S.Vbool true -> Some 1L
    | S.Vu8 n | S.Vu32 n -> Some (Int64.of_int n)
    | S.Vi64 n -> Some n
    | _ -> None
  in
  match (num w, num r) with
  | Some a, Some b -> if Int64.equal a b then None else diverge path
  | _ -> (
    match (w, r) with
    | S.Vbytes a, S.Vbytes b -> if String.equal a b then None else diverge path
    | S.Voption None, S.Voption None -> None
    | S.Voption (Some a), S.Voption (Some b) -> sem_diff (path ^ "?") a b
    | S.Voption _, S.Voption _ -> diverge path
    | S.Vlist a, S.Vlist b ->
      if List.length a <> List.length b then diverge (path ^ ".length")
      else
        List.fold_left2
          (fun acc x y ->
            match acc with
            | Some _ -> acc
            | None -> sem_diff (path ^ "[]") x y)
          None a b
    | S.Vrecord a, S.Vrecord b ->
      List.fold_left
        (fun acc (n, x) ->
          match acc with
          | Some _ -> acc
          | None -> (
            match List.assoc_opt n b with
            | Some y -> sem_diff (path ^ "." ^ n) x y
            | None -> None))
        None a
    | S.Venum (t1, n1, b1), S.Venum (t2, n2, b2) ->
      if t1 <> t2 then diverge (path ^ ".tag")
      else if n1 <> n2 then Some (path, n1, n2)
      else sem_diff (path ^ "." ^ n1) b1 b2
    | _ -> diverge path)

(* ------------------------------------------------------------------ *)
(* Experiments: encode under the writer, decode under the reader       *)
(* ------------------------------------------------------------------ *)

type outcome = {
  o_total : int;
  o_match : int;
  o_reject : int;
  o_witness : witness option;  (** First misinterpreting payload. *)
}

(* [wrap_payload]/[wrap_writer]/[wrap_reader] lift the reported
   counterexample from body form to frame-level form (the enum tag byte
   and the arm names around the body). *)
let experiments ?(wrap_payload = fun (b : bytes) -> b)
    ?(wrap_writer = fun (v : S.value) -> v)
    ?(wrap_reader = fun (v : S.value) -> v) wty rty =
  List.fold_left
    (fun o v ->
      let body = S.encode wty v in
      match S.decode rty body with
      | Error _ -> { o with o_total = o.o_total + 1; o_reject = o.o_reject + 1 }
      | Ok rv -> (
        match sem_diff "" v rv with
        | None -> { o with o_total = o.o_total + 1; o_match = o.o_match + 1 }
        | Some (dpath, _, _) ->
          let w =
            match o.o_witness with
            | Some _ as w -> w
            | None ->
              Some
                {
                  w_payload = hex_of_bytes (wrap_payload body);
                  w_writer = show_value (wrap_writer v);
                  w_reader = show_value (wrap_reader rv);
                  w_diverges = (if dpath = "" then "." else dpath);
                }
          in
          { o with o_total = o.o_total + 1; o_witness = w }))
    { o_total = 0; o_match = 0; o_reject = 0; o_witness = None }
    (S.samples wty)

let verdict_of_outcome ~equal o =
  match o.o_witness with
  | Some _ -> Misinterpret
  | None ->
    if o.o_reject = 0 then if equal then Identical else Widened
    else Reject_cleanly

let outcome_detail o =
  if o.o_witness <> None then
    Printf.sprintf "%d of %d synthesized payloads decode to a different meaning"
      (o.o_total - o.o_match - o.o_reject)
      o.o_total
  else if o.o_reject = 0 then
    Printf.sprintf "all %d synthesized payloads decode identically" o.o_total
  else if o.o_match = 0 then
    Printf.sprintf "all %d synthesized payloads reject cleanly" o.o_total
  else
    Printf.sprintf
      "%d of %d synthesized payloads reject cleanly, the rest decode identically"
      o.o_reject o.o_total

(* ------------------------------------------------------------------ *)
(* Cell construction                                                   *)
(* ------------------------------------------------------------------ *)

let cell ~direction ~path ~wty ~rty verdict detail witness =
  {
    c_direction = direction;
    c_path = path;
    c_writer_ty = S.str_ty wty;
    c_reader_ty = S.str_ty rty;
    c_verdict = verdict;
    c_detail = detail;
    c_witness = witness;
  }

(* Isolated field-pair classification.  A field decodes at its own
   offset only when the preceding fields consumed identically — the
   arm-level whole-message experiment is the authority on alignment;
   this gives the per-field row of the table. *)
let field_cell ~direction ~path (wf : S.field) (rf : S.field) =
  let o = experiments wf.S.f_ty rf.S.f_ty in
  let equal = S.equal_ty wf.S.f_ty rf.S.f_ty in
  let name_note =
    if wf.S.f_name <> rf.S.f_name then
      Printf.sprintf " (writer names it %S, reader %S)" wf.S.f_name rf.S.f_name
    else ""
  in
  let verdict = verdict_of_outcome ~equal o in
  (* Same bytes under a different field name at the same position is a
     transposition/rename: if the layouts agree the decode succeeds, so
     the arm-level experiment decides whether values land in the wrong
     field.  Surface the name change here as a misinterpret signal when
     the types line up (the bytes will be accepted as the other field). *)
  let verdict =
    if wf.S.f_name <> rf.S.f_name && verdict <> Reject_cleanly then Misinterpret
    else verdict
  in
  let detail =
    (match (S.byte_width wf.S.f_ty, S.byte_width rf.S.f_ty) with
    | Some a, Some b when a <> b ->
      Printf.sprintf "fixed width %d vs %d; " a b
    | _ -> "")
    ^ outcome_detail o ^ name_note
  in
  cell ~direction ~path ~wty:wf.S.f_ty ~rty:rf.S.f_ty verdict detail o.o_witness

let arm_cells ~direction ~path (wa : S.arm) (ra : S.arm) =
  let wrap_payload body =
    let payload = Bytes.create (Bytes.length body + 1) in
    Bytes.set_uint8 payload 0 wa.S.a_tag;
    Bytes.blit body 0 payload 1 (Bytes.length body);
    payload
  in
  let o =
    experiments ~wrap_payload
      ~wrap_writer:(fun v -> S.Venum (wa.S.a_tag, wa.S.a_name, v))
      ~wrap_reader:(fun v -> S.Venum (ra.S.a_tag, ra.S.a_name, v))
      wa.S.a_body ra.S.a_body
  in
  let equal = S.equal_ty wa.S.a_body ra.S.a_body in
  let name_mismatch = wa.S.a_name <> ra.S.a_name in
  let verdict =
    if name_mismatch then Misinterpret else verdict_of_outcome ~equal o
  in
  let witness =
    match (o.o_witness, name_mismatch) with
    | (Some _ as w), _ -> w
    | None, true ->
      (* Same tag, different meaning: any payload that decodes is a
         counterexample; synthesize from the head sample. *)
      let v = List.hd (S.samples wa.S.a_body) in
      let body = S.encode wa.S.a_body v in
      Some
        {
          w_payload = hex_of_bytes (wrap_payload body);
          w_writer = show_value (S.Venum (wa.S.a_tag, wa.S.a_name, v));
          w_reader =
            (match S.decode ra.S.a_body body with
            | Ok rv -> show_value (S.Venum (ra.S.a_tag, ra.S.a_name, rv))
            | Error e -> Printf.sprintf "%s(<reject: %s>)" ra.S.a_name e);
          w_diverges = "(arm name)";
        }
    | None, false -> None
  in
  let detail =
    if name_mismatch then
      Printf.sprintf "tag %d is %S to the writer but %S to the reader"
        wa.S.a_tag wa.S.a_name ra.S.a_name
    else outcome_detail o
  in
  let top =
    cell ~direction ~path ~wty:wa.S.a_body ~rty:ra.S.a_body verdict detail
      witness
  in
  let fields =
    match (wa.S.a_body, ra.S.a_body) with
    | S.Record wfs, S.Record rfs ->
      let rec pair i wfs rfs acc =
        match (wfs, rfs) with
        | [], [] -> List.rev acc
        | wf :: wfs', [] ->
          let c =
            cell ~direction
              ~path:(path ^ "." ^ wf.S.f_name)
              ~wty:wf.S.f_ty ~rty:(S.Record []) Reject_cleanly
              "writer-only field: surplus bytes fail the reader's \
               exact-consumption check"
              None
          in
          pair (i + 1) wfs' [] (c :: acc)
        | [], rf :: rfs' ->
          let c =
            cell ~direction
              ~path:(path ^ "." ^ rf.S.f_name)
              ~wty:(S.Record []) ~rty:rf.S.f_ty Reject_cleanly
              "reader-only field: the reader runs out of bytes (truncated)"
              None
          in
          pair (i + 1) [] rfs' (c :: acc)
        | wf :: wfs', rf :: rfs' ->
          let c =
            field_cell ~direction ~path:(path ^ "." ^ wf.S.f_name) wf rf
          in
          pair (i + 1) wfs' rfs' (c :: acc)
      in
      pair 0 wfs rfs []
    | _ -> []
  in
  top :: fields

let direction_cells ~direction (writer : S.t) (reader : S.t) =
  List.concat_map
    (fun (root, wty) ->
      match List.assoc_opt root reader.S.s_roots with
      | None ->
        [
          cell ~direction ~path:root ~wty ~rty:(S.Record []) Reject_cleanly
            "root absent from the reader's schema" None;
        ]
      | Some rty -> (
        match (wty, rty) with
        | S.Enum warms, S.Enum rarms ->
          List.concat_map
            (fun (wa : S.arm) ->
              let path = root ^ "." ^ wa.S.a_name in
              match
                List.find_opt (fun (a : S.arm) -> a.S.a_tag = wa.S.a_tag) rarms
              with
              | None ->
                [
                  cell ~direction ~path ~wty:wa.S.a_body ~rty Reject_cleanly
                    (Printf.sprintf
                       "tag %d outside the reader's vocabulary {%s}: rejected \
                        as an unknown tag"
                       wa.S.a_tag
                       (String.concat ","
                          (List.map
                             (fun (a : S.arm) -> string_of_int a.S.a_tag)
                             rarms)))
                    None;
                ]
              | Some ra -> arm_cells ~direction ~path wa ra)
            warms
        | _ ->
          let o = experiments wty rty in
          [
            cell ~direction ~path:root ~wty ~rty
              (verdict_of_outcome ~equal:(S.equal_ty wty rty) o)
              (outcome_detail o) o.o_witness;
          ]))
    writer.S.s_roots

let check ~old_ ~new_ =
  let cells =
    direction_cells ~direction:"old->new" old_ new_
    @ direction_cells ~direction:"new->old" new_ old_
  in
  let reasons =
    if old_.S.s_version = new_.S.s_version && not (S.equal old_ new_) then
      Printf.sprintf
        "both schemas claim version %d but the layouts differ — bump the \
         version (and note it in CHANGES.md)"
        old_.S.s_version
      :: List.map (fun d -> "drift: " ^ d) (S.diff old_ new_)
    else []
  in
  let misinterprets =
    List.exists (fun c -> c.c_verdict = Misinterpret) cells
  in
  {
    r_old_version = old_.S.s_version;
    r_new_version = new_.S.s_version;
    r_old_hash = S.hash_hex old_;
    r_new_hash = S.hash_hex new_;
    r_cells = cells;
    r_reasons = reasons;
    r_compatible = (not misinterprets) && reasons = [];
  }

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let render r =
  let b = Buffer.create 4096 in
  Printf.bprintf b "schema v%d (%s) vs v%d (%s): %s\n" r.r_old_version
    (String.sub r.r_old_hash 0 12)
    r.r_new_version
    (String.sub r.r_new_hash 0 12)
    (if r.r_compatible then "COMPATIBLE" else "INCOMPATIBLE");
  List.iter (fun reason -> Printf.bprintf b "  ! %s\n" reason) r.r_reasons;
  List.iter
    (fun c ->
      Printf.bprintf b "  [%s] %-40s %-14s %s\n" c.c_direction c.c_path
        (verdict_name c.c_verdict)
        c.c_detail;
      match c.c_witness with
      | None -> ()
      | Some w ->
        Printf.bprintf b "      counterexample payload: %s\n" w.w_payload;
        Printf.bprintf b "      writer reads: %s\n" w.w_writer;
        Printf.bprintf b "      reader reads: %s\n" w.w_reader;
        Printf.bprintf b "      diverges at:  %s\n" w.w_diverges)
    r.r_cells;
  Buffer.contents b

let witness_json w =
  J.obj
    [
      ("payload", J.str w.w_payload);
      ("writer_value", J.str w.w_writer);
      ("reader_value", J.str w.w_reader);
      ("diverges", J.str w.w_diverges);
    ]

let cell_json c =
  J.obj
    ([
       ("direction", J.str c.c_direction);
       ("path", J.str c.c_path);
       ("writer", J.str c.c_writer_ty);
       ("reader", J.str c.c_reader_ty);
       ("verdict", J.str (verdict_name c.c_verdict));
       ("detail", J.str c.c_detail);
     ]
    @ match c.c_witness with
      | Some w -> [ ("witness", witness_json w) ]
      | None -> [])

let result_json r =
  J.obj
    [
      ("old_version", J.int r.r_old_version);
      ("new_version", J.int r.r_new_version);
      ("old_hash", J.str r.r_old_hash);
      ("new_hash", J.str r.r_new_hash);
      ("compatible", J.bool r.r_compatible);
      ("reasons", J.arr (List.map J.str r.r_reasons));
      ("cells", J.arr (List.map cell_json r.r_cells));
    ]

(* ------------------------------------------------------------------ *)
(* Seeded negative controls                                            *)
(* ------------------------------------------------------------------ *)

let edit_msg_arm schema arm_name f =
  let hit = ref false in
  let roots =
    List.map
      (fun (root, ty) ->
        if root <> "msg" then (root, ty)
        else
          match ty with
          | S.Enum arms ->
            ( root,
              S.Enum
                (List.map
                   (fun (a : S.arm) ->
                     if a.S.a_name = arm_name then begin
                       hit := true;
                       { a with S.a_body = f a.S.a_body }
                     end
                     else a)
                   arms) )
          | _ -> (root, ty))
      schema.S.s_roots
  in
  if not !hit then
    invalid_arg
      (Printf.sprintf "Compat.seeded_edits: no %S arm in the msg root" arm_name);
  { schema with S.s_roots = roots }

let seeded_edits schema =
  let reorder =
    edit_msg_arm schema "Welcome" (function
      | S.Record (f1 :: f2 :: rest) -> S.Record (f2 :: f1 :: rest)
      | _ -> invalid_arg "Compat.seeded_edits: Welcome body shape changed")
  in
  let narrow =
    edit_msg_arm schema "Request" (function
      | S.Record fs ->
        let hit = ref false in
        let fs =
          List.map
            (fun (f : S.field) ->
              if f.S.f_name = "ticket" && f.S.f_ty = S.I64 then begin
                hit := true;
                { f with S.f_ty = S.U32 }
              end
              else f)
            fs
        in
        if not !hit then
          invalid_arg "Compat.seeded_edits: Request.ticket shape changed";
        S.Record fs
      | _ -> invalid_arg "Compat.seeded_edits: Request body shape changed")
  in
  [
    ( "reordered-welcome-fields",
      "transposes Welcome.server and Welcome.incarnation without a version bump",
      reorder );
    ( "narrowed-request-ticket",
      "narrows Request.ticket from i64 to u32 without a version bump",
      narrow );
  ]
