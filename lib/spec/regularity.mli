(** Consistency checkers for MWMR register histories.

    Three conditions from the paper (Appendix A, following Lamport [12]
    and Shao et al. [14]):

    - {b weak regularity} (MWRegWeak) — for every returned read there is
      a linearization of that read together with all writes.  This is the
      condition the lower bound is proved against.
    - {b strong regularity} (MWRegWO) — weak regularity, plus all reads
      agree on the order of the writes relevant to them; equivalently,
      there is a single linearization [sigma] of the writes such that
      every read is legal with respect to [sigma].  This is what the
      paper's adaptive algorithm guarantees.
    - {b strong safety} — there is a linearization of the writes into
      which every read {e with no concurrent writes} can be inserted
      legally; reads overlapping writes may return anything.  This is
      what the Appendix-E algorithm guarantees.

    A read returning value [v] is legal with respect to a write order
    [sigma] when [v]'s write [w] satisfies: [w] does not begin after the
    read returns, and every write that completes before the read is
    invoked is ordered no later than [w] in [sigma].  Reads returning the
    initial value [v0] are legal when no write completes before them.

    The checkers are exact: they search for the required write order by
    topologically sorting the constraint graph induced by real-time
    precedence and by each read's return value, and report a
    counterexample description on failure. *)

type verdict = Ok | Violation of string

val check_weak : History.t -> verdict
(** MWRegWeak: each returned read is checked independently. *)

val check_strong : History.t -> verdict
(** MWRegWO: additionally requires one write order serving all reads. *)

val check_safe : History.t -> verdict
(** Strong safety: only reads without concurrent writes are constrained. *)

val check_atomic : History.t -> verdict
(** Linearizability of the whole history (reads and writes).  None of
    the paper's algorithms promise this — ABD without read write-back is
    regular but not atomic — but the checker is useful for documenting
    {e why} (new/old inversions show up as violations). *)

val pp_verdict : Format.formatter -> verdict -> unit
