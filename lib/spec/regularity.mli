(** Consistency checkers for MWMR register histories.

    Three conditions from the paper (Appendix A, following Lamport [12]
    and Shao et al. [14]):

    - {b weak regularity} (MWRegWeak) — for every returned read there is
      a linearization of that read together with all writes.  This is the
      condition the lower bound is proved against.
    - {b strong regularity} (MWRegWO) — weak regularity, plus all reads
      agree on the order of the writes relevant to them; equivalently,
      there is a single linearization [sigma] of the writes such that
      every read is legal with respect to [sigma].  This is what the
      paper's adaptive algorithm guarantees.
    - {b strong safety} — there is a linearization of the writes into
      which every read {e with no concurrent writes} can be inserted
      legally; reads overlapping writes may return anything.  This is
      what the Appendix-E algorithm guarantees.

    A read returning value [v] is legal with respect to a write order
    [sigma] when [v]'s write [w] satisfies: [w] does not begin after the
    read returns, and every write that completes before the read is
    invoked is ordered no later than [w] in [sigma].  Reads returning the
    initial value [v0] are legal when no write completes before them.

    The checkers are exact: they search for the required write order by
    topologically sorting the constraint graph induced by real-time
    precedence and by each read's return value, and report a structured
    {!counterexample} on failure — machine-readable so that the model
    checker in [Sb_modelcheck] can shrink failing schedules and tests can
    assert the exact failure mode, not just its message. *)

(** Why a history fails a consistency condition.  Write operations are
    named by op id; [0] is the virtual initial write of [v0]. *)
type reason =
  | Bottom_read  (** A completed read returned ⊥. *)
  | Unwritten_value  (** The returned value matches no write and is not [v0]. *)
  | Ambiguous_value
      (** The returned value was written more than once, so attribution —
          and hence checking — is impossible; use distinct values. *)
  | Stale_initial of { completed_write : int }
      (** The read returned [v0] although [completed_write] finished
          before the read was invoked. *)
  | Future_write of { write : int }
      (** The read returned the value of a write invoked only after the
          read had already returned. *)
  | Intervening_write of { returned : int; between : int }
      (** The read returned [returned], but [between] begins after
          [returned] completes and completes before the read begins — no
          linearization can order the read after [returned]. *)
  | Order_cycle of int list
      (** No single write order serves all reads: the constraint graph
          (real-time precedence + per-read ordering demands) has this
          cycle, given as a node path [u; ...; u]. *)
  | Not_linearizable
      (** The complete Wing–Gong search found no linearization — a
          definitive refutation of atomicity (atomicity only). *)
  | Search_budget of { explored : int }
      (** The Wing–Gong search hit its state budget before completing —
          {e inconclusive}, not a refutation; [explored] is the number of
          search states visited (atomicity only). *)

type counterexample = {
  cx_read : int option;
      (** The offending read's op id, when the failure is tied to one read. *)
  cx_reason : reason;
  cx_order : int list;
      (** A candidate write order (op ids, [0] first) that the checker
          tried — invocation order, which extends real-time precedence —
          empty when no single order is even a candidate. *)
  cx_edge : (int * int) option;
      (** The violated constraint edge [(u, v)]: the history requires [u]
          to precede [v] in the common write order, but it cannot. *)
}

type verdict = Ok | Violation of counterexample

val check_weak : History.t -> verdict
(** MWRegWeak: each returned read is checked independently. *)

val check_strong : History.t -> verdict
(** MWRegWO: additionally requires one write order serving all reads. *)

val check_safe : History.t -> verdict
(** Strong safety: only reads without concurrent writes are constrained. *)

val check_atomic : ?budget:int -> History.t -> verdict
(** Linearizability of the whole history (reads and writes).  None of
    the paper's algorithms promise this — ABD without read write-back is
    regular but not atomic — but the checker is useful for documenting
    {e why} (new/old inversions show up as violations).

    [budget] (default [5_000_000]) caps the number of search states the
    (worst-case exponential) Wing–Gong search may visit.  When the cap
    is hit the verdict is a violation with reason {!Search_budget} —
    "gave up", never to be conflated with the definitive
    {!Not_linearizable} that only a completed search reports. *)

val to_string : counterexample -> string
(** One-line rendering: reason, candidate order, violated edge. *)

val pp_counterexample : Format.formatter -> counterexample -> unit
val pp_verdict : Format.formatter -> verdict -> unit
