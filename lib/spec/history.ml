type write = { w_op : int; value : bytes; w_inv : int; w_ret : int option }
type read = { r_op : int; result : bytes option; r_inv : int; r_ret : int option }
type t = { writes : write list; reads : read list; initial : bytes }

let of_trace ~initial tr =
  let ops = Sb_sim.Trace.operations tr in
  let writes, reads =
    List.fold_left
      (fun (ws, rs) (op, kind, inv, ret, result) ->
        match kind with
        | Sb_sim.Trace.Write v ->
          ({ w_op = op; value = v; w_inv = inv; w_ret = ret } :: ws, rs)
        | Sb_sim.Trace.Read ->
          (ws, { r_op = op; result; r_inv = inv; r_ret = ret } :: rs))
      ([], []) ops
  in
  { writes = List.rev writes; reads = List.rev reads; initial }

let make ~initial ~writes ~reads = { writes; reads; initial }
let precedes ret inv = match ret with Some r -> r < inv | None -> false

let completed_reads t =
  List.filter (fun r -> r.r_ret <> None) t.reads
  |> List.sort (fun a b -> Int.compare a.r_inv b.r_inv)

let writer_of t v =
  match List.filter (fun w -> Bytes.equal w.value v) t.writes with
  | [ w ] -> Some w
  | _ -> None

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun w ->
      Format.fprintf ppf "w%d: write(%s) [%d, %s]@ " w.w_op
        (Sb_util.Bytesx.hex w.value) w.w_inv
        (match w.w_ret with Some r -> string_of_int r | None -> "∞"))
    t.writes;
  List.iter
    (fun r ->
      Format.fprintf ppf "r%d: read -> %s [%d, %s]@ " r.r_op
        (match r.result with Some v -> Sb_util.Bytesx.hex v | None -> "⊥")
        r.r_inv
        (match r.r_ret with Some rt -> string_of_int rt | None -> "∞"))
    t.reads;
  Format.fprintf ppf "@]"
