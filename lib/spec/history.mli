(** Operation histories extracted from run traces.

    A history is the paper's [trace(r)]: the invocations and returns of
    high-level operations, with RMW-level events stripped.  The
    consistency checkers in {!Regularity} work on this representation. *)

type write = {
  w_op : int;
  value : bytes;
  w_inv : int;
  w_ret : int option;  (** [None] if outstanding at the end of the run. *)
}

type read = {
  r_op : int;
  result : bytes option;  (** [None] if the read failed to decode. *)
  r_inv : int;
  r_ret : int option;
}

type t = { writes : write list; reads : read list; initial : bytes }

val of_trace : initial:bytes -> Sb_sim.Trace.t -> t
(** Extracts the operation history; [initial] is the register's initial
    value [v0]. *)

val make : initial:bytes -> writes:write list -> reads:read list -> t
(** Hand-built histories, used by the checker unit tests. *)

val precedes : int option -> int -> bool
(** [precedes ret inv]: did the first operation return before the second
    was invoked?  ([false] if the first never returned.) *)

val completed_reads : t -> read list
(** Reads that returned, in invocation order. *)

val writer_of : t -> bytes -> write option
(** The write that wrote this exact value, if unique; [None] when the
    value is [v0], was never written, or was written more than once. *)

val pp : Format.formatter -> t -> unit
