open History

(* ------------------------------------------------------------------ *)
(* Structured counterexamples                                          *)
(* ------------------------------------------------------------------ *)

type reason =
  | Bottom_read
  | Unwritten_value
  | Ambiguous_value
  | Stale_initial of { completed_write : int }
  | Future_write of { write : int }
  | Intervening_write of { returned : int; between : int }
  | Order_cycle of int list
  | Not_linearizable
  | Search_budget of { explored : int }

type counterexample = {
  cx_read : int option;
  cx_reason : reason;
  cx_order : int list;
  cx_edge : (int * int) option;
}

type verdict = Ok | Violation of counterexample

let node_name n = if n = 0 then "w0(v0)" else Printf.sprintf "op%d" n

let reason_to_string ~read reason =
  let rd = match read with Some r -> Printf.sprintf "read op%d" r | None -> "history" in
  match reason with
  | Bottom_read -> Printf.sprintf "%s returned bottom" rd
  | Unwritten_value -> Printf.sprintf "%s returned a value never written" rd
  | Ambiguous_value ->
    Printf.sprintf "%s returned a value written more than once; use distinct values" rd
  | Stale_initial { completed_write } ->
    Printf.sprintf "%s returned v0 but write op%d completed before it" rd completed_write
  | Future_write { write } ->
    Printf.sprintf "%s returned the value of write op%d invoked after it" rd write
  | Intervening_write { returned; between } ->
    Printf.sprintf "%s returned write op%d, but write op%d fits between them" rd
      returned between
  | Order_cycle cycle ->
    Printf.sprintf "no single write order satisfies all reads (cycle %s)"
      (String.concat " -> " (List.map node_name cycle))
  | Not_linearizable -> "history is not linearizable"
  | Search_budget { explored } ->
    Printf.sprintf
      "linearizability search exhausted its budget after %d states (inconclusive)"
      explored

let to_string cx =
  let base = reason_to_string ~read:cx.cx_read cx.cx_reason in
  let order =
    match cx.cx_order with
    | [] -> ""
    | o ->
      Printf.sprintf "; candidate write order: %s"
        (String.concat " < " (List.map node_name o))
  in
  let edge =
    match cx.cx_edge with
    | None -> ""
    | Some (u, v) ->
      Printf.sprintf "; violated constraint: %s must precede %s" (node_name u)
        (node_name v)
  in
  base ^ order ^ edge

let pp_counterexample ppf cx = Format.pp_print_string ppf (to_string cx)

let pp_verdict ppf = function
  | Ok -> Format.fprintf ppf "ok"
  | Violation cx -> Format.fprintf ppf "violation: %s" (to_string cx)

let mk ?read ?(order = []) ?edge reason =
  Violation { cx_read = read; cx_reason = reason; cx_order = order; cx_edge = edge }

(* A candidate write order for counterexample reports: invocation order,
   which extends real-time precedence among the completed writes. *)
let invocation_order h =
  0
  :: (List.sort (fun a b -> Int.compare a.w_inv b.w_inv) h.writes
     |> List.map (fun w -> w.w_op))

(* The write (if any) a returned read should be attributed to.  [`Initial]
   is the virtual write of v0.  Ambiguous attribution (the same value
   written twice, or v0 also written explicitly) is resolved towards the
   real write when one exists uniquely. *)
let attribute h (r : read) =
  match r.result with
  | None -> Error Bottom_read
  | Some v -> (
    match List.filter (fun w -> Bytes.equal w.value v) h.writes with
    | [ w ] -> Stdlib.Ok (`Write w)
    | [] -> if Bytes.equal v h.initial then Stdlib.Ok `Initial else Error Unwritten_value
    | _ :: _ :: _ -> Error Ambiguous_value)

(* Writes that completed before [r] was invoked. *)
let writes_before h (r : read) =
  List.filter (fun w -> precedes w.w_ret r.r_inv) h.writes

(* ------------------------------------------------------------------ *)
(* Weak regularity                                                     *)
(* ------------------------------------------------------------------ *)

let check_read_weak h (r : read) =
  let order = invocation_order h in
  match attribute h r with
  | Error reason -> mk ~read:r.r_op reason
  | Stdlib.Ok `Initial ->
    (match writes_before h r with
     | [] -> Ok
     | w :: _ ->
       mk ~read:r.r_op ~order ~edge:(w.w_op, 0)
         (Stale_initial { completed_write = w.w_op }))
  | Stdlib.Ok (`Write w) ->
    if precedes r.r_ret w.w_inv then
      mk ~read:r.r_op ~order (Future_write { write = w.w_op })
    else (
      (* No write may fit entirely between w and the read. *)
      match
        List.find_opt
          (fun w' -> precedes w.w_ret w'.w_inv && precedes w'.w_ret r.r_inv)
          h.writes
      with
      | Some w' ->
        mk ~read:r.r_op ~order ~edge:(w'.w_op, w.w_op)
          (Intervening_write { returned = w.w_op; between = w'.w_op })
      | None -> Ok)

let check_weak h =
  List.fold_left
    (fun acc r -> match acc with Ok -> check_read_weak h r | v -> v)
    Ok (completed_reads h)

(* ------------------------------------------------------------------ *)
(* Strong regularity: one write order for all reads                    *)
(* ------------------------------------------------------------------ *)

(* Constraint graph over write ops (node 0 = the virtual initial write).
   An edge u -> v means u must precede v in the common write order. *)
module Graph = struct
  type t = { nodes : int list; edges : (int, int list) Hashtbl.t }

  let create nodes = { nodes; edges = Hashtbl.create 16 }

  let add_edge g u v =
    let cur = Option.value ~default:[] (Hashtbl.find_opt g.edges u) in
    if not (List.mem v cur) then Hashtbl.replace g.edges u (v :: cur)

  (* Returns the node path of a cycle ([u; ...; u]), if one exists. *)
  let find_cycle g =
    let state = Hashtbl.create 16 in
    (* 0 = in progress, 1 = done *)
    let cycle = ref None in
    let rec visit stack u =
      match Hashtbl.find_opt state u with
      | Some 0 ->
        (* [u] is on the DFS stack: the cycle is the stack segment from
           the previous occurrence of [u] down to here. *)
        let rec take acc = function
          | [] -> acc
          | v :: rest -> if v = u then v :: acc else take (v :: acc) rest
        in
        cycle := Some (take [ u ] stack)
      | Some _ -> ()
      | None ->
        Hashtbl.replace state u 0;
        List.iter
          (fun v -> if !cycle = None then visit (u :: stack) v)
          (Option.value ~default:[] (Hashtbl.find_opt g.edges u));
        Hashtbl.replace state u 1
    in
    List.iter (fun u -> if !cycle = None then visit [] u) g.nodes;
    !cycle
end

let strong_constraints h ~only_quiescent_reads =
  let g = Graph.create (0 :: List.map (fun w -> w.w_op) h.writes) in
  (* Real-time order among writes, and the initial write before all. *)
  List.iter
    (fun w ->
      Graph.add_edge g 0 w.w_op;
      List.iter
        (fun w' -> if precedes w.w_ret w'.w_inv then Graph.add_edge g w.w_op w'.w_op)
        h.writes)
    h.writes;
  let has_concurrent_write (r : read) =
    List.exists
      (fun w ->
        (not (precedes w.w_ret r.r_inv))
        && not (precedes r.r_ret w.w_inv))
      h.writes
  in
  let constrain_read (r : read) =
    match attribute h r with
    | Error reason -> Some (mk ~read:r.r_op reason)
    | Stdlib.Ok target ->
      let target_node = match target with `Initial -> 0 | `Write w -> w.w_op in
      (match target with
       | `Write w when precedes r.r_ret w.w_inv ->
         Some
           (mk ~read:r.r_op ~order:(invocation_order h)
              (Future_write { write = w.w_op }))
       | _ ->
         (* Every write completed before the read must not come after the
            returned write in the common order. *)
         List.iter
           (fun w' ->
             if w'.w_op <> target_node then Graph.add_edge g w'.w_op target_node)
           (writes_before h r);
         None)
  in
  let violations =
    List.filter_map
      (fun r ->
        if only_quiescent_reads && has_concurrent_write r then None
        else constrain_read r)
      (completed_reads h)
  in
  (g, violations)

let check_with_graph h ~only_quiescent_reads =
  let g, violations = strong_constraints h ~only_quiescent_reads in
  match violations with
  | v :: _ -> v
  | [] -> (
    match Graph.find_cycle g with
    | Some cycle ->
      let edge = match cycle with u :: v :: _ -> Some (u, v) | _ -> None in
      mk ?edge (Order_cycle cycle)
    | None -> Ok)

let check_strong h = check_with_graph h ~only_quiescent_reads:false

let check_safe h =
  (* A read with concurrent writes may return anything, but the value
     must still be attributable (bottom is never allowed). *)
  let bottom =
    List.find_opt (fun r -> r.result = None) (completed_reads h)
  in
  match bottom with
  | Some r -> mk ~read:r.r_op Bottom_read
  | None -> check_with_graph h ~only_quiescent_reads:true

(* ------------------------------------------------------------------ *)
(* Atomicity (linearizability) via Wing & Gong search                  *)
(* ------------------------------------------------------------------ *)

exception Budget_spent

let check_atomic ?(budget = 5_000_000) h =
  let ops =
    List.map (fun w -> `W w) h.writes @ List.map (fun r -> `R r) h.reads
  in
  let ops = Array.of_list ops in
  let count = Array.length ops in
  if count > 62 then invalid_arg "check_atomic: history too large (> 62 operations)";
  let inv = function `W w -> w.w_inv | `R r -> r.r_inv in
  let ret = function `W w -> w.w_ret | `R r -> r.r_ret in
  let outstanding i = ret ops.(i) = None in
  (* minimal in the remaining set: no remaining op returned before it
     was invoked *)
  let minimal remaining i =
    let ok = ref true in
    for j = 0 to count - 1 do
      if
        j <> i
        && remaining land (1 lsl j) <> 0
        && precedes (ret ops.(j)) (inv ops.(i))
      then ok := false
    done;
    !ok
  in
  let failed = Hashtbl.create 256 in
  (* current value identified by the op id of the last linearized write,
     0 for v0 *)
  let value_of_write_node node =
    if node = 0 then h.initial
    else (List.find (fun w -> w.w_op = node) h.writes).value
  in
  let visited = ref 0 in
  let rec search remaining current =
    if remaining = 0 then true
    else if Hashtbl.mem failed (remaining, current) then false
    else begin
      incr visited;
      if !visited > budget then raise Budget_spent;
      let progressed = ref false in
      for i = 0 to count - 1 do
        if (not !progressed) && remaining land (1 lsl i) <> 0 && minimal remaining i
        then begin
          let rest = remaining land lnot (1 lsl i) in
          (match ops.(i) with
           | `W w -> if search rest w.w_op then progressed := true
           | `R r ->
             let legal =
               match r.result with
               | Some v -> Bytes.equal v (value_of_write_node current)
               | None -> false
             in
             if legal && search rest current then progressed := true);
          (* An operation outstanding at the end of the run may also
             never take effect. *)
          if (not !progressed) && outstanding i && search rest current then
            progressed := true
        end
      done;
      if not !progressed then Hashtbl.add failed (remaining, current) ();
      !progressed
    end
  in
  (* Reads that returned bottom cannot be part of any linearization
     unless they are outstanding. *)
  match
    List.find_opt (fun r -> r.r_ret <> None && r.result = None) h.reads
  with
  | Some r -> mk ~read:r.r_op Bottom_read
  | None -> (
    (* The search is exact: [Not_linearizable] means the complete Wing &
       Gong search failed — a definitive violation.  Running out of
       [budget] is a different, inconclusive answer and gets its own
       reason so callers never mistake "gave up" for "refuted". *)
    match search ((1 lsl count) - 1) 0 with
    | true -> Ok
    | false -> mk ~order:(invocation_order h) Not_linearizable
    | exception Budget_spent ->
      mk ~order:(invocation_order h) (Search_budget { explored = !visited }))
