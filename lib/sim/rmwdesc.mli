(** First-class descriptions of the register RMWs.

    Protocol code in [lib/registers] triggers read-modify-writes as
    OCaml closures — perfect for the in-process runtimes, but a closure
    cannot cross a wire.  This module gives every RMW used by the
    emulations a serializable description and one interpreter,
    {!apply}.  The registers construct descriptions and trigger
    [apply desc]; the message-passing simulator carries the description
    inside its messages; the socket transport ([Sb_service.Wire])
    serializes it.  All three therefore execute the same interpreter on
    the same data: the simulator and the real service make identical
    protocol decisions by construction.

    The vocabulary is closed on purpose.  A server needs no register
    code at all — it holds an {!Sb_storage.Objstate.t} and applies
    descriptions — and adding a register algorithm means extending this
    type, which forces the wire codec and the natures audit to keep
    up. *)

(** Response carried back to the triggering client. *)
type resp = Ack | Snap of Sb_storage.Objstate.t

type rmw = Sb_storage.Objstate.t -> Sb_storage.Objstate.t * resp

(** Eviction barrier for coded stores: [Barrier] keeps everything at or
    above the round-1 [storedTS] (the correct rule); [Own_ts] evicts
    below the incomplete write's own timestamp — the premature-GC
    seeded bug. *)
type eviction = Barrier | Own_ts

(** Vp trimming: [Keep_newest delta] keeps the [delta+1] newest
    versions' pieces, the bounded-version baseline. *)
type trim = Keep_all | Keep_newest of int

type t =
  | Snapshot  (** Read round: return the full object state, change nothing. *)
  | Abd_store of Sb_storage.Chunk.t
      (** Keep the lexicographically larger (timestamp, chunk) — a
          commuting, idempotent join. *)
  | Lww_store of Sb_storage.Chunk.t
      (** Last-writer-wins overwrite (non-commuting; the
          mis-declared-merge seeded bug). *)
  | Safe_update of Sb_storage.Chunk.t
      (** Algorithm 5: overwrite iff strictly higher timestamp. *)
  | Adaptive_update of {
      replicate : bool;
      eviction : eviction;
      trim : trim;
      k : int;
      piece : Sb_storage.Block.t;
      replica_pieces : Sb_storage.Block.t list;
      ts : Sb_storage.Timestamp.t;
      stored_ts : Sb_storage.Timestamp.t;
    }  (** Algorithm 3, lines 32-39. *)
  | Adaptive_gc of { piece : Sb_storage.Block.t; ts : Sb_storage.Timestamp.t }
      (** Algorithm 3, lines 40-45. *)
  | Rateless_update of {
      pieces : Sb_storage.Block.t list;
      ts : Sb_storage.Timestamp.t;
      stored_ts : Sb_storage.Timestamp.t;
    }
  | Rateless_gc of {
      pieces : Sb_storage.Block.t list;
      ts : Sb_storage.Timestamp.t;
    }
  | Rw_write of {
      chunks : Sb_storage.Chunk.t list;
      ts : Sb_storage.Timestamp.t;
    }
      (** Blind wholesale overwrite — the only mutator a [Read_write]
          base object offers.  The cell becomes exactly [chunks] (in
          [Vf]) with [storedTS = ts]; an empty list is a meta-data-only
          stub.  Non-commuting by construction: delivery order decides
          what survives. *)

val apply : t -> rmw
(** The one interpreter.  Every transport applies descriptions through
    this function, so protocol decisions cannot diverge between them. *)

val default_nature : t -> [ `Mutating | `Readonly | `Merge ]
(** The honest concurrency declaration for each description.  Callers
    may override it (the mis-declared-merge experiment declares
    [Lww_store] as [`Merge] on purpose). *)

val op_class : t -> Sb_baseobj.Model.op_class
(** The base-object operation class of a description: [Snapshot] is
    [Read], {!Rw_write} is [Overwrite], everything conditional or
    merging is [General] (RMW-only).  The runtimes gate triggers on
    this under restricted base-object models. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
