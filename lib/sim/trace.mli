(** Run traces: the sequence of observable actions of a simulation.

    The trace records high-level operation invocations/returns (the
    paper's [trace(r)]) together with low-level RMW trigger/take-effect
    actions and crash events, time-stamped by the global step counter.
    The consistency checkers in [Sb_spec] consume the operation events;
    the RMW events support debugging and the adversary walkthrough
    example. *)

type op_kind = Write of bytes | Read

type event =
  | Invoke of { time : int; op : int; client : int; kind : op_kind }
  | Return of { time : int; op : int; client : int; result : bytes option }
  | Rmw_trigger of {
      time : int;
      ticket : int;
      op : int;
      client : int;
      obj : int;
      payload_bits : int;
    }
  | Rmw_deliver of { time : int; ticket : int; obj : int }
  | Crash_object of { time : int; obj : int }
  | Recover_object of { time : int; obj : int }
      (** A crashed base object rejoins with its durable state intact;
          emitted only by the message-passing runtime ([Sb_msgnet]),
          whose servers support crash-{e recovery}. *)
  | Crash_client of { time : int; client : int }

type t

val create : unit -> t
val add : t -> event -> unit
val events : t -> event list
(** Events in chronological order. *)

val length : t -> int

val operations : t -> (int * op_kind * int * int option * bytes option) list
(** [(op, kind, invoke_time, return_time, result)] for every invoked
    operation, in invocation order.  [return_time = None] for operations
    outstanding at the end of the run. *)

val pp_event : Format.formatter -> event -> unit

(** {1 Serialisation}

    A stable, line-oriented text format, one event per line, suitable
    for saving runs to disk and replaying them through the analysis
    tools.  Written values are hex-encoded; everything else is
    whitespace-separated decimal. *)

val to_lines : t -> string list
(** Chronological, one line per event. *)

val of_lines : string list -> (t, string) result
(** Parses the output of {!to_lines}; [Error msg] names the first
    offending line.  Blank lines are ignored. *)

