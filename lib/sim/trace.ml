type op_kind = Write of bytes | Read

type event =
  | Invoke of { time : int; op : int; client : int; kind : op_kind }
  | Return of { time : int; op : int; client : int; result : bytes option }
  | Rmw_trigger of {
      time : int;
      ticket : int;
      op : int;
      client : int;
      obj : int;
      payload_bits : int;
    }
  | Rmw_deliver of { time : int; ticket : int; obj : int }
  | Crash_object of { time : int; obj : int }
  | Recover_object of { time : int; obj : int }
  | Crash_client of { time : int; client : int }

type t = { mutable events : event list; mutable length : int }

let create () = { events = []; length = 0 }

let add t e =
  t.events <- e :: t.events;
  t.length <- t.length + 1

let events t = List.rev t.events
let length t = t.length

let operations t =
  let returns = Hashtbl.create 16 in
  List.iter
    (function
      | Return { time; op; result; _ } -> Hashtbl.replace returns op (time, result)
      | _ -> ())
    t.events;
  let ops =
    List.filter_map
      (function
        | Invoke { time; op; kind; _ } ->
          let return_time, result =
            match Hashtbl.find_opt returns op with
            | Some (rt, res) -> (Some rt, res)
            | None -> (None, None)
          in
          Some (op, kind, time, return_time, result)
        | _ -> None)
      (List.rev t.events)
  in
  ops

(* Line format: a one-letter tag followed by space-separated fields.
   I = invoke, O = return (out), T = rmw trigger, D = rmw deliver,
   X = object crash, U = object recovery (back up), C = client crash. *)
let event_to_line = function
  | Invoke { time; op; client; kind } -> (
    match kind with
    | Write v -> Printf.sprintf "I %d %d %d W %s" time op client (Sb_util.Bytesx.hex v)
    | Read -> Printf.sprintf "I %d %d %d R" time op client)
  | Return { time; op; client; result } ->
    Printf.sprintf "O %d %d %d %s" time op client
      (match result with Some v -> Sb_util.Bytesx.hex v | None -> "-")
  | Rmw_trigger { time; ticket; op; client; obj; payload_bits } ->
    Printf.sprintf "T %d %d %d %d %d %d" time ticket op client obj payload_bits
  | Rmw_deliver { time; ticket; obj } -> Printf.sprintf "D %d %d %d" time ticket obj
  | Crash_object { time; obj } -> Printf.sprintf "X %d %d" time obj
  | Recover_object { time; obj } -> Printf.sprintf "U %d %d" time obj
  | Crash_client { time; client } -> Printf.sprintf "C %d %d" time client

let to_lines t = List.rev_map event_to_line t.events

let event_of_line line =
  let int_of s = match int_of_string_opt s with
    | Some i -> Ok i
    | None -> Error (Printf.sprintf "not an integer: %S" s)
  in
  let ( let* ) = Result.bind in
  match String.split_on_char ' ' line with
  | [ "I"; time; op; client; "W"; hex ] ->
    let* time = int_of time in
    let* op = int_of op in
    let* client = int_of client in
    (try Ok (Invoke { time; op; client; kind = Write (Sb_util.Bytesx.of_hex hex) })
     with Invalid_argument m -> Error m)
  | [ "I"; time; op; client; "R" ] ->
    let* time = int_of time in
    let* op = int_of op in
    let* client = int_of client in
    Ok (Invoke { time; op; client; kind = Read })
  | [ "O"; time; op; client; result ] ->
    let* time = int_of time in
    let* op = int_of op in
    let* client = int_of client in
    if result = "-" then Ok (Return { time; op; client; result = None })
    else
      (try Ok (Return { time; op; client; result = Some (Sb_util.Bytesx.of_hex result) })
       with Invalid_argument m -> Error m)
  | [ "T"; time; ticket; op; client; obj; bits ] ->
    let* time = int_of time in
    let* ticket = int_of ticket in
    let* op = int_of op in
    let* client = int_of client in
    let* obj = int_of obj in
    let* payload_bits = int_of bits in
    Ok (Rmw_trigger { time; ticket; op; client; obj; payload_bits })
  | [ "D"; time; ticket; obj ] ->
    let* time = int_of time in
    let* ticket = int_of ticket in
    let* obj = int_of obj in
    Ok (Rmw_deliver { time; ticket; obj })
  | [ "X"; time; obj ] ->
    let* time = int_of time in
    let* obj = int_of obj in
    Ok (Crash_object { time; obj })
  | [ "U"; time; obj ] ->
    let* time = int_of time in
    let* obj = int_of obj in
    Ok (Recover_object { time; obj })
  | [ "C"; time; client ] ->
    let* time = int_of time in
    let* client = int_of client in
    Ok (Crash_client { time; client })
  | _ -> Error "unrecognised event line"

let of_lines lines =
  let t = create () in
  let rec go = function
    | [] -> Ok t
    | "" :: rest -> go rest
    | line :: rest -> (
      match event_of_line line with
      | Ok e ->
        add t e;
        go rest
      | Error msg -> Error (Printf.sprintf "%s (in %S)" msg line))
  in
  go lines

let pp_kind ppf = function
  | Write v -> Format.fprintf ppf "write(%s)" (Sb_util.Bytesx.hex v)
  | Read -> Format.fprintf ppf "read()"

let pp_event ppf = function
  | Invoke { time; op; client; kind } ->
    Format.fprintf ppf "[%6d] c%d invokes op%d = %a" time client op pp_kind kind
  | Return { time; op; client; result } ->
    Format.fprintf ppf "[%6d] c%d returns op%d%s" time client op
      (match result with
       | Some v -> " -> " ^ Sb_util.Bytesx.hex v
       | None -> "")
  | Rmw_trigger { time; ticket; op; client; obj; payload_bits } ->
    Format.fprintf ppf "[%6d] c%d op%d triggers rmw#%d on bo%d (%d payload bits)" time
      client op ticket obj payload_bits
  | Rmw_deliver { time; ticket; obj } ->
    Format.fprintf ppf "[%6d] rmw#%d takes effect on bo%d" time ticket obj
  | Crash_object { time; obj } -> Format.fprintf ppf "[%6d] bo%d crashes" time obj
  | Recover_object { time; obj } ->
    Format.fprintf ppf "[%6d] bo%d recovers" time obj
  | Crash_client { time; client } -> Format.fprintf ppf "[%6d] c%d crashes" time client
