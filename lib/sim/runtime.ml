open Effect
open Effect.Deep

type resp = Rmwdesc.resp = Ack | Snap of Sb_storage.Objstate.t
type rmw = Sb_storage.Objstate.t -> Sb_storage.Objstate.t * resp

type op = {
  id : int;
  client : int;
  kind : Trace.op_kind;
  mutable rounds : int;
}

type ctx = {
  self : int;
  op : op;
  n_objects : int;
  prng : Sb_util.Prng.t;
}

type algorithm = {
  name : string;
  init_obj : int -> Sb_storage.Objstate.t;
  write : ctx -> bytes -> unit;
  read : ctx -> bytes option;
}

(* ------------------------------------------------------------------ *)
(* Effects performed by protocol code                                  *)
(* ------------------------------------------------------------------ *)

(* How an RMW interacts with concurrent deliveries on the same object:
   [`Mutating] promises nothing; [`Readonly] never changes the object
   state (so it commutes with other read-onlys and becomes a droppable
   no-op once its response is unobservable); [`Merge] declares a
   commutative update — applying it and any other [`Merge] RMW on the
   same object in either order yields the same state and the same two
   responses (e.g. a join-semilattice "keep the higher timestamp"
   overwrite). *)
type rmw_nature = [ `Mutating | `Readonly | `Merge ]

type _ Effect.t +=
  | Trigger :
      int * Sb_storage.Block.t list * rmw * rmw_nature * Rmwdesc.t option
      -> int Effect.t
  | Await : int list * int -> (int * resp) list Effect.t

let trigger ?(nature = `Mutating) ?desc ~obj ~payload rmw =
  perform (Trigger (obj, payload, rmw, nature, desc))

let await ~tickets ~quorum = perform (Await (tickets, quorum))

let broadcast_rmw ?(nature = `Mutating) ?desc ~n ~payload f =
  List.init n (fun i ->
      trigger ~nature
        ?desc:(Option.map (fun d -> d i) desc)
        ~obj:i ~payload:(payload i) (f i))

(* Trigger an RMW from its description alone: the closure is
   [Rmwdesc.apply] and the nature defaults to the description's honest
   declaration.  This is how the registers trigger everything, which is
   what lets the same protocol code run over the wire. *)
let broadcast_desc ?nature ~n ~payload d =
  List.init n (fun i ->
      let di = d i in
      let nature =
        match nature with Some x -> x | None -> Rmwdesc.default_nature di
      in
      trigger ~nature ~desc:di ~obj:i ~payload:(payload i) (Rmwdesc.apply di))

(* ------------------------------------------------------------------ *)
(* World state                                                         *)
(* ------------------------------------------------------------------ *)

(* Result of running a client fiber until it blocks or finishes. *)
type fiber_outcome = Done of bytes option | Blocked

type client_status = Idle | Parked | Runnable | Crashed

type pending = {
  ticket : int;
  p_obj : int;
  p_client : int;
  p_op : op;
  payload : Sb_storage.Block.t list;
  p_rmw : rmw;
  p_desc : Rmwdesc.t option;
  p_nature : rmw_nature;
  triggered_at : int;
}

type pending_info = {
  ticket : int;
  p_obj : int;
  p_client : int;
  p_op : op;
  payload_bits : int;
  p_desc : Rmwdesc.t option;
  p_nature : rmw_nature;
  triggered_at : int;
}

type parked = {
  w_tickets : int list;
  w_quorum : int;
  w_k : ((int * resp) list, fiber_outcome) continuation;
}

(* A delivered-but-not-yet-consumed response, tagged with the origin of
   its ticket so exploration can name it canonically. *)
type delivered = { d_obj : int; d_client : int; d_op : int; d_resp : resp }

type client = {
  cid : int;
  mutable queue : Trace.op_kind list;
  mutable status : client_status;
  mutable waiting : parked option;
  mutable current_op : op option;
  c_prng : Sb_util.Prng.t;
  mutable consumed_log : (int * resp) list list;
  (* Response lists returned by this client's awaits, newest first.  A
     fiber is deterministic in (algorithm, op kinds, prng, this log), so
     the log stands in for the un-inspectable fiber-local state when
     exploration fingerprints a world. *)
  log_h : Sb_util.Hash128.t;
  (* Chain hash over [consumed_log], maintained as entries are appended
     — the log grows without bound, so [state_hash] folds it in O(1)
     instead of rehashing it per key. *)
}

(* Fine-grained execution events, emitted to registered observers (the
   sanitizer monitors in [Sb_sanitize]).  Deliberately richer than
   [Trace.event]: a delivery exposes the RMW closure and the object
   states around it, an await its responder set — everything an online
   invariant monitor needs and a post-hoc trace cannot reconstruct. *)
type event =
  | E_invoke of { op : op }
  | E_return of { op : op; result : bytes option }
  | E_trigger of {
      ticket : int;
      obj : int;
      op : op;
      nature : rmw_nature;
      payload : Sb_storage.Block.t list;
      desc : Rmwdesc.t option;
    }
  | E_deliver of {
      ticket : int;
      obj : int;
      client : int;
      op : int;
      nature : rmw_nature;
      rmw : rmw;
      before : Sb_storage.Objstate.t;
      after : Sb_storage.Objstate.t;
      resp : resp;
      observable : bool;
    }
  | E_await of {
      op : op;
      tickets : int list;
      quorum : int;
      responders : (int * resp) list;
    }
  | E_crash_obj of int
  | E_recover_obj of int * int
  | E_crash_client of int

type world = {
  n : int;
  f : int;
  algorithm : algorithm;
  base_model : Sb_baseobj.Model.t;
  byz : Sb_baseobj.Model.byz_policy option;
  init_objects : Sb_storage.Objstate.t array;
  (* The pristine [init_obj] states, kept for Byzantine policies that
     replay the initial value (stale echo): policies are pure functions
     of canonically-stable inputs, never of history. *)
  objects : Sb_storage.Objstate.t array;
  alive : bool array;
  clients : client array;
  pendings : (int, pending) Hashtbl.t;
  mutable pending_order : int list; (* tickets, newest first *)
  responses : (int, delivered) Hashtbl.t;
  consumed : (int, unit) Hashtbl.t;
  (* Tickets covered by an await that has already returned.  A straggler
     delivery of a consumed ticket still applies its RMW to the object
     but its response is discarded: no await may observe it again. *)
  mutable next_ticket : int;
  mutable next_op : int;
  mutable now : int;
  tr : Trace.t;
  mutable inv_events : int; (* Invoke events emitted so far *)
  mutable ret_events : int; (* Return events emitted so far *)
  mutable step_awaits : int list;
  (* Tickets whose responses the most recent [Step] read or awaited *)
  mutable all_ops : op list;
  metrics : bool; (* track storage maxima (skipped during exploration) *)
  mutable max_obj_bits : int;
  mutable max_total_bits : int;
  hist_h : Sb_util.Hash128.t;
  (* Chain hash over the operation history (the same events, minus
     times, that [key_digest ~canonical_history:false] folds in),
     updated at each emission site so [state_hash] never rescans the
     trace. *)
  fingerprints : bool;
  (* Maintain the [hist_h]/[log_h] chains.  Hashing consumed responses
     (full object-state snapshots) is the dominant always-on cost, so
     runs that never call [state_hash] — uncached exploration, plain
     simulation — opt out at creation, like [metrics]. *)
  mutable observers : (event -> unit) list;
  (* Event sinks, called in registration order.  Observers must not
     mutate the world; the list is empty in unsanitized runs, and every
     emission site is guarded so that dormant observers cost one list
     check and no allocation. *)
}

let create ?(seed = 1) ?(metrics = true) ?(fingerprints = true)
    ?(base_model = Sb_baseobj.Model.Rmw) ?byz ~algorithm ~n ~f ~workload () =
  if f < 0 || 2 * f >= n then
    invalid_arg "Runtime.create: need 0 <= f < n/2";
  (* The policy must fit the model: lying requires a Byzantine model and
     at most the model's budget of compromised objects.  The budget
     itself is NOT checked against [f] here — negative controls run
     over-budget adversaries mechanically; [Model.validate] is the
     policy-level gate (CLI, fault plans). *)
  (match byz with
  | Some policy -> Sb_baseobj.Model.check_policy base_model ~n policy
  | None -> ());
  let root_prng = Sb_util.Prng.create seed in
  let clients =
    Array.mapi
      (fun i ops ->
        {
          cid = i;
          queue = ops;
          status = Idle;
          waiting = None;
          current_op = None;
          c_prng = Sb_util.Prng.split root_prng;
          consumed_log = [];
          log_h = Sb_util.Hash128.create ();
        })
      workload
  in
  {
    n;
    f;
    algorithm;
    base_model;
    byz;
    init_objects = Array.init n algorithm.init_obj;
    objects = Array.init n algorithm.init_obj;
    alive = Array.make n true;
    clients;
    pendings = Hashtbl.create 64;
    pending_order = [];
    responses = Hashtbl.create 64;
    consumed = Hashtbl.create 64;
    next_ticket = 1;
    next_op = 1;
    now = 0;
    tr = Trace.create ();
    inv_events = 0;
    ret_events = 0;
    step_awaits = [];
    all_ops = [];
    metrics;
    max_obj_bits = 0;
    max_total_bits = 0;
    hist_h = Sb_util.Hash128.create ();
    fingerprints;
    observers = [];
  }

(* ------------------------------------------------------------------ *)
(* Incremental hashing of world components                             *)
(* ------------------------------------------------------------------ *)

(* These feed both the maintained chains ([hist_h], [log_h]) and the
   per-key extraction in [state_hash].  Every constructor gets a tag so
   adjacent fields cannot alias across variants. *)

module H = Sb_util.Hash128

let status_code = function Idle -> 0 | Parked -> 1 | Runnable -> 2 | Crashed -> 3
let nature_code = function `Mutating -> 0 | `Readonly -> 1 | `Merge -> 2

let hash_op_kind h = function
  | Trace.Write v ->
    H.add_int h 1;
    H.add_bytes h v
  | Trace.Read -> H.add_int h 2

let hash_block h (b : Sb_storage.Block.t) =
  H.add_int h b.source;
  H.add_int h b.index;
  H.add_bytes h b.data

let hash_chunk h (c : Sb_storage.Chunk.t) =
  H.add_int h c.ts.num;
  H.add_int h c.ts.client;
  hash_block h c.block

let hash_objstate h (st : Sb_storage.Objstate.t) =
  H.add_int h st.stored_ts.num;
  H.add_int h st.stored_ts.client;
  H.add_int h (List.length st.vp);
  List.iter (hash_chunk h) st.vp;
  H.add_int h (List.length st.vf);
  List.iter (hash_chunk h) st.vf

let hash_resp h = function
  | Ack -> H.add_int h 3
  | Snap st ->
    H.add_int h 4;
    hash_objstate h st

(* History-chain updates, one per emission site below.  Tags mirror the
   constructors [key_digest] keeps (trigger/deliver events are not part
   of the operation history and never touch the chain). *)
let chain_invoke w (op : op) kind =
  if w.fingerprints then begin
    H.add_int w.hist_h 5;
    H.add_int w.hist_h op.id;
    H.add_int w.hist_h op.client;
    hash_op_kind w.hist_h kind
  end

let chain_return w (op : op) result =
  if w.fingerprints then begin
    H.add_int w.hist_h 6;
    H.add_int w.hist_h op.id;
    H.add_int w.hist_h op.client;
    match result with
    | None -> H.add_int w.hist_h 0
    | Some v ->
      H.add_int w.hist_h 1;
      H.add_bytes w.hist_h v
  end

let chain_crash_obj w i =
  if w.fingerprints then begin
    H.add_int w.hist_h 7;
    H.add_int w.hist_h i
  end

let chain_crash_client w c =
  if w.fingerprints then begin
    H.add_int w.hist_h 8;
    H.add_int w.hist_h c
  end

let chain_consume w (cl : client) (rs : (int * resp) list) =
  if w.fingerprints then begin
  H.add_int cl.log_h 9;
  H.add_int cl.log_h (List.length rs);
  List.iter
    (fun (obj, r) ->
      H.add_int cl.log_h obj;
      hash_resp cl.log_h r)
    rs
  end

let add_observer w f = w.observers <- w.observers @ [ f ]
let observed w = w.observers <> []
let emit w ev = List.iter (fun f -> f ev) w.observers

let enqueue_op w ~client kind =
  if client < 0 || client >= Array.length w.clients then
    invalid_arg "Runtime.enqueue_op: no such client";
  let cl = w.clients.(client) in
  if cl.status = Crashed then invalid_arg "Runtime.enqueue_op: client has crashed";
  cl.queue <- cl.queue @ [ kind ]

(* ------------------------------------------------------------------ *)
(* Introspection                                                       *)
(* ------------------------------------------------------------------ *)

let time w = w.now
let n_objects w = w.n
let f_tolerance w = w.f
let base_model w = w.base_model

let byz_compromised w o =
  match w.byz with
  | Some bp -> bp.Sb_baseobj.Model.bp_compromised o
  | None -> false

let obj_state w i = w.objects.(i)
let obj_alive w i = w.alive.(i)
let obj_bits w i = if w.alive.(i) then Sb_storage.Objstate.bits w.objects.(i) else 0
let client_count w = Array.length w.clients
let client_status w c = w.clients.(c).status

let client_has_work w c =
  let cl = w.clients.(c) in
  cl.status = Idle && cl.queue <> []

let info_of_pending (p : pending) =
  {
    ticket = p.ticket;
    p_obj = p.p_obj;
    p_client = p.p_client;
    p_op = p.p_op;
    payload_bits = Sb_storage.Accounting.bits_of_blocks p.payload;
    p_desc = p.p_desc;
    p_nature = p.p_nature;
    triggered_at = p.triggered_at;
  }

let pending_rmws w =
  List.rev_map (fun t -> info_of_pending (Hashtbl.find w.pendings t)) w.pending_order

let outstanding_ops w =
  Array.to_list w.clients
  |> List.filter_map (fun cl ->
         if cl.status = Crashed then None else cl.current_op)

let all_ops w = List.rev w.all_ops

let max_read_rounds w =
  List.fold_left
    (fun acc (op : op) ->
      match op.kind with Trace.Read -> max acc op.rounds | Trace.Write _ -> acc)
    0 w.all_ops

let storage_bits_objects w =
  let acc = ref 0 in
  for i = 0 to w.n - 1 do
    if w.alive.(i) then acc := !acc + Sb_storage.Objstate.bits w.objects.(i)
  done;
  !acc

let inflight_bits w =
  (* sb-lint: allow hashtbl-order — commutative sum of payload bits *)
  Hashtbl.fold
    (fun _ (p : pending) acc ->
      if w.clients.(p.p_client).status = Crashed then acc
      else acc + Sb_storage.Accounting.bits_of_blocks p.payload)
    w.pendings 0

let storage_bits_total w = storage_bits_objects w + inflight_bits w

let visible_blocks_excluding w ~client =
  let obj_blocks =
    List.concat
      (List.init w.n (fun i ->
           if w.alive.(i) then Sb_storage.Objstate.blocks w.objects.(i) else []))
  in
  (* sb-lint: allow hashtbl-order — feeds Accounting.contribution, an order-insensitive index-set sum *)
  Hashtbl.fold
    (fun _ (p : pending) acc ->
      if p.p_client = client || w.clients.(p.p_client).status = Crashed then acc
      else p.payload @ acc)
    w.pendings obj_blocks

let op_contribution w (op : op) =
  Sb_storage.Accounting.contribution ~source:op.id
    (visible_blocks_excluding w ~client:op.client)

let max_bits_objects w = w.max_obj_bits
let max_bits_total w = w.max_total_bits
let trace w = w.tr
let invoke_events w = w.inv_events
let return_events w = w.ret_events
let last_step_awaits w = w.step_awaits

let update_maxima w =
  if w.metrics then begin
    let ob = storage_bits_objects w in
    let tb = ob + inflight_bits w in
    if ob > w.max_obj_bits then w.max_obj_bits <- ob;
    if tb > w.max_total_bits then w.max_total_bits <- tb
  end

(* ------------------------------------------------------------------ *)
(* Fiber machinery                                                     *)
(* ------------------------------------------------------------------ *)

let responses_for w tickets =
  List.filter_map
    (fun t ->
      match Hashtbl.find_opt w.responses t with
      | Some r -> Some (r.d_obj, r.d_resp)
      | None -> None)
    tickets

let await_satisfied w tickets quorum =
  let count =
    List.fold_left
      (fun acc t -> if Hashtbl.mem w.responses t then acc + 1 else acc)
      0 tickets
  in
  count >= quorum

(* Once an await returns, the responses of its still-in-flight read-only
   RMWs can never be observed again (awaits must not re-use consumed
   tickets, see the .mli contract), and a read-only RMW does not change
   its object — so those pendings are no-ops and are dropped on the spot.
   This is what keeps systematic exploration tractable: a dropped
   straggler is one less decision point at every later state. *)
let drop_readonly_orphans w tickets =
  let dropped =
    List.filter
      (fun t ->
        match Hashtbl.find_opt w.pendings t with
        | Some p when p.p_nature = `Readonly ->
          Hashtbl.remove w.pendings t;
          true
        | _ -> false)
      tickets
  in
  if dropped <> [] then
    w.pending_order <- List.filter (fun t -> not (List.mem t dropped)) w.pending_order

(* An await is returning to client [cl]: hand it the responses gathered
   so far and retire its tickets.  Their response slots are deleted (no
   later await may observe them, per the contract above), stragglers
   still in flight are marked consumed so their eventual delivery only
   mutates the object, and orphaned read-only RMWs are dropped
   outright. *)
let consume w cl tickets =
  let rs = responses_for w tickets in
  cl.consumed_log <- rs :: cl.consumed_log;
  chain_consume w cl rs;
  List.iter
    (fun t ->
      Hashtbl.remove w.responses t;
      Hashtbl.replace w.consumed t ())
    tickets;
  drop_readonly_orphans w tickets;
  rs

(* The deep handler interpreting protocol effects against world [w] for
   client [cl] running operation [op]. *)
let handle_fiber w cl op (body : unit -> bytes option) : fiber_outcome =
  match_with body ()
      {
        retc = (fun r -> Done r);
        exnc = raise;
        effc =
          (fun (type b) (eff : b Effect.t) ->
            match eff with
            | Trigger (obj, payload, rmw, nature, desc) ->
              Some
                (fun (k : (b, fiber_outcome) continuation) ->
                  if obj < 0 || obj >= w.n then
                    invalid_arg "Runtime.trigger: no such object";
                  (* Restricted base-object models gate on the operation
                     class; [Rmw] and [Byzantine] accept everything. *)
                  Sb_baseobj.Model.check_op w.base_model
                    (Option.map Rmwdesc.op_class desc);
                  let ticket = w.next_ticket in
                  w.next_ticket <- ticket + 1;
                  let p =
                    {
                      ticket;
                      p_obj = obj;
                      p_client = cl.cid;
                      p_op = op;
                      payload;
                      p_rmw = rmw;
                      p_desc = desc;
                      p_nature = nature;
                      triggered_at = w.now;
                    }
                  in
                  Hashtbl.add w.pendings ticket p;
                  w.pending_order <- ticket :: w.pending_order;
                  Trace.add w.tr
                    (Rmw_trigger
                       {
                         time = w.now;
                         ticket;
                         op = op.id;
                         client = cl.cid;
                         obj;
                         payload_bits = Sb_storage.Accounting.bits_of_blocks payload;
                       });
                  if observed w then
                    emit w (E_trigger { ticket; obj; op; nature; payload; desc });
                  continue k ticket)
            | Await (tickets, quorum) ->
              Some
                (fun (k : (b, fiber_outcome) continuation) ->
                  List.iter
                    (fun t ->
                      if
                        Hashtbl.mem w.consumed t
                        || not
                             (Hashtbl.mem w.pendings t
                             || Hashtbl.mem w.responses t)
                      then
                        invalid_arg
                          "Runtime.await: ticket was consumed by an earlier await")
                    tickets;
                  w.step_awaits <- tickets @ w.step_awaits;
                  if await_satisfied w tickets quorum then begin
                    let rs = consume w cl tickets in
                    if observed w then
                      emit w (E_await { op; tickets; quorum; responders = rs });
                    continue k rs
                  end
                  else begin
                    cl.waiting <- Some { w_tickets = tickets; w_quorum = quorum; w_k = k };
                    cl.status <- Parked;
                    Blocked
                  end)
            | _ -> None);
      }

let finish_op w cl (op : op) result =
  cl.current_op <- None;
  cl.status <- Idle;
  (* Read-only RMWs the op never awaited (or awaited without consuming)
     are dead once it returns. *)
  drop_readonly_orphans w
    (List.filter
       (fun t ->
         match Hashtbl.find_opt w.pendings t with
         | Some p -> p.p_op == op
         | None -> false)
       w.pending_order);
  w.ret_events <- w.ret_events + 1;
  Trace.add w.tr (Return { time = w.now; op = op.id; client = cl.cid; result });
  chain_return w op result;
  if observed w then emit w (E_return { op; result })

let invoke_next w cl =
  match cl.queue with
  | [] -> invalid_arg "Runtime.step: client has no queued operation"
  | kind :: rest ->
    cl.queue <- rest;
    let op = { id = w.next_op; client = cl.cid; kind; rounds = 0 } in
    w.next_op <- w.next_op + 1;
    w.all_ops <- op :: w.all_ops;
    cl.current_op <- Some op;
    w.inv_events <- w.inv_events + 1;
    Trace.add w.tr (Invoke { time = w.now; op = op.id; client = cl.cid; kind });
    chain_invoke w op kind;
    if observed w then emit w (E_invoke { op });
    let ctx = { self = cl.cid; op; n_objects = w.n; prng = cl.c_prng } in
    let body () =
      match kind with
      | Trace.Write v ->
        w.algorithm.write ctx v;
        None
      | Trace.Read -> w.algorithm.read ctx
    in
    (match handle_fiber w cl op body with
     | Done result -> finish_op w cl op result
     | Blocked -> ())

let resume w cl =
  match cl.waiting with
  | None -> invalid_arg "Runtime.step: client is not waiting"
  | Some { w_tickets; w_quorum; w_k } ->
    if not (await_satisfied w w_tickets w_quorum) then
      invalid_arg "Runtime.step: client's quorum is not satisfied";
    cl.waiting <- None;
    cl.status <- Idle;
    w.step_awaits <- w_tickets @ w.step_awaits;
    let rs = consume w cl w_tickets in
    let op = match cl.current_op with Some op -> op | None -> assert false in
    if observed w then
      emit w (E_await { op; tickets = w_tickets; quorum = w_quorum; responders = rs });
    (match continue w_k rs with
     | Done result -> finish_op w cl op result
     | Blocked -> ())

(* ------------------------------------------------------------------ *)
(* Scheduling                                                          *)
(* ------------------------------------------------------------------ *)

type decision =
  | Deliver of int
  | Step of int
  | Crash_obj of int
  | Crash_client of int
  | Halt

type policy = world -> decision

(* Under the read/write model each (client, object) pair is an atomic
   register behind a sequential channel (the sibling papers' base-object
   interface): a client's operations on one cell take effect in issue
   order, so a pending RMW is deliverable only while it is the oldest
   pending for its pair.  Without this discipline a straggling blind
   overwrite could roll a cell backwards past a newer write. *)
let rw_head w (p : pending) =
  not
    (List.exists
       (fun t ->
         t < p.ticket
         &&
         match Hashtbl.find_opt w.pendings t with
         | Some q -> q.p_client = p.p_client && q.p_obj = p.p_obj
         | None -> false)
       w.pending_order)

let delivery_enabled w (p : pending) =
  w.alive.(p.p_obj)
  && ((not (Sb_baseobj.Model.fifo_writes w.base_model)) || rw_head w p)

let deliverable w =
  List.rev
    (List.filter_map
       (fun t ->
         let p = Hashtbl.find w.pendings t in
         if delivery_enabled w p then Some (info_of_pending p) else None)
       w.pending_order)

let client_steppable w cl =
  match cl.status with
  | Idle -> cl.queue <> []
  | Runnable -> true
  | Parked -> (
    match cl.waiting with
    | Some { w_tickets; w_quorum; _ } -> await_satisfied w w_tickets w_quorum
    | None -> false)
  | Crashed -> false

let steppable w =
  Array.to_list w.clients
  |> List.filter_map (fun cl -> if client_steppable w cl then Some cl.cid else None)

let deliver w ticket =
  match Hashtbl.find_opt w.pendings ticket with
  | None -> invalid_arg "Runtime.step: unknown ticket"
  | Some p ->
    if not w.alive.(p.p_obj) then
      invalid_arg "Runtime.step: object has crashed; RMW cannot take effect";
    if
      Sb_baseobj.Model.fifo_writes w.base_model && not (rw_head w p)
    then
      invalid_arg
        "Runtime.step: read/write base objects deliver per-(client, object) \
         FIFO; an older operation on this pair is still pending";
    Hashtbl.remove w.pendings ticket;
    w.pending_order <- List.filter (fun t -> t <> ticket) w.pending_order;
    let before = w.objects.(p.p_obj) in
    let state, resp =
      (* A compromised object may lie about this delivery: acknowledge
         without applying, or respond with a fabricated well-formed
         state.  The lie is confined to the response/state pair — the
         trace and event stream record what the object actually did, so
         monitors stay grounded in the honest view. *)
      match w.byz with
      | Some bp when bp.Sb_baseobj.Model.bp_compromised p.p_obj -> (
        let cls =
          match p.p_desc with
          | Some d -> Rmwdesc.op_class d
          | None -> Sb_baseobj.Model.General
        in
        match
          bp.Sb_baseobj.Model.bp_act ~obj:p.p_obj ~client:p.p_client ~cls
            ~before ~init:w.init_objects.(p.p_obj)
        with
        | Sb_baseobj.Model.Honest -> p.p_rmw before
        | Sb_baseobj.Model.Drop_write -> (before, Ack)
        | Sb_baseobj.Model.Fabricate st -> (before, Snap st))
      | _ -> p.p_rmw before
    in
    w.objects.(p.p_obj) <- state;
    Trace.add w.tr (Rmw_deliver { time = w.now; ticket; obj = p.p_obj });
    let cl = w.clients.(p.p_client) in
    let observable = cl.status <> Crashed && not (Hashtbl.mem w.consumed ticket) in
    if observed w then
      emit w
        (E_deliver
           {
             ticket;
             obj = p.p_obj;
             client = p.p_client;
             op = p.p_op.id;
             nature = p.p_nature;
             rmw = p.p_rmw;
             before;
             after = state;
             resp;
             observable;
           });
    if observable then begin
      Hashtbl.replace w.responses ticket
        { d_obj = p.p_obj; d_client = p.p_client; d_op = p.p_op.id; d_resp = resp };
      match cl.status, cl.waiting with
      | Parked, Some { w_tickets; w_quorum; _ }
        when await_satisfied w w_tickets w_quorum ->
        cl.status <- Runnable
      | _ -> ()
    end

let crash_obj w i =
  if i < 0 || i >= w.n then invalid_arg "Runtime.step: no such object";
  if not w.alive.(i) then invalid_arg "Runtime.step: object already crashed";
  let crashed = Array.fold_left (fun acc a -> if a then acc else acc + 1) 0 w.alive in
  if crashed >= w.f then
    invalid_arg "Runtime.step: cannot crash more than f base objects";
  w.alive.(i) <- false;
  Trace.add w.tr (Crash_object { time = w.now; obj = i });
  chain_crash_obj w i;
  if observed w then emit w (E_crash_obj i)

let crash_client w c =
  if c < 0 || c >= Array.length w.clients then
    invalid_arg "Runtime.step: no such client";
  let cl = w.clients.(c) in
  if cl.status = Crashed then invalid_arg "Runtime.step: client already crashed";
  cl.status <- Crashed;
  cl.waiting <- None;
  cl.queue <- [];
  (* A crashed client never consumes responses, so its in-flight
     read-only RMWs are no-ops from here on. *)
  drop_readonly_orphans w
    (List.filter
       (fun t ->
         match Hashtbl.find_opt w.pendings t with
         | Some p -> p.p_client = c
         | None -> false)
       w.pending_order);
  Trace.add w.tr (Crash_client { time = w.now; client = c });
  chain_crash_client w c;
  if observed w then emit w (E_crash_client c)

let step w decision =
  w.now <- w.now + 1;
  let continue_run =
    match decision with
    | Deliver ticket ->
      deliver w ticket;
      true
    | Step c ->
      w.step_awaits <- [];
      let cl = w.clients.(c) in
      (match cl.status with
       | Crashed -> invalid_arg "Runtime.step: client has crashed"
       | Idle when cl.queue <> [] ->
         invoke_next w cl;
         true
       | Idle -> invalid_arg "Runtime.step: client has nothing to do"
       | Runnable ->
         resume w cl;
         true
       | Parked ->
         resume w cl;
         true)
    | Crash_obj i ->
      crash_obj w i;
      true
    | Crash_client c ->
      crash_client w c;
      true
    | Halt -> false
  in
  update_maxima w;
  continue_run

type outcome = { world : world; steps : int; halted : bool; quiescent : bool }

let quiescent w = deliverable w = [] && steppable w = []

let run ?(max_steps = 1_000_000) w policy =
  let rec go steps =
    if steps >= max_steps then { world = w; steps; halted = false; quiescent = false }
    else if quiescent w then { world = w; steps; halted = false; quiescent = true }
    else begin
      let decision = policy w in
      if step w decision then go (steps + 1)
      else { world = w; steps = steps + 1; halted = true; quiescent = false }
    end
  in
  update_maxima w;
  go 0

(* ------------------------------------------------------------------ *)
(* Built-in policies                                                   *)
(* ------------------------------------------------------------------ *)

let random_policy ?(crash_objs = []) ~seed () =
  let prng = Sb_util.Prng.create seed in
  let by_time_then_obj (t1, o1) (t2, o2) =
    if t1 = t2 then Int.compare o1 o2 else Int.compare t1 t2
  in
  let remaining = ref (List.sort by_time_then_obj crash_objs) in
  fun w ->
    match !remaining with
    | (t, obj) :: rest when time w >= t && obj_alive w obj ->
      remaining := rest;
      Crash_obj obj
    | _ ->
      let delivers = List.map (fun p -> Deliver p.ticket) (deliverable w) in
      let steps = List.map (fun c -> Step c) (steppable w) in
      let choices = Array.of_list (delivers @ steps) in
      if Array.length choices = 0 then Halt else Sb_util.Prng.pick prng choices

let fifo_policy () =
  fun w ->
    match deliverable w with
    | p :: _ -> Deliver p.ticket
    | [] -> (
      match steppable w with
      | c :: _ -> Step c
      | [] -> Halt)

(* ------------------------------------------------------------------ *)
(* Systematic exploration support (decision points, replay)            *)
(* ------------------------------------------------------------------ *)

let crashed_objects w =
  Array.fold_left (fun acc a -> if a then acc else acc + 1) 0 w.alive

let decision_enabled w = function
  | Deliver t -> (
    match Hashtbl.find_opt w.pendings t with
    | Some p -> delivery_enabled w p
    | None -> false)
  | Step c ->
    c >= 0 && c < Array.length w.clients && client_steppable w w.clients.(c)
  | Crash_obj i -> i >= 0 && i < w.n && w.alive.(i) && crashed_objects w < w.f
  | Crash_client c ->
    c >= 0 && c < Array.length w.clients && w.clients.(c).status <> Crashed
  | Halt -> true

let replay w decisions =
  List.fold_left
    (fun applied d ->
      if d <> Halt && decision_enabled w d then begin
        ignore (step w d);
        applied + 1
      end
      else applied)
    0 decisions

let fingerprint w =
  (* A digest of the logical state: everything a protocol or policy can
     observe, minus closures (RMW bodies, parked continuations) and the
     clock.  Two replays of the same decision trace must agree on it. *)
  let status_code = function Idle -> 0 | Parked -> 1 | Runnable -> 2 | Crashed -> 3 in
  let clients =
    Array.to_list w.clients
    |> List.map (fun cl ->
           ( cl.cid,
             status_code cl.status,
             cl.queue,
             (match cl.current_op with Some op -> op.id | None -> -1),
             match cl.waiting with
             | Some { w_tickets; w_quorum; _ } -> Some (w_tickets, w_quorum)
             | None -> None ))
  in
  let pendings =
    List.rev_map
      (fun t ->
        let p = Hashtbl.find w.pendings t in
        (t, p.p_obj, p.p_client, p.p_op.id, p.payload, p.triggered_at))
      w.pending_order
  in
  let responses =
    (* sb-lint: allow hashtbl-order — collected then sorted by ticket *)
    Hashtbl.fold (fun t r acc -> (t, r.d_obj, r.d_resp) :: acc) w.responses []
    |> List.sort (fun (a, _, _) (b, _, _) -> Int.compare a b)
  in
  let repr =
    ( Array.to_list w.objects,
      Array.to_list w.alive,
      clients,
      pendings,
      responses,
      w.next_ticket,
      w.next_op )
  in
  (* sb-lint: allow marshal — in-process replay digest; both sides of every comparison come from the same build, so the representation is shared *)
  Digest.to_hex (Digest.string (Marshal.to_string repr []))

(* ------------------------------------------------------------------ *)
(* Canonical state keys (for stateful exploration)                     *)
(* ------------------------------------------------------------------ *)

(* Ticket numbers depend on allocation order, so two interleavings that
   commute to the same logical state can name the same RMW differently.
   A live ticket (pending, or delivered-but-unconsumed) is canonically
   (client, op, object, rank), where rank orders same-key tickets by
   allocation — stable, because a fiber triggers its RMWs in program
   order. *)
let canonical_ids ?(rename = string_of_int) w =
  let entries =
    List.rev_map
      (fun t ->
        let p = Hashtbl.find w.pendings t in
        ((p.p_client, rename p.p_op.id, p.p_obj), t))
      w.pending_order
  in
  let entries =
    (* sb-lint: allow hashtbl-order — sorted below before ranks are assigned *)
    Hashtbl.fold
      (fun t (r : delivered) acc -> ((r.d_client, rename r.d_op, r.d_obj), t) :: acc)
      w.responses entries
  in
  let tbl = Hashtbl.create 32 in
  let rec assign prev rank = function
    | [] -> ()
    | (key, t) :: rest ->
      let rank = if prev = Some key then rank + 1 else 0 in
      let c, o, ob = key in
      Hashtbl.replace tbl t (c, o, ob, rank);
      assign (Some key) rank rest
  in
  (* sb-lint: allow poly-compare — canonical-key int/string tuples; structural order is the intended total order *)
  assign None 0 (List.sort compare entries);
  tbl

let canonical_of tbl t =
  match Hashtbl.find_opt tbl t with
  | Some (c, o, ob, r) -> Printf.sprintf "%d.%s.%d.%d" c o ob r
  | None -> "dead." ^ string_of_int t (* not live: conservative raw name *)

let canonical_decisions w ds =
  let tbl = canonical_ids w in
  List.map
    (function
      | Deliver t -> "d:" ^ canonical_of tbl t
      | Step c -> "s:" ^ string_of_int c
      | Crash_obj i -> "co:" ^ string_of_int i
      | Crash_client c -> "cc:" ^ string_of_int c
      | Halt -> "halt")
    ds

(* A digest of everything that determines the world's future behaviour
   (up to ticket renaming) AND the verdict of any history check on runs
   continuing from here:

   - object states, liveness bits, and per-client status / remaining
     queue / current op;
   - live RMWs and responses under canonical ticket names, with payloads
     and natures, plus whether a pending straggler is already consumed;
   - each client's consumed-response log: a fiber is a deterministic
     function of (algorithm, op kinds, prng state, responses consumed),
     so the log captures the fiber-local state — including its parked
     continuation and the closures of RMWs it has yet to trigger — that
     cannot be inspected directly;
   - the operation events emitted so far, without times.  Histories with
     the same event order get the same verdict from the order-based
     checkers, and all future events time-sort after all past ones.

   Deliberately excluded: the clock, ticket/op counters (renaming),
   round counters and byte maxima (metrics — a cached revisit may
   under-report them), and RMW delivery events (not part of the
   operation history). *)
(* Lexicographic normal form of the operation-event word under the
   commutation relation the checkers justify: two events commute unless
   one is an Invoke and the other a Return (swapping that adjacency
   flips a "return before invoke" precedence edge; invoke/invoke and
   return/return swaps preserve the relation, and crash markers are not
   consumed by the checkers at all).  Greedy selection of the least
   event whose earlier dependent events have all been emitted computes
   the unique lexicographically least word of the trace-equivalence
   class, so two histories canonicalize equally iff every order-based
   verdict agrees on them.  (A guarded bubble sort would not do: with
   crash markers commuting across both event kinds the swap relation
   has distinct local minima.) *)
let canonical_op_events evs =
  let dependent a b =
    match (a, b) with `I _, `R _ | `R _, `I _ -> true | _ -> false
  in
  let rec remove_first x = function
    | [] -> []
    | y :: rest -> if y = x then rest else y :: remove_first x rest
  in
  let rec emit acc word =
    match word with
    | [] -> List.rev acc
    | _ ->
      let best = ref None in
      let rec scan prefix = function
        | [] -> ()
        | x :: rest ->
          (if not (List.exists (dependent x) prefix) then
             match !best with
             (* sb-lint: allow poly-compare — structural order on first-order event variants is the lexicographic order defining the normal form *)
             | Some b when compare b x <= 0 -> ()
             | _ -> best := Some x);
          scan (x :: prefix) rest
      in
      scan [] word;
      (match !best with
       | None -> List.rev_append acc word (* unreachable: the head is available *)
       | Some x -> emit (x :: acc) (remove_first x word))
  in
  emit [] evs

(* Canonical, allocation-order-independent operation names.  Op ids are
   assigned globally at invocation, so two interleavings that merely
   reorder a pair of invocations number the same logical op differently
   — a renaming histories and verdicts never depend on.  The k-th op
   invoked by client [c] is canonically ["c_k"]: stable, because each
   client invokes its queue in program order. *)
let canonical_op_names w =
  let tbl = Hashtbl.create 16 and counts = Hashtbl.create 8 in
  List.iter
    (function
      | Trace.Invoke { op; client; _ } ->
        let k = Option.value ~default:0 (Hashtbl.find_opt counts client) in
        Hashtbl.replace counts client (k + 1);
        Hashtbl.replace tbl op (Printf.sprintf "%d_%d" client k)
      | _ -> ())
    (Trace.events w.tr);
  fun o ->
    match Hashtbl.find_opt tbl o with
    | Some name -> name
    | None -> "x" ^ string_of_int o (* never invoked: raw name is stable *)

let key_digest ~canonical_history w =
  let rename = if canonical_history then canonical_op_names w else string_of_int in
  let tbl = canonical_ids ~rename w in
  let status_code = function Idle -> 0 | Parked -> 1 | Runnable -> 2 | Crashed -> 3 in
  let nature_code = function `Mutating -> 0 | `Readonly -> 1 | `Merge -> 2 in
  let clients =
    Array.to_list w.clients
    |> List.map (fun cl ->
           ( status_code cl.status,
             cl.queue,
             (match cl.current_op with
              | Some op -> Some (rename op.id, op.kind)
              | None -> None),
             (match cl.waiting with
              | Some { w_tickets; w_quorum; _ } ->
                Some (List.map (canonical_of tbl) w_tickets, w_quorum)
              | None -> None),
             cl.consumed_log,
             (cl.c_prng : Sb_util.Prng.t) ))
  in
  let pendings =
    List.map
      (fun t ->
        let p = Hashtbl.find w.pendings t in
        ( canonical_of tbl t,
          p.payload,
          nature_code p.p_nature,
          Hashtbl.mem w.consumed t ))
      w.pending_order
    (* sb-lint: allow poly-compare — canonical-name tuples; structural order is the intended total order *)
    |> List.sort compare
  in
  let responses =
    (* sb-lint: allow hashtbl-order — collected then sorted *)
    Hashtbl.fold
      (fun t (r : delivered) acc -> (canonical_of tbl t, r.d_resp) :: acc)
      w.responses []
    (* sb-lint: allow poly-compare — canonical-name tuples; structural order is the intended total order *)
    |> List.sort compare
  in
  let history =
    List.filter_map
      (function
        | Trace.Invoke { op; client; kind; _ } -> Some (`I (rename op, client, kind))
        | Trace.Return { op; client; result; _ } -> Some (`R (rename op, client, result))
        | Trace.Crash_object { obj; _ } -> Some (`CO obj)
        | Trace.Recover_object { obj; _ } -> Some (`RO obj)
        | Trace.Crash_client { client; _ } -> Some (`CC client)
        | Trace.Rmw_trigger _ | Trace.Rmw_deliver _ -> None)
      (Trace.events w.tr)
  in
  let history = if canonical_history then canonical_op_events history else history in
  let repr =
    ( Array.to_list w.objects,
      Array.to_list w.alive,
      clients,
      pendings,
      responses,
      history )
  in
  (* sb-lint: allow marshal — this is the --paranoid-key cross-check the rule reserves Marshal for *)
  Digest.to_hex (Digest.string (Marshal.to_string repr []))

let exploration_key w = key_digest ~canonical_history:false w
let audit_key w = key_digest ~canonical_history:true w

(* The fast fingerprint: hashes exactly the information [key_digest
   ~canonical_history:false] marshals — canonical ticket names, raw op
   ids, object states, client state including the consumed-response log
   and prng, and the un-timed operation history — but streams it
   through [Hash128] instead of Marshal+MD5, with the two unbounded
   components (history, consumed logs) folded in O(1) from the
   maintained chains.  Marshal-key equality therefore implies
   state-hash equality; [test_modelcheck] checks that property over
   exhaustively enumerated prefixes, and the explorer's paranoid mode
   cross-checks it on every cached state. *)
let state_hash w =
  if not w.fingerprints then
    invalid_arg "Runtime.state_hash: world created with ~fingerprints:false";
  let h = H.create () in
  let tbl = canonical_ids w in
  Array.iter (hash_objstate h) w.objects;
  Array.iter (fun a -> H.add_int h (Bool.to_int a)) w.alive;
  Array.iter
    (fun cl ->
      H.add_int h (status_code cl.status);
      H.add_int h (List.length cl.queue);
      List.iter (hash_op_kind h) cl.queue;
      (match cl.current_op with
       | Some op ->
         H.add_int h 1;
         H.add_int h op.id;
         hash_op_kind h op.kind
       | None -> H.add_int h 0);
      (match cl.waiting with
       | Some { w_tickets; w_quorum; _ } ->
         H.add_int h 1;
         H.add_int h (List.length w_tickets);
         List.iter (fun t -> H.add_string h (canonical_of tbl t)) w_tickets;
         H.add_int h w_quorum
       | None -> H.add_int h 0);
      H.absorb h cl.log_h;
      let s0, s1, s2, s3 = Sb_util.Prng.state cl.c_prng in
      H.add_int64 h s0;
      H.add_int64 h s1;
      H.add_int64 h s2;
      H.add_int64 h s3)
    w.clients;
  (* Live tickets under canonical names, in name order — canonical
     names are unique per world, so this matches the sorted tuple
     order [key_digest] uses. *)
  let pendings =
    List.rev_map
      (fun t -> (canonical_of tbl t, Hashtbl.find w.pendings t))
      w.pending_order
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  H.add_int h (List.length pendings);
  List.iter
    (fun (name, (p : pending)) ->
      H.add_string h name;
      H.add_int h (List.length p.payload);
      List.iter (hash_block h) p.payload;
      H.add_int h (nature_code p.p_nature);
      H.add_int h (Bool.to_int (Hashtbl.mem w.consumed p.ticket)))
    pendings;
  let responses =
    (* sb-lint: allow hashtbl-order — collected then sorted by canonical name *)
    Hashtbl.fold
      (fun t (r : delivered) acc -> (canonical_of tbl t, r.d_resp) :: acc)
      w.responses []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  H.add_int h (List.length responses);
  List.iter
    (fun (name, r) ->
      H.add_string h name;
      hash_resp h r)
    responses;
  H.absorb h w.hist_h;
  H.digest h

let decision_to_string = function
  | Deliver t -> "deliver " ^ string_of_int t
  | Step c -> "step " ^ string_of_int c
  | Crash_obj i -> "crash-obj " ^ string_of_int i
  | Crash_client c -> "crash-client " ^ string_of_int c
  | Halt -> "halt"

let decision_of_string s =
  let fail () = Error (Printf.sprintf "unparseable decision %S" s) in
  match String.split_on_char ' ' (String.trim s) |> List.filter (( <> ) "") with
  | [ "halt" ] -> Stdlib.Ok Halt
  | [ verb; arg ] -> (
    match int_of_string_opt arg with
    | None -> fail ()
    | Some v -> (
      match verb with
      | "deliver" -> Stdlib.Ok (Deliver v)
      | "step" -> Stdlib.Ok (Step v)
      | "crash-obj" -> Stdlib.Ok (Crash_obj v)
      | "crash-client" -> Stdlib.Ok (Crash_client v)
      | _ -> fail ()))
  | _ -> fail ()

let pp_decision ppf d = Format.pp_print_string ppf (decision_to_string d)
