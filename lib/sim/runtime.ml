open Effect
open Effect.Deep

type resp = Ack | Snap of Sb_storage.Objstate.t
type rmw = Sb_storage.Objstate.t -> Sb_storage.Objstate.t * resp

type op = {
  id : int;
  client : int;
  kind : Trace.op_kind;
  mutable rounds : int;
}

type ctx = {
  self : int;
  op : op;
  n_objects : int;
  prng : Sb_util.Prng.t;
}

type algorithm = {
  name : string;
  init_obj : int -> Sb_storage.Objstate.t;
  write : ctx -> bytes -> unit;
  read : ctx -> bytes option;
}

(* ------------------------------------------------------------------ *)
(* Effects performed by protocol code                                  *)
(* ------------------------------------------------------------------ *)

type _ Effect.t +=
  | Trigger : int * Sb_storage.Block.t list * rmw -> int Effect.t
  | Await : int list * int -> (int * resp) list Effect.t

let trigger ~obj ~payload rmw = perform (Trigger (obj, payload, rmw))
let await ~tickets ~quorum = perform (Await (tickets, quorum))

let broadcast_rmw ~n ~payload f =
  List.init n (fun i -> trigger ~obj:i ~payload:(payload i) (f i))

(* ------------------------------------------------------------------ *)
(* World state                                                         *)
(* ------------------------------------------------------------------ *)

(* Result of running a client fiber until it blocks or finishes. *)
type fiber_outcome = Done of bytes option | Blocked

type client_status = Idle | Parked | Runnable | Crashed

type pending = {
  ticket : int;
  p_obj : int;
  p_client : int;
  p_op : op;
  payload : Sb_storage.Block.t list;
  p_rmw : rmw;
  triggered_at : int;
}

type pending_info = {
  ticket : int;
  p_obj : int;
  p_client : int;
  p_op : op;
  payload_bits : int;
  triggered_at : int;
}

type parked = {
  w_tickets : int list;
  w_quorum : int;
  w_k : ((int * resp) list, fiber_outcome) continuation;
}

type client = {
  cid : int;
  mutable queue : Trace.op_kind list;
  mutable status : client_status;
  mutable waiting : parked option;
  mutable current_op : op option;
  c_prng : Sb_util.Prng.t;
}

type world = {
  n : int;
  f : int;
  algorithm : algorithm;
  objects : Sb_storage.Objstate.t array;
  alive : bool array;
  clients : client array;
  pendings : (int, pending) Hashtbl.t;
  mutable pending_order : int list; (* tickets, newest first *)
  responses : (int, int * resp) Hashtbl.t;
  mutable next_ticket : int;
  mutable next_op : int;
  mutable now : int;
  tr : Trace.t;
  mutable all_ops : op list;
  mutable max_obj_bits : int;
  mutable max_total_bits : int;
  (* Set while a client fiber is executing, so the effect handler can
     attribute triggers to the right client and operation. *)
  mutable running : (client * op) option;
}

let create ?(seed = 1) ~algorithm ~n ~f ~workload () =
  if f < 0 || 2 * f >= n then
    invalid_arg "Runtime.create: need 0 <= f < n/2";
  let root_prng = Sb_util.Prng.create seed in
  let clients =
    Array.mapi
      (fun i ops ->
        {
          cid = i;
          queue = ops;
          status = Idle;
          waiting = None;
          current_op = None;
          c_prng = Sb_util.Prng.split root_prng;
        })
      workload
  in
  {
    n;
    f;
    algorithm;
    objects = Array.init n algorithm.init_obj;
    alive = Array.make n true;
    clients;
    pendings = Hashtbl.create 64;
    pending_order = [];
    responses = Hashtbl.create 64;
    next_ticket = 1;
    next_op = 1;
    now = 0;
    tr = Trace.create ();
    all_ops = [];
    max_obj_bits = 0;
    max_total_bits = 0;
    running = None;
  }

let enqueue_op w ~client kind =
  if client < 0 || client >= Array.length w.clients then
    invalid_arg "Runtime.enqueue_op: no such client";
  let cl = w.clients.(client) in
  if cl.status = Crashed then invalid_arg "Runtime.enqueue_op: client has crashed";
  cl.queue <- cl.queue @ [ kind ]

(* ------------------------------------------------------------------ *)
(* Introspection                                                       *)
(* ------------------------------------------------------------------ *)

let time w = w.now
let n_objects w = w.n
let f_tolerance w = w.f
let obj_state w i = w.objects.(i)
let obj_alive w i = w.alive.(i)
let obj_bits w i = if w.alive.(i) then Sb_storage.Objstate.bits w.objects.(i) else 0
let client_count w = Array.length w.clients
let client_status w c = w.clients.(c).status

let client_has_work w c =
  let cl = w.clients.(c) in
  cl.status = Idle && cl.queue <> []

let info_of_pending (p : pending) =
  {
    ticket = p.ticket;
    p_obj = p.p_obj;
    p_client = p.p_client;
    p_op = p.p_op;
    payload_bits = Sb_storage.Accounting.bits_of_blocks p.payload;
    triggered_at = p.triggered_at;
  }

let pending_rmws w =
  List.rev_map (fun t -> info_of_pending (Hashtbl.find w.pendings t)) w.pending_order

let outstanding_ops w =
  Array.to_list w.clients
  |> List.filter_map (fun cl ->
         if cl.status = Crashed then None else cl.current_op)

let all_ops w = List.rev w.all_ops

let max_read_rounds w =
  List.fold_left
    (fun acc (op : op) ->
      match op.kind with Trace.Read -> max acc op.rounds | Trace.Write _ -> acc)
    0 w.all_ops

let storage_bits_objects w =
  let acc = ref 0 in
  for i = 0 to w.n - 1 do
    if w.alive.(i) then acc := !acc + Sb_storage.Objstate.bits w.objects.(i)
  done;
  !acc

let inflight_bits w =
  Hashtbl.fold
    (fun _ (p : pending) acc ->
      if w.clients.(p.p_client).status = Crashed then acc
      else acc + Sb_storage.Accounting.bits_of_blocks p.payload)
    w.pendings 0

let storage_bits_total w = storage_bits_objects w + inflight_bits w

let visible_blocks_excluding w ~client =
  let obj_blocks =
    List.concat
      (List.init w.n (fun i ->
           if w.alive.(i) then Sb_storage.Objstate.blocks w.objects.(i) else []))
  in
  Hashtbl.fold
    (fun _ (p : pending) acc ->
      if p.p_client = client || w.clients.(p.p_client).status = Crashed then acc
      else p.payload @ acc)
    w.pendings obj_blocks

let op_contribution w (op : op) =
  Sb_storage.Accounting.contribution ~source:op.id
    (visible_blocks_excluding w ~client:op.client)

let max_bits_objects w = w.max_obj_bits
let max_bits_total w = w.max_total_bits
let trace w = w.tr

let update_maxima w =
  let ob = storage_bits_objects w in
  let tb = ob + inflight_bits w in
  if ob > w.max_obj_bits then w.max_obj_bits <- ob;
  if tb > w.max_total_bits then w.max_total_bits <- tb

(* ------------------------------------------------------------------ *)
(* Fiber machinery                                                     *)
(* ------------------------------------------------------------------ *)

let responses_for w tickets =
  List.filter_map (fun t -> Hashtbl.find_opt w.responses t) tickets

let await_satisfied w tickets quorum =
  let count =
    List.fold_left
      (fun acc t -> if Hashtbl.mem w.responses t then acc + 1 else acc)
      0 tickets
  in
  count >= quorum

(* The deep handler interpreting protocol effects against world [w] for
   client [cl] running operation [op]. *)
let handle_fiber w cl op (body : unit -> bytes option) : fiber_outcome =
  w.running <- Some (cl, op);
  let result =
    match_with body ()
      {
        retc = (fun r -> Done r);
        exnc = raise;
        effc =
          (fun (type b) (eff : b Effect.t) ->
            match eff with
            | Trigger (obj, payload, rmw) ->
              Some
                (fun (k : (b, fiber_outcome) continuation) ->
                  if obj < 0 || obj >= w.n then
                    invalid_arg "Runtime.trigger: no such object";
                  let ticket = w.next_ticket in
                  w.next_ticket <- ticket + 1;
                  let p =
                    {
                      ticket;
                      p_obj = obj;
                      p_client = cl.cid;
                      p_op = op;
                      payload;
                      p_rmw = rmw;
                      triggered_at = w.now;
                    }
                  in
                  Hashtbl.add w.pendings ticket p;
                  w.pending_order <- ticket :: w.pending_order;
                  Trace.add w.tr
                    (Rmw_trigger
                       {
                         time = w.now;
                         ticket;
                         op = op.id;
                         client = cl.cid;
                         obj;
                         payload_bits = Sb_storage.Accounting.bits_of_blocks payload;
                       });
                  continue k ticket)
            | Await (tickets, quorum) ->
              Some
                (fun (k : (b, fiber_outcome) continuation) ->
                  if await_satisfied w tickets quorum then
                    continue k (responses_for w tickets)
                  else begin
                    cl.waiting <- Some { w_tickets = tickets; w_quorum = quorum; w_k = k };
                    cl.status <- Parked;
                    Blocked
                  end)
            | _ -> None);
      }
  in
  w.running <- None;
  result

let finish_op w cl (op : op) result =
  cl.current_op <- None;
  cl.status <- Idle;
  Trace.add w.tr (Return { time = w.now; op = op.id; client = cl.cid; result })

let invoke_next w cl =
  match cl.queue with
  | [] -> invalid_arg "Runtime.step: client has no queued operation"
  | kind :: rest ->
    cl.queue <- rest;
    let op = { id = w.next_op; client = cl.cid; kind; rounds = 0 } in
    w.next_op <- w.next_op + 1;
    w.all_ops <- op :: w.all_ops;
    cl.current_op <- Some op;
    Trace.add w.tr (Invoke { time = w.now; op = op.id; client = cl.cid; kind });
    let ctx = { self = cl.cid; op; n_objects = w.n; prng = cl.c_prng } in
    let body () =
      match kind with
      | Trace.Write v ->
        w.algorithm.write ctx v;
        None
      | Trace.Read -> w.algorithm.read ctx
    in
    (match handle_fiber w cl op body with
     | Done result -> finish_op w cl op result
     | Blocked -> ())

let resume w cl =
  match cl.waiting with
  | None -> invalid_arg "Runtime.step: client is not waiting"
  | Some { w_tickets; w_quorum; w_k } ->
    if not (await_satisfied w w_tickets w_quorum) then
      invalid_arg "Runtime.step: client's quorum is not satisfied";
    cl.waiting <- None;
    cl.status <- Idle;
    let op = match cl.current_op with Some op -> op | None -> assert false in
    w.running <- Some (cl, op);
    let outcome = continue w_k (responses_for w w_tickets) in
    w.running <- None;
    (match outcome with
     | Done result -> finish_op w cl op result
     | Blocked -> ())

(* ------------------------------------------------------------------ *)
(* Scheduling                                                          *)
(* ------------------------------------------------------------------ *)

type decision =
  | Deliver of int
  | Step of int
  | Crash_obj of int
  | Crash_client of int
  | Halt

type policy = world -> decision

let deliverable w =
  List.rev
    (List.filter_map
       (fun t ->
         let p = Hashtbl.find w.pendings t in
         if w.alive.(p.p_obj) then Some (info_of_pending p) else None)
       w.pending_order)

let steppable w =
  Array.to_list w.clients
  |> List.filter_map (fun cl ->
         match cl.status with
         | Idle when cl.queue <> [] -> Some cl.cid
         | Runnable -> Some cl.cid
         | Parked -> (
           match cl.waiting with
           | Some { w_tickets; w_quorum; _ }
             when await_satisfied w w_tickets w_quorum ->
             Some cl.cid
           | _ -> None)
         | _ -> None)

let deliver w ticket =
  match Hashtbl.find_opt w.pendings ticket with
  | None -> invalid_arg "Runtime.step: unknown ticket"
  | Some p ->
    if not w.alive.(p.p_obj) then
      invalid_arg "Runtime.step: object has crashed; RMW cannot take effect";
    Hashtbl.remove w.pendings ticket;
    w.pending_order <- List.filter (fun t -> t <> ticket) w.pending_order;
    let state, resp = p.p_rmw w.objects.(p.p_obj) in
    w.objects.(p.p_obj) <- state;
    Trace.add w.tr (Rmw_deliver { time = w.now; ticket; obj = p.p_obj });
    let cl = w.clients.(p.p_client) in
    if cl.status <> Crashed then begin
      Hashtbl.replace w.responses ticket (p.p_obj, resp);
      match cl.status, cl.waiting with
      | Parked, Some { w_tickets; w_quorum; _ }
        when await_satisfied w w_tickets w_quorum ->
        cl.status <- Runnable
      | _ -> ()
    end

let crash_obj w i =
  if i < 0 || i >= w.n then invalid_arg "Runtime.step: no such object";
  if not w.alive.(i) then invalid_arg "Runtime.step: object already crashed";
  let crashed = Array.fold_left (fun acc a -> if a then acc else acc + 1) 0 w.alive in
  if crashed >= w.f then
    invalid_arg "Runtime.step: cannot crash more than f base objects";
  w.alive.(i) <- false;
  Trace.add w.tr (Crash_object { time = w.now; obj = i })

let crash_client w c =
  if c < 0 || c >= Array.length w.clients then
    invalid_arg "Runtime.step: no such client";
  let cl = w.clients.(c) in
  if cl.status = Crashed then invalid_arg "Runtime.step: client already crashed";
  cl.status <- Crashed;
  cl.waiting <- None;
  cl.queue <- [];
  Trace.add w.tr (Crash_client { time = w.now; client = c })

let step w decision =
  w.now <- w.now + 1;
  let continue_run =
    match decision with
    | Deliver ticket ->
      deliver w ticket;
      true
    | Step c ->
      let cl = w.clients.(c) in
      (match cl.status with
       | Crashed -> invalid_arg "Runtime.step: client has crashed"
       | Idle when cl.queue <> [] ->
         invoke_next w cl;
         true
       | Idle -> invalid_arg "Runtime.step: client has nothing to do"
       | Runnable ->
         resume w cl;
         true
       | Parked ->
         resume w cl;
         true)
    | Crash_obj i ->
      crash_obj w i;
      true
    | Crash_client c ->
      crash_client w c;
      true
    | Halt -> false
  in
  update_maxima w;
  continue_run

type outcome = { world : world; steps : int; halted : bool; quiescent : bool }

let quiescent w = deliverable w = [] && steppable w = []

let run ?(max_steps = 1_000_000) w policy =
  let rec go steps =
    if steps >= max_steps then { world = w; steps; halted = false; quiescent = false }
    else if quiescent w then { world = w; steps; halted = false; quiescent = true }
    else begin
      let decision = policy w in
      if step w decision then go (steps + 1)
      else { world = w; steps = steps + 1; halted = true; quiescent = false }
    end
  in
  update_maxima w;
  go 0

(* ------------------------------------------------------------------ *)
(* Built-in policies                                                   *)
(* ------------------------------------------------------------------ *)

let random_policy ?(crash_objs = []) ~seed () =
  let prng = Sb_util.Prng.create seed in
  let remaining = ref (List.sort compare crash_objs) in
  fun w ->
    match !remaining with
    | (t, obj) :: rest when time w >= t && obj_alive w obj ->
      remaining := rest;
      Crash_obj obj
    | _ ->
      let delivers = List.map (fun p -> Deliver p.ticket) (deliverable w) in
      let steps = List.map (fun c -> Step c) (steppable w) in
      let choices = Array.of_list (delivers @ steps) in
      if Array.length choices = 0 then Halt else Sb_util.Prng.pick prng choices

let fifo_policy () =
  fun w ->
    match deliverable w with
    | p :: _ -> Deliver p.ticket
    | [] -> (
      match steppable w with
      | c :: _ -> Step c
      | [] -> Halt)
