(** Deterministic simulator of the paper's system model (Section 2).

    The system consists of [n] base objects supporting atomic
    read-modify-write (RMW) and a set of clients running register
    emulation protocols.  Everything is asynchronous: a protocol
    {e triggers} RMWs, which {e take effect} atomically at a later point
    chosen by the scheduling policy, and awaits responses.  Any [f] base
    objects and any number of clients may crash.

    Protocol code runs in direct style on OCaml effects: {!trigger}
    registers a pending RMW and returns a ticket immediately; {!await}
    suspends the client until a quorum of responses has been scheduled.
    A {e policy} — the environment/adversary of the paper — picks every
    step: which pending RMW takes effect next, which client gets to run,
    and which components crash.  The lower-bound adversary Ad
    (Definition 7) is one such policy, implemented in [Sb_adversary]. *)

(** {1 RMW interface} *)

type resp =
  | Ack
  (** The RMW mutated the object and returns nothing. *)
  | Snap of Sb_storage.Objstate.t
  (** The RMW returns a snapshot of the object state (its value at the
      linearisation point of the RMW). *)

type rmw = Sb_storage.Objstate.t -> Sb_storage.Objstate.t * resp
(** An RMW maps the current object state to the new state plus a
    response; it is applied atomically when the policy delivers it. *)

(** {1 Operations and workloads} *)

type op = {
  id : int;
  client : int;
  kind : Trace.op_kind;
  mutable rounds : int;  (** Protocol-reported round count (diagnostics). *)
}

type ctx = {
  self : int;          (** Client id running the operation. *)
  op : op;             (** The operation being executed. *)
  n_objects : int;     (** Number of base objects [n]. *)
  prng : Sb_util.Prng.t;  (** Client-local deterministic randomness. *)
}

type algorithm = {
  name : string;
  init_obj : int -> Sb_storage.Objstate.t;
  (** [init_obj i] is the initial state of base object [bo_i]; algorithms
      seed it with blocks of the initial value [v0] (source op 0). *)
  write : ctx -> bytes -> unit;
  read : ctx -> bytes option;
  (** Protocol bodies, executed inside a client fiber; they may only
      interact with the world through {!trigger} and {!await}. *)
}

(** {1 Effects available to protocol code} *)

type _ Effect.t +=
  | Trigger : int * Sb_storage.Block.t list * rmw -> int Effect.t
  | Await : int list * int -> (int * resp) list Effect.t
      (** The raw protocol effects, exposed so that alternative runtimes
          (e.g. the message-passing emulation in [Sb_msgnet]) can install
          their own handlers and run the very same register protocol
          code. *)

val trigger : obj:int -> payload:Sb_storage.Block.t list -> rmw -> int
(** Triggers an RMW on base object [obj] and returns its ticket without
    waiting.  [payload] declares the code blocks carried by the RMW's
    parameters, which count towards the in-flight storage cost and the
    per-operation contribution of Definition 6. *)

val await : tickets:int list -> quorum:int -> (int * resp) list
(** Suspends until at least [quorum] of [tickets] have responses, then
    returns the [(object, response)] pairs received so far.  Responses to
    tickets outside the list are ignored (stragglers from earlier rounds
    are never delivered twice). *)

val broadcast_rmw :
  n:int -> payload:(int -> Sb_storage.Block.t list) -> (int -> rmw) -> int list
(** [broadcast_rmw ~n ~payload f] triggers [f i] on every object
    [i < n]; the standard "invoke RMWs on all base objects in parallel"
    idiom of the paper's algorithms. *)

(** {1 Worlds} *)

type world

type client_status =
  | Idle        (** No outstanding operation. *)
  | Parked      (** Awaiting a quorum that is not yet satisfied. *)
  | Runnable    (** Awaiting a quorum that is satisfied; a [Step] resumes it. *)
  | Crashed

type pending_info = {
  ticket : int;
  p_obj : int;
  p_client : int;
  p_op : op;
  payload_bits : int;
  triggered_at : int;
}

val create :
  ?seed:int ->
  algorithm:algorithm ->
  n:int ->
  f:int ->
  workload:Trace.op_kind list array ->
  unit ->
  world
(** A fresh world with [n] base objects and one client per workload
    entry; client [i] will perform the operations of [workload.(i)] in
    order, each invoked when the policy steps an idle client. *)

val enqueue_op : world -> client:int -> Trace.op_kind -> unit
(** Appends an operation to a live client's queue.  Lets layered
    services (e.g. the key-value store in [Sb_kv]) feed work to a world
    incrementally instead of declaring it all up front.  Raises
    [Invalid_argument] if the client is crashed or unknown. *)

(** {2 Introspection (for policies, adversaries and accounting)} *)

val time : world -> int
val n_objects : world -> int
val f_tolerance : world -> int
val obj_state : world -> int -> Sb_storage.Objstate.t
val obj_alive : world -> int -> bool
val obj_bits : world -> int -> int
(** Block bits currently stored at an object (0 if crashed). *)

val client_count : world -> int
val client_status : world -> int -> client_status
val client_has_work : world -> int -> bool
(** Idle with a non-empty operation queue. *)

val pending_rmws : world -> pending_info list
(** All triggered-but-not-yet-effective RMWs, oldest first, including
    those stuck on crashed objects. *)

val outstanding_ops : world -> op list
(** Operations invoked but not returned, by live clients. *)

val all_ops : world -> op list
(** Every operation invoked so far, in invocation order. *)

val max_read_rounds : world -> int
(** The largest protocol-reported round count over all read operations
    invoked so far (0 if none). *)

val storage_bits_objects : world -> int
(** Definition 2 restricted to live base objects. *)

val storage_bits_total : world -> int
(** Live base objects plus in-flight RMW payloads of live clients: the
    measure the lower bound is stated against (channels count,
    Section 3.2). *)

val op_contribution : world -> op -> int
(** [||S(t, w)||] (Definition 6): distinct-index block bits sourced from
    [w] in live object states and in pending payloads of clients other
    than [w]'s own. *)

val max_bits_objects : world -> int
val max_bits_total : world -> int
(** Running maxima of the two storage measures over the run so far — the
    paper's storage cost is the max over all times. *)

val trace : world -> Trace.t

(** {1 Scheduling} *)

type decision =
  | Deliver of int      (** Let pending RMW [ticket] take effect and respond. *)
  | Step of int         (** Let client [c] act: invoke its next queued
                            operation, or resume from a satisfied await. *)
  | Crash_obj of int
  | Crash_client of int
  | Halt                (** Stop the run. *)

type policy = world -> decision
(** The environment: called once per step with the current world. *)

val deliverable : world -> pending_info list
(** Pending RMWs on live objects, oldest first. *)

val steppable : world -> int list
(** Clients that a [Step] would advance. *)

val step : world -> decision -> bool
(** Executes one decision; returns [false] if the decision was [Halt].
    Raises [Invalid_argument] on decisions that are not enabled (e.g.
    delivering an unknown ticket or stepping a parked client). *)

type outcome = {
  world : world;
  steps : int;
  halted : bool;  (** The policy said [Halt] (otherwise the run ended by
                      quiescence or by exhausting [max_steps]). *)
  quiescent : bool;  (** No enabled actions remained. *)
}

val run : ?max_steps:int -> world -> policy -> outcome
(** Drives the world with the policy until the policy halts, no action is
    enabled, or [max_steps] (default [1_000_000]) decisions have been
    executed. *)

(** {2 Built-in policies} *)

val random_policy : ?crash_objs:(int * int) list -> seed:int -> unit -> policy
(** Picks uniformly among enabled actions (fair with probability 1).
    [crash_objs] optionally schedules object crashes as [(time, obj)]
    pairs. *)

val fifo_policy : unit -> policy
(** Deterministic: always delivers the oldest deliverable RMW; otherwise
    steps the lowest-numbered steppable client.  Produces an almost
    synchronous, failure-free run. *)
