(** Deterministic simulator of the paper's system model (Section 2).

    The system consists of [n] base objects supporting atomic
    read-modify-write (RMW) and a set of clients running register
    emulation protocols.  Everything is asynchronous: a protocol
    {e triggers} RMWs, which {e take effect} atomically at a later point
    chosen by the scheduling policy, and awaits responses.  Any [f] base
    objects and any number of clients may crash.

    Protocol code runs in direct style on OCaml effects: {!trigger}
    registers a pending RMW and returns a ticket immediately; {!await}
    suspends the client until a quorum of responses has been scheduled.
    A {e policy} — the environment/adversary of the paper — picks every
    step: which pending RMW takes effect next, which client gets to run,
    and which components crash.  The lower-bound adversary Ad
    (Definition 7) is one such policy, implemented in [Sb_adversary]. *)

(** {1 RMW interface} *)

type resp = Rmwdesc.resp =
  | Ack
  (** The RMW mutated the object and returns nothing. *)
  | Snap of Sb_storage.Objstate.t
  (** The RMW returns a snapshot of the object state (its value at the
      linearisation point of the RMW). *)

type rmw = Sb_storage.Objstate.t -> Sb_storage.Objstate.t * resp
(** An RMW maps the current object state to the new state plus a
    response; it is applied atomically when the policy delivers it. *)

(** {1 Operations and workloads} *)

type op = {
  id : int;
  client : int;
  kind : Trace.op_kind;
  mutable rounds : int;  (** Protocol-reported round count (diagnostics). *)
}

type ctx = {
  self : int;          (** Client id running the operation. *)
  op : op;             (** The operation being executed. *)
  n_objects : int;     (** Number of base objects [n]. *)
  prng : Sb_util.Prng.t;  (** Client-local deterministic randomness. *)
}

type algorithm = {
  name : string;
  init_obj : int -> Sb_storage.Objstate.t;
  (** [init_obj i] is the initial state of base object [bo_i]; algorithms
      seed it with blocks of the initial value [v0] (source op 0). *)
  write : ctx -> bytes -> unit;
  read : ctx -> bytes option;
  (** Protocol bodies, executed inside a client fiber; they may only
      interact with the world through {!trigger} and {!await}. *)
}

(** {1 Effects available to protocol code} *)

type rmw_nature = [ `Mutating | `Readonly | `Merge ]
(** How an RMW interacts with concurrent deliveries on the same object.
    [`Mutating] (the default) promises nothing.  [`Readonly] declares
    that the RMW never changes the object state (e.g. a snapshot read);
    the runtime exploits this twice: once the response can no longer be
    observed — the await that covered the ticket has returned, the
    issuing operation has completed, or the issuing client has crashed —
    the in-flight RMW is a no-op and is dropped instead of remaining
    deliverable, and the model checker treats read-only RMWs on the same
    object as commuting.  [`Merge] declares a commutative update:
    applying it and any other [`Merge] RMW on the same object in either
    order yields the same final state and the same two responses (e.g.
    ABD's join-semilattice "keep the higher timestamp" overwrite); the
    model checker then treats merge/merge delivery pairs as commuting.
    A wrong declaration is unsound — when in doubt use [`Mutating]. *)

type _ Effect.t +=
  | Trigger :
      int * Sb_storage.Block.t list * rmw * rmw_nature * Rmwdesc.t option
      -> int Effect.t
  | Await : int list * int -> (int * resp) list Effect.t
      (** The raw protocol effects, exposed so that alternative runtimes
          (e.g. the message-passing emulation in [Sb_msgnet], or the
          socket client in [Sb_service.Sdk]) can install their own
          handlers and run the very same register protocol code.  The
          optional {!Rmwdesc.t} is the RMW's serializable description:
          handlers that ship the RMW over a wire require it and apply
          [Rmwdesc.apply desc] remotely; the in-process handlers apply
          the closure and ignore it. *)

val trigger :
  ?nature:rmw_nature ->
  ?desc:Rmwdesc.t ->
  obj:int -> payload:Sb_storage.Block.t list -> rmw -> int
(** Triggers an RMW on base object [obj] and returns its ticket without
    waiting.  [payload] declares the code blocks carried by the RMW's
    parameters, which count towards the in-flight storage cost and the
    per-operation contribution of Definition 6.  [nature] defaults to
    [`Mutating]; see {!rmw_nature}.  [desc], when given, must satisfy
    [Rmwdesc.apply desc ≡ rmw] — the registers guarantee this by
    constructing the closure from the description. *)

val await : tickets:int list -> quorum:int -> (int * resp) list
(** Suspends until at least [quorum] of [tickets] have responses, then
    returns the [(object, response)] pairs received so far.  Responses to
    tickets outside the list are ignored (stragglers from earlier rounds
    are never delivered twice).

    Contract: a ticket must not be awaited again after an await covering
    it has returned — its undelivered read-only RMWs are dropped at that
    point.  Raises [Invalid_argument] on such re-use. *)

val broadcast_rmw :
  ?nature:rmw_nature ->
  ?desc:(int -> Rmwdesc.t) ->
  n:int -> payload:(int -> Sb_storage.Block.t list) -> (int -> rmw) -> int list
(** [broadcast_rmw ~n ~payload f] triggers [f i] on every object
    [i < n]; the standard "invoke RMWs on all base objects in parallel"
    idiom of the paper's algorithms.  [nature] and [desc] as in
    {!trigger}. *)

val broadcast_desc :
  ?nature:rmw_nature ->
  n:int ->
  payload:(int -> Sb_storage.Block.t list) -> (int -> Rmwdesc.t) -> int list
(** [broadcast_desc ~n ~payload d] triggers [Rmwdesc.apply (d i)] on
    every object [i < n] with [d i] attached as the description —
    the transport-agnostic broadcast the registers use.  [nature]
    defaults per-object to [Rmwdesc.default_nature (d i)]. *)

(** {1 Worlds} *)

type world

type client_status =
  | Idle        (** No outstanding operation. *)
  | Parked      (** Awaiting a quorum that is not yet satisfied. *)
  | Runnable    (** Awaiting a quorum that is satisfied; a [Step] resumes it. *)
  | Crashed

type pending_info = {
  ticket : int;
  p_obj : int;
  p_client : int;
  p_op : op;
  payload_bits : int;
  p_desc : Rmwdesc.t option;
  p_nature : rmw_nature;
  triggered_at : int;
}

val create :
  ?seed:int ->
  ?metrics:bool ->
  ?fingerprints:bool ->
  ?base_model:Sb_baseobj.Model.t ->
  ?byz:Sb_baseobj.Model.byz_policy ->
  algorithm:algorithm ->
  n:int ->
  f:int ->
  workload:Trace.op_kind list array ->
  unit ->
  world
(** A fresh world with [n] base objects and one client per workload
    entry; client [i] will perform the operations of [workload.(i)] in
    order, each invoked when the policy steps an idle client.
    [metrics] (default [true]) controls the per-step storage-maxima
    accounting behind {!max_bits_objects}/{!max_bits_total}; the model
    checker re-executes hundreds of millions of steps and turns it off,
    leaving those maxima at [0].  [fingerprints] (default [true])
    controls the incremental hash chains behind {!state_hash} — hashing
    consumed responses is a measurable per-step tax, so worlds that
    never extract a state hash (uncached exploration, plain simulation
    at scale) opt out; {!state_hash} then raises [Invalid_argument].

    [base_model] (default [Rmw]) selects the base-object interface
    ({!Sb_baseobj.Model.t}).  Under [Read_write], triggers are gated on
    their operation class (snapshot and blind overwrite only — a
    merge-class description raises [Sb_baseobj.Model.Error]), and
    delivery is per-(client, object) FIFO: each cell behaves like an
    atomic register behind a sequential channel, the sibling papers'
    interface (arXiv:1705.07212).  Under [Byzantine], [byz] supplies the
    seeded lying policy; [create] checks the policy fits the model's
    budget ({!Sb_baseobj.Model.check_policy}) but deliberately does not
    check [budget <= f] — negative controls run over-budget adversaries
    mechanically. *)

val enqueue_op : world -> client:int -> Trace.op_kind -> unit
(** Appends an operation to a live client's queue.  Lets layered
    services (e.g. the key-value store in [Sb_kv]) feed work to a world
    incrementally instead of declaring it all up front.  Raises
    [Invalid_argument] if the client is crashed or unknown. *)

(** {2 Introspection (for policies, adversaries and accounting)} *)

val time : world -> int
val n_objects : world -> int
val f_tolerance : world -> int

val base_model : world -> Sb_baseobj.Model.t
(** The base-object model this world was created with. *)

val byz_compromised : world -> int -> bool
(** Whether the Byzantine policy (if any) compromises object [o] —
    [false] everywhere without a policy.  Monitors use this to scope
    honest-object invariants. *)

val obj_state : world -> int -> Sb_storage.Objstate.t
val obj_alive : world -> int -> bool
val obj_bits : world -> int -> int
(** Block bits currently stored at an object (0 if crashed). *)

val client_count : world -> int
val client_status : world -> int -> client_status
val client_has_work : world -> int -> bool
(** Idle with a non-empty operation queue. *)

val pending_rmws : world -> pending_info list
(** All triggered-but-not-yet-effective RMWs, oldest first, including
    those stuck on crashed objects. *)

val outstanding_ops : world -> op list
(** Operations invoked but not returned, by live clients. *)

val all_ops : world -> op list
(** Every operation invoked so far, in invocation order. *)

val max_read_rounds : world -> int
(** The largest protocol-reported round count over all read operations
    invoked so far (0 if none). *)

val storage_bits_objects : world -> int
(** Definition 2 restricted to live base objects. *)

val storage_bits_total : world -> int
(** Live base objects plus in-flight RMW payloads of live clients: the
    measure the lower bound is stated against (channels count,
    Section 3.2). *)

val op_contribution : world -> op -> int
(** [||S(t, w)||] (Definition 6): distinct-index block bits sourced from
    [w] in live object states and in pending payloads of clients other
    than [w]'s own. *)

val max_bits_objects : world -> int
val max_bits_total : world -> int
(** Running maxima of the two storage measures over the run so far — the
    paper's storage cost is the max over all times. *)

val trace : world -> Trace.t

val invoke_events : world -> int
val return_events : world -> int
(** Number of [Invoke] (resp. [Return]) events emitted so far.  The
    model checker compares these across a [Step] to classify the step's
    history visibility — none (a pure round transition), invocation,
    return, or both — which widens its independence relation: the
    consistency checkers consume histories only through the precedence
    relation ("return before invocation"), so swapping two adjacent
    invocations, or two adjacent returns, of distinct clients preserves
    every verdict. *)

val last_step_awaits : world -> int list
(** The tickets whose responses the most recent [Step] decision read or
    started awaiting (consumed awaits plus awaits entered).  A [Deliver]
    of any other ticket cannot change that step's behaviour, which is
    what lets the model checker treat a delivery and a same-client step
    as independent when the ticket is not among them. *)

(** {1 Execution observers (sanitizer hooks)}

    Monitors (e.g. [Sb_sanitize]) subscribe to fine-grained execution
    events.  Events are deliberately richer than {!Trace.event}: a
    delivery exposes the RMW closure and the object states around it, an
    await its responder set — everything an online invariant checker
    needs and a post-hoc trace cannot reconstruct.  With no observers
    registered the emission sites cost one list check and allocate
    nothing. *)

type event =
  | E_invoke of { op : op }
  | E_return of { op : op; result : bytes option }
  | E_trigger of {
      ticket : int;
      obj : int;
      op : op;
      nature : rmw_nature;
      payload : Sb_storage.Block.t list;
      desc : Rmwdesc.t option;
          (** Serializable description of the triggered RMW, when the
              protocol supplied one (all registers do); lets observers
              compare protocol decisions across transports. *)
    }
  | E_deliver of {
      ticket : int;
      obj : int;
      client : int;
      op : int;
      nature : rmw_nature;
      rmw : rmw;  (** The applied closure, re-appliable by monitors: an
                      RMW must be a pure function of the object state. *)
      before : Sb_storage.Objstate.t;
      after : Sb_storage.Objstate.t;
      resp : resp;
      observable : bool;
          (** The response was recorded for a future await — [false] for
              stragglers of consumed awaits and crashed clients. *)
    }
  | E_await of {
      op : op;
      tickets : int list;
      quorum : int;
      responders : (int * resp) list;
          (** The [(object, response)] pairs the await returned. *)
    }
  | E_crash_obj of int
  | E_recover_obj of int * int
      (** [(obj, incarnation)]: a crashed base object rejoined with its
          durable state, now at the given incarnation number.  Only the
          message-passing runtime ([Sb_msgnet.Mp_runtime]) emits this;
          the shared-memory model is crash-stop. *)
  | E_crash_client of int

val add_observer : world -> (event -> unit) -> unit
(** Registers an event sink, called on every event in registration
    order.  Observers must not mutate the world.  Observers are not part
    of the {!fingerprint}/{!exploration_key} state, so instrumented and
    bare replays of the same decision trace reach identical digests. *)

(** {1 Scheduling} *)

type decision =
  | Deliver of int      (** Let pending RMW [ticket] take effect and respond. *)
  | Step of int         (** Let client [c] act: invoke its next queued
                            operation, or resume from a satisfied await. *)
  | Crash_obj of int
  | Crash_client of int
  | Halt                (** Stop the run. *)

type policy = world -> decision
(** The environment: called once per step with the current world. *)

val deliverable : world -> pending_info list
(** Pending RMWs on live objects, oldest first. *)

val steppable : world -> int list
(** Clients that a [Step] would advance. *)

val step : world -> decision -> bool
(** Executes one decision; returns [false] if the decision was [Halt].
    Raises [Invalid_argument] on decisions that are not enabled (e.g.
    delivering an unknown ticket or stepping a parked client). *)

type outcome = {
  world : world;
  steps : int;
  halted : bool;  (** The policy said [Halt] (otherwise the run ended by
                      quiescence or by exhausting [max_steps]). *)
  quiescent : bool;  (** No enabled actions remained. *)
}

val run : ?max_steps:int -> world -> policy -> outcome
(** Drives the world with the policy until the policy halts, no action is
    enabled, or [max_steps] (default [1_000_000]) decisions have been
    executed. *)

(** {2 Built-in policies} *)

val random_policy : ?crash_objs:(int * int) list -> seed:int -> unit -> policy
(** Picks uniformly among enabled actions (fair with probability 1).
    [crash_objs] optionally schedules object crashes as [(time, obj)]
    pairs. *)

val fifo_policy : unit -> policy
(** Deterministic: always delivers the oldest deliverable RMW; otherwise
    steps the lowest-numbered steppable client.  Produces an almost
    synchronous, failure-free run. *)

(** {2 Systematic exploration support}

    The model checker in [Sb_modelcheck] drives a world through {e all}
    schedules instead of one policy-chosen schedule.  It needs to ask
    which decisions are enabled without trying them, to re-execute a
    recorded decision trace, and to compare the states two executions
    reach. *)

val decision_enabled : world -> decision -> bool
(** Would {!step} accept this decision right now?  Exactly the
    [Invalid_argument] conditions of {!step}, as a predicate: a [Deliver]
    needs a pending RMW on a live object, a [Step] a steppable client, a
    [Crash_obj] a live object with crash budget ([< f]) remaining, a
    [Crash_client] a live client.  [Halt] is always enabled. *)

val replay : world -> decision list -> int
(** Re-executes a decision trace against a (fresh) world: applies each
    decision in order, {e skipping} any that is not enabled, and returns
    the number applied.  Skipping rather than failing is what makes
    counterexample shrinking work: deleting one decision from a trace may
    orphan later ones (a [Deliver] whose trigger never happened), and
    those simply fall away.  [Halt] decisions are skipped too.  Replaying
    the unmodified trace of a run against a world created with the same
    arguments reproduces it exactly — all decisions apply. *)

val fingerprint : world -> string
(** A digest (hex) of the logical world state: object states, liveness,
    client statuses/queues/waits, pending RMWs, responses, and allocation
    counters — everything observable, excluding closures and the clock.
    Two runs of the same decision trace from equal initial worlds must
    produce equal fingerprints; the determinism lint in [Sb_modelcheck]
    enforces this for every shipped algorithm. *)

val exploration_key : world -> string
(** A digest (hex) of the world's behavioural state: everything that
    determines future behaviour — up to renaming of tickets, which
    histories never mention — together with the operation events emitted
    so far (without timestamps; the order-based consistency checkers are
    invariant under order-preserving retiming).  Live tickets are named
    canonically by (client, op, object, allocation rank), and each
    client's fiber-local state is captured by its consumed-response log
    (a fiber is deterministic in the responses it has consumed).  Two
    worlds with equal keys admit the same continuations and assign every
    completed run the same verdict, so a stateful explorer may prune a
    revisited key.  Unlike {!fingerprint} this deliberately ignores
    clocks, allocation counters, and metrics such as round counters and
    storage maxima. *)

val audit_key : world -> string
(** Like {!exploration_key}, but the operation-event word is first
    rewritten to the lexicographic normal form of its trace-equivalence
    class under the commutation the checkers justify: invoke/invoke and
    return/return adjacencies commute, crash markers commute with
    everything (no checker consumes them), and only an invoke/return
    adjacency is order-significant (swapping it flips a precedence
    edge).  Two worlds get equal audit keys exactly when they agree on
    behavioural state {e and} on every order-based consistency verdict —
    the ground truth the independence audit in [Sb_sanitize] compares
    against, where strict {!exploration_key} equality would wrongly
    flag the verdict-preserving invocation/invocation swaps the
    explorer deliberately permits. *)

val state_hash : world -> string
(** A 16-byte binary fingerprint of exactly the information behind
    {!exploration_key}, computed with an incremental 128-bit hash
    instead of Marshal+MD5.  The two unbounded components — the
    operation history and each client's consumed-response log — are
    folded from chain hashes maintained as the world steps, so a key
    extraction touches only the live state and costs roughly a
    microsecond on explorer-sized worlds (vs ~15 µs for the Marshal
    key).  The cheaper key cuts the cache's overhead to roughly
    three-quarters of the Marshal version's — see EXPERIMENTS.md M1 for
    why it still ships off by default.  Requires a world created with
    [~fingerprints:true] (the default); raises [Invalid_argument]
    otherwise.

    Equal {!exploration_key}s imply equal [state_hash]es.  The converse
    holds only up to 128-bit collision probability; the explorer's
    paranoid mode ([Explore.config.paranoid_key]) cross-checks every
    cached state against the Marshal key. *)

val canonical_decisions : world -> decision list -> string list
(** The decisions' stable names under the same canonical ticket naming
    as {!exploration_key}, so decision sets can be compared across
    differently-numbered worlds that share a key (sleep sets in a
    stateful search). *)

(** {2 Decision serialisation}

    A stable one-line text form (["deliver 3"], ["step 1"],
    ["crash-obj 2"], ["crash-client 0"], ["halt"]) so shrunk
    counterexample traces can be printed, stored, and replayed through
    [spacebounds explore --replay]. *)

val decision_to_string : decision -> string
val decision_of_string : string -> (decision, string) result
val pp_decision : Format.formatter -> decision -> unit
