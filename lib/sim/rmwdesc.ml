open Sb_storage

type resp = Ack | Snap of Objstate.t
type rmw = Objstate.t -> Objstate.t * resp
type eviction = Barrier | Own_ts
type trim = Keep_all | Keep_newest of int

type t =
  | Snapshot
  | Abd_store of Chunk.t
  | Lww_store of Chunk.t
  | Safe_update of Chunk.t
  | Adaptive_update of {
      replicate : bool;
      eviction : eviction;
      trim : trim;
      k : int;
      piece : Block.t;
      replica_pieces : Block.t list;
      ts : Timestamp.t;
      stored_ts : Timestamp.t;
    }
  | Adaptive_gc of { piece : Block.t; ts : Timestamp.t }
  | Rateless_update of {
      pieces : Block.t list;
      ts : Timestamp.t;
      stored_ts : Timestamp.t;
    }
  | Rateless_gc of { pieces : Block.t list; ts : Timestamp.t }
  | Rw_write of { chunks : Chunk.t list; ts : Timestamp.t }

let apply_trim trim chunks =
  match trim with
  | Keep_all -> chunks
  | Keep_newest delta ->
    let sorted =
      List.sort
        (fun (a : Chunk.t) (b : Chunk.t) -> Timestamp.compare b.ts a.ts)
        chunks
    in
    List.filteri (fun i _ -> i <= delta) sorted

(* The RMW bodies below are THE protocol semantics: the register modules
   in [lib/registers] construct descriptions and close over
   [apply desc], the message-passing simulator carries the description
   in its messages, and the socket transport serializes it — all three
   execute exactly this code, so "simulator and real transport make
   identical protocol decisions" holds by construction rather than by
   testing. *)

(* Algorithm 2, line 16 / Algorithm 1: a read round samples the full
   object state and changes nothing. *)
let snapshot : rmw = fun st -> (st, Snap st)

(* ABD store: keep the lexicographically larger of (timestamp, chunk).
   The chunk tie-break matters: [Abd_atomic]'s read write-back
   re-encodes an existing timestamp under the original write's op id, so
   ties must break deterministically towards the existing chunk to stay
   a commuting [`Merge].  Idempotent by construction. *)
let abd_store chunk : rmw =
  fun st ->
    let keep =
      match st.Objstate.vf with
      | [ existing ] ->
        let c = Timestamp.compare existing.Chunk.ts chunk.Chunk.ts in
        (* sb-lint: allow poly-compare — deliberate structural tie-break among equal-timestamp chunks; any total order works, this one is the spec'd one *)
        c > 0 || (c = 0 && compare existing chunk >= 0)
      | _ -> false
    in
    let st =
      if keep then st
      else
        { st with
          vf = [ chunk ];
          stored_ts = Timestamp.max st.stored_ts chunk.Chunk.ts;
        }
    in
    (st, Ack)

(* Last-writer-wins overwrite: ignores the stored timestamp, so two
   concurrent stores do NOT commute — the delivery order decides which
   replica survives.  Used only by the mis-declared-merge seeded bug. *)
let lww_store chunk : rmw =
  fun st ->
    ( { st with
        Objstate.vf = [ chunk ];
        stored_ts = Timestamp.max st.Objstate.stored_ts chunk.Chunk.ts;
      },
      Ack )

(* Algorithm 5, lines 10-12: overwrite the single stored piece only if
   the incoming timestamp is strictly higher; idempotent conditional
   overwrite. *)
let safe_update chunk : rmw =
  fun st ->
    let current_ts =
      match st.Objstate.vp with [ c ] -> c.Chunk.ts | _ -> Timestamp.zero
    in
    let st =
      if Timestamp.(chunk.Chunk.ts <= current_ts) then st
      else { st with vp = [ chunk ] }
    in
    (st, Ack)

(* Algorithm 3, lines 32-39.  [replicate] selects between the paper's
   adaptive rule (switch to a full replica once Vp is saturated) and the
   unbounded purely-coded baseline; [Own_ts] eviction is the
   premature-GC seeded bug. *)
let adaptive_update ~replicate ~eviction ~trim ~k ~piece ~replica_pieces ~ts
    ~stored_ts : rmw =
  fun st ->
    if Timestamp.(ts <= st.Objstate.stored_ts) then (st, Ack)
    else begin
      let distinct_writes =
        List.length
          (List.sort_uniq Timestamp.compare
             (List.map (fun (c : Chunk.t) -> c.ts) st.vp))
      in
      let barrier = match eviction with Barrier -> stored_ts | Own_ts -> ts in
      let st =
        if (not replicate) || distinct_writes < k then
          let fresh =
            List.filter (fun (c : Chunk.t) -> Timestamp.(c.ts >= barrier)) st.vp
          in
          { st with
            Objstate.vp = apply_trim trim (Chunk.add (Chunk.v ~ts piece) fresh);
          }
        else if
          st.vf = []
          || List.exists (fun (c : Chunk.t) -> Timestamp.(c.ts < ts)) st.vf
        then
          (* Vp is saturated: store a full replica as k pieces. *)
          { st with Objstate.vf = List.map (fun p -> Chunk.v ~ts p) replica_pieces }
        else st
      in
      (Objstate.with_stored_ts st stored_ts, Ack)
    end

(* Algorithm 3, lines 40-45. *)
let adaptive_gc ~piece ~ts : rmw =
  fun st ->
    let keep = List.filter (fun (c : Chunk.t) -> Timestamp.(c.ts >= ts)) in
    let vp = keep st.Objstate.vp in
    let vf = keep st.vf in
    let vf =
      if List.exists (fun (c : Chunk.t) -> Timestamp.equal c.ts ts) vf then
        [ Chunk.v ~ts piece ]
      else vf
    in
    (Objstate.with_stored_ts { st with Objstate.vp; vf } ts, Ack)

(* Rateless store: all of one write's pieces for this object, evicting
   chunks staler than the round-1 barrier. *)
let rateless_update ~pieces ~ts ~stored_ts : rmw =
  fun st ->
    if Timestamp.(ts <= st.Objstate.stored_ts) then (st, Ack)
    else begin
      let fresh =
        List.filter (fun (c : Chunk.t) -> Timestamp.(c.ts >= stored_ts)) st.vp
      in
      let added = List.map (fun p -> Chunk.v ~ts p) pieces in
      let vp = Chunk.add_list added fresh in
      (Objstate.with_stored_ts { st with Objstate.vp } stored_ts, Ack)
    end

let rateless_gc ~pieces ~ts : rmw =
  fun st ->
    let keep = List.filter (fun (c : Chunk.t) -> Timestamp.(c.ts >= ts)) in
    let vp = keep st.Objstate.vp in
    let vp =
      if List.exists (fun (c : Chunk.t) -> Timestamp.equal c.ts ts) vp then
        List.filter (fun (c : Chunk.t) -> not (Timestamp.equal c.ts ts)) vp
        @ List.map (fun p -> Chunk.v ~ts p) pieces
      else vp
    in
    (Objstate.with_stored_ts { st with Objstate.vp } ts, Ack)

(* Blind overwrite — the whole interface a read/write base object offers
   besides [snapshot] (Chockler-Spiegelman, arXiv:1705.07212, Section 2).
   No condition, no merge: the cell becomes exactly the written content,
   timestamps included, and delivery order decides what survives.  The
   runtimes compensate with per-(client, object) FIFO delivery under the
   [Read_write] model — a base object there is an atomic register behind
   a sequential channel.  An empty [chunks] list is the "stub" overwrite
   the rw-replica register uses to trim non-keeper cells down to
   meta-data only. *)
let rw_write ~chunks ~ts : rmw =
  fun _st -> ({ Objstate.vf = chunks; vp = []; stored_ts = ts }, Ack)

let apply = function
  | Snapshot -> snapshot
  | Abd_store c -> abd_store c
  | Lww_store c -> lww_store c
  | Safe_update c -> safe_update c
  | Adaptive_update { replicate; eviction; trim; k; piece; replica_pieces; ts; stored_ts }
    ->
    adaptive_update ~replicate ~eviction ~trim ~k ~piece ~replica_pieces ~ts
      ~stored_ts
  | Adaptive_gc { piece; ts } -> adaptive_gc ~piece ~ts
  | Rateless_update { pieces; ts; stored_ts } -> rateless_update ~pieces ~ts ~stored_ts
  | Rateless_gc { pieces; ts } -> rateless_gc ~pieces ~ts
  | Rw_write { chunks; ts } -> rw_write ~chunks ~ts

let default_nature = function
  | Snapshot -> `Readonly
  | Abd_store _ -> `Merge
  | Lww_store _ | Safe_update _ | Adaptive_update _ | Adaptive_gc _
  | Rateless_update _ | Rateless_gc _ | Rw_write _ ->
    `Mutating

(* Operation classes the base-object models discriminate on: a
   [Read_write] base object accepts [Read] and [Overwrite] only; every
   conditional or merging description is [General] and RMW-only. *)
let op_class = function
  | Snapshot -> Sb_baseobj.Model.Read
  | Rw_write _ -> Sb_baseobj.Model.Overwrite
  | Abd_store _ | Lww_store _ | Safe_update _ | Adaptive_update _
  | Adaptive_gc _ | Rateless_update _ | Rateless_gc _ ->
    Sb_baseobj.Model.General

(* sb-lint: allow poly-compare — descs are first-order data (no closures); structural equality is the definition *)
let equal (a : t) (b : t) = a = b

let pp_chunk ppf (c : Chunk.t) =
  Format.fprintf ppf "%a#%d.%d" Timestamp.pp c.ts c.block.Block.source
    c.block.Block.index

let pp_block ppf (b : Block.t) = Format.fprintf ppf "#%d.%d" b.Block.source b.Block.index

let pp ppf = function
  | Snapshot -> Format.fprintf ppf "snapshot"
  | Abd_store c -> Format.fprintf ppf "abd-store(%a)" pp_chunk c
  | Lww_store c -> Format.fprintf ppf "lww-store(%a)" pp_chunk c
  | Safe_update c -> Format.fprintf ppf "safe-update(%a)" pp_chunk c
  | Adaptive_update { replicate; eviction; trim; k; piece; replica_pieces; ts; stored_ts }
    ->
    Format.fprintf ppf
      "adaptive-update(replicate=%b eviction=%s trim=%s k=%d piece=%a \
       replicas=[%a] ts=%a barrier=%a)"
      replicate
      (match eviction with Barrier -> "barrier" | Own_ts -> "own-ts")
      (match trim with
      | Keep_all -> "all"
      | Keep_newest d -> Printf.sprintf "newest(%d)" d)
      k pp_block piece
      (Format.pp_print_list ~pp_sep:Format.pp_print_space pp_block)
      replica_pieces Timestamp.pp ts Timestamp.pp stored_ts
  | Adaptive_gc { piece; ts } ->
    Format.fprintf ppf "adaptive-gc(%a ts=%a)" pp_block piece Timestamp.pp ts
  | Rateless_update { pieces; ts; stored_ts } ->
    Format.fprintf ppf "rateless-update([%a] ts=%a barrier=%a)"
      (Format.pp_print_list ~pp_sep:Format.pp_print_space pp_block)
      pieces Timestamp.pp ts Timestamp.pp stored_ts
  | Rateless_gc { pieces; ts } ->
    Format.fprintf ppf "rateless-gc([%a] ts=%a)"
      (Format.pp_print_list ~pp_sep:Format.pp_print_space pp_block)
      pieces Timestamp.pp ts
  | Rw_write { chunks; ts } ->
    Format.fprintf ppf "rw-write([%a] ts=%a)"
      (Format.pp_print_list ~pp_sep:Format.pp_print_space pp_chunk)
      chunks Timestamp.pp ts
