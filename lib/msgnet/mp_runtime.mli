(** Message-passing emulation of the fault-prone shared memory.

    The paper's base objects "typically reside at distinct storage nodes
    accessed over a network" (Section 1); this runtime makes that
    explicit.  Each base object is hosted by a {e server} node; a
    triggered RMW becomes a {e request} message, the RMW takes effect
    atomically when the server processes the request, and the result
    travels back as a {e response} message.  Channels are asynchronous
    and unordered; a scheduling policy picks every message delivery, so
    runs are deterministic and adversarial schedules are expressible.

    The register protocols of [Sb_registers] run {e unchanged} on this
    runtime: it installs its own handler for the {!Sb_sim.Runtime.Trigger}
    and {!Sb_sim.Runtime.Await} effects.

    Storage accounting here includes {e channel} contents — request
    payloads and the object-state snapshots carried by responses — which
    is exactly the cost the paper charges to algorithms that "shift the
    cost from storage nodes to the network and keep unbounded
    information in channels" (Section 3.2, discussing [5, 8]). *)

type world

type message_kind = Request | Response

type message_info = {
  msg_id : int;
  kind : message_kind;
  m_client : int;     (** The client end of the exchange. *)
  m_server : int;     (** The server (base object) end. *)
  m_ticket : int;
  m_op : int;         (** The operation the RMW belongs to. *)
  m_bits : int;       (** Code-block bits carried by the message. *)
  sent_at : int;
}

val create :
  ?seed:int ->
  ?fifo:bool ->
  algorithm:Sb_sim.Runtime.algorithm ->
  n:int ->
  f:int ->
  workload:Sb_sim.Trace.op_kind list array ->
  unit ->
  world
(** Same shape as {!Sb_sim.Runtime.create}: [n] servers each hosting one
    base object initialised by the algorithm, one client per workload
    entry.  [fifo] (default [false]) makes every client↔server channel
    deliver in sending order; the register algorithms are correct either
    way, which the test suite checks. *)

(** {1 Introspection} *)

val time : world -> int
val n_servers : world -> int
val f_tolerance : world -> int
val server_state : world -> int -> Sb_storage.Objstate.t
val server_alive : world -> int -> bool
val client_count : world -> int
val in_flight : world -> message_info list
(** Undelivered messages, oldest first. *)

val storage_bits_servers : world -> int
(** Block bits stored at live servers (Definition 2 on the nodes). *)

val storage_bits_channels : world -> int
(** Block bits currently travelling in channels — request payloads plus
    response snapshots. *)

val max_bits_servers : world -> int
val max_bits_channels : world -> int

val requests_sent : world -> int
val responses_sent : world -> int
(** Message counts over the whole run (communication-cost accounting:
    each protocol round costs [n] requests and up to [n] responses). *)

val outstanding_ops : world -> Sb_sim.Runtime.op list
(** Operations invoked but not returned by live clients. *)

val op_contribution : world -> Sb_sim.Runtime.op -> int
(** [||S(t, w)||] (Definition 6) over the message-passing world: blocks
    at live servers, request payloads in flight from clients other than
    [w]'s own, and blocks inside snapshot responses travelling in
    channels. *)

val trace : world -> Sb_sim.Trace.t

val add_observer : world -> (Sb_sim.Runtime.event -> unit) -> unit
(** Registers an execution-event sink, exactly as
    {!Sb_sim.Runtime.add_observer}: the message-passing runtime emits the
    same event vocabulary (servers play the object role; a request
    delivery is the RMW's take-effect point), so the [Sb_sanitize]
    monitors run unchanged on both runtimes. *)

(** {1 Scheduling} *)

type decision =
  | Deliver_msg of int   (** Deliver message [msg_id] to its destination:
                             a request takes effect at the server, a
                             response lands at the client. *)
  | Step of int          (** Advance client [c] (invoke or resume). *)
  | Crash_server of int
  | Crash_client of int
  | Halt

type policy = world -> decision

val deliverable : world -> message_info list
(** Messages whose destination is still alive, oldest first. *)

val steppable : world -> int list

val step : world -> decision -> bool
(** Executes one decision; [false] on [Halt]; raises [Invalid_argument]
    on decisions that are not enabled. *)

type outcome = { world : world; steps : int; halted : bool; quiescent : bool }

val run : ?max_steps:int -> world -> policy -> outcome

val random_policy : ?crash_servers:(int * int) list -> seed:int -> unit -> policy
(** Uniform over enabled actions; optionally crashes servers at the
    given [(time, server)] points. *)

val fifo_policy : unit -> policy
(** Always delivers the oldest deliverable message first: a synchronous,
    failure-free network. *)
