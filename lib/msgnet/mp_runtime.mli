(** Message-passing emulation of the fault-prone shared memory.

    The paper's base objects "typically reside at distinct storage nodes
    accessed over a network" (Section 1); this runtime makes that
    explicit.  Each base object is hosted by a {e server} node; a
    triggered RMW becomes a {e request} message, the RMW takes effect
    atomically when the server processes the request, and the result
    travels back as a {e response} message.  Channels are asynchronous
    and unordered; a scheduling policy picks every message delivery, so
    runs are deterministic and adversarial schedules are expressible.

    The register protocols of [Sb_registers] run {e unchanged} on this
    runtime: it installs its own handler for the {!Sb_sim.Runtime.Trigger}
    and {!Sb_sim.Runtime.Await} effects.

    Storage accounting here includes {e channel} contents — request
    payloads and the object-state snapshots carried by responses — which
    is exactly the cost the paper charges to algorithms that "shift the
    cost from storage nodes to the network and keep unbounded
    information in channels" (Section 3.2, discussing [5, 8]).

    {2 Fault plane}

    Beyond the paper's crash-stop model, the scheduling decisions expose
    a deterministic fault plane (driven by [Sb_faults]): message loss
    ({!decision.Drop_msg}), network-level duplication
    ({!decision.Duplicate_msg}), and server crash-{e recovery}
    ({!decision.Recover_server}).  A server's object state is durable
    across a crash; its at-most-once table is volatile, and it rejoins
    under a fresh {e incarnation} number.  Messages are stamped with the
    incarnation of the server side of their connection; a delivery whose
    stamp is stale is {e fenced} (discarded by the transport).  Client
    liveness under loss comes from opt-in sim-time retransmission timers
    with exponential backoff ({!create}'s [retransmit]); duplicates of a
    non-readonly request hit the server's at-most-once table — keyed
    [(client, ticket)] per incarnation — and re-send the recorded
    response instead of re-applying the RMW.  Re-application {e across}
    incarnations is possible (the table is volatile), which is why the
    register protocols' RMWs are idempotent. *)

type world

type message_kind = Request | Response

type message_info = {
  msg_id : int;
  kind : message_kind;
  m_client : int;     (** The client end of the exchange. *)
  m_server : int;     (** The server (base object) end. *)
  m_ticket : int;
  m_op : int;         (** The operation the RMW belongs to. *)
  m_bits : int;       (** Code-block bits carried by the message. *)
  m_desc : Sb_sim.Rmwdesc.t option;
      (** Serializable description of a request's RMW — what the socket
          transport ships over its wire. *)
  m_incarnation : int;
      (** The server incarnation this message's connection belongs to. *)
  sent_at : int;
}

type retransmit_config = Sb_service.Client_core.Retransmit.config = {
  rto : int;
      (** Initial retransmission timeout, in simulation steps ([> 0]). *)
  max_attempts : int;
      (** Give up after this many resends of one request; [0] retries
          forever (the op then stays outstanding until the run's step
          budget ends, and the liveness watchdog flags it). *)
}

type net_stats = {
  dropped : int;           (** [Drop_msg] losses. *)
  duplicated : int;        (** [Duplicate_msg] clones. *)
  retransmissions : int;   (** Timer-driven request resends. *)
  fenced : int;            (** Deliveries discarded for a stale incarnation. *)
  dedup_hits : int;        (** Duplicate requests answered from the
                               at-most-once table without re-applying. *)
  dropped_at_crash : int;  (** Requests lost in channels at server crashes. *)
  recoveries : int;        (** [Recover_server] events. *)
}

val create :
  ?seed:int ->
  ?fifo:bool ->
  ?dedup:bool ->
  ?retransmit:retransmit_config ->
  ?base_model:Sb_baseobj.Model.t ->
  ?byz:Sb_baseobj.Model.byz_policy ->
  algorithm:Sb_sim.Runtime.algorithm ->
  n:int ->
  f:int ->
  workload:Sb_sim.Trace.op_kind list array ->
  unit ->
  world
(** Same shape as {!Sb_sim.Runtime.create}: [n] servers each hosting one
    base object initialised by the algorithm, one client per workload
    entry.  [fifo] (default [false]) makes every client↔server channel
    deliver in sending order; the register algorithms are correct either
    way, which the test suite checks.  [dedup] (default [true]) arms the
    per-incarnation at-most-once table at servers; disabling it is a
    negative control that makes network duplicates re-apply RMWs (the
    [Sb_sanitize] monitors must object).  [retransmit] (default off)
    arms client-side retransmission timers; without it the runtime
    behaves exactly as the lossless crash-stop emulation unless a policy
    issues fault decisions.

    [base_model] (default [Rmw]) and [byz] mirror
    {!Sb_sim.Runtime.create}: under [Read_write] triggers are gated on
    operation class and request channels are forced FIFO (issue-order
    application per (client, server) pair, regardless of [fifo]); under
    [Byzantine] the policy decides per-request whether a compromised
    server answers honestly, acks without applying, or fabricates a
    state — bypassing the at-most-once table, since equivocation
    between retries is exactly what the model grants. *)

(** {1 Introspection} *)

val time : world -> int
val n_servers : world -> int
val f_tolerance : world -> int

val base_model : world -> Sb_baseobj.Model.t

val byz_compromised : world -> int -> bool
(** As {!Sb_sim.Runtime.byz_compromised}. *)

val server_state : world -> int -> Sb_storage.Objstate.t
val server_alive : world -> int -> bool

val server_incarnation : world -> int -> int
(** Starts at 1; incremented by every {!decision.Recover_server}. *)

val client_count : world -> int
val in_flight : world -> message_info list
(** Undelivered messages, oldest first. *)

val storage_bits_servers : world -> int
(** Block bits stored at live servers (Definition 2 on the nodes). *)

val storage_bits_channels : world -> int
(** Block bits currently travelling in channels — request payloads plus
    response snapshots.  Duplicates and retransmitted copies each count:
    the network cannot be used to hide storage (Section 3.2). *)

val max_bits_servers : world -> int
val max_bits_channels : world -> int

val max_bits_combined : world -> int
(** Running maximum of servers + channels at the same instant — the
    channel-inclusive storage cost a lower-bound check compares
    against. *)

val requests_sent : world -> int
val responses_sent : world -> int
(** Protocol messages sent over the whole run, retransmissions included,
    network-level duplicates excluded (communication-cost accounting:
    each protocol round costs [n] requests and up to [n] responses). *)

val net_stats : world -> net_stats
(** Fault-plane counters for this run so far. *)

val outstanding_ops : world -> Sb_sim.Runtime.op list
(** Operations invoked but not returned by live clients. *)

val op_contribution : world -> Sb_sim.Runtime.op -> int
(** [||S(t, w)||] (Definition 6) over the message-passing world: blocks
    at live servers, request payloads in flight from clients other than
    [w]'s own, and blocks inside snapshot responses travelling in
    channels. *)

val trace : world -> Sb_sim.Trace.t

val add_observer : world -> (Sb_sim.Runtime.event -> unit) -> unit
(** Registers an execution-event sink, exactly as
    {!Sb_sim.Runtime.add_observer}: the message-passing runtime emits the
    same event vocabulary (servers play the object role; a request
    delivery is the RMW's take-effect point), so the [Sb_sanitize]
    monitors run unchanged on both runtimes. *)

(** {1 Scheduling} *)

type decision =
  | Deliver_msg of int   (** Deliver message [msg_id] to its destination:
                             a request takes effect at the server, a
                             response lands at the client.  A delivery
                             with a stale incarnation stamp is fenced —
                             removed and counted, nothing applied. *)
  | Step of int          (** Advance client [c] (invoke or resume). *)
  | Drop_msg of int      (** The network loses message [msg_id]. *)
  | Duplicate_msg of int (** The network duplicates message [msg_id]. *)
  | Retransmit of int    (** Client resends the request for ticket [t];
                             enabled once its timer has expired. *)
  | Crash_server of int  (** Crash-stop until a matching
                             [Recover_server]; in-channel requests to the
                             server are lost, its at-most-once table is
                             cleared, its object state persists. *)
  | Recover_server of int(** The server rejoins with its durable object
                             state under a fresh incarnation. *)
  | Crash_client of int
  | Tick                 (** Let simulated time pass (e.g. towards a
                             retransmission deadline or a partition
                             heal).  Always enabled. *)
  | Halt

type policy = world -> decision

val deliverable : world -> message_info list
(** Messages whose destination is still alive, oldest first. *)

val steppable : world -> int list

val pending_retransmits : world -> int list
(** Tickets with a live retransmission timer: no response yet, owner
    alive and still executing its operation, retry budget remaining.
    The world is not {!quiescent} while any remain. *)

val due_retransmits : world -> int list
(** The subset of {!pending_retransmits} whose deadline has passed —
    the tickets a [Retransmit] decision would accept. *)

val step : world -> decision -> bool
(** Executes one decision; [false] on [Halt]; raises [Invalid_argument]
    on decisions that are not enabled.  In particular [Crash_server]
    raises once [f] servers are concurrently down (a recovery frees the
    budget). *)

type outcome = { world : world; steps : int; halted : bool; quiescent : bool }

val run : ?max_steps:int -> world -> policy -> outcome

val quiescent : world -> bool
(** Nothing deliverable, no client steppable, no retransmission
    pending. *)

val random_policy :
  ?crash_servers:(int * int) list ->
  ?recover_servers:(int * int) list ->
  seed:int ->
  unit ->
  policy
(** Uniform over enabled actions (including due retransmissions);
    optionally crashes servers at the given [(time, server)] points and
    recovers them at the given [(time, server)] points (a recovery fires
    at the first poll at or after its time at which the server is
    down).  Ticks when only future retransmission deadlines remain. *)

val fifo_policy : unit -> policy
(** Always delivers the oldest deliverable message first: a synchronous,
    failure-free network. *)
