open Effect.Deep
module R = Sb_sim.Runtime
module Trace = Sb_sim.Trace
module Objstate = Sb_storage.Objstate
module Score = Sb_service.Server_core
module Mailbox = Sb_service.Client_core.Mailbox
module Rt = Sb_service.Client_core.Retransmit

type message_kind = Request | Response

type message = {
  msg_id : int;
  kind : message_kind;
  m_client : int;
  m_server : int;
  m_ticket : int;
  m_op : int;
  (* Requests carry the RMW and its declared payload; responses carry
     the RMW's result. *)
  req : (R.rmw * Sb_storage.Block.t list) option;
  (* The RMW's serializable description, when the protocol supplied one.
     This is exactly what [Sb_service.Wire] puts on a real wire; the
     simulator carries it alongside the closure so the two transports
     ship identical requests. *)
  m_desc : Sb_sim.Rmwdesc.t option;
  resp : R.resp option;
  m_nature : R.rmw_nature;
  (* The destination server's incarnation when a request was (re)sent;
     the sending server's incarnation for a response.  Deliveries whose
     stamp no longer matches the server's current incarnation are
     fenced: the connection they travelled on died with the old
     incarnation. *)
  m_incarnation : int;
  sent_at : int;
}

type message_info = {
  msg_id : int;
  kind : message_kind;
  m_client : int;
  m_server : int;
  m_ticket : int;
  m_op : int;
  m_bits : int;
  m_desc : Sb_sim.Rmwdesc.t option;
  m_incarnation : int;
  sent_at : int;
}

type fiber_outcome = Done of bytes option | Blocked

type parked = {
  w_tickets : int list;
  w_quorum : int;
  w_k : ((int * R.resp) list, fiber_outcome) continuation;
}

type client = {
  cid : int;
  mutable queue : Trace.op_kind list;
  mutable crashed : bool;
  mutable waiting : parked option;
  mutable current_op : R.op option;
  c_prng : Sb_util.Prng.t;
}

(* The timer wheel itself lives in [Sb_service.Client_core], shared
   with the socket client; the retained request lives in client memory
   (uncharged by Definition 2, which counts block bits at base objects
   and in channels) — each resend puts a fresh copy of the payload on
   the wire, where it does count. *)
type retransmit_config = Rt.config = {
  rto : int;  (* initial timeout, in simulation steps *)
  max_attempts : int;  (* 0 = unbounded *)
}

type net_stats = {
  dropped : int;
  duplicated : int;
  retransmissions : int;
  fenced : int;
  dedup_hits : int;
  dropped_at_crash : int;
  recoveries : int;
}

type world = {
  n : int;
  f : int;
  fifo : bool;
  base_model : Sb_baseobj.Model.t;
  byz : Sb_baseobj.Model.byz_policy option;
  init_states : Objstate.t array;
  (* Pristine [init_obj] states for Byzantine stale-echo policies. *)
  retransmit : retransmit_config option;
  algorithm : R.algorithm;
  (* Each server is a [Sb_service.Server_core]: durable objstate,
     incarnation counter, and the volatile per-incarnation at-most-once
     table ((client, ticket) -> recorded response; the dedup key is
     morally (client, ticket, incarnation)).  RMWs re-applied across a
     recovery must be idempotent, which the register protocols
     guarantee and [Sb_sanitize] spot-checks.  The very same module
     serves requests in the socket daemons. *)
  servers : Score.t array;
  server_live : bool array;
  clients : client array;
  channel : (int, message) Hashtbl.t;
  mutable channel_order : int list; (* newest first *)
  responses : Mailbox.t;
  timers : message Rt.t; (* keyed by ticket *)
  mutable next_msg : int;
  mutable next_ticket : int;
  mutable next_op : int;
  mutable now : int;
  tr : Trace.t;
  mutable max_server_bits : int;
  mutable max_channel_bits : int;
  mutable max_combined_bits : int;
  mutable requests_sent : int;
  mutable responses_sent : int;
  mutable dropped : int;
  mutable duplicated : int;
  mutable retransmissions : int;
  mutable fenced : int;
  mutable dedup_hits : int;
  mutable dropped_at_crash : int;
  mutable recoveries : int;
  mutable observers : (R.event -> unit) list;
  (* Same contract as [Runtime.add_observer]: monitors consume the
     shared-memory event vocabulary, with servers in the object role. *)
}

let resp_bits = function
  | R.Ack -> 0
  | R.Snap st -> Objstate.bits st

let message_bits m =
  match (m.req, m.resp) with
  | Some (_, payload), _ -> Sb_storage.Accounting.bits_of_blocks payload
  | None, Some resp -> resp_bits resp
  | None, None -> 0

let info_of (m : message) : message_info =
  {
    msg_id = m.msg_id;
    kind = m.kind;
    m_client = m.m_client;
    m_server = m.m_server;
    m_ticket = m.m_ticket;
    m_op = m.m_op;
    m_bits = message_bits m;
    m_desc = m.m_desc;
    m_incarnation = m.m_incarnation;
    sent_at = m.sent_at;
  }

let create ?(seed = 1) ?(fifo = false) ?(dedup = true) ?retransmit
    ?(base_model = Sb_baseobj.Model.Rmw) ?byz ~algorithm ~n ~f ~workload () =
  if f < 0 || 2 * f >= n then invalid_arg "Mp_runtime.create: need 0 <= f < n/2";
  (match byz with
  | Some policy -> Sb_baseobj.Model.check_policy base_model ~n policy
  | None -> ());
  (match retransmit with
   | Some { rto; _ } when rto <= 0 ->
     invalid_arg "Mp_runtime.create: retransmission timeout must be positive"
   | _ -> ());
  let root = Sb_util.Prng.create seed in
  {
    n;
    f;
    fifo;
    base_model;
    byz;
    init_states = Array.init n algorithm.R.init_obj;
    retransmit;
    algorithm;
    servers = Array.init n (fun i -> Score.create ~dedup (algorithm.R.init_obj i));
    server_live = Array.make n true;
    clients =
      Array.mapi
        (fun i ops ->
          {
            cid = i;
            queue = ops;
            crashed = false;
            waiting = None;
            current_op = None;
            c_prng = Sb_util.Prng.split root;
          })
        workload;
    channel = Hashtbl.create 64;
    channel_order = [];
    responses = Mailbox.create ();
    timers = Rt.create ();
    next_msg = 1;
    next_ticket = 1;
    next_op = 1;
    now = 0;
    tr = Trace.create ();
    max_server_bits = 0;
    max_channel_bits = 0;
    max_combined_bits = 0;
    requests_sent = 0;
    responses_sent = 0;
    dropped = 0;
    duplicated = 0;
    retransmissions = 0;
    fenced = 0;
    dedup_hits = 0;
    dropped_at_crash = 0;
    recoveries = 0;
    observers = [];
  }

let add_observer w f = w.observers <- w.observers @ [ f ]
let observed w = w.observers <> []
let emit w ev = List.iter (fun f -> f ev) w.observers

(* ------------------------------------------------------------------ *)
(* Introspection                                                       *)
(* ------------------------------------------------------------------ *)

let time w = w.now
let n_servers w = w.n
let f_tolerance w = w.f
let base_model w = w.base_model

let byz_compromised w o =
  match w.byz with
  | Some bp -> bp.Sb_baseobj.Model.bp_compromised o
  | None -> false
let server_state w i = Score.state w.servers.(i)
let server_alive w i = w.server_live.(i)
let server_incarnation w i = Score.incarnation w.servers.(i)
let client_count w = Array.length w.clients

let in_flight w =
  List.rev_map (fun id -> info_of (Hashtbl.find w.channel id)) w.channel_order

let storage_bits_servers w =
  let acc = ref 0 in
  for i = 0 to w.n - 1 do
    if w.server_live.(i) then acc := !acc + Score.storage_bits w.servers.(i)
  done;
  !acc

let storage_bits_channels w =
  (* sb-lint: allow hashtbl-order — commutative sum of message bits *)
  Hashtbl.fold (fun _ m acc -> acc + message_bits m) w.channel 0

let max_bits_servers w = w.max_server_bits
let max_bits_channels w = w.max_channel_bits
let max_bits_combined w = w.max_combined_bits

let net_stats w =
  {
    dropped = w.dropped;
    duplicated = w.duplicated;
    retransmissions = w.retransmissions;
    fenced = w.fenced;
    dedup_hits = w.dedup_hits;
    dropped_at_crash = w.dropped_at_crash;
    recoveries = w.recoveries;
  }

let outstanding_ops w =
  Array.to_list w.clients
  |> List.filter_map (fun cl -> if cl.crashed then None else cl.current_op)

(* ||S(t,w)|| over the message-passing world: blocks at live servers,
   request payloads in flight from clients other than w's own, and
   blocks inside snapshot responses travelling in channels. *)
let visible_blocks_excluding w ~client =
  let server_blocks =
    List.concat
      (List.init w.n (fun i ->
           if w.server_live.(i) then Objstate.blocks (Score.state w.servers.(i))
           else []))
  in
  (* sb-lint: allow hashtbl-order — feeds Accounting.contribution, an order-insensitive index-set sum *)
  Hashtbl.fold
    (fun _ (m : message) acc ->
      match (m.req, m.resp) with
      | Some (_, payload), _ ->
        if m.m_client = client || w.clients.(m.m_client).crashed then acc
        else payload @ acc
      | None, Some (R.Snap st) -> Objstate.blocks st @ acc
      | None, _ -> acc)
    w.channel server_blocks

let op_contribution w (op : R.op) =
  Sb_storage.Accounting.contribution ~source:op.R.id
    (visible_blocks_excluding w ~client:op.R.client)
let requests_sent w = w.requests_sent
let responses_sent w = w.responses_sent
let trace w = w.tr

let update_maxima w =
  let s = storage_bits_servers w in
  let c = storage_bits_channels w in
  if s > w.max_server_bits then w.max_server_bits <- s;
  if c > w.max_channel_bits then w.max_channel_bits <- c;
  if s + c > w.max_combined_bits then w.max_combined_bits <- s + c

(* ------------------------------------------------------------------ *)
(* Retransmission timers                                               *)
(* ------------------------------------------------------------------ *)

let timer_live w ticket (t : message Rt.timer) =
  (not (Mailbox.has w.responses ticket))
  && (match w.retransmit with
     | None -> false
     | Some rc -> Rt.within_budget rc t)
  &&
  let cl = w.clients.(t.Rt.owner) in
  (not cl.crashed) && cl.current_op <> None

let pending_retransmits w = Rt.pending w.timers ~live:(timer_live w)
let due_retransmits w = Rt.due w.timers ~now:w.now ~live:(timer_live w)
let clear_timers w tickets = Rt.cancel_list w.timers tickets

(* ------------------------------------------------------------------ *)
(* Fibers: interpret the shared-memory effects over messages           *)
(* ------------------------------------------------------------------ *)

let responses_for w tickets = Mailbox.responses_for w.responses ~tickets
let await_satisfied w tickets quorum =
  Mailbox.satisfied w.responses ~tickets ~quorum

let send w (msg : message) =
  (match msg.kind with
   | Request -> w.requests_sent <- w.requests_sent + 1
   | Response -> w.responses_sent <- w.responses_sent + 1);
  Hashtbl.add w.channel msg.msg_id msg;
  w.channel_order <- msg.msg_id :: w.channel_order

let handle_fiber w (cl : client) (op : R.op) (body : unit -> bytes option) :
    fiber_outcome =
  match_with body ()
    {
      retc = (fun r -> Done r);
      exnc = raise;
      effc =
        (fun (type b) (eff : b Effect.t) ->
          match eff with
          | R.Trigger (obj, payload, rmw, nature, desc) ->
            Some
              (fun (k : (b, fiber_outcome) continuation) ->
                if obj < 0 || obj >= w.n then
                  invalid_arg "Mp_runtime: no such server";
                Sb_baseobj.Model.check_op w.base_model
                  (Option.map Sb_sim.Rmwdesc.op_class desc);
                let ticket = w.next_ticket in
                w.next_ticket <- ticket + 1;
                let msg_id = w.next_msg in
                w.next_msg <- msg_id + 1;
                let msg =
                  {
                    msg_id;
                    kind = Request;
                    m_client = cl.cid;
                    m_server = obj;
                    m_ticket = ticket;
                    m_op = op.R.id;
                    req = Some (rmw, payload);
                    m_desc = desc;
                    resp = None;
                    m_nature = nature;
                    m_incarnation = Score.incarnation w.servers.(obj);
                    sent_at = w.now;
                  }
                in
                send w msg;
                (match w.retransmit with
                 | Some rc ->
                   Rt.arm w.timers ~ticket ~owner:cl.cid
                     ~deadline:(w.now + rc.rto) msg
                 | None -> ());
                Trace.add w.tr
                  (Rmw_trigger
                     {
                       time = w.now;
                       ticket;
                       op = op.R.id;
                       client = cl.cid;
                       obj;
                       payload_bits = Sb_storage.Accounting.bits_of_blocks payload;
                     });
                if observed w then
                  emit w (R.E_trigger { ticket; obj; op; nature; payload; desc });
                continue k ticket)
          | R.Await (tickets, quorum) ->
            Some
              (fun (k : (b, fiber_outcome) continuation) ->
                if await_satisfied w tickets quorum then begin
                  let rs = responses_for w tickets in
                  clear_timers w tickets;
                  if observed w then
                    emit w (R.E_await { op; tickets; quorum; responders = rs });
                  continue k rs
                end
                else begin
                  cl.waiting <- Some { w_tickets = tickets; w_quorum = quorum; w_k = k };
                  Blocked
                end)
          | _ -> None);
    }

let finish_op w cl (op : R.op) result =
  cl.current_op <- None;
  Trace.add w.tr (Return { time = w.now; op = op.R.id; client = cl.cid; result });
  if observed w then emit w (R.E_return { op; result })

let invoke_next w cl =
  match cl.queue with
  | [] -> invalid_arg "Mp_runtime.step: client has no queued operation"
  | kind :: rest ->
    cl.queue <- rest;
    let op = { R.id = w.next_op; client = cl.cid; kind; rounds = 0 } in
    w.next_op <- w.next_op + 1;
    cl.current_op <- Some op;
    Trace.add w.tr (Invoke { time = w.now; op = op.R.id; client = cl.cid; kind });
    if observed w then emit w (R.E_invoke { op });
    let ctx = { R.self = cl.cid; op; n_objects = w.n; prng = cl.c_prng } in
    let body () =
      match kind with
      | Trace.Write v ->
        w.algorithm.R.write ctx v;
        None
      | Trace.Read -> w.algorithm.R.read ctx
    in
    (match handle_fiber w cl op body with
     | Done result -> finish_op w cl op result
     | Blocked -> ())

let resume w cl =
  match cl.waiting with
  | None -> invalid_arg "Mp_runtime.step: client is not waiting"
  | Some { w_tickets; w_quorum; w_k } ->
    if not (await_satisfied w w_tickets w_quorum) then
      invalid_arg "Mp_runtime.step: client's quorum is not satisfied";
    cl.waiting <- None;
    let op = match cl.current_op with Some op -> op | None -> assert false in
    let rs = responses_for w w_tickets in
    clear_timers w w_tickets;
    if observed w then
      emit w (R.E_await { op; tickets = w_tickets; quorum = w_quorum; responders = rs });
    (match continue w_k rs with
     | Done result -> finish_op w cl op result
     | Blocked -> ())

(* ------------------------------------------------------------------ *)
(* Scheduling                                                          *)
(* ------------------------------------------------------------------ *)

type decision =
  | Deliver_msg of int
  | Step of int
  | Drop_msg of int
  | Duplicate_msg of int
  | Retransmit of int
  | Crash_server of int
  | Recover_server of int
  | Crash_client of int
  | Tick
  | Halt

type policy = world -> decision

let destination_alive w (m : message) =
  match m.kind with
  | Request -> w.server_live.(m.m_server)
  | Response -> not w.clients.(m.m_client).crashed

(* Channel identity: messages between the same (client, server) pair in
   the same direction share a channel; FIFO mode only exposes the oldest
   undelivered message on each channel. *)
let channel_key (m : message) = (m.kind, m.m_client, m.m_server)

(* The read/write base-object model guarantees per-(client, object)
   issue-order application regardless of the configured transport mode:
   request channels are forced FIFO so a straggling blind overwrite can
   never roll a cell backwards past a newer write on the same channel.
   Response channels stay free to reorder. *)
let fifo_channel w (m : message) =
  w.fifo || (Sb_baseobj.Model.fifo_writes w.base_model && m.kind = Request)

let head_of_channel w (m : message) =
  List.for_all
    (fun id ->
      let m' = Hashtbl.find w.channel id in
      channel_key m' <> channel_key m || m'.msg_id >= m.msg_id)
    w.channel_order

let deliverable w =
  List.rev
    (List.filter_map
       (fun id ->
         let m = Hashtbl.find w.channel id in
         if
           destination_alive w m
           && ((not (fifo_channel w m)) || head_of_channel w m)
         then Some (info_of m)
         else None)
       w.channel_order)

let steppable w =
  Array.to_list w.clients
  |> List.filter_map (fun cl ->
         if cl.crashed then None
         else
           match (cl.current_op, cl.waiting) with
           | None, _ when cl.queue <> [] -> Some cl.cid
           | Some _, Some { w_tickets; w_quorum; _ }
             when await_satisfied w w_tickets w_quorum ->
             Some cl.cid
           | _ -> None)

let remove_msg w id =
  Hashtbl.remove w.channel id;
  w.channel_order <- List.filter (fun i -> i <> id) w.channel_order

let fresh_msg_id w =
  let id = w.next_msg in
  w.next_msg <- id + 1;
  id

let send_response w ~(to_request : message) resp =
  if not w.clients.(to_request.m_client).crashed then
    send w
      {
        msg_id = fresh_msg_id w;
        kind = Response;
        m_client = to_request.m_client;
        m_server = to_request.m_server;
        m_ticket = to_request.m_ticket;
        m_op = to_request.m_op;
        req = None;
        m_desc = None;
        resp = Some resp;
        m_nature = to_request.m_nature;
        m_incarnation = Score.incarnation w.servers.(to_request.m_server);
        sent_at = w.now;
      }

let deliver_msg w id =
  match Hashtbl.find_opt w.channel id with
  | None -> invalid_arg "Mp_runtime.step: unknown message"
  | Some m -> (
    if not (destination_alive w m) then
      invalid_arg "Mp_runtime.step: destination has crashed";
    if fifo_channel w m && not (head_of_channel w m) then
      invalid_arg "Mp_runtime.step: FIFO channel, an older message is pending";
    remove_msg w id;
    (* Incarnation fencing: the message travelled on a connection to (or
       from) a server incarnation that has since crashed; the transport
       of the new incarnation discards it.  Retransmission re-sends the
       request stamped with the live incarnation. *)
    if m.m_incarnation <> Score.incarnation w.servers.(m.m_server) then
      w.fenced <- w.fenced + 1
    else
      match m.kind with
      | Request -> (
        let rmw, _payload =
          match m.req with Some r -> r | None -> assert false
        in
        (* A compromised server lies instead of consulting the server
           core: it acknowledges without applying, or fabricates a
           well-formed state.  The lie bypasses the at-most-once table
           on purpose — equivocation between retries is exactly the
           behaviour the Byzantine model grants. *)
        let lie =
          match w.byz with
          | Some bp when bp.Sb_baseobj.Model.bp_compromised m.m_server ->
            let cls =
              match m.m_desc with
              | Some d -> Sb_sim.Rmwdesc.op_class d
              | None -> Sb_baseobj.Model.General
            in
            bp.Sb_baseobj.Model.bp_act ~obj:m.m_server ~client:m.m_client
              ~cls
              ~before:(Score.state w.servers.(m.m_server))
              ~init:w.init_states.(m.m_server)
          | _ -> Sb_baseobj.Model.Honest
        in
        match lie with
        | Sb_baseobj.Model.Drop_write | Sb_baseobj.Model.Fabricate _ ->
          let st = Score.state w.servers.(m.m_server) in
          let resp =
            match lie with
            | Sb_baseobj.Model.Fabricate fake -> R.Snap fake
            | _ -> R.Ack
          in
          Trace.add w.tr
            (Rmw_deliver { time = w.now; ticket = m.m_ticket; obj = m.m_server });
          if observed w then
            emit w
              (R.E_deliver
                 {
                   ticket = m.m_ticket;
                   obj = m.m_server;
                   client = m.m_client;
                   op = m.m_op;
                   nature = m.m_nature;
                   rmw;
                   before = st;
                   after = st;
                   resp;
                   observable = not w.clients.(m.m_client).crashed;
                 });
          send_response w ~to_request:m resp
        | Sb_baseobj.Model.Honest ->
        (* The shared server core either answers from the at-most-once
           table (a duplicate within this incarnation: network
           duplication or retransmission; the RMW is not re-applied) or
           applies the RMW atomically now and records its response. *)
        let oc =
          Score.handle w.servers.(m.m_server) ~client:m.m_client
            ~ticket:m.m_ticket ~nature:m.m_nature rmw
        in
        if oc.Score.dedup_hit then begin
          w.dedup_hits <- w.dedup_hits + 1;
          send_response w ~to_request:m oc.Score.resp
        end
        else begin
          Trace.add w.tr
            (Rmw_deliver { time = w.now; ticket = m.m_ticket; obj = m.m_server });
          if observed w then
            emit w
              (R.E_deliver
                 {
                   ticket = m.m_ticket;
                   obj = m.m_server;
                   client = m.m_client;
                   op = m.m_op;
                   nature = m.m_nature;
                   rmw;
                   before = oc.Score.before;
                   after = oc.Score.after;
                   resp = oc.Score.resp;
                   observable = not w.clients.(m.m_client).crashed;
                 });
          send_response w ~to_request:m oc.Score.resp
        end)
      | Response ->
        let resp = match m.resp with Some r -> r | None -> assert false in
        Mailbox.record w.responses ~ticket:m.m_ticket ~obj:m.m_server resp;
        Rt.cancel w.timers m.m_ticket)

let step w decision =
  w.now <- w.now + 1;
  let continue_run =
    match decision with
    | Deliver_msg id ->
      deliver_msg w id;
      true
    | Step c ->
      let cl = w.clients.(c) in
      if cl.crashed then invalid_arg "Mp_runtime.step: client has crashed";
      (match (cl.current_op, cl.waiting) with
       | None, _ when cl.queue <> [] ->
         invoke_next w cl;
         true
       | Some _, Some _ ->
         resume w cl;
         true
       | _ -> invalid_arg "Mp_runtime.step: client has nothing to do")
    | Drop_msg id ->
      if not (Hashtbl.mem w.channel id) then
        invalid_arg "Mp_runtime.step: unknown message";
      remove_msg w id;
      w.dropped <- w.dropped + 1;
      true
    | Duplicate_msg id ->
      (match Hashtbl.find_opt w.channel id with
       | None -> invalid_arg "Mp_runtime.step: unknown message"
       | Some m ->
         (* A network-level duplicate: same ticket, payload and
            incarnation stamp under a fresh message identity.  Its
            payload bits count in the channel like any other copy, but
            it is not protocol traffic, so [requests_sent] and
            [responses_sent] are unchanged. *)
         let copy = { m with msg_id = fresh_msg_id w; sent_at = w.now } in
         Hashtbl.add w.channel copy.msg_id copy;
         w.channel_order <- copy.msg_id :: w.channel_order;
         w.duplicated <- w.duplicated + 1);
      true
    | Retransmit ticket ->
      (match (w.retransmit, Rt.find w.timers ticket) with
       | None, _ -> invalid_arg "Mp_runtime.step: retransmission is not armed"
       | _, None -> invalid_arg "Mp_runtime.step: no timer for this ticket"
       | Some rc, Some t ->
         if not (timer_live w ticket t) then
           invalid_arg "Mp_runtime.step: retransmission is not enabled";
         if w.now < t.Rt.deadline then
           invalid_arg "Mp_runtime.step: retransmission timer has not expired";
         Rt.backoff rc t ~now:w.now;
         w.retransmissions <- w.retransmissions + 1;
         let srv = t.Rt.req.m_server in
         (* A resend to a dead server fails fast (connection refused);
            the timer backs off and retries after a recovery. *)
         if w.server_live.(srv) then
           send w
             {
               t.Rt.req with
               msg_id = fresh_msg_id w;
               m_incarnation = Score.incarnation w.servers.(srv);
               sent_at = w.now;
             });
      true
    | Crash_server i ->
      if i < 0 || i >= w.n then invalid_arg "Mp_runtime.step: no such server";
      if not w.server_live.(i) then invalid_arg "Mp_runtime.step: server already crashed";
      let dead =
        Array.fold_left (fun acc a -> if a then acc else acc + 1) 0 w.server_live
      in
      if dead >= w.f then
        invalid_arg "Mp_runtime.step: cannot crash more than f servers";
      w.server_live.(i) <- false;
      (* Connections to the crashed server reset: requests still in its
         channels are lost (and stop counting as channel storage —
         undeliverable messages must not linger in the accounting). *)
      let doomed =
        List.filter
          (fun id ->
            let m = Hashtbl.find w.channel id in
            m.kind = Request && m.m_server = i)
          w.channel_order
      in
      List.iter (fun id -> Hashtbl.remove w.channel id) doomed;
      w.channel_order <-
        List.filter (fun id -> Hashtbl.mem w.channel id) w.channel_order;
      w.dropped_at_crash <- w.dropped_at_crash + List.length doomed;
      (* The at-most-once table is volatile; objstate is durable. *)
      Score.crash w.servers.(i);
      Trace.add w.tr (Crash_object { time = w.now; obj = i });
      if observed w then emit w (R.E_crash_obj i);
      true
    | Recover_server i ->
      if i < 0 || i >= w.n then invalid_arg "Mp_runtime.step: no such server";
      if w.server_live.(i) then
        invalid_arg "Mp_runtime.step: server is not crashed";
      w.server_live.(i) <- true;
      Score.recover w.servers.(i);
      w.recoveries <- w.recoveries + 1;
      Trace.add w.tr (Recover_object { time = w.now; obj = i });
      if observed w then
        emit w (R.E_recover_obj (i, Score.incarnation w.servers.(i)));
      true
    | Crash_client c ->
      let cl = w.clients.(c) in
      if cl.crashed then invalid_arg "Mp_runtime.step: client already crashed";
      cl.crashed <- true;
      cl.waiting <- None;
      cl.queue <- [];
      clear_timers w (Rt.owned w.timers ~owner:c);
      Trace.add w.tr (Crash_client { time = w.now; client = c });
      if observed w then emit w (R.E_crash_client c);
      true
    | Tick -> true
    | Halt -> false
  in
  update_maxima w;
  continue_run

type outcome = { world : world; steps : int; halted : bool; quiescent : bool }

let quiescent w =
  deliverable w = [] && steppable w = [] && pending_retransmits w = []

let run ?(max_steps = 1_000_000) w policy =
  let rec go steps =
    if steps >= max_steps then { world = w; steps; halted = false; quiescent = false }
    else if quiescent w then { world = w; steps; halted = false; quiescent = true }
    else if step w (policy w) then go (steps + 1)
    else { world = w; steps = steps + 1; halted = true; quiescent = false }
  in
  update_maxima w;
  go 0

let random_policy ?(crash_servers = []) ?(recover_servers = []) ~seed () =
  let prng = Sb_util.Prng.create seed in
  let by_time_then_server (t1, s1) (t2, s2) =
    if t1 = t2 then Int.compare s1 s2 else Int.compare t1 t2
  in
  let crashes = ref (List.sort by_time_then_server crash_servers) in
  let recoveries = ref (List.sort by_time_then_server recover_servers) in
  fun w ->
    match !crashes with
    | (t, srv) :: rest when time w >= t && server_alive w srv ->
      crashes := rest;
      Crash_server srv
    | _ -> (
      match !recoveries with
      | (t, srv) :: rest when time w >= t && not (server_alive w srv) ->
        recoveries := rest;
        Recover_server srv
      | _ ->
        let delivers = List.map (fun m -> Deliver_msg m.msg_id) (deliverable w) in
        let steps = List.map (fun c -> Step c) (steppable w) in
        let retr = List.map (fun t -> Retransmit t) (due_retransmits w) in
        let choices = Array.of_list (delivers @ steps @ retr) in
        if Array.length choices > 0 then Sb_util.Prng.pick prng choices
        else if pending_retransmits w <> [] then Tick
        else Halt)

let fifo_policy () =
  fun w ->
    match deliverable w with
    | m :: _ -> Deliver_msg m.msg_id
    | [] -> (
      match steppable w with
      | c :: _ -> Step c
      | [] -> (
        match due_retransmits w with
        | t :: _ -> Retransmit t
        | [] -> if pending_retransmits w <> [] then Tick else Halt))
