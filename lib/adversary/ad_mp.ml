module MP = Sb_msgnet.Mp_runtime
module R = Sb_sim.Runtime

type snapshot = {
  time : int;
  frozen : int list;
  c_plus : int list;
  c_minus : int list;
  storage_server_bits : int;
  storage_channel_bits : int;
}

let classify ~ell_bits ~d_bits ?(sticky_frozen = []) w =
  let frozen =
    List.filter
      (fun i ->
        MP.server_alive w i
        && (List.mem i sticky_frozen
           || Sb_storage.Objstate.bits (MP.server_state w i) >= ell_bits))
      (List.init (MP.n_servers w) Fun.id)
  in
  let writes =
    List.filter
      (fun (op : R.op) ->
        match op.kind with Sb_sim.Trace.Write _ -> true | Sb_sim.Trace.Read -> false)
      (MP.outstanding_ops w)
  in
  let c_plus, c_minus =
    List.partition (fun op -> MP.op_contribution w op > d_bits - ell_bits) writes
  in
  {
    time = MP.time w;
    frozen;
    c_plus = List.map (fun (op : R.op) -> op.id) c_plus;
    c_minus = List.map (fun (op : R.op) -> op.id) c_minus;
    storage_server_bits = MP.storage_bits_servers w;
    storage_channel_bits = MP.storage_bits_channels w;
  }

let policy ~ell_bits ~d_bits ?(halt_when = fun _ -> false) ?(on_step = fun _ -> ())
    () =
  let sticky_frozen = ref [] in
  let rr_cursor = ref 0 in
  fun w ->
    let snap = classify ~ell_bits ~d_bits ~sticky_frozen:!sticky_frozen w in
    sticky_frozen := snap.frozen;
    on_step snap;
    if halt_when snap then MP.Halt
    else begin
      let deliverable = MP.deliverable w in
      (* Responses never mutate objects: deliver them eagerly. *)
      match
        List.find_opt (fun (m : MP.message_info) -> m.kind = MP.Response) deliverable
      with
      | Some m -> MP.Deliver_msg m.msg_id
      | None -> (
        (* Rule 1: the oldest request of a C- operation (reads are
           unrestricted) on an unfrozen server. *)
        let is_c_minus op_id = not (List.mem op_id snap.c_plus) in
        let candidate =
          List.find_opt
            (fun (m : MP.message_info) ->
              m.kind = MP.Request
              && (not (List.mem m.m_server snap.frozen))
              && is_c_minus m.m_op)
            deliverable
        in
        match candidate with
        | Some m -> MP.Deliver_msg m.msg_id
        | None -> (
          (* Rule 2: rotate fairly over the currently steppable clients. *)
          match List.sort compare (MP.steppable w) with
          | [] -> MP.Halt
          | steppables ->
            let c = List.nth steppables (!rr_cursor mod List.length steppables) in
            rr_cursor := !rr_cursor + 1;
            MP.Step c))
    end
