open Sb_storage
open Sb_util
module Model = Sb_baseobj.Model

type behaviour = Stale_echo | Split_brain | Poison

let behaviour_to_string = function
  | Stale_echo -> "stale-echo"
  | Split_brain -> "split-brain"
  | Poison -> "poison"

let behaviour_of_string = function
  | "stale-echo" -> Ok Stale_echo
  | "split-brain" -> Ok Split_brain
  | "poison" -> Ok Poison
  | s ->
    Error
      (Printf.sprintf
         "unknown Byzantine behaviour %S (expected stale-echo, split-brain \
          or poison)"
         s)

let all_behaviours = [ Stale_echo; Split_brain; Poison ]

let flip b = Bytes.map (fun c -> Char.chr (Char.code c lxor 0xff)) b

(* The state [before] with every block's contents bit-flipped: timestamps,
   provenance tags and block lengths all survive, so the result passes
   every well-formedness check a reader can apply locally — only
   cross-object corroboration on the {e data} can unmask it. *)
let poison_state (st : Objstate.t) =
  let poison_chunk (c : Chunk.t) =
    Chunk.v ~ts:c.ts
      (Block.v ~source:c.block.Block.source ~index:c.block.Block.index
         (flip c.block.Block.data))
  in
  { st with
    Objstate.vf = List.map poison_chunk st.vf;
    vp = List.map poison_chunk st.vp
  }

(* The initial state's blocks re-tagged under a fabricated high
   timestamp: a "write" that never happened.  Provenance stays at source
   0 — non-authenticated objects cannot forge the source function, only
   lie about recency. *)
let fabricate_high ~ts (init : Objstate.t) =
  let retag (c : Chunk.t) = Chunk.v ~ts c.block in
  { Objstate.stored_ts = ts; vp = []; vf = List.map retag init.vf }

let policy ~seed ~n ~budget behaviour : Model.byz_policy =
  if budget < 0 then invalid_arg "Byz.policy: negative budget";
  if budget > n then invalid_arg "Byz.policy: budget exceeds object count";
  let rng = Prng.create (0xb12a47 lxor (seed * 0x9e3779b9)) in
  (* Seeded liar selection: Fisher-Yates over the object ids, first
     [budget] are compromised.  Everything the liars will ever do is
     fixed here, at construction — [bp_act] is a pure function of its
     arguments, as the model-checker's state caching requires. *)
  let ids = Array.init n Fun.id in
  Prng.shuffle rng ids;
  let liars = Array.sub ids 0 budget in
  let compromised o = Array.exists (Int.equal o) liars in
  let fab_ts =
    Timestamp.make ~num:(1_000_000 + Prng.int rng 1_000_000) ~client:0
  in
  let bp_act ~obj:_ ~client ~cls ~before ~init =
    match (behaviour, (cls : Model.op_class)) with
    | Stale_echo, Read -> Model.Fabricate init
    | Stale_echo, _ -> Model.Drop_write
    | Split_brain, Read ->
      (* Equivocation: even-numbered clients see a fabricated future
         write all liars agree on; odd-numbered clients see the initial
         state.  No single reader can tell, and two readers disagree. *)
      if client mod 2 = 0 then Model.Fabricate (fabricate_high ~ts:fab_ts init)
      else Model.Fabricate init
    | Split_brain, _ -> Model.Drop_write
    | Poison, Read -> Model.Fabricate (poison_state before)
    | Poison, _ -> Model.Honest
  in
  { Model.bp_name =
      Printf.sprintf "%s(seed=%d,b=%d)" (behaviour_to_string behaviour) seed
        budget;
    bp_budget = budget;
    bp_compromised = compromised;
    bp_act
  }
