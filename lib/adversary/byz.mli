(** Seeded Byzantine base-object behaviours.

    Declarative, reproducible lying policies for the
    [Sb_baseobj.Model.Byzantine] base-object model: a behaviour plus a
    seed fully determines which objects are compromised (Fisher–Yates
    liar selection) and what each liar answers.  The resulting
    {!Sb_baseobj.Model.byz_policy} is a {e pure} function of the
    delivery's stable inputs — object, client, operation class, current
    and initial states — never of ticket or operation ids, so runs are
    replayable from the seed and sound under the explorer's state
    caching. *)

type behaviour =
  | Stale_echo
      (** Liars answer every read with the initial state and silently
          drop writes: the omission-style lie that makes stale data
          survive behind positive acks. *)
  | Split_brain
      (** Equivocation: liars show even-numbered clients a fabricated
          never-written value under a common high timestamp, and
          odd-numbered clients the initial state; writes are dropped.
          All liars agree on the fabricated value, so with [b+1] liars
          it acquires enough corroboration to defeat a budget-[b]
          masking quorum — the designed negative control. *)
  | Poison
      (** Liars answer reads with the {e true} current state whose block
          contents are bit-flipped, keeping timestamps, provenance tags
          and lengths intact — well-formed junk only cross-object
          corroboration on the data can unmask.  Writes are applied
          honestly. *)

val behaviour_to_string : behaviour -> string
(** ["stale-echo"], ["split-brain"], ["poison"]. *)

val behaviour_of_string : string -> (behaviour, string) result

val all_behaviours : behaviour list

val policy :
  seed:int -> n:int -> budget:int -> behaviour -> Sb_baseobj.Model.byz_policy
(** [policy ~seed ~n ~budget b] compromises a seed-chosen set of
    [budget] of the [n] objects and makes them act out [b].  Raises
    [Invalid_argument] if [budget] is negative or exceeds [n].  Note
    this builds the {e mechanism}: budgets above the model's [f] are
    deliberately constructible (negative controls); plan validation is
    where over-budget configurations are rejected. *)
