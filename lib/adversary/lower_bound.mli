(** Lower-bound experiment driver (Theorem 1, Lemma 3).

    Runs an algorithm against the adversary Ad with [c] concurrent
    writers and reports which branch of Lemma 3's disjunction was reached
    and how much storage the run pinned down. *)

type branch =
  | Frozen_objects  (** [|F(t)| > f]: f+1 objects hold >= ell bits each. *)
  | Saturated_writes  (** [|C+(t)| = c]: all c writes exceed D - ell bits. *)
  | Exhausted  (** Neither within the step budget (the algorithm may have
                   completed writes — allowed when it pays the bound another
                   way, or when [c] exceeds the number of outstanding
                   writes the workload could keep alive). *)

type result = {
  branch : branch;
  steps : int;
  time_reached : int option;  (** Step at which the branch condition first held. *)
  max_obj_bits : int;
  max_total_bits : int;
  final_frozen : int;
  final_c_plus : int;
  completed_writes : int;
  lower_bound_bits : int;  (** [min((f+1) * ell, c * (D - ell + 1))]. *)
}

val run :
  ?ell_bits:int ->
  ?max_steps:int ->
  ?halt_on_branch:bool ->
  algorithm:Sb_sim.Runtime.algorithm ->
  cfg:Sb_registers.Common.config ->
  c:int ->
  unit ->
  result
(** [run ~algorithm ~cfg ~c ()] invokes [c] concurrent writes of distinct
    values and lets Ad schedule.  [ell_bits] defaults to [D/2], the value
    used in the proof of Theorem 1.  [halt_on_branch] (default [true])
    stops the run as soon as Lemma 3's disjunction holds; pass [false]
    to let Ad keep scheduling — used to show wait-free safe-register
    writes complete even under Ad while regular-register writes never
    do. *)

val run_mp :
  ?ell_bits:int ->
  ?max_steps:int ->
  algorithm:Sb_sim.Runtime.algorithm ->
  cfg:Sb_registers.Common.config ->
  c:int ->
  unit ->
  result
(** The same experiment over the message-passing emulation
    ({!Sb_msgnet.Mp_runtime}, adversary {!Ad_mp}): contributions and the
    reported storage include blocks travelling in channels, showing the
    bound cannot be dodged by parking data in the network.  In the
    result, [max_obj_bits] is the peak server-side storage and
    [max_total_bits] the peak of servers plus channels. *)
