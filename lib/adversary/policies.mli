(** Naive starvation policies, for ablating the adversary Ad.

    Theorem 1's adversary is not just "be unfair": it must keep
    {e selectively} delivering RMWs — those of low-contribution writes on
    unfrozen objects — to force bits into the storage while denying
    completion.  These simpler policies are unfair too, but pin little
    or no storage; experiment E12 contrasts them with Ad. *)

val starve_all : unit -> Sb_sim.Runtime.policy
(** Never delivers any RMW: clients run until they all block on their
    first quorum.  Denies progress but stores nothing beyond the initial
    state. *)

val deliver_budget : budget:int -> unit -> Sb_sim.Runtime.policy
(** FIFO-delivers at most [budget] RMWs in total, then starves.  Denies
    progress eventually, but the storage it pins is bounded by the
    budget rather than by min(f, c) * D. *)

val starve_object : obj:int -> unit -> Sb_sim.Runtime.policy
(** FIFO-delivers everything except RMWs on one object.  With quorums of
    size n - f (f >= 1), this denies nothing: algorithms make progress
    and garbage-collect as usual. *)
