module R = Sb_sim.Runtime

type snapshot = {
  time : int;
  frozen : int list;
  c_plus : int list;
  c_minus : int list;
  storage_obj_bits : int;
  storage_total_bits : int;
}

let classify ~ell_bits ~d_bits ?(sticky_frozen = []) w =
  let frozen =
    List.filter
      (fun i ->
        R.obj_alive w i && (List.mem i sticky_frozen || R.obj_bits w i >= ell_bits))
      (List.init (R.n_objects w) (fun i -> i))
  in
  let writes =
    List.filter
      (fun (op : R.op) ->
        match op.kind with Sb_sim.Trace.Write _ -> true | Sb_sim.Trace.Read -> false)
      (R.outstanding_ops w)
  in
  let c_plus, c_minus =
    List.partition (fun op -> R.op_contribution w op > d_bits - ell_bits) writes
  in
  {
    time = R.time w;
    frozen;
    c_plus = List.map (fun (op : R.op) -> op.id) c_plus;
    c_minus = List.map (fun (op : R.op) -> op.id) c_minus;
    storage_obj_bits = R.storage_bits_objects w;
    storage_total_bits = R.storage_bits_total w;
  }

let policy ~ell_bits ~d_bits ?(halt_when = fun _ -> false) ?(on_step = fun _ -> ())
    () =
  let sticky_frozen = ref [] in
  let rr_cursor = ref 0 in
  fun w ->
    let snap = classify ~ell_bits ~d_bits ~sticky_frozen:!sticky_frozen w in
    sticky_frozen := snap.frozen;
    on_step snap;
    if halt_when snap then R.Halt
    else begin
      (* Rule 1: the longest-pending RMW by a C- operation (reads are
         unrestricted) on a live unfrozen object. *)
      let is_c_minus (op : R.op) =
        match op.kind with
        | Sb_sim.Trace.Read -> true
        | Sb_sim.Trace.Write _ -> List.mem op.id snap.c_minus
      in
      let candidates =
        List.filter
          (fun (p : R.pending_info) ->
            (not (List.mem p.p_obj snap.frozen)) && is_c_minus p.p_op)
          (R.deliverable w)
      in
      match candidates with
      | p :: _ -> R.Deliver p.ticket (* deliverable is oldest-first *)
      | [] -> (
        (* Rule 2: fair round-robin over steppable clients. *)
        match R.steppable w with
        | [] -> R.Halt
        | steppables ->
          let m = R.client_count w in
          let rec find tries =
            if tries >= m then R.Halt
            else begin
              let c = !rr_cursor mod m in
              rr_cursor := !rr_cursor + 1;
              if List.mem c steppables then R.Step c else find (tries + 1)
            end
          in
          find 0)
    end
