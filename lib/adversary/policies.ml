module R = Sb_sim.Runtime

let step_someone w =
  match R.steppable w with c :: _ -> R.Step c | [] -> R.Halt

let starve_all () = fun w -> step_someone w

let deliver_budget ~budget () =
  let delivered = ref 0 in
  fun w ->
    if !delivered < budget then
      match R.deliverable w with
      | p :: _ ->
        incr delivered;
        R.Deliver p.R.ticket
      | [] -> step_someone w
    else step_someone w

let starve_object ~obj () =
  fun w ->
    match
      List.find_opt (fun (p : R.pending_info) -> p.p_obj <> obj) (R.deliverable w)
    with
    | Some p -> R.Deliver p.ticket
    | None -> step_someone w
