module R = Sb_sim.Runtime

type branch = Frozen_objects | Saturated_writes | Exhausted

type result = {
  branch : branch;
  steps : int;
  time_reached : int option;
  max_obj_bits : int;
  max_total_bits : int;
  final_frozen : int;
  final_c_plus : int;
  completed_writes : int;
  lower_bound_bits : int;
}

let run ?ell_bits ?(max_steps = 2_000_000) ?(halt_on_branch = true) ~algorithm
    ~(cfg : Sb_registers.Common.config) ~c () =
  let d_bits = Sb_codec.Codec.value_bits cfg.codec in
  let ell_bits = Option.value ~default:(d_bits / 2) ell_bits in
  if ell_bits <= 0 || ell_bits > d_bits then
    invalid_arg "Lower_bound.run: need 0 < ell <= D";
  let value_bytes = cfg.codec.Sb_codec.Codec.value_bytes in
  let workload =
    Array.init c (fun i -> [ Sb_sim.Trace.Write (Sb_util.Values.distinct ~value_bytes i) ])
  in
  let w = R.create ~algorithm ~n:cfg.n ~f:cfg.f ~workload () in
  let reached = ref None in
  let reached_branch = ref None in
  let final = ref None in
  let halt_when (snap : Ad.snapshot) =
    final := Some snap;
    let frozen_hit = List.length snap.frozen > cfg.f in
    let saturated_hit = List.length snap.c_plus >= c in
    let hit = frozen_hit || saturated_hit in
    if hit && !reached = None then begin
      reached := Some snap.time;
      reached_branch := Some (if frozen_hit then Frozen_objects else Saturated_writes)
    end;
    hit && halt_on_branch
  in
  let policy = Ad.policy ~ell_bits ~d_bits ~halt_when () in
  let outcome = R.run ~max_steps w policy in
  let completed_writes =
    List.length
      (List.filter
         (fun (_, kind, _, ret, _) ->
           match kind with Sb_sim.Trace.Write _ -> ret <> None | _ -> false)
         (Sb_sim.Trace.operations (R.trace w)))
  in
  let final_snap =
    match !final with
    | Some s -> s
    | None -> Ad.classify ~ell_bits ~d_bits w
  in
  let branch =
    match !reached_branch with
    | Some b -> b
    | None ->
      if List.length final_snap.frozen > cfg.f then Frozen_objects
      else if List.length final_snap.c_plus >= c then Saturated_writes
      else Exhausted
  in
  {
    branch;
    steps = outcome.steps;
    time_reached = !reached;
    max_obj_bits = R.max_bits_objects w;
    max_total_bits = R.max_bits_total w;
    final_frozen = List.length final_snap.frozen;
    final_c_plus = List.length final_snap.c_plus;
    completed_writes;
    lower_bound_bits = min ((cfg.f + 1) * ell_bits) (c * (d_bits - ell_bits + 1));
  }

let run_mp ?ell_bits ?(max_steps = 2_000_000) ~algorithm
    ~(cfg : Sb_registers.Common.config) ~c () =
  let module MP = Sb_msgnet.Mp_runtime in
  let d_bits = Sb_codec.Codec.value_bits cfg.codec in
  let ell_bits = Option.value ~default:(d_bits / 2) ell_bits in
  if ell_bits <= 0 || ell_bits > d_bits then
    invalid_arg "Lower_bound.run_mp: need 0 < ell <= D";
  let value_bytes = cfg.codec.Sb_codec.Codec.value_bytes in
  let workload =
    Array.init c (fun i -> [ Sb_sim.Trace.Write (Sb_util.Values.distinct ~value_bytes i) ])
  in
  let w = MP.create ~algorithm ~n:cfg.n ~f:cfg.f ~workload () in
  let reached = ref None in
  let reached_branch = ref None in
  let final = ref None in
  let max_total = ref 0 in
  let halt_when (snap : Ad_mp.snapshot) =
    final := Some snap;
    max_total := max !max_total (snap.storage_server_bits + snap.storage_channel_bits);
    let frozen_hit = List.length snap.frozen > cfg.f in
    let saturated_hit = List.length snap.c_plus >= c in
    let hit = frozen_hit || saturated_hit in
    if hit && !reached = None then begin
      reached := Some snap.time;
      reached_branch := Some (if frozen_hit then Frozen_objects else Saturated_writes)
    end;
    hit
  in
  let policy = Ad_mp.policy ~ell_bits ~d_bits ~halt_when () in
  let outcome = MP.run ~max_steps w policy in
  let completed_writes =
    List.length
      (List.filter
         (fun (_, kind, _, ret, _) ->
           match kind with Sb_sim.Trace.Write _ -> ret <> None | _ -> false)
         (Sb_sim.Trace.operations (MP.trace w)))
  in
  let final_snap =
    match !final with Some s -> s | None -> Ad_mp.classify ~ell_bits ~d_bits w
  in
  let branch =
    match !reached_branch with
    | Some b -> b
    | None ->
      if List.length final_snap.frozen > cfg.f then Frozen_objects
      else if List.length final_snap.c_plus >= c then Saturated_writes
      else Exhausted
  in
  {
    branch;
    steps = outcome.MP.steps;
    time_reached = !reached;
    max_obj_bits = MP.max_bits_servers w;
    max_total_bits = !max_total;
    final_frozen = List.length final_snap.frozen;
    final_c_plus = List.length final_snap.c_plus;
    completed_writes;
    lower_bound_bits = min ((cfg.f + 1) * ell_bits) (c * (d_bits - ell_bits + 1));
  }
