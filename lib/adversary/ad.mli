(** The lower-bound adversary Ad (Definition 7).

    Ad drives any black-box-coding storage algorithm into high storage
    cost by scheduling as follows, with respect to a bit threshold
    [0 < ell <= D]:

    - [F(t)] — the {e frozen} base objects, those already storing at
      least [ell] bits of code blocks.  Once frozen, an object never
      receives another RMW delivery (Observation 2), so its storage never
      shrinks.
    - [C-(t)] — outstanding writes whose storage contribution
      [||S(t, w)||] (Definition 6) is at most [D - ell]; the complement
      [C+(t)] holds writes that already contribute more than [D - ell]
      bits.

    Rule 1: if some RMW triggered by a [C-] operation is pending on a
    live unfrozen object, deliver the longest-pending such RMW.
    Rule 2: otherwise, step clients in fair round-robin order.

    Lemma 3 shows every lock-free algorithm driven by Ad reaches a point
    where [|F| > f] or [|C+| = c]; either way the storage cost is at
    least [min((f+1) * ell, c * (D - ell + 1))] bits — with [ell = D/2]
    this is the paper's Omega(min(f, c) * D) bound. *)

type snapshot = {
  time : int;
  frozen : int list;      (** [F(t)]: frozen live base objects. *)
  c_plus : int list;      (** Op ids of outstanding writes in [C+(t)]. *)
  c_minus : int list;     (** Op ids of outstanding writes in [C-(t)]. *)
  storage_obj_bits : int;
  storage_total_bits : int;
}

val classify :
  ell_bits:int -> d_bits:int -> ?sticky_frozen:int list -> Sb_sim.Runtime.world -> snapshot
(** Computes [F]/[C+]/[C-] for the current world state.  [sticky_frozen]
    carries objects frozen at earlier times (Observation 2 makes freezing
    monotone under Ad; when replaying arbitrary schedules pass the
    accumulated set). *)

val policy :
  ell_bits:int ->
  d_bits:int ->
  ?halt_when:(snapshot -> bool) ->
  ?on_step:(snapshot -> unit) ->
  unit ->
  Sb_sim.Runtime.policy
(** The Ad schedule.  [halt_when] lets the experiment driver stop the run
    once the bound's disjunction is reached (e.g. [|F| > f] or
    [|C+| = c]); [on_step] observes every snapshot (used by the
    walkthrough example reproducing Figure 3).  The policy halts on its
    own when neither rule has an enabled action. *)
