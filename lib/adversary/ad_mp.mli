(** The adversary Ad over the message-passing emulation.

    The same schedule as {!Ad}, interpreted for {!Sb_msgnet.Mp_runtime}:
    a pending RMW is a {e request} message, and its take-effect point is
    the request's delivery at the server.  Responses never mutate base
    objects, so Ad delivers them eagerly (they correspond to the
    "respond" actions rule 2 schedules freely).

    Contributions [||S(t,w)||] here include blocks travelling in
    channels — request payloads and snapshot responses — so the run
    demonstrates that the lower bound cannot be dodged by parking data
    in the network (Section 3.2). *)

type snapshot = {
  time : int;
  frozen : int list;
  c_plus : int list;
  c_minus : int list;
  storage_server_bits : int;
  storage_channel_bits : int;
}

val classify :
  ell_bits:int ->
  d_bits:int ->
  ?sticky_frozen:int list ->
  Sb_msgnet.Mp_runtime.world ->
  snapshot

val policy :
  ell_bits:int ->
  d_bits:int ->
  ?halt_when:(snapshot -> bool) ->
  ?on_step:(snapshot -> unit) ->
  unit ->
  Sb_msgnet.Mp_runtime.policy
