(** A register emulation over a {e rateless} (fountain) code.

    The paper's model indexes code blocks by ℕ precisely to capture
    rateless codes [13], where an encoder can generate a limitless
    stream of blocks.  This register exercises that corner of the model:
    each write stores [blocks_per_object] freshly generated LT blocks at
    every base object (block numbers are globally distinct, so every
    stored block adds information), and a reader decodes by Gaussian
    elimination over whatever subset its quorums return.

    Unlike the MDS registers, decodability is probabilistic: [k] blocks
    do not always suffice, but [blocks_per_object * (n - f)] blocks fail
    to reach full rank only with probability exponentially small in the
    overhead.  A read that cannot decode yet simply samples another
    round, like the adaptive algorithm's reads.  The test suite pins
    seeds, making every run reproducible. *)

val make :
  ?blocks_per_object:int -> codec_seed:int -> Common.config -> Sb_sim.Runtime.algorithm
(** [make ~codec_seed cfg] builds the register over
    {!Sb_codec.Codec.fountain} with the configuration's [k]
    ([cfg.codec] supplies [k] and the value size; its own encode/decode
    are not used).  [blocks_per_object] defaults to 2, giving overhead
    factor [2(n-f)/k] against rank deficiency. *)
