(** The paper's adaptive register emulation (Section 5, Algorithms 1–3).

    The algorithm combines erasure coding with replication: base objects
    accumulate code {e pieces} of concurrently written values in their
    [Vp] field until it holds pieces of [k] distinct writes, and then
    switch to storing a {e full replica} (as [k] pieces of one value) in
    their [Vf] field.  A write takes three rounds — read timestamps,
    update, garbage-collect — and a read repeatedly samples the objects
    until it sees [k] matching pieces of a sufficiently recent value.

    Guarantees (Theorem 2, reproduced by experiments E3, E4, E9):
    - strong regularity (MWRegWO) and FW-termination;
    - storage at most [min((c+1)(2f+k)D/k, 2(2f+k)D)] bits, i.e.
      O(min(f, c) · D) for [k = f];
    - in runs with finitely many writes that all complete, storage
      eventually shrinks to [(2f+k)D/k] bits. *)

val make : Common.config -> Sb_sim.Runtime.algorithm
(** The adaptive algorithm; requires [n >= 2f + k]. *)

val make_unbounded : Common.config -> Sb_sim.Runtime.algorithm
(** Ablation: the identical protocol with the replica switchover disabled
    — [Vp] grows without bound under concurrency, like the purely
    erasure-coded algorithms of [5, 6, 8, 9] that the paper's lower bound
    targets.  Storage grows as Θ(cD) under the adversary (experiment
    E1). *)

val make_versioned : delta:int -> Common.config -> Sb_sim.Runtime.algorithm
(** The bounded-version family of Cadambe et al. [6]: each object keeps
    pieces of at most [delta + 1] versions (newest first) and no
    replicas.  Storage is at most [(delta+1)(2f+k)D/k] bits, but the
    choice is only comfortable when the write concurrency stays at or
    below [delta]: beyond it, incomplete writes can evict the last
    complete value's pieces, and reads must keep sampling until the
    backlog drains (safety is preserved; read latency degrades —
    experiment E15).  This is the paper's O(cD) cost made concrete:
    version-bounded algorithms must provision [delta >= c]. *)

val make_premature_gc : Common.config -> Sb_sim.Runtime.algorithm
(** Negative control: like {!make_unbounded} but garbage-collecting
    below the writer's {e own} timestamp before the write completes (and
    reading without the [storedTS] barrier).  This is the classic unsafe
    "delete old values before the new one is in place" shortcut the
    paper's introduction warns coded storage against — under concurrency
    it loses written values and produces regularity violations, which
    the history checkers catch (experiment E13). *)
