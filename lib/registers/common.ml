open Sb_storage

type config = { n : int; f : int; codec : Sb_codec.Codec.t }

let validate cfg =
  if cfg.f < 0 then invalid_arg "register config: f must be non-negative";
  if cfg.n < (2 * cfg.f) + cfg.codec.Sb_codec.Codec.k then
    invalid_arg "register config: need n >= 2f + k";
  match cfg.codec.Sb_codec.Codec.n with
  | None -> invalid_arg "register config: codec must be fixed-rate"
  | Some cn ->
    if cn < cfg.n then invalid_arg "register config: codec produces fewer than n blocks"

let quorum cfg = cfg.n - cfg.f
let initial_value cfg = Bytes.make cfg.codec.Sb_codec.Codec.value_bytes '\000'

let read_snapshot_rmw : Sb_sim.Runtime.rmw =
  Sb_sim.Rmwdesc.(apply Snapshot)

type read_set = {
  max_stored_ts : Timestamp.t;
  chunks : Chunk.t list;
}

let read_value cfg (ctx : Sb_sim.Runtime.ctx) =
  ctx.op.rounds <- ctx.op.rounds + 1;
  let tickets =
    Sb_sim.Runtime.broadcast_desc ~n:cfg.n
      ~payload:(fun _ -> [])
      (fun _ -> Sb_sim.Rmwdesc.Snapshot)
  in
  let resps = Sb_sim.Runtime.await ~tickets ~quorum:(quorum cfg) in
  List.fold_left
    (fun acc (_, resp) ->
      match resp with
      | Sb_sim.Runtime.Ack -> acc
      | Sb_sim.Runtime.Snap (st : Objstate.t) ->
        {
          max_stored_ts = Timestamp.max acc.max_stored_ts st.stored_ts;
          chunks = st.vp @ st.vf @ acc.chunks;
        })
    { max_stored_ts = Timestamp.zero; chunks = [] }
    resps

let max_num rs =
  List.fold_left
    (fun acc (c : Chunk.t) -> max acc c.ts.Timestamp.num)
    rs.max_stored_ts.Timestamp.num rs.chunks

(* Idempotent chunk insertion, now provided by [Sb_storage.Chunk] so the
   RMW interpreter in [Sb_sim.Rmwdesc] can use it too; re-exported here
   because the register protocols and their tests reach it through
   [Common]. *)
let add_chunk = Chunk.add
let add_chunks = Chunk.add_list

let distinct_pieces chunks ~ts =
  let seen = Hashtbl.create 8 in
  List.filter_map
    (fun (c : Chunk.t) ->
      if Timestamp.equal c.ts ts && not (Hashtbl.mem seen c.block.Block.index) then begin
        Hashtbl.add seen c.block.Block.index ();
        Some (c.block.Block.index, c.block.Block.data)
      end
      else None)
    chunks

let decodable_ts codec chunks ~min_ts =
  let k = codec.Sb_codec.Codec.k in
  let candidates =
    List.sort_uniq Timestamp.compare (List.map (fun (c : Chunk.t) -> c.ts) chunks)
  in
  List.fold_left
    (fun best ts ->
      if Timestamp.(ts >= min_ts) && List.length (distinct_pieces chunks ~ts) >= k then
        match best with
        | Some b when Timestamp.(b >= ts) -> best
        | _ -> Some ts
      else best)
    None candidates

let decode_at codec chunks ~ts =
  let decoder = Oracle.Decoder.create codec in
  let group = (ts.Timestamp.num * 65599) + ts.Timestamp.client in
  List.iter
    (fun (index, data) -> Oracle.Decoder.push decoder ~group ~index data)
    (distinct_pieces chunks ~ts);
  Oracle.Decoder.finish decoder ~group
