(** ABD with read write-back: an {e atomic} replicated MWMR register.

    The paper's baselines are regular registers (reads never write).
    This variant adds the classic second read phase — the reader writes
    the value it is about to return back to a quorum before returning —
    which upgrades regularity to atomicity (linearizability) at the cost
    of a round trip and of readers mutating the storage.

    Used by the test suite to witness the consistency hierarchy: the
    plain {!Abd} register exhibits new/old inversions that this one
    provably cannot. Storage cost is unchanged: n replicas, [n * D]
    bits. *)

val make : Common.config -> Sb_sim.Runtime.algorithm
(** Requires a replication codec ([k = 1]), like {!Abd.make}. *)
