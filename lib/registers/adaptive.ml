open Sb_storage
module R = Sb_sim.Runtime
module D = Sb_sim.Rmwdesc

(* The RMW semantics (Algorithm 3, lines 32-45) live in
   [Sb_sim.Rmwdesc]: this module only constructs descriptions, so the
   same updates run over the in-process runtimes and the socket
   transport.  [replicate] selects between the paper's adaptive rule
   (switch to a full replica once Vp is saturated) and the unbounded
   purely-coded baseline (always append to Vp).  [eviction] selects the
   GC barrier used when storing a piece: the correct rule keeps
   everything at or above the round-1 [storedTS] (the last known
   complete write); the deliberately broken [Own_ts] rule evicts
   everything below the {e incomplete} write's own timestamp — the
   premature-GC bug whose regularity violations the negative-control
   experiment demonstrates. *)

let make_gen ~name ~replicate ?(eviction = D.Barrier) ?(read_barrier = true)
    ?(trim = D.Keep_all) (cfg : Common.config) =
  Common.validate cfg;
  let k = cfg.codec.Sb_codec.Codec.k in
  let v0 = Common.initial_value cfg in
  let init_obj i =
    let block = Block.initial ~index:i (cfg.codec.Sb_codec.Codec.encode v0 i) in
    Objstate.init ~vp:[ Chunk.v ~ts:Timestamp.zero block ] ()
  in
  let write (ctx : R.ctx) v =
    let encoder = Oracle.Encoder.create cfg.codec ~op:ctx.op.id ~value:v in
    let piece i = Oracle.Encoder.get encoder i in
    let replica_pieces = List.init k piece in
    (* Round 1: read timestamps (Algorithm 2, lines 5-7). *)
    let rs = Common.read_value cfg ctx in
    let stored_ts = rs.max_stored_ts in
    let ts = Timestamp.make ~num:(Common.max_num rs + 1) ~client:ctx.self in
    (* Round 2: update (lines 8-10). *)
    ctx.op.rounds <- ctx.op.rounds + 1;
    let update_payload i =
      let p = piece i in
      if replicate && not (List.exists (fun b -> b.Block.index = i) replica_pieces)
      then p :: replica_pieces
      else if replicate then replica_pieces
      else [ p ]
    in
    let tickets =
      R.broadcast_desc ~n:cfg.n ~payload:update_payload (fun i ->
          D.Adaptive_update
            {
              replicate;
              eviction;
              trim;
              k;
              piece = piece i;
              replica_pieces;
              ts;
              stored_ts;
            })
    in
    ignore (R.await ~tickets ~quorum:(Common.quorum cfg));
    (* Round 3: garbage collection (lines 11-13). *)
    ctx.op.rounds <- ctx.op.rounds + 1;
    let tickets =
      R.broadcast_desc ~n:cfg.n
        ~payload:(fun i -> [ piece i ])
        (fun i -> D.Adaptive_gc { piece = piece i; ts })
    in
    ignore (R.await ~tickets ~quorum:(Common.quorum cfg))
  in
  let read (ctx : R.ctx) =
    (* Algorithm 2, lines 16-22: sample rounds until a value no older
       than the commit barrier is decodable. *)
    let rec loop () =
      let rs = Common.read_value cfg ctx in
      let min_ts = if read_barrier then rs.max_stored_ts else Timestamp.zero in
      match Common.decodable_ts cfg.codec rs.chunks ~min_ts with
      | Some ts -> Common.decode_at cfg.codec rs.chunks ~ts
      | None -> loop ()
    in
    loop ()
  in
  { R.name; init_obj; write; read }

let make cfg = make_gen ~name:"adaptive" ~replicate:true cfg
let make_unbounded cfg = make_gen ~name:"pure-ec" ~replicate:false cfg

let make_premature_gc cfg =
  make_gen ~name:"premature-gc" ~replicate:false ~eviction:D.Own_ts
    ~read_barrier:false cfg

let make_versioned ~delta cfg =
  if delta < 0 then invalid_arg "Adaptive.make_versioned: delta must be >= 0";
  (* Keep only the delta+1 newest versions' pieces in Vp, like the
     bounded-version algorithms of [6]: correct for concurrency <= delta,
     degraded read latency beyond. *)
  make_gen
    ~name:(Printf.sprintf "versioned(delta=%d)" delta)
    ~replicate:false ~trim:(D.Keep_newest delta) cfg
