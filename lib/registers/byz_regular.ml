open Sb_storage
module R = Sb_sim.Runtime
module D = Sb_sim.Rmwdesc

(* Byzantine-tolerant regular register over non-authenticated base
   objects, after "Integrated Bounds for Disintegrated Storage"
   (Berger-Keidar-Spiegelman, arXiv:1805.06265).  Up to [budget] base
   objects may answer with fabricated-but-well-formed states
   ([Sb_baseobj.Model.Byzantine]); there are no signatures, so a reader
   can only trust what enough objects {e independently corroborate}.

   Structure: ABD-style full-replication writes to [n >= 2f + 2b + 1]
   objects, and masking-quorum reads — a candidate value is eligible
   only if at least [b+1] distinct objects returned an identical
   (timestamp, provenance, contents) triple, so at least one honest
   object vouches for it.  Matching is on the block {e data}, not just
   the timestamp tags: a poisoned chunk keeps its provenance but alters
   the bytes, and must not pool with honest copies.

   This is where the sibling paper's collapse shows up executably:
   because nothing an object stores can be trusted in isolation, a coded
   piece is worthless (b liars can fabricate consistent pieces and no
   honest corroboration distinguishes them), so the emulation stores
   full copies and its live storage is >= (f+1) * D — the
   common-information bound integrates replication back in. *)

let support_key (obj_chunks : (int * Chunk.t) list) =
  (* Groups candidates by (ts, source, data); support = number of
     distinct objects corroborating the triple. *)
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (obj, (c : Chunk.t)) ->
      let key =
        ( c.ts.Timestamp.num,
          c.ts.Timestamp.client,
          c.block.Block.source,
          Bytes.to_string c.block.Block.data )
      in
      let objs, _ =
        Option.value (Hashtbl.find_opt tbl key) ~default:([], c)
      in
      if not (List.mem obj objs) then Hashtbl.replace tbl key (obj :: objs, c))
    obj_chunks;
  Hashtbl.fold (fun _ (objs, c) acc -> (List.length objs, c) :: acc) tbl []

let make ~budget (cfg : Common.config) =
  Common.validate cfg;
  if budget < 0 then invalid_arg "Byz_regular.make: negative budget";
  if cfg.codec.Sb_codec.Codec.k <> 1 then
    invalid_arg "Byz_regular.make: full replication requires k = 1";
  if cfg.n < (2 * cfg.f) + (2 * budget) + 1 then
    invalid_arg
      (Printf.sprintf
         "Byz_regular.make: masking quorums need n >= 2f + 2b + 1 (n = %d, f \
          = %d, b = %d)"
         cfg.n cfg.f budget);
  let v0 = Common.initial_value cfg in
  let init_obj i =
    let block = Block.initial ~index:i (cfg.codec.Sb_codec.Codec.encode v0 i) in
    Objstate.init ~vf:[ Chunk.v ~ts:Timestamp.zero block ] ()
  in
  let write (ctx : R.ctx) v =
    let rs = Common.read_value cfg ctx in
    let ts =
      Timestamp.make ~num:(Common.max_num rs + 1) ~client:ctx.self
    in
    ctx.op.rounds <- ctx.op.rounds + 1;
    let encoder = Oracle.Encoder.create cfg.codec ~op:ctx.op.id ~value:v in
    let tickets =
      R.broadcast_desc ~nature:`Merge ~n:cfg.n
        ~payload:(fun i -> [ Oracle.Encoder.get encoder i ])
        (fun i -> D.Abd_store (Chunk.v ~ts (Oracle.Encoder.get encoder i)))
    in
    ignore (R.await ~tickets ~quorum:(Common.quorum cfg))
  in
  let read (ctx : R.ctx) =
    ctx.op.rounds <- ctx.op.rounds + 1;
    let tickets =
      R.broadcast_desc ~n:cfg.n ~payload:(fun _ -> []) (fun _ -> D.Snapshot)
    in
    let rs = R.await ~tickets ~quorum:(Common.quorum cfg) in
    let candidates =
      List.concat_map
        (fun (obj, resp) ->
          match resp with
          | R.Ack -> []
          | R.Snap (st : Objstate.t) ->
            List.map (fun c -> (obj, c)) (st.vp @ st.vf))
        rs
    in
    (* Highest-timestamped candidate with honest corroboration.  Within
       budget this never falls through to [v0]: the quorum holds
       [n - f >= f + 2b + 1] objects, so the latest complete write has
       [b+1] honest supporters in it, and fabricated triples cap out at
       [b] supporters. *)
    let best =
      List.fold_left
        (fun best (support, (c : Chunk.t)) ->
          if support < budget + 1 then best
          else
            match best with
            | Some (b : Chunk.t) when Timestamp.(b.ts >= c.ts) -> best
            | _ -> Some c)
        None
        (support_key candidates)
    in
    match best with
    | Some c -> (
      match Common.decode_at cfg.codec [ c ] ~ts:c.ts with
      | Some v -> Some v
      | None -> Some v0)
    | None -> Some v0
  in
  { R.name = Printf.sprintf "byz-regular(b=%d)" budget; init_obj; write; read }
