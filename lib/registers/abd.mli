(** ABD-style replicated register (Attiya, Bar-Noy, Dolev [4]).

    The classic replication baseline the paper compares against: every
    base object stores one full timestamped replica in its [Vf] field, so
    the storage cost is a constant [n * D] bits independent of
    concurrency — the O(fD) end of the paper's trade-off.

    Writes take two rounds (read timestamps, then store the replica under
    a higher timestamp); reads take one round and return the
    highest-timestamped replica seen, with no write-back, which yields a
    {e regular} (not atomic) MWMR register, matching the paper's setting.
    Both operations are wait-free. *)

val make : Common.config -> Sb_sim.Runtime.algorithm
(** The codec in the configuration must be {!Sb_codec.Codec.replication}
    (i.e. [k = 1]); raises [Invalid_argument] otherwise. *)

val make_broken : ?quorum_slack:int -> Common.config -> Sb_sim.Runtime.algorithm
(** Test-only: ABD with the {e write} quorum undersized by [quorum_slack]
    (default 1).  A write can then complete after reaching fewer than
    [n - f] objects, so a later read may miss it entirely and return a
    stale value — a seeded regularity violation for exercising the model
    checker's violation detection and counterexample shrinking.  Raises
    [Invalid_argument] if [quorum_slack < 1]. *)

val make_misdeclared_merge : Common.config -> Sb_sim.Runtime.algorithm
(** Test-only: ABD whose store round still {e declares} [`Merge] but
    applies a last-writer-wins overwrite that ignores timestamps, so two
    concurrent stores on one object do not commute.  The declared
    commutativity is exactly what the model checker's independence
    relation trusts, making this the seeded control for the
    [Sb_sanitize] commutativity monitor and independence audit. *)

val store_rmw : Sb_storage.Chunk.t -> Sb_sim.Runtime.rmw
(** The conditional-overwrite RMW used by the update round: replaces the
    single [Vf] replica if the incoming timestamp is strictly higher.
    Shared with {!Abd_atomic}'s write-back phase. *)
