(** Register emulations over read/write base objects.

    In the model of "Space Complexity of Fault Tolerant Register
    Emulations" (Chockler and Spiegelman, arXiv:1705.07212) the base
    objects support only reads and {e blind overwrites} — no conditional
    RMWs ([Sb_baseobj.Model.Read_write]).  Their lower bound: any
    regular MWR register emulation tolerating [f] base-object crashes
    must keep [f+1] {e full copies} of the written value alive per
    writer; neither adaptivity nor erasure coding helps.  These
    emulations make both sides of that bound executable. *)

val make : ?writers:int -> Common.config -> Sb_sim.Runtime.algorithm
(** Multi-writer regular register hitting the [f+1]-copy floor exactly.
    [cfg.n] must equal [writers * (2f + 1)] (default [writers = 1]):
    writer [g] owns cells [g*(2f+1) .. (g+1)*(2f+1) - 1] and only clients
    [0 .. writers-1] may write.  A write snapshots all cells to pick a
    timestamp, overwrites its own group with [2f+1] full copies, awaits
    [f+1] acks, then trims the non-keeper cells back to meta-data-only
    stubs — so quiescent live storage is exactly [(f+1) * D] bits per
    group, the paper's floor.  A read re-snapshots until it holds a full
    copy at least as new as the newest [storedTS] it saw: a stub's
    timestamp proves its write completed, and a single non-atomic
    snapshot can catch different writes' trim victims and miss every
    full copy (the exhaustive litmus found exactly that schedule).  The
    codec must be replication ([k = 1]); raises [Invalid_argument]
    otherwise. *)

val make_fcopy : ?writers:int -> Common.config -> Sb_sim.Runtime.algorithm
(** Negative control: identical to {!make} — same honest [f+1]-ack
    quorums — but the trim round stubs one keeper too, leaving only [f]
    full copies per write.  A crash set of size [f] can then erase every
    full copy of the latest value, and the quiescent live storage
    [f * D] sits below the proven floor — the seeded violation the
    [Sb_sanitize] storage-floor rule must catch.  Its read is one-shot
    (no evidence retry): with only [f] keepers a quiescent quorum can be
    all stubs, so the retrying read would spin.  Requires [f >= 1]. *)

val make_safe : Common.config -> Sb_sim.Runtime.algorithm
(** The coded contrast the bound leaves open for weaker semantics: a
    single-writer {e safe} register storing one coded piece per cell
    ([n = 2f + k]) with no trim round, i.e. [(2f+k) * D/k] quiescent
    bits — strictly below the regular floor once [k > 2].  A read
    overlapping a write may return the initial value [v0]; reads with no
    concurrent write return the latest written value. *)
