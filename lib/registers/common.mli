(** Shared plumbing for the register emulations.

    All four algorithms in this library follow the paper's round
    structure: each round triggers one RMW on every base object in
    parallel and awaits responses from at least [n - f] of them
    (Section 5).  This module provides the configuration record, the
    [readValue] round (Algorithm 3, lines 23–31), and chunk-set
    helpers. *)

type config = {
  n : int;      (** Number of base objects. *)
  f : int;      (** Base-object failures tolerated; [n >= 2f + k]. *)
  codec : Sb_codec.Codec.t;  (** The k-of-n coding scheme in use. *)
}

val validate : config -> unit
(** Raises [Invalid_argument] unless [0 <= f], [n >= 2f + k], and the
    codec is fixed-rate with at least [n] blocks. *)

val quorum : config -> int
(** [n - f]: the size of every round's response quorum. *)

val initial_value : config -> bytes
(** The all-zero initial value [v0]. *)

val read_snapshot_rmw : Sb_sim.Runtime.rmw
(** The RMW used by read rounds: leaves the state unchanged and returns
    a snapshot. *)

type read_set = {
  max_stored_ts : Sb_storage.Timestamp.t;
  (** Highest [storedTS] among the responding objects. *)
  chunks : Sb_storage.Chunk.t list;
  (** Union of the [Vp] and [Vf] fields of the responding objects. *)
}

val read_value : config -> Sb_sim.Runtime.ctx -> read_set
(** One [readValue] round: read-snapshot every object, await [n - f]
    responses, and merge.  Bumps the operation's round counter. *)

val max_num : read_set -> int
(** The largest timestamp round-number visible in the read set (among
    both chunk timestamps and [max_stored_ts]); the writer picks its new
    timestamp one above this (Algorithm 2, line 6). *)

val add_chunk : Sb_storage.Chunk.t -> Sb_storage.Chunk.t list -> Sb_storage.Chunk.t list
(** Inserts a chunk unless an equal one — same timestamp, block source
    and block index — is already present.  Store RMWs must insert
    through this to stay idempotent: the message-passing runtime's
    at-most-once table is volatile, so a retransmitted request can be
    re-applied after a server recovery, and a duplicate insertion would
    inflate measured storage. *)

val add_chunks :
  Sb_storage.Chunk.t list -> Sb_storage.Chunk.t list -> Sb_storage.Chunk.t list
(** [add_chunks cs chunks] folds {!add_chunk} over [cs]. *)

val distinct_pieces : Sb_storage.Chunk.t list -> ts:Sb_storage.Timestamp.t -> (int * bytes) list
(** The distinct-index pieces of value [ts] in a chunk list, as
    [(index, data)] pairs ready for decoding. *)

val decodable_ts :
  Sb_codec.Codec.t ->
  Sb_storage.Chunk.t list ->
  min_ts:Sb_storage.Timestamp.t ->
  Sb_storage.Timestamp.t option
(** The largest timestamp [>= min_ts] for which the chunk list holds at
    least [k] distinct pieces (Algorithm 2, lines 18–20), if any. *)

val decode_at : Sb_codec.Codec.t -> Sb_storage.Chunk.t list -> ts:Sb_storage.Timestamp.t -> bytes option
(** Decodes the value with timestamp [ts] from the pieces present in the
    chunk list, routing the blocks through a Definition-1 decoding
    oracle. *)
