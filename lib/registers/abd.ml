open Sb_storage
module R = Sb_sim.Runtime
module D = Sb_sim.Rmwdesc

(* The store semantics live in [Sb_sim.Rmwdesc]: [Abd_store] keeps the
   lexicographically larger (timestamp, chunk) — a commuting, idempotent
   join — and [Lww_store] is the last-writer-wins overwrite used only by
   [make_misdeclared_merge] below, whose concurrent stores do NOT
   commute even though the broadcast still declares [`Merge]. *)
let store_rmw chunk : R.rmw = D.apply (D.Abd_store chunk)

let make_gen ?(store = fun c -> D.Abd_store c) ~name ~write_quorum
    (cfg : Common.config) =
  Common.validate cfg;
  if cfg.codec.Sb_codec.Codec.k <> 1 then
    invalid_arg "Abd.make: ABD requires a replication codec (k = 1)";
  let v0 = Common.initial_value cfg in
  let init_obj i =
    let block = Block.initial ~index:i (cfg.codec.Sb_codec.Codec.encode v0 i) in
    Objstate.init ~vf:[ Chunk.v ~ts:Timestamp.zero block ] ()
  in
  let write (ctx : R.ctx) v =
    let encoder = Oracle.Encoder.create cfg.codec ~op:ctx.op.id ~value:v in
    (* Round 1: collect timestamps. *)
    let rs = Common.read_value cfg ctx in
    let ts = Timestamp.make ~num:(Common.max_num rs + 1) ~client:ctx.self in
    (* Round 2: store the replica everywhere, await a quorum. *)
    ctx.op.rounds <- ctx.op.rounds + 1;
    let tickets =
      (* [Abd_store] is a "keep the higher timestamp" join: merge-class,
         so deliveries of two stores to the same object commute.  The
         [`Merge] declaration is explicit (not derived from the
         description) because [make_misdeclared_merge] keeps it while
         swapping in the non-commuting store. *)
      R.broadcast_desc ~nature:`Merge ~n:cfg.n
        ~payload:(fun i -> [ Oracle.Encoder.get encoder i ])
        (fun i -> store (Chunk.v ~ts (Oracle.Encoder.get encoder i)))
    in
    ignore (R.await ~tickets ~quorum:write_quorum)
  in
  let read (ctx : R.ctx) =
    let rs = Common.read_value cfg ctx in
    (* Return the highest-timestamped replica; regularity needs no
       write-back. *)
    match Common.decodable_ts cfg.codec rs.chunks ~min_ts:Timestamp.zero with
    | None -> None
    | Some ts -> Common.decode_at cfg.codec rs.chunks ~ts
  in
  { R.name = name; init_obj; write; read }

let make cfg = make_gen ~name:"abd" ~write_quorum:(Common.quorum cfg) cfg

let make_broken ?(quorum_slack = 1) cfg =
  if quorum_slack < 1 then invalid_arg "Abd.make_broken: quorum_slack must be >= 1";
  make_gen ~name:"abd-broken" ~write_quorum:(Common.quorum cfg - quorum_slack) cfg

let make_misdeclared_merge cfg =
  make_gen
    ~store:(fun c -> D.Lww_store c)
    ~name:"abd-misdeclared-merge" ~write_quorum:(Common.quorum cfg) cfg
