open Sb_storage
module R = Sb_sim.Runtime

(* Keep the lexicographically larger of (timestamp, chunk).  The chunk
   tie-break matters: writers mint unique timestamps, but [Abd_atomic]'s
   read write-back re-encodes an {e existing} timestamp under the
   reader's own op id, so two concurrent write-backs of one value carry
   distinct block metadata.  "Keep existing on equal ts" would let the
   delivery order pick the survivor — a non-commuting [`Merge], which
   the [Sb_sanitize] commutativity monitor flags. *)
(* Idempotent by construction: re-applying the same chunk "keeps" it
   (ties break towards the existing chunk), so an at-least-once delivery
   — a retransmission re-applied after a server recovery — changes
   nothing.  The fault-injection suite relies on this. *)
let store_rmw chunk : R.rmw =
  fun st ->
    let keep =
      match st.Objstate.vf with
      | [ existing ] ->
        let c = Timestamp.compare existing.Chunk.ts chunk.Chunk.ts in
        c > 0 || (c = 0 && compare existing chunk >= 0)
      | _ -> false
    in
    let st =
      if keep then st
      else { st with vf = [ chunk ]; stored_ts = Timestamp.max st.stored_ts chunk.Chunk.ts }
    in
    (st, R.Ack)

(* Last-writer-wins overwrite: ignores the stored timestamp, so two
   concurrent stores do NOT commute — the delivery order decides which
   replica survives.  Used only by [make_misdeclared_merge] below. *)
let lww_store_rmw chunk : R.rmw =
  fun st ->
    ( { st with
        Objstate.vf = [ chunk ];
        stored_ts = Timestamp.max st.Objstate.stored_ts chunk.Chunk.ts;
      },
      R.Ack )

let make_gen ?(store = store_rmw) ~name ~write_quorum (cfg : Common.config) =
  Common.validate cfg;
  if cfg.codec.Sb_codec.Codec.k <> 1 then
    invalid_arg "Abd.make: ABD requires a replication codec (k = 1)";
  let v0 = Common.initial_value cfg in
  let init_obj i =
    let block = Block.initial ~index:i (cfg.codec.Sb_codec.Codec.encode v0 i) in
    Objstate.init ~vf:[ Chunk.v ~ts:Timestamp.zero block ] ()
  in
  let write (ctx : R.ctx) v =
    let encoder = Oracle.Encoder.create cfg.codec ~op:ctx.op.id ~value:v in
    (* Round 1: collect timestamps. *)
    let rs = Common.read_value cfg ctx in
    let ts = Timestamp.make ~num:(Common.max_num rs + 1) ~client:ctx.self in
    (* Round 2: store the replica everywhere, await a quorum. *)
    ctx.op.rounds <- ctx.op.rounds + 1;
    let tickets =
      (* [store_rmw] is a "keep the higher timestamp" join: merge-class,
         so deliveries of two stores to the same object commute. *)
      R.broadcast_rmw ~nature:`Merge ~n:cfg.n
        ~payload:(fun i -> [ Oracle.Encoder.get encoder i ])
        (fun i -> store (Chunk.v ~ts (Oracle.Encoder.get encoder i)))
    in
    ignore (R.await ~tickets ~quorum:write_quorum)
  in
  let read (ctx : R.ctx) =
    let rs = Common.read_value cfg ctx in
    (* Return the highest-timestamped replica; regularity needs no
       write-back. *)
    match Common.decodable_ts cfg.codec rs.chunks ~min_ts:Timestamp.zero with
    | None -> None
    | Some ts -> Common.decode_at cfg.codec rs.chunks ~ts
  in
  { R.name = name; init_obj; write; read }

let make cfg = make_gen ~name:"abd" ~write_quorum:(Common.quorum cfg) cfg

let make_broken ?(quorum_slack = 1) cfg =
  if quorum_slack < 1 then invalid_arg "Abd.make_broken: quorum_slack must be >= 1";
  make_gen ~name:"abd-broken" ~write_quorum:(Common.quorum cfg - quorum_slack) cfg

let make_misdeclared_merge cfg =
  make_gen ~store:lww_store_rmw ~name:"abd-misdeclared-merge"
    ~write_quorum:(Common.quorum cfg) cfg
