(** Byzantine-tolerant regular register over non-authenticated base
    objects (masking quorums).

    The executable side of "Integrated Bounds for Disintegrated Storage"
    (Berger, Keidar, Spiegelman, arXiv:1805.06265): when up to [b] base
    objects can return fabricated-but-well-formed states and there are
    no signatures, corroboration replaces trust — a read accepts a value
    only when [b+1] distinct objects return an identical (timestamp,
    provenance, contents) triple.  Coded pieces cannot be corroborated
    this way without keeping full information around, so the emulation
    stores full copies and the space bound collapses back to the
    replication floor [>= (f+1) * D]. *)

val make : budget:int -> Common.config -> Sb_sim.Runtime.algorithm
(** SWMR regular register tolerating [cfg.f] crashes plus [budget]
    Byzantine base objects.  Requires [cfg.n >= 2f + 2*budget + 1]
    (masking quorums), replication codec ([k = 1]), and
    [budget >= 0]; raises [Invalid_argument] otherwise.  With
    [budget = 0] this degenerates to the ABD baseline.  Correct for a
    single writer per run; the fault campaigns drive it with SWMR
    workloads.  Running it under a Byzantine policy whose effective
    budget exceeds [budget] is the designed negative control: [b+1]
    coordinated liars can corroborate a fabricated triple and the
    regularity verdict is refuted with a replayable counterexample. *)
