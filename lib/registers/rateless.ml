open Sb_storage
module R = Sb_sim.Runtime
module D = Sb_sim.Rmwdesc

(* The store/GC semantics live in [Sb_sim.Rmwdesc]: [Rateless_update]
   stores all of one write's pieces (distinct block numbers) at an
   object, evicting chunks staler than the round-1 barrier — the same
   discipline as the purely coded register — and [Rateless_gc] keeps
   only this object's own share of the completed write. *)
let make ?(blocks_per_object = 2) ~codec_seed (cfg : Common.config) =
  if blocks_per_object < 1 then
    invalid_arg "Rateless.make: need at least one block per object";
  let value_bytes = cfg.codec.Sb_codec.Codec.value_bytes in
  let k = cfg.codec.Sb_codec.Codec.k in
  if cfg.n < (2 * cfg.f) + k then invalid_arg "Rateless.make: need n >= 2f + k";
  let fountain = Sb_codec.Codec.fountain ~seed:codec_seed ~value_bytes ~k () in
  let b = blocks_per_object in
  let indices_for_object i = List.init b (fun j -> (b * i) + j) in
  let quorum = cfg.n - cfg.f in
  let v0 = Bytes.make value_bytes '\000' in
  let init_obj i =
    let vp =
      List.map
        (fun idx ->
          Chunk.v ~ts:Timestamp.zero
            (Block.initial ~index:idx (fountain.Sb_codec.Codec.encode v0 idx)))
        (indices_for_object i)
    in
    Objstate.init ~vp ()
  in
  let write (ctx : R.ctx) v =
    let encoder = Oracle.Encoder.create fountain ~op:ctx.op.id ~value:v in
    let pieces_for i = List.map (Oracle.Encoder.get encoder) (indices_for_object i) in
    let rs = Common.read_value cfg ctx in
    let stored_ts = rs.max_stored_ts in
    let ts = Timestamp.make ~num:(Common.max_num rs + 1) ~client:ctx.self in
    ctx.op.rounds <- ctx.op.rounds + 1;
    let tickets =
      R.broadcast_desc ~n:cfg.n ~payload:pieces_for (fun i ->
          D.Rateless_update { pieces = pieces_for i; ts; stored_ts })
    in
    ignore (R.await ~tickets ~quorum);
    ctx.op.rounds <- ctx.op.rounds + 1;
    let tickets =
      R.broadcast_desc ~n:cfg.n ~payload:pieces_for (fun i ->
          D.Rateless_gc { pieces = pieces_for i; ts })
    in
    ignore (R.await ~tickets ~quorum)
  in
  let read (ctx : R.ctx) =
    (* Accumulate chunks across sampling rounds: rateless decoding only
       gets easier with more blocks. *)
    let rec loop seen barrier =
      let rs = Common.read_value cfg ctx in
      let seen = rs.chunks @ seen in
      let barrier = Timestamp.max barrier rs.max_stored_ts in
      let candidates =
        List.sort_uniq Timestamp.compare
          (List.map (fun (c : Chunk.t) -> c.ts) seen)
        |> List.filter (fun ts -> Timestamp.(ts >= barrier))
        |> List.rev (* newest first *)
      in
      let decoded =
        List.find_map
          (fun ts ->
            match
              fountain.Sb_codec.Codec.decode (Common.distinct_pieces seen ~ts)
            with
            | Some v -> Some v
            | None -> None)
          candidates
      in
      match decoded with Some v -> Some v | None -> loop seen barrier
    in
    loop [] Timestamp.zero
  in
  { R.name = Printf.sprintf "rateless(b=%d)" b; init_obj; write; read }
