(** The simple safe wait-free register of Appendix E.

    Each base object [bo_i] stores {e exactly one} timestamped code piece
    (the [i]-th block of some value), so the storage cost is a constant
    [n * D / k = (2f/k + 1) * D] bits — below the paper's lower bound,
    which is possible because the register is only {e strongly safe}, not
    regular: a read concurrent with writes may return the initial value
    [v0] (Algorithm 5, line 18).

    Writes take two rounds; reads take one round; both are wait-free
    (Lemma 18).  Corollary 7 (reproduced by experiment E8) gives the
    storage cost. *)

val make : Common.config -> Sb_sim.Runtime.algorithm
