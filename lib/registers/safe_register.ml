open Sb_storage
module R = Sb_sim.Runtime

(* The update semantics (Algorithm 5, lines 10-12 — overwrite the single
   stored piece only if the incoming timestamp is strictly higher) live
   in [Sb_sim.Rmwdesc.Safe_update]. *)
let make (cfg : Common.config) =
  Common.validate cfg;
  let v0 = Common.initial_value cfg in
  let init_obj i =
    let block = Block.initial ~index:i (cfg.codec.Sb_codec.Codec.encode v0 i) in
    Objstate.init ~vp:[ Chunk.v ~ts:Timestamp.zero block ] ()
  in
  let write (ctx : R.ctx) v =
    let encoder = Oracle.Encoder.create cfg.codec ~op:ctx.op.id ~value:v in
    let rs = Common.read_value cfg ctx in
    let ts = Timestamp.make ~num:(Common.max_num rs + 1) ~client:ctx.self in
    ctx.op.rounds <- ctx.op.rounds + 1;
    let tickets =
      R.broadcast_desc ~n:cfg.n
        ~payload:(fun i -> [ Oracle.Encoder.get encoder i ])
        (fun i ->
          Sb_sim.Rmwdesc.Safe_update (Chunk.v ~ts (Oracle.Encoder.get encoder i)))
    in
    ignore (R.await ~tickets ~quorum:(Common.quorum cfg))
  in
  let read (ctx : R.ctx) =
    let rs = Common.read_value cfg ctx in
    (* Algorithm 5, lines 15-18: decode if some timestamp has k pieces,
       otherwise any outstanding write is concurrent and safety lets us
       return v0. *)
    match Common.decodable_ts cfg.codec rs.chunks ~min_ts:Timestamp.zero with
    | Some ts -> Common.decode_at cfg.codec rs.chunks ~ts
    | None -> Some (Common.initial_value cfg)
  in
  { R.name = "safe"; init_obj; write; read }
