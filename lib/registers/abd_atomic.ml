open Sb_storage
module R = Sb_sim.Runtime

let make (cfg : Common.config) =
  Common.validate cfg;
  if cfg.codec.Sb_codec.Codec.k <> 1 then
    invalid_arg "Abd_atomic.make: requires a replication codec (k = 1)";
  let base = Abd.make cfg in
  let write_back (ctx : R.ctx) ts value =
    let encoder = Oracle.Encoder.create cfg.codec ~op:ctx.op.id ~value in
    ctx.op.rounds <- ctx.op.rounds + 1;
    let tickets =
      R.broadcast_rmw ~nature:`Merge ~n:cfg.n
        ~payload:(fun i -> [ Oracle.Encoder.get encoder i ])
        (fun i -> Abd.store_rmw (Chunk.v ~ts (Oracle.Encoder.get encoder i)))
    in
    ignore (R.await ~tickets ~quorum:(Common.quorum cfg))
  in
  let read (ctx : R.ctx) =
    let rs = Common.read_value cfg ctx in
    match Common.decodable_ts cfg.codec rs.chunks ~min_ts:Timestamp.zero with
    | None -> None
    | Some ts -> (
      match Common.decode_at cfg.codec rs.chunks ~ts with
      | None -> None
      | Some value ->
        (* Second phase: ensure a quorum holds this value before
           returning, so no later read can see an older one. *)
        write_back ctx ts value;
        Some value)
  in
  { base with R.name = "abd-atomic"; read }
