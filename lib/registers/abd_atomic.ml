open Sb_storage
module R = Sb_sim.Runtime

let make (cfg : Common.config) =
  Common.validate cfg;
  if cfg.codec.Sb_codec.Codec.k <> 1 then
    invalid_arg "Abd_atomic.make: requires a replication codec (k = 1)";
  let base = Abd.make cfg in
  (* The write-back propagates an {e existing} write, so it re-encodes
     under that write's op id ([source]), not the reader's: the blocks
     it stores are byte-identical to the originals.  Tagging them with
     the reader's op would create replicas no tracked write owns —
     concurrent write-backs of one value would then fail to commute,
     and the [Sb_sanitize] availability monitor would see quorum
     subsets holding only orphaned blocks.  Because the write-back
     stores through [Abd.store_rmw] (an idempotent join), a duplicated
     or retransmitted write-back re-applied after a server recovery is
     also harmless. *)
  let write_back (ctx : R.ctx) ~source ts value =
    let encoder = Oracle.Encoder.create cfg.codec ~op:source ~value in
    ctx.op.rounds <- ctx.op.rounds + 1;
    let tickets =
      R.broadcast_desc ~n:cfg.n
        ~payload:(fun i -> [ Oracle.Encoder.get encoder i ])
        (fun i ->
          Sb_sim.Rmwdesc.Abd_store (Chunk.v ~ts (Oracle.Encoder.get encoder i)))
    in
    ignore (R.await ~tickets ~quorum:(Common.quorum cfg))
  in
  let read (ctx : R.ctx) =
    let rs = Common.read_value cfg ctx in
    match Common.decodable_ts cfg.codec rs.chunks ~min_ts:Timestamp.zero with
    | None -> None
    | Some ts -> (
      match Common.decode_at cfg.codec rs.chunks ~ts with
      | None -> None
      | Some value ->
        let source =
          match
            List.find_opt
              (fun (c : Chunk.t) -> Timestamp.compare c.ts ts = 0)
              rs.chunks
          with
          | Some c -> c.block.Block.source
          | None -> ctx.op.id
        in
        (* Second phase: ensure a quorum holds this value before
           returning, so no later read can see an older one. *)
        write_back ctx ~source ts value;
        Some value)
  in
  { base with R.name = "abd-atomic"; read }
