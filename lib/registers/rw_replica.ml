open Sb_storage
module R = Sb_sim.Runtime
module D = Sb_sim.Rmwdesc

(* Register emulations over READ/WRITE base objects — the model of
   "Space Complexity of Fault Tolerant Register Emulations"
   (Chockler-Spiegelman, arXiv:1705.07212).  A base object here offers
   only [Snapshot] and the blind [Rw_write] overwrite; there is no
   conditional application, so nothing server-side can arbitrate between
   concurrent writers.  The emulations compensate structurally:

   - each writer owns a disjoint {e group} of [2f+1] cells and only ever
     overwrites its own group (multi-writer arbitration moves into the
     timestamps chosen at round 1);
   - within a group, the [Read_write] base-object model's
     per-(client, object) FIFO discipline makes a cell a faithful
     register: a client's overwrites land in issue order.

   The paper's lower bound says a {e regular} emulation must keep [f+1]
   full copies alive per writer — adaptivity and coding buy nothing.
   [make] hits that floor exactly: a write stores [2f+1] full copies,
   awaits [f+1] acks (the "keepers"), then trims every non-keeper cell
   back to a meta-data-only stub, so the quiescent live storage of a
   group is exactly [(f+1) * D] bits.  [make_fcopy] awaits the same
   honest [f+1] quorum but then trims down to [f] full copies — the
   seeded negative control the storage-floor sanitizer must catch.  [make_safe] is the coded contrast: a {e safe} register over
   the same base objects storing [(2f+k) * D/k] bits, executably below
   the regular floor for [k > 2] — the escape hatch the bound leaves
   open for weaker-than-regular semantics. *)

type layout = { writers : int; group : int }

let layout ~writers (cfg : Common.config) =
  if writers <= 0 then invalid_arg "Rw_replica.make: need at least one writer";
  if cfg.n mod writers <> 0 then
    invalid_arg "Rw_replica.make: n must be writers * (2f + 1)";
  let group = cfg.n / writers in
  if group <> (2 * cfg.f) + 1 then
    invalid_arg "Rw_replica.make: each write group needs exactly 2f + 1 cells";
  { writers; group }

(* Cells of writer [g]'s group, as global object ids. *)
let cells lay g = List.init lay.group (fun j -> (g * lay.group) + j)

let overwrite ~obj ~chunks ~ts =
  let desc = D.Rw_write { chunks; ts } in
  R.trigger ~desc
    ~obj
    ~payload:(List.map (fun (c : Chunk.t) -> c.block) chunks)
    (D.apply desc)

let snapshot_round (cfg : Common.config) (ctx : R.ctx) =
  ctx.op.rounds <- ctx.op.rounds + 1;
  let tickets =
    R.broadcast_desc ~n:cfg.n ~payload:(fun _ -> []) (fun _ -> D.Snapshot)
  in
  R.await ~tickets ~quorum:(Common.quorum cfg)

(* The highest round number visible in a snapshot response set: cell
   contents and [storedTS] both count — a stub carries its write's
   timestamp in [storedTS] only. *)
let max_round rs =
  List.fold_left
    (fun acc (_, resp) ->
      match resp with
      | R.Ack -> acc
      | R.Snap (st : Objstate.t) ->
        List.fold_left
          (fun acc (c : Chunk.t) -> max acc c.ts.Timestamp.num)
          (max acc st.stored_ts.Timestamp.num)
          (st.vp @ st.vf))
    0 rs

let make_gen ~name ~keepers ~keep ~retry_reads ~writers (cfg : Common.config) =
  Common.validate cfg;
  if cfg.codec.Sb_codec.Codec.k <> 1 then
    invalid_arg "Rw_replica.make: full replication requires k = 1";
  let lay = layout ~writers cfg in
  if keepers < 1 || keepers > lay.group - cfg.f then
    invalid_arg "Rw_replica.make: keepers must lie in [1, f+1]";
  if keep < 1 || keep > keepers then
    invalid_arg "Rw_replica.make: keep must lie in [1, keepers]";
  let v0 = Common.initial_value cfg in
  let init_obj i =
    let block = Block.initial ~index:i (cfg.codec.Sb_codec.Codec.encode v0 i) in
    Objstate.init ~vf:[ Chunk.v ~ts:Timestamp.zero block ] ()
  in
  let write (ctx : R.ctx) v =
    let g = ctx.self in
    if g >= lay.writers then
      invalid_arg
        (Printf.sprintf "%s: client %d has no write group (writers = %d)" name
           g lay.writers);
    (* Round 1: snapshot ALL cells (n - f responses) to pick a timestamp
       above every write any later operation could have seen complete. *)
    let rs = snapshot_round cfg ctx in
    let ts = Timestamp.make ~num:(max_round rs + 1) ~client:g in
    (* Round 2: overwrite the own group with full copies; await
       [keepers] acks.  FIFO per (client, cell) means these can never be
       rolled back by this writer's own earlier stragglers. *)
    ctx.op.rounds <- ctx.op.rounds + 1;
    let encoder = Oracle.Encoder.create cfg.codec ~op:ctx.op.id ~value:v in
    let tickets =
      List.map
        (fun i ->
          overwrite ~obj:i
            ~chunks:[ Chunk.v ~ts (Oracle.Encoder.get encoder i) ]
            ~ts)
        (cells lay g)
    in
    let acks = R.await ~tickets ~quorum:keepers in
    (* Trim round: the first [keep] responders keep their full copy;
       every other group cell is overwritten with a meta-data-only stub
       (it still carries [ts] in storedTS, so round 1 keeps seeing the
       write).  Stubs are fired without awaiting — FIFO guarantees each
       lands after the full copy it trims.  [keep = keepers = f+1] for
       the correct register; [make_fcopy] trims one keeper too. *)
    let kept = List.filteri (fun idx _ -> idx < keep) acks |> List.map fst in
    List.iter
      (fun i ->
        if not (List.mem i kept) then ignore (overwrite ~obj:i ~chunks:[] ~ts))
      (cells lay g)
  in
  let read (ctx : R.ctx) =
    (* The newest full copy among the responding cells, and the newest
       [storedTS] seen anywhere.  A stub's [storedTS] is {e completion
       evidence}: stubs are only fired after the write collected its
       [keepers] acks, so a stub at [ts] proves write [ts] completed and
       regularity forbids returning anything older.  Because the
       snapshot samples cells one at a time, a single round can catch
       {e different} writes' trim victims — e.g. cell A as the previous
       write's stub before the next overwrite lands, then cell B as the
       next write's stub — and hold no full copy at all even though
       [keepers] full copies exist at every instant.  So the read
       retries until it holds a full copy at least as new as its
       evidence.  Termination: a quiescent [n - f] quorum reaches at
       least [group - f = f+1] cells of the newest write's group, of
       which at most [f] are stubs, so some full copy at the maximal
       [storedTS] responds; mid-flight, each fooled round consumes
       writer deliveries, which are finite.  [make_fcopy] keeps only
       [f] full copies, which breaks exactly this arithmetic — its
       one-shot read ([retry_reads = false]) would otherwise spin at
       quiescence. *)
    let rec attempt () =
      let rs = snapshot_round cfg ctx in
      let best, evidence =
        List.fold_left
          (fun ((best, ev) as acc) (_, resp) ->
            match resp with
            | R.Ack -> acc
            | R.Snap (st : Objstate.t) ->
              let ev =
                if Timestamp.compare st.stored_ts ev > 0 then st.stored_ts
                else ev
              in
              let best =
                List.fold_left
                  (fun best (c : Chunk.t) ->
                    match best with
                    | Some (b : Chunk.t) when Timestamp.(b.ts >= c.ts) -> best
                    | _ -> Some c)
                  best st.vf
              in
              (best, ev))
          (None, Timestamp.zero) rs
      in
      match best with
      | Some c when (not retry_reads) || Timestamp.(c.ts >= evidence) ->
        Common.decode_at cfg.codec [ c ] ~ts:c.ts
      | None when (not retry_reads) || Timestamp.equal evidence Timestamp.zero
        ->
        Some v0
      | _ -> attempt ()
    in
    attempt ()
  in
  { R.name; init_obj; write; read }

let make ?(writers = 1) cfg =
  let keepers = cfg.Common.f + 1 in
  make_gen ~name:"rw-regular" ~keepers ~keep:keepers ~retry_reads:true ~writers
    cfg

let make_fcopy ?(writers = 1) cfg =
  if cfg.Common.f < 1 then
    invalid_arg "Rw_replica.make_fcopy: needs f >= 1 to have f copies";
  make_gen ~name:"rw-fcopy" ~keepers:(cfg.Common.f + 1) ~keep:cfg.Common.f
    ~retry_reads:false ~writers cfg

(* The safe/coded contrast register: one coded piece per cell, no trim
   round.  Stores [(2f+k) * D/k] bits at quiescence — strictly below the
   regular floor [(f+1) * D] once [k > 2] — but reads overlapping a
   write may legitimately return [v0]: the emulation is only {e safe}.
   Single-writer by construction (blind overwrites by multiple writers
   to the same cell would race); the workloads enforce it. *)
let make_safe (cfg : Common.config) =
  Common.validate cfg;
  let v0 = Common.initial_value cfg in
  let init_obj i =
    let block = Block.initial ~index:i (cfg.codec.Sb_codec.Codec.encode v0 i) in
    Objstate.init ~vf:[ Chunk.v ~ts:Timestamp.zero block ] ()
  in
  let write (ctx : R.ctx) v =
    let rs = snapshot_round cfg ctx in
    let ts = Timestamp.make ~num:(max_round rs + 1) ~client:ctx.self in
    ctx.op.rounds <- ctx.op.rounds + 1;
    let encoder = Oracle.Encoder.create cfg.codec ~op:ctx.op.id ~value:v in
    let tickets =
      List.init cfg.n (fun i ->
          overwrite ~obj:i
            ~chunks:[ Chunk.v ~ts (Oracle.Encoder.get encoder i) ]
            ~ts)
    in
    ignore (R.await ~tickets ~quorum:(Common.quorum cfg))
  in
  let read (ctx : R.ctx) =
    let rs = Common.read_value cfg ctx in
    (* Algorithm 5's read rule transplanted: decode the newest timestamp
       with k pieces in the quorum; any undecodable mix means a write is
       concurrent, and safety lets the read return v0. *)
    match Common.decodable_ts cfg.codec rs.chunks ~min_ts:Timestamp.zero with
    | Some ts -> Common.decode_at cfg.codec rs.chunks ~ts
    | None -> Some v0
  in
  { R.name = "rw-safe"; init_obj; write; read }
