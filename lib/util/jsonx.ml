let bool b = if b then "true" else "false"
let float x = Printf.sprintf "%.6g" x
let int = string_of_int
let str s = Printf.sprintf "%S" s

let obj fields =
  "{" ^ String.concat ", " (List.map (fun (k, v) -> str k ^ ": " ^ v) fields) ^ "}"

let arr items = "[" ^ String.concat ", " items ^ "]"

let write file fields =
  let oc = open_out file in
  output_string oc "{\n";
  List.iteri
    (fun i (k, v) ->
      Printf.fprintf oc "  %S: %s%s\n" k v
        (if i = List.length fields - 1 then "" else ","))
    fields;
  output_string oc "}\n";
  close_out oc;
  Printf.printf "wrote %s\n" file

let field file key =
  let ic = open_in file in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  let pat = Printf.sprintf "%S:" key in
  match
    let rec find i =
      if i + String.length pat > String.length s then None
      else if String.sub s i (String.length pat) = pat then
        Some (i + String.length pat)
      else find (i + 1)
    in
    find 0
  with
  | None -> None
  | Some i ->
    let j = ref i in
    while !j < String.length s && (s.[!j] = ' ' || s.[!j] = '\t') do
      incr j
    done;
    let k = ref !j in
    while
      !k < String.length s
      && (match s.[!k] with
         | '0' .. '9' | '.' | '-' | '+' | 'e' | 'E' -> true
         | _ -> false)
    do
      incr k
    done;
    float_of_string_opt (String.sub s !j (!k - !j))

let check ?(budget = 1.25) ~current ~baseline ~keys () =
  if not (Sys.file_exists baseline) then begin
    Printf.printf "check: no baseline %s (skipped)\n" baseline;
    true
  end
  else begin
    let ok = ref true in
    List.iter
      (fun key ->
        match (field current key, field baseline key) with
        | Some cur, Some base when base > 0.0 ->
          let ratio = cur /. base in
          let fine = ratio <= budget in
          if not fine then ok := false;
          Printf.printf
            "check: %-16s %.4g vs baseline %.4g  (%.2fx, budget <= %.2fx) %s\n"
            key cur base ratio budget
            (if fine then "ok" else "REGRESSION")
        | _ ->
          Printf.printf "check: %-16s missing in %s or %s (skipped)\n" key
            current baseline)
      keys;
    !ok
  end
