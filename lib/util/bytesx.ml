let xor_into ~src ~dst =
  let n = Bytes.length dst in
  if Bytes.length src <> n then invalid_arg "Bytesx.xor_into: length mismatch";
  for i = 0 to n - 1 do
    Bytes.unsafe_set dst i
      (Char.unsafe_chr
         (Char.code (Bytes.unsafe_get dst i)
          lxor Char.code (Bytes.unsafe_get src i)))
  done

let xor a b =
  let out = Bytes.copy a in
  xor_into ~src:b ~dst:out;
  out

let of_int_le v ~width =
  if v < 0 then invalid_arg "Bytesx.of_int_le: negative";
  let b = Bytes.make width '\000' in
  let rec go v i =
    if v > 0 then
      if i >= width then invalid_arg "Bytesx.of_int_le: overflow"
      else begin
        Bytes.set b i (Char.chr (v land 0xff));
        go (v lsr 8) (i + 1)
      end
  in
  go v 0;
  b

let to_int_le b =
  let n = Bytes.length b in
  if n > 7 then invalid_arg "Bytesx.to_int_le: too wide";
  let rec go acc i =
    if i < 0 then acc else go ((acc lsl 8) lor Char.code (Bytes.get b i)) (i - 1)
  in
  go 0 (n - 1)

let pad_to b n =
  if Bytes.length b >= n then b
  else begin
    let out = Bytes.make n '\000' in
    Bytes.blit b 0 out 0 (Bytes.length b);
    out
  end

let chunks b ~size ~count =
  if size <= 0 then invalid_arg "Bytesx.chunks: size must be positive";
  Array.init count (fun i ->
      let chunk = Bytes.make size '\000' in
      let off = i * size in
      let avail = max 0 (min size (Bytes.length b - off)) in
      if avail > 0 then Bytes.blit b off chunk 0 avail;
      chunk)

let concat_chunks cs ~len =
  let total = Array.fold_left (fun acc c -> acc + Bytes.length c) 0 cs in
  let out = Bytes.make total '\000' in
  let off = ref 0 in
  Array.iter
    (fun c ->
      Bytes.blit c 0 out !off (Bytes.length c);
      off := !off + Bytes.length c)
    cs;
  Bytes.sub out 0 (min len total)

let hex b =
  let buf = Buffer.create (2 * Bytes.length b) in
  Bytes.iter (fun ch -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code ch))) b;
  Buffer.contents buf

let of_hex s =
  let len = String.length s in
  if len mod 2 <> 0 then invalid_arg "Bytesx.of_hex: odd length";
  let nibble c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> invalid_arg "Bytesx.of_hex: not a hex digit"
  in
  Bytes.init (len / 2) (fun i ->
      Char.chr ((nibble s.[2 * i] lsl 4) lor nibble s.[(2 * i) + 1]))

let popcount_byte = Array.init 256 (fun i ->
    let rec go n acc = if n = 0 then acc else go (n lsr 1) (acc + (n land 1)) in
    go i 0)

let hamming_distance a b =
  let n = Bytes.length a in
  if Bytes.length b <> n then invalid_arg "Bytesx.hamming_distance: length mismatch";
  let acc = ref 0 in
  for i = 0 to n - 1 do
    acc := !acc + popcount_byte.(Char.code (Bytes.get a i) lxor Char.code (Bytes.get b i))
  done;
  !acc
