(** Generation of pairwise-distinct register values.

    Experiment workloads write values that must be unique (so reads can
    be attributed to writes) and never equal to the all-zero initial
    value [v0]. *)

val distinct : value_bytes:int -> int -> bytes
(** [distinct ~value_bytes i] is deterministic in [i], distinct across
    [i], differs from all-zeros in every position, and differs from
    [distinct ~value_bytes j] ([j <> i]) byte-wise throughout — so code
    pieces of different values differ too. *)
