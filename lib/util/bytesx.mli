(** Byte-string helpers shared by the codecs and the simulator. *)

val xor_into : src:bytes -> dst:bytes -> unit
(** [xor_into ~src ~dst] xors [src] into [dst] in place.  Both buffers must
    have the same length. *)

val xor : bytes -> bytes -> bytes
(** [xor a b] is a fresh buffer holding the byte-wise xor of [a] and [b].
    Both must have the same length. *)

val of_int_le : int -> width:int -> bytes
(** [of_int_le v ~width] encodes the non-negative integer [v] as [width]
    little-endian bytes.  Raises [Invalid_argument] if [v] does not fit. *)

val to_int_le : bytes -> int
(** Inverse of {!of_int_le} for widths up to 7 bytes (fits in an OCaml
    [int] on 64-bit platforms). *)

val pad_to : bytes -> int -> bytes
(** [pad_to b n] is [b] zero-padded on the right to length [n] (identity if
    [b] is already at least [n] bytes long). *)

val chunks : bytes -> size:int -> count:int -> bytes array
(** [chunks b ~size ~count] splits [b] into [count] chunks of [size] bytes
    each, zero-padding the tail. *)

val concat_chunks : bytes array -> len:int -> bytes
(** [concat_chunks cs ~len] concatenates [cs] and truncates to [len]
    bytes; inverse of {!chunks}. *)

val hex : bytes -> string
(** Lowercase hex rendering, for diagnostics. *)

val of_hex : string -> bytes
(** Inverse of {!hex}; raises [Invalid_argument] on odd length or
    non-hex characters. *)

val hamming_distance : bytes -> bytes -> int
(** Number of differing bits between two equal-length buffers. *)
