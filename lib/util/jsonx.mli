(** Flat JSON metric files: one object of scalar fields, written by the
    benchmark suite ([BENCH_*.json]), the chaos campaigns and the
    service load generator, and compared against committed baselines in
    [bench/baselines/].

    This is deliberately not a JSON parser: {!field} scans for a quoted
    key and reads the number after it, which is exactly enough for the
    files {!write} produces. *)

val bool : bool -> string
val float : float -> string
val int : int -> string

val str : string -> string
(** Quoted and escaped — for string-valued fields. *)

val obj : (string * string) list -> string
(** One-line object from already-rendered values — the report builders
    ([LINT_report.json], [SCHEMA_report.json]) nest these. *)

val arr : string list -> string
(** One-line array from already-rendered values. *)

val write : string -> (string * string) list -> unit
(** [write file fields] writes [{ "k": v, ... }] and prints
    ["wrote file"].  Values are emitted verbatim: pass them through
    {!bool}/{!float}/{!int}/{!str}. *)

val field : string -> string -> float option
(** [field file key] is the numeric value of [key] in [file], if both
    exist. *)

val check :
  ?budget:float -> current:string -> baseline:string -> keys:string list ->
  unit -> bool
(** Compare [keys] of [current] against [baseline]; any ratio above
    [budget] (default 1.25) fails.  A missing baseline file skips the
    whole comparison (returns [true]); a missing key is reported and
    skipped.  Prints one line per key. *)
