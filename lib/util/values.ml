let distinct ~value_bytes i =
  if i < 0 then invalid_arg "Values.distinct: negative index";
  if value_bytes < 1 then invalid_arg "Values.distinct: empty value";
  let v = Bytes.make value_bytes '\000' in
  (* An injective little-endian id prefix guarantees distinctness. *)
  let prefix = min 7 value_bytes in
  let id = i + 1 in
  if prefix < 7 && id >= 1 lsl (8 * prefix) then
    invalid_arg "Values.distinct: index too large for value size";
  let rec fill pos x =
    if pos < prefix then begin
      Bytes.set v pos (Char.chr (x land 0xff));
      fill (pos + 1) (x lsr 8)
    end
  in
  fill 0 id;
  (* Scatter the id through the rest of the buffer so code pieces taken
     from any region of the value tend to differ across ids too. *)
  for p = prefix to value_bytes - 1 do
    let mixed = (id * (p + 17)) land 0xff in
    Bytes.set v p (Char.chr (if mixed = 0 then 0xa5 else mixed))
  done;
  v
