(** Deterministic, splittable pseudo-random number generator.

    All randomness in the simulator flows through this module so that every
    run is reproducible from a single 64-bit seed.  The generator is
    xoshiro256** seeded through splitmix64, which is the standard
    recommended seeding procedure and gives full 256-bit state from any
    64-bit seed. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a generator deterministically from [seed]. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val split : t -> t
(** [split t] derives a new generator from [t], advancing [t].  Streams
    produced by the parent and the child are statistically independent;
    used to give each simulated client its own stream. *)

val bits64 : t -> int64
(** Next 64 uniformly random bits. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val pick : t -> 'a array -> 'a
(** Uniform choice from a non-empty array. *)

val pick_list : t -> 'a list -> 'a
(** Uniform choice from a non-empty list. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val bytes : t -> int -> bytes
(** [bytes t n] is [n] uniformly random bytes. *)

val state : t -> int64 * int64 * int64 * int64
(** The raw 256-bit xoshiro state, exposed so exploration can hash a
    generator without marshalling it.  Two generators with equal state
    produce identical streams. *)
