(** Plain-text table rendering for experiment reports.

    Every experiment in the benchmark harness prints its rows through this
    module so that the output of [bench/main.exe] reads like the tables in
    the paper's analysis. *)

type align = Left | Right

type t
(** A table under construction. *)

val create : ?title:string -> (string * align) list -> t
(** [create ~title columns] starts a table with the given column headers
    and alignments. *)

val add_row : t -> string list -> unit
(** Appends a row; the row must have exactly as many cells as there are
    columns. *)

val add_int_row : t -> int list -> unit
(** Convenience: a row of integers, all right-aligned as rendered text. *)

val render : t -> string
(** Renders the table with a header rule and padded columns. *)

val to_csv : t -> string
(** Comma-separated rendering (header row first); cells containing
    commas or quotes are quoted. *)

val print : t -> unit
(** [print t] writes [render t] to stdout followed by a blank line. *)
