type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* splitmix64, used only to expand the seed into the xoshiro state. *)
let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 t =
  let open Int64 in
  let result = mul (rotl (mul t.s1 5L) 7) 9L in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  let state = ref (bits64 t) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let bound64 = Int64.of_int bound in
  let rec go () =
    let r = Int64.shift_right_logical (bits64 t) 1 in
    let v = Int64.rem r bound64 in
    if Int64.sub (Int64.sub r v) (Int64.sub bound64 1L) < 0L && Int64.compare r 0L < 0
    then go ()
    else Int64.to_int v
  in
  go ()

let float t bound =
  let r = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float r *. (1.0 /. 9007199254740992.0) *. bound

let bool t = Int64.compare (Int64.logand (bits64 t) 1L) 0L <> 0

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Prng.pick: empty array";
  arr.(int t (Array.length arr))

let pick_list t l =
  match l with
  | [] -> invalid_arg "Prng.pick_list: empty list"
  | _ -> List.nth l (int t (List.length l))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let bytes t n =
  let b = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.unsafe_set b i (Char.unsafe_chr (int t 256))
  done;
  b

let state t = (t.s0, t.s1, t.s2, t.s3)
