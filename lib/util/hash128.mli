(** Fast 128-bit streaming hash (two independent murmur3-style 64-bit
    lanes).  Built for the explorer's incremental state fingerprints:
    absorbing a word costs a handful of multiplies, so hashing a small
    simulator world is ~10× cheaper than [Marshal]+MD5.

    Not cryptographic.  The explorer's [--paranoid-key] mode
    cross-checks these keys against the Marshal-based
    [Runtime.exploration_key] when stronger guarantees are wanted. *)

type t
(** Mutable streaming state. *)

val create : unit -> t
(** Fresh hasher in the (fixed, seedless) initial state. *)

val copy : t -> t
(** Independent copy of the current state — the basis for chain hashes
    over append-only structures (absorb the delta into the copy). *)

val reset : t -> unit
(** Return to the initial state, reusing the allocation. *)

val add_int : t -> int -> unit
val add_int64 : t -> int64 -> unit
val add_char : t -> char -> unit

val add_bytes : t -> bytes -> unit
(** Absorbs contents and length ([add_bytes h b] differs from absorbing
    the same bytes split across two calls). *)

val add_string : t -> string -> unit
val add_subbytes : t -> bytes -> int -> int -> unit

val absorb : t -> t -> unit
(** [absorb t u] mixes [u]'s finalized lanes into [t] without touching
    [u] — composes chain hashes into an extraction hash. *)

val lanes : t -> int64 * int64
(** Finalized (avalanched) lanes.  Does not mutate. *)

val digest : t -> string
(** 16-byte binary digest of {!lanes} — cheap hashtable key. *)

val to_hex : t -> string
(** 32-char hex rendering of {!lanes}, for diagnostics. *)

val equal : t -> t -> bool
(** State equality (same absorbed sequence ⇒ equal). *)
