(* A fast 128-bit streaming hash: two independent 64-bit lanes, each
   mixed with a murmur3-style round per absorbed word.  Used for the
   explorer's incremental state fingerprints, where Marshal+MD5 is far
   too slow (~15 µs per key vs ~1 µs here on small worlds).

   Not cryptographic.  Collision resistance only needs to beat the
   size of a schedule-exploration cache (millions of keys), which two
   independent 64-bit lanes do comfortably; the explorer additionally
   offers a --paranoid-key mode that cross-checks against the Marshal
   key. *)

type t = { mutable a : int64; mutable b : int64 }

(* Distinct odd constants per lane (from murmur3/splitmix64). *)
let c1a = 0x87c37b91114253d5L
let c2a = 0x4cf5ad432745937fL
let c1b = 0xff51afd7ed558ccdL
let c2b = 0xc4ceb9fe1a85ec53L

let create () = { a = 0x9e3779b97f4a7c15L; b = 0x6a09e667f3bcc909L }
let copy t = { a = t.a; b = t.b }
let reset t =
  t.a <- 0x9e3779b97f4a7c15L;
  t.b <- 0x6a09e667f3bcc909L

let[@inline] rotl x r = Int64.logor (Int64.shift_left x r) (Int64.shift_right_logical x (64 - r))

let[@inline] add_int64 t w =
  let ka = Int64.mul w c1a in
  let ka = rotl ka 31 in
  let ka = Int64.mul ka c2a in
  let a = Int64.logxor t.a ka in
  let a = rotl a 27 in
  t.a <- Int64.add (Int64.mul a 5L) 0x52dce729L;
  let kb = Int64.mul w c1b in
  let kb = rotl kb 33 in
  let kb = Int64.mul kb c2b in
  let b = Int64.logxor t.b kb in
  let b = rotl b 29 in
  t.b <- Int64.add (Int64.mul b 5L) 0x38495ab5L

let[@inline] add_int t i = add_int64 t (Int64.of_int i)

let add_subbytes t buf pos len =
  let words = len / 8 in
  for i = 0 to words - 1 do
    add_int64 t (Bytes.get_int64_le buf (pos + (i * 8)))
  done;
  let tail = len land 7 in
  if tail > 0 then begin
    (* Pack the tail into one word; length is mixed separately so
       "ab" + "c" never aliases "abc". *)
    let w = ref 0L in
    for i = 0 to tail - 1 do
      w :=
        Int64.logor !w
          (Int64.shift_left
             (Int64.of_int (Char.code (Bytes.unsafe_get buf (pos + (words * 8) + i))))
             (8 * i))
    done;
    add_int64 t !w
  end;
  add_int t len

let add_bytes t buf = add_subbytes t buf 0 (Bytes.length buf)
let add_string t s = add_subbytes t (Bytes.unsafe_of_string s) 0 (String.length s)
let add_char t c = add_int t (Char.code c)

(* splitmix64 finalizer — avalanche both lanes before exposing them. *)
let[@inline] fmix k =
  let k = Int64.logxor k (Int64.shift_right_logical k 33) in
  let k = Int64.mul k 0xff51afd7ed558ccdL in
  let k = Int64.logxor k (Int64.shift_right_logical k 33) in
  let k = Int64.mul k 0xc4ceb9fe1a85ec53L in
  Int64.logxor k (Int64.shift_right_logical k 33)

let lanes t = (fmix t.a, fmix t.b)

let digest t =
  let x, y = lanes t in
  let buf = Bytes.create 16 in
  Bytes.set_int64_le buf 0 x;
  Bytes.set_int64_le buf 8 y;
  Bytes.unsafe_to_string buf

let to_hex t =
  let x, y = lanes t in
  Printf.sprintf "%016Lx%016Lx" x y

let absorb t other =
  (* Mix another hasher's (finalized) lanes into this one, e.g. a
     per-client chain hash into the state-wide extraction hash. *)
  let x, y = lanes other in
  add_int64 t x;
  add_int64 t y

let equal t u = Int64.equal t.a u.a && Int64.equal t.b u.b
