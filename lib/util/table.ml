type align = Left | Right

type t = {
  title : string option;
  columns : (string * align) array;
  mutable rows : string list list; (* reversed *)
}

let create ?title columns = { title; columns = Array.of_list columns; rows = [] }

let add_row t row =
  if List.length row <> Array.length t.columns then
    invalid_arg "Table.add_row: wrong number of cells";
  t.rows <- row :: t.rows

let add_int_row t row = add_row t (List.map string_of_int row)

let render t =
  let rows = List.rev t.rows in
  let ncols = Array.length t.columns in
  let widths = Array.init ncols (fun i -> String.length (fst t.columns.(i))) in
  List.iter
    (fun row ->
      List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row)
    rows;
  let pad align width s =
    let n = width - String.length s in
    match align with
    | Left -> s ^ String.make n ' '
    | Right -> String.make n ' ' ^ s
  in
  let buf = Buffer.create 256 in
  (match t.title with
   | Some title ->
     Buffer.add_string buf title;
     Buffer.add_char buf '\n'
   | None -> ());
  let render_row cells =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf (pad (snd t.columns.(i)) widths.(i) cell))
      cells;
    Buffer.add_char buf '\n'
  in
  render_row (Array.to_list (Array.map fst t.columns));
  Array.iteri
    (fun i w ->
      if i > 0 then Buffer.add_string buf "  ";
      Buffer.add_string buf (String.make w '-'))
    widths;
  Buffer.add_char buf '\n';
  List.iter render_row rows;
  Buffer.contents buf

let csv_cell s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

let to_csv t =
  let buf = Buffer.create 256 in
  let row cells =
    Buffer.add_string buf (String.concat "," (List.map csv_cell cells));
    Buffer.add_char buf '\n'
  in
  row (Array.to_list (Array.map fst t.columns));
  List.iter row (List.rev t.rows);
  Buffer.contents buf

let print t =
  print_string (render t);
  print_newline ()
