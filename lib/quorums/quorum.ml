type t = {
  universe : int;
  name : string;
  is_quorum : int list -> bool;
}

let normalise universe members =
  let sorted = List.sort_uniq Int.compare members in
  if List.exists (fun m -> m < 0 || m >= universe) sorted then
    invalid_arg "Quorum: member out of range";
  sorted

let is_quorum t members = t.is_quorum (normalise t.universe members)

let majority ~n =
  if n < 1 then invalid_arg "Quorum.majority: empty universe";
  {
    universe = n;
    name = Printf.sprintf "majority(n=%d)" n;
    is_quorum = (fun q -> 2 * List.length q > n);
  }

let counting ~n ~size =
  if n < 1 then invalid_arg "Quorum.counting: empty universe";
  if size < 1 || size > n then invalid_arg "Quorum.counting: bad size";
  {
    universe = n;
    name = Printf.sprintf "counting(n=%d,size=%d)" n size;
    is_quorum = (fun q -> List.length q >= size);
  }

let grid ~rows ~cols =
  if rows < 1 || cols < 1 then invalid_arg "Quorum.grid: empty grid";
  let universe = rows * cols in
  let is_quorum q =
    let in_q = Array.make universe false in
    List.iter (fun m -> in_q.(m) <- true) q;
    let full_row r =
      let rec go c = c >= cols || (in_q.((r * cols) + c) && go (c + 1)) in
      go 0
    in
    let touches_row r =
      let rec go c = c < cols && (in_q.((r * cols) + c) || go (c + 1)) in
      go 0
    in
    let rec has_full r = r < rows && (full_row r || has_full (r + 1)) in
    let rec touches_all r = r >= rows || (touches_row r && touches_all (r + 1)) in
    has_full 0 && touches_all 0
  in
  { universe; name = Printf.sprintf "grid(%dx%d)" rows cols; is_quorum }

let weighted ~weights ~threshold =
  let universe = Array.length weights in
  if universe = 0 then invalid_arg "Quorum.weighted: empty universe";
  if Array.exists (fun w -> w < 0) weights then
    invalid_arg "Quorum.weighted: negative weight";
  {
    universe;
    name = Printf.sprintf "weighted(n=%d,threshold=%d)" universe threshold;
    is_quorum =
      (fun q -> List.fold_left (fun acc m -> acc + weights.(m)) 0 q >= threshold);
  }

(* --- exhaustive analyses ------------------------------------------- *)

let check_small t label =
  if t.universe > 20 then
    invalid_arg (Printf.sprintf "Quorum.%s: universe too large for enumeration" label)

let members_of_mask universe mask =
  List.filter (fun i -> mask land (1 lsl i) <> 0) (List.init universe Fun.id)

let quorum_mask t mask = t.is_quorum (members_of_mask t.universe mask)

let minimal_quorums t =
  check_small t "minimal_quorums";
  let n = t.universe in
  let all = (1 lsl n) - 1 in
  let quorums = ref [] in
  for mask = 1 to all do
    if quorum_mask t mask then begin
      (* minimal iff removing any single member breaks it *)
      let minimal = ref true in
      List.iter
        (fun i ->
          if mask land (1 lsl i) <> 0 && quorum_mask t (mask land lnot (1 lsl i)) then
            minimal := false)
        (List.init n Fun.id);
      if !minimal then quorums := mask :: !quorums
    end
  done;
  List.sort (List.compare Int.compare) (List.map (members_of_mask n) !quorums)

let popcount mask =
  let rec go m acc = if m = 0 then acc else go (m lsr 1) (acc + (m land 1)) in
  go mask 0

let min_intersection t =
  check_small t "min_intersection";
  let minimal =
    List.map
      (fun q -> List.fold_left (fun acc i -> acc lor (1 lsl i)) 0 q)
      (minimal_quorums t)
  in
  match minimal with
  | [] -> 0
  | _ ->
    List.fold_left
      (fun best q1 ->
        List.fold_left (fun best q2 -> min best (popcount (q1 land q2))) best minimal)
      t.universe minimal

let available_after t ~failures =
  check_small t "available_after";
  if failures < 0 || failures > t.universe then
    invalid_arg "Quorum.available_after: bad failure count";
  let n = t.universe in
  let all = (1 lsl n) - 1 in
  (* Every set of n - failures objects (complement of a failure set)
     must itself satisfy the quorum predicate or contain a quorum;
     since predicates here are monotone it suffices to test the set. *)
  let ok = ref true in
  for mask = 0 to all do
    if popcount mask = failures && not (quorum_mask t (all land lnot mask)) then
      ok := false
  done;
  !ok

let register_requirements ~n ~f ~k =
  let t = counting ~n ~size:(n - f) in
  let verdict =
    if n > 20 then n >= (2 * f) + k
    else available_after t ~failures:f && min_intersection t >= k
  in
  (t, verdict)
