(** Quorum systems over [n] base objects.

    The paper's algorithms use the counting rule "await n − f responses",
    which implicitly relies on two properties of the majority-style
    quorum system it induces:

    - {b availability}: every set of [n - f] objects contains a quorum,
      so no operation blocks when at most [f] objects crash;
    - {b k-intersection}: any two quorums share at least
      [n - 2f >= k] objects, so a reader's quorum always overlaps a
      writer's in enough objects to recover [k] distinct code pieces.

    This module makes those structures explicit and verifiable.  A
    quorum system is represented by its membership predicate plus the
    universe size; concrete constructors cover the systems used in the
    replication/erasure-coding literature.  [check_*] functions verify
    the defining properties by exhaustive enumeration (exponential in
    [n]; intended for tests and small configurations). *)

type t = {
  universe : int;               (** Objects are [0 .. universe-1]. *)
  name : string;
  is_quorum : int list -> bool; (** Membership test; input is sorted and
                                    duplicate-free. *)
}

val majority : n:int -> t
(** Sets of size strictly greater than [n/2]. *)

val counting : n:int -> size:int -> t
(** All sets of at least [size] objects — the paper's "await [size]
    responses" rule; [counting ~n ~size:(n-f)] is what the register
    emulations implement. *)

val grid : rows:int -> cols:int -> t
(** The grid quorum system: a quorum contains one full row plus one
    element of every row ([universe = rows * cols]).  Included as the
    classic low-load contrast to counting quorums. *)

val weighted : weights:int array -> threshold:int -> t
(** Sets whose total weight reaches [threshold]. *)

val is_quorum : t -> int list -> bool
(** Membership after sorting/deduplicating and bounds-checking. *)

val min_intersection : t -> int
(** The smallest [|Q1 ∩ Q2|] over all pairs of {e minimal} quorums,
    by exhaustive enumeration.  Raises [Invalid_argument] if
    [universe > 20]. *)

val available_after : t -> failures:int -> bool
(** Whether every set of [universe - failures] objects contains a
    quorum (so the system stays live after [failures] crashes).
    Exhaustive; [universe <= 20]. *)

val minimal_quorums : t -> int list list
(** All inclusion-minimal quorums, sorted.  Exhaustive; [universe <= 20]. *)

val register_requirements : n:int -> f:int -> k:int -> t * bool
(** The counting system the paper's register emulations use,
    [counting ~n ~size:(n-f)], paired with the verdict of the two
    properties above: available after [f] failures and
    [k]-intersecting.  The boolean is [true] exactly when [n >= 2f + k]
    — the paper's resilience condition. *)
