module J = Sb_util.Jsonx
module W = Sb_service.Wire
module D = Sb_sim.Rmwdesc

type gate = { g_name : string; g_ok : bool; g_detail : string }

let nature_name = function
  | `Mutating -> "mutating"
  | `Readonly -> "readonly"
  | `Merge -> "merge"

let cx_string cx = Format.asprintf "%a" Certify.pp_counterexample cx

(* ------------------------------------------------------------------ *)
(* Gates                                                               *)
(* ------------------------------------------------------------------ *)

let gate_defaults c =
  match Certify.check_defaults c with
  | [] ->
    {
      g_name = "defaults-match-certified";
      g_ok = true;
      g_detail =
        Printf.sprintf "all %d constructors agree" (List.length c.Certify.entries);
    }
  | mismatches ->
    {
      g_name = "defaults-match-certified";
      g_ok = false;
      g_detail =
        String.concat "; "
          (List.map
             (fun (ctor, declared, certified) ->
               Printf.sprintf "%s declared %s but certified %s"
                 (Universe.ctor_name ctor) (nature_name declared)
                 (nature_name certified))
             mismatches);
    }

let gate_negative_control c =
  match Certify.check_declaration c Universe.Lww_store ~claimed:`Merge with
  | Error cx ->
    {
      g_name = "lww-store-merge-refuted";
      g_ok = true;
      g_detail = "mis-declaration caught: " ^ cx_string cx;
    }
  | Ok () ->
    {
      g_name = "lww-store-merge-refuted";
      g_ok = false;
      g_detail =
        "declaring lww-store merge-class was accepted: the certifier lost its \
         teeth";
    }

let gate_independence c =
  match Certify.audit_explore_independence c with
  | [] ->
    {
      g_name = "explore-independence-derived";
      g_ok = true;
      g_detail = "every commuting nature pair is backed by a proved matrix cell";
    }
  | violations ->
    {
      g_name = "explore-independence-derived";
      g_ok = false;
      g_detail = String.concat "; " violations;
    }

(* One request per universe description: the vocabulary is closed, so
   round-tripping all of them exercises every constructor's codec arm. *)
let gate_wire c =
  ignore c;
  let u = Universe.default () in
  let descs = Universe.descs u in
  let seen = Hashtbl.create 8 in
  let failed = ref [] in
  List.iteri
    (fun i d ->
      Hashtbl.replace seen (Universe.ctor_of_desc d) ();
      let msg =
        W.Request
          {
            W.rq_key = "";
            rq_client = 1;
            rq_ticket = i;
            rq_op = i;
            rq_nature = D.default_nature d;
            rq_payload = [];
            rq_desc = d;
          }
      in
      let frame = W.encode_msg msg in
      let reader = W.Reader.create () in
      W.Reader.feed reader frame 0 (Bytes.length frame);
      match W.Reader.next reader with
      | Ok (Some (W.Request rq)) when D.equal rq.W.rq_desc d -> ()
      | Ok _ -> failed := Format.asprintf "%a" D.pp d :: !failed
      | Error e -> failed := Format.asprintf "%a: %s" D.pp d e :: !failed)
    descs;
  let missing =
    List.filter (fun ct -> not (Hashtbl.mem seen ct)) Universe.all_ctors
  in
  match (!failed, missing) with
  | [], [] ->
    {
      g_name = "wire-roundtrip-all-ctors";
      g_ok = true;
      g_detail =
        Printf.sprintf "%d descriptions over all %d constructors round-tripped"
          (List.length descs)
          (List.length Universe.all_ctors);
    }
  | failed, missing ->
    {
      g_name = "wire-roundtrip-all-ctors";
      g_ok = false;
      g_detail =
        String.concat "; "
          ((List.map (fun c -> "constructor not covered: " ^ Universe.ctor_name c))
             missing
          @ List.map (fun f -> "round-trip failed: " ^ f) (List.rev failed));
    }

let gates c = [ gate_defaults c; gate_negative_control c; gate_independence c; gate_wire c ]

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let obj = J.obj
let arr = J.arr

let verdict_bool = function Certify.Proved -> true | Certify.Refuted _ -> false

let verdict_json = function
  | Certify.Proved -> obj [ ("proved", J.bool true) ]
  | Certify.Refuted cx ->
    obj [ ("proved", J.bool false); ("counterexample", J.str (cx_string cx)) ]

let entry_json (e : Certify.entry) =
  obj
    [
      ("ctor", J.str (Universe.ctor_name e.Certify.en_ctor));
      ("declared", J.str (nature_name e.en_declared));
      ("certified", J.str (nature_name e.en_certified));
      ("readonly", J.bool (verdict_bool e.en_readonly));
      ("idempotent", verdict_json e.en_idempotent);
      ("self_commute", verdict_json e.en_self_commute);
    ]

let pair_json ((a, b), v) =
  obj
    [
      ("a", J.str (Universe.ctor_name a));
      ("b", J.str (Universe.ctor_name b));
      ("commutes", verdict_json v);
    ]

let gate_json g =
  obj
    [
      ("name", J.str g.g_name); ("ok", J.bool g.g_ok); ("detail", J.str g.g_detail);
    ]

let algebra_json c =
  obj
    [
      ("states", J.int c.Certify.n_states);
      ("descriptions", J.int c.n_descs);
      ("applies", J.int c.applies);
      ("table", arr (List.map entry_json c.entries));
      ("pairs", arr (List.map pair_json c.pairs));
      ("gates", arr (List.map gate_json (gates c)));
    ]

let finding_json (f : Lint.finding) =
  obj
    [
      ("file", J.str f.Lint.f_file);
      ("line", J.int f.f_line);
      ("col", J.int f.f_col);
      ("rule", J.str (Lint.rule_name f.f_rule));
      ("message", J.str f.f_message);
      ("allowed", match f.f_allowed with Some r -> J.str r | None -> "null");
    ]

let lint_json (rp : Lint.report) =
  let act = Lint.failures rp in
  obj
    [
      ("files", J.int rp.Lint.rp_files);
      ("active", J.int (List.length act));
      ( "allowed",
        J.int (List.length rp.rp_findings - List.length act) );
      ("findings", arr (List.map finding_json rp.rp_findings));
      ( "errors",
        arr
          (List.map
             (fun (file, e) -> obj [ ("file", J.str file); ("error", J.str e) ])
             rp.rp_errors) );
    ]

let json ?algebra ?lint () =
  let sections =
    (match algebra with Some c -> [ ("algebra", algebra_json c) ] | None -> [])
    @ match lint with Some rp -> [ ("lint", lint_json rp) ] | None -> []
  in
  obj sections ^ "\n"

let write ~path s =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc s)
