open Sb_storage
module D = Sb_sim.Rmwdesc
module U = Universe

type nature = [ `Mutating | `Readonly | `Merge ]

type counterexample = {
  cx_state : Objstate.t;
  cx_d1 : D.t;
  cx_d2 : D.t option;
  cx_detail : string;
}

type verdict = Proved | Refuted of counterexample

type entry = {
  en_ctor : U.ctor;
  en_readonly : verdict;
  en_idempotent : verdict;
  en_self_commute : verdict;
  en_declared : nature;
  en_certified : nature;
}

type t = {
  entries : entry list;
  pairs : ((U.ctor * U.ctor) * verdict) list;
  n_states : int;
  n_descs : int;
  applies : int;
}

(* ------------------------------------------------------------------ *)
(* Structural state/response equality                                  *)
(* ------------------------------------------------------------------ *)

(* Literal equality, deliberately: DPOR's independence needs the two
   orders to reach the {e same} world state (the state cache and the
   fingerprints hash chunk lists as they are), so set-equal-but-
   reordered piece lists do not count as commuting. *)
let equal_block (a : Block.t) (b : Block.t) =
  a.Block.source = b.Block.source
  && a.Block.index = b.Block.index
  && Bytes.equal a.Block.data b.Block.data

let equal_chunk (a : Chunk.t) (b : Chunk.t) =
  Timestamp.equal a.Chunk.ts b.Chunk.ts && equal_block a.Chunk.block b.Chunk.block

let equal_state (a : Objstate.t) (b : Objstate.t) =
  Timestamp.equal a.Objstate.stored_ts b.Objstate.stored_ts
  && List.equal equal_chunk a.vp b.vp
  && List.equal equal_chunk a.vf b.vf

let equal_resp a b =
  match (a, b) with
  | D.Ack, D.Ack -> true
  | D.Snap a, D.Snap b -> equal_state a b
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Property sweeps                                                     *)
(* ------------------------------------------------------------------ *)

let applies = ref 0

let apply d s =
  incr applies;
  D.apply d s

(* [sweep states f] returns the first counterexample [f] reports. *)
let sweep states f =
  let n = Array.length states in
  let rec go i = if i >= n then Proved else
    match f states.(i) with
    | None -> go (i + 1)
    | Some cx -> Refuted cx
  in
  go 0

let readonly_on states d =
  sweep states (fun s ->
      let s', _ = apply d s in
      if equal_state s s' then None
      else Some { cx_state = s; cx_d1 = d; cx_d2 = None; cx_detail = "state changed" })

let idempotent_on states d =
  sweep states (fun s ->
      let s1, _ = apply d s in
      let s2, _ = apply d s1 in
      if equal_state s1 s2 then None
      else
        Some
          {
            cx_state = s;
            cx_d1 = d;
            cx_d2 = None;
            cx_detail = "second application changed the state again";
          })

(* Commutation of a single descriptor pair on a single state: both
   orders must reach the same state and hand each RMW the same
   response (the [`Merge] contract of [Runtime.rmw_nature]). *)
let commute_point s d1 d2 =
  let s1, r1 = apply d1 s in
  let s12, r2 = apply d2 s1 in
  let s2, r2' = apply d2 s in
  let s21, r1' = apply d1 s2 in
  if not (equal_state s12 s21) then
    Some { cx_state = s; cx_d1 = d1; cx_d2 = Some d2; cx_detail = "final states differ" }
  else if not (equal_resp r1 r1') then
    Some
      {
        cx_state = s;
        cx_d1 = d1;
        cx_d2 = Some d2;
        cx_detail = "first RMW's response depends on the order";
      }
  else if not (equal_resp r2 r2') then
    Some
      {
        cx_state = s;
        cx_d1 = d1;
        cx_d2 = Some d2;
        cx_detail = "second RMW's response depends on the order";
      }
  else None

(* All (d1, d2) with d1 from [fam1], d2 from [fam2], over all states.
   Commutation is symmetric in the pair, so the same-family case only
   scans the upper triangle. *)
let commute_families states fam1 fam2 ~same =
  let n1 = Array.length fam1 and n2 = Array.length fam2 in
  let result = ref Proved in
  (try
     for i = 0 to n1 - 1 do
       let j0 = if same then i else 0 in
       for j = j0 to n2 - 1 do
         match sweep states (fun s -> commute_point s fam1.(i) fam2.(j)) with
         | Proved -> ()
         | Refuted _ as r ->
           result := r;
           raise Exit
       done
     done
   with Exit -> ());
  !result

(* ------------------------------------------------------------------ *)
(* Certified natures                                                   *)
(* ------------------------------------------------------------------ *)

let find_pair pairs a b =
  let eq (x, y) = (x = a && y = b) || (x = b && y = a) in
  match List.find_opt (fun (k, _) -> eq k) pairs with
  | Some (_, v) -> v
  | None -> invalid_arg "Certify: missing matrix cell"

(* The greatest set of idempotent, self-commuting, non-readonly
   constructors that commute pairwise: iteratively drop every member
   that fails to commute with another member until nothing changes.
   Any two constructors certified [`Merge] therefore commute — exactly
   what DPOR's merge/merge delivery rule assumes of declarations. *)
let merge_set pairs candidates =
  let rec fix set =
    let bad c =
      List.exists
        (fun c' -> match find_pair pairs c c' with Refuted _ -> true | Proved -> false)
        set
    in
    let set' = List.filter (fun c -> not (bad c)) set in
    if List.length set' = List.length set then set else fix set'
  in
  fix candidates

let rep_desc u c = (U.family u c).(0)

let run ?universe () =
  let u = match universe with Some u -> u | None -> U.default () in
  applies := 0;
  let states = u.U.states in
  let prop_entries =
    List.map
      (fun c ->
        let fam = U.family u c in
        let readonly =
          let rec go i =
            if i >= Array.length fam then Proved
            else match readonly_on states fam.(i) with
              | Proved -> go (i + 1)
              | r -> r
          in
          go 0
        in
        let idempotent =
          let rec go i =
            if i >= Array.length fam then Proved
            else match idempotent_on states fam.(i) with
              | Proved -> go (i + 1)
              | r -> r
          in
          go 0
        in
        (c, readonly, idempotent))
      U.all_ctors
  in
  let ctor_index c =
    let rec go i = function
      | [] -> assert false
      | x :: rest -> if x = c then i else go (i + 1) rest
    in
    go 0 U.all_ctors
  in
  let pairs =
    List.concat_map
      (fun c1 ->
        List.filter_map
          (fun c2 ->
            if ctor_index c2 >= ctor_index c1 then
              Some
                ( (c1, c2),
                  commute_families states (U.family u c1) (U.family u c2)
                    ~same:(c1 = c2) )
            else None)
          U.all_ctors)
      U.all_ctors
  in
  let self_commute c = find_pair pairs c c in
  let readonly_of c =
    let _, r, _ = List.find (fun (c', _, _) -> c' = c) prop_entries in
    r
  in
  let idempotent_of c =
    let _, _, r = List.find (fun (c', _, _) -> c' = c) prop_entries in
    r
  in
  let merge_candidates =
    List.filter
      (fun c ->
        readonly_of c <> Proved
        && idempotent_of c = Proved
        && self_commute c = Proved)
      U.all_ctors
  in
  let merges = merge_set pairs merge_candidates in
  let certified c =
    if readonly_of c = Proved then `Readonly
    else if List.mem c merges then `Merge
    else `Mutating
  in
  let entries =
    List.map
      (fun c ->
        {
          en_ctor = c;
          en_readonly = readonly_of c;
          en_idempotent = idempotent_of c;
          en_self_commute = self_commute c;
          en_declared = D.default_nature (rep_desc u c);
          en_certified = certified c;
        })
      U.all_ctors
  in
  {
    entries;
    pairs;
    n_states = Array.length states;
    n_descs = List.length (U.descs u);
    applies = !applies;
  }

let commutes t a b = find_pair t.pairs a b

let entry t c =
  match List.find_opt (fun e -> e.en_ctor = c) t.entries with
  | Some e -> e
  | None -> invalid_arg "Certify: unknown constructor"

let certified_nature t c = (entry t c).en_certified

let check_declaration t c ~claimed =
  match claimed with
  | `Mutating -> Ok ()
  | `Readonly -> (
    match (entry t c).en_readonly with Proved -> Ok () | Refuted cx -> Error cx)
  | `Merge ->
    let e = entry t c in
    let declared_merges =
      List.filter (fun e -> e.en_declared = `Merge) t.entries
      |> List.map (fun e -> e.en_ctor)
    in
    let partners = List.sort_uniq Stdlib.compare (c :: declared_merges) in
    let rec first_refuted = function
      | [] -> None
      | p :: rest -> (
        match commutes t c p with Refuted cx -> Some cx | Proved -> first_refuted rest)
    in
    (match e.en_idempotent with
    | Refuted cx -> Error cx
    | Proved -> (
      match first_refuted partners with Some cx -> Error cx | None -> Ok ()))

let check_defaults t =
  List.filter_map
    (fun e ->
      if e.en_declared = e.en_certified then None
      else Some (e.en_ctor, e.en_declared, e.en_certified))
    t.entries

let nature_name = function
  | `Mutating -> "mutating"
  | `Readonly -> "readonly"
  | `Merge -> "merge"

let audit_explore_independence t =
  let natures : nature list = [ `Mutating; `Readonly; `Merge ] in
  let of_nature n =
    List.filter (fun e -> e.en_certified = n) t.entries |> List.map (fun e -> e.en_ctor)
  in
  List.concat_map
    (fun n1 ->
      List.concat_map
        (fun n2 ->
          if not (Sb_modelcheck.Explore.natures_commute n1 n2) then []
          else
            List.concat_map
              (fun c1 ->
                List.filter_map
                  (fun c2 ->
                    match commutes t c1 c2 with
                    | Proved -> None
                    | Refuted cx ->
                      Some
                        (Format.asprintf
                           "DPOR treats %s/%s deliveries as commuting, but %s x %s \
                            is refuted: %s on state %a"
                           (nature_name n1) (nature_name n2) (U.ctor_name c1)
                           (U.ctor_name c2) cx.cx_detail Objstate.pp cx.cx_state))
                  (of_nature n2))
              (of_nature n1))
        natures)
    natures

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let pp_counterexample ppf cx =
  (match cx.cx_d2 with
  | None -> Format.fprintf ppf "@[<v2>%s:@ desc : %a@ " cx.cx_detail D.pp cx.cx_d1
  | Some d2 ->
    Format.fprintf ppf "@[<v2>%s:@ d1   : %a@ d2   : %a@ " cx.cx_detail D.pp cx.cx_d1
      D.pp d2);
  Format.fprintf ppf "state: %a@]" Objstate.pp cx.cx_state

let mark = function Proved -> "yes" | Refuted _ -> "no"

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf
    "RMW algebra over %d states x %d descriptors (%d interpreter evaluations)@ @ "
    t.n_states t.n_descs t.applies;
  Format.fprintf ppf "%-16s %-9s %-9s %-9s %-9s %-9s@ " "constructor" "declared"
    "certified" "readonly" "idempot." "self-comm";
  List.iter
    (fun e ->
      Format.fprintf ppf "%-16s %-9s %-9s %-9s %-9s %-9s@ " (U.ctor_name e.en_ctor)
        (nature_name e.en_declared) (nature_name e.en_certified) (mark e.en_readonly)
        (mark e.en_idempotent) (mark e.en_self_commute))
    t.entries;
  Format.fprintf ppf "@ pairwise commutation (upper triangle):@ ";
  List.iter
    (fun ((c1, c2), v) ->
      Format.fprintf ppf "  %-16s x %-16s %s@ " (U.ctor_name c1) (U.ctor_name c2)
        (mark v))
    t.pairs;
  let mismatches = check_defaults t in
  if mismatches <> [] then begin
    Format.fprintf ppf "@ declared/certified mismatches:@ ";
    List.iter
      (fun (c, d, cert) ->
        Format.fprintf ppf "  %s: declared %s, certified %s@ " (U.ctor_name c)
          (nature_name d) (nature_name cert))
      mismatches
  end;
  Format.fprintf ppf "@]"
