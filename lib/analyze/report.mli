(** Gate checks and JSON serialization for [spacebounds lint].

    The CLI and the test suite share the same gate list, so CI enforces
    exactly what [dune runtest] asserts:

    - {e defaults-match-certified}: [Rmwdesc.default_nature] agrees with
      the certified nature table on every constructor.
    - {e lww-store-merge-refuted}: the negative control — declaring
      [Lww_store] merge-class must be refuted with a counterexample
      (two stores of distinct chunks do not commute).
    - {e explore-independence-derived}: DPOR's nature-level independence
      is backed by a [Proved] cell for every constructor pair it treats
      as commuting.
    - {e wire-roundtrip-all-ctors}: every universe description — the
      whole constructor vocabulary — survives
      [Sb_service.Wire.encode_msg] and a [Wire.Reader] decode
      unchanged.

    The JSON output is a single object with an [algebra] section (the
    nature table, the pairwise matrix, the gates) and a [lint] section
    (per-finding records, pragma reasons included), written by the CI
    step to [LINT_report.json]. *)

type gate = {
  g_name : string;
  g_ok : bool;
  g_detail : string;  (** Counts when ok; the counterexample when not. *)
}

val gates : Certify.t -> gate list
(** Runs all four gates against a certification result. *)

val json : ?algebra:Certify.t -> ?lint:Lint.report -> unit -> string
(** The combined report.  Either section may be omitted (the CLI's
    [--algebra-only]/[--src-only] modes); gates are re-run on [algebra]. *)

val write : path:string -> string -> unit
(** Writes the JSON string to [path]. *)
