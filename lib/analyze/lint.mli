(** Source-level determinism and protocol-hygiene lint.

    A [compiler-libs] [Ast_iterator] pass over the library sources that
    enforces, {e statically}, the hygiene rules the runtimes' determinism
    depends on.  The model checker's determinism lint ([explore --lint])
    catches nondeterminism {e per execution}; this pass catches the
    sources of it {e per call site}, before any execution runs:

    - {b nondet} — no process-global randomness ([Random.*]; protocol
      code must draw from the world's seeded [Sb_util.Prng]) and no
      wall-clock reads ([Unix.time]/[Unix.gettimeofday]/[Sys.time]) in
      protocol cores: both make replays diverge from recordings.
    - {b poly-compare} — no polymorphic [compare]/[Hashtbl.hash], and no
      [=]/[<>] on identifiers annotated with desc/state/timestamp types:
      structural comparison on types that later grow functional or
      cyclic fields fails at runtime, and polymorphic hashes are not
      stable keys across representations.
    - {b marshal} — no [Marshal.*]: representation-dependent digests are
      exactly what the incremental fingerprints replaced; the one
      legitimate holdout is the [--paranoid-key] cross-check.
    - {b hashtbl-order} — no [Hashtbl.iter]/[Hashtbl.fold] in protocol
      cores unless the accumulation is order-insensitive: iteration
      order is deterministic only for identical insertion histories, so
      order-sensitive folds feeding traces or state hashes make
      logically equal worlds diverge.
    - {b wire-catchall} — in [lib/service], no catch-all [_] arm in a
      [match] on a wire discriminant (an identifier mentioning "tag" or
      "version"): a codec that silently absorbs unknown tags turns the
      next schema bump into misdecoding instead of a typed reject.
      Decoders must bind the discriminant and raise/return on the
      unknown value.

    Findings at sites that are individually justified are suppressed
    in-source with a pragma comment on the same or the preceding line:

    {[ (* sb-lint: allow hashtbl-order — commutative sum *) ]}

    The pragma names one rule and must carry a reason; it is recorded in
    the report (and the JSON output) rather than discarded, so every
    exemption stays reviewable. *)

type rule = Nondet | Poly_compare | Marshal | Hashtbl_order | Wire_catchall

val all_rules : rule list
val rule_name : rule -> string
val rule_of_name : string -> rule option

type finding = {
  f_file : string;
  f_line : int;
  f_col : int;
  f_rule : rule;
  f_message : string;
  f_allowed : string option;
      (** [Some reason] when an [sb-lint: allow] pragma covers the site;
          such findings are reported but do not fail the build. *)
}

type report = {
  rp_files : int;  (** Files scanned. *)
  rp_findings : finding list;  (** All findings, pragma-suppressed included. *)
  rp_errors : (string * string) list;  (** [(file, error)] parse failures. *)
}

val active : finding -> bool
(** Not covered by a pragma — i.e. a build-failing finding. *)

val failures : report -> finding list
(** The active findings of a report. *)

val lint_source : ?rules:rule list -> filename:string -> string -> finding list
(** Lints one compilation unit given as a string.  [rules] defaults to
    {!all_rules}; pass the scoped subset to reproduce what {!lint_tree}
    applies to the file's path.  Raises nothing: unparseable input
    returns a single finding-free list and is reported by {!lint_tree}
    through [rp_errors] — use {!lint_file} for the error. *)

val lint_file : ?rules:rule list -> string -> (finding list, string) result

val rules_for : string -> rule list
(** The rules {!lint_tree} applies to a repo-relative path: the
    determinism and ordering rules on protocol cores ([lib/sim],
    [lib/registers], [lib/storage], [lib/quorums], [lib/msgnet],
    [lib/spec], [lib/kv], and the transport-agnostic service cores),
    [hashtbl-order] additionally on the sanitizers, [wire-catchall] on
    [lib/service], and [marshal] everywhere. *)

val lint_tree : root:string -> report
(** Scans every [*.ml] under [root] (skipping [_build] and dot
    directories), applying {!rules_for} per path. *)

val pp_finding : Format.formatter -> finding -> unit
val pp_report : Format.formatter -> report -> unit
