(** The RMW-algebra certifier: whole-vocabulary, once-for-all-executions
    checking of the algebraic facts the rest of the system takes on
    trust.

    Everything the model checker and the fault plane conclude rests on
    per-constructor declarations: DPOR treats same-object deliveries of
    two [`Merge]-declared RMWs as commuting, the runtime drops
    unobservable [`Readonly] RMWs, and the at-most-once/re-apply
    argument of the fault plane needs idempotence.  Until now these were
    spot-checked {e per execution} (the vector-clock monitors of
    [Sb_sanitize], the both-orders replay of [spacebounds audit]).  This
    module decides them {e per constructor}, by exhaustive evaluation
    over the [Universe] small scope:

    - {e read-only-ness}: [apply d s = (s, _)] for every state [s];
    - {e idempotence}: [apply d] twice reaches the state [apply d]
      reaches once (re-applying a retransmitted RMW after a server
      recovery is a no-op);
    - {e commutativity} of a pair: both orders reach the same state and
      give each RMW the same response.

    Verdicts are [Proved] (over the whole universe) or [Refuted] with a
    concrete counterexample state.  [Proved] is relative to the small
    scope — see the universe caveat in [Universe] — while [Refuted] is
    unconditional: the counterexample replays anywhere. *)

type nature = [ `Mutating | `Readonly | `Merge ]

type counterexample = {
  cx_state : Sb_storage.Objstate.t;  (** The state the property fails on. *)
  cx_d1 : Sb_sim.Rmwdesc.t;
  cx_d2 : Sb_sim.Rmwdesc.t option;  (** [None] for unary properties. *)
  cx_detail : string;  (** Which component diverged, human-readable. *)
}

type verdict = Proved | Refuted of counterexample

type entry = {
  en_ctor : Universe.ctor;
  en_readonly : verdict;
  en_idempotent : verdict;
  en_self_commute : verdict;
  en_declared : nature;  (** [Rmwdesc.default_nature] of the family. *)
  en_certified : nature;  (** See {!val-certified_nature}. *)
}

type t = {
  entries : entry list;  (** One per constructor, in [all_ctors] order. *)
  pairs : ((Universe.ctor * Universe.ctor) * verdict) list;
      (** The independence matrix: pairwise commutativity over the
          universe, upper triangle including the diagonal (commutation
          is symmetric). *)
  n_states : int;
  n_descs : int;
  applies : int;  (** Total [Rmwdesc.apply] evaluations performed. *)
}

val run : ?universe:Universe.t -> unit -> t
(** Certifies the whole vocabulary.  Deterministic; the default
    universe takes well under a second. *)

val commutes : t -> Universe.ctor -> Universe.ctor -> verdict
(** Matrix lookup (order-insensitive). *)

val certified_nature : t -> Universe.ctor -> nature
(** The strongest nature the certifier proves: [`Readonly] if read-only
    over the universe; else [`Merge] if the constructor is idempotent,
    self-commuting, and in the greatest mutually-commuting set of such
    constructors (so that {e any} two certified-[`Merge] RMWs commute,
    which is what DPOR's merge/merge rule assumes); else [`Mutating]. *)

val check_declaration :
  t -> Universe.ctor -> claimed:nature -> (unit, counterexample) result
(** Would declaring [claimed] for this constructor be sound?
    [`Mutating] claims nothing.  [`Readonly] requires the read-only
    proof.  [`Merge] requires idempotence, self-commutation, and
    commutation with every constructor whose default declaration is
    [`Merge].  The seeded [Lww_store]-as-[`Merge] mis-declaration is
    refuted here with a concrete two-store counterexample. *)

val check_defaults : t -> (Universe.ctor * nature * nature) list
(** Constructors whose [Rmwdesc.default_nature] differs from the
    certified nature, as [(ctor, declared, certified)].  Non-empty means
    either an unsound declaration (declared stronger than provable) or a
    provably stronger nature left on the table; the runtest assertion
    requires it empty. *)

val audit_explore_independence : t -> string list
(** Checks DPOR's nature-level independence against the certified
    matrix: for every pair of natures [Sb_modelcheck.Explore.natures_commute]
    treats as commuting, every pair of constructors carrying those
    certified natures must have a [Proved] matrix cell.  Returns
    human-readable violations; empty means the independence relation is
    derived-or-checked rather than trusted. *)

val pp : Format.formatter -> t -> unit
(** The nature table, the independence matrix, and any refuted
    declared-vs-certified rows with their counterexamples. *)

val pp_counterexample : Format.formatter -> counterexample -> unit
