type rule = Nondet | Poly_compare | Marshal | Hashtbl_order | Wire_catchall

let all_rules = [ Nondet; Poly_compare; Marshal; Hashtbl_order; Wire_catchall ]

let rule_name = function
  | Nondet -> "nondet"
  | Poly_compare -> "poly-compare"
  | Marshal -> "marshal"
  | Hashtbl_order -> "hashtbl-order"
  | Wire_catchall -> "wire-catchall"

let rule_of_name s = List.find_opt (fun r -> rule_name r = s) all_rules

type finding = {
  f_file : string;
  f_line : int;
  f_col : int;
  f_rule : rule;
  f_message : string;
  f_allowed : string option;
}

type report = {
  rp_files : int;
  rp_findings : finding list;
  rp_errors : (string * string) list;
}

let active f = f.f_allowed = None
let failures rp = List.filter active rp.rp_findings

(* ------------------------------------------------------------------ *)
(* Pragmas                                                             *)
(* ------------------------------------------------------------------ *)

type pragma = { p_line : int; p_rule : rule; p_reason : string }

let is_sep c = c = ' ' || c = '\t' || c = '-' || c = ':'

(* Strip leading separators including a UTF-8 em-dash, and the trailing
   comment close. *)
let clean_reason s =
  let n = String.length s in
  let i = ref 0 in
  let advancing = ref true in
  while !advancing do
    if !i < n && is_sep s.[!i] then incr i
    else if !i + 3 <= n && String.sub s !i 3 = "\xe2\x80\x94" then i := !i + 3
    else advancing := false
  done;
  let s = String.sub s !i (n - !i) in
  let s =
    match String.index_opt s '*' with
    | Some j when j + 1 < String.length s && s.[j + 1] = ')' -> String.sub s 0 j
    | _ -> s
  in
  String.trim s

let find_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    if i + nn > nh then None
    else if String.sub hay i nn = needle then Some i
    else go (i + 1)
  in
  go 0

let contains hay needle = find_sub hay needle <> None

let scan_pragmas src =
  let pragmas = ref [] in
  let lines = String.split_on_char '\n' src in
  List.iteri
    (fun i line ->
      match find_sub line "sb-lint:" with
      | None -> ()
      | Some j -> (
        let rest = String.sub line (j + 8) (String.length line - j - 8) in
        let rest = String.trim rest in
        match String.index_opt rest ' ' with
        | Some k when String.sub rest 0 k = "allow" -> (
          let rest = String.trim (String.sub rest k (String.length rest - k)) in
          let name_len =
            let rec go n =
              if n < String.length rest && (rest.[n] = '-' || (rest.[n] >= 'a' && rest.[n] <= 'z'))
              then go (n + 1)
              else n
            in
            go 0
          in
          match rule_of_name (String.sub rest 0 name_len) with
          | Some r ->
            let reason =
              clean_reason (String.sub rest name_len (String.length rest - name_len))
            in
            pragmas := { p_line = i + 1; p_rule = r; p_reason = reason } :: !pragmas
          | None -> ())
        | _ -> ()))
    lines;
  List.rev !pragmas

let apply_pragmas pragmas findings =
  List.map
    (fun f ->
      let covering =
        List.find_opt
          (fun p ->
            p.p_rule = f.f_rule && (p.p_line = f.f_line || p.p_line = f.f_line - 1))
          pragmas
      in
      match covering with
      | Some p ->
        { f with f_allowed = Some (if p.p_reason = "" then "(no reason)" else p.p_reason) }
      | None -> f)
    findings

(* ------------------------------------------------------------------ *)
(* The AST pass                                                        *)
(* ------------------------------------------------------------------ *)

(* Type names whose values must never meet polymorphic [=]/[<>]: the
   RMW descriptions, object states and their components.  Matched
   against explicit annotations ([let equal (a : t) (b : t) = ...]); the
   lint is syntactic, so unannotated flows are out of scope — the
   negative fixtures pin what it does catch. *)
let watched_type_names =
  [
    "t"; "desc"; "Rmwdesc.t"; "D.t"; "Objstate.t"; "Chunk.t"; "Block.t";
    "Timestamp.t"; "Sb_sim.Rmwdesc.t"; "Sb_storage.Objstate.t";
    "Sb_storage.Timestamp.t";
  ]

let collect ~rules ~filename src =
  let findings = ref [] in
  let watched_vars : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let shadowed : (string, unit) Hashtbl.t = Hashtbl.create 4 in
  let on r = List.mem r rules in
  let flag loc r msg =
    if on r then begin
      let p = loc.Location.loc_start in
      findings :=
        {
          f_file = filename;
          f_line = p.Lexing.pos_lnum;
          f_col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
          f_rule = r;
          f_message = msg;
          f_allowed = None;
        }
        :: !findings
    end
  in
  let type_watched (ct : Parsetree.core_type) =
    match ct.ptyp_desc with
    | Parsetree.Ptyp_constr (lid, _) -> (
      match try Some (Longident.flatten lid.txt) with _ -> None with
      | Some parts -> List.mem (String.concat "." parts) watched_type_names
      | None -> false)
    | _ -> false
  in
  let check_longident lid loc =
    let parts = try Longident.flatten lid with _ -> [] in
    let parts = match parts with "Stdlib" :: rest -> rest | p -> p in
    match parts with
    | [ "Random"; _ ] ->
      flag loc Nondet
        "process-global Random in a protocol core; draw from the world's seeded \
         Sb_util.Prng"
    | [ "Unix"; ("time" | "gettimeofday") ] | [ "Sys"; "time" ] ->
      flag loc Nondet "wall-clock read in a protocol core breaks deterministic replay"
    | [ "Marshal"; _ ] ->
      flag loc Marshal
        "Marshal digests are representation-dependent; only the --paranoid-key \
         cross-check path may use them"
    | [ "Hashtbl"; ("iter" | "fold") ] ->
      flag loc Hashtbl_order
        "Hashtbl iteration order depends on insertion history; order-sensitive \
         accumulation diverges on logically equal worlds"
    | [ "Hashtbl"; ("hash" | "seeded_hash") ] ->
      flag loc Poly_compare "polymorphic Hashtbl.hash is not a stable key"
    | [ "compare" ] when not (Hashtbl.mem shadowed "compare") ->
      flag loc Poly_compare
        "bare polymorphic compare; use the type's own compare (Timestamp.compare, \
         Int.compare, ...)"
    | _ -> ()
  in
  let default = Ast_iterator.default_iterator in
  let pat it (p : Parsetree.pattern) =
    (match p.ppat_desc with
    | Parsetree.Ppat_constraint ({ ppat_desc = Parsetree.Ppat_var v; _ }, ct)
      when type_watched ct ->
      Hashtbl.replace watched_vars v.txt ()
    | _ -> ());
    default.pat it p
  in
  let structure_item it (si : Parsetree.structure_item) =
    (match si.pstr_desc with
    | Parsetree.Pstr_value (_, vbs) ->
      List.iter
        (fun (vb : Parsetree.value_binding) ->
          match vb.pvb_pat.ppat_desc with
          | Parsetree.Ppat_var { txt = "compare"; _ } -> Hashtbl.replace shadowed "compare" ()
          | _ -> ())
        vbs
    | _ -> ());
    default.structure_item it si
  in
  let expr it (e : Parsetree.expression) =
    match e.pexp_desc with
    | Parsetree.Pexp_apply
        ( { pexp_desc = Parsetree.Pexp_ident { txt = Longident.Lident (("=" | "<>" | "==" | "!=") as op); _ };
            pexp_loc = oploc;
            _;
          },
          args ) ->
      let watched_arg =
        List.exists
          (fun (_, (a : Parsetree.expression)) ->
            match a.pexp_desc with
            | Parsetree.Pexp_ident { txt = Longident.Lident x; _ } ->
              Hashtbl.mem watched_vars x
            | _ -> false)
          args
      in
      if watched_arg then
        flag oploc Poly_compare
          (Printf.sprintf
             "polymorphic (%s) on a value of a watched protocol type (desc/state/\
              timestamp); use a dedicated equality"
             op);
      (* Iterate the arguments only: visiting the operator identifier
         itself would double-report every comparison as a first-class
         use. *)
      List.iter (fun (_, a) -> it.Ast_iterator.expr it a) args
    | Parsetree.Pexp_match (scrut, cases) ->
      (* A match whose scrutinee is a wire discriminant (an identifier
         mentioning "tag" or "version") with a [_] arm: the arm
         swallows tags the codec does not know, which is exactly how a
         schema bump turns into silent misdecoding instead of a typed
         reject.  Bind the value ([| n -> ...]) and reject it. *)
      let is_discriminant (e : Parsetree.expression) =
        match e.pexp_desc with
        | Parsetree.Pexp_ident { txt; _ } -> (
          match try Longident.flatten txt with _ -> [] with
          | [] -> false
          | parts ->
            let last =
              String.lowercase_ascii (List.nth parts (List.length parts - 1))
            in
            contains last "tag" || contains last "version")
        | _ -> false
      in
      if is_discriminant scrut then
        List.iter
          (fun (c : Parsetree.case) ->
            match c.pc_lhs.ppat_desc with
            | Parsetree.Ppat_any ->
              flag c.pc_lhs.ppat_loc Wire_catchall
                "catch-all _ arm on a wire tag/version match accepts unknown \
                 discriminants silently; bind the value and reject it \
                 explicitly"
            | _ -> ())
          cases;
      default.expr it e
    | _ ->
      (match e.pexp_desc with
      | Parsetree.Pexp_ident { txt; _ } -> check_longident txt e.pexp_loc
      | _ -> ());
      default.expr it e
  in
  let it = { default with expr; pat; structure_item } in
  let lexbuf = Lexing.from_string src in
  Location.init lexbuf filename;
  let str = Parse.implementation lexbuf in
  it.structure it str;
  List.rev !findings

let sort_findings fs =
  List.sort
    (fun a b ->
      match compare (a.f_line : int) b.f_line with
      | 0 -> compare (a.f_col : int) b.f_col
      | c -> c)
    fs

let lint_source ?(rules = all_rules) ~filename src =
  match collect ~rules ~filename src with
  | findings -> sort_findings (apply_pragmas (scan_pragmas src) findings)
  | exception _ -> []

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let lint_file ?(rules = all_rules) path =
  match read_file path with
  | exception Sys_error e -> Error e
  | src -> (
    match collect ~rules ~filename:path src with
    | findings -> Ok (sort_findings (apply_pragmas (scan_pragmas src) findings))
    | exception e -> Error (Printexc.to_string e))

(* ------------------------------------------------------------------ *)
(* Path scoping                                                        *)
(* ------------------------------------------------------------------ *)

let ends_with path suffix =
  let np = String.length path and ns = String.length suffix in
  np >= ns && String.sub path (np - ns) ns = suffix

let protocol_core path =
  List.exists (contains path)
    [ "lib/sim/"; "lib/registers/"; "lib/storage/"; "lib/quorums/"; "lib/msgnet/";
      "lib/spec/"; "lib/kv/" ]
  || List.exists (ends_with path)
       [ "lib/service/wire.ml"; "lib/service/server_core.ml";
         "lib/service/client_core.ml" ]

let rules_for path =
  let core = protocol_core path in
  let sanitizer = contains path "lib/sanitize/" in
  let wire = contains path "lib/service/" in
  (if core then [ Nondet; Poly_compare; Hashtbl_order ] else [])
  @ (if sanitizer then [ Hashtbl_order ] else [])
  @ (if wire then [ Wire_catchall ] else [])
  @ [ Marshal ]

let rec walk dir acc =
  match Sys.readdir dir with
  | exception Sys_error _ -> acc
  | entries ->
    Array.sort String.compare entries;
    Array.fold_left
      (fun acc entry ->
        if entry = "" || entry.[0] = '.' || entry = "_build" then acc
        else
          let path = Filename.concat dir entry in
          if Sys.is_directory path then walk path acc
          else if Filename.check_suffix entry ".ml" then path :: acc
          else acc)
      acc entries

let lint_tree ~root =
  let files = List.rev (walk root []) in
  let findings, errors =
    List.fold_left
      (fun (fs, errs) path ->
        match lint_file ~rules:(rules_for path) path with
        | Ok f -> (fs @ f, errs)
        | Error e -> (fs, (path, e) :: errs))
      ([], []) files
  in
  { rp_files = List.length files; rp_findings = findings; rp_errors = List.rev errors }

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let pp_finding ppf f =
  Format.fprintf ppf "%s:%d:%d [%s] %s" f.f_file f.f_line f.f_col (rule_name f.f_rule)
    f.f_message;
  match f.f_allowed with
  | Some reason -> Format.fprintf ppf " (allowed: %s)" reason
  | None -> ()

let pp_report ppf rp =
  let act = failures rp in
  let allowed = List.filter (fun f -> not (active f)) rp.rp_findings in
  Format.fprintf ppf "@[<v>%d files scanned: %d finding(s), %d allowed by pragma@ "
    rp.rp_files (List.length act) (List.length allowed);
  List.iter (fun f -> Format.fprintf ppf "%a@ " pp_finding f) act;
  List.iter (fun f -> Format.fprintf ppf "%a@ " pp_finding f) allowed;
  List.iter
    (fun (file, e) -> Format.fprintf ppf "%s: parse error: %s@ " file e)
    rp.rp_errors;
  Format.fprintf ppf "@]"
