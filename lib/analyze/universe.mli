(** The closed constructor vocabulary of [Sb_sim.Rmwdesc.t] and a
    small-scope universe to certify it over.

    The certifier ([Certify]) decides algebraic properties — read-only-
    ness, idempotence, pairwise commutativity — by {e exhaustive}
    evaluation over a systematically generated finite universe: every
    constructor of the closed RMW vocabulary is instantiated over a
    small set of timestamps, blocks and parameter variants, and every
    property is checked over every generated object state.  This is
    small-scope checking, not a proof over the infinite state space; the
    universe is built to contain the known discriminating shapes
    (equal-timestamp/distinct-chunk collisions, empty and saturated
    piece sets, stored-ts barriers above and below the incoming write)
    so that a property that holds on the whole universe holds in
    practice — and a property that fails anywhere fails with a concrete,
    printable counterexample. *)

(** One variant per [Sb_sim.Rmwdesc.t] constructor.  [ctor_of_desc] is
    an exhaustive match, so extending the RMW vocabulary without
    extending the analyzer is a compile error, not a silent gap. *)
type ctor =
  | Snapshot
  | Abd_store
  | Lww_store
  | Safe_update
  | Adaptive_update
  | Adaptive_gc
  | Rateless_update
  | Rateless_gc
  | Rw_write

val all_ctors : ctor list
(** Every constructor, in declaration order. *)

val ctor_of_desc : Sb_sim.Rmwdesc.t -> ctor
val ctor_name : ctor -> string
val ctor_of_name : string -> ctor option
val equal_ctor : ctor -> ctor -> bool

type t = {
  states : Sb_storage.Objstate.t array;
      (** The systematic object-state universe: stored-ts values crossed
          with piece-set ([vp]) and replica-set ([vf]) variants. *)
  families : (ctor * Sb_sim.Rmwdesc.t array) list;
      (** Per constructor, the enumerated descriptor instances.  Every
          constructor has at least one instance. *)
}

val default : unit -> t
(** The standard universe used by [spacebounds lint] and the runtest
    assertions: 4 timestamps x 3 tagged blocks -> 6 chunks (including an
    equal-timestamp/distinct-block collision pair), object states with
    |vp| <= 2 and |vf| <= 2, and per-constructor parameter sweeps
    (eviction rule, trim, replicate, barrier above/at/below the write's
    timestamp). *)

val descs : t -> Sb_sim.Rmwdesc.t list
(** All descriptor instances of all families, flattened — the input to
    the wire-codec exhaustiveness check. *)

val family : t -> ctor -> Sb_sim.Rmwdesc.t array
(** The instances of one constructor ([Invalid_argument] if the
    universe lacks the family — [default] never does). *)
