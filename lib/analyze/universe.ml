open Sb_storage
module D = Sb_sim.Rmwdesc

type ctor =
  | Snapshot
  | Abd_store
  | Lww_store
  | Safe_update
  | Adaptive_update
  | Adaptive_gc
  | Rateless_update
  | Rateless_gc
  | Rw_write

let all_ctors =
  [
    Snapshot; Abd_store; Lww_store; Safe_update; Adaptive_update; Adaptive_gc;
    Rateless_update; Rateless_gc; Rw_write;
  ]

(* Exhaustive on purpose: a new [Rmwdesc.t] constructor fails to compile
   here until the analyzer learns to enumerate it. *)
let ctor_of_desc (d : D.t) =
  match d with
  | D.Snapshot -> Snapshot
  | D.Abd_store _ -> Abd_store
  | D.Lww_store _ -> Lww_store
  | D.Safe_update _ -> Safe_update
  | D.Adaptive_update _ -> Adaptive_update
  | D.Adaptive_gc _ -> Adaptive_gc
  | D.Rateless_update _ -> Rateless_update
  | D.Rateless_gc _ -> Rateless_gc
  | D.Rw_write _ -> Rw_write

let ctor_name = function
  | Snapshot -> "snapshot"
  | Abd_store -> "abd-store"
  | Lww_store -> "lww-store"
  | Safe_update -> "safe-update"
  | Adaptive_update -> "adaptive-update"
  | Adaptive_gc -> "adaptive-gc"
  | Rateless_update -> "rateless-update"
  | Rateless_gc -> "rateless-gc"
  | Rw_write -> "rw-write"

let ctor_of_name s = List.find_opt (fun c -> ctor_name c = s) all_ctors
let equal_ctor (a : ctor) (b : ctor) = a = b

type t = {
  states : Objstate.t array;
  families : (ctor * D.t array) list;
}

(* ------------------------------------------------------------------ *)
(* The small scope                                                     *)
(* ------------------------------------------------------------------ *)

(* Timestamps: zero (the initial value), two concurrent round-1 writes
   by distinct clients, and a round-2 write.  Chunks [c_11a]/[c_11b]
   share a timestamp but carry distinct blocks — the collision shape the
   abd-atomic write-back produces, which any sound tie-break must
   handle; [c_21a]/[c_21b] repeat it one round up. *)
let ts_zero = Timestamp.zero
let ts_11 = Timestamp.make ~num:1 ~client:1
let ts_12 = Timestamp.make ~num:1 ~client:2
let ts_21 = Timestamp.make ~num:2 ~client:1
let timestamps = [ ts_zero; ts_11; ts_12; ts_21 ]

let blk_a = Block.v ~source:1 ~index:0 (Bytes.of_string "a")
let blk_b = Block.v ~source:2 ~index:0 (Bytes.of_string "b")
let blk_c = Block.v ~source:1 ~index:1 (Bytes.of_string "c")

let chunks =
  [
    Chunk.v ~ts:ts_zero blk_a;
    Chunk.v ~ts:ts_11 blk_a;
    Chunk.v ~ts:ts_11 blk_b;
    Chunk.v ~ts:ts_12 blk_a;
    Chunk.v ~ts:ts_21 blk_b;
    Chunk.v ~ts:ts_21 blk_c;
  ]

(* All subsets of [xs] with at most [k] elements, in a fixed order. *)
let subsets ~max_size xs =
  let rec go = function
    | [] -> [ [] ]
    | x :: rest ->
      let without = go rest in
      without @ List.map (fun s -> x :: s) without
  in
  List.filter (fun s -> List.length s <= max_size) (go xs)

let states () =
  let vps = subsets ~max_size:2 chunks in
  let vfs =
    subsets ~max_size:1 chunks
    @ [
        (* Two-replica [vf] shapes: a same-timestamp collision and a
           cross-round pair — enough to exercise every [vf] branch. *)
        [ List.nth chunks 1; List.nth chunks 2 ];
        [ List.nth chunks 1; List.nth chunks 4 ];
      ]
  in
  List.concat_map
    (fun stored_ts ->
      List.concat_map
        (fun vp ->
          List.map
            (fun vf -> { Objstate.stored_ts; vp; vf })
            vfs)
        vps)
    timestamps
  |> Array.of_list

(* ------------------------------------------------------------------ *)
(* Descriptor families                                                 *)
(* ------------------------------------------------------------------ *)

let per_chunk mk = Array.of_list (List.map mk chunks)

let adaptive_updates () =
  let out = ref [] in
  List.iter
    (fun replicate ->
      List.iter
        (fun eviction ->
          List.iter
            (fun trim ->
              List.iter
                (fun piece ->
                  List.iter
                    (fun ts ->
                      List.iter
                        (fun stored_ts ->
                          out :=
                            D.Adaptive_update
                              {
                                replicate;
                                eviction;
                                trim;
                                k = 2;
                                piece;
                                replica_pieces = [ blk_a; blk_c ];
                                ts;
                                stored_ts;
                              }
                            :: !out)
                        [ ts_zero; ts_11 ])
                    [ ts_11; ts_21 ])
                [ blk_a; blk_b ])
            [ D.Keep_all; D.Keep_newest 1 ])
        [ D.Barrier; D.Own_ts ])
    [ false; true ];
  Array.of_list (List.rev !out)

let families () =
  [
    (Snapshot, [| D.Snapshot |]);
    (Abd_store, per_chunk (fun c -> D.Abd_store c));
    (Lww_store, per_chunk (fun c -> D.Lww_store c));
    (Safe_update, per_chunk (fun c -> D.Safe_update c));
    (Adaptive_update, adaptive_updates ());
    ( Adaptive_gc,
      Array.of_list
        (List.concat_map
           (fun piece ->
             List.map (fun ts -> D.Adaptive_gc { piece; ts }) [ ts_11; ts_12; ts_21 ])
           [ blk_a; blk_b ]) );
    ( Rateless_update,
      Array.of_list
        (List.concat_map
           (fun pieces ->
             List.concat_map
               (fun ts ->
                 List.map
                   (fun stored_ts -> D.Rateless_update { pieces; ts; stored_ts })
                   [ ts_zero; ts_11 ])
               [ ts_11; ts_21 ])
           [ [ blk_a ]; [ blk_a; blk_c ] ]) );
    ( Rateless_gc,
      Array.of_list
        (List.concat_map
           (fun pieces ->
             List.map (fun ts -> D.Rateless_gc { pieces; ts }) [ ts_11; ts_21 ])
           [ [ blk_b ]; [ blk_a; blk_c ] ]) );
    (* Blind overwrites: full-copy writes at each round, a chunk pair
       (the shape a coded rw cell would store), and the meta-data-only
       stub the rw-replica trim round issues.  Two same-cell overwrites
       at distinct timestamps are the non-commuting witness pair the
       certifier must find. *)
    ( Rw_write,
      Array.of_list
        (List.concat_map
           (fun ts ->
             D.Rw_write { chunks = []; ts }
             :: List.map
                  (fun c -> D.Rw_write { chunks = [ c ]; ts })
                  [ List.nth chunks 1; List.nth chunks 4 ])
           [ ts_11; ts_21 ]
        @ [ D.Rw_write { chunks = [ List.nth chunks 1; List.nth chunks 4 ]; ts = ts_21 } ]) );
  ]

let default () = { states = states (); families = families () }

let descs t = List.concat_map (fun (_, fam) -> Array.to_list fam) t.families

let family t c =
  match List.find_opt (fun (c', _) -> c' = c) t.families with
  | Some (_, fam) -> fam
  | None -> invalid_arg ("Universe.family: no family for " ^ ctor_name c)
