(** Machine-checking the model checker's independence relation.

    The sleep-set reduction in [Sb_modelcheck.Explore] is sound only if
    {!Sb_modelcheck.Explore.independent} declares two actions
    independent exclusively when, from any state where both are enabled,
    executing them in either order (a) keeps both enabled and (b) reaches
    the same behavioural state up to verdict-preserving reordering of
    the operation history ([Runtime.audit_key]; strict
    [exploration_key] equality would be too strong — the relation
    deliberately permits invocation/invocation and return/return swaps,
    which permute the event word and renumber ops without changing any
    checker's verdict).  The relation in turn trusts the [rmw_nature]
    annotations protocols attach to their RMWs — a wrong [`Merge]
    declaration silently prunes real schedules.

    This module checks the definition directly: it enumerates reachable
    states of a configuration (depth-first over decision prefixes,
    deduplicated by audit key — depth-first, because conflicting pairs
    are often co-enabled only deep in a schedule, e.g. two ABD writers
    both reaching their round-2 stores), and for every co-enabled pair
    the relation declares independent, replays both orders from a fresh
    world and compares the resulting keys and enabledness.  Any
    divergence is reported with its replayable prefix.

    A clean audit over a configuration is evidence, not proof — it
    covers the reachable states of {e that} configuration up to
    [max_states]; the point is that the litmus configurations exercising
    every declared commuting class stay green in CI, and that seeded
    bugs (a mis-declared register, a deliberately weakened [relation])
    are caught. *)

type divergence = {
  d_prefix : Sb_sim.Runtime.decision list;
      (** Replayable decisions reaching the offending state. *)
  d_first : Sb_sim.Runtime.decision;
  d_second : Sb_sim.Runtime.decision;
  d_kind : [ `State  (** Both orders run, final keys differ. *)
           | `Disables  (** One order disables the other action. *)
           | `Error of string ];
}

type result = {
  a_states : int;  (** Distinct states expanded. *)
  a_pairs : int;  (** Declared-independent co-enabled pairs replayed. *)
  a_truncated : bool;  (** Stopped at [max_states] before exhausting. *)
  a_divergences : divergence list;
}

val ok : result -> bool
val pp_divergence : Format.formatter -> divergence -> unit

val audit :
  ?relation:(Sb_modelcheck.Explore.action -> Sb_modelcheck.Explore.action -> bool) ->
  ?max_states:int ->
  Sb_modelcheck.Explore.config ->
  result
(** Audits [relation] (default: the shipped
    {!Sb_modelcheck.Explore.independent}) over the configuration's
    reachable states.  [max_states] (default [500]) bounds the number of
    states expanded; the explorer itself ignores [cfg.bound] and
    [cfg.dpor] — the audit walks the raw state graph.  Passing a
    deliberately weakened [relation] is the mutation test that proves
    the audit has teeth. *)
