module R = Sb_sim.Runtime
module Explore = Sb_modelcheck.Explore

type divergence = {
  d_prefix : R.decision list;
  d_first : R.decision;
  d_second : R.decision;
  d_kind : [ `State | `Disables | `Error of string ];
}

type result = {
  a_states : int;
  a_pairs : int;
  a_truncated : bool;
  a_divergences : divergence list;
}

let ok r = r.a_divergences = []

let pp_divergence ppf d =
  let kind =
    match d.d_kind with
    | `State -> "states diverge"
    | `Disables -> "one order disables the other action"
    | `Error e -> "execution raised " ^ e
  in
  Format.fprintf ppf
    "declared independent, but %s: %s / %s after prefix [%s]" kind
    (R.decision_to_string d.d_first)
    (R.decision_to_string d.d_second)
    (String.concat "; " (List.map R.decision_to_string d.d_prefix))

let crash_budget (cfg : Explore.config) prefix =
  List.fold_left
    (fun (o, c) d ->
      match d with
      | R.Crash_obj _ -> (o - 1, c)
      | R.Crash_client _ -> (o, c - 1)
      | _ -> (o, c))
    (cfg.crash_objs, cfg.crash_clients)
    prefix

let audit ?relation ?(max_states = 500) (cfg : Explore.config) =
  let indep =
    match relation with Some r -> r | None -> Explore.independent
  in
  let fresh () =
    R.create ~seed:cfg.seed ~metrics:false ~algorithm:cfg.algorithm ~n:cfg.n
      ~f:cfg.f ~workload:cfg.workload ()
  in
  let at prefix =
    let w = fresh () in
    ignore (R.replay w prefix);
    w
  in
  let visited = Hashtbl.create 256 in
  (* Depth-first: co-enabled conflicting pairs often only arise deep in
     a schedule (e.g. both ABD writers reaching their round-2 stores),
     and a breadth-first frontier burns the whole state budget near the
     root before any such state is reached.  DFS with key-dedup covers
     a full spine plus local branching instead. *)
  let queue = Stack.create () in
  Stack.push [] queue;
  let states = ref 0 in
  let pairs = ref 0 in
  let divs = ref [] in
  let truncated = ref false in
  while not (Stack.is_empty queue) do
    let prefix = Stack.pop queue in
    if !states >= max_states then truncated := true
    else begin
      let w = at prefix in
      let key = R.audit_key w in
      if not (Hashtbl.mem visited key) then begin
        Hashtbl.add visited key ();
        incr states;
        let obj_left, cli_left = crash_budget cfg prefix in
        let acts =
          Explore.enabled_actions cfg w ~obj_left:(max 0 obj_left)
            ~cli_left:(max 0 cli_left)
        in
        (* The step-visibility attributes the independence relation
           consults are only known from executing the action — observe
           each on its own replica of the state, as the search does. *)
        List.iter
          (fun (a : Explore.action) ->
            Explore.execute_observing (at prefix) a)
          acts;
        List.iter
          (fun (a : Explore.action) -> Stack.push (prefix @ [ a.dec ]) queue)
          acts;
        let arr = Array.of_list acts in
        for i = 0 to Array.length arr - 1 do
          for j = i + 1 to Array.length arr - 1 do
            let a = arr.(i) and b = arr.(j) in
            if indep a b then begin
              incr pairs;
              let diverge kind =
                divs :=
                  { d_prefix = prefix; d_first = a.dec; d_second = b.dec;
                    d_kind = kind }
                  :: !divs
              in
              let in_order (first : Explore.action) (second : Explore.action) =
                let w = at prefix in
                ignore (R.step w first.dec);
                if not (R.decision_enabled w second.dec) then None
                else begin
                  ignore (R.step w second.dec);
                  (* [audit_key], not [exploration_key]: the relation
                     promises convergence up to verdict-preserving
                     reordering of the event word (inv/inv, ret/ret,
                     crash swaps), which the strict key distinguishes. *)
                  Some (R.audit_key w)
                end
              in
              match in_order a b, in_order b a with
              | Some k1, Some k2 -> if k1 <> k2 then diverge `State
              | None, _ | _, None -> diverge `Disables
              | exception e -> diverge (`Error (Printexc.to_string e))
            end
          done
        done
      end
    end
  done;
  {
    a_states = !states;
    a_pairs = !pairs;
    a_truncated = !truncated;
    a_divergences = List.rev !divs;
  }
