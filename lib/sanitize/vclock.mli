(** Plain integer vector clocks (Mattern/Fidge), used by the sanitizer's
    happens-before engine.

    The monitor assigns one component per client and one per base object.
    A trigger inherits (and advances) its client's clock; a take-effect
    joins the trigger's clock into the object's; an await joins the
    delivered responses' clocks back into the client's.  Two RMWs are
    {e concurrent} when their trigger clocks are incomparable — neither
    could have causally observed the other, so a scheduler is free to
    deliver them in either order. *)

type t = private int array
(** Mutable; components are event counts.  Private so monitors cannot
    accidentally alias one clock into two roles — use {!copy}. *)

val create : int -> t
(** All-zero clock with the given number of components. *)

val copy : t -> t
val size : t -> int

val tick : t -> int -> unit
(** Advance one component in place. *)

val join_into : t -> t -> unit
(** [join_into dst src] raises [dst] to the componentwise maximum.
    Raises [Invalid_argument] on size mismatch. *)

val leq : t -> t -> bool
(** Componentwise [<=]: the happens-before order on clocks. *)

val concurrent : t -> t -> bool
(** Neither [leq a b] nor [leq b a]. *)

val pp : Format.formatter -> t -> unit
