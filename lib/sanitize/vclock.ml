type t = int array

let create size = Array.make size 0
let copy = Array.copy
let size = Array.length

let tick c i = c.(i) <- c.(i) + 1

let join_into dst src =
  if Array.length dst <> Array.length src then
    invalid_arg "Vclock.join_into: size mismatch";
  Array.iteri (fun i x -> if x > dst.(i) then dst.(i) <- x) src

let leq a b =
  if Array.length a <> Array.length b then invalid_arg "Vclock.leq: size mismatch";
  let ok = ref true in
  Array.iteri (fun i x -> if x > b.(i) then ok := false) a;
  !ok

let concurrent a b = (not (leq a b)) && not (leq b a)

let pp ppf c =
  Format.fprintf ppf "[%s]"
    (String.concat ";" (Array.to_list (Array.map string_of_int c)))
