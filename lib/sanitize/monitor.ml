module R = Sb_sim.Runtime
module Block = Sb_storage.Block
module Objstate = Sb_storage.Objstate

(* ------------------------------------------------------------------ *)
(* Rules, violations, configuration                                    *)
(* ------------------------------------------------------------------ *)

type rule =
  | Commutativity of { obj : int; first : int; second : int }
  | Quorum_unsafe of { quorum : int; other : int; need : int }
  | Quorum_overdemand of { quorum : int; max_live : int }
  | Quorum_short of { quorum : int; got : int }
  | Config_resilience of { n : int; f : int; k : int }
  | Accounting_mismatch of { reported : int; recomputed : int }
  | Oracle_asymmetry of { source : int; index : int; bits : int; expected : int }
  | Premature_gc of { sources : int list; k : int }
  | Crash_discipline of { detail : string }
  | Adversary_partition of { detail : string }
  | Dedup of { obj : int; ticket : int }
  | Storage_floor of { copies : int; d_bits : int; live_full : int; need : int }

type violation = { rule : rule; v_time : int; v_detail : string }

exception Violation_exn of violation

type mode = Collect | Raise

type config = {
  k : int;
  reg_avail : bool;
  adversary : (int * int) option;
  floor : (int * int) option;
  byz : (int -> bool) option;
  mode : mode;
}

let config ?(mode = Collect) ?(reg_avail = false) ?adversary ?floor ?byz ~k () =
  { k; reg_avail; adversary; floor; byz; mode }

let rule_name = function
  | Commutativity _ -> "commutativity"
  | Quorum_unsafe _ -> "quorum-unsafe"
  | Quorum_overdemand _ -> "quorum-overdemand"
  | Quorum_short _ -> "quorum-short"
  | Config_resilience _ -> "config-resilience"
  | Accounting_mismatch _ -> "accounting-mismatch"
  | Oracle_asymmetry _ -> "oracle-asymmetry"
  | Premature_gc _ -> "premature-gc"
  | Crash_discipline _ -> "crash-discipline"
  | Adversary_partition _ -> "adversary-partition"
  | Dedup _ -> "dedup"
  | Storage_floor _ -> "storage-floor"

let pp_violation ppf v =
  Format.fprintf ppf "[%s] t=%d %s" (rule_name v.rule) v.v_time v.v_detail

let violation_to_string v = Format.asprintf "%a" pp_violation v

(* ------------------------------------------------------------------ *)
(* The world view: the few facts the monitors need, abstracted so the  *)
(* same monitors run on both runtimes.                                 *)
(* ------------------------------------------------------------------ *)

type view = {
  v_n : int;
  v_f : int;
  v_clients : int;
  v_alive : int -> bool;
  v_blocks : int -> Block.t list;
  v_reported_bits : unit -> int;
  v_time : unit -> int;
}

(* ------------------------------------------------------------------ *)
(* Monitor state                                                       *)
(* ------------------------------------------------------------------ *)

type tinfo = { ti_obj : int; ti_clk : Vclock.t }

type last_delivery = {
  ld_ticket : int;
  ld_nature : R.rmw_nature;
  ld_rmw : R.rmw;
  ld_before : Objstate.t;
  ld_after : Objstate.t;
  ld_resp : R.resp;
  ld_clk : Vclock.t;  (* the trigger's clock, not the delivery's *)
}

type wstate = {
  w_invoked_at : int;
  mutable w_returned_at : int option;
  mutable w_dead : bool;  (* superseded: another write returned entirely after *)
}

type t = {
  cfg : config;
  view : view;
  cclk : Vclock.t array;
  oclk : Vclock.t array;
  tickets : (int, tinfo) Hashtbl.t;
  dclk : (int, Vclock.t) Hashtbl.t;
  last_deliver : (int, last_delivery) Hashtbl.t;
  oracle : (int * int, int) Hashtbl.t;
  writes : (int, wstate) Hashtbl.t;
  quorums_seen : (int, unit) Hashtbl.t;
  obj_dead : bool array;
  obj_epoch : int array;
      (* Server incarnation numbers, mirroring the message-passing
         runtime's; always 1 on the crash-stop shared-memory runtime. *)
  applied_once : (int, int) Hashtbl.t;
      (* ticket -> object epoch at its first non-readonly application.
         A second application in the same epoch is a dedup failure;
         re-application in a later epoch is the legal
         retransmission-across-recovery path (volatile at-most-once
         table), which idempotent RMWs make harmless. *)
  cli_dead : bool array;
  acct : int array;
      (* Block-level bits per object, maintained incrementally: only the
         delivered object is re-summed per event, keeping the global
         accounting cross-check O(n) instead of O(total blocks). *)
  mutable crashed_objs : int;
  mutable seq : int;
  mutable violation_log : violation list;  (* newest first *)
  mutable adv_check : (unit -> string option) option;
}

let record m rule v_detail =
  let v = { rule; v_time = m.view.v_time (); v_detail } in
  match m.cfg.mode with
  | Raise -> raise (Violation_exn v)
  | Collect -> m.violation_log <- v :: m.violation_log

let violations m = List.rev m.violation_log
let events_seen m = m.seq

(* ------------------------------------------------------------------ *)
(* Individual monitors                                                 *)
(* ------------------------------------------------------------------ *)

(* Definition 1: an oracle is a function — the block it produced for
   (source, index) has one size, once and for all. *)
let check_oracle m (b : Block.t) =
  let key = (b.source, b.index) in
  let bits = Block.bits b in
  match Hashtbl.find_opt m.oracle key with
  | None -> Hashtbl.add m.oracle key bits
  | Some expected ->
    if bits <> expected then
      record m
        (Oracle_asymmetry { source = b.source; index = b.index; bits; expected })
        (Printf.sprintf
           "block (source %d, index %d) seen with %d bits, previously %d"
           b.source b.index bits expected)

let stored_bits m o =
  List.fold_left (fun acc b -> acc + Block.bits b) 0 (m.view.v_blocks o)

(* Definition 2: the reported storage cost must equal the sum of block
   bits over live objects — timestamps and other metadata excluded.
   Only the delivered object changed, so only its block-level sum is
   recomputed; the rest comes from the incrementally maintained [acct]
   array, which was itself block-level recomputed when those objects
   last changed. *)
let check_accounting m ~obj (after : Objstate.t) =
  let self = List.fold_left (fun a b -> a + Block.bits b) 0 (Objstate.blocks after) in
  if Objstate.bits after <> self then
    record m
      (Accounting_mismatch { reported = Objstate.bits after; recomputed = self })
      "object state reports bits different from the sum of its blocks";
  m.acct.(obj) <- self;
  let reported = m.view.v_reported_bits () in
  let recomputed = ref 0 in
  for o = 0 to m.view.v_n - 1 do
    if m.view.v_alive o then recomputed := !recomputed + m.acct.(o)
  done;
  if reported <> !recomputed then
    record m
      (Accounting_mismatch { reported; recomputed = !recomputed })
      "runtime storage accounting diverges from block-level recomputation"

(* Availability of the readable frontier: some write that a read is
   still allowed to return must be decodable from blocks stored in live
   objects, with enough slack to survive the crashes still to come.
   Catches premature garbage collection (the paper's E13 discussion) in
   any schedule, not just the one a test happens to drive. *)
let check_avail m =
  if m.cfg.reg_avail then begin
    (* A read collects n - f responses, and the adversary picks which:
       for {e every} (n - f)-subset of the live objects, some write a
       read may legally return — complete, or still in flight, but not
       superseded — must be decodable from the blocks stored in that
       subset alone.  Pending deliveries do not count: a read running
       now decodes only what is stored.  The quantifier order matters
       both ways.  Per subset, {e some} allowed source suffices:
       ABD's keep-the-newer overwrite leaves no single write covering a
       full quorum plus slack, yet every response set contains a newest
       value — jointly the frontier covers every subset.  And all
       subsets must pass: the premature [`Own_ts] eviction keeps every
       individual value at one or two objects once two writes race, so
       some subset mixes three undecodable fragments — caught at the
       moment of eviction, in any schedule, long before a read happens
       to draw that subset and fail regularity. *)
    let n = m.view.v_n in
    let live = List.filter m.view.v_alive (List.init n Fun.id) in
    let q = n - m.view.v_f in
    if List.length live >= q then begin
      let allowed =
        (* sb-lint: allow hashtbl-order — membership set; only List.mem consumes it *)
        Hashtbl.fold (fun id ws acc -> if ws.w_dead then acc else id :: acc) m.writes []
      in
      (* Per live object, a (source -> index bitmask) assoc computed
         once; judging a candidate subset is then a few integer [lor]s
         and popcounts rather than hashtable churn per subset — this
         check runs on every delivery. *)
      let masks = Array.make n [] in
      List.iter
        (fun o ->
          let tbl = Hashtbl.create 4 in
          List.iter
            (fun (b : Block.t) ->
              if b.index < Sys.int_size - 1 && List.mem b.source allowed then
                Hashtbl.replace tbl b.source
                  (Option.value ~default:0 (Hashtbl.find_opt tbl b.source)
                  lor (1 lsl b.index)))
            (m.view.v_blocks o);
          (* sb-lint: allow hashtbl-order — assoc consumed by commutative lor/popcount *)
          masks.(o) <- Hashtbl.fold (fun s msk acc -> (s, msk) :: acc) tbl [])
        live;
      let popcount x =
        let c = ref 0 and x = ref x in
        while !x <> 0 do
          incr c;
          x := !x land (!x - 1)
        done;
        !c
      in
      let decodable_from subset =
        List.exists
          (fun s ->
            let msk =
              List.fold_left
                (fun acc o ->
                  match List.assoc_opt s masks.(o) with
                  | Some v -> acc lor v
                  | None -> acc)
                0 subset
            in
            popcount msk >= m.cfg.k)
          allowed
      in
      (* First failing size-q subset of the live objects, if any. *)
      let rec bad_subset chosen need rest =
        match (need, rest) with
        | 0, _ -> if decodable_from chosen then None else Some chosen
        | _, [] -> None
        | _, o :: rest' ->
          if List.length rest < need then None
          else (
            match bad_subset (o :: chosen) (need - 1) rest' with
            | Some _ as bad -> bad
            | None -> bad_subset chosen need rest')
      in
      match bad_subset [] q live with
      | None -> ()
      | Some subset ->
        record m
          (Premature_gc { sources = List.sort compare allowed; k = m.cfg.k })
          (Printf.sprintf
             "a read served by live objects {%s} could decode no \
              still-readable write (k=%d distinct indices needed; candidate \
              sources: %s)"
             (String.concat ", "
                (List.map string_of_int (List.sort compare subset)))
             m.cfg.k
             (String.concat ", " (List.map string_of_int (List.sort compare allowed))))
    end
  end

(* The replication floor of the sibling lower bounds
   (Chockler-Spiegelman arXiv:1705.07212 over read/write base objects;
   Berger-Keidar-Spiegelman arXiv:1805.06265 over Byzantine ones): at
   least [copies] {e full} copies of the value must exist across the
   objects, of which only the live ones can be checked — an emulation
   that keeps fewer live full copies than [copies] minus the crashes so
   far has garbage-collected below the proven floor, and a crash set of
   the remaining budget can erase the value.  A "full copy" is an object
   whose stored block bits reach the value size [d_bits] (Definition 2
   accounting: metadata excluded, so a meta-data-only stub counts
   zero). *)
let check_floor m =
  match m.cfg.floor with
  | None -> ()
  | Some (copies, d_bits) ->
    let live_full = ref 0 in
    for o = 0 to m.view.v_n - 1 do
      if (not m.obj_dead.(o)) && m.acct.(o) >= d_bits then incr live_full
    done;
    let need = copies - m.crashed_objs in
    if !live_full < need then
      record m
        (Storage_floor { copies; d_bits; live_full = !live_full; need })
        (Printf.sprintf
           "only %d live objects hold a full copy (>= %d bits) but the \
            replication floor demands %d (%d copies minus %d crashed)"
           !live_full d_bits need copies m.crashed_objs)

(* Quorum discipline over full broadcasts: liveness demands the quorum
   be reachable with f crashes, safety demands any two quorums used on
   the same register intersect in k objects (Section 2; n >= 2f + k). *)
let check_quorum m ~tickets ~quorum ~got =
  if got < quorum then
    record m (Quorum_short { quorum; got })
      "await returned with fewer responders than its quorum";
  if List.length tickets = m.view.v_n then begin
    let max_live = m.view.v_n - m.view.v_f in
    if quorum > max_live then
      record m
        (Quorum_overdemand { quorum; max_live })
        (Printf.sprintf
           "quorum %d of a full broadcast can block forever: only %d objects \
            are guaranteed to survive" quorum max_live);
    let check_pair other =
      if quorum + other - m.view.v_n < m.cfg.k then
        record m
          (Quorum_unsafe { quorum; other; need = m.cfg.k })
          (Printf.sprintf
             "quorums of %d and %d over %d objects need not intersect in %d: \
              %d + %d - %d = %d" quorum other m.view.v_n m.cfg.k quorum other
             m.view.v_n
             (quorum + other - m.view.v_n))
    in
    check_pair quorum;
    (* sb-lint: allow hashtbl-order — every pair is checked regardless of order *)
    Hashtbl.iter (fun q () -> if q <> quorum then check_pair q) m.quorums_seen;
    Hashtbl.replace m.quorums_seen quorum ()
  end

let check_adversary m =
  match m.adv_check with
  | None -> ()
  | Some f -> (
    match f () with
    | None -> ()
    | Some detail -> record m (Adversary_partition { detail }) detail)

(* ------------------------------------------------------------------ *)
(* Event dispatch                                                      *)
(* ------------------------------------------------------------------ *)

let on_invoke m (op : R.op) =
  match op.kind with
  | Sb_sim.Trace.Write _ ->
    Hashtbl.replace m.writes op.id
      { w_invoked_at = m.seq; w_returned_at = None; w_dead = false }
  | Sb_sim.Trace.Read -> ()

let on_return m (op : R.op) =
  (match Hashtbl.find_opt m.writes op.id with
  | None -> ()
  | Some ws ->
    ws.w_returned_at <- Some m.seq;
    (* Every write that returned strictly before this one was invoked is
       now superseded: real-time precedence forces any later read past
       it.  Concurrent completed writes stay readable.  Only a newly
       dead source can shrink the frontier, so only that re-checks. *)
    let killed = ref false in
    (* sb-lint: allow hashtbl-order — idempotent flag setting; order-insensitive *)
    Hashtbl.iter
      (fun id other ->
        if id <> op.id && not other.w_dead then
          match other.w_returned_at with
          | Some r when r < ws.w_invoked_at ->
            other.w_dead <- true;
            killed := true
          | _ -> ())
      m.writes;
    if !killed then check_avail m)

let on_trigger m ~ticket ~obj (op : R.op) payload =
  let c = op.client in
  Vclock.tick m.cclk.(c) c;
  Hashtbl.replace m.tickets ticket
    { ti_obj = obj; ti_clk = Vclock.copy m.cclk.(c) };
  List.iter (check_oracle m) payload

let commuting_class (a : R.rmw_nature) (b : R.rmw_nature) =
  match a, b with `Readonly, `Readonly | `Merge, `Merge -> true | _ -> false

let on_deliver m ~ticket ~obj ~nature ~(rmw : R.rmw) ~before ~after ~resp =
  if m.obj_dead.(obj) then
    record m
      (Crash_discipline { detail = "delivery on a crashed object" })
      (Printf.sprintf "ticket %d took effect on crashed object %d" ticket obj);
  (* A compromised object's deliveries are exempt from the behavioural
     monitors: its "RMW applications" may be fabrications that neither
     mutate state nor respect at-most-once (equivocation between retries
     is exactly what the Byzantine model grants), so re-applying closures
     or counting applications would flag the lie, not a bug.  Storage
     accounting and the floor check still apply — lies never touch the
     stored state. *)
  let compromised =
    match m.cfg.byz with Some p -> p obj | None -> false
  in
  (* At-most-once discipline per incarnation: a non-readonly RMW that
     takes effect twice within one object epoch slipped past the
     server's dedup table (a duplicated or retransmitted request was
     re-applied). *)
  (match nature with
  | `Readonly -> ()
  | (`Mutating | `Merge) when compromised -> ()
  | `Mutating | `Merge -> (
    match Hashtbl.find_opt m.applied_once ticket with
    | Some epoch when epoch = m.obj_epoch.(obj) ->
      record m (Dedup { obj; ticket })
        (Printf.sprintf
           "non-readonly RMW %d took effect twice on object %d within \
            incarnation %d (at-most-once table failed)" ticket obj epoch)
    | _ -> Hashtbl.replace m.applied_once ticket m.obj_epoch.(obj)));
  let ti = Hashtbl.find_opt m.tickets ticket in
  (* Commutativity spot-check: when this delivery is adjacent to the
     previous one on the object, both natures claim a commuting class,
     and the two triggers are causally concurrent, the scheduler could
     have delivered them in the other order — and the model checker's
     independence relation assumes the result is the same.  Re-apply the
     two (pure) RMW closures in swapped order and compare. *)
  (match ti, Hashtbl.find_opt m.last_deliver obj with
  | _ when compromised -> ()
  | Some ti, Some ld
    when ld.ld_after = before
         && commuting_class ld.ld_nature nature
         && Vclock.concurrent ti.ti_clk ld.ld_clk -> (
    match rmw ld.ld_before with
    | s1, r1 ->
      let s2, r2 = ld.ld_rmw s1 in
      if not (s2 = after && r1 = resp && r2 = ld.ld_resp) then
        record m
          (Commutativity { obj; first = ld.ld_ticket; second = ticket })
          (Printf.sprintf
             "concurrent RMWs %d and %d on object %d are declared %s but do \
              not commute: swapping their delivery order changes the object \
              state or a response" ld.ld_ticket ticket obj
             (match nature with
             | `Merge -> "merge-class"
             | `Readonly -> "read-only"
             | `Mutating -> "mutating"))
    | exception e ->
      record m
        (Commutativity { obj; first = ld.ld_ticket; second = ticket })
        (Printf.sprintf "re-applying RMWs %d;%d in swapped order raised %s"
           ld.ld_ticket ticket (Printexc.to_string e)))
  | _ -> ());
  let state_changed = not (before == after) && before <> after in
  if state_changed then check_accounting m ~obj after;
  (match ti with
  | Some ti ->
    Vclock.join_into m.oclk.(obj) ti.ti_clk;
    Vclock.tick m.oclk.(obj) (m.view.v_clients + obj);
    Hashtbl.replace m.dclk ticket (Vclock.copy m.oclk.(obj));
    if compromised then Hashtbl.remove m.last_deliver obj
    else
      Hashtbl.replace m.last_deliver obj
        {
          ld_ticket = ticket;
          ld_nature = nature;
          ld_rmw = rmw;
          ld_before = before;
          ld_after = after;
          ld_resp = resp;
          ld_clk = ti.ti_clk;
        }
  | None -> Hashtbl.remove m.last_deliver obj);
  (* The frontier invariant is monotone in the stored blocks: an RMW
     that only added blocks cannot break it (a good state stays good),
     so the subset check runs only when something was evicted.  Sources
     die on returns and objects on crashes — both re-check there. *)
  let evicted =
    state_changed
    && (let after_blocks = Objstate.blocks after in
        not
          (List.for_all
             (fun b -> List.memq b after_blocks || List.mem b after_blocks)
             (Objstate.blocks before)))
  in
  if evicted then check_avail m;
  if state_changed then check_floor m;
  check_adversary m

let on_await m (op : R.op) ~tickets ~quorum ~responders =
  let c = op.client in
  check_quorum m ~tickets ~quorum ~got:(List.length responders);
  let responder_objs = List.map fst responders in
  List.iter
    (fun t ->
      match Hashtbl.find_opt m.tickets t with
      | Some ti when List.mem ti.ti_obj responder_objs -> (
        match Hashtbl.find_opt m.dclk t with
        | Some d -> Vclock.join_into m.cclk.(c) d
        | None -> ())
      | _ -> ())
    tickets;
  Vclock.tick m.cclk.(c) c

let on_crash_obj m o =
  if m.obj_dead.(o) then
    record m
      (Crash_discipline { detail = "object crashed twice" })
      (Printf.sprintf "object %d crashed twice" o)
  else begin
    m.obj_dead.(o) <- true;
    m.crashed_objs <- m.crashed_objs + 1
  end;
  if m.crashed_objs > m.view.v_f then
    record m
      (Crash_discipline
         { detail = Printf.sprintf "%d object crashes exceed f" m.crashed_objs })
      (Printf.sprintf "%d objects crashed but the resilience bound is f = %d"
         m.crashed_objs m.view.v_f);
  check_avail m;
  check_floor m;
  check_adversary m

let on_recover_obj m o incarnation =
  if not m.obj_dead.(o) then
    record m
      (Crash_discipline { detail = "recovery of a live object" })
      (Printf.sprintf "object %d recovered without having crashed" o)
  else begin
    m.obj_dead.(o) <- false;
    m.crashed_objs <- m.crashed_objs - 1
  end;
  m.obj_epoch.(o) <- m.obj_epoch.(o) + 1;
  if incarnation <> m.obj_epoch.(o) then
    record m
      (Crash_discipline
         { detail = Printf.sprintf "incarnation %d, expected %d" incarnation m.obj_epoch.(o) })
      (Printf.sprintf
         "object %d rejoined with incarnation %d but the monitor counted %d \
          recoveries" o incarnation (m.obj_epoch.(o) - 1));
  (* The rejoined object's durable blocks re-enter the live frontier;
     [acct.(o)] was maintained through the crash, so the accounting
     cross-check needs no reseeding.  Availability only improves. *)
  check_floor m;
  check_adversary m

let on_crash_client m c =
  if m.cli_dead.(c) then
    record m
      (Crash_discipline { detail = "client crashed twice" })
      (Printf.sprintf "client %d crashed twice" c)
  else m.cli_dead.(c) <- true

let handle m (ev : R.event) =
  m.seq <- m.seq + 1;
  match ev with
  | R.E_invoke { op } -> on_invoke m op
  | R.E_return { op; _ } -> on_return m op
  | R.E_trigger { ticket; obj; op; nature = _; payload } ->
    on_trigger m ~ticket ~obj op payload
  | R.E_deliver { ticket; obj; nature; rmw; before; after; resp; _ } ->
    on_deliver m ~ticket ~obj ~nature ~rmw ~before ~after ~resp
  | R.E_await { op; tickets; quorum; responders } ->
    on_await m op ~tickets ~quorum ~responders
  | R.E_crash_obj o -> on_crash_obj m o
  | R.E_recover_obj (o, incarnation) -> on_recover_obj m o incarnation
  | R.E_crash_client c -> on_crash_client m c

(* ------------------------------------------------------------------ *)
(* Attachment                                                          *)
(* ------------------------------------------------------------------ *)

let make cfg view =
  let m =
    {
      cfg;
      view;
      cclk = Array.init view.v_clients (fun _ -> Vclock.create (view.v_clients + view.v_n));
      oclk = Array.init view.v_n (fun _ -> Vclock.create (view.v_clients + view.v_n));
      tickets = Hashtbl.create 64;
      dclk = Hashtbl.create 64;
      last_deliver = Hashtbl.create 8;
      oracle = Hashtbl.create 32;
      writes = Hashtbl.create 8;
      quorums_seen = Hashtbl.create 4;
      obj_dead = Array.make view.v_n false;
      obj_epoch = Array.make view.v_n 1;
      applied_once = Hashtbl.create 64;
      cli_dead = Array.make view.v_clients false;
      acct =
        Array.init view.v_n (fun o ->
            List.fold_left (fun a b -> a + Block.bits b) 0 (view.v_blocks o));
      crashed_objs = 0;
      seq = 0;
      violation_log = [];
      adv_check = None;
    }
  in
  (* The initial write (source 0) completed before time zero. *)
  Hashtbl.replace m.writes 0
    { w_invoked_at = -1; w_returned_at = Some 0; w_dead = false };
  (* Configuration resilience (n >= 2f + k).  For small universes the
     combinatorial characterisation from Sb_quorums is the ground truth;
     beyond that the closed form is used. *)
  let resilient =
    if view.v_n <= 12 then
      snd
        (Sb_quorums.Quorum.register_requirements ~n:view.v_n ~f:view.v_f
           ~k:cfg.k)
    else view.v_n >= (2 * view.v_f) + cfg.k
  in
  if not resilient then
    record m
      (Config_resilience { n = view.v_n; f = view.v_f; k = cfg.k })
      (Printf.sprintf
         "no quorum system over n = %d objects is both available after %d \
          crashes and %d-intersecting (need n >= 2f + k)" view.v_n view.v_f
         cfg.k);
  (* Seed the oracle table (and size-consistency check) with the blocks
     the algorithm pre-installed for the initial value. *)
  for o = 0 to view.v_n - 1 do
    List.iter (check_oracle m) (view.v_blocks o)
  done;
  check_avail m;
  check_floor m;
  m

let attach cfg (w : R.world) =
  let view =
    {
      v_n = R.n_objects w;
      v_f = R.f_tolerance w;
      v_clients = R.client_count w;
      v_alive = (fun o -> R.obj_alive w o);
      v_blocks = (fun o -> Objstate.blocks (R.obj_state w o));
      v_reported_bits = (fun () -> R.storage_bits_objects w);
      v_time = (fun () -> R.time w);
    }
  in
  let m = make cfg view in
  (match cfg.adversary with
  | None -> ()
  | Some (ell_bits, d_bits) ->
    m.adv_check <-
      Some
        (fun () ->
          let snap = Sb_adversary.Ad.classify ~ell_bits ~d_bits w in
          (* F(t) per Definition 7, with the monitor's own block-level
             accounting as the size oracle. *)
          let expect_frozen =
            List.filter
              (fun o -> m.view.v_alive o && stored_bits m o >= ell_bits)
              (List.init m.view.v_n Fun.id)
          in
          if snap.Sb_adversary.Ad.frozen <> expect_frozen then
            Some
              (Printf.sprintf "frozen set [%s] but objects holding >= %d bits \
                               are [%s]"
                 (String.concat ";" (List.map string_of_int snap.Sb_adversary.Ad.frozen))
                 ell_bits
                 (String.concat ";" (List.map string_of_int expect_frozen)))
          else begin
            let outstanding_writes =
              List.filter
                (fun (op : R.op) ->
                  match op.kind with
                  | Sb_sim.Trace.Write _ -> true
                  | Sb_sim.Trace.Read -> false)
                (R.outstanding_ops w)
            in
            let misclassified =
              List.find_opt
                (fun (op : R.op) ->
                  let contrib = R.op_contribution w op in
                  let in_plus = List.mem op.id snap.Sb_adversary.Ad.c_plus in
                  let in_minus = List.mem op.id snap.Sb_adversary.Ad.c_minus in
                  if contrib > d_bits - ell_bits then not (in_plus && not in_minus)
                  else not (in_minus && not in_plus))
                outstanding_writes
            in
            match misclassified with
            | Some op ->
              Some
                (Printf.sprintf
                   "write %d with contribution %d lands in the wrong class of \
                    the C+/C- partition (threshold D - l = %d)" op.id
                   (R.op_contribution w op) (d_bits - ell_bits))
            | None ->
              if List.length snap.Sb_adversary.Ad.c_plus
                 + List.length snap.Sb_adversary.Ad.c_minus
                 <> List.length outstanding_writes
              then Some "C+ and C- do not partition the outstanding writes"
              else None
          end));
  R.add_observer w (handle m);
  m

let attach_mp cfg (w : Sb_msgnet.Mp_runtime.world) =
  let module Mp = Sb_msgnet.Mp_runtime in
  let view =
    {
      v_n = Mp.n_servers w;
      v_f = Mp.f_tolerance w;
      v_clients = Mp.client_count w;
      v_alive = (fun o -> Mp.server_alive w o);
      v_blocks = (fun o -> Objstate.blocks (Mp.server_state w o));
      v_reported_bits = (fun () -> Mp.storage_bits_servers w);
      v_time = (fun () -> Mp.time w);
    }
  in
  let m = make cfg view in
  Mp.add_observer w (handle m);
  m

(* ------------------------------------------------------------------ *)
(* Drivers: sanitized runs, sanitized exploration, shrinking           *)
(* ------------------------------------------------------------------ *)

type report = {
  r_violation : violation;
  r_decisions : R.decision list;
  r_shrunk : R.decision list;
}

let violates ~mk_world cfg decisions =
  let w = mk_world () in
  let m = attach { cfg with mode = Collect } w in
  ignore (R.replay w decisions);
  m.violation_log <> []

let shrink_report ~mk_world cfg violation decisions =
  let r_shrunk =
    if violates ~mk_world cfg decisions then
      Sb_modelcheck.Shrink.shrink_pred ~violates:(violates ~mk_world cfg) decisions
    else decisions
  in
  { r_violation = violation; r_decisions = decisions; r_shrunk }

let run ?max_steps cfg ~mk_world policy =
  let w = mk_world () in
  let m = attach { cfg with mode = Raise } w in
  let recorded = ref [] in
  let recording_policy wld =
    let d = policy wld in
    recorded := d :: !recorded;
    d
  in
  match R.run ?max_steps w recording_policy with
  | outcome -> Ok (outcome, m)
  | exception Violation_exn v ->
    Error (shrink_report ~mk_world cfg v (List.rev !recorded))

let instrument cfg w = ignore (attach { cfg with mode = Raise } w)

let explore_sanitized cfg (ecfg : Sb_modelcheck.Explore.config) =
  let ecfg = { ecfg with instrument = Some (instrument cfg) } in
  let mk_world () =
    R.create ~seed:ecfg.seed ~metrics:false
      ~base_model:ecfg.Sb_modelcheck.Explore.base_model
      ?byz:ecfg.Sb_modelcheck.Explore.byz ~algorithm:ecfg.algorithm ~n:ecfg.n
      ~f:ecfg.f ~workload:ecfg.workload ()
  in
  match Sb_modelcheck.Explore.explore ecfg with
  | outcome -> Ok outcome
  | exception Sb_modelcheck.Explore.Instrumented_failure (Violation_exn v, ds) ->
    Error (shrink_report ~mk_world cfg v ds)
